lib/core/net.ml: Net_like Regionsel_engine
