type t = {
  line_bytes : int;
  n_sets : int;
  ways : int;
  tags : int array; (* n_sets * ways, -1 = invalid *)
  stamps : int array; (* LRU timestamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(size_bytes = 32 * 1024) ?(line_bytes = 64) ?(ways = 4) () =
  if size_bytes <= 0 || line_bytes <= 0 || ways <= 0 then
    invalid_arg "Icache.create: geometry must be positive";
  let n_lines = size_bytes / line_bytes in
  if n_lines mod ways <> 0 then invalid_arg "Icache.create: lines not divisible by ways";
  let n_sets = n_lines / ways in
  if not (is_power_of_two n_sets) then invalid_arg "Icache.create: set count must be a power of two";
  {
    line_bytes;
    n_sets;
    ways;
    tags = Array.make (n_sets * ways) (-1);
    stamps = Array.make (n_sets * ways) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let touch_line t line =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let set = line land (t.n_sets - 1) in
  let tag = line lsr 0 in
  let base = set * t.ways in
  let rec find i = if i = t.ways then None else if t.tags.(base + i) = tag then Some i else find (i + 1) in
  match find 0 with
  | Some i -> t.stamps.(base + i) <- t.clock
  | None ->
    t.misses <- t.misses + 1;
    (* Evict the least-recently-used way. *)
    let victim = ref 0 in
    for i = 1 to t.ways - 1 do
      if t.stamps.(base + i) < t.stamps.(base + !victim) then victim := i
    done;
    t.tags.(base + !victim) <- tag;
    t.stamps.(base + !victim) <- t.clock

let access t ~addr ~bytes =
  if bytes > 0 then begin
    let first = addr / t.line_bytes in
    let last = (addr + bytes - 1) / t.line_bytes in
    for line = first to last do
      touch_line t line
    done
  end

let accesses t = t.accesses
let misses t = t.misses
let miss_rate t = if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses
let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0
