(* The streaming region-selection daemon.

   One process, one Unix-domain listening socket, one event loop.  Each
   client connection either streams a tenant (Hello, Events*, Fin) or
   issues control commands (Ctrl) — see [Proto].  Tenant simulations are
   multiplexed through [Multi_stream.Engine]: between socket activity the
   loop runs batch-barrier rounds, each tenant bounded by the events its
   connection has ingested so far, so a replay stream is never run dry
   (which would falsely read as a program halt).

   Flow control is two-sided.  Admission control answers Hello with a
   typed Reject when tenant slots or the shared cache budget saturate
   (the engine's typed admission rejects).  Backpressure bounds each
   connection's ingest backlog: when a tenant's unconsumed events exceed
   [ingest_max], the loop simply stops selecting its socket for reads —
   the kernel buffer fills, the client's writes block, and nothing here
   buffers unboundedly; reads resume once the backlog drains below half
   the bound (hysteresis, so a tenant hovering at the bound does not
   flap in and out of the read set).  An exhausted simulation (step
   budget spent, or the program halted) is the one exception: it can
   never drain its backlog, so its connection is never paused — the
   remaining events (bounded by the client's recording) are absorbed so
   the Fin behind them can be read and the tenant finished.

   Sends never block the loop either: outgoing frames are queued per
   connection and flushed through the writability set of the main
   select, so a peer that stops draining its socket — say a control
   client that requested a megabytes-long export and went away — stalls
   only its own replies.  A connection whose unsent queue passes
   [send_max] is dropped.

   Sessions survive both disconnects and daemon restarts: a tenant's
   warm state is snapshotted through [Persist.save_file] (atomic, CRC'd,
   the PR 7 identity machinery) on disconnect and on SIGTERM/SIGINT, and
   restored when the same (tenant, bench, policy, seed) identity says
   Hello again.  The snapshot does not carry the replay cursor; instead
   Welcome tells the client how many events the restored run has already
   consumed and the client resends from there — that re-alignment is
   what makes a resumed run bit-identical to an uninterrupted one. *)

module Simulator = Regionsel_engine.Simulator
module Branch_stream = Regionsel_engine.Branch_stream
module Multi_stream = Regionsel_engine.Multi_stream
module Params = Regionsel_engine.Params
module Context = Regionsel_engine.Context
module Spec = Regionsel_workload.Spec
module Suite = Regionsel_workload.Suite
module Image = Regionsel_workload.Image
module Policies = Regionsel_core.Policies
module Run_metrics = Regionsel_metrics.Run_metrics
module Persist = Regionsel_persist.Persist
module Event_log = Regionsel_persist.Event_log
module Metrics = Regionsel_obs.Metrics
module Check = Regionsel_check.Check

type config = {
  socket_path : string;
  state_dir : string;  (** Session snapshots + flight dumps live here. *)
  budget_bytes : int option;  (** Shared code-cache budget across tenants. *)
  quota_floor : int;  (** Admission floor for per-tenant fair shares. *)
  max_tenants : int;
  batch_steps : int;
  ingest_max : int;  (** Per-tenant unconsumed-event bound (backpressure). *)
  n_domains : int option;
  metrics_keep : int;  (** Windows retained per tenant recorder. *)
  verbose : bool;
}

let default_config ~socket_path ~state_dir =
  {
    socket_path;
    state_dir;
    budget_bytes = None;
    quota_floor = 4096;
    max_tenants = 64;
    batch_steps = 4096;
    ingest_max = 1 lsl 16;
    n_domains = None;
    metrics_keep = 256;
    verbose = false;
  }

(* The backpressure hysteresis, pure so it can be unit-tested: pause
   reads at [high], resume only once the backlog has drained to
   [high / 2]. *)
let wants_read ~backlog ~high ~paused =
  if paused then backlog <= high / 2 else backlog < high

type session = {
  s_tenant : string;
  s_bench : string;
  s_policy_name : string;
  s_seed : int64;
  s_program : Regionsel_isa.Program.t;
  s_sim : Simulator.t;
  s_events : Branch_stream.events;
      (* This attachment's ingest buffer, also the sim's replay source:
         [Branch_stream.of_events] reads the live length, so appending
         here feeds the running simulation. *)
  s_base : int;  (* steps already consumed when this attachment began *)
  s_snap : string;  (* snapshot path (session identity file) *)
  mutable s_fin : bool;
}

let available s = s.s_base + Branch_stream.length s.s_events
let backlog s = available s - Simulator.steps s.s_sim

type conn = {
  c_fd : Unix.file_descr;
  c_dech : Proto.Dechunker.t;
  mutable c_session : session option;
  mutable c_paused : bool;
  mutable c_closed : bool;
      (* No further reads or sends; the fd itself stays open until the
         end-of-loop sweep has flushed any queued output — the sweep is
         the single place a connection fd is ever closed, so a
         descriptor can never be closed twice (and never race a number
         reused in between). *)
  c_out : Bytes.t Queue.t;  (* encoded frames not yet written *)
  mutable c_out_pos : int;  (* offset into the queue's head chunk *)
  mutable c_out_len : int;  (* total unsent bytes, for the [send_max] cap *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  engine : Multi_stream.Engine.t;
  mutable conns : conn list;
  recorders : (string, Metrics.recorder) Hashtbl.t;
  mutable recorder_order : string list;  (* first-seen order, for exports *)
  mutable stopping : bool;
  scratch : Bytes.t;
}

let log t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.verbose then Printf.eprintf "regionsel_daemon: %s\n%!" s)
    fmt

let dispatch_label () =
  if Params.default.Params.threaded_dispatch then "threaded" else "legacy"

let recorder_for t ~tenant ~policy =
  match Hashtbl.find_opt t.recorders tenant with
  | Some r -> r
  | None ->
    let r =
      Metrics.create ~keep:t.cfg.metrics_keep
        ~labels:[ ("tenant", tenant); ("policy", policy); ("dispatch", dispatch_label ()) ]
        ()
    in
    Hashtbl.add t.recorders tenant r;
    t.recorder_order <- t.recorder_order @ [ tenant ];
    r

let all_windows t =
  List.concat_map
    (fun tenant ->
      match Hashtbl.find_opt t.recorders tenant with
      | Some r -> Metrics.windows r
      | None -> [])
    t.recorder_order

let flight_windows t =
  List.concat_map
    (fun tenant ->
      match Hashtbl.find_opt t.recorders tenant with
      | Some r -> Metrics.last_windows r Metrics.default_flight_keep
      | None -> [])
    t.recorder_order

(* Barrier observation, exactly as the CLI fleet runs: one window per
   participating tenant per round. *)
let on_barrier t ~round:_ participants =
  Array.iter
    (fun (name, sim) ->
      match Hashtbl.find_opt t.recorders name with
      | Some r -> Simulator.sample sim (fun ~step ~stats ~ctx -> Metrics.sample r ~step ~stats ~ctx)
      | None -> ())
    participants

(* --- Sending (non-blocking, EPIPE-safe) ------------------------------- *)

let send_max = 2 * Proto.max_frame
(* A peer may stop draining with up to one maximal reply in flight and
   another queued; past that it is not a slow reader, it is a stalled
   one, and the connection is dropped rather than buffered for. *)

let drop_output conn =
  Queue.clear conn.c_out;
  conn.c_out_pos <- 0;
  conn.c_out_len <- 0

(* Write as much queued output as the socket will take right now.
   Returns [false] when the peer is gone (SIGPIPE is ignored
   process-wide, so a dead peer surfaces as EPIPE/ECONNRESET); the
   queued output is discarded and the connection marked closed — the
   sweep closes the fd. *)
let flush_out t conn =
  let rec go () =
    match Queue.peek_opt conn.c_out with
    | None -> true
    | Some chunk -> (
      let len = Bytes.length chunk - conn.c_out_pos in
      match Unix.write conn.c_fd chunk conn.c_out_pos len with
      | n ->
        conn.c_out_len <- conn.c_out_len - n;
        if n = len then begin
          ignore (Queue.pop conn.c_out);
          conn.c_out_pos <- 0;
          go ()
        end
        else begin
          conn.c_out_pos <- conn.c_out_pos + n;
          true (* kernel buffer full; the select write set resumes us *)
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> true
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        log t "peer vanished mid-write";
        drop_output conn;
        conn.c_closed <- true;
        false)
  in
  go ()

(* Queue a frame and opportunistically flush.  Never blocks: what the
   socket refuses stays queued for the event loop's writability set.
   [false] means the peer is gone or hopelessly stalled. *)
let send t conn msg =
  if conn.c_closed then false
  else begin
    let data = Proto.encode msg in
    if conn.c_out_len + Bytes.length data > send_max then begin
      log t "peer stalled with %d bytes queued; dropping connection" conn.c_out_len;
      drop_output conn;
      conn.c_closed <- true;
      false
    end
    else begin
      Queue.add data conn.c_out;
      conn.c_out_len <- conn.c_out_len + Bytes.length data;
      flush_out t conn
    end
  end

(* --- Session lifecycle ------------------------------------------------ *)

let snapshot_session t s =
  Persist.save_file ~path:s.s_snap ~seed:s.s_seed ~policy:s.s_policy_name
    (Simulator.internals s.s_sim);
  log t "tenant %s: snapshot at step %d -> %s" s.s_tenant (Simulator.steps s.s_sim) s.s_snap

(* Detach a connection's session, snapshotting it for a later reconnect.
   Not called for completed sessions (those already left the engine). *)
let detach t conn =
  match conn.c_session with
  | None -> ()
  | Some s ->
    conn.c_session <- None;
    (match Multi_stream.Engine.retire t.engine ~name:s.s_tenant with
    | Some _ -> snapshot_session t s
    | None -> ())

(* Finish with a connection: no further reads or sends, snapshot +
   detach its session.  The fd is NOT closed here — any queued output
   (e.g. the Reject that precedes most closes) still flushes through the
   loop's writability set, and the end-of-loop sweep does the single
   [Unix.close] once the queue is empty. *)
let close_conn t conn =
  conn.c_closed <- true;
  detach t conn

let tenant_attached t name =
  List.exists
    (fun c ->
      (not c.c_closed)
      && match c.c_session with Some s -> String.equal s.s_tenant name | None -> false)
    t.conns

(* Hello: admission control, session identity, snapshot restore. *)
let handle_hello t conn (h : Proto.hello) =
  let reject code detail =
    ignore (send t conn (Proto.Reject { code; detail }));
    log t "tenant %s: rejected (%s: %s)" h.Proto.h_tenant
      (Proto.reject_code_to_string code) detail
  in
  match conn.c_session with
  | Some _ -> reject Proto.Bad_frame "second hello on a streaming connection"
  | None -> (
    let tenant = h.Proto.h_tenant in
    if tenant_attached t tenant then reject Proto.Busy_tenant (tenant ^ " is already streaming")
    else
      match (Suite.find h.Proto.h_bench, Policies.find h.Proto.h_policy) with
      | None, _ -> reject Proto.Unknown_bench h.Proto.h_bench
      | _, None -> reject Proto.Unknown_policy h.Proto.h_policy
      | Some spec, Some policy ->
        let image = Spec.image spec in
        let program = image.Image.program in
        let max_steps =
          if h.Proto.h_max_steps = 0 then spec.Spec.default_steps else h.Proto.h_max_steps
        in
        let snap =
          Persist.session_file ~dir:t.cfg.state_dir ~tenant ~bench:h.Proto.h_bench
            ~policy:h.Proto.h_policy ~seed:h.Proto.h_seed
        in
        let events = Branch_stream.recorder () in
        let create ~restore () =
          Simulator.create ?restore ~seed:h.Proto.h_seed ~replay:events ~policy ~max_steps
            image
        in
        let restore_hook internals =
          let report =
            Persist.restore_file ~path:snap ~seed:h.Proto.h_seed ~policy:h.Proto.h_policy
              internals
          in
          List.iter
            (fun d ->
              log t "tenant %s: degraded section %s (%s)" tenant d.Persist.section
                d.Persist.reason)
            report.Persist.degraded;
          (* The restored cache must satisfy every invariant before the
             tenant takes another step; a violation dumps the flight
             recorder and kills the daemon (exit 3). *)
          Check.audit_cache ~program internals.Simulator.int_ctx.Context.cache
            ~step:internals.Simulator.int_stats.Regionsel_engine.Stats.steps
        in
        let sim =
          if Sys.file_exists snap then (
            try create ~restore:(Some restore_hook) ()
            with Persist.Hard_corruption msg ->
              (* An unusable session file is not the client's fault and
                 not fatal: drop it and start the session fresh. *)
              log t "tenant %s: corrupt session discarded (%s)" tenant msg;
              (try Sys.remove snap with Sys_error _ -> ());
              create ~restore:None ())
          else create ~restore:None ()
        in
        (match Multi_stream.Engine.admit t.engine ~name:tenant sim with
        | Error (Multi_stream.Engine.Tenants_saturated _ as r) ->
          reject Proto.Tenants_saturated (Multi_stream.Engine.reject_to_string r)
        | Error (Multi_stream.Engine.Budget_saturated _ as r) ->
          reject Proto.Budget_saturated (Multi_stream.Engine.reject_to_string r)
        | Error (Multi_stream.Engine.Duplicate_tenant _ as r) ->
          reject Proto.Busy_tenant (Multi_stream.Engine.reject_to_string r)
        | Ok () ->
          let resume_step = Simulator.steps sim in
          ignore (recorder_for t ~tenant ~policy:h.Proto.h_policy);
          conn.c_session <-
            Some
              {
                s_tenant = tenant;
                s_bench = h.Proto.h_bench;
                s_policy_name = h.Proto.h_policy;
                s_seed = h.Proto.h_seed;
                s_program = program;
                s_sim = sim;
                s_events = events;
                s_base = resume_step;
                s_snap = snap;
                s_fin = false;
              };
          log t "tenant %s: attached (bench %s, policy %s, resume %d)" tenant
            h.Proto.h_bench h.Proto.h_policy resume_step;
          ignore
            (send t conn
               (Proto.Welcome { resume_step; session = Filename.basename snap }))))

let handle_events t conn body =
  match conn.c_session with
  | None ->
    ignore (send t conn (Proto.Reject { code = Proto.Bad_frame; detail = "events before hello" }));
    close_conn t conn
  | Some s when s.s_fin ->
    ignore (send t conn (Proto.Reject { code = Proto.Bad_frame; detail = "events after fin" }));
    close_conn t conn
  | Some s -> (
    try ignore (Event_log.decode_batch body ~program:s.s_program ~into:s.s_events)
    with Persist.Hard_corruption msg ->
      ignore (send t conn (Proto.Reject { code = Proto.Corrupt_events; detail = msg }));
      close_conn t conn)

let status_text t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "rounds %d\n" (Multi_stream.Engine.rounds t.engine);
  List.iter
    (fun (name, sim) ->
      let line =
        match
          List.find_map
            (fun c ->
              match c.c_session with
              | Some s when (not c.c_closed) && String.equal s.s_tenant name -> Some s
              | _ -> None)
            t.conns
        with
        | Some s ->
          Printf.sprintf "tenant %s steps %d backlog %d fin %b exhausted %b\n" name
            (Simulator.steps sim) (backlog s) s.s_fin (Simulator.exhausted sim)
        | None ->
          Printf.sprintf "tenant %s steps %d detached\n" name (Simulator.steps sim)
      in
      Buffer.add_string buf line)
    (Multi_stream.Engine.tenants t.engine);
  Buffer.contents buf

let handle_ctrl t conn cmd =
  let reply text = ignore (send t conn (Proto.Data text)) in
  match String.split_on_char ' ' (String.trim cmd) with
  | [ "ping" ] -> reply "pong"
  | [ "status" ] -> reply (status_text t)
  | [ "prom" ] -> reply (Metrics.to_prometheus (all_windows t))
  | [ "jsonl" ] -> reply (Metrics.to_jsonl (all_windows t))
  | [ "jsonl"; n ] -> (
    match int_of_string_opt n with
    | Some k when k >= 0 ->
      reply
        (Metrics.to_jsonl
           (List.concat_map
              (fun tenant ->
                match Hashtbl.find_opt t.recorders tenant with
                | Some r -> Metrics.last_windows r k
                | None -> [])
              t.recorder_order))
    | _ ->
      ignore
        (send t conn (Proto.Reject { code = Proto.Bad_frame; detail = "bad jsonl tail count" })))
  | [ "shutdown" ] ->
    reply "bye";
    t.stopping <- true
  | _ ->
    ignore
      (send t conn (Proto.Reject { code = Proto.Bad_frame; detail = "unknown command " ^ cmd }))

let handle_msg t conn = function
  | Proto.Hello h -> handle_hello t conn h
  | Proto.Events body -> handle_events t conn body
  | Proto.Fin -> (
    match conn.c_session with
    | Some s -> s.s_fin <- true
    | None ->
      ignore (send t conn (Proto.Reject { code = Proto.Bad_frame; detail = "fin before hello" }));
      close_conn t conn)
  | Proto.Ctrl cmd -> handle_ctrl t conn cmd
  | Proto.Welcome _ | Proto.Reject _ | Proto.Result _ | Proto.Data _ ->
    ignore
      (send t conn (Proto.Reject { code = Proto.Bad_frame; detail = "server-only frame" }));
    close_conn t conn

(* Drain every complete frame the connection has buffered.  Garbage —
   typed [Protocol_error] — answers with a Reject and closes; it never
   escapes as a crash. *)
let drain_frames t conn =
  let rec go () =
    if not conn.c_closed then
      match Proto.Dechunker.next conn.c_dech with
      | Some msg ->
        handle_msg t conn msg;
        go ()
      | None -> ()
  in
  try go ()
  with Proto.Protocol_error msg ->
    ignore (send t conn (Proto.Reject { code = Proto.Bad_frame; detail = msg }));
    close_conn t conn

let handle_readable t conn =
  match Unix.read conn.c_fd t.scratch 0 (Bytes.length t.scratch) with
  | 0 -> close_conn t conn (* EOF: snapshot + detach via close *)
  | n ->
    Proto.Dechunker.feed conn.c_dech t.scratch ~pos:0 ~len:n;
    drain_frames t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> close_conn t conn

(* --- Engine driving --------------------------------------------------- *)

let session_of_tenant t name =
  List.find_map
    (fun c ->
      match c.c_session with
      | Some s when (not c.c_closed) && String.equal s.s_tenant name -> Some s
      | _ -> None)
    t.conns

let step_limit t ~name ~sim:_ =
  match session_of_tenant t name with Some s -> available s | None -> 0

(* Finish tenants whose stream is complete: Fin received and every
   ingested event consumed (or the step budget spent first).  The replay
   stream may then run dry inside [finish] — that is exactly what a solo
   replay run does, so the Result is bit-identical to one. *)
let finish_ready t =
  List.iter
    (fun conn ->
      match conn.c_session with
      | Some s
        when s.s_fin && (backlog s <= 0 || Simulator.exhausted s.s_sim)
             && not conn.c_closed ->
        (match Multi_stream.Engine.retire t.engine ~name:s.s_tenant with
        | Some sim ->
          let result = Simulator.finish sim in
          (match Hashtbl.find_opt t.recorders s.s_tenant with
          | Some r -> Metrics.finalize r result
          | None -> ());
          conn.c_session <- None;
          (* The session completed: its snapshot, if any, is spent. *)
          (try Sys.remove s.s_snap with Sys_error _ -> ());
          let json = Run_metrics.to_json (Run_metrics.of_result result) in
          ignore (send t conn (Proto.Result json));
          log t "tenant %s: finished at step %d" s.s_tenant result.Simulator.stats.Regionsel_engine.Stats.steps
        | None -> conn.c_session <- None)
      | _ -> ())
    t.conns

(* Pending engine work: unconsumed events behind a simulation that can
   still consume them.  An exhausted simulation's backlog never drains,
   so counting it would pin the select timeout at zero and busy-spin the
   loop until its Fin arrives. *)
let any_backlog t =
  List.exists
    (fun c ->
      match c.c_session with
      | Some s -> backlog s > 0 && not (Simulator.exhausted s.s_sim)
      | None -> false)
    t.conns

(* --- The event loop --------------------------------------------------- *)

let accept_ready t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | fd, _ ->
    Unix.set_nonblock fd;
    t.conns <-
      t.conns
      @ [ { c_fd = fd; c_dech = Proto.Dechunker.create (); c_session = None;
            c_paused = false; c_closed = false; c_out = Queue.create ();
            c_out_pos = 0; c_out_len = 0 } ]
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()

(* An exhausted simulation can never drain its backlog, so pausing its
   connection would wedge it permanently: the Fin behind the remaining
   events could never be read, and [finish_ready] would never fire.
   Keep reading — the leftover events are bounded by the client's
   recording. *)
let update_pause t conn =
  match conn.c_session with
  | Some s when not (Simulator.exhausted s.s_sim) ->
    conn.c_paused <- not (wants_read ~backlog:(backlog s) ~high:t.cfg.ingest_max ~paused:conn.c_paused)
  | Some _ | None -> conn.c_paused <- false

let snapshot_all t =
  List.iter (fun conn -> detach t conn) t.conns

let cleanup t =
  List.iter (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- [];
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  try Sys.remove t.cfg.socket_path with Sys_error _ -> ()

let loop t stop =
  while not (t.stopping || !stop) do
    List.iter (update_pause t) t.conns;
    let read_fds =
      t.listen_fd
      :: List.filter_map
           (fun c -> if c.c_closed || c.c_paused then None else Some c.c_fd)
           t.conns
    in
    (* A closed connection stays in the write set until its queued
       output (typically a final Reject) has drained. *)
    let write_fds =
      List.filter_map (fun c -> if c.c_out_len > 0 then Some c.c_fd else None) t.conns
    in
    let timeout = if any_backlog t then 0.0 else 0.25 in
    (match Unix.select read_fds write_fds [] timeout with
    | readable, writable, _ ->
      if List.memq t.listen_fd readable then accept_ready t;
      List.iter
        (fun c -> if c.c_out_len > 0 && List.memq c.c_fd writable then ignore (flush_out t c))
        t.conns;
      List.iter
        (fun c -> if (not c.c_closed) && List.memq c.c_fd readable then handle_readable t c)
        t.conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    (* One bounded engine round per loop turn: socket work and simulation
       work interleave, and a slow or stalled client never blocks either
       (its tenant just has nothing to advance). *)
    ignore (Multi_stream.Engine.round t.engine ~limit:(fun ~name ~sim -> step_limit t ~name ~sim));
    finish_ready t;
    (* The single place a connection fd is closed: closed AND drained. *)
    let dead, live =
      List.partition (fun c -> c.c_closed && c.c_out_len = 0) t.conns
    in
    List.iter
      (fun c ->
        detach t c;
        try Unix.close c.c_fd with Unix.Unix_error _ -> ())
      dead;
    t.conns <- live
  done

let serve cfg =
  if cfg.batch_steps <= 0 then invalid_arg "Server.serve: batch_steps must be positive";
  if cfg.ingest_max <= 0 then invalid_arg "Server.serve: ingest_max must be positive";
  if not (Sys.file_exists cfg.state_dir) then Unix.mkdir cfg.state_dir 0o755;
  if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 16;
  Unix.set_nonblock listen_fd;
  (* The barrier hook needs [t], which needs the engine: tie the knot
     through a forward reference. *)
  let hook_target = ref None in
  let engine =
    Multi_stream.Engine.create ?n_domains:cfg.n_domains ~batch_steps:cfg.batch_steps
      ?budget_bytes:cfg.budget_bytes ~quota_floor:cfg.quota_floor
      ~max_tenants:cfg.max_tenants
      ~on_barrier:(fun ~round participants ->
        match !hook_target with
        | Some t -> on_barrier t ~round participants
        | None -> ())
      ()
  in
  let t =
    {
      cfg;
      listen_fd;
      engine;
      conns = [];
      recorders = Hashtbl.create 8;
      recorder_order = [];
      stopping = false;
      scratch = Bytes.create (1 lsl 16);
    }
  in
  hook_target := Some t;
  let stop = ref false in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true)) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true)) in
  let restore_signals () =
    Sys.set_signal Sys.sigpipe old_pipe;
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int
  in
  (try loop t stop
   with e ->
     (* kill -TERM semantics apply to crashes too: every live tenant is
        snapshotted before the daemon goes down, and a sanitizer
        violation additionally dumps the flight recorder. *)
     (match e with
     | Check.Check_violation v ->
       let path = Filename.concat cfg.state_dir "flight.jsonl" in
       let n =
         Metrics.flight_dump ~path
           ~cli:(String.concat " " (Array.to_list Sys.argv))
           ~detail:(Check.violation_to_string v) (flight_windows t)
       in
       Printf.eprintf "regionsel_daemon: flight recorder: %d windows -> %s\n%!" n path
     | _ -> ());
     snapshot_all t;
     cleanup t;
     restore_signals ();
     raise e);
  (* Clean shutdown (signal or ctrl command): snapshot every attached
     tenant so it can resume after restart. *)
  snapshot_all t;
  cleanup t;
  restore_signals ()
