lib/engine/policy.ml: Addr Block Context Region Regionsel_isa
