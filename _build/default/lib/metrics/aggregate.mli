(** Cross-benchmark aggregation helpers.

    The paper reports per-benchmark ratios of one policy's metric to
    another's, plus an "average" bar that is the arithmetic mean of those
    per-benchmark ratios; geometric means are also provided for robustness
    checks. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], or [0.] when [b = 0.]. *)

val ratio_int : int -> int -> float

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; non-positive entries are skipped. *)

val percent_change : float -> string
(** Render a ratio as a signed percentage change, e.g. [0.82] ->
    ["-18.0%"]. *)
