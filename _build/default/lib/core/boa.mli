(** BOA-style bias-directed trace selection (Sathaye et al., 1999;
    Section 5).

    During emulation BOA keeps taken/not-taken counts for every conditional
    branch; once an entry point has executed a small number of times
    (15 in the original system) a trace is grown {e statically} from the
    entry by following, at each conditional, the direction with the higher
    count.  Growth stops at indirect branches (whose target is unknown
    statically), at blocks already in the trace, at blocks that begin
    cached regions, at backward transfers, and at the size limit.
    Provided as a related-work comparison policy. *)

include Regionsel_engine.Policy.S
