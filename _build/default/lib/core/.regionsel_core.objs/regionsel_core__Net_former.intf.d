lib/core/net_former.mli: Addr Block Regionsel_engine Regionsel_isa
