open Regionsel_isa
module Image = Regionsel_workload.Image
module Behavior = Regionsel_workload.Behavior
module Splitmix = Regionsel_prng.Splitmix

exception Runaway_stack of int

let max_stack_depth = 100_000

(* The step record is all-immediate — three untagged ints — so filling it
   is three plain stores with no write barrier.  Callers that need the
   executed [Block.t] translate the dense id through the program's block
   array themselves (one array read). *)
type step = { mutable block_id : int; mutable taken : bool; mutable next : Addr.t }

let make_step () = { block_id = -1; taken = false; next = Addr.none }

(* The shadow stack is a growable int array rather than a [Stack.t]: pushing
   a return address writes one slot instead of allocating a list cell. *)
type t = {
  image : Image.t;
  program : Program.t;
  mutable pc : Addr.t; (* Addr.none once halted *)
  mutable stack : Addr.t array;
  mutable stack_len : int;
  cond_states : Behavior.state option array; (* keyed by dense block id *)
  indirect_states : Behavior.indirect_state option array;
  prng : Splitmix.t;
  threaded : bool;
  mutable ops : (step -> unit) array; (* threaded mode: dense block id -> terminator op *)
}

(* Branch-behaviour states are keyed by the branch block's dense id, so the
   per-branch lookup is an array read.  States are still created lazily in
   first-execution order — in both dispatch modes — which preserves the
   per-site PRNG streams (and hence bit-for-bit behaviour) across modes. *)
let cond_state t id site =
  match t.cond_states.(id) with
  | Some s -> s
  | None ->
    let s = Behavior.make_state (Image.cond_spec t.image site) t.prng in
    t.cond_states.(id) <- Some s;
    s

let indirect_state t id site =
  match t.indirect_states.(id) with
  | Some s -> s
  | None ->
    let s = Behavior.make_indirect (Image.indirect_spec t.image site) t.prng in
    t.indirect_states.(id) <- Some s;
    s

let push_return t addr =
  if t.stack_len >= max_stack_depth then raise (Runaway_stack max_stack_depth);
  if t.stack_len = Array.length t.stack then begin
    let bigger = Array.make (2 * Array.length t.stack) 0 in
    Array.blit t.stack 0 bigger 0 t.stack_len;
    t.stack <- bigger
  end;
  t.stack.(t.stack_len) <- addr;
  t.stack_len <- t.stack_len + 1

let pop_return t (s : step) =
  s.taken <- true;
  if t.stack_len = 0 then s.next <- Addr.none
  else begin
    t.stack_len <- t.stack_len - 1;
    s.next <- Array.unsafe_get t.stack t.stack_len
  end

let bad_transfer site next =
  invalid_arg
    (Printf.sprintf "Interp.step: transfer from %s to %s, which is not a block start"
       (Addr.to_string site) (Addr.to_string next))

(* Threaded-code dispatch: each block's terminator is compiled once, at
   interpreter creation, into a closure indexed by the block's dense id —
   the same flat-array shape [Region.of_spec] gives compiled automata.  A
   step is then an array load and one indirect call; the closure has the
   fall-through and target addresses pre-resolved as captured ints, so the
   per-variant [match], the [Block.last] site recomputation, and the
   per-step target validation all disappear from the hot path.

   Dropping the validation is sound for statically-addressed terminators:
   [Program.validate] is the only constructor of [Program.t] and proves
   every Jump/Cond/Call target and every fall-through address is a block
   start — and return addresses are pushed Call fall-throughs, so they are
   covered too.  Only the two indirect terminators take targets from
   behaviour specs, which the program proof does not reach; their ops keep
   the per-step check. *)
let compile_op t (block : Block.t) id =
  let fall = Block.fall_addr block in
  let site = Block.last block in
  match block.Block.term with
  | Terminator.Fallthrough ->
    fun s ->
      s.taken <- false;
      s.next <- fall
  | Terminator.Jump tgt ->
    fun s ->
      s.taken <- true;
      s.next <- tgt
  | Terminator.Cond tgt ->
    fun s ->
      if Behavior.decide (cond_state t id site) then begin
        s.taken <- true;
        s.next <- tgt
      end
      else begin
        s.taken <- false;
        s.next <- fall
      end
  | Terminator.Call tgt ->
    fun s ->
      push_return t fall;
      s.taken <- true;
      s.next <- tgt
  | Terminator.Indirect_jump ->
    fun s ->
      let next = Behavior.choose (indirect_state t id site) in
      if not (Program.is_block_start t.program next) then bad_transfer site next;
      s.taken <- true;
      s.next <- next
  | Terminator.Indirect_call ->
    fun s ->
      let next = Behavior.choose (indirect_state t id site) in
      if not (Program.is_block_start t.program next) then bad_transfer site next;
      push_return t fall;
      s.taken <- true;
      s.next <- next
  | Terminator.Return -> fun s -> pop_return t s
  | Terminator.Halt ->
    fun s ->
      s.taken <- false;
      s.next <- Addr.none

let create ?(threaded = true) image ~seed =
  let program = image.Image.program in
  let n = Program.n_blocks program in
  let t =
    {
      image;
      program;
      pc = Program.entry program;
      stack = Array.make 64 0;
      stack_len = 0;
      cond_states = Array.make n None;
      indirect_states = Array.make n None;
      prng = Splitmix.create ~seed;
      threaded;
      ops = [||];
    }
  in
  if threaded then
    t.ops <- Array.init n (fun id -> compile_op t (Program.block_of_id program id) id);
  t

(* The legacy dispatch path: a [match] over terminator variants with the
   fall-through, site, and validation recomputed per step.  Kept (behind
   [create ~threaded:false]) as the differential reference for the
   threaded path — the parity suite and the fuzz oracle run both modes
   over the same workloads and require bit-identical streams. *)
let step_legacy t (s : step) id =
  let program = t.program in
  let block = Program.block_of_id program id in
  let site = Block.last block in
  (match block.Block.term with
  | Terminator.Fallthrough ->
    s.taken <- false;
    s.next <- Block.fall_addr block
  | Terminator.Jump tgt ->
    s.taken <- true;
    s.next <- tgt
  | Terminator.Cond tgt ->
    if Behavior.decide (cond_state t id site) then begin
      s.taken <- true;
      s.next <- tgt
    end
    else begin
      s.taken <- false;
      s.next <- Block.fall_addr block
    end
  | Terminator.Call tgt ->
    push_return t (Block.fall_addr block);
    s.taken <- true;
    s.next <- tgt
  | Terminator.Indirect_jump ->
    s.taken <- true;
    s.next <- Behavior.choose (indirect_state t id site)
  | Terminator.Indirect_call ->
    push_return t (Block.fall_addr block);
    s.taken <- true;
    s.next <- Behavior.choose (indirect_state t id site)
  | Terminator.Return -> pop_return t s
  | Terminator.Halt ->
    s.taken <- false;
    s.next <- Addr.none);
  let next = s.next in
  if (not (Addr.is_none next)) && not (Program.is_block_start program next) then
    bad_transfer site next

let[@inline] step_into t (s : step) =
  let pc = t.pc in
  if Addr.is_none pc then false
  else begin
    (* [pc] is always a validated block start, so the id is in range. *)
    let id = Program.block_id t.program pc in
    s.block_id <- id;
    if t.threaded then (Array.unsafe_get t.ops id) s else step_legacy t s id;
    t.pc <- s.next;
    true
  end

(* Checkpoint support.  The warm state of an interpreter is the program
   counter, the shadow-stack prefix, the root PRNG limbs, and every
   branch-behaviour state created so far.  The op table is a pure function
   of the image and is recompiled by [create].

   Restore materializes the saved behaviour states through the same lazy
   constructors the step path uses — each creation splits the root PRNG,
   exactly as it did in the original run — and then overwrites the root
   limbs and every embedded stream with the saved values, so the order of
   materialization cannot matter: every PRNG position ends up exactly as
   saved, and sites that had not yet executed at the checkpoint will split
   identical streams at their (unchanged) first execution. *)

let save_warm t emit =
  emit t.pc;
  emit t.stack_len;
  for i = 0 to t.stack_len - 1 do
    emit t.stack.(i)
  done;
  let hi, lo = Splitmix.state t.prng in
  emit hi;
  emit lo;
  let n = Program.n_blocks t.program in
  for id = 0 to n - 1 do
    match t.cond_states.(id) with
    | None -> emit 0
    | Some s ->
      emit 1;
      Behavior.save_state s emit
  done;
  for id = 0 to n - 1 do
    match t.indirect_states.(id) with
    | None -> emit 0
    | Some s ->
      emit 1;
      Behavior.save_indirect s emit
  done

let load_warm t read =
  let pc = read () in
  if not (Addr.is_none pc || Program.is_block_start t.program pc) then
    failwith "Interp.load_warm: saved pc is not a block start";
  let stack_len = read () in
  if stack_len < 0 || stack_len > max_stack_depth then
    failwith "Interp.load_warm: saved stack length out of range";
  let stack = Array.make (max 64 stack_len) 0 in
  for i = 0 to stack_len - 1 do
    let a = read () in
    if not (Program.is_block_start t.program a) then
      failwith "Interp.load_warm: saved return address is not a block start";
    stack.(i) <- a
  done;
  let hi = read () in
  let lo = read () in
  let n = Program.n_blocks t.program in
  for id = 0 to n - 1 do
    match read () with
    | 0 -> ()
    | 1 ->
      let site = Block.last (Program.block_of_id t.program id) in
      Behavior.load_state (cond_state t id site) read
    | _ -> failwith "Interp.load_warm: bad cond-state presence flag"
  done;
  for id = 0 to n - 1 do
    match read () with
    | 0 -> ()
    | 1 ->
      let site = Block.last (Program.block_of_id t.program id) in
      Behavior.load_indirect (indirect_state t id site) read
    | _ -> failwith "Interp.load_warm: bad indirect-state presence flag"
  done;
  (* Only after every lazy materialization has drawn its split. *)
  Splitmix.set_state t.prng ~hi ~lo;
  t.pc <- pc;
  t.stack <- stack;
  t.stack_len <- stack_len

let block t (s : step) = Program.block_of_id t.program s.block_id
let threaded t = t.threaded
let pc t = if Addr.is_none t.pc then None else Some t.pc
let stack_depth t = t.stack_len
