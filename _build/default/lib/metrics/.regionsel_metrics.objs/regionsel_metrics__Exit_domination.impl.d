lib/metrics/exit_domination.ml: Addr Block List Option Regionsel_engine Regionsel_isa
