lib/core/lei_former.mli: Addr History_buffer Regionsel_engine Regionsel_isa
