lib/engine/edge_profile.mli: Addr Regionsel_isa
