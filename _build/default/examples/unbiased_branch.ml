(* The paper's Figure 4: an unbiased branch followed by a biased branch.
   NET selects one trace per direction of the unbiased branch and
   duplicates everything after the rejoin; trace combination observes both
   paths and selects a single region with no duplication and fewer exit
   stubs. *)

module Builder = Regionsel_workload.Builder
module Behavior = Regionsel_workload.Behavior
module Simulator = Regionsel_engine.Simulator
module Stats = Regionsel_engine.Stats
module Code_cache = Regionsel_engine.Code_cache
module Context = Regionsel_engine.Context
module Region = Regionsel_engine.Region
module Policies = Regionsel_core.Policies

let image =
  let b = Builder.create () in
  Builder.func b "main";
  Builder.block b ~size:2 Builder.Fallthrough;
  (* A ends with the unbiased branch; its sides B and C rejoin at D, which
     ends with a 90% biased branch whose sides E and F rejoin at G. *)
  Builder.block b ~label:"A" ~size:3 (Builder.Cond ("C", Behavior.Bernoulli 0.5));
  Builder.block b ~label:"B" ~size:4 (Builder.Jump "D");
  Builder.block b ~label:"C" ~size:4 Builder.Fallthrough;
  Builder.block b ~label:"D" ~size:3 (Builder.Cond ("F", Behavior.Bernoulli 0.9));
  Builder.block b ~label:"E" ~size:4 (Builder.Jump "G");
  Builder.block b ~label:"F" ~size:4 Builder.Fallthrough;
  Builder.block b ~label:"G" ~size:2 (Builder.Cond ("A", Behavior.Loop 30_000));
  Builder.block b ~size:1 Builder.Halt;
  Builder.compile b ~name:"figure4" ~entry:"main"

let show name policy =
  let result = Simulator.run ~seed:1L ~policy ~max_steps:250_000 image in
  let regions = Code_cache.regions result.Simulator.ctx.Context.cache in
  let expansion =
    List.fold_left (fun acc (r : Region.t) -> acc + r.Region.copied_insts) 0 regions
  in
  let stubs = List.fold_left (fun acc (r : Region.t) -> acc + r.Region.n_stubs) 0 regions in
  Printf.printf "\n--- %s\n    %d regions, %d copied insts, %d stubs, %d transitions\n" name
    (List.length regions) expansion stubs result.Simulator.stats.Stats.region_transitions;
  List.iter (fun r -> Format.printf "%a@." Region.pp r) regions

let () =
  print_endline "Figure 4: an unbiased branch (A) followed by a biased one (D)";
  show "NET (one trace per unbiased direction, tail duplicated)" Policies.net;
  show "combined NET (one region, both arms, no duplication)" Policies.combined_net;
  show "combined LEI" Policies.combined_lei
