lib/workload/spec_perlbmk.mli: Spec
