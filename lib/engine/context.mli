(** The view of the system a region-selection policy operates on. *)

open Regionsel_isa
module Telemetry = Regionsel_telemetry.Telemetry

type t = {
  program : Program.t;
  params : Params.t;
  cache : Code_cache.t;
  counters : Counters.t;
  gauges : Gauges.t;
  telemetry : Telemetry.sink;
      (** Lifecycle-event sink shared by the simulator, the code cache and
          the policies.  [Telemetry.none] (the default) is a no-op: a run
          without a recorder is bit-identical to one built before the
          telemetry layer existed (guarded by the parity suite). *)
}

val create : ?params:Params.t -> ?telemetry:Telemetry.sink -> Program.t -> t
