(** A set-associative instruction-cache model over the code cache.

    The paper's case for locality (Sections 1 and 2.2) is instruction-fetch
    performance: separated traces live far apart in the code cache, so
    region transitions cost I-cache misses, and duplication inflates the
    working set.  This model quantifies that: regions are laid out at real
    byte addresses in the code cache (see {!Code_cache.address_of}), every
    instruction fetched from a region touches the cache, and the miss rate
    compares selection policies on the locality axis directly.

    Geometry defaults to a typical 2005-era L1 I-cache: 32 KiB, 64-byte
    lines, 4-way set-associative, LRU replacement. *)

type t

val create : ?size_bytes:int -> ?line_bytes:int -> ?ways:int -> unit -> t
(** @raise Invalid_argument if the geometry is not a power-of-two set
    count. *)

val access : t -> addr:int -> bytes:int -> unit
(** Fetch [bytes] starting at byte address [addr], touching every line the
    range covers. *)

val accesses : t -> int
(** Line-granularity accesses so far. *)

val misses : t -> int

val miss_rate : t -> float
(** [misses / accesses]; 0 before any access. *)

val reset : t -> unit
(** Clear contents and counters. *)

val save : t -> (int -> unit) -> unit
(** Checkpoint support: emit tags, LRU stamps, and counters as a flat int
    stream.  Geometry is not saved. *)

val load : t -> (unit -> int) -> unit
(** Restore a {!save} stream into a cache created with the same geometry.
    Raises [Failure] if the slot counts differ. *)
