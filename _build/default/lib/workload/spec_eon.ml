(* 252.eon: C++ ray tracer.  Small constructors (the paper names the
   ggPoint3 constructors) are called from many distinct rendering
   functions; once a constructor's trace is selected, every caller's
   post-call tail is selected through an exit of it — the paper's
   exit-domination outlier (Figure 12). *)

let build () =
  let b = Builder.create () in
  let callers = List.init 12 (fun i -> Printf.sprintf "render.caller%d" i) in
  Patterns.leaf b ~name:"ggpoint3_ctor" ~size:5;
  Patterns.leaf b ~name:"ggvector3_ctor" ~size:5;
  Patterns.leaf b ~name:"ggray_ctor" ~size:6;
  let declared =
    Patterns.call_farm b ~name:"render"
      ~callees:[ "ggpoint3_ctor"; "ggvector3_ctor"; "ggray_ctor" ]
      ~n_callers:12 ~trip:40
  in
  assert (declared = callers);
  Patterns.plain_loop b ~name:"sample" ~trip:150 ~body_blocks:3 ~body_size:5;
  Patterns.cold_farm b ~name:"texture_pool" ~n:8 ~body_size:6;
  Patterns.driver b ~name:"main" (callers @ [ "sample"; "texture_pool" ]);
  Builder.compile b ~name:"eon" ~entry:"main"

let spec =
  Spec.make ~name:"eon"
    ~description:
      "252.eon stand-in: tiny shared constructors called from a dozen rendering loops; \
       the exit-domination outlier"
    ~steps:1_000_000 build
