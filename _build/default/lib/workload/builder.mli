(** A small DSL for constructing workload programs.

    Programs are written as a sequence of functions, each a sequence of
    labelled basic blocks.  Layout follows declaration order: the first
    declared function gets the lowest addresses, blocks within a function are
    contiguous, and consecutive blocks fall through to each other.  This
    gives workload authors direct control over which calls and jumps are
    {e backward} (target at a lower or equal address) — the property NET and
    LEI key their profiling on — simply by ordering declarations: declare a
    callee before its caller to make the call a backward branch, as in the
    paper's Figure 2.

    Branch targets are symbolic labels resolved at {!compile} time.  A label
    is any string unique within the program; a function's name labels its
    first block. *)

type t

type indirect =
  | Weighted of (string * float) list  (** Targets with sampling weights. *)
  | Round_robin of string list  (** Deterministic cycling through targets. *)

type term =
  | Fallthrough  (** Continue into the next declared block. *)
  | Jump of string
  | Cond of string * Behavior.spec  (** Taken target and outcome model. *)
  | Call of string
  | Indirect_jump of indirect
  | Indirect_call of indirect
  | Return
  | Halt

val create : ?base:Regionsel_isa.Addr.t -> unit -> t
(** [create ()] starts an empty program laid out from [base]
    (default [0x1000]). *)

val func : t -> string -> unit
(** [func t name] opens a new function.  Its first block is labelled
    [name]. Subsequent {!block} calls append to it until the next [func]. *)

val block : t -> ?label:string -> ?size:int -> term -> unit
(** [block t ~label ~size term] appends a block of [size] instructions
    (default 4, including the terminator) to the current function.
    @raise Invalid_argument if no function is open or the label repeats. *)

val compile : ?entry:string -> t -> name:string -> Image.t
(** [compile t ~name] lays out, resolves and validates the program.  [entry]
    defaults to the first declared function.
    @raise Invalid_argument on unresolved labels or invalid layout. *)
