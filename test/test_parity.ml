(* Differential test for the hot-path overhaul: the dense-id interpreter,
   packed edge profile, and circular history buffer must not change a
   single metric, and fanning runs across domains must not either.

   [Run_metrics.t] is a flat record of ints, floats, bools, and strings,
   so structural equality is exactly "every metric identical". *)

module Spec = Regionsel_workload.Spec
module Suite = Regionsel_workload.Suite
module Simulator = Regionsel_engine.Simulator
module Domain_pool = Regionsel_engine.Domain_pool
module Edge_profile = Regionsel_engine.Edge_profile
module Run_metrics = Regionsel_metrics.Run_metrics
module Policies = Regionsel_core.Policies
module Addr = Regionsel_isa.Addr
module Block = Regionsel_isa.Block
open Fixtures

(* Small budgets keep the full (workload x policy) sweep test-suite fast
   while still exercising region formation, cache exits, and eviction. *)
let budget (spec : Spec.t) = min spec.Spec.default_steps 30_000

let run ?params (spec : Spec.t) policy_name =
  let policy = Option.get (Policies.find policy_name) in
  Run_metrics.of_result
    (Simulator.run ?params ~seed:1L ~policy ~max_steps:(budget spec) (Spec.image spec))

let tasks =
  List.concat_map
    (fun (spec : Spec.t) -> List.map (fun (p, _) -> spec, p) Policies.all)
    Suite.all

let check_pairwise ~what reference candidate =
  List.iter2
    (fun ((spec : Spec.t), pname) (r, c) ->
      if r <> c then
        Alcotest.failf "%s: metrics differ for %s under %s:\nreference: %a\ncandidate: %a"
          what spec.Spec.name pname Run_metrics.pp r Run_metrics.pp c)
    tasks
    (List.combine reference candidate)

(* The reference: every pair simulated twice sequentially must agree with
   itself — a guard that the simulator is deterministic at all (otherwise
   the parallel comparison below proves nothing). *)
let sequential_deterministic () =
  let a = List.map (fun (spec, p) -> run spec p) tasks in
  let b = List.map (fun (spec, p) -> run spec p) tasks in
  check_pairwise ~what:"sequential repeat" a b

let sequential_vs_parallel () =
  (* Images are lazy: force them on this domain before fanning out. *)
  List.iter (fun ((spec : Spec.t), _) -> ignore (Spec.image spec)) tasks;
  let reference = List.map (fun (spec, p) -> run spec p) tasks in
  let pooled = Domain_pool.map ~n_domains:4 (fun (spec, p) -> run spec p) tasks in
  check_pairwise ~what:"parallel (4 domains)" reference pooled

(* The fault layer's zero-fault guarantee: enabling the machinery with an
   empty schedule must leave every exported metric identical to a run with
   the machinery disabled — the fault path costs the clean path nothing. *)
let empty_fault_profile_is_identity () =
  let params =
    { Regionsel_engine.Params.default with
      Regionsel_engine.Params.faults = Some Regionsel_engine.Params.no_faults
    }
  in
  let reference = List.map (fun (spec, p) -> run spec p) tasks in
  let with_empty_faults = List.map (fun (spec, p) -> run ~params spec p) tasks in
  check_pairwise ~what:"empty fault profile" reference with_empty_faults

(* The compiled automaton and the link cache are pure execution-path
   mechanics: every exported metric except the compiled-only link/node
   counters (which are 0 in legacy mode by construction) must be
   bit-identical between the two modes, across the whole matrix. *)
let legacy_params ?(faults = None) () =
  { Regionsel_engine.Params.default with
    Regionsel_engine.Params.compiled_regions = false;
    faults
  }

let strip_compiled_counters (m : Run_metrics.t) =
  { m with Run_metrics.link_hits = 0; link_severs = 0; links_high_water = 0; node_steps = 0 }

let compiled_matches_legacy () =
  let compiled = List.map (fun (spec, p) -> strip_compiled_counters (run spec p)) tasks in
  let legacy =
    List.map (fun (spec, p) -> strip_compiled_counters (run ~params:(legacy_params ()) spec p)) tasks
  in
  check_pairwise ~what:"compiled vs legacy execution" legacy compiled

(* Same comparison under fault injection: invalidation must sever links in
   a way that is metric-invisible — a stale link surviving an SMC
   invalidation would show up here as diverging hit rates or dispatches. *)
let compiled_matches_legacy_under_faults () =
  let faults = Regionsel_engine.Params.fault_profile "mixed" in
  let params = { Regionsel_engine.Params.default with Regionsel_engine.Params.faults } in
  let compiled = List.map (fun (spec, p) -> strip_compiled_counters (run ~params spec p)) tasks in
  let legacy =
    List.map
      (fun (spec, p) -> strip_compiled_counters (run ~params:(legacy_params ~faults ()) spec p))
      tasks
  in
  check_pairwise ~what:"compiled vs legacy under faults" legacy compiled

(* Interpreter dispatch is pure mechanics: the threaded closure table and
   the legacy terminator match must agree on every exported metric with
   nothing stripped — unlike region modes, dispatch mode is invisible even
   to the link/node counters. *)
let legacy_dispatch_params ?(faults = None) () =
  { Regionsel_engine.Params.default with
    Regionsel_engine.Params.threaded_dispatch = false;
    faults
  }

let threaded_matches_legacy_dispatch () =
  let threaded = List.map (fun (spec, p) -> run spec p) tasks in
  let legacy =
    List.map (fun (spec, p) -> run ~params:(legacy_dispatch_params ()) spec p) tasks
  in
  check_pairwise ~what:"threaded vs legacy dispatch" legacy threaded

let threaded_matches_legacy_dispatch_under_faults () =
  let faults = Regionsel_engine.Params.fault_profile "mixed" in
  let params = { Regionsel_engine.Params.default with Regionsel_engine.Params.faults } in
  let threaded = List.map (fun (spec, p) -> run ~params spec p) tasks in
  let legacy =
    List.map
      (fun (spec, p) -> run ~params:(legacy_dispatch_params ~faults ()) spec p)
      tasks
  in
  check_pairwise ~what:"threaded vs legacy dispatch under faults" legacy threaded

(* The batched edge profile must be observationally exact.  Part one: a
   real fault run (watchdog windows = Stats.snapshot boundaries, each
   preceded by a ring drain) whose final profile must equal a per-step
   reference rebuilt by the observer — same edges, same counts, nothing
   lost or double-counted across all the mid-run flushes. *)
let batched_profile_matches_per_step () =
  let spec = List.hd Suite.all in
  let policy = Option.get (Policies.find "net") in
  let faults = Regionsel_engine.Params.fault_profile "mixed" in
  let params = { Regionsel_engine.Params.default with Regionsel_engine.Params.faults } in
  let reference : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let stream = ref [] in
  let observer =
    {
      Simulator.on_context = (fun _ -> ());
      on_step =
        (fun ~step:_ ~block ~taken:_ ~next ~believed:_ ->
          if not (Addr.is_none next) then begin
            let key = (block.Block.start, next) in
            Hashtbl.replace reference key
              (1 + Option.value ~default:0 (Hashtbl.find_opt reference key));
            stream := key :: !stream
          end);
    }
  in
  let result =
    Simulator.run ~params ~seed:1L ~observer ~policy ~max_steps:(budget spec)
      (Spec.image spec)
  in
  let edges = result.Simulator.edges in
  check_true "the run actually drained the ring at least once"
    (Edge_profile.flushes edges >= 1);
  let n =
    Edge_profile.fold
      (fun ~src ~dst n acc ->
        (match Hashtbl.find_opt reference (src, dst) with
        | Some r when r = n -> ()
        | Some r ->
          Alcotest.failf "edge %s->%s: profile says %d, per-step reference says %d"
            (Addr.to_string src) (Addr.to_string dst) n r
        | None ->
          Alcotest.failf "edge %s->%s: in the profile but never observed"
            (Addr.to_string src) (Addr.to_string dst));
        acc + 1)
      edges 0
  in
  check_int "profile holds exactly the observed edge set" (Hashtbl.length reference) n;
  !stream

(* Part two: replay that same step stream into fresh profiles, forcing a
   flush-and-read at every [k]th step for several boundary spacings.  Every
   boundary must see counts identical to the per-step reference — exactness
   at *every* observation point, not just the end of the run. *)
let batched_profile_exact_at_every_boundary () =
  let stream = List.rev (batched_profile_matches_per_step ()) in
  List.iter
    (fun k ->
      let e = Edge_profile.create () in
      let reference : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
      List.iteri
        (fun i ((src, dst) as key) ->
          Edge_profile.record e ~src ~dst;
          Hashtbl.replace reference key
            (1 + Option.value ~default:0 (Hashtbl.find_opt reference key));
          if (i + 1) mod k = 0 then begin
            Edge_profile.flush e;
            if Edge_profile.count e ~src ~dst <> Hashtbl.find reference key then
              Alcotest.failf
                "boundary spacing %d, step %d: edge %s->%s flushed to %d but the \
                 per-step count is %d"
                k (i + 1) (Addr.to_string src) (Addr.to_string dst)
                (Edge_profile.count e ~src ~dst)
                (Hashtbl.find reference key)
          end)
        stream;
      Hashtbl.iter
        (fun (src, dst) r ->
          if Edge_profile.count e ~src ~dst <> r then
            Alcotest.failf "boundary spacing %d: edge %s->%s ends at %d, expected %d" k
              (Addr.to_string src) (Addr.to_string dst)
              (Edge_profile.count e ~src ~dst)
              r)
        reference)
    [ 1; 7; 64; 1000 ]

let suite =
  [
    case "sequential runs are deterministic" sequential_deterministic;
    case "pooled runs match sequential bit-for-bit" sequential_vs_parallel;
    case "empty fault profile leaves metrics identical" empty_fault_profile_is_identity;
    case "compiled matches legacy execution" compiled_matches_legacy;
    case "compiled matches legacy under faults" compiled_matches_legacy_under_faults;
    case "threaded dispatch matches legacy dispatch" threaded_matches_legacy_dispatch;
    case "threaded dispatch matches legacy dispatch under faults"
      threaded_matches_legacy_dispatch_under_faults;
    case "batched edge profile is exact at every boundary"
      batched_profile_exact_at_every_boundary;
  ]
