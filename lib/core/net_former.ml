open Regionsel_isa
module Region = Regionsel_engine.Region
module Context = Regionsel_engine.Context
module Code_cache = Regionsel_engine.Code_cache
module Params = Regionsel_engine.Params

type t = {
  entry : Addr.t;
  mutable rev_blocks : Block.t list;
  mutable n_blocks : int;
  mutable n_insts : int;
  mutable finished : bool;
}

type outcome = Continue | Done of Region.path

let start ~entry = { entry; rev_blocks = []; n_blocks = 0; n_insts = 0; finished = false }
let entry t = t.entry

let finish t ~final_next =
  t.finished <- true;
  Done { Region.blocks = List.rev t.rev_blocks; final_next }

(* Checkpoint support: blocks travel as start addresses and are looked up
   again in the program, so a corrupt stream cannot smuggle in a block the
   program does not contain. *)

let save t emit =
  emit t.entry;
  emit (List.length t.rev_blocks);
  List.iter (fun (b : Block.t) -> emit b.Block.start) t.rev_blocks;
  emit t.n_blocks;
  emit t.n_insts;
  emit (if t.finished then 1 else 0)

let load ~program read =
  let entry = read () in
  let n = read () in
  if n < 0 then failwith "Net_former.load: negative block count";
  let rev_blocks =
    List.init n (fun _ ->
        let a = read () in
        if not (Program.is_block_start program a) then
          failwith "Net_former.load: block is not a block start";
        Program.block_of_id program (Program.block_id program a))
  in
  let n_blocks = read () in
  let n_insts = read () in
  let finished =
    match read () with
    | 0 -> false
    | 1 -> true
    | _ -> failwith "Net_former.load: bad flag"
  in
  { entry; rev_blocks; n_blocks; n_insts; finished }

let feed t ~ctx ~block ~taken ~next =
  if t.finished then invalid_arg "Net_former.feed: already finished";
  if t.rev_blocks = [] && not (Addr.equal block.Block.start t.entry) then
    invalid_arg "Net_former.feed: first block does not start at the entry";
  t.rev_blocks <- block :: t.rev_blocks;
  t.n_blocks <- t.n_blocks + 1;
  t.n_insts <- t.n_insts + block.Block.size;
  let params = ctx.Context.params in
  match next with
  | None -> finish t ~final_next:None
  | Some a ->
    let stop_taken =
      taken
      && (Addr.is_backward ~src:(Block.last block) ~tgt:a
         || Addr.equal a t.entry
         || Code_cache.mem ctx.Context.cache a)
    in
    if stop_taken then finish t ~final_next:(Some a)
    else if
      t.n_insts >= params.Params.max_trace_insts || t.n_blocks >= params.Params.max_trace_blocks
    then finish t ~final_next:(Some a)
    else Continue
