(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the simulator (branch outcomes, indirect
    targets, workload synthesis) flows through this module so that every run
    is reproducible from a fixed seed.  The generator is SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014): a tiny, fast, splittable generator
    with good statistical quality for simulation purposes. *)

type t
(** A mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy g] is an independent generator that will produce the same future
    stream as [g]. *)

val state : t -> int * int
(** [state g] is the full generator state as [(hi, lo)] 32-bit limbs.
    Handing the pair to {!set_state} reproduces [g]'s exact remaining
    stream — the checkpoint/restore hook. *)

val set_state : t -> hi:int -> lo:int -> unit
(** Overwrite the generator state with saved limbs.  Raises
    [Invalid_argument] if either limb lies outside [[0, 2^32)]. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s remaining stream.  Used to give every
    branch site its own stream so that adding a branch to a workload does not
    perturb the outcomes of unrelated branches. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** [bits30 g] is a uniform integer in [[0, 2^30)]. *)

val int : t -> int -> int
(** [int g bound] is uniform in [[0, bound)]. Requires [bound > 0]. *)

val bits53 : t -> int
(** [bits53 g] is a uniform integer in [[0, 2^53)]: the integer [float]
    is built from, exposed so callers can compare against a precomputed
    integer threshold without boxing a float per draw. *)

val float : t -> float
(** [float g] is uniform in [[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli g ~p] is [true] with probability [p]. *)

val categorical : t -> weights:float array -> int
(** [categorical g ~weights] samples an index with probability proportional
    to its weight. Requires a non-empty array with positive total weight. *)
