(* SplitMix64 with the 64-bit state held as two 32-bit limbs in native
   ints.  OCaml boxes every [Int64] intermediate (without flambda, one
   [next_int64] allocated ~10 boxes), and the generator runs on the
   simulator's per-branch hot path — so the stepping arithmetic is done
   limb-wise in (untagged-immediate) native ints instead, bit-for-bit
   equal to the reference 64-bit implementation.  [mhi]/[mlo] are scratch
   cells holding the last mixed output, avoiding a tuple per draw. *)

type t = {
  mutable hi : int; (* state bits 63..32, in [0, 2^32) *)
  mutable lo : int; (* state bits 31..0 *)
  mutable mhi : int; (* last mixed output, high/low limbs *)
  mutable mlo : int;
}

let mask32 = 0xFFFF_FFFF

(* golden gamma 0x9E3779B97F4A7C15 *)
let gamma_hi = 0x9E3779B9
let gamma_lo = 0x7F4A7C15

let create ~seed =
  {
    hi = Int64.to_int (Int64.shift_right_logical seed 32);
    lo = Int64.to_int (Int64.logand seed 0xFFFF_FFFFL);
    mhi = 0;
    mlo = 0;
  }

let copy g = { hi = g.hi; lo = g.lo; mhi = 0; mlo = 0 }

(* The full generator state is the two state limbs: [mhi]/[mlo] are
   scratch (the last mixed output) and are never read across draws, so a
   saved-and-restored generator reproduces the exact remaining stream. *)
let state g = g.hi, g.lo

let set_state g ~hi ~lo =
  if hi < 0 || hi > mask32 || lo < 0 || lo > mask32 then
    invalid_arg "Splitmix.set_state: limbs must lie in [0, 2^32)";
  g.hi <- hi;
  g.lo <- lo;
  g.mhi <- 0;
  g.mlo <- 0

(* Low 64 bits of the product (xh:xl) * (yh:yl), into mhi:mlo.  The cross
   terms enter shifted left by 32, so only their low 32 bits matter, and
   native multiplication is exact mod 2^63, so those bits survive; the
   xl*yl term needs all 64 bits and is built from 16-bit partials. *)
let mul_into t xh xl yh yl =
  let a0 = xl land 0xFFFF and a1 = xl lsr 16 in
  let b0 = yl land 0xFFFF and b1 = yl lsr 16 in
  let t1 = (a1 * b0) + (a0 * b1) in
  let u = (a0 * b0) + ((t1 land 0xFFFF) lsl 16) in
  let cross = ((xl * yh) + (xh * yl)) land mask32 in
  t.mlo <- u land mask32;
  t.mhi <- ((a1 * b1) + (t1 lsr 16) + (u lsr 32) + cross) land mask32

(* Advance the state by gamma and leave mix64(state) in mhi:mlo.
   Finalization mix from the SplitMix64 reference implementation. *)
let next_mixed t =
  let slo = t.lo + gamma_lo in
  let lo = slo land mask32 in
  let hi = (t.hi + gamma_hi + (slo lsr 32)) land mask32 in
  t.lo <- lo;
  t.hi <- hi;
  (* z ^= z >>> 30; z *= 0xBF58476D1CE4E5B9 *)
  let lo1 = lo lxor ((lo lsr 30) lor ((hi lsl 2) land mask32))
  and hi1 = hi lxor (hi lsr 30) in
  mul_into t hi1 lo1 0xBF58476D 0x1CE4E5B9;
  (* z ^= z >>> 27; z *= 0x94D049BB133111EB *)
  let lo3 = t.mlo lxor ((t.mlo lsr 27) lor ((t.mhi lsl 5) land mask32))
  and hi3 = t.mhi lxor (t.mhi lsr 27) in
  mul_into t hi3 lo3 0x94D049BB 0x133111EB;
  (* z ^= z >>> 31 *)
  t.mlo <- t.mlo lxor ((t.mlo lsr 31) lor ((t.mhi lsl 1) land mask32));
  t.mhi <- t.mhi lxor (t.mhi lsr 31)

let next_int64 t =
  next_mixed t;
  Int64.logor (Int64.shift_left (Int64.of_int t.mhi) 32) (Int64.of_int t.mlo)

let split g =
  next_mixed g;
  { hi = g.mhi; lo = g.mlo; mhi = 0; mlo = 0 }

let bits30 g =
  next_mixed g;
  g.mhi lsr 2

let int g bound =
  assert (bound > 0);
  if bound <= 1 then 0
  else
    (* Rejection sampling over 30-bit values to avoid modulo bias. *)
    let limit = 0x4000_0000 - (0x4000_0000 mod bound) in
    let rec draw () =
      let v = bits30 g in
      if v < limit then v mod bound else draw ()
    in
    draw ()

let bits53 g =
  next_mixed g;
  (g.mhi lsl 21) lor (g.mlo lsr 11)

let float g =
  (* 53 uniform bits, as in the reference double generator. *)
  float_of_int (bits53 g) *. (1.0 /. 9007199254740992.0)

let bool g =
  next_mixed g;
  g.mlo land 1 = 1

let bernoulli g ~p = if p >= 1.0 then true else if p <= 0.0 then false else float g < p

let categorical g ~weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  assert (Array.length weights > 0 && total > 0.0);
  let x = float g *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else scan (i + 1) acc
  in
  scan 0 0.0
