(* Tests for the extension features: the bounded code cache (flush-all and
   FIFO eviction, regenerations) and the whole-method region policy with
   its multi-entry regions. *)

open Regionsel_isa
module Region = Regionsel_engine.Region
module Code_cache = Regionsel_engine.Code_cache
module Params = Regionsel_engine.Params
module Stats = Regionsel_engine.Stats
module Simulator = Regionsel_engine.Simulator
module Run_metrics = Regionsel_metrics.Run_metrics
module Policies = Regionsel_core.Policies
open Fixtures

let mk start size term = Block.make ~start ~size ~term

let spec_at ?(size = 10) start =
  (* One block of [size] instructions with a return: 1 stub, so the region
     costs size * 4 + 10 bytes. *)
  Region.spec_of_path ~kind:Region.Trace
    { Region.blocks = [ mk start size Terminator.Return ]; final_next = None }

let region_cost = (10 * Region.inst_bytes) + Region.stub_bytes

(* Bounded cache, unit level *)

let unbounded_never_evicts () =
  let cache = Code_cache.create () in
  for i = 0 to 99 do
    ignore (Code_cache.install cache (spec_at (i * 16)))
  done;
  check_int "all live" 100 (Code_cache.n_regions cache);
  check_int "no evictions" 0 (Code_cache.evictions cache)

let flush_all_on_overflow () =
  let cache = Code_cache.create ~capacity_bytes:(3 * region_cost) ~eviction:Params.Flush_all () in
  for i = 0 to 2 do
    ignore (Code_cache.install cache (spec_at (i * 16)))
  done;
  check_int "three fit" 3 (Code_cache.n_regions cache);
  ignore (Code_cache.install cache (spec_at 100));
  check_int "flush leaves only the newcomer" 1 (Code_cache.n_regions cache);
  check_int "one flush" 1 (Code_cache.flushes cache);
  check_int "three evictions" 3 (Code_cache.evictions cache);
  check_true "evicted entry no longer found" (Code_cache.find cache 0 = None);
  check_int "all regions remembers everyone" 4 (List.length (Code_cache.all_regions cache))

let fifo_evicts_oldest () =
  let cache =
    Code_cache.create ~capacity_bytes:(3 * region_cost) ~eviction:Params.Evict_oldest ()
  in
  for i = 0 to 3 do
    ignore (Code_cache.install cache (spec_at (i * 16)))
  done;
  check_int "still three live" 3 (Code_cache.n_regions cache);
  check_true "oldest gone" (Code_cache.find cache 0 = None);
  check_true "newest present" (Code_cache.find cache 48 <> None);
  check_int "one eviction" 1 (Code_cache.evictions cache)

let regeneration_counted () =
  let cache = Code_cache.create ~capacity_bytes:region_cost ~eviction:Params.Evict_oldest () in
  ignore (Code_cache.install cache (spec_at 0));
  ignore (Code_cache.install cache (spec_at 16)) (* evicts 0 *);
  ignore (Code_cache.install cache (spec_at 0)) (* re-selects 0 *);
  check_int "one regeneration" 1 (Code_cache.regenerations cache)

let bytes_accounting () =
  let cache = Code_cache.create ~capacity_bytes:(2 * region_cost) ~eviction:Params.Evict_oldest () in
  ignore (Code_cache.install cache (spec_at 0));
  check_int "one region's bytes" region_cost (Code_cache.bytes_used cache);
  ignore (Code_cache.install cache (spec_at 16));
  ignore (Code_cache.install cache (spec_at 32));
  check_true "capacity respected" (Code_cache.bytes_used cache <= 2 * region_cost)

let oversized_region_still_installs () =
  let cache = Code_cache.create ~capacity_bytes:10 ~eviction:Params.Evict_oldest () in
  ignore (Code_cache.install cache (spec_at 0));
  check_int "installed despite exceeding capacity" 1 (Code_cache.n_regions cache)

(* Bounded cache, end to end *)

let bounded_run_still_correct () =
  List.iter
    (fun eviction ->
      let params =
        { Params.default with Params.cache_capacity_bytes = Some 200; cache_eviction = eviction }
      in
      let result = run ~params Policies.net (figure4 ()) in
      let m = Run_metrics.of_result result in
      check_true "evictions happened" (m.Run_metrics.evictions > 0);
      check_true "regenerations happened" (m.Run_metrics.regenerations > 0);
      check_true "execution still mostly cached" (m.Run_metrics.hit_rate > 0.5))
    [ Params.Flush_all; Params.Evict_oldest ]

let bounded_cache_hurts_hit_rate () =
  let hit capacity =
    let params = { Params.default with Params.cache_capacity_bytes = capacity } in
    (Run_metrics.of_result (run ~params Policies.net (figure4 ()))).Run_metrics.hit_rate
  in
  check_true "tight cache no better than unbounded" (hit (Some 120) <= hit None)

let aux_entries_rejected_when_not_nodes () =
  check_true "aux entry must be a node"
    (try
       ignore
         (Region.of_spec ~id:0 ~selected_at:0
            { (spec_at 0) with Region.aux_entries = [ 999 ] });
       false
     with Invalid_argument _ -> true)

(* Whole-method regions *)

let method_selects_whole_function () =
  let result = run Policies.jit_method (figure2 ()) in
  let regions = regions_of result in
  check_true "selected something" (regions <> []);
  List.iter
    (fun (r : Region.t) -> check_true "kind is method" (r.Region.kind = Region.Method))
    regions;
  (* The callee (two blocks at 0x1000) must be one region... *)
  (match List.find_opt (fun (r : Region.t) -> r.Region.entry = 0x1000) regions with
  | Some callee -> check_int "callee has both blocks" 2 callee.Region.n_nodes
  | None -> Alcotest.fail "callee method not selected");
  ()

let method_reenters_at_continuation () =
  (* With both the caller's loop and the callee compiled, execution should
     stay almost entirely in the cache: returns re-enter the caller method
     at the call continuation (an aux entry). *)
  let result = run Policies.jit_method (figure2 ()) in
  check_true "hit rate above 95%" (Stats.hit_rate result.Simulator.stats > 0.95);
  let caller =
    List.find_opt
      (fun (r : Region.t) -> Region.mem_block r 0x100b (* the call block bd *))
      (regions_of result)
  in
  match caller with
  | Some r ->
    check_true "continuation is an aux entry"
      (Addr.Set.mem 0x100f r.Region.aux_entries);
    check_true "re-entered more often than invoked" (r.Region.entries > 1_000)
  | None -> Alcotest.fail "caller method not selected"

let method_includes_cold_code () =
  (* Method regions include the whole function, cold arms and all; the
     rarely-taken side C of figure2's loop is selected even though NET
     would exclude it. *)
  let result = run Policies.jit_method (figure2 ()) in
  check_true "cold block selected"
    (List.exists (fun r -> Region.mem_block r 0x1012 (* block c *)) (regions_of result))

let method_runs_on_suite () =
  List.iter
    (fun name ->
      let spec = Option.get (Regionsel_workload.Suite.find name) in
      let result =
        run ~max_steps:60_000 Policies.jit_method (Regionsel_workload.Spec.image spec)
      in
      check_true (name ^ " hit rate sane") (Stats.hit_rate result.Simulator.stats > 0.5))
    [ "gzip"; "eon"; "perlbmk" ]

let suite =
  [
    case "unbounded never evicts" unbounded_never_evicts;
    case "flush-all on overflow" flush_all_on_overflow;
    case "fifo evicts oldest" fifo_evicts_oldest;
    case "regeneration counted" regeneration_counted;
    case "bytes accounting" bytes_accounting;
    case "oversized region still installs" oversized_region_still_installs;
    case "bounded run still correct" bounded_run_still_correct;
    case "bounded cache hurts hit rate" bounded_cache_hurts_hit_rate;
    case "aux entries rejected when not nodes" aux_entries_rejected_when_not_nodes;
    case "method selects whole function" method_selects_whole_function;
    case "method re-enters at continuation" method_reenters_at_continuation;
    case "method includes cold code" method_includes_cold_code;
    case "method runs on suite" method_runs_on_suite;
  ]
