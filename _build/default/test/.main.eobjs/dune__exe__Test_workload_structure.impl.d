test/test_workload_structure.ml: Addr Array Block Fixtures List Option Printf Program Regionsel_core Regionsel_isa Regionsel_workload Terminator
