type t = {
  entry : Addr.t;
  blocks : Block.t array; (* sorted by start address *)
  index : Block.t Addr.Table.t; (* start address -> block *)
  n_insts : int;
}

let entry t = t.entry
let block_at t a = Addr.Table.find_opt t.index a
let block_at_exn t a = Addr.Table.find t.index a
let is_block_start t a = Addr.Table.mem t.index a
let n_blocks t = Array.length t.blocks
let n_insts t = t.n_insts
let blocks t = Array.copy t.blocks
let iter_blocks f t = Array.iter f t.blocks

let errorf fmt = Format.kasprintf (fun s -> Error s) fmt

let validate ~entry blocks =
  let sorted = List.sort (fun a b -> Addr.compare a.Block.start b.Block.start) blocks in
  let index = Addr.Table.create (List.length sorted * 2) in
  let rec check_layout = function
    | [] | [ _ ] -> Ok ()
    | a :: (b :: _ as rest) ->
      if Block.fall_addr a > b.Block.start then
        errorf "blocks %a and %a overlap" Block.pp a Block.pp b
      else check_layout rest
  in
  let check_target b tgt =
    if Addr.Table.mem index tgt then Ok ()
    else errorf "block %a targets %a, which is not a block start" Block.pp b Addr.pp tgt
  in
  let check_fall b =
    let fall = Block.fall_addr b in
    if Addr.Table.mem index fall then Ok ()
    else errorf "block %a falls through to %a, which is not a block start" Block.pp b Addr.pp fall
  in
  let check_block b =
    match b.Block.term with
    | Terminator.Fallthrough -> check_fall b
    | Terminator.Jump tgt -> check_target b tgt
    | Terminator.Cond tgt -> (
      match check_target b tgt with Ok () -> check_fall b | Error _ as e -> e)
    | Terminator.Call tgt -> (
      (* The return address must be a valid resumption point. *)
      match check_target b tgt with Ok () -> check_fall b | Error _ as e -> e)
    | Terminator.Indirect_call -> check_fall b
    | Terminator.Indirect_jump | Terminator.Return | Terminator.Halt -> Ok ()
  in
  let rec check_all = function
    | [] -> Ok ()
    | b :: rest -> ( match check_block b with Ok () -> check_all rest | Error _ as e -> e)
  in
  if sorted = [] then errorf "program has no blocks"
  else begin
    List.iter (fun b -> Addr.Table.replace index b.Block.start b) sorted;
    if Addr.Table.length index <> List.length sorted then
      errorf "two blocks share a start address"
    else
      match check_layout sorted with
      | Error _ as e -> e
      | Ok () ->
        if not (Addr.Table.mem index entry) then
          errorf "entry %a is not a block start" Addr.pp entry
        else begin
          match check_all sorted with
          | Error _ as e -> e
          | Ok () ->
            let n_insts = List.fold_left (fun acc b -> acc + b.Block.size) 0 sorted in
            Ok { entry; blocks = Array.of_list sorted; index; n_insts }
        end
  end

let of_blocks ~entry blocks = validate ~entry blocks

let of_blocks_exn ~entry blocks =
  match of_blocks ~entry blocks with
  | Ok t -> t
  | Error msg -> invalid_arg ("Program.of_blocks_exn: " ^ msg)

let pp ppf t =
  Format.fprintf ppf "@[<v>program entry=%a (%d blocks, %d insts)" Addr.pp t.entry (n_blocks t)
    t.n_insts;
  Array.iter (fun b -> Format.fprintf ppf "@,  %a" Block.pp b) t.blocks;
  Format.fprintf ppf "@]"
