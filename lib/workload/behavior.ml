open Regionsel_isa
module Splitmix = Regionsel_prng.Splitmix

type spec =
  | Always_taken
  | Never_taken
  | Bernoulli of float
  | Loop of int
  | Pattern of bool array
  | Phased of (int * spec) list

type indirect_spec =
  | Weighted_targets of (Addr.t * float) array
  | Round_robin of Addr.t array

type state =
  | S_const of bool
  | S_bernoulli of { thr : int; prng : Splitmix.t }
      (* [thr] = ceil (p * 2^53): [bits53 < thr] iff [float < p], exactly —
         scaling by a power of two and the ceil are both exact on doubles —
         so each decision is an int compare instead of a boxed float. *)
  | S_loop of { trip : int; mutable left : int }
  | S_pattern of { pattern : bool array; mutable pos : int }
  | S_phased of { phases : (int * state) array; mutable phase : int; mutable left : int }

let rec make_state spec prng =
  match spec with
  | Always_taken -> S_const true
  | Never_taken -> S_const false
  | Bernoulli p ->
    if p < 0.0 || p > 1.0 then invalid_arg "Behavior: Bernoulli probability out of range";
    S_bernoulli { thr = int_of_float (Float.ceil (p *. 9007199254740992.0)); prng = Splitmix.split prng }
  | Loop n ->
    if n < 1 then invalid_arg "Behavior: Loop trip count must be >= 1";
    S_loop { trip = n; left = n - 1 }
  | Pattern pat ->
    if Array.length pat = 0 then invalid_arg "Behavior: empty pattern";
    S_pattern { pattern = Array.copy pat; pos = 0 }
  | Phased phases ->
    if phases = [] then invalid_arg "Behavior: empty phase list";
    List.iter (fun (k, _) -> if k < 1 then invalid_arg "Behavior: phase length must be >= 1") phases;
    let phases = Array.of_list (List.map (fun (k, s) -> k, make_state s prng) phases) in
    let first_len, _ = phases.(0) in
    S_phased { phases; phase = 0; left = first_len }

let rec decide = function
  | S_const b -> b
  | S_bernoulli s -> Splitmix.bits53 s.prng < s.thr
  | S_loop s ->
    if s.left > 0 then begin
      s.left <- s.left - 1;
      true
    end
    else begin
      s.left <- s.trip - 1;
      false
    end
  | S_pattern s ->
    let outcome = s.pattern.(s.pos) in
    (* [pos] is always in range, so wrap-around is a compare, not a div. *)
    let p = s.pos + 1 in
    s.pos <- (if p = Array.length s.pattern then 0 else p);
    outcome
  | S_phased s ->
    let _, inner = s.phases.(s.phase) in
    let outcome = decide inner in
    s.left <- s.left - 1;
    if s.left = 0 then begin
      let p = s.phase + 1 in
      s.phase <- (if p = Array.length s.phases then 0 else p);
      let len, _ = s.phases.(s.phase) in
      s.left <- len
    end;
    outcome

type indirect_state =
  | I_weighted of { targets : Addr.t array; weights : float array; prng : Splitmix.t }
  | I_round_robin of { targets : Addr.t array; mutable pos : int }

let make_indirect spec prng =
  match spec with
  | Weighted_targets pairs ->
    if Array.length pairs = 0 then invalid_arg "Behavior: no indirect targets";
    let targets = Array.map fst pairs in
    let weights = Array.map snd pairs in
    I_weighted { targets; weights; prng = Splitmix.split prng }
  | Round_robin targets ->
    if Array.length targets = 0 then invalid_arg "Behavior: no indirect targets";
    I_round_robin { targets = Array.copy targets; pos = 0 }

let choose = function
  | I_weighted s -> s.targets.(Splitmix.categorical s.prng ~weights:s.weights)
  | I_round_robin s ->
    let tgt = s.targets.(s.pos) in
    let p = s.pos + 1 in
    s.pos <- (if p = Array.length s.targets then 0 else p);
    tgt

(* Checkpoint support: flatten a state's mutable position — PRNG limbs,
   loop/pattern/phase cursors — into an int stream and restore it into a
   freshly instantiated state of the same spec.  The structure (variant
   shape, phase arity) comes from the spec at load time, so only the
   mutables travel; a shape mismatch means the stream does not belong to
   this spec and raises [Failure]. *)

let rec save_state st emit =
  match st with
  | S_const _ -> ()
  | S_bernoulli s ->
    let hi, lo = Splitmix.state s.prng in
    emit hi;
    emit lo
  | S_loop s -> emit s.left
  | S_pattern s -> emit s.pos
  | S_phased s ->
    emit s.phase;
    emit s.left;
    Array.iter (fun (_, inner) -> save_state inner emit) s.phases

let rec load_state st read =
  match st with
  | S_const _ -> ()
  | S_bernoulli s ->
    let hi = read () in
    let lo = read () in
    Splitmix.set_state s.prng ~hi ~lo
  | S_loop s ->
    let left = read () in
    if left < 0 || left >= s.trip then failwith "Behavior.load_state: loop cursor out of range";
    s.left <- left
  | S_pattern s ->
    let pos = read () in
    if pos < 0 || pos >= Array.length s.pattern then
      failwith "Behavior.load_state: pattern cursor out of range";
    s.pos <- pos
  | S_phased s ->
    let phase = read () in
    let left = read () in
    if phase < 0 || phase >= Array.length s.phases then
      failwith "Behavior.load_state: phase index out of range";
    let len, _ = s.phases.(phase) in
    if left < 1 || left > len then failwith "Behavior.load_state: phase cursor out of range";
    s.phase <- phase;
    s.left <- left;
    Array.iter (fun (_, inner) -> load_state inner read) s.phases

let save_indirect st emit =
  match st with
  | I_weighted s ->
    let hi, lo = Splitmix.state s.prng in
    emit hi;
    emit lo
  | I_round_robin s -> emit s.pos

let load_indirect st read =
  match st with
  | I_weighted s ->
    let hi = read () in
    let lo = read () in
    Splitmix.set_state s.prng ~hi ~lo
  | I_round_robin s ->
    let pos = read () in
    if pos < 0 || pos >= Array.length s.targets then
      failwith "Behavior.load_indirect: cursor out of range";
    s.pos <- pos

let rec pp_spec ppf = function
  | Always_taken -> Format.pp_print_string ppf "always"
  | Never_taken -> Format.pp_print_string ppf "never"
  | Bernoulli p -> Format.fprintf ppf "bernoulli(%.2f)" p
  | Loop n -> Format.fprintf ppf "loop(%d)" n
  | Pattern pat ->
    Format.fprintf ppf "pattern(%s)"
      (String.concat "" (Array.to_list (Array.map (fun b -> if b then "T" else "N") pat)))
  | Phased phases ->
    Format.fprintf ppf "phased(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf (k, s) -> Format.fprintf ppf "%d:%a" k pp_spec s))
      phases
