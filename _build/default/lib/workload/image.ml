open Regionsel_isa

type t = {
  name : string;
  program : Program.t;
  cond_specs : Behavior.spec Addr.Table.t;
  indirect_specs : Behavior.indirect_spec Addr.Table.t;
}

let cond_spec t a = Addr.Table.find t.cond_specs a
let indirect_spec t a = Addr.Table.find t.indirect_specs a
