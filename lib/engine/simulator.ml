open Regionsel_isa
module Image = Regionsel_workload.Image

type result = {
  image : Image.t;
  policy_name : string;
  ctx : Context.t;
  stats : Stats.t;
  edges : Edge_profile.t;
  icache : Icache.t;
  halted : bool;
}

(* The execution mode is a pair of mutable cells rather than a variant
   ref: staying inside a region — the common case — updates only the int
   cell, where [ref (In_region (r, a))] would allocate a constructor on
   every cached step. *)

let run ?(params = Params.default) ?(seed = 1L) ~policy ~max_steps image =
  let ctx = Context.create ~params image.Image.program in
  let policy_name = Policy.name policy in
  let policy = Policy.instantiate policy ctx in
  let interp = Interp.create image ~seed in
  let stats = Stats.create () in
  let edges = Edge_profile.create () in
  let icache =
    Icache.create ~size_bytes:params.Params.icache_size_bytes
      ~line_bytes:params.Params.icache_line_bytes ~ways:params.Params.icache_ways ()
  in
  let cur_region = ref None in (* None = interpreting *)
  let cur_addr = ref Addr.none in
  let halted = ref false in
  (* Hot-loop scratch: one step record and one policy event, reused for
     every interpreted block so the per-step path allocates nothing. *)
  let sbuf = Interp.make_step () in
  let ib = { Policy.block = sbuf.Interp.block; taken = false; next = Addr.none } in
  let interp_event = Policy.Interp_block ib in
  let links : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let record_link ~(from : Region.t) ~(into : Region.t) =
    (* Packed int key, as in [Region.edge_index]: no tuple per transition. *)
    let key = (from.Region.id lsl 32) lor into.Region.id in
    if not (Hashtbl.mem links key) then begin
      Hashtbl.replace links key ();
      stats.Stats.links <- stats.Stats.links + 1
    end
  in
  let install_if_any = function
    | Policy.No_action -> ()
    | Policy.Install specs ->
      List.iter
        (fun spec ->
          stats.Stats.installs <- stats.Stats.installs + 1;
          ignore (Code_cache.install ctx.Context.cache spec))
        specs
  in
  let interpret_step (s : Interp.step) =
    let block = s.Interp.block in
    stats.Stats.interpreted_insts <- stats.Stats.interpreted_insts + block.Block.size;
    ib.Policy.block <- block;
    ib.Policy.taken <- s.Interp.taken;
    ib.Policy.next <- s.Interp.next;
    install_if_any (Policy.handle policy interp_event);
    let a = s.Interp.next in
    if Addr.is_none a then halted := true
    else if s.Interp.taken then begin
      match Code_cache.find_live ctx.Context.cache a with
      | region ->
        stats.Stats.dispatches <- stats.Stats.dispatches + 1;
        Region.record_entry region;
        cur_region := Some region;
        cur_addr := a
      | exception Not_found -> ()
    end
  in
  (* Invariant: [cur] is the start address of the block just executed,
     [s.block] — the loop only enters region mode at a block start. *)
  let region_step region cur (s : Interp.step) =
    let block = s.Interp.block in
    stats.Stats.cached_insts <- stats.Stats.cached_insts + block.Block.size;
    Region.record_exec region block.Block.size;
    let off = Region.block_cache_offset region cur in
    if off >= 0 then Icache.access icache ~addr:off ~bytes:(block.Block.size * Region.inst_bytes);
    let a = s.Interp.next in
    if Addr.is_none a then halted := true
    else begin
      if Region.has_edge region ~src:cur ~dst:a then begin
        if Addr.equal a region.Region.entry then Region.record_cycle region;
        cur_addr := a
      end
      else begin
        match Code_cache.find_live ctx.Context.cache a with
        | other when other == region ->
          (* A side exit linked back to this region's own entry: execution
             stays put, and the paper's executed-cycle metric counts it as a
             completed cycle, not an exit. *)
          Region.record_cycle region;
          cur_addr := a
        | other ->
          Region.record_exit region ~from:cur ~tgt:a;
          stats.Stats.region_transitions <- stats.Stats.region_transitions + 1;
          record_link ~from:region ~into:other;
          Region.record_entry other;
          cur_region := Some other;
          cur_addr := a
        | exception Not_found ->
          Region.record_exit region ~from:cur ~tgt:a;
          stats.Stats.cache_exits_to_interp <- stats.Stats.cache_exits_to_interp + 1;
          install_if_any
            (Policy.handle policy
               (Policy.Cache_exited
                  { from_entry = region.Region.entry; src = Block.last block; tgt = a }));
          (* The paper's "jump newT": if the policy just installed a region
             at the pending target, enter it without interpreting. *)
          (match Code_cache.find_live ctx.Context.cache a with
          | fresh ->
            stats.Stats.dispatches <- stats.Stats.dispatches + 1;
            Region.record_entry fresh;
            cur_region := Some fresh;
            cur_addr := a
          | exception Not_found -> cur_region := None)
      end
    end
  in
  let rec loop () =
    if stats.Stats.steps >= max_steps || !halted then ()
    else if not (Interp.step_into interp sbuf) then halted := true
    else begin
      stats.Stats.steps <- stats.Stats.steps + 1;
      if sbuf.Interp.taken then stats.Stats.taken_branches <- stats.Stats.taken_branches + 1;
      if not (Addr.is_none sbuf.Interp.next) then
        Edge_profile.record edges ~src:sbuf.Interp.block.Block.start ~dst:sbuf.Interp.next;
      (match !cur_region with
      | None -> interpret_step sbuf
      | Some region -> region_step region !cur_addr sbuf);
      loop ()
    end
  in
  loop ();
  { image; policy_name; ctx; stats; edges; icache; halted = !halted }
