lib/core/boa.ml: Addr Block List Program Regionsel_engine Regionsel_isa Terminator
