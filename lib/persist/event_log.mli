(** On-disk branch-event recordings: the persistent producer half of
    {!Regionsel_engine.Branch_stream}.

    A recording written by [regionsel_sim record] (or any run with
    [Simulator.run ~record]) replays through {!read_file} +
    [Simulator.run ~replay] bit-identically to the original live run,
    given the same params, policy and budget — the identity header pins
    the two stream-determining inputs (program shape and seed) so a
    recording cannot silently replay against the wrong run.

    The format follows the snapshot discipline ({!Persist}): CRC'd header,
    CRC'd bit-packed payload ([~kb+kn+1] bits per event under the
    program's block count).  Unlike snapshots there is no degraded mode —
    a recording that cannot be replayed exactly is useless, so {e every}
    validation failure raises {!Persist.Hard_corruption}. *)

val write_file :
  path:string ->
  program:Regionsel_isa.Program.t ->
  seed:int64 ->
  Regionsel_engine.Branch_stream.events ->
  int
(** Encode and write atomically (tmp + fsync + rename), returning the
    file's size in bytes.
    @raise Invalid_argument if an event does not fit the program (block id
    out of range, successor not a block start).
    @raise Unix.Unix_error when the file cannot be written. *)

val read_file :
  path:string ->
  program:Regionsel_isa.Program.t ->
  seed:int64 ->
  Regionsel_engine.Branch_stream.events
(** Read, validate and decode a recording.
    @raise Sys_error when the file cannot be read.
    @raise Persist.Hard_corruption on any validation failure: bad magic or
    version, checksum mismatch, truncation, out-of-range ids, or an
    identity mismatch (different program shape or seed). *)

(** {1 In-memory codec} — the file body, for tests and corruption drills. *)

val encode :
  program:Regionsel_isa.Program.t ->
  seed:int64 ->
  Regionsel_engine.Branch_stream.events ->
  bytes

val decode :
  bytes ->
  program:Regionsel_isa.Program.t ->
  seed:int64 ->
  Regionsel_engine.Branch_stream.events

(** {1 Wire batches} — the daemon's Events-frame body: a slice of a
    recording in the same bit packing and checksum discipline as the
    file, but without the identity header (on the wire, identity was
    pinned by the session handshake). *)

val encode_batch :
  program:Regionsel_isa.Program.t ->
  Regionsel_engine.Branch_stream.events ->
  pos:int ->
  len:int ->
  bytes
(** Encode events [pos .. pos+len-1].
    @raise Invalid_argument on a range outside the recording or an event
    that does not fit the program. *)

val decode_batch :
  bytes ->
  program:Regionsel_isa.Program.t ->
  into:Regionsel_engine.Branch_stream.events ->
  int
(** Validate and append a batch's events onto [into] (a live replay
    source may be consuming it), returning the number appended.
    @raise Persist.Hard_corruption on any validation failure. *)
