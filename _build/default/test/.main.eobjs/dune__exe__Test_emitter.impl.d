test/test_emitter.ml: Alcotest Array Block Fixtures Format List Regionsel_core Regionsel_engine Regionsel_isa Terminator
