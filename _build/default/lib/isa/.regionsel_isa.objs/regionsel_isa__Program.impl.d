lib/isa/program.ml: Addr Array Block Format List Terminator
