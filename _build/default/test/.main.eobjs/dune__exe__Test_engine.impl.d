test/test_engine.ml: Addr Alcotest Block Fixtures List QCheck QCheck_alcotest Regionsel_engine Regionsel_isa Terminator
