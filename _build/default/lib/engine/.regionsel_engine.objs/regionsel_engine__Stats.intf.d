lib/engine/stats.mli:
