(* Windowed metrics: time-series sampling over the engine's frozen-counter
   machinery (Stats.snapshot / Stats.diff), exported as Prometheus text
   exposition or append-only JSONL.

   A recorder holds a static label set (tenant, policy, dispatch mode) and
   a baseline snapshot; each [sample] closes one window — the counter
   activity since the previous sample, the cache/gauge occupancy at the
   sample point, and (with a telemetry sink) cumulative log2-quantile
   summaries.  Solo runs sample through the simulator's window hook at
   deterministic step boundaries; multi-stream fleets sample at batch
   barriers on the main domain ({!Fleet}).  Everything here is pure
   observation and byte-deterministic: no wall clock, fixed series order,
   fixed float formatting — two runs with the same seed produce identical
   exports, whatever the domain count. *)

module Stats = Regionsel_engine.Stats
module Context = Regionsel_engine.Context
module Code_cache = Regionsel_engine.Code_cache
module Simulator = Regionsel_engine.Simulator
module Telemetry = Regionsel_telemetry.Telemetry

let default_window = 4096

type value = Int of int | Float of float

type window = {
  w_labels : (string * string) list;
  w_index : int;
  w_start_step : int;
  w_end_step : int;
  w_values : (string * value) list;
}

(* One window's raw material, kept separate from the derived series so the
   fleet aggregate can sum deltas across tenants before deriving rates. *)
type delta = {
  d_start : int;
  d_end : int;
  d_stats : Stats.Snapshot.t;
  d_evictions : int;
  d_quota_rejects : int;
  g_blacklisted : int;
  g_cache_bytes : int;
  g_regions : int;
  g_links : int;
  quants : (string * value) list;  (* cumulative at window end; [] sink-less *)
}

type recorder = {
  r_labels : (string * string) list;
  r_every : int;
  r_keep : int option;
  r_notify : (window -> unit) option;
  mutable r_prev : Stats.Snapshot.t;
  mutable r_prev_evictions : int;
  mutable r_prev_quota_rejects : int;
  mutable r_count : int;
  mutable r_rev : window list;  (* newest first, bounded by [r_keep] *)
}

let zero_snapshot = Stats.snapshot (Stats.create ())

let create ?(window = default_window) ?keep ?notify ~labels () =
  if window <= 0 then invalid_arg "Metrics.create: window must be positive";
  (match keep with
  | Some k when k <= 0 -> invalid_arg "Metrics.create: keep must be positive"
  | Some _ | None -> ());
  {
    r_labels = labels;
    r_every = window;
    r_keep = keep;
    r_notify = notify;
    r_prev = zero_snapshot;
    r_prev_evictions = 0;
    r_prev_quota_rejects = 0;
    r_count = 0;
    r_rev = [];
  }

let labels r = r.r_labels
let window_size r = r.r_every
let n_windows r = r.r_count

let windows r = List.rev r.r_rev

let last_windows r k =
  let rec take n acc = function
    | w :: rest when n > 0 -> take (n - 1) (w :: acc) rest
    | _ -> acc
  in
  take k [] r.r_rev

(* Upper bound of the log2 bucket where the cumulative count crosses the
   quantile rank — the standard reading of a log2 histogram. *)
let quantile h q =
  let n = Telemetry.Hist.count h in
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    let rec go cum = function
      | [] -> Telemetry.Hist.max_value h
      | (_, hi, c) :: rest ->
        let cum = cum + c in
        if cum >= rank then hi else go cum rest
    in
    go 0 (Telemetry.Hist.buckets h)

let quants_of_sink = function
  | None -> []
  | Some t ->
    let three name h =
      [
        (name ^ "_p50", Int (quantile h 0.50));
        (name ^ "_p90", Int (quantile h 0.90));
        (name ^ "_p99", Int (quantile h 0.99));
      ]
    in
    three "residency" (Telemetry.residency t)
    @ three "trace_length" (Telemetry.trace_length t)
    @ three "time_to_first_link" (Telemetry.time_to_first_link t)

let delta_of r ~step ~stats ~ctx =
  let later = Stats.snapshot stats in
  let d = Stats.diff ~earlier:r.r_prev ~later in
  let start = r.r_prev.Stats.Snapshot.steps in
  r.r_prev <- later;
  let cache = ctx.Context.cache in
  let evictions = Code_cache.evictions cache in
  let quota_rejects = Code_cache.quota_rejects cache in
  let d_evictions = max 0 (evictions - r.r_prev_evictions) in
  let d_quota_rejects = max 0 (quota_rejects - r.r_prev_quota_rejects) in
  r.r_prev_evictions <- evictions;
  r.r_prev_quota_rejects <- quota_rejects;
  {
    d_start = start;
    d_end = step;
    d_stats = d;
    d_evictions;
    d_quota_rejects;
    g_blacklisted = Code_cache.n_blacklisted cache;
    g_cache_bytes = Code_cache.bytes_used cache;
    g_regions = Code_cache.n_regions cache;
    g_links = Code_cache.n_links cache;
    quants = quants_of_sink ctx.Context.telemetry;
  }

(* The fixed series order every exporter follows. *)
let series_of_delta d =
  let s = d.d_stats in
  let steps = s.Stats.Snapshot.steps in
  let fsteps = float_of_int (max 1 steps) in
  let rate n = Float (float_of_int n /. fsteps) in
  let insts = s.Stats.Snapshot.interpreted_insts + s.Stats.Snapshot.cached_insts in
  let cached_share =
    if insts = 0 then 0.0 else float_of_int s.Stats.Snapshot.cached_insts /. float_of_int insts
  in
  let steps_per_transition =
    if s.Stats.Snapshot.region_transitions = 0 then 0.0
    else float_of_int steps /. float_of_int s.Stats.Snapshot.region_transitions
  in
  [
    ("steps", Int steps);
    ("insts", Int insts);
    ("cached_share", Float cached_share);
    ("steps_per_transition", Float steps_per_transition);
    ("dispatch_rate", rate s.Stats.Snapshot.dispatches);
    ("install_rate", rate s.Stats.Snapshot.installs);
    ("install_reject_rate", rate s.Stats.Snapshot.install_rejects);
    ("evict_rate", rate d.d_evictions);
    ("quota_reject_rate", rate d.d_quota_rejects);
    ("bailouts", Int s.Stats.Snapshot.bailouts);
    ("recovery_steps", Int s.Stats.Snapshot.recovery_steps);
    ("blacklist_occupancy", Int d.g_blacklisted);
    ("cache_bytes", Int d.g_cache_bytes);
    ("live_regions", Int d.g_regions);
    ("live_links", Int d.g_links);
  ]
  @ d.quants

let push r w =
  r.r_count <- r.r_count + 1;
  r.r_rev <- w :: r.r_rev;
  (match r.r_keep with
  | Some k ->
    (* Flight-recorder mode: retain only the newest [k] windows. *)
    if r.r_count > k then
      r.r_rev <- List.filteri (fun i _ -> i < k) r.r_rev
  | None -> ());
  match r.r_notify with None -> () | Some fn -> fn w

let window_of_delta r d =
  {
    w_labels = r.r_labels;
    w_index = r.r_count;
    w_start_step = d.d_start;
    w_end_step = d.d_end;
    w_values = series_of_delta d;
  }

let sample r ~step ~stats ~ctx =
  let d = delta_of r ~step ~stats ~ctx in
  push r (window_of_delta r d)

let hook r =
  { Simulator.win_every = r.r_every; win_fn = (fun ~step ~stats ~ctx -> sample r ~step ~stats ~ctx) }

let finalize r (result : Simulator.result) =
  (* Close the final partial window, if the run ended off-boundary. *)
  if result.Simulator.stats.Stats.steps > r.r_prev.Stats.Snapshot.steps then
    sample r ~step:result.Simulator.stats.Stats.steps ~stats:result.Simulator.stats
      ~ctx:result.Simulator.ctx

(* --- Exporters -------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.17g" f

let add_jsonl_window buf w =
  let labels_json =
    String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         w.w_labels)
  in
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"series\":\"%s\",\"labels\":{%s},\"window\":%d,\"start_step\":%d,\"end_step\":%d,\"value\":%s}\n"
           (json_escape name) labels_json w.w_index w.w_start_step w.w_end_step
           (value_to_string v)))
    w.w_values

let to_jsonl ws =
  let buf = Buffer.create 4096 in
  List.iter (add_jsonl_window buf) ws;
  Buffer.contents buf

let output_jsonl oc ws = output_string oc (to_jsonl ws)

(* Exports publish atomically (tmp + fsync + rename, the persist layer's
   pattern): a concurrent scraper — or the daemon's control connection —
   never observes a torn file, only the previous complete export or this
   one. *)
let write_jsonl ~path ws =
  Regionsel_persist.Io.write_atomic ~path (Bytes.of_string (to_jsonl ws))

let help_of = function
  | "steps" -> "Steps executed in the last window"
  | "insts" -> "Instructions executed in the last window"
  | "cached_share" -> "Share of window instructions executed from the code cache"
  | "steps_per_transition" -> "Window steps per region transition"
  | "dispatch_rate" -> "Cache dispatches per window step"
  | "install_rate" -> "Region installs per window step"
  | "install_reject_rate" -> "Rejected installs per window step"
  | "evict_rate" -> "Cache evictions per window step"
  | "quota_reject_rate" -> "Quota-rejected installs per window step"
  | "bailouts" -> "Watchdog bailouts entered in the last window"
  | "recovery_steps" -> "Bailout recovery steps in the last window"
  | "blacklist_occupancy" -> "Blacklisted entries at window end"
  | "cache_bytes" -> "Code cache bytes used at window end"
  | "live_regions" -> "Live regions at window end"
  | "live_links" -> "Patched fragment links at window end"
  | "windows_total" -> "Windows sampled for this label set"
  | s ->
    if Filename.check_suffix s "_p50" || Filename.check_suffix s "_p90"
       || Filename.check_suffix s "_p99"
    then "Log2-bucket quantile upper bound, cumulative at window end"
    else "Windowed series"

let prom_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels ls =
  if ls = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) ls)
    ^ "}"

(* One scrape-ready snapshot: the newest window of every label set (first
   seen order), one sample per series.  Uniqueness holds by construction:
   one window per label set, one value per series name within a window. *)
let to_prometheus ws =
  let keys = ref [] in
  let last = Hashtbl.create 8 in
  List.iter
    (fun w ->
      let key = prom_labels w.w_labels in
      if not (Hashtbl.mem last key) then keys := key :: !keys;
      Hashtbl.replace last key w)
    ws;
  let keys = List.rev !keys in
  let series_names = ref [] in
  List.iter
    (fun key ->
      let w = Hashtbl.find last key in
      List.iter
        (fun (name, _) ->
          if not (List.mem name !series_names) then series_names := name :: !series_names)
        w.w_values)
    keys;
  let series_names = List.rev !series_names @ [ "windows_total" ] in
  let buf = Buffer.create 4096 in
  List.iter
    (fun name ->
      let metric = "regionsel_" ^ name in
      let kind = if String.equal name "windows_total" then "counter" else "gauge" in
      let lines =
        List.filter_map
          (fun key ->
            let w = Hashtbl.find last key in
            if String.equal name "windows_total" then
              Some (Printf.sprintf "%s%s %d\n" metric key (w.w_index + 1))
            else
              Option.map
                (fun v -> Printf.sprintf "%s%s %s\n" metric key (value_to_string v))
                (List.assoc_opt name w.w_values))
          keys
      in
      if lines <> [] then begin
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" metric (help_of name));
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" metric kind);
        List.iter (Buffer.add_string buf) lines
      end)
    series_names;
  Buffer.contents buf

let write_prometheus ~path ws =
  Regionsel_persist.Io.write_atomic ~path (Bytes.of_string (to_prometheus ws))

(* --- Live status ------------------------------------------------------ *)

let find_int w name =
  match List.assoc_opt name w.w_values with Some (Int i) -> i | _ -> 0

let find_float w name =
  match List.assoc_opt name w.w_values with
  | Some (Float f) -> f
  | Some (Int i) -> float_of_int i
  | None -> 0.0

let status_line w =
  let label k = match List.assoc_opt k w.w_labels with Some v -> v | None -> "-" in
  Printf.sprintf
    "[metrics] tenant=%s policy=%s win=%d steps=%d..%d cached=%.1f%% spt=%.1f inst/kstep=%.2f rej/kstep=%.2f blk=%d bytes=%d regions=%d"
    (label "tenant") (label "policy") w.w_index w.w_start_step w.w_end_step
    (100.0 *. find_float w "cached_share")
    (find_float w "steps_per_transition")
    (1000.0 *. find_float w "install_rate")
    (1000.0 *. find_float w "install_reject_rate")
    (find_int w "blacklist_occupancy")
    (find_int w "cache_bytes") (find_int w "live_regions")

(* --- Flight recorder -------------------------------------------------- *)

let default_flight_keep = 16

let flight_dump ~path ~cli ?(detail = "") ws =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"flight\":1,\"cli\":\"%s\",\"detail\":\"%s\",\"windows\":%d}\n"
       (json_escape cli) (json_escape detail) (List.length ws));
  List.iter (add_jsonl_window buf) ws;
  Regionsel_persist.Io.write_atomic ~path (Buffer.to_bytes buf);
  List.length ws

(* --- Multi-stream fleets ---------------------------------------------- *)

module Fleet = struct
  type t = {
    f_tenants : (string * recorder) list;  (* submission order *)
    f_aggregate : recorder;
    f_notify : (window -> unit) option;
  }

  let create ?keep ?notify ?(aggregate_labels = [ ("tenant", "fleet") ]) tenants =
    {
      f_tenants =
        List.map (fun (name, labels) -> (name, create ?keep ?notify ~labels ())) tenants;
      f_aggregate = create ?keep ?notify ~labels:aggregate_labels ();
      f_notify = notify;
    }

  let recorder t name = List.assoc_opt name t.f_tenants

  let zero_delta =
    {
      d_start = max_int;
      d_end = 0;
      d_stats = zero_snapshot;
      d_evictions = 0;
      d_quota_rejects = 0;
      g_blacklisted = 0;
      g_cache_bytes = 0;
      g_regions = 0;
      g_links = 0;
      quants = [];
    }

  let add_delta a b =
    let s x y =
      {
        Stats.Snapshot.steps = x.Stats.Snapshot.steps + y.Stats.Snapshot.steps;
        interpreted_insts = x.Stats.Snapshot.interpreted_insts + y.Stats.Snapshot.interpreted_insts;
        cached_insts = x.Stats.Snapshot.cached_insts + y.Stats.Snapshot.cached_insts;
        taken_branches = x.Stats.Snapshot.taken_branches + y.Stats.Snapshot.taken_branches;
        region_transitions =
          x.Stats.Snapshot.region_transitions + y.Stats.Snapshot.region_transitions;
        dispatches = x.Stats.Snapshot.dispatches + y.Stats.Snapshot.dispatches;
        cache_exits_to_interp =
          x.Stats.Snapshot.cache_exits_to_interp + y.Stats.Snapshot.cache_exits_to_interp;
        installs = x.Stats.Snapshot.installs + y.Stats.Snapshot.installs;
        links = x.Stats.Snapshot.links + y.Stats.Snapshot.links;
        link_hits = x.Stats.Snapshot.link_hits + y.Stats.Snapshot.link_hits;
        node_steps = x.Stats.Snapshot.node_steps + y.Stats.Snapshot.node_steps;
        install_rejects = x.Stats.Snapshot.install_rejects + y.Stats.Snapshot.install_rejects;
        faults_injected = x.Stats.Snapshot.faults_injected + y.Stats.Snapshot.faults_injected;
        async_exits = x.Stats.Snapshot.async_exits + y.Stats.Snapshot.async_exits;
        bailouts = x.Stats.Snapshot.bailouts + y.Stats.Snapshot.bailouts;
        recovery_steps = x.Stats.Snapshot.recovery_steps + y.Stats.Snapshot.recovery_steps;
      }
    in
    {
      d_start = min a.d_start b.d_start;
      d_end = max a.d_end b.d_end;
      d_stats = s a.d_stats b.d_stats;
      d_evictions = a.d_evictions + b.d_evictions;
      d_quota_rejects = a.d_quota_rejects + b.d_quota_rejects;
      g_blacklisted = a.g_blacklisted + b.g_blacklisted;
      g_cache_bytes = a.g_cache_bytes + b.g_cache_bytes;
      g_regions = a.g_regions + b.g_regions;
      g_links = a.g_links + b.g_links;
      (* Quantiles are per-tenant series; the aggregate carries none. *)
      quants = [];
    }

  (* The {!Multi_stream.run} [on_barrier] hook: sample each of this round's
     tenants in submission order, then close one fleet-aggregate window
     summing the per-tenant deltas.  Runs on the main domain only; every
     observed value is a pure function of the barrier states, so the
     emitted windows are byte-identical whatever the domain count. *)
  let on_barrier t ~round:_ active =
    let agg = ref zero_delta in
    let sampled = ref false in
    Array.iter
      (fun (name, sim) ->
        match recorder t name with
        | None -> ()
        | Some r ->
          Simulator.sample sim (fun ~step ~stats ~ctx ->
              let d = delta_of r ~step ~stats ~ctx in
              push r (window_of_delta r d);
              sampled := true;
              agg := add_delta !agg d))
      active;
    if !sampled then begin
      let d = !agg in
      let d = if d.d_start = max_int then { d with d_start = 0 } else d in
      push t.f_aggregate (window_of_delta t.f_aggregate d)
    end

  let tenant_windows t = List.map (fun (name, r) -> (name, windows r)) t.f_tenants
  let aggregate_windows t = windows t.f_aggregate

  let all_windows t =
    List.concat_map (fun (_, r) -> windows r) t.f_tenants @ windows t.f_aggregate
end
