lib/core/compact_trace.mli: Addr Program Regionsel_engine Regionsel_isa
