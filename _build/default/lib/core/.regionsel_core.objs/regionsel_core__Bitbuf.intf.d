lib/core/bitbuf.mli:
