(** Abstract branch-event streams.

    The paper's substitution argument (Section 2.3) is that every selection
    algorithm consumes only the executed branch stream — [(block, taken?,
    target)] plus static layout — so the selection/cache engine should not
    care where that stream comes from.  This module is the seam: a stream
    is a source of branch events delivered through the caller's reusable
    {!Interp.step} record (the same allocation-free discipline as the step
    loop), with two producers — the live interpreter ({!of_interp}) and a
    recorded-event replayer ({!of_events}) — and the simulator as the one
    consumer.

    The parity contract: a run consuming {!of_events} over a recording of
    itself is bit-identical — metrics, telemetry, PRNG-driven fault
    schedules — to the live run, across every policy and workload.  The
    on-disk codec for recordings lives in [Regionsel_persist.Event_log]
    (the persist layer owns framing and checksums). *)

type events
(** A compact in-memory recording: packed int arrays, ~2 words per event. *)

type t
(** A stream: pulls the next branch event into a caller-owned step record.
    Allocation-free per event. *)

val recorder : unit -> events
(** A fresh, empty recording to pass as [Simulator.create ~record]. *)

val append : events -> Interp.step -> unit
(** Append the event a filled step record describes.  Amortized O(1). *)

val append_event : events -> block_id:int -> taken:bool -> next:Regionsel_isa.Addr.t -> unit
(** Append one event by parts (the file codec's decode path).
    @raise Invalid_argument on a negative block id. *)

val length : events -> int

val get_block_id : events -> int -> int
val get_taken : events -> int -> bool
val get_next : events -> int -> Regionsel_isa.Addr.t

val iter :
  (block_id:int -> taken:bool -> next:Regionsel_isa.Addr.t -> unit) -> events -> unit

val equal : events -> events -> bool

val of_interp : Interp.t -> t
(** The live producer: each pull executes one block of the program. *)

val of_events : events -> t
(** The replay producer: each pull delivers the next recorded event; after
    the last one the stream reports a halt, exactly like an interpreter
    whose program finished. *)

val next_into : t -> Interp.step -> bool
(** Pull one event into the record; [false] when the stream has ended. *)
