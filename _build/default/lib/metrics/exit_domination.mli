(** Exit-domination analysis (Section 4.1).

    Region [r] exit-dominates region [s] when (1) [s] begins at a dynamic
    exit of [r], (2) the exiting block of [r] is the only {e executed}
    predecessor of [s]'s entrance outside [s] itself, and (3) [r] was
    selected before [s].  When the two regions additionally share blocks,
    the shared instructions are {e exit-dominated duplication}.  Both
    quantities measure selection work that brought no benefit — Figures 11
    and 12 of the paper — and are the motivation for trace combination. *)

open Regionsel_isa
module Region = Regionsel_engine.Region

type verdict = {
  dominated : Region.t;
  dominator : Region.t;
  dup_insts : int;  (** Instructions of blocks present in both regions. *)
}

type summary = {
  verdicts : verdict list;
  n_regions : int;
  n_dominated : int;
  dominated_fraction : float;  (** Figure 12: share of regions dominated. *)
  dup_insts : int;
  dup_fraction : float;
      (** Figure 11: share of all selected instructions that are
          exit-dominated duplication. *)
}

val analyze :
  regions:Region.t list -> preds:(Addr.t -> Addr.Set.t) -> summary
(** [analyze ~regions ~preds] runs the analysis over a finished run;
    [preds] gives the executed predecessors of a block start (from
    {!Regionsel_engine.Edge_profile}).  Each dominated region is counted
    once, against its earliest-selected dominator. *)
