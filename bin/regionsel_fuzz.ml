(* Differential fuzz driver: random workloads x policies x fault schedules
   x dispatch modes, every run under the invariant sanitizer with a
   shadow-interpreter oracle and a compiled-vs-legacy metric cross-check.
   The first failure is greedily shrunk to a minimal case and reported as
   a replayable command line. *)

module Check = Regionsel_check.Check
module Fuzz = Regionsel_check.Fuzz

let usage =
  "regionsel_fuzz [--seeds A-B | --seed N] [--steps N] [--shrink] [--out FILE] \
   [--snapshots [--corruptions N]] [--streams]\n\
   regionsel_fuzz --seed N --genome G1,G2,... [--policy P] [--fault F] [--legacy] \
   [--legacy-dispatch] [--steps N]\n\
   regionsel_fuzz --self-test-break [--flight FILE]"

let parse_seeds s =
  match String.index_opt s '-' with
  | None -> (int_of_string s, int_of_string s)
  | Some i ->
    ( int_of_string (String.sub s 0 i),
      int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )

let parse_genome s =
  String.split_on_char ',' s |> List.filter (fun g -> g <> "") |> List.map int_of_string

let report_failure ~shrink ~out ~flight (c, f) =
  Printf.printf "FAIL %s\n  %s\n%!" (Fuzz.cli_line c) (Fuzz.failure_to_string f);
  let c, f = if shrink then Fuzz.shrink c f else (c, f) in
  if shrink then
    Printf.printf "shrunk to: %s\n  %s\n%!" (Fuzz.cli_line c) (Fuzz.failure_to_string f);
  (match out with
  | "" -> ()
  | path ->
    let oc = open_out path in
    Printf.fprintf oc "%s\n# %s\n" (Fuzz.cli_line c) (Fuzz.failure_to_string f);
    close_out oc;
    Printf.printf "reproducer written to %s\n%!" path);
  match flight with
  | "" -> ()
  | path ->
    let n = Fuzz.flight_dump c f ~path in
    Printf.printf "flight recorder: %d windows -> %s\n%!" n path

let () =
  let seeds = ref "1-5" in
  let steps = ref 4000 in
  let shrink = ref false in
  let self_test = ref false in
  let out = ref "" in
  let genome = ref "" in
  let policy = ref "net" in
  let fault = ref "" in
  let legacy = ref false in
  let legacy_dispatch = ref false in
  let snapshots = ref false in
  let corruptions = ref 50 in
  let streams = ref false in
  let flight = ref "" in
  let spec =
    [
      ("--seeds", Arg.Set_string seeds, "A-B  seed range to fuzz (default 1-5)");
      ("--seed", Arg.Set_string seeds, "N  fuzz (or replay) a single seed");
      ("--steps", Arg.Set_int steps, "N  step budget per case (default 4000)");
      ("--shrink", Arg.Set shrink, " greedily shrink the first failure before reporting");
      ("--out", Arg.Set_string out, "FILE  write the reproducer command line to FILE");
      ( "--genome",
        Arg.Set_string genome,
        "G1,G2,...  replay one explicit case instead of fuzzing" );
      ("--policy", Arg.Set_string policy, "NAME  policy for --genome replay (default net)");
      ( "--fault",
        Arg.Set_string fault,
        "NAME  fault profile for --genome replay (default none)" );
      ( "--legacy",
        Arg.Set legacy,
        " use legacy (non-compiled) region stepping for --genome replay" );
      ( "--legacy-dispatch",
        Arg.Set legacy_dispatch,
        " use the legacy terminator-match interpreter (not the threaded closure table) \
         for --genome replay" );
      ( "--snapshots",
        Arg.Set snapshots,
        " fuzz the checkpoint restore path instead: corrupt a mid-run snapshot and \
         require clean/degraded/rejected restores, never a crash or silent divergence" );
      ( "--corruptions",
        Arg.Set_int corruptions,
        "N  corrupted restores per seed with --snapshots (default 50)" );
      ( "--streams",
        Arg.Set streams,
        " fuzz the multi-stream scheduler instead: seeded 2-4 tenant fleets (mixed \
         policies and faults), each tenant solo-checked under the sanitizer, then \
         multiplexed and held to solo parity and cross-domain budget determinism" );
      ( "--self-test-break",
        Arg.Set self_test,
        " (test only) inject a cache corruption and verify the sanitizer catches and \
         shrinks it" );
      ( "--flight",
        Arg.Set_string flight,
        "FILE  on failure, re-run the shrunk case with windowed metrics and dump the \
         flight record (metric history leading up to the crash + reproducer line) to \
         FILE as JSONL" );
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  if !self_test then begin
    match Fuzz.self_test ?flight:(if !flight = "" then None else Some !flight) () with
    | Error msg ->
      Printf.eprintf "self-test FAILED: %s\n%!" msg;
      exit 1
    | Ok budget ->
      Printf.printf "self-test: injected corruption caught; minimal reproducing budget \
                     is %d steps\n%!"
        budget;
      if budget <= 20 then exit 0
      else begin
        Printf.eprintf "self-test FAILED: reproducer budget %d exceeds 20 steps\n%!" budget;
        exit 1
      end
  end;
  let lo, hi = parse_seeds !seeds in
  if !snapshots then begin
    (* Snapshot-corruption axis: per seed, one mid-run checkpoint battered
       [corruptions] times; every restore must land in a lawful outcome. *)
    let failed = ref false in
    let seed = ref lo in
    while (not !failed) && !seed <= hi do
      (match Fuzz.run_snapshot_seed ~corruptions:!corruptions ~max_steps:!steps !seed with
      | None, s ->
        Printf.printf "seed %d: %d restores ok (%d clean, %d degraded, %d rejected)\n%!"
          !seed s.Fuzz.snap_cases s.Fuzz.snap_clean s.Fuzz.snap_degraded s.Fuzz.snap_rejected
      | Some (c, detail), s ->
        failed := true;
        Printf.printf "FAIL %s\n  snapshot restore after %d ok restores: %s\n%!"
          (Fuzz.cli_line c) (s.Fuzz.snap_cases - 1) detail);
      incr seed
    done;
    exit (if !failed then 1 else 0)
  end;
  if !streams then begin
    (* Multi-stream axis: tenant fleets held to solo parity (no budget)
       and cross-domain determinism (shared budget).  Failures are already
       shrunk — per-tenant reproducers print as replayable cli lines. *)
    let failed = ref false in
    let seed = ref lo in
    while (not !failed) && !seed <= hi do
      (match Fuzz.run_streams_seed ~max_steps:!steps !seed with
      | None, n -> Printf.printf "seed %d: %d-tenant fleet ok\n%!" !seed n
      | Some (cases, detail), n ->
        failed := true;
        Printf.printf "FAIL seed %d (%d-tenant fleet, shrunk to %d): %s\n%!" !seed n
          (List.length cases) detail;
        List.iter (fun c -> Printf.printf "  tenant: %s\n%!" (Fuzz.cli_line c)) cases;
        match !out with
        | "" -> ()
        | path ->
          let oc = open_out path in
          Printf.fprintf oc "# %s\n" detail;
          List.iter (fun c -> Printf.fprintf oc "%s\n" (Fuzz.cli_line c)) cases;
          close_out oc;
          Printf.printf "reproducer written to %s\n%!" path);
      incr seed
    done;
    exit (if !failed then 1 else 0)
  end;
  if !genome <> "" then begin
    (* Explicit replay of one case (the shrinker's output format). *)
    let c =
      {
        Fuzz.seed = lo;
        genome = parse_genome !genome;
        policy = !policy;
        fault = (if !fault = "" then None else Some !fault);
        compiled = not !legacy;
        threaded = not !legacy_dispatch;
        max_steps = !steps;
      }
    in
    match Fuzz.run_case c with
    | None ->
      Printf.printf "ok: %s\n%!" (Fuzz.cli_line c);
      exit 0
    | Some f ->
      report_failure ~shrink:!shrink ~out:!out ~flight:!flight (c, f);
      exit 1
  end;
  let failed = ref false in
  let total = ref 0 in
  let seed = ref lo in
  while (not !failed) && !seed <= hi do
    (match Fuzz.run_seed ~max_steps:!steps !seed with
    | None, n ->
      total := !total + n;
      Printf.printf "seed %d: %d cases ok\n%!" !seed n
    | Some (c, f), n ->
      total := !total + n;
      failed := true;
      report_failure ~shrink:!shrink ~out:!out ~flight:!flight (c, f));
    incr seed
  done;
  if !failed then exit 1
  else begin
    Printf.printf "all %d cases ok (seeds %d-%d)\n%!" !total lo hi;
    exit 0
  end
