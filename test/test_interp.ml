open Regionsel_isa
module Builder = Regionsel_workload.Builder
module Behavior = Regionsel_workload.Behavior
module Interp = Regionsel_engine.Interp
open Fixtures

(* [Interp.step] is gone (it allocated a record per executed block); tests
   that want to retain steps snapshot the reused record themselves. *)
type obs = { block : Block.t; taken : bool; next : Addr.t }

let halted interp =
  let s = Interp.make_step () in
  not (Interp.step_into interp s)

let steps_until_halt ?(cap = 1_000_000) interp =
  let s = Interp.make_step () in
  let rec go acc n =
    if n >= cap || not (Interp.step_into interp s) then List.rev acc
    else
      go
        ({ block = Interp.block interp s; taken = s.Interp.taken; next = s.Interp.next } :: acc)
        (n + 1)
  in
  go [] 0

let straight_line () =
  let b = Builder.create () in
  Builder.func b "main";
  Builder.block b ~size:3 Builder.Fallthrough;
  Builder.block b ~size:2 Builder.Fallthrough;
  Builder.block b ~size:1 Builder.Halt;
  let image = Builder.compile b ~name:"straight" in
  let interp = Interp.create image ~seed:1L in
  let steps = steps_until_halt interp in
  check_int "three blocks executed" 3 (List.length steps);
  check_true "no taken branches" (List.for_all (fun s -> not s.taken) steps);
  check_true "halted" (halted interp)

let loop_trip_count () =
  let image = simple_loop ~trip:7 () in
  let interp = Interp.create image ~seed:1L in
  let steps = steps_until_halt interp in
  (* pre + 7 head executions + halt block. *)
  check_int "blocks executed" 9 (List.length steps)

let call_return_balance () =
  let image = figure2 ~iters:50 () in
  let interp = Interp.create image ~seed:1L in
  let calls = ref 0 and returns = ref 0 in
  List.iter
    (fun s ->
      match s.block.Block.term with
      | Terminator.Call _ | Terminator.Indirect_call -> incr calls
      | Terminator.Return -> incr returns
      | _ -> ())
    (steps_until_halt interp);
  check_int "calls equal returns" !calls !returns;
  check_true "at least one call per iteration" (!calls >= 50);
  check_int "stack empty at halt" 0 (Interp.stack_depth interp)

let determinism () =
  let run seed =
    let interp = Interp.create (figure4 ~iters:200 ()) ~seed in
    List.map (fun s -> s.block.Block.start) (steps_until_halt interp)
  in
  Alcotest.(check (list int)) "same seed same path" (run 3L) (run 3L);
  check_true "different seeds usually differ" (run 3L <> run 4L)

(* The tentpole guarantee of the threaded-code dispatch: the compiled
   closure table and the legacy terminator [match] produce the same step
   stream, bit for bit — same blocks, same taken flags, same targets, and
   hence the same per-site PRNG draws. *)
let threaded_matches_legacy () =
  List.iter
    (fun (name, image) ->
      let stream threaded =
        let interp = Interp.create ~threaded image ~seed:7L in
        List.map (fun s -> (s.block.Block.start, s.taken, s.next)) (steps_until_halt interp)
      in
      Alcotest.(check (list (triple int bool int)))
        (name ^ ": threaded stream equals legacy stream")
        (stream false) (stream true))
    [
      "figure2", figure2 ~iters:100 ();
      "figure3", figure3 ();
      "figure4", figure4 ~iters:300 ();
      "simple_loop", simple_loop ~trip:9 ();
    ]

let return_with_empty_stack_halts () =
  let b = Builder.create () in
  Builder.func b "main";
  Builder.block b ~size:2 Builder.Return;
  let image = Builder.compile b ~name:"ret" in
  let interp = Interp.create image ~seed:1L in
  (match steps_until_halt interp with
  | [ s ] ->
    check_true "return taken" s.taken;
    check_true "no next" (Addr.is_none s.next)
  | steps -> Alcotest.failf "expected one step, got %d" (List.length steps));
  check_true "halted after" (halted interp)

let runaway_recursion_detected () =
  let b = Builder.create () in
  Builder.func b "main";
  Builder.block b ~size:2 (Builder.Call "main");
  Builder.block b ~size:1 Builder.Halt;
  let image = Builder.compile b ~name:"recurse" in
  let interp = Interp.create image ~seed:1L in
  check_true "runaway stack raises"
    (try
       ignore (steps_until_halt interp);
       false
     with Interp.Runaway_stack _ -> true)

let indirect_targets_followed () =
  let b = Builder.create () in
  Builder.func b "t1";
  Builder.block b ~size:1 (Builder.Jump "main");
  Builder.func b "t2";
  Builder.block b ~size:1 (Builder.Jump "main");
  Builder.func b "main";
  Builder.block b ~size:2 (Builder.Indirect_jump (Builder.Round_robin [ "t1"; "t2" ]));
  let image = Builder.compile b ~name:"ind" ~entry:"main" in
  let interp = Interp.create image ~seed:1L in
  let s = Interp.make_step () in
  let targets = ref [] in
  for _ = 1 to 8 do
    if not (Interp.step_into interp s) then Alcotest.fail "program should not halt";
    if Terminator.is_indirect (Interp.block interp s).Block.term then
      targets := s.Interp.next :: !targets
  done;
  ignore image;
  let t1 = 0x1000 (* the first declared function sits at the base address *) in
  check_true "alternates over both targets"
    (List.exists (fun a -> a = t1) !targets && List.exists (fun a -> a <> t1) !targets)

let taken_flags_match_terminators () =
  let interp = Interp.create (figure2 ~iters:100 ()) ~seed:5L in
  List.iter
    (fun s ->
      match s.block.Block.term with
      | Terminator.Jump _ | Terminator.Call _ | Terminator.Return | Terminator.Indirect_jump
      | Terminator.Indirect_call -> check_true "unconditional transfers are taken" s.taken
      | Terminator.Fallthrough | Terminator.Halt ->
        check_true "fallthrough never taken" (not s.taken)
      | Terminator.Cond _ -> ())
    (steps_until_halt interp)

let next_is_block_start () =
  let image = figure4 ~iters:300 () in
  let p = image.Regionsel_workload.Image.program in
  let interp = Interp.create image ~seed:9L in
  List.iter
    (fun s ->
      if not (Addr.is_none s.next) then
        check_true "next is a block start" (Program.is_block_start p s.next))
    (steps_until_halt interp)

let suite =
  [
    case "straight line" straight_line;
    case "loop trip count" loop_trip_count;
    case "call/return balance" call_return_balance;
    case "determinism" determinism;
    case "threaded dispatch matches legacy" threaded_matches_legacy;
    case "return with empty stack halts" return_with_empty_stack_halts;
    case "runaway recursion detected" runaway_recursion_detected;
    case "indirect targets followed" indirect_targets_followed;
    case "taken flags match terminators" taken_flags_match_terminators;
    case "next is block start" next_is_block_start;
  ]
