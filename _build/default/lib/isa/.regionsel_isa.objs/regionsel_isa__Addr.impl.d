lib/isa/addr.ml: Format Hashtbl Int Map Printf Set
