lib/core/compact_trace.ml: Addr Bitbuf Block Bytes Format List Printf Program Regionsel_engine Regionsel_isa Terminator
