(** The dynamic optimization system simulator (the paper's Figure 1).

    Execution alternates between the interpreter and the code cache:

    - While interpreting, every executed block is delivered to the policy;
      on a {e taken} branch whose target is a cached region entry, control
      dispatches into the cache.
    - While in a region, control follows internal edges.  An exit whose
      target is another cached region's entry is a linked jump (counted as a
      region transition); an exit to the region's own entry completes a
      cycle; any other exit returns to the interpreter and is reported to
      the policy.

    When the policy installs a region whose entry is the pending transfer
    target, control enters it immediately (the paper's "jump newT"). *)

type result = {
  image : Regionsel_workload.Image.t;
  policy_name : string;
  ctx : Context.t;  (** Final cache, counters and gauges. *)
  stats : Stats.t;
  edges : Edge_profile.t;
  icache : Icache.t;
      (** Instruction-cache model fed by every fetch from the code cache:
          the locality instrument behind the paper's separation claims. *)
  halted : bool;  (** Whether the program ran to completion within budget. *)
}

val run :
  ?params:Params.t ->
  ?seed:int64 ->
  policy:(module Policy.S) ->
  max_steps:int ->
  Regionsel_workload.Image.t ->
  result
(** [run ~policy ~max_steps image] simulates [image] under [policy] for at
    most [max_steps] executed blocks. The [seed] (default [1L]) drives all
    branch behaviour. *)
