type t = { start : Addr.t; size : int; term : Terminator.t }

let make ~start ~size ~term =
  if size < 1 then invalid_arg "Block.make: size must be >= 1";
  { start; size; term }

let last b = b.start + b.size - 1
let fall_addr b = b.start + b.size
let equal a b = Addr.equal a.start b.start && a.size = b.size && Terminator.equal a.term b.term

let pp ppf b =
  Format.fprintf ppf "[%a..%a: %a]" Addr.pp b.start Addr.pp (last b) Terminator.pp b.term
