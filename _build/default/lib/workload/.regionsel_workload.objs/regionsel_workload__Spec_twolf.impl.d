lib/workload/spec_twolf.ml: Builder Patterns Spec
