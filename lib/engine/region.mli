(** Regions: the unit of code selected, cached and executed by the system.

    A region is a single-entry set of program blocks plus the internal
    control edges along which execution stays inside the region.  A
    classical trace is the special case where the edges form a single path,
    possibly closed by a back edge to the entry; a combined region
    (Section 4) may contain splits and joins.

    Installed regions are {e compiled}: the blocks are numbered 0..n-1 in
    cache-layout order (the entry is node 0) and every structure the
    simulator touches per cached step — successor sets, cache offsets, the
    program-wide block-id translation and the inter-region link slots — is
    a flat array indexed by small ints.  The address-keyed queries below
    remain for cold callers (metrics, emitter, tests).

    A region also carries its run-time statistics (executions, completed
    cycles, exits) and its static cost model (copied instructions, exit
    stubs), which together feed every metric in the paper's evaluation. *)

open Regionsel_isa

type kind =
  | Trace
  | Combined
  | Method  (** A whole-method region (JIT-style), entered at the function
                entry or re-entered at a return continuation. *)

type path = {
  blocks : Block.t list;  (** Executed blocks, in order; possibly with repeats. *)
  final_next : Addr.t option;
      (** Where control went after the last block ([None] if the program
          halted there or the continuation is unknown). *)
}
(** A recorded single path of execution, as produced by the NET recorder or
    LEI's FORM-TRACE. *)

val path_insts : path -> int
(** Instructions along the path, counting repeats: the path's contribution
    to code expansion. *)

type spec = {
  entry : Addr.t;
  nodes : Block.t list;  (** Distinct blocks; must include [entry]. *)
  edges : (Addr.t * Addr.t) list;
      (** Internal edges between node start addresses. *)
  copied_insts : int;
      (** Instructions copied into the cache for this region (counts
          duplicated blocks, unlike [nodes]). *)
  kind : kind;
  aux_entries : Addr.t list;
      (** Additional dispatchable entry points (must be nodes).  Traces and
          combined regions have none; method regions list each call's
          return continuation, where the compiled method is re-entered. *)
  layout_hint : Addr.t list;
      (** The order in which to place the blocks in the code cache — for a
          trace, the path order, which is the point of traces ("placing
          frequently executed code together in consecutive memory
          locations", Section 1); for a combined region, hottest blocks
          first.  Nodes not listed are appended in address order; the entry
          always comes first. *)
}
(** What a policy submits for installation. *)

val spec_of_path : kind:kind -> path -> spec
(** Build a single-path region: consecutive-block edges, plus a closing
    edge when [final_next] lands on a block of the path (a spanned cycle
    when that block is the entry). *)

type t = private {
  id : int;
  entry : Addr.t;
  kind : kind;
  n_nodes : int;
  node_blocks : Block.t array;
      (** Node id -> block.  Node ids are cache-layout order: the entry is
          node 0, then the layout hint's order, then address order. *)
  node_offsets : int array;
      (** Node id -> byte offset of the block's copy within the region. *)
  node_is_entry : bool array;
      (** Node id -> whether the node is dispatchable (entry or aux entry). *)
  succ_bits : int array;
      (** Internal-edge adjacency bitset: bit [dst] of row
          [src * succ_stride] (32-bit words), tested by {!has_edge_nodes}. *)
  succ_stride : int;  (** Words per [succ_bits] row. *)
  hot_succ_addr : int array;
      (** Node id -> start address of the node's first internal successor
          ([-1] if it has none): the compiled fall-through, so the common
          stay-in-region step is a single compare. *)
  hot_succ_node : int array;  (** Node id of that successor. *)
  node_by_addr : Flat_tbl.t;  (** Block start address -> node id. *)
  node_of_block : int array;
      (** [Program.block_id] -> node id ([-1] for blocks outside the
          region); [[||]] when built without [~program]. *)
  link_slots : t option array;
      (** [Program.block_id] -> region this region's exit to that block is
          linked to (the patched exit stub); [[||]] without [~program].
          Invariant, maintained by [Code_cache]: a link never outlives its
          target region, and always agrees with the dispatch array. *)
  copied_insts : int;
  n_stubs : int;
  spans_cycle : bool;  (** Region contains an edge back to its entry. *)
  selected_at : int;  (** Selection sequence number (0-based). *)
  mutable entries : int;  (** Times control entered at the region entry. *)
  mutable cycle_iters : int;  (** Completed internal cycles back to entry. *)
  mutable exits : int;  (** Times control left the region. *)
  mutable insts_executed : int;
  exit_log : Flat_tbl.t;
      (** [(exit block start lsl 32) lor target] -> count.  Packed so the
          per-transition update is one inline probe; unpack keys with
          {!exit_src} / {!exit_tgt}. *)
  aux_entries : Addr.Set.t;
  mutable cache_base : int;
      (** Byte address of the region in the code cache; -1 until
          installed. *)
}

val of_spec : id:int -> selected_at:int -> ?program:Program.t -> spec -> t
(** Freeze a spec into an installed region, compiling the intra-region
    automaton and computing its exit-stub count: one stub per static
    successor direction (taken and fall-through of conditionals, targets of
    jumps and calls, the continuation of fall-through blocks) not covered
    by an internal edge, and always one stub per indirect branch or return
    (the mispredict path).  Pass [program] to enable the dense
    [node_of_block] translation and the [link_slots] used by the
    simulator's compiled execution mode.
    @raise Invalid_argument if the spec is malformed (entry not a node, or
    an edge endpoint that is not a node). *)

val dummy : t
(** A zero-node sentinel for "no region", compared by physical equality.
    The simulator's current-region cell holds it while interpreting, so
    mode changes are plain stores instead of option allocations.  Never
    execute it — its arrays are empty. *)

val node_id : t -> Addr.t -> int
(** The node id of the block starting at the address, or [-1]. *)

val node_block : t -> int -> Block.t
(** The block at a node id (raises on out-of-range ids). *)

val mem_block : t -> Addr.t -> bool
val find_block : t -> Addr.t -> Block.t option
val has_edge : t -> src:Addr.t -> dst:Addr.t -> bool

val has_edge_nodes : t -> src:int -> dst:int -> bool
(** {!has_edge} over node ids: two array reads, no hash probe.  Both ids
    must be valid node ids of this region. *)

val nodes : t -> Block.t list
(** Distinct blocks, in increasing address order. *)

val layout_blocks : t -> Block.t list
(** Distinct blocks in cache-layout (node-id) order. *)

val record_entry : t -> unit
val record_cycle : t -> unit
val record_exec : t -> int -> unit

val record_exit : t -> from:Addr.t -> tgt:Addr.t -> unit
(** Log a dynamic exit for the exit-domination analysis. *)

val exit_src : int -> Addr.t
val exit_tgt : int -> Addr.t
(** Unpack an [exit_log] key into its exit-block start / target halves. *)

val exit_targets : t -> Addr.Set.t
(** All targets dynamically exited to. *)

val exited_to : t -> tgt:Addr.t -> Addr.Set.t
(** The blocks of this region from which an exit to [tgt] was taken. *)

val inst_bytes : int
(** Bytes per instruction in the cache-size cost model (4: the upper end
    of the paper's "between three and four bytes", Section 4.3.4). *)

val stub_bytes : int
(** Bytes per exit stub (10, per Section 4.3.4). *)

val cache_bytes : t -> int
(** The region's footprint in the code cache under the cost model. *)

val set_cache_base : t -> int -> unit
(** Called by the code cache when the region is placed. *)

val block_offset : t -> Addr.t -> int
(** Byte offset of the block's copy within the region ([-1] for
    non-nodes), independent of installation. *)

val block_cache_addr : t -> Addr.t -> int option
(** The byte address in the code cache at which the copy of the given
    block starts, once the region is installed ([None] for non-nodes or
    before installation). *)

val block_cache_offset : t -> Addr.t -> int
(** Allocation-free {!block_cache_addr}: [-1] instead of [None]. *)

val n_link_slots : t -> int
(** Length of [link_slots] (0 when built without [~program]). *)

val link_target : t -> int -> t option
(** The region this region's exit to the given block id is linked to
    ([None] for unlinked slots and out-of-range ids). *)

val set_link : t -> slot:int -> t option -> unit
(** Patch (or unpatch) one exit link.  Callers other than [Code_cache]
    must not use this: the cache owns the no-stale-links invariant. *)

val clear_links : t -> int
(** Unpatch every outgoing link, returning how many were live (used when
    the region itself is retired). *)

val save : t -> (int -> unit) -> unit
(** Checkpoint support: serialize the region — spec, identity, run-time
    counters, exit log, cache placement — as a flat int stream.  Link
    slots are not saved; the code cache re-registers links on restore. *)

val load : program:Program.t -> (unit -> int) -> t
(** Rebuild a saved region through {!of_spec} over the same program, so
    the compiled automaton (node numbering, offsets, adjacency, stub
    count) is recomputed and revalidated rather than trusted from the
    stream.  Raises [Failure] or [Invalid_argument] on a corrupt
    stream. *)

val pp : Format.formatter -> t -> unit
