open Regionsel_isa
module Image = Regionsel_workload.Image
module Behavior = Regionsel_workload.Behavior
module Splitmix = Regionsel_prng.Splitmix

exception Runaway_stack of int

let max_stack_depth = 100_000

(* The shadow stack is a growable int array rather than a [Stack.t]: pushing
   a return address writes one slot instead of allocating a list cell. *)
type t = {
  image : Image.t;
  mutable pc : Addr.t; (* Addr.none once halted *)
  mutable stack : Addr.t array;
  mutable stack_len : int;
  cond_states : Behavior.state option array; (* keyed by dense block id *)
  indirect_states : Behavior.indirect_state option array;
  prng : Splitmix.t;
}

let create image ~seed =
  let n = Program.n_blocks image.Image.program in
  {
    image;
    pc = Program.entry image.Image.program;
    stack = Array.make 64 0;
    stack_len = 0;
    cond_states = Array.make n None;
    indirect_states = Array.make n None;
    prng = Splitmix.create ~seed;
  }

type step = { mutable block : Block.t; mutable taken : bool; mutable next : Addr.t }

let make_step () =
  {
    block = Block.make ~start:0 ~size:1 ~term:Terminator.Halt;
    taken = false;
    next = Addr.none;
  }

(* Branch-behaviour states are keyed by the branch block's dense id, so the
   per-branch lookup is an array read.  States are still created lazily in
   first-execution order, which preserves the per-site PRNG streams (and
   hence bit-for-bit behaviour) of the hashtable implementation. *)
let cond_state t id site =
  match t.cond_states.(id) with
  | Some s -> s
  | None ->
    let s = Behavior.make_state (Image.cond_spec t.image site) t.prng in
    t.cond_states.(id) <- Some s;
    s

let indirect_state t id site =
  match t.indirect_states.(id) with
  | Some s -> s
  | None ->
    let s = Behavior.make_indirect (Image.indirect_spec t.image site) t.prng in
    t.indirect_states.(id) <- Some s;
    s

let push_return t addr =
  if t.stack_len >= max_stack_depth then raise (Runaway_stack max_stack_depth);
  if t.stack_len = Array.length t.stack then begin
    let bigger = Array.make (2 * Array.length t.stack) 0 in
    Array.blit t.stack 0 bigger 0 t.stack_len;
    t.stack <- bigger
  end;
  t.stack.(t.stack_len) <- addr;
  t.stack_len <- t.stack_len + 1

let step_into t (s : step) =
  if Addr.is_none t.pc then false
  else begin
    let program = t.image.Image.program in
    let id = Program.block_id program t.pc in
    let block = Program.block_of_id program id in
    let site = Block.last block in
    (* Write the outcome straight into the caller's step record: returning
       a (taken, next) pair here would allocate on every executed block. *)
    (match block.Block.term with
    | Terminator.Fallthrough ->
      s.taken <- false;
      s.next <- Block.fall_addr block
    | Terminator.Jump tgt ->
      s.taken <- true;
      s.next <- tgt
    | Terminator.Cond tgt ->
      if Behavior.decide (cond_state t id site) then begin
        s.taken <- true;
        s.next <- tgt
      end
      else begin
        s.taken <- false;
        s.next <- Block.fall_addr block
      end
    | Terminator.Call tgt ->
      push_return t (Block.fall_addr block);
      s.taken <- true;
      s.next <- tgt
    | Terminator.Indirect_jump ->
      s.taken <- true;
      s.next <- Behavior.choose (indirect_state t id site)
    | Terminator.Indirect_call ->
      push_return t (Block.fall_addr block);
      s.taken <- true;
      s.next <- Behavior.choose (indirect_state t id site)
    | Terminator.Return ->
      s.taken <- true;
      if t.stack_len = 0 then s.next <- Addr.none
      else begin
        t.stack_len <- t.stack_len - 1;
        s.next <- t.stack.(t.stack_len)
      end
    | Terminator.Halt ->
      s.taken <- false;
      s.next <- Addr.none);
    let next = s.next in
    if (not (Addr.is_none next)) && not (Program.is_block_start program next) then
      invalid_arg
        (Printf.sprintf "Interp.step: transfer from %s to %s, which is not a block start"
           (Addr.to_string site) (Addr.to_string next));
    t.pc <- next;
    s.block <- block;
    true
  end

let step t =
  let s = make_step () in
  if step_into t s then Some s else None

let pc t = if Addr.is_none t.pc then None else Some t.pc
let stack_depth t = t.stack_len
