(** Open-addressing hash table from non-negative int keys to non-negative
    int values: the simulator's per-step probe structure.  A probe is a
    multiply, a shift and a linear scan — no C calls, no indirect calls,
    no allocation.  There is no deletion, and iteration order is
    arbitrary: only use it where that order is never observable. *)

type t

val create : int -> t
(** [create n] sizes the table for about [n] bindings (it grows as
    needed). *)

val find : t -> int -> int
(** The value bound to the key, or [-1] when absent (values are
    non-negative by contract). *)

val mem : t -> int -> bool

val set : t -> int -> int -> unit
(** Bind key to value, inserting or overwriting.
    @raise Invalid_argument on a negative key. *)

val bump : t -> int -> unit
(** Add 1 to the key's count, inserting it at 1 — a single probe.
    @raise Invalid_argument on a negative key. *)

val bump_fresh : t -> int -> bool
(** {!bump} that returns [true] iff the key was newly inserted, in the
    same single probe.
    @raise Invalid_argument on a negative key. *)

val add_fresh : t -> int -> int -> bool
(** [add_fresh t key n] adds [n] to the key's count, inserting it at [n];
    [true] iff the key was newly inserted.  One probe.
    @raise Invalid_argument on a negative key. *)

val length : t -> int

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> int -> unit) -> t -> unit

val sorted_pairs : t -> (int * int) list
(** All bindings sorted by key — the canonical enumeration snapshot
    codecs must use, so the serialized bytes are a function of the
    table's content and not of its probe-layout history. *)
