(* 300.twolf: standard-cell placement via simulated annealing.  The
   accept/reject decision of annealing is inherently unbiased, and both
   outcomes rejoin the cost-update code (which calls position helpers) —
   exactly the Figure 4 shape whose tail duplication trace combination
   removes. *)

let build () =
  let b = Builder.create () in
  Patterns.leaf b ~name:"dbox_pos" ~size:6;
  Patterns.composite_loop b ~name:"ucxx" ~trip:250
    ~body:
      [
        Patterns.Straight 4;
        Patterns.Diamond { Patterns.bias = 0.5; side_size = 6 };
        Patterns.Call_to "dbox_pos";
        Patterns.Diamond { Patterns.bias = 0.5; side_size = 5 };
        Patterns.Straight 4;
        Patterns.Continue 0.1;
      ];
  Patterns.composite_loop b ~name:"new_dbox" ~trip:200
    ~body:
      [
        Patterns.Straight 4;
        Patterns.Diamond { Patterns.bias = 0.5; side_size = 5 };
        Patterns.Diamond { Patterns.bias = 0.7; side_size = 4 };
        Patterns.Straight 3;
      ];
  Patterns.composite_loop b ~name:"term_newpos" ~trip:150
    ~body:[ Patterns.Straight 4; Patterns.Call_to "dbox_pos"; Patterns.Straight 4 ];
  Patterns.plain_loop b ~name:"wirecosts" ~trip:200 ~body_blocks:3 ~body_size:4;
  Patterns.spaced_loop b ~name:"config_read" ~body_size:4;
  Patterns.cold_farm b ~name:"cell_pool" ~n:10 ~body_size:5;
  Patterns.driver b ~name:"main"
    ~weights:[ "config_read", 0.1; "cell_pool", 0.1 ]
    [ "ucxx"; "new_dbox"; "term_newpos"; "wirecosts"; "config_read"; "cell_pool" ];
  Builder.compile b ~name:"twolf" ~entry:"main"

let spec =
  Spec.make ~name:"twolf"
    ~description:
      "300.twolf stand-in: unbiased annealing accept/reject diamonds that rejoin; the \
       canonical trace-combination winner"
    ~steps:900_000 build
