lib/workload/spec_eon.ml: Builder List Patterns Printf Spec
