lib/isa/addr.mli: Format Hashtbl Map Set
