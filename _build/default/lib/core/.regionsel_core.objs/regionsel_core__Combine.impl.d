lib/core/combine.ml: Addr Compact_trace List Regionsel_engine Regionsel_isa Trace_cfg
