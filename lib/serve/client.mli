(** Client driver for the daemon: stream a recorded branch-event file
    into a tenant session, or run a control command.  The single
    implementation of the resume re-alignment (skip to the server's
    [resume_step]) shared by the CLI binary, the lifecycle tests and the
    CI smoke job.

    The first connection ignores [SIGPIPE] process-wide, so a daemon
    that closes mid-stream surfaces as {!Rejected} or a
    [Unix.Unix_error (EPIPE, _, _)] instead of killing the client. *)

exception Rejected of { code : Proto.reject_code; detail : string }
(** The server answered with a typed Reject. *)

val with_connection : socket_path:string -> (Unix.file_descr -> 'a) -> 'a
(** Connect to the daemon, run [f], close the socket (also on raise).
    Ensures [SIGPIPE] is ignored first — raw-protocol callers (tests,
    custom drivers) get the same EPIPE-as-exception discipline as the
    high-level entry points. *)

type outcome =
  | Finished of string  (** The Result frame's [Run_metrics] JSON. *)
  | Truncated of int  (** Disconnected after sending this many events. *)

val stream_events :
  ?chunk:int ->
  ?truncate_at:int ->
  socket_path:string ->
  tenant:string ->
  bench:string ->
  policy:string ->
  seed:int64 ->
  max_steps:int ->
  program:Regionsel_isa.Program.t ->
  Regionsel_engine.Branch_stream.events ->
  outcome
(** Hello, then the events in [chunk]-sized batches (default 4096) from
    the server's [resume_step], then Fin and the Result.  With
    [truncate_at:n] the connection instead drops after sending at most
    [n] events and no Fin — the session stays resumable (the server
    snapshots it on disconnect); returns {!Truncated}.
    @raise Rejected on a typed server reject.
    @raise Proto.Protocol_error on a malformed or out-of-sequence reply. *)

val stream_file :
  ?chunk:int ->
  ?truncate_at:int ->
  socket_path:string ->
  tenant:string ->
  bench:string ->
  policy:string ->
  seed:int64 ->
  max_steps:int ->
  path:string ->
  unit ->
  outcome
(** {!stream_events} over a REVL recording file ([Event_log.read_file],
    so the identity header is checked against [bench]'s program and
    [seed]).  [max_steps = 0] means the bench's default budget.
    @raise Invalid_argument on an unknown bench.
    @raise Regionsel_persist.Persist.Hard_corruption on a damaged file. *)

val ctrl :
  socket_path:string ->
  string ->
  (string, Proto.reject_code * string) result
(** Run one control command ([ping], [status], [prom], [jsonl],
    [jsonl N], [shutdown]) on a fresh connection; [Ok] carries the Data
    reply body. *)
