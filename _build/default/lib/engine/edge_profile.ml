open Regionsel_isa

type t = { edges : (Addr.t * Addr.t, int) Hashtbl.t; mutable pred_index : Addr.Set.t Addr.Table.t option }

let create () = { edges = Hashtbl.create 4096; pred_index = None }

let record t ~src ~dst =
  t.pred_index <- None;
  let key = src, dst in
  match Hashtbl.find_opt t.edges key with
  | Some c -> Hashtbl.replace t.edges key (c + 1)
  | None -> Hashtbl.replace t.edges key 1

let count t ~src ~dst = Option.value ~default:0 (Hashtbl.find_opt t.edges (src, dst))

let build_pred_index t =
  let index = Addr.Table.create 1024 in
  Hashtbl.iter
    (fun (src, dst) _ ->
      let prev = Option.value ~default:Addr.Set.empty (Addr.Table.find_opt index dst) in
      Addr.Table.replace index dst (Addr.Set.add src prev))
    t.edges;
  t.pred_index <- Some index;
  index

let preds t a =
  let index = match t.pred_index with Some i -> i | None -> build_pred_index t in
  Option.value ~default:Addr.Set.empty (Addr.Table.find_opt index a)

let n_edges t = Hashtbl.length t.edges
let fold f t init = Hashtbl.fold (fun (src, dst) c acc -> f ~src ~dst c acc) t.edges init
