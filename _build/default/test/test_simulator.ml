(* Integration tests of the full simulator loop, including the global
   accounting invariants that tie regions, stats and the edge profile
   together. *)

module Simulator = Regionsel_engine.Simulator
module Stats = Regionsel_engine.Stats
module Region = Regionsel_engine.Region
module Context = Regionsel_engine.Context
module Counters = Regionsel_engine.Counters
module Params = Regionsel_engine.Params
module Edge_profile = Regionsel_engine.Edge_profile
module Policies = Regionsel_core.Policies
open Fixtures

let sum f regions = List.fold_left (fun acc r -> acc + f r) 0 regions

let accounting_invariants result =
  let stats = result.Simulator.stats in
  let regions = regions_of result in
  let entries = sum (fun (r : Region.t) -> r.Region.entries) regions in
  let exits = sum (fun (r : Region.t) -> r.Region.exits) regions in
  let cached = sum (fun (r : Region.t) -> r.Region.insts_executed) regions in
  check_int "entries = dispatches + transitions"
    (stats.Stats.dispatches + stats.Stats.region_transitions)
    entries;
  check_int "exits = transitions + exits-to-interpreter"
    (stats.Stats.region_transitions + stats.Stats.cache_exits_to_interp
    + if result.Simulator.halted then 0 else 0)
    exits;
  check_int "cached instructions attributed to regions" stats.Stats.cached_insts cached;
  check_int "installs match cache contents" stats.Stats.installs (List.length regions);
  check_int "total = interpreted + cached" (Stats.total_insts stats)
    (stats.Stats.interpreted_insts + stats.Stats.cached_insts)

let invariants_hold_for_all_policies () =
  List.iter
    (fun (_, policy) ->
      List.iter
        (fun image -> accounting_invariants (run ~max_steps:60_000 policy image))
        [ figure2 (); figure3 (); figure4 () ])
    Policies.all

let hot_loop_mostly_cached () =
  let result = run Policies.net (simple_loop ~trip:50_000 ()) in
  check_true "hit rate above 99%" (Stats.hit_rate result.Simulator.stats > 0.99)

let budget_respected () =
  let result = run ~max_steps:1_234 Policies.net (simple_loop ~trip:1_000_000 ()) in
  check_int "stops at the step budget" 1_234 result.Simulator.stats.Stats.steps;
  check_true "did not halt" (not result.Simulator.halted)

let halting_program_halts () =
  let result = run ~max_steps:1_000_000 Policies.net (simple_loop ~trip:100 ()) in
  check_true "halted" result.Simulator.halted;
  check_true "ran fewer steps than budget" (result.Simulator.stats.Stats.steps < 1_000_000)

let determinism () =
  let snap () =
    let r = run ~seed:99L Policies.combined_lei (figure4 ()) in
    ( r.Simulator.stats.Stats.steps,
      r.Simulator.stats.Stats.cached_insts,
      r.Simulator.stats.Stats.region_transitions,
      List.map (fun (x : Region.t) -> x.Region.entry) (regions_of r) )
  in
  check_true "identical reruns" (snap () = snap ())

let cycle_counting_on_simple_loop () =
  let result = run Policies.net (simple_loop ~trip:50_000 ()) in
  match regions_of result with
  | [ r ] ->
    check_true "trace spans the loop" r.Region.spans_cycle;
    check_true "most iterations stay in the region" (r.Region.cycle_iters > 40_000)
  | other -> Alcotest.failf "expected exactly one region, got %d" (List.length other)

let no_selection_below_threshold () =
  (* A loop that runs fewer iterations than the NET threshold never gets a
     region. *)
  let result = run Policies.net (simple_loop ~trip:40 ()) in
  check_int "nothing selected" 0 (List.length (regions_of result));
  check_int "nothing cached" 0 result.Simulator.stats.Stats.cached_insts

let selection_at_threshold () =
  let result = run Policies.net (simple_loop ~trip:60 ()) in
  check_int "one region at threshold" 1 (List.length (regions_of result))

let lower_threshold_selects_earlier () =
  let params = { Params.default with Params.net_threshold = 10 } in
  let result = run ~params Policies.net (simple_loop ~trip:40 ()) in
  check_int "selected with lower threshold" 1 (List.length (regions_of result))

let edge_profile_covers_execution () =
  let result = run Policies.net (figure2 ()) in
  let total_edges =
    Edge_profile.fold (fun ~src:_ ~dst:_ count acc -> acc + count) result.Simulator.edges 0
  in
  (* Every step except the final halt records exactly one edge. *)
  check_int "one edge per step" (result.Simulator.stats.Stats.steps - 1) total_edges

let counters_recycled () =
  let result = run Policies.net (simple_loop ~trip:50_000 ()) in
  let counters = result.Simulator.ctx.Context.counters in
  (* The loop-head counter is recycled at selection; the only counter that
     can remain live is the one allocated for the loop's final exit target
     when the program leaves the cache to halt. *)
  check_true "at most the exit-target counter left" (Counters.live counters <= 1);
  check_int "never more than one counter at a time" 1 (Counters.high_water counters);
  check_int "two allocations in total" 2 (Counters.total_allocations counters)

let suite =
  [
    case "accounting invariants (all policies)" invariants_hold_for_all_policies;
    case "hot loop mostly cached" hot_loop_mostly_cached;
    case "budget respected" budget_respected;
    case "halting program halts" halting_program_halts;
    case "determinism" determinism;
    case "cycle counting on simple loop" cycle_counting_on_simple_loop;
    case "no selection below threshold" no_selection_below_threshold;
    case "selection at threshold" selection_at_threshold;
    case "lower threshold selects earlier" lower_threshold_selects_earlier;
    case "edge profile covers execution" edge_profile_covers_execution;
    case "counters recycled" counters_recycled;
  ]
