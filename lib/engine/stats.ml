type t = {
  mutable steps : int;
  mutable interpreted_insts : int;
  mutable cached_insts : int;
  mutable taken_branches : int;
  mutable region_transitions : int;
  mutable dispatches : int;
  mutable cache_exits_to_interp : int;
  mutable installs : int;
  mutable links : int;
  mutable link_hits : int;
  mutable node_steps : int;
  mutable install_rejects : int;
  mutable faults_injected : int;
  mutable async_exits : int;
  mutable bailouts : int;
  mutable recovery_steps : int;
}

let create () =
  {
    steps = 0;
    interpreted_insts = 0;
    cached_insts = 0;
    taken_branches = 0;
    region_transitions = 0;
    dispatches = 0;
    cache_exits_to_interp = 0;
    installs = 0;
    links = 0;
    link_hits = 0;
    node_steps = 0;
    install_rejects = 0;
    faults_injected = 0;
    async_exits = 0;
    bailouts = 0;
    recovery_steps = 0;
  }

module Snapshot = struct
  type t = {
    steps : int;
    interpreted_insts : int;
    cached_insts : int;
    taken_branches : int;
    region_transitions : int;
    dispatches : int;
    cache_exits_to_interp : int;
    installs : int;
    links : int;
    link_hits : int;
    node_steps : int;
    install_rejects : int;
    faults_injected : int;
    async_exits : int;
    bailouts : int;
    recovery_steps : int;
  }
end

let snapshot t =
  {
    Snapshot.steps = t.steps;
    interpreted_insts = t.interpreted_insts;
    cached_insts = t.cached_insts;
    taken_branches = t.taken_branches;
    region_transitions = t.region_transitions;
    dispatches = t.dispatches;
    cache_exits_to_interp = t.cache_exits_to_interp;
    installs = t.installs;
    links = t.links;
    link_hits = t.link_hits;
    node_steps = t.node_steps;
    install_rejects = t.install_rejects;
    faults_injected = t.faults_injected;
    async_exits = t.async_exits;
    bailouts = t.bailouts;
    recovery_steps = t.recovery_steps;
  }

(* Counters are monotone within a run, but a window can straddle a
   counter reload (a crash fault resets nothing here, yet [load] may
   install an older image, e.g. a snapshot restore taken before the
   window opened).  A window is a measure of activity: clamp at zero so a
   baseline from a discarded future never yields negative rates. *)
let ( -^ ) a b = if a > b then a - b else 0

let diff ~earlier ~later =
  {
    Snapshot.steps = later.Snapshot.steps -^ earlier.Snapshot.steps;
    interpreted_insts =
      later.Snapshot.interpreted_insts -^ earlier.Snapshot.interpreted_insts;
    cached_insts = later.Snapshot.cached_insts -^ earlier.Snapshot.cached_insts;
    taken_branches = later.Snapshot.taken_branches -^ earlier.Snapshot.taken_branches;
    region_transitions =
      later.Snapshot.region_transitions -^ earlier.Snapshot.region_transitions;
    dispatches = later.Snapshot.dispatches -^ earlier.Snapshot.dispatches;
    cache_exits_to_interp =
      later.Snapshot.cache_exits_to_interp -^ earlier.Snapshot.cache_exits_to_interp;
    installs = later.Snapshot.installs -^ earlier.Snapshot.installs;
    links = later.Snapshot.links -^ earlier.Snapshot.links;
    link_hits = later.Snapshot.link_hits -^ earlier.Snapshot.link_hits;
    node_steps = later.Snapshot.node_steps -^ earlier.Snapshot.node_steps;
    install_rejects = later.Snapshot.install_rejects -^ earlier.Snapshot.install_rejects;
    faults_injected = later.Snapshot.faults_injected -^ earlier.Snapshot.faults_injected;
    async_exits = later.Snapshot.async_exits -^ earlier.Snapshot.async_exits;
    bailouts = later.Snapshot.bailouts -^ earlier.Snapshot.bailouts;
    recovery_steps = later.Snapshot.recovery_steps -^ earlier.Snapshot.recovery_steps;
  }

(* Checkpoint support: the counters as a flat int stream, in declaration
   order.  [save_snapshot]/[load_snapshot] serialize a frozen image the
   same way (the bailout watchdog's window baseline survives restore). *)

let save t emit =
  emit t.steps;
  emit t.interpreted_insts;
  emit t.cached_insts;
  emit t.taken_branches;
  emit t.region_transitions;
  emit t.dispatches;
  emit t.cache_exits_to_interp;
  emit t.installs;
  emit t.links;
  emit t.link_hits;
  emit t.node_steps;
  emit t.install_rejects;
  emit t.faults_injected;
  emit t.async_exits;
  emit t.bailouts;
  emit t.recovery_steps

let load t read =
  t.steps <- read ();
  t.interpreted_insts <- read ();
  t.cached_insts <- read ();
  t.taken_branches <- read ();
  t.region_transitions <- read ();
  t.dispatches <- read ();
  t.cache_exits_to_interp <- read ();
  t.installs <- read ();
  t.links <- read ();
  t.link_hits <- read ();
  t.node_steps <- read ();
  t.install_rejects <- read ();
  t.faults_injected <- read ();
  t.async_exits <- read ();
  t.bailouts <- read ();
  t.recovery_steps <- read ()

let save_snapshot (s : Snapshot.t) emit =
  emit s.Snapshot.steps;
  emit s.Snapshot.interpreted_insts;
  emit s.Snapshot.cached_insts;
  emit s.Snapshot.taken_branches;
  emit s.Snapshot.region_transitions;
  emit s.Snapshot.dispatches;
  emit s.Snapshot.cache_exits_to_interp;
  emit s.Snapshot.installs;
  emit s.Snapshot.links;
  emit s.Snapshot.link_hits;
  emit s.Snapshot.node_steps;
  emit s.Snapshot.install_rejects;
  emit s.Snapshot.faults_injected;
  emit s.Snapshot.async_exits;
  emit s.Snapshot.bailouts;
  emit s.Snapshot.recovery_steps

let load_snapshot read =
  let steps = read () in
  let interpreted_insts = read () in
  let cached_insts = read () in
  let taken_branches = read () in
  let region_transitions = read () in
  let dispatches = read () in
  let cache_exits_to_interp = read () in
  let installs = read () in
  let links = read () in
  let link_hits = read () in
  let node_steps = read () in
  let install_rejects = read () in
  let faults_injected = read () in
  let async_exits = read () in
  let bailouts = read () in
  let recovery_steps = read () in
  {
    Snapshot.steps;
    interpreted_insts;
    cached_insts;
    taken_branches;
    region_transitions;
    dispatches;
    cache_exits_to_interp;
    installs;
    links;
    link_hits;
    node_steps;
    install_rejects;
    faults_injected;
    async_exits;
    bailouts;
    recovery_steps;
  }

let total_insts t = t.interpreted_insts + t.cached_insts

let hit_rate t =
  let total = total_insts t in
  if total = 0 then 0.0 else float_of_int t.cached_insts /. float_of_int total
