lib/core/combine.mli: Addr Compact_trace Regionsel_engine Regionsel_isa
