(** Reusable control-flow patterns for the synthetic benchmarks.

    Each pattern declares one function (or a family) in a {!Builder}
    program.  The twelve SPECint2000 stand-ins are built by composing these
    patterns with per-benchmark biases and trip counts; every pattern
    corresponds to a control-flow trait the paper leans on:

    - loops with and without calls (Figures 2 and 3: interprocedural cycles
      and nested loops);
    - chains of biased/unbiased diamonds (Figure 4 and Section 4: path
      splits that rejoin);
    - indirect dispatch loops (interpreter-style code, many warm targets);
    - very long cycles (more taken branches per iteration than LEI's
      history buffer holds);
    - call farms (many callers of one callee — eon's exit-domination
      outlier). *)

type diamond = {
  bias : float;  (** Probability of the taken (non-fall-through) side. *)
  side_size : int;  (** Instructions per arm. *)
}

val leaf : Builder.t -> name:string -> size:int -> unit
(** A straight-line function of [size] instructions that returns. *)

val plain_loop :
  Builder.t -> name:string -> trip:int -> body_blocks:int -> body_size:int -> unit
(** A function with one self-contained loop of [trip] iterations per call;
    the body is a fall-through chain of [body_blocks] blocks. *)

val loop_with_calls : Builder.t -> name:string -> trip:int -> callees:string list -> unit
(** A loop whose body calls each (already declared, hence backward) callee
    in turn each iteration: the Figure 2 interprocedural cycle. *)

val nested_loop :
  Builder.t -> name:string -> outer_trip:int -> inner_trip:int -> body_size:int -> unit
(** The Figure 3 shape: an outer loop whose body contains an inner loop. *)

val diamond_loop : Builder.t -> name:string -> trip:int -> diamonds:diamond list -> unit
(** A loop whose body is a chain of if-else diamonds, each rejoining before
    the next: unbiased entries reproduce the Figure 4 split-and-rejoin. *)

val diamond_loop_with :
  Builder.t -> name:string -> trip:int -> diamonds:(Behavior.spec * int) list -> unit
(** Like {!diamond_loop} but with explicit outcome models per split, e.g.
    {!Behavior.Phased} flips for phase-changing programs. *)

val dispatch_loop :
  Builder.t -> name:string -> trip:int -> cases:(int * float) list -> unit
(** An interpreter-style loop: the header indirect-jumps to one of the case
    blocks (size, weight) and every case jumps back to the header. *)

val long_cycle_loop :
  Builder.t -> name:string -> trip:int -> segments:int -> hops_per_segment:int -> unit
(** A pointer-chasing loop executing [segments * hops_per_segment] taken
    jumps per iteration, laid out so every segment entry is a backward-jump
    target.  With the product above the history-buffer capacity, NET covers
    the walk (one trace per segment) but LEI never sees the cycle complete:
    the source of mcf's hit-rate gap. *)

type element =
  | Straight of int  (** A fall-through block of this many instructions. *)
  | Diamond of diamond  (** An if-else split rejoining before the next element. *)
  | Call_to of string  (** A call to an already-declared (backward) callee. *)
  | Continue of float
      (** A second latch: branch back to the loop head with this
          probability, giving the head multiple executed predecessors. *)

val composite_loop : Builder.t -> name:string -> trip:int -> body:element list -> unit
(** A loop whose body mixes straight code, diamonds, calls and continue
    edges — the realistic "big hot loop" shape on which NET must split at
    every backward call while LEI spans the whole cycle. *)

val cold_farm : Builder.t -> name:string -> n:int -> body_size:int -> unit
(** [n] cold functions behind one umbrella that indirect-calls them
    round-robin, one per invocation.  Each member's loop header and entry
    are visited too rarely to recur inside LEI's history buffer but are
    backward-branch targets for NET: a pure profiling-counter load
    (Figure 10). *)

val recursive_fn : Builder.t -> name:string -> depth:int -> body_size:int -> unit
(** A self-recursive function: each top-level call recurses [depth - 1]
    more times before hitting the base case, exercising deep call stacks
    and return-target cycles.  Requires [depth >= 1]. *)

val spaced_loop : Builder.t -> name:string -> body_size:int -> unit
(** A loop whose backward branch is taken exactly once per call: when
    called rarely, its header leaves the history buffer between calls, so
    NET allocates a profiling counter for it but LEI never does. *)

val call_farm :
  Builder.t -> name:string -> callees:string list -> n_callers:int -> trip:int -> string list
(** [call_farm b ~name ~callees ~n_callers ~trip] declares [n_callers]
    functions, each a [trip]-iteration loop calling every callee, and
    returns their names (callers are declared after the callees the caller
    list references, so the calls are backward). *)

val driver : Builder.t -> name:string -> ?weights:(string * float) list -> string list -> unit
(** [driver b ~name funcs] declares the program's [main]: an endless loop
    calling each function in [funcs] every iteration; functions listed in
    [weights] are instead called only with the given probability, modelling
    cold or phase-dependent work. *)
