module Writer = struct
  type t = { mutable buf : bytes; mutable n_bits : int }

  let create () = { buf = Bytes.make 16 '\000'; n_bits = 0 }

  let ensure t n_bytes =
    if n_bytes > Bytes.length t.buf then begin
      let cap = max n_bytes (2 * Bytes.length t.buf) in
      let buf = Bytes.make cap '\000' in
      Bytes.blit t.buf 0 buf 0 (Bytes.length t.buf);
      t.buf <- buf
    end

  let add_bit t bit =
    let byte_pos = t.n_bits / 8 and bit_pos = t.n_bits mod 8 in
    ensure t (byte_pos + 1);
    if bit then begin
      let mask = 0x80 lsr bit_pos in
      Bytes.unsafe_set t.buf byte_pos
        (Char.chr (Char.code (Bytes.unsafe_get t.buf byte_pos) lor mask))
    end;
    t.n_bits <- t.n_bits + 1

  let add_bits2 t v =
    assert (v >= 0 && v <= 3);
    add_bit t (v land 2 <> 0);
    add_bit t (v land 1 <> 0)

  let add_uint32 t v =
    assert (v >= 0 && v < 0x1_0000_0000);
    for i = 31 downto 0 do
      add_bit t ((v lsr i) land 1 = 1)
    done

  let length_bits t = t.n_bits
  let byte_length t = (t.n_bits + 7) / 8
  let contents t = Bytes.sub t.buf 0 (byte_length t)
end

module Reader = struct
  type t = { buf : bytes; n_bits : int; mutable pos : int }

  exception Out_of_bits

  let create buf ~n_bits =
    if (n_bits + 7) / 8 > Bytes.length buf then invalid_arg "Bitbuf.Reader.create";
    { buf; n_bits; pos = 0 }

  let read_bit t =
    if t.pos >= t.n_bits then raise Out_of_bits;
    let byte_pos = t.pos / 8 and bit_pos = t.pos mod 8 in
    t.pos <- t.pos + 1;
    Char.code (Bytes.unsafe_get t.buf byte_pos) land (0x80 lsr bit_pos) <> 0

  let read_bits2 t =
    let hi = read_bit t in
    let lo = read_bit t in
    ((if hi then 2 else 0) lor if lo then 1 else 0 : int)

  let read_uint32 t =
    let v = ref 0 in
    for _ = 1 to 32 do
      v := (!v lsl 1) lor if read_bit t then 1 else 0
    done;
    !v

  let remaining_bits t = t.n_bits - t.pos
end
