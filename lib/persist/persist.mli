(** Crash-safe warm-state snapshots (checkpoint/restore).

    A snapshot captures the full warm state of a simulator run — code
    cache, policy and profiler state, blacklist, statistics, every PRNG
    stream position — as a versioned, length-prefixed binary image with a
    CRC32 per section, so that a run restored from a snapshot taken at
    step [N] continues {e bit-identically} to the uninterrupted run.

    The format is corruption-tolerant by construction (see DESIGN.md
    "Snapshot format & recovery semantics"): each section is framed with
    its own tag, version, byte length and checksum, so a torn, truncated
    or bit-flipped section is {e dropped} — the owning subsystem re-warms
    from scratch — and reported in the {!report} rather than aborting the
    restore.  Only a corrupt or mismatched {e header} (magic, format
    version, program/seed/policy identity, header CRC) raises
    {!Hard_corruption}: with the header gone there is no trustworthy
    frame to recover anything from.

    Files are written atomically: the image goes to [path ^ ".tmp"],
    which is fsynced and then renamed over [path] — a crash mid-write
    (simulated with [crash_after_bytes]) leaves the previous snapshot
    intact. *)

module Simulator = Regionsel_engine.Simulator

exception Hard_corruption of string
(** The snapshot header is unusable (bad magic, unsupported format
    version, checksum mismatch) or names a different run (program shape,
    seed or policy disagree with the restoring run). *)

type degraded = {
  section : string;  (** Section name, e.g. ["cache"], or ["<frame>"]. *)
  reason : string;  (** Why it was dropped, e.g. ["checksum mismatch"]. *)
}

type report = {
  restored : string list;  (** Sections loaded successfully, in file order. *)
  degraded : degraded list;
      (** Sections dropped; each owning subsystem kept its fresh
          (run-start) state and re-warms. *)
  skipped : int;
      (** Frames with an unknown tag or naming a section the restoring run
          does not have active (e.g. telemetry without a sink): skipped,
          not an error — forward compatibility. *)
}

val clean : report -> bool
(** No degraded sections. *)

val crc32 : Bytes.t -> pos:int -> len:int -> int
(** The CRC32 (IEEE 802.3) every persisted artifact in this layer is
    checked with — shared with {!Event_log} so recordings and snapshots
    corrupt (and are caught) the same way. *)

(** {1 In-memory image} *)

val encode : seed:int64 -> policy:string -> Simulator.internals -> bytes
(** Serialize every section of the run into a snapshot image.  Pure
    observation: the run is unaffected. *)

val decode_into : bytes -> seed:int64 -> policy:string -> Simulator.internals -> report
(** Validate the header against the restoring run's identity, then load
    each section that survives its own CRC/version/structure checks.
    @raise Hard_corruption on an unusable or mismatched header. *)

(** {1 Files} *)

val save_file :
  ?crash_after_bytes:int ->
  path:string ->
  seed:int64 ->
  policy:string ->
  Simulator.internals ->
  unit
(** {!encode} then write atomically (tmp + fsync + rename).  With
    [crash_after_bytes = n] the write stops after [n] bytes of the
    temporary file and neither fsyncs nor renames — the simulated
    mid-checkpoint crash: [path] keeps whatever it held before. *)

val session_file :
  dir:string -> tenant:string -> bench:string -> policy:string -> seed:int64 -> string
(** The canonical snapshot path for a daemon tenant session: a
    filesystem-safe stem derived from [tenant] plus a CRC32 of the full
    [(tenant, bench, policy, seed)] identity, so reconnecting under a
    different identity resolves to a different file (a fresh session)
    rather than tripping {!restore_file}'s header check. *)

val restore_file : path:string -> seed:int64 -> policy:string -> Simulator.internals -> report
(** Read [path] and {!decode_into} it.
    @raise Sys_error when the file cannot be read.
    @raise Hard_corruption as {!decode_into}. *)
