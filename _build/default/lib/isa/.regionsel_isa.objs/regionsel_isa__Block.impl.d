lib/isa/block.ml: Addr Format Terminator
