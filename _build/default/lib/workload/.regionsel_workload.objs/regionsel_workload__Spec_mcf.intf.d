lib/workload/spec_mcf.mli: Spec
