open Regionsel_isa

type t = {
  by_entry : Region.t Int_tbl.t;
  by_aux_entry : Region.t Int_tbl.t;
  mutable live_order : Region.t list; (* newest first *)
  mutable retired : Region.t list; (* newest first *)
  mutable next_id : int;
  mutable bytes_used : int;
  mutable alloc_cursor : int;
      (* Bump allocator for region placement; holes left by eviction are not
         reused, as in cache managers that only reclaim on flush. *)
  capacity_bytes : int option;
  eviction : Params.eviction;
  evicted_entries : unit Int_tbl.t;
  mutable evictions : int;
  mutable flushes : int;
  mutable regenerations : int;
}

let create ?capacity_bytes ?(eviction = Params.Flush_all) () =
  {
    by_entry = Int_tbl.create 256;
    by_aux_entry = Int_tbl.create 64;
    live_order = [];
    retired = [];
    next_id = 0;
    bytes_used = 0;
    alloc_cursor = 0;
    capacity_bytes;
    eviction;
    evicted_entries = Int_tbl.create 64;
    evictions = 0;
    flushes = 0;
    regenerations = 0;
  }

let find t a =
  match Int_tbl.find_opt t.by_entry a with
  | Some _ as hit -> hit
  | None -> Int_tbl.find_opt t.by_aux_entry a

(* Option-free [find] for the simulator's per-transition probe. *)
let find_live t a =
  match Int_tbl.find t.by_entry a with
  | r -> r
  | exception Not_found -> Int_tbl.find t.by_aux_entry a

let mem t a = Int_tbl.mem t.by_entry a || Int_tbl.mem t.by_aux_entry a

let retire t (region : Region.t) =
  Int_tbl.remove t.by_entry region.Region.entry;
  Addr.Set.iter
    (fun a ->
      match Int_tbl.find_opt t.by_aux_entry a with
      | Some r when r == region -> Int_tbl.remove t.by_aux_entry a
      | Some _ | None -> ())
    region.Region.aux_entries;
  Int_tbl.replace t.evicted_entries region.Region.entry ();
  t.retired <- region :: t.retired;
  t.bytes_used <- t.bytes_used - Region.cache_bytes region;
  t.evictions <- t.evictions + 1

let flush_all t =
  List.iter (retire t) t.live_order;
  t.live_order <- [];
  t.flushes <- t.flushes + 1

let evict_oldest t =
  match List.rev t.live_order with
  | [] -> ()
  | oldest :: _ ->
    retire t oldest;
    t.live_order <- List.filter (fun r -> not (r == oldest)) t.live_order

let rec make_room t needed =
  match t.capacity_bytes with
  | None -> ()
  | Some capacity ->
    if t.bytes_used + needed > capacity && t.live_order <> [] then begin
      (match t.eviction with Params.Flush_all -> flush_all t | Params.Evict_oldest -> evict_oldest t);
      make_room t needed
    end

let install t (spec : Region.spec) =
  if mem t spec.Region.entry then
    invalid_arg
      (Printf.sprintf "Code_cache.install: entry %s already cached"
         (Addr.to_string spec.Region.entry));
  let region = Region.of_spec ~id:t.next_id ~selected_at:t.next_id spec in
  make_room t (Region.cache_bytes region);
  t.next_id <- t.next_id + 1;
  if Int_tbl.mem t.evicted_entries spec.Region.entry then
    t.regenerations <- t.regenerations + 1;
  Int_tbl.replace t.by_entry spec.Region.entry region;
  Addr.Set.iter
    (fun a -> Int_tbl.replace t.by_aux_entry a region)
    region.Region.aux_entries;
  t.live_order <- region :: t.live_order;
  t.bytes_used <- t.bytes_used + Region.cache_bytes region;
  Region.set_cache_base region t.alloc_cursor;
  t.alloc_cursor <- t.alloc_cursor + Region.cache_bytes region;
  region

let by_selection rs =
  List.sort (fun (a : Region.t) b -> compare a.Region.selected_at b.Region.selected_at) rs

let regions t = List.rev t.live_order
let all_regions t = by_selection (t.retired @ t.live_order)
let n_regions t = Int_tbl.length t.by_entry
let bytes_used t = t.bytes_used
let evictions t = t.evictions
let flushes t = t.flushes
let regenerations t = t.regenerations
