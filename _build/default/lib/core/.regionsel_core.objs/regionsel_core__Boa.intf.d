lib/core/boa.mli: Regionsel_engine
