(* The telemetry subsystem: span reconstruction completeness, the
   tracer-on/tracer-off parity invariant, ring-buffer overwrite semantics,
   log2 histogram bucketing, and the trace exporters. *)

module Spec = Regionsel_workload.Spec
module Suite = Regionsel_workload.Suite
module Simulator = Regionsel_engine.Simulator
module Params = Regionsel_engine.Params
module Stats = Regionsel_engine.Stats
module Run_metrics = Regionsel_metrics.Run_metrics
module Policies = Regionsel_core.Policies
module Telemetry = Regionsel_telemetry.Telemetry
module Trace_export = Regionsel_telemetry.Trace_export
open Fixtures

let mixed_params =
  { Params.default with Params.faults = Params.fault_profile "mixed" }

let run_traced ?(params = mixed_params) ?(policy = "net") ?(bench = "gzip")
    ?(max_steps = 100_000) ?capacity () =
  let spec = Option.get (Suite.find bench) in
  let t = Telemetry.create ?capacity () in
  let result =
    Simulator.run ~params ~seed:1L ~telemetry:(Some t)
      ~policy:(Option.get (Policies.find policy))
      ~max_steps (Spec.image spec)
  in
  Telemetry.finish t ~step:result.Simulator.stats.Stats.steps;
  t, result

(* Acceptance: every install→retirement pair is reconstructed — the span
   count equals the number of installs, regardless of ring capacity. *)
let spans_cover_every_install () =
  let t, result = run_traced () in
  let installs = result.Simulator.stats.Stats.installs in
  Alcotest.(check bool) "run installed regions" true (installs > 0);
  Alcotest.(check int) "ledger saw every install" installs (Telemetry.n_installs t);
  Alcotest.(check int) "one span per install" installs (List.length (Telemetry.spans t));
  (* The same holds with a ring far too small to hold the event stream. *)
  let t, result = run_traced ~capacity:16 () in
  Alcotest.(check int) "spans survive ring overwrite"
    result.Simulator.stats.Stats.installs
    (List.length (Telemetry.spans t))

let spans_are_well_formed () =
  let t, result = run_traced () in
  let steps = result.Simulator.stats.Stats.steps in
  List.iter
    (fun (s : Telemetry.span) ->
      Alcotest.(check bool) "install within run" true
        (s.Telemetry.installed_at >= 0 && s.Telemetry.installed_at <= steps);
      Alcotest.(check bool) "retire after install" true
        (s.Telemetry.retired_at >= s.Telemetry.installed_at);
      Alcotest.(check bool) "has nodes" true (s.Telemetry.n_nodes > 0))
    (Telemetry.spans t);
  (* Install order. *)
  let rec sorted = function
    | (a : Telemetry.span) :: (b :: _ as rest) ->
      a.Telemetry.installed_at <= b.Telemetry.installed_at && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "spans in install order" true (sorted (Telemetry.spans t))

(* The second invariant: running with a recorder changes no metric. *)
let tracer_on_metrics_identical () =
  let run telemetry =
    let spec = Option.get (Suite.find "gzip") in
    Run_metrics.of_result
      (Simulator.run ~params:mixed_params ~seed:1L ~telemetry
         ~policy:(Option.get (Policies.find "net"))
         ~max_steps:100_000 (Spec.image spec))
  in
  let off = run Telemetry.none in
  let on = run (Some (Telemetry.create ())) in
  (* The [telemetry] field itself is the one deliberate difference: it
     reports the sink's own bookkeeping and is [None] without a sink. *)
  Alcotest.(check bool) "sink-less run has no telemetry field" true
    (off.Run_metrics.telemetry = None);
  Alcotest.(check bool) "traced run reports its sink" true
    (on.Run_metrics.telemetry <> None);
  Alcotest.(check bool) "Run_metrics identical with tracer on" true
    ({ off with Run_metrics.telemetry = None }
    = { on with Run_metrics.telemetry = None })

let finish_closes_open_spans () =
  (* A clean (fault-free) run retires nothing: every span must be closed
     by [finish] with cause [End_of_run] at the final step. *)
  let t, result = run_traced ~params:Params.default () in
  let steps = result.Simulator.stats.Stats.steps in
  let spans = Telemetry.spans t in
  Alcotest.(check bool) "has spans" true (spans <> []);
  List.iter
    (fun (s : Telemetry.span) ->
      Alcotest.(check bool) "cause end-of-run" true (s.Telemetry.cause = Telemetry.End_of_run);
      Alcotest.(check int) "retired at finish step" steps s.Telemetry.retired_at)
    spans;
  (* Idempotent: a second finish must not double-close. *)
  let n = List.length spans in
  Telemetry.finish t ~step:steps;
  Alcotest.(check int) "finish is idempotent" n (List.length (Telemetry.spans t))

let residency_counts_genuine_retirements () =
  let t, _ = run_traced () in
  let genuine =
    List.length
      (List.filter
         (fun (s : Telemetry.span) -> s.Telemetry.cause <> Telemetry.End_of_run)
         (Telemetry.spans t))
  in
  Alcotest.(check int) "residency observes genuine retirements" genuine
    (Telemetry.Hist.count (Telemetry.residency t))

let ring_overwrites_oldest () =
  let t, _ = run_traced ~capacity:16 () in
  Alcotest.(check int) "capacity rounded" 16 (Telemetry.capacity t);
  let events = Telemetry.events t in
  Alcotest.(check bool) "at most capacity survive" true (List.length events <= 16);
  Alcotest.(check int) "dropped = emitted - surviving"
    (Telemetry.n_emitted t - List.length events)
    (Telemetry.n_dropped t);
  Alcotest.(check bool) "overwrite happened" true (Telemetry.n_dropped t > 0);
  (* Oldest-first: steps never decrease. *)
  let rec mono = function
    | (a : Telemetry.event) :: (b :: _ as rest) ->
      a.Telemetry.step <= b.Telemetry.step && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "events oldest first" true (mono events)

let no_drops_with_room () =
  let t, _ = run_traced ~capacity:1_000_000 () in
  Alcotest.(check int) "nothing dropped" 0 (Telemetry.n_dropped t);
  Alcotest.(check int) "everything survives" (Telemetry.n_emitted t)
    (List.length (Telemetry.events t))

let hist_bucketing () =
  let h = Telemetry.Hist.create () in
  List.iter (Telemetry.Hist.observe h) [ 0; 1; 2; 3; 4; 7; 8; 100 ];
  Alcotest.(check int) "count" 8 (Telemetry.Hist.count h);
  Alcotest.(check int) "sum" 125 (Telemetry.Hist.sum h);
  Alcotest.(check int) "max" 100 (Telemetry.Hist.max_value h);
  Alcotest.(check (list (triple int int int)))
    "log2 buckets"
    [ 0, 0, 1; 1, 1, 1; 2, 3, 2; 4, 7, 2; 8, 15, 1; 64, 127, 1 ]
    (Telemetry.Hist.buckets h);
  (* Negative observations land in the sentinel bucket and don't poison
     the sum. *)
  let h = Telemetry.Hist.create () in
  Telemetry.Hist.observe h (-5);
  Alcotest.(check (list (triple int int int))) "negative -> bucket 0" [ 0, 0, 1 ]
    (Telemetry.Hist.buckets h)

let selection_and_cooldown_histograms () =
  let t, result = run_traced () in
  let stats = result.Simulator.stats in
  (* Every install was preceded by a selection, and rejected selections
     count too. *)
  Alcotest.(check bool) "trace-length count >= installs" true
    (Telemetry.Hist.count (Telemetry.trace_length t) >= stats.Stats.installs);
  Alcotest.(check bool) "trace lengths positive" true
    (Telemetry.Hist.max_value (Telemetry.trace_length t) > 0);
  (* The mixed profile blacklists entries (invalidations + translation
     failures). *)
  Alcotest.(check bool) "cooldowns observed" true
    (Telemetry.Hist.count (Telemetry.blacklist_cooldown t) > 0);
  (* Fragment linking happened, so first-link latencies were observed —
     at most once per install. *)
  let m = Run_metrics.of_result result in
  let ttfl = Telemetry.Hist.count (Telemetry.time_to_first_link t) in
  if m.Run_metrics.links > 0 then
    Alcotest.(check bool) "first-link observed" true (ttfl > 0);
  Alcotest.(check bool) "first-link once per region" true (ttfl <= stats.Stats.installs)

let event_stream_is_coherent () =
  let t, result = run_traced ~capacity:1_000_000 () in
  let stats = result.Simulator.stats in
  let count k =
    List.length
      (List.filter (fun (e : Telemetry.event) -> e.Telemetry.kind = k) (Telemetry.events t))
  in
  Alcotest.(check int) "install events" stats.Stats.installs (count Telemetry.Install);
  Alcotest.(check int) "dispatch events" stats.Stats.dispatches (count Telemetry.Dispatch);
  Alcotest.(check int) "fault events" stats.Stats.faults_injected (count Telemetry.Fault);
  Alcotest.(check int) "bailout enters" stats.Stats.bailouts (count Telemetry.Bailout_enter);
  Alcotest.(check bool) "bailout exits pair up" true
    (count Telemetry.Bailout_exit <= stats.Stats.bailouts)

let exporters_write_valid_files () =
  let t, _ = run_traced () in
  let path = Filename.temp_file "regionsel_trace" ".json" in
  let jsonl = path ^ ".jsonl" in
  Trace_export.write_chrome t ~name:"gzip/net" ~path;
  Trace_export.write_jsonl t ~path:jsonl;
  let read p =
    let ic = open_in p in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let chrome = read path in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "chrome trace is an object" true (String.length chrome > 2 && chrome.[0] = '{');
  Alcotest.(check bool) "has traceEvents" true (contains "\"traceEvents\"" chrome);
  Alcotest.(check bool) "has span events" true (contains "\"ph\": \"X\"" chrome);
  let lines = String.split_on_char '\n' (String.trim (read jsonl)) in
  Alcotest.(check bool) "jsonl non-empty" true (List.length lines > 1);
  List.iter
    (fun l -> Alcotest.(check bool) "jsonl line is an object" true (l <> "" && l.[0] = '{'))
    lines;
  Alcotest.(check bool) "jsonl ends with summary" true
    (contains "\"summary\"" (List.nth lines (List.length lines - 1)));
  Sys.remove path;
  Sys.remove jsonl

(* Unit-level: the ledger handles region-id reuse (a fresh cache after a
   flush restarts ids at 0) by closing the stale span. *)
let ledger_handles_id_reuse () =
  let t = Telemetry.create () in
  let sink = Some t in
  Telemetry.install sink ~step:10 ~id:0 ~n_nodes:3;
  Telemetry.install sink ~step:20 ~id:0 ~n_nodes:5;
  Telemetry.evict sink ~step:30 ~id:0 ~flush:false;
  Telemetry.finish t ~step:40;
  let spans = Telemetry.spans t in
  Alcotest.(check int) "both installs have spans" 2 (List.length spans);
  match spans with
  | [ a; b ] ->
    Alcotest.(check int) "first closed at reuse" 20 a.Telemetry.retired_at;
    Alcotest.(check int) "second closed by evict" 30 b.Telemetry.retired_at;
    Alcotest.(check bool) "second cause evicted" true (b.Telemetry.cause = Telemetry.Evicted)
  | _ -> Alcotest.fail "expected exactly two spans"

(* Span durations can never run backwards, even when a caller hands the
   cache stale step stamps: [Code_cache.set_now] clamps (and counts) a
   regressing clock, so every lifecycle event is stamped at or after the
   install it follows. *)
let span_durations_never_negative () =
  let module Code_cache = Regionsel_engine.Code_cache in
  let module Region = Regionsel_engine.Region in
  let open Regionsel_isa in
  let spec start =
    Region.spec_of_path ~kind:Region.Trace
      {
        Region.blocks = [ Block.make ~start ~size:10 ~term:Terminator.Return ];
        final_next = None;
      }
  in
  let t = Telemetry.create () in
  let cache = Code_cache.create ~telemetry:(Some t) () in
  Code_cache.set_now cache 100;
  ignore (Code_cache.install_exn cache (spec 0));
  (* A stale stamp must clamp, not rewind the clock under the open span. *)
  Code_cache.set_now cache 40;
  check_int "stale stamp clamped" 100 (Code_cache.now cache);
  ignore (Code_cache.invalidate_range cache ~lo:0 ~hi:0);
  Code_cache.set_now cache 10;
  ignore (Code_cache.install_exn cache (spec 64));
  Telemetry.finish t ~step:(Code_cache.now cache);
  check_int "both spans reconstructed" 2 (List.length (Telemetry.spans t));
  List.iter
    (fun (s : Telemetry.span) ->
      check_true
        (Printf.sprintf "span #%d duration non-negative (%d..%d)" s.Telemetry.id
           s.Telemetry.installed_at s.Telemetry.retired_at)
        (s.Telemetry.retired_at >= s.Telemetry.installed_at))
    (Telemetry.spans t);
  (* The end-to-end version: a fault-heavy traced run never produces a
     backwards span either. *)
  let t, _ = run_traced ~policy:"combined-lei" () in
  List.iter
    (fun (s : Telemetry.span) ->
      check_true "traced-run span non-negative"
        (s.Telemetry.retired_at >= s.Telemetry.installed_at))
    (Telemetry.spans t)

let suite =
  [
    case "span count equals installs" spans_cover_every_install;
    case "spans are well-formed" spans_are_well_formed;
    case "tracer on/off metric parity" tracer_on_metrics_identical;
    case "finish closes open spans" finish_closes_open_spans;
    case "residency counts genuine retirements" residency_counts_genuine_retirements;
    case "ring overwrites oldest" ring_overwrites_oldest;
    case "no drops with room" no_drops_with_room;
    case "hist bucketing" hist_bucketing;
    case "selection and cooldown histograms" selection_and_cooldown_histograms;
    case "event stream coherent" event_stream_is_coherent;
    case "exporters write valid files" exporters_write_valid_files;
    case "ledger handles id reuse" ledger_handles_id_reuse;
    case "span durations never negative" span_durations_never_negative;
  ]
