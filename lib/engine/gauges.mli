(** Shared gauges a policy exposes to the measurement machinery.

    Trace combination stores compact observed traces while profiling an
    entry (Section 4.2.1); Figure 18 reports the {e maximum} memory those
    stored traces occupy at any point of the run.  A policy keeps the
    current byte total up to date here and the gauge records the high-water
    mark. *)

type t

val create : unit -> t

val add_observed_bytes : t -> int -> unit
(** Add (or, with a negative argument, subtract) stored observed-trace
    bytes. *)

val observed_bytes : t -> int
(** Currently stored observed-trace bytes. *)

val observed_bytes_high_water : t -> int

val set_blacklisted : t -> int -> unit
(** Record the current number of blacklisted entries (the simulator updates
    this after every fault delivery); the gauge keeps the high-water mark. *)

val blacklisted : t -> int

val blacklisted_high_water : t -> int

val set_links : t -> int -> unit
(** Record the current number of live inter-region links (the simulator
    updates this when links are patched in and after fault deliveries);
    the gauge keeps the high-water mark. *)

val links : t -> int

val links_high_water : t -> int

val save : t -> (int -> unit) -> unit
(** Checkpoint support: emit every gauge (current values and high-water
    marks) as a flat int stream. *)

val load : t -> (unit -> int) -> unit
(** Overwrite every gauge from a {!save} stream. *)
