(* Command-line driver: run any benchmark under any region-selection policy
   and inspect the resulting metrics and regions. *)

module Spec = Regionsel_workload.Spec
module Suite = Regionsel_workload.Suite
module Simulator = Regionsel_engine.Simulator
module Params = Regionsel_engine.Params
module Context = Regionsel_engine.Context
module Code_cache = Regionsel_engine.Code_cache
module Region = Regionsel_engine.Region
module Run_metrics = Regionsel_metrics.Run_metrics
module Policies = Regionsel_core.Policies
module Domain_pool = Regionsel_engine.Domain_pool
module Table = Regionsel_report.Table
module Telemetry = Regionsel_telemetry.Telemetry
module Trace_export = Regionsel_telemetry.Trace_export
module Check = Regionsel_check.Check
module Persist = Regionsel_persist.Persist
module Event_log = Regionsel_persist.Event_log
module Branch_stream = Regionsel_engine.Branch_stream
module Image = Regionsel_workload.Image
module Metrics = Regionsel_obs.Metrics

open Cmdliner

let bench_arg =
  let doc = "Benchmark to simulate (see the list subcommand)." in
  Arg.(required & opt (some string) None & info [ "b"; "bench" ] ~docv:"NAME" ~doc)

let policy_arg =
  let doc = "Region-selection policy: net, lei, combined-net, combined-lei, mojo, boa." in
  Arg.(value & opt string "net" & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)

let steps_arg =
  let doc = "Override the benchmark's default block-step budget." in
  Arg.(value & opt (some int) None & info [ "n"; "steps" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed for branch behaviour." in
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc)

let faults_arg =
  let doc =
    "Enable deterministic fault injection with the named profile (mixed, crash, smc, \
     translation, pressure)."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"PROFILE" ~doc)

let save_state_arg =
  let doc =
    "Write a warm-state snapshot of the run to $(docv) (atomically: tmp + fsync + \
     rename).  By default the snapshot is taken after the last step; see --at-step.  \
     Restoring it with --restore-state and continuing is bit-identical to the \
     uninterrupted run."
  in
  Arg.(value & opt (some string) None & info [ "save-state" ] ~docv:"FILE" ~doc)

let at_step_arg =
  let doc = "Take the --save-state snapshot the first time the step count reaches $(docv)." in
  Arg.(value & opt (some int) None & info [ "at-step" ] ~docv:"N" ~doc)

let restore_state_arg =
  let doc =
    "Restore a warm-state snapshot from $(docv) before the first step.  The snapshot's \
     benchmark shape, seed and policy must match this invocation.  Corrupt sections are \
     dropped with a notice on stderr and re-warm from scratch; a corrupt header aborts \
     with exit code 5."
  in
  Arg.(value & opt (some string) None & info [ "restore-state" ] ~docv:"FILE" ~doc)

let json_arg =
  let doc =
    "Print the run metrics as a single JSON object instead of the human-readable \
     report.  Field order is fixed and floats are lossless, so identical runs produce \
     byte-identical output."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

let check_arg =
  let doc =
    "Run under the invariant sanitizer: audit the cache/link/telemetry invariants on \
     every cache mutation and shadow-step a second interpreter as a differential \
     oracle.  Pure observation — the printed metrics are identical with or without it; \
     a violation aborts with a diagnostic and exit code 3."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let trace_out_arg =
  let doc =
    "Record region-lifecycle telemetry and write a Chrome trace_event JSON timeline to \
     $(docv) (load it at ui.perfetto.dev) plus a raw event stream to $(docv).jsonl.  \
     Tracing is pure observation: the printed metrics are identical with or without it."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc =
    "Sample windowed metrics during the run and write them to $(docv) as JSONL \
     time-series (one record per window per series) plus a scrape-ready Prometheus \
     text snapshot to $(docv).prom.  Sampling is pure observation — the printed \
     metrics are byte-identical with or without it — and the exports are \
     byte-deterministic for a fixed seed.  On a crash (invariant violation or \
     snapshot hard corruption) the last windows are dumped to $(docv).flight.jsonl."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let metrics_window_arg =
  let doc = "Metrics window length in steps (sampled at absolute step multiples)." in
  Arg.(value & opt int Metrics.default_window & info [ "metrics-window" ] ~docv:"N" ~doc)

let status_arg =
  let doc =
    "Print a one-line summary of every closed metrics window to stderr (stdout stays \
     byte-diffable).  Implies metrics sampling even without --metrics-out."
  in
  Arg.(value & flag & info [ "status" ] ~doc)

let lookup_bench name =
  match Suite.find name with
  | Some s -> s
  | None ->
    Printf.eprintf "unknown benchmark %s (known: %s)\n" name (String.concat ", " Suite.names);
    exit 2

let lookup_policy name =
  match Policies.find name with
  | Some p -> p
  | None ->
    Printf.eprintf "unknown policy %s (known: %s)\n" name
      (String.concat ", " (List.map fst Policies.all));
    exit 2

let params_of_faults = function
  | None -> Params.default
  | Some name -> (
    match Params.fault_profile name with
    | Some profile -> { Params.default with Params.faults = Some profile }
    | None ->
      Printf.eprintf "unknown fault profile %s (known: %s)\n" name
        (String.concat ", " (List.map fst Params.fault_profiles));
      exit 2)

let simulate ?(check = false) ?(params = Params.default) ?(telemetry = Telemetry.none)
    ?on_window ?checkpoint ?restore ?record ?replay spec policy steps seed =
  let image = Spec.image spec in
  let max_steps = Option.value ~default:spec.Spec.default_steps steps in
  if check then
    Check.checked_run ~params:{ params with Params.validate = true } ?telemetry ~seed
      ?on_window ?checkpoint ?restore ?record ?replay ~policy ~max_steps image
  else
    Simulator.run ~params ~seed ~telemetry ?on_window ?checkpoint ?restore ?record ?replay
      ~policy ~max_steps image

(* Windowed-metrics plumbing, shared by run/matrix/replay.  All notices
   (status lines, export summaries, flight dumps) go to stderr: stdout
   must stay byte-diffable against a metrics-off run. *)
let metrics_recorder ~bench ~policy ~params metrics_out metrics_window status =
  if metrics_out = None && not status then None
  else begin
    if metrics_window <= 0 then begin
      Printf.eprintf "metrics window must be positive (got %d)\n" metrics_window;
      exit 2
    end;
    let notify =
      if status then Some (fun w -> Printf.eprintf "%s\n%!" (Metrics.status_line w))
      else None
    in
    Some
      (Metrics.create ~window:metrics_window ?notify
         ~labels:
           [
             ("tenant", bench);
             ("policy", policy);
             ("dispatch", if params.Params.threaded_dispatch then "threaded" else "legacy");
           ]
         ())
  end

let export_metrics metrics_out windows =
  match metrics_out with
  | None -> ()
  | Some path ->
    Metrics.write_jsonl ~path windows;
    Metrics.write_prometheus ~path:(path ^ ".prom") windows;
    Printf.eprintf "metrics: %d windows -> %s, %s\n%!" (List.length windows) path
      (path ^ ".prom")

(* Crash flight recorder: when a metered run dies on an invariant
   violation or snapshot hard corruption, dump the newest windows plus
   the exact CLI line before the error path takes over. *)
let with_flight_dump recorder metrics_out f =
  match (recorder, metrics_out) with
  | Some r, Some path ->
    (try f ()
     with (Check.Check_violation _ | Persist.Hard_corruption _) as e ->
       let detail =
         match e with
         | Check.Check_violation v -> Check.violation_to_string v
         | Persist.Hard_corruption msg -> "hard corruption: " ^ msg
         | _ -> assert false
       in
       let fpath = path ^ ".flight.jsonl" in
       let n =
         Metrics.flight_dump ~path:fpath
           ~cli:(String.concat " " (Array.to_list Sys.argv))
           ~detail
           (Metrics.last_windows r Metrics.default_flight_keep)
       in
       Printf.eprintf "flight recorder: %d windows -> %s\n%!" n fpath;
       raise e)
  | _ -> f ()

(* Shared by run/record/replay so their stdout is byte-diffable: a replayed
   run must print exactly what the live run printed. *)
let print_metrics ~json (result : Simulator.result) =
  if json then print_endline (Run_metrics.to_json (Run_metrics.of_result result))
  else begin
    Format.printf "%a@." Run_metrics.pp (Run_metrics.of_result result);
    match result.Simulator.fault_log with
    | None -> ()
    | Some log ->
      let module Faults = Regionsel_engine.Faults in
      Format.printf "fault events:@.";
      List.iter (fun (s, l) -> Format.printf "  %8d %s@." s l) log.Faults.events
  end

(* Distinct, documented exit codes: 2 = CLI lookup error, 3 = invariant
   violation, 4 = I/O error, 5 = snapshot hard corruption. *)
let with_error_reporting f =
  try f () with
  | Check.Check_violation v ->
    Printf.eprintf "%s\n%!" (Check.violation_to_string v);
    exit 3
  | Sys_error msg ->
    Printf.eprintf "i/o error: %s\n%!" msg;
    exit 4
  | Unix.Unix_error (err, fn, arg) ->
    Printf.eprintf "i/o error: %s: %s%s\n%!" fn (Unix.error_message err)
      (if arg = "" then "" else " (" ^ arg ^ ")");
    exit 4
  | Persist.Hard_corruption msg ->
    Printf.eprintf "snapshot hard corruption: %s\n%!" msg;
    exit 5

(* Fan independent (spec, x) simulation tasks across domains.  Every run
   allocates its own state, but [Spec.image] is lazy and not thread-safe,
   so force each image here on the calling domain first.  Results come
   back in submission order, so output is identical to a sequential run. *)
let parallel_map_specs f tasks =
  List.iter (fun ((spec : Spec.t), _) -> ignore (Spec.image spec)) tasks;
  Domain_pool.map (fun ((spec : Spec.t), x) -> f spec x) tasks

let run_cmd =
  let run bench policy steps seed faults trace_out check save_state at_step restore_state
      metrics_out metrics_window status json =
    with_error_reporting @@ fun () ->
    let params = params_of_faults faults in
    let policy_name = policy in
    let recorder =
      metrics_recorder ~bench ~policy:policy_name ~params metrics_out metrics_window status
    in
    let telemetry =
      match trace_out with None -> Telemetry.none | Some _ -> Some (Telemetry.create ())
    in
    (* Save/restore notices go to stderr (like trace notices) so stdout
       stays byte-diffable between interrupted and uninterrupted runs. *)
    let checkpoint =
      Option.map
        (fun path ->
          ( Option.value ~default:max_int at_step,
            fun (internals : Simulator.internals) ->
              Persist.save_file ~path ~seed ~policy:policy_name internals;
              Printf.eprintf "snapshot: warm state saved to %s\n%!" path ))
        save_state
    in
    let restore =
      Option.map
        (fun path (internals : Simulator.internals) ->
          let report = Persist.restore_file ~path ~seed ~policy:policy_name internals in
          List.iter
            (fun (d : Persist.degraded) ->
              Printf.eprintf "snapshot: section %s dropped (%s); re-warming from scratch\n%!"
                d.Persist.section d.Persist.reason)
            report.Persist.degraded;
          if report.Persist.skipped > 0 then
            Printf.eprintf "snapshot: %d unknown/homeless sections skipped\n%!"
              report.Persist.skipped;
          (* The auditor vouches for the restored cache before the first
             step, whether or not --check is on for the rest of the run.
             The span rules only apply to a clean restore: a degraded one
             may legitimately pair a warm cache with a re-warmed (empty)
             recorder or vice versa. *)
          let cache = internals.Simulator.int_ctx.Context.cache in
          let telemetry = if Persist.clean report then telemetry else None in
          Check.audit_cache ?telemetry ~program:internals.Simulator.int_ctx.Context.program
            cache ~step:(Code_cache.now cache);
          Printf.eprintf "snapshot: restored %d sections from %s%s\n%!"
            (List.length report.Persist.restored)
            path
            (if Persist.clean report then "" else " (degraded)"))
        restore_state
    in
    let result =
      with_flight_dump recorder metrics_out @@ fun () ->
      simulate ~check ~params ~telemetry
        ?on_window:(Option.map Metrics.hook recorder)
        ?checkpoint ?restore (lookup_bench bench) (lookup_policy policy) steps seed
    in
    (match recorder with
    | None -> ()
    | Some r ->
      Metrics.finalize r result;
      export_metrics metrics_out (Metrics.windows r));
    (* Trace notices go to stderr so stdout stays diffable against an
       untraced run (the CI trace-smoke parity check relies on this). *)
    (match telemetry, trace_out with
    | Some t, Some path ->
      Telemetry.finish t ~step:result.Simulator.stats.Regionsel_engine.Stats.steps;
      Trace_export.write_chrome t ~name:(bench ^ "/" ^ policy) ~path;
      Trace_export.write_jsonl t ~path:(path ^ ".jsonl");
      Printf.eprintf "trace: %d events (%d dropped), %d spans -> %s, %s\n%!" (Telemetry.n_emitted t)
        (Telemetry.n_dropped t) (List.length (Telemetry.spans t)) path (path ^ ".jsonl")
    | _ -> ());
    print_metrics ~json result
  in
  let man =
    [
      `S Manpage.s_exit_status;
      `P "0 on success; 2 on an unknown benchmark, policy, fault profile or parameter;";
      `P "3 when --check (or the post-restore audit) finds an invariant violation;";
      `P "4 on an I/O error reading or writing a snapshot or trace;";
      `P "5 when --restore-state finds hard corruption (bad magic, header damage, or a \
          benchmark/seed/policy mismatch).";
    ]
  in
  Cmd.v
    (Cmd.info "run" ~man
       ~doc:
         "Run one benchmark under one policy and print its metrics; optionally save or \
          restore a warm-state snapshot")
    Term.(
      const run $ bench_arg $ policy_arg $ steps_arg $ seed_arg $ faults_arg
      $ trace_out_arg $ check_arg $ save_state_arg $ at_step_arg $ restore_state_arg
      $ metrics_out_arg $ metrics_window_arg $ status_arg $ json_arg)

let record_cmd =
  let run bench policy steps seed faults check events_out json =
    with_error_reporting @@ fun () ->
    let params = params_of_faults faults in
    let spec = lookup_bench bench in
    let events = Branch_stream.recorder () in
    let result =
      simulate ~check ~params ~record:events spec (lookup_policy policy) steps seed
    in
    (* The recording notice goes to stderr: stdout must be byte-diffable
       against a plain run (and against the later replay). *)
    let size =
      Event_log.write_file ~path:events_out ~program:(Spec.image spec).Image.program ~seed
        events
    in
    Printf.eprintf "events: %d branch events (%d bytes) recorded to %s\n%!"
      (Branch_stream.length events) size events_out;
    print_metrics ~json result
  in
  let events_out =
    let doc =
      "Write the run's branch-event log to $(docv) (atomically: tmp + fsync + rename), \
       for later bit-identical replay with the replay subcommand."
    in
    Arg.(required & opt (some string) None & info [ "events-out" ] ~docv:"FILE" ~doc)
  in
  let man =
    [
      `S Manpage.s_exit_status;
      `P "0 on success; 2 on an unknown benchmark, policy or fault profile;";
      `P "3 when --check finds an invariant violation;";
      `P "4 on an I/O error writing the event log.";
    ]
  in
  Cmd.v
    (Cmd.info "record" ~man
       ~doc:
         "Run one benchmark live and record its branch-event stream; stdout is \
          byte-identical to the plain run subcommand")
    Term.(
      const run $ bench_arg $ policy_arg $ steps_arg $ seed_arg $ faults_arg $ check_arg
      $ events_out $ json_arg)

let replay_cmd =
  let run bench policy steps seed faults check events_in metrics_out metrics_window status
      json =
    with_error_reporting @@ fun () ->
    let params = params_of_faults faults in
    let spec = lookup_bench bench in
    let recorder =
      metrics_recorder ~bench ~policy ~params metrics_out metrics_window status
    in
    let events =
      Event_log.read_file ~path:events_in ~program:(Spec.image spec).Image.program ~seed
    in
    Printf.eprintf "events: replaying %d branch events from %s\n%!"
      (Branch_stream.length events) events_in;
    let result =
      with_flight_dump recorder metrics_out @@ fun () ->
      simulate ~check ~params
        ?on_window:(Option.map Metrics.hook recorder)
        ~replay:events spec (lookup_policy policy) steps seed
    in
    (match recorder with
    | None -> ()
    | Some r ->
      Metrics.finalize r result;
      export_metrics metrics_out (Metrics.windows r));
    print_metrics ~json result
  in
  let events_in =
    let doc =
      "Replay the branch-event log at $(docv) instead of the live interpreter.  The \
       log's benchmark shape and seed must match this invocation; with matching params, \
       policy and budget the metrics are byte-identical to the recorded live run."
    in
    Arg.(required & opt (some string) None & info [ "events-in" ] ~docv:"FILE" ~doc)
  in
  let man =
    [
      `S Manpage.s_exit_status;
      `P "0 on success; 2 on an unknown benchmark, policy or fault profile;";
      `P "3 when --check finds an invariant violation;";
      `P "4 on an I/O error reading the event log;";
      `P "5 when the event log is corrupt (bad magic, checksum or framing damage) or \
          names a different run (benchmark shape or seed mismatch).";
    ]
  in
  Cmd.v
    (Cmd.info "replay" ~man
       ~doc:
         "Re-run the selection/cache engine over a recorded branch-event stream; stdout \
          is byte-identical to the live run that recorded it")
    Term.(
      const run $ bench_arg $ policy_arg $ steps_arg $ seed_arg $ faults_arg $ check_arg
      $ events_in $ metrics_out_arg $ metrics_window_arg $ status_arg $ json_arg)

let regions_cmd =
  let run bench policy steps seed limit =
    let result = simulate (lookup_bench bench) (lookup_policy policy) steps seed in
    let regions = Code_cache.regions result.Simulator.ctx.Context.cache in
    let regions =
      match limit with
      | Some n -> List.filteri (fun i _ -> i < n) regions
      | None -> regions
    in
    List.iter
      (fun (r : Region.t) ->
        Format.printf "%a@.  entries=%d cycles=%d exits=%d insts_exec=%d@.@." Region.pp r
          r.Region.entries r.Region.cycle_iters r.Region.exits r.Region.insts_executed)
      regions
  in
  let limit =
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc:"Print only N regions.")
  in
  Cmd.v
    (Cmd.info "regions" ~doc:"Dump the regions a policy selected for a benchmark")
    Term.(const run $ bench_arg $ policy_arg $ steps_arg $ seed_arg $ limit)

let profile_cmd =
  let run bench policy steps seed limit =
    let result = simulate (lookup_bench bench) (lookup_policy policy) steps seed in
    let profiles = Regionsel_metrics.Region_profile.of_result result in
    let profiles =
      match limit with Some n -> List.filteri (fun i _ -> i < n) profiles | None -> profiles
    in
    List.iter
      (fun p -> Format.printf "%a@.@." Regionsel_metrics.Region_profile.pp p)
      profiles
  in
  let limit =
    Arg.(
      value & opt (some int) (Some 10)
      & info [ "limit" ] ~docv:"N" ~doc:"Print only the N hottest regions (default 10).")
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Per-region execution profiles, hottest first")
    Term.(const run $ bench_arg $ policy_arg $ steps_arg $ seed_arg $ limit)

let disas_cmd =
  let run bench policy steps seed limit =
    let result = simulate (lookup_bench bench) (lookup_policy policy) steps seed in
    let regions = Code_cache.regions result.Simulator.ctx.Context.cache in
    let regions =
      match limit with Some n -> List.filteri (fun i _ -> i < n) regions | None -> regions
    in
    List.iter
      (fun r -> Format.printf "%a@.@." Regionsel_engine.Emitter.pp (Regionsel_engine.Emitter.emit r))
      regions
  in
  let limit =
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc:"Print only N regions.")
  in
  Cmd.v
    (Cmd.info "disas" ~doc:"Emit and disassemble the code-cache contents of a run")
    Term.(const run $ bench_arg $ policy_arg $ steps_arg $ seed_arg $ limit)

let matrix_cmd =
  let run bench steps seed faults check metrics_out metrics_window status =
    with_error_reporting @@ fun () ->
    let params = params_of_faults faults in
    let spec = lookup_bench bench in
    (* One recorder per policy run, created and sampled inside its worker
       domain, read back on the main domain after the joins; results come
       back in submission order, so the combined export is deterministic
       (status lines from concurrent runs may interleave on stderr). *)
    let rows =
      parallel_map_specs
        (fun spec (name, policy) ->
          let recorder =
            metrics_recorder ~bench ~policy:name ~params metrics_out metrics_window status
          in
          let result =
            simulate ~check ~params
              ?on_window:(Option.map Metrics.hook recorder)
              spec policy steps seed
          in
          let m = Run_metrics.of_result result in
          let windows =
            match recorder with
            | None -> []
            | Some r ->
              Metrics.finalize r result;
              Metrics.windows r
          in
          ( windows,
            [
            name;
            string_of_int m.Run_metrics.n_regions;
            Table.fmt_pct m.Run_metrics.hit_rate;
            string_of_int m.Run_metrics.code_expansion;
            string_of_int m.Run_metrics.n_stubs;
            string_of_int m.Run_metrics.region_transitions;
            Table.fmt_pct m.Run_metrics.spanned_cycle_ratio;
            Table.fmt_pct m.Run_metrics.executed_cycle_ratio;
            string_of_int m.Run_metrics.cover_90;
            string_of_int m.Run_metrics.counters_high_water;
            Table.fmt_pct m.Run_metrics.exit_dominated_fraction;
            Table.fmt_pct m.Run_metrics.icache_miss_rate;
          ] ))
        (List.map (fun p -> spec, p) Policies.all)
    in
    export_metrics metrics_out (List.concat_map fst rows);
    Table.print
      ~header:
        [
          "policy"; "regions"; "hit"; "expansion"; "stubs"; "transitions"; "cyclic";
          "exec-cyc"; "cover90"; "counters"; "exit-dom"; "icache-miss";
        ]
      (List.map snd rows)
  in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Run one benchmark under every policy")
    Term.(
      const run $ bench_arg $ steps_arg $ seed_arg $ faults_arg $ check_arg
      $ metrics_out_arg $ metrics_window_arg $ status_arg)

let domination_cmd =
  let run bench policy steps seed =
    let result = simulate (lookup_bench bench) (lookup_policy policy) steps seed in
    let module Exit_domination = Regionsel_metrics.Exit_domination in
    let module Edge_profile = Regionsel_engine.Edge_profile in
    let regions = Code_cache.regions result.Simulator.ctx.Context.cache in
    let summary =
      Exit_domination.analyze ~regions ~preds:(Edge_profile.preds result.Simulator.edges)
    in
    List.iter
      (fun (v : Exit_domination.verdict) ->
        Printf.printf "region #%d (entry %s, %d insts) dominated by #%d (entry %s); dup=%d\n"
          v.Exit_domination.dominated.Region.id
          (Regionsel_isa.Addr.to_string v.Exit_domination.dominated.Region.entry)
          v.Exit_domination.dominated.Region.copied_insts v.Exit_domination.dominator.Region.id
          (Regionsel_isa.Addr.to_string v.Exit_domination.dominator.Region.entry)
          v.Exit_domination.dup_insts)
      summary.Exit_domination.verdicts;
    Printf.printf "dominated %d / %d regions; duplicated %d insts\n"
      summary.Exit_domination.n_dominated summary.Exit_domination.n_regions
      summary.Exit_domination.dup_insts
  in
  Cmd.v
    (Cmd.info "domination" ~doc:"Show the exit-domination verdicts for a run")
    Term.(const run $ bench_arg $ policy_arg $ steps_arg $ seed_arg)

let suite_cmd =
  let run steps seed =
    let module Aggregate = Regionsel_metrics.Aggregate in
    let policies = [ "net"; "lei"; "combined-net"; "combined-lei" ] in
    let tasks =
      List.concat_map
        (fun (spec : Spec.t) -> List.map (fun p -> spec, p) policies)
        Suite.all
    in
    let metrics =
      parallel_map_specs
        (fun spec p -> Run_metrics.of_result (simulate spec (lookup_policy p) steps seed))
        tasks
    in
    let rows =
      List.map2
        (fun (spec : Spec.t) ms ->
          let m p = List.assoc p (List.combine policies ms) in
          let net = m "net" and lei = m "lei" in
          let cnet = m "combined-net" and clei = m "combined-lei" in
          let r f a b = Table.fmt_float 2 (Aggregate.ratio_int (f a) (f b)) in
          [
            spec.Spec.name;
            Table.fmt_pct net.Run_metrics.hit_rate;
            Table.fmt_pct lei.Run_metrics.hit_rate;
            r (fun m -> m.Run_metrics.code_expansion) lei net;
            r (fun m -> m.Run_metrics.region_transitions) lei net;
            r (fun m -> m.Run_metrics.cover_90) lei net;
            r (fun m -> m.Run_metrics.counters_high_water) lei net;
            Table.fmt_pct lei.Run_metrics.spanned_cycle_ratio;
            Table.fmt_pct net.Run_metrics.spanned_cycle_ratio;
            r (fun m -> m.Run_metrics.region_transitions) cnet net;
            r (fun m -> m.Run_metrics.region_transitions) clei lei;
            r (fun m -> m.Run_metrics.cover_90) cnet net;
            r (fun m -> m.Run_metrics.cover_90) clei lei;
            Table.fmt_pct net.Run_metrics.exit_dominated_fraction;
            Table.fmt_pct lei.Run_metrics.exit_dominated_fraction;
          ])
        Suite.all
        (let n = List.length policies in
         List.init (List.length Suite.all) (fun i ->
             List.filteri (fun j _ -> j >= i * n && j < (i + 1) * n) metrics))
    in
    Table.print
      ~header:
        [
          "bench"; "hitN"; "hitL"; "exp L/N"; "tr L/N"; "cov L/N"; "ctr L/N"; "cycL"; "cycN";
          "tr cN/N"; "tr cL/L"; "cov cN/N"; "cov cL/L"; "domN"; "domL";
        ]
      rows
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Key LEI/NET and combination ratios across the whole suite")
    Term.(const run $ steps_arg $ seed_arg)

let sweep_cmd =
  let apply params name value =
    let module P = Regionsel_engine.Params in
    match name with
    | "net-threshold" -> { params with P.net_threshold = value }
    | "lei-threshold" -> { params with P.lei_threshold = value }
    | "lei-buffer" -> { params with P.lei_buffer_size = value }
    | "t-prof" -> { params with P.combine_t_prof = value }
    | "t-min" -> { params with P.combine_t_min = value }
    | "method-threshold" -> { params with P.method_threshold = value }
    | "cache-capacity" -> { params with P.cache_capacity_bytes = Some value }
    | other ->
      Printf.eprintf
        "unknown parameter %s (known: net-threshold lei-threshold lei-buffer t-prof t-min \
         method-threshold cache-capacity)\n"
        other;
      exit 2
  in
  let run bench policy steps seed param values =
    let spec = lookup_bench bench in
    let policy = lookup_policy policy in
    let rows =
      List.map
        (fun value ->
          let params = apply Regionsel_engine.Params.default param value in
          let image = Spec.image spec in
          let max_steps = Option.value ~default:spec.Spec.default_steps steps in
          let m =
            Run_metrics.of_result (Simulator.run ~seed ~params ~policy ~max_steps image)
          in
          [
            string_of_int value;
            Table.fmt_pct m.Run_metrics.hit_rate;
            string_of_int m.Run_metrics.n_regions;
            string_of_int m.Run_metrics.code_expansion;
            string_of_int m.Run_metrics.region_transitions;
            string_of_int m.Run_metrics.cover_90;
            string_of_int m.Run_metrics.counters_high_water;
          ])
        values
    in
    Table.print
      ~header:[ param; "hit"; "regions"; "expansion"; "transitions"; "cover90"; "counters" ]
      rows
  in
  let param =
    Arg.(
      required
      & opt (some string) None
      & info [ "param" ] ~docv:"NAME" ~doc:"Parameter to sweep (e.g. lei-buffer).")
  in
  let values =
    Arg.(
      non_empty & pos_all int []
      & info [] ~docv:"VALUES" ~doc:"Values to sweep over.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep one parameter for a benchmark and policy")
    Term.(const run $ bench_arg $ policy_arg $ steps_arg $ seed_arg $ param $ values)

let export_cmd =
  let run steps seed =
    (* CSV of every metric for every benchmark x policy pair, for external
       plotting. *)
    let cols =
      [
        "benchmark"; "policy"; "steps"; "total_insts"; "hit_rate"; "regions"; "expansion";
        "stubs"; "avg_region_insts"; "spanned_cycle_ratio"; "executed_cycle_ratio";
        "transitions"; "dispatches"; "cover90"; "counters_high_water";
        "observed_bytes_high_water"; "est_cache_bytes"; "exit_dominated_regions";
        "exit_dominated_fraction"; "exit_dominated_dup_insts"; "icache_miss_rate"; "evictions";
        "regenerations";
      ]
    in
    print_endline (String.concat "," cols);
    let tasks =
      List.concat_map
        (fun (spec : Spec.t) -> List.map (fun p -> spec, p) Policies.all)
        Suite.all
    in
    let rows =
      parallel_map_specs
        (fun spec (pname, policy) ->
          let m = Run_metrics.of_result (simulate spec policy steps seed) in
              [
                m.Run_metrics.benchmark; pname;
                string_of_int m.Run_metrics.steps;
                string_of_int m.Run_metrics.total_insts;
                Printf.sprintf "%.6f" m.Run_metrics.hit_rate;
                string_of_int m.Run_metrics.n_regions;
                string_of_int m.Run_metrics.code_expansion;
                string_of_int m.Run_metrics.n_stubs;
                Printf.sprintf "%.2f" m.Run_metrics.avg_region_insts;
                Printf.sprintf "%.6f" m.Run_metrics.spanned_cycle_ratio;
                Printf.sprintf "%.6f" m.Run_metrics.executed_cycle_ratio;
                string_of_int m.Run_metrics.region_transitions;
                string_of_int m.Run_metrics.dispatches;
                string_of_int m.Run_metrics.cover_90;
                string_of_int m.Run_metrics.counters_high_water;
                string_of_int m.Run_metrics.observed_bytes_high_water;
                string_of_int m.Run_metrics.est_cache_bytes;
                string_of_int m.Run_metrics.exit_dominated_regions;
                Printf.sprintf "%.6f" m.Run_metrics.exit_dominated_fraction;
                string_of_int m.Run_metrics.exit_dominated_dup_insts;
                Printf.sprintf "%.6f" m.Run_metrics.icache_miss_rate;
            string_of_int m.Run_metrics.evictions;
            string_of_int m.Run_metrics.regenerations;
          ])
        tasks
    in
    List.iter (fun row -> print_endline (String.concat "," row)) rows
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Emit a CSV of every metric for every benchmark x policy pair")
    Term.(const run $ steps_arg $ seed_arg)

let describe_cmd =
  let run bench =
    let module Characterize = Regionsel_workload.Characterize in
    match bench with
    | Some name ->
      Format.printf "%a@." Characterize.pp
        (Characterize.of_image (Spec.image (lookup_bench name)))
    | None ->
      Table.print ~header:Characterize.header
        (List.map
           (fun (s : Spec.t) -> Characterize.row (Characterize.of_image (Spec.image s)))
           Suite.all)
  in
  let bench_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "bench" ] ~docv:"NAME" ~doc:"Describe one benchmark (default: all).")
  in
  Cmd.v
    (Cmd.info "describe" ~doc:"Static control-flow characterization of the workloads")
    Term.(const run $ bench_opt)

let list_cmd =
  let run () =
    print_endline "benchmarks:";
    List.iter
      (fun (s : Spec.t) ->
        Printf.printf "  %-8s (default %d steps) %s\n" s.Spec.name s.Spec.default_steps
          s.Spec.description)
      Suite.all;
    print_endline "policies:";
    List.iter (fun (name, _) -> Printf.printf "  %s\n" name) Policies.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks and policies") Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "regionsel_sim" ~version:"1.0.0"
       ~doc:"Simulate region selection for dynamic optimization systems")
    [ run_cmd; record_cmd; replay_cmd; regions_cmd; profile_cmd; disas_cmd; matrix_cmd; domination_cmd; suite_cmd; sweep_cmd; export_cmd; describe_cmd; list_cmd ]

let () = exit (Cmd.eval main)
