lib/engine/gauges.ml:
