test/test_fuzz.ml: Array Fixtures Gen List Printf QCheck QCheck_alcotest Regionsel_core Regionsel_engine Regionsel_workload
