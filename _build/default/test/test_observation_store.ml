open Regionsel_isa
module Observation_store = Regionsel_core.Observation_store
module Compact_trace = Regionsel_core.Compact_trace
module Gauges = Regionsel_engine.Gauges
module Region = Regionsel_engine.Region
open Fixtures

let mk start size term = Block.make ~start ~size ~term

let trace_from start =
  let b0 = mk start 3 Terminator.Fallthrough in
  let b1 = mk (start + 3) 2 Terminator.Halt in
  Compact_trace.encode { Region.blocks = [ b0; b1 ]; final_next = None }

let record_and_take () =
  let gauges = Gauges.create () in
  let store = Observation_store.create gauges in
  let t1 = trace_from 0 and t2 = trace_from 0 and other = trace_from 100 in
  Observation_store.record store t1;
  Observation_store.record store t2;
  Observation_store.record store other;
  check_int "two for entry 0" 2 (Observation_store.count store 0);
  check_int "one for entry 100" 1 (Observation_store.count store 100);
  check_int "two entries total" 2 (Observation_store.n_entries store);
  let taken = Observation_store.take store 0 in
  check_int "both returned" 2 (List.length taken);
  check_int "returned in observation order" (Compact_trace.entry t1)
    (Compact_trace.entry (List.hd taken));
  check_int "entry cleared" 0 (Observation_store.count store 0);
  check_int "other entry untouched" 1 (Observation_store.count store 100)

let gauge_accounting () =
  let gauges = Gauges.create () in
  let store = Observation_store.create gauges in
  let t1 = trace_from 0 and t2 = trace_from 100 in
  Observation_store.record store t1;
  Observation_store.record store t2;
  let expected = Compact_trace.size_bytes t1 + Compact_trace.size_bytes t2 in
  check_int "gauge tracks stored bytes" expected (Gauges.observed_bytes gauges);
  check_int "store agrees" expected (Observation_store.total_bytes store);
  ignore (Observation_store.take store 0);
  check_int "bytes returned on take" (Compact_trace.size_bytes t2) (Gauges.observed_bytes gauges);
  check_int "high water remembers the peak" expected (Gauges.observed_bytes_high_water gauges)

let take_missing () =
  let store = Observation_store.create (Gauges.create ()) in
  check_true "taking an unknown entry yields nothing" (Observation_store.take store 7 = [])

let suite =
  [
    case "record and take" record_and_take;
    case "gauge accounting" gauge_accounting;
    case "take missing" take_missing;
  ]
