(* The daemon's wire protocol: a length-prefixed framing of the existing
   REVL event codec.

   Every frame is [u32 length | u8 kind | payload], length counting the
   kind byte.  Integers are big-endian, like every persisted artifact in
   this repo; 64-bit values ride as a high/low u32 pair (the event log's
   seed convention).  The one payload the protocol does not define itself
   is the Events body, which is exactly [Event_log.encode_batch] — the
   REVL bit packing plus its own CRC32, so corrupt event data is caught
   by the same checksum discipline as an on-disk recording.

   Anything malformed raises [Protocol_error] — a typed failure the
   server answers with a Reject frame, never a crash.  The fuzzer's
   [--frames] axis drives arbitrary garbage through [Dechunker] to pin
   that. *)

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let max_frame = 1 lsl 24
(* 16 MiB: comfortably above the largest Events batch a client sends
   (the CLI chunks at thousands of events, ~2 bytes each), small enough
   that a corrupt length prefix cannot make the daemon buffer gigabytes. *)

let max_string = 1 lsl 16

let max_text = max_frame - 16
(* Export replies (Data, Result) can be far larger than any identity
   string — a Prometheus snapshot over many tenants x 256 windows runs
   to megabytes — so they get the whole frame budget, not [max_string]. *)

type hello = {
  h_tenant : string;
  h_bench : string;
  h_policy : string;
  h_seed : int64;
  h_max_steps : int;
}

type reject_code =
  | Bad_frame  (** Malformed or out-of-sequence frame. *)
  | Unknown_bench
  | Unknown_policy
  | Tenants_saturated
  | Budget_saturated
  | Busy_tenant  (** The tenant is already attached to a live connection. *)
  | Corrupt_events  (** An Events batch failed its checksum or validation. *)

type msg =
  | Hello of hello
  | Events of bytes  (** A still-encoded [Event_log] batch body. *)
  | Fin
  | Ctrl of string
  | Welcome of { resume_step : int; session : string }
  | Reject of { code : reject_code; detail : string }
  | Result of string  (** [Run_metrics.to_json] of the finished tenant. *)
  | Data of string  (** A Ctrl command's reply body. *)

let reject_code_to_string = function
  | Bad_frame -> "bad-frame"
  | Unknown_bench -> "unknown-bench"
  | Unknown_policy -> "unknown-policy"
  | Tenants_saturated -> "tenants-saturated"
  | Budget_saturated -> "budget-saturated"
  | Busy_tenant -> "busy-tenant"
  | Corrupt_events -> "corrupt-events"

let reject_codes =
  [|
    Bad_frame; Unknown_bench; Unknown_policy; Tenants_saturated; Budget_saturated;
    Busy_tenant; Corrupt_events;
  |]

let code_of_reject c =
  let rec go i = if reject_codes.(i) == c then i else go (i + 1) in
  go 0

(* --- Encoding --------------------------------------------------------- *)

let bu32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let bu64 buf v =
  bu32 buf ((v asr 32) land 0x7FFFFFFF);
  bu32 buf (v land 0xFFFFFFFF)

let bseed buf seed =
  bu32 buf (Int64.to_int (Int64.shift_right_logical seed 32));
  bu32 buf (Int64.to_int (Int64.logand seed 0xFFFFFFFFL))

let bstring buf s =
  if String.length s > max_string then invalid_arg "Proto: string too long";
  bu32 buf (String.length s);
  Buffer.add_string buf s

let btext buf s =
  if String.length s > max_text then invalid_arg "Proto: text too long";
  bu32 buf (String.length s);
  Buffer.add_string buf s

let kind_of = function
  | Hello _ -> 1
  | Events _ -> 2
  | Fin -> 3
  | Ctrl _ -> 4
  | Welcome _ -> 10
  | Reject _ -> 11
  | Result _ -> 12
  | Data _ -> 13

let encode msg =
  let body = Buffer.create 64 in
  (match msg with
  | Hello h ->
    bstring body h.h_tenant;
    bstring body h.h_bench;
    bstring body h.h_policy;
    bseed body h.h_seed;
    bu64 body h.h_max_steps
  | Events b -> Buffer.add_bytes body b
  | Fin -> ()
  | Ctrl cmd -> bstring body cmd
  | Welcome { resume_step; session } ->
    bu64 body resume_step;
    bstring body session
  | Reject { code; detail } ->
    Buffer.add_char body (Char.chr (code_of_reject code));
    bstring body detail
  | Result json -> btext body json
  | Data text -> btext body text);
  let blen = Buffer.length body in
  if 1 + blen > max_frame then invalid_arg "Proto: frame too large";
  let out = Buffer.create (5 + blen) in
  bu32 out (1 + blen);
  Buffer.add_char out (Char.chr (kind_of msg));
  Buffer.add_buffer out body;
  Buffer.to_bytes out

(* --- Decoding --------------------------------------------------------- *)

(* A cursor over one frame body; every read is bounds-checked so a short
   or padded payload is a typed error. *)
type cursor = { c_bytes : Bytes.t; c_end : int; mutable c_pos : int }

let need cur n what = if cur.c_pos + n > cur.c_end then fail "truncated %s" what

let ru8 cur what =
  need cur 1 what;
  let v = Char.code (Bytes.get cur.c_bytes cur.c_pos) in
  cur.c_pos <- cur.c_pos + 1;
  v

let ru32 cur what =
  need cur 4 what;
  let p = cur.c_pos in
  let b = cur.c_bytes in
  cur.c_pos <- p + 4;
  (Char.code (Bytes.get b p) lsl 24)
  lor (Char.code (Bytes.get b (p + 1)) lsl 16)
  lor (Char.code (Bytes.get b (p + 2)) lsl 8)
  lor Char.code (Bytes.get b (p + 3))

(* [bu64] masks the high word to 0x7FFFFFFF and a legitimate OCaml int
   never has hi >= 0x40000000 (63-bit ints: v asr 32 <= 0x3FFFFFFF), so
   anything above is a crafted frame — on decode it would drop bit 31
   and land bit 30 in the sign bit, yielding wrapped or negative values.
   Reject it instead. *)
let ru64 cur what =
  let hi = ru32 cur what in
  let lo = ru32 cur what in
  if hi >= 0x40000000 then fail "%s value out of range (hi word 0x%08X)" what hi;
  (hi lsl 32) lor lo

let rseed cur what =
  let hi = ru32 cur what in
  let lo = ru32 cur what in
  Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

let rbounded cur what ~limit =
  let n = ru32 cur what in
  if n > limit then fail "%s string longer than %d bytes" what limit;
  need cur n what;
  let s = Bytes.sub_string cur.c_bytes cur.c_pos n in
  cur.c_pos <- cur.c_pos + n;
  s

let rstring cur what = rbounded cur what ~limit:max_string
let rtext cur what = rbounded cur what ~limit:max_text

let finished cur what =
  if cur.c_pos <> cur.c_end then fail "%s frame has %d trailing bytes" what (cur.c_end - cur.c_pos)

(* Decode one frame body ([kind | payload], the length prefix already
   stripped and validated by the dechunker or [read_msg]). *)
let decode_frame bytes ~pos ~len =
  if len < 1 then fail "empty frame";
  let cur = { c_bytes = bytes; c_end = pos + len; c_pos = pos } in
  let kind = ru8 cur "kind" in
  let msg =
    match kind with
    | 1 ->
      let h_tenant = rstring cur "hello tenant" in
      let h_bench = rstring cur "hello bench" in
      let h_policy = rstring cur "hello policy" in
      let h_seed = rseed cur "hello seed" in
      let h_max_steps = ru64 cur "hello max_steps" in
      if h_max_steps < 0 then fail "negative max_steps";
      if h_tenant = "" then fail "empty tenant name";
      Hello { h_tenant; h_bench; h_policy; h_seed; h_max_steps }
    | 2 -> Events (Bytes.sub bytes cur.c_pos (cur.c_end - cur.c_pos))
    | 3 -> Fin
    | 4 -> Ctrl (rstring cur "ctrl command")
    | 10 ->
      let resume_step = ru64 cur "welcome resume_step" in
      if resume_step < 0 then fail "negative resume_step";
      let session = rstring cur "welcome session" in
      Welcome { resume_step; session }
    | 11 ->
      let c = ru8 cur "reject code" in
      if c >= Array.length reject_codes then fail "unknown reject code %d" c;
      let detail = rstring cur "reject detail" in
      Reject { code = reject_codes.(c); detail }
    | 12 -> Result (rtext cur "result json")
    | 13 -> Data (rtext cur "data body")
    | k -> fail "unknown frame kind %d" k
  in
  (match msg with Events _ -> () | _ -> finished cur "frame");
  msg

(* --- Incremental dechunking ------------------------------------------- *)

(* The server's per-connection parser: bytes arrive in whatever chunks
   the socket delivers; frames come out only when complete.  A peer that
   stalls mid-frame stalls only its own dechunker — the event loop never
   blocks on a partial frame. *)
module Dechunker = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }
  let pending t = t.len

  let feed t bytes ~pos ~len =
    if len < 0 || pos < 0 || pos + len > Bytes.length bytes then
      invalid_arg "Dechunker.feed: range outside the buffer";
    let need = t.len + len in
    if need > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while need > !cap do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    Bytes.blit bytes pos t.buf t.len len;
    t.len <- need

  let frame_len t =
    (Char.code (Bytes.get t.buf 0) lsl 24)
    lor (Char.code (Bytes.get t.buf 1) lsl 16)
    lor (Char.code (Bytes.get t.buf 2) lsl 8)
    lor Char.code (Bytes.get t.buf 3)

  let next t =
    if t.len < 4 then None
    else begin
      let flen = frame_len t in
      if flen < 1 || flen > max_frame then fail "frame length %d out of bounds" flen;
      if t.len < 4 + flen then None
      else begin
        let msg = decode_frame t.buf ~pos:4 ~len:flen in
        let rest = t.len - (4 + flen) in
        if rest > 0 then Bytes.blit t.buf (4 + flen) t.buf 0 rest;
        t.len <- rest;
        Some msg
      end
    end
end

(* --- Blocking fd transport (client side, tests) ----------------------- *)

module Io = Regionsel_persist.Io

let write_msg fd msg =
  let data = encode msg in
  Io.write_all fd data ~pos:0 ~len:(Bytes.length data)

let read_msg fd =
  let hdr = Bytes.create 4 in
  match Io.read fd hdr ~pos:0 ~len:4 with
  | 0 -> None
  | n ->
    if not (if n < 4 then Io.really_read fd hdr ~pos:n ~len:(4 - n) else true) then
      fail "stream ended inside a frame header";
    let flen =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    if flen < 1 || flen > max_frame then fail "frame length %d out of bounds" flen;
    let body = Bytes.create flen in
    if not (Io.really_read fd body ~pos:0 ~len:flen) then fail "stream ended inside a frame";
    Some (decode_frame body ~pos:0 ~len:flen)
