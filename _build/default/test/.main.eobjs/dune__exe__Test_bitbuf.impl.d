test/test_bitbuf.ml: Alcotest Bytes Char Fixtures Gen List QCheck QCheck_alcotest Regionsel_core
