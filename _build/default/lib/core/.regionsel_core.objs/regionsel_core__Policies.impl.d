lib/core/policies.ml: Boa Combined_lei Combined_net Lei List Method_regions Mojo Net Regionsel_engine
