lib/report/barchart.ml: Array Buffer Float List Printf String
