lib/isa/block.mli: Addr Format Terminator
