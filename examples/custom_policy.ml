(* Writing your own region-selection policy against the public API.

   This example implements "eager blocks": the simplest imaginable policy —
   profile every taken-branch target and, at a small threshold, select just
   that one block as a region.  It is deliberately naive (no paths, no
   cycles), and running it against NET and LEI on the same workload shows
   on every metric why the paper's path-based selection matters. *)

open Regionsel_isa
module Policy = Regionsel_engine.Policy
module Context = Regionsel_engine.Context
module Region = Regionsel_engine.Region
module Code_cache = Regionsel_engine.Code_cache
module Counters = Regionsel_engine.Counters
module Simulator = Regionsel_engine.Simulator
module Run_metrics = Regionsel_metrics.Run_metrics
module Suite = Regionsel_workload.Suite
module Spec = Regionsel_workload.Spec
module Policies = Regionsel_core.Policies
module Table = Regionsel_report.Table

module Eager_blocks : Policy.S = struct
  type t = { ctx : Context.t; threshold : int }

  let name = "eager-blocks"
  let create ctx = { ctx; threshold = 20 }

  (* Select the single block at [tgt], closing the trivial self-loop if the
     block branches to itself. *)
  let single_block_region t tgt =
    let block = Program.block_at_exn t.ctx.Context.program tgt in
    let final_next =
      match block.Block.term with
      | Terminator.Cond target | Terminator.Jump target -> Some target
      | _ -> None
    in
    Region.spec_of_path ~kind:Region.Trace { Region.blocks = [ block ]; final_next }

  let handle t = function
    | Policy.Interp_block ib ->
      let tgt = ib.Policy.next in
      if
        ib.Policy.taken
        && (not (Addr.is_none tgt))
        && not (Code_cache.mem t.ctx.Context.cache tgt)
      then begin
        let count = Counters.incr t.ctx.Context.counters tgt in
        if count >= t.threshold then begin
          Counters.release t.ctx.Context.counters tgt;
          Policy.Install [ single_block_region t tgt ]
        end
        else Policy.No_action
      end
      else Policy.No_action
    | Policy.Cache_exited _ -> Policy.No_action
    | Policy.Region_invalidated { entry } ->
      Counters.release t.ctx.Context.counters entry;
      Policy.No_action

  (* The threshold is fixed and the counter pool lives in the shared
     context, so a checkpoint carries no policy-private state. *)
  let save _ _ = ()
  let load ctx _ = create ctx
end

let eager : (module Policy.S) = (module Eager_blocks)

let () =
  print_endline
    "A custom policy (single-block regions) vs NET and LEI on the twolf workload:\n";
  let spec = Option.get (Suite.find "twolf") in
  let rows =
    List.map
      (fun (name, policy) ->
        let result = Simulator.run ~seed:1L ~policy ~max_steps:300_000 (Spec.image spec) in
        let m = Run_metrics.of_result result in
        [
          name;
          Table.fmt_pct m.Run_metrics.hit_rate;
          string_of_int m.Run_metrics.n_regions;
          Table.fmt_float 1 m.Run_metrics.avg_region_insts;
          string_of_int m.Run_metrics.region_transitions;
          string_of_int m.Run_metrics.cover_90;
          Table.fmt_pct m.Run_metrics.icache_miss_rate;
        ])
      [ "eager-blocks", eager; "net", Policies.net; "lei", Policies.lei ]
  in
  Table.print
    ~header:[ "policy"; "hit"; "regions"; "avg insts"; "transitions"; "cover90"; "icache miss" ]
    rows;
  print_endline
    "\nOne-block regions exit on every control transfer, so most execution never stays in\n\
     the cache (the hit rate collapses) and covering 90% of execution takes several times\n\
     more regions.  Closing that gap is exactly what path-based (NET) and cycle-based (LEI)\n\
     selection are for."
