module Region = Regionsel_engine.Region

type t = { size : int; achievable : bool; covered_insts : int }

let compute ~x ~total_insts regions =
  if not (x > 0.0 && x <= 1.0) then invalid_arg "Cover.compute: x must be in (0, 1]";
  let target = int_of_float (ceil (x *. float_of_int total_insts)) in
  let by_execution =
    List.sort
      (fun (a : Region.t) (b : Region.t) -> compare b.Region.insts_executed a.Region.insts_executed)
      regions
  in
  let rec pick n covered = function
    | _ when covered >= target -> { size = n; achievable = true; covered_insts = covered }
    | [] -> { size = n; achievable = covered >= target; covered_insts = covered }
    | (r : Region.t) :: rest -> pick (n + 1) (covered + r.Region.insts_executed) rest
  in
  pick 0 0 by_execution
