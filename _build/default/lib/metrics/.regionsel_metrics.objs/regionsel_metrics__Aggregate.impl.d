lib/metrics/aggregate.ml: List Printf
