(** Windowed metrics: per-run (and per-tenant) time-series sampled from
    the engine's frozen counters, with Prometheus and JSONL exporters, a
    live status line, and a crash flight recorder.

    A {!recorder} carries a static label set and closes one {!window} per
    {!sample}: the {!Stats.diff} activity since the previous sample plus
    cache/gauge occupancy at the sample point, derived into a fixed series
    list (cached share, steps per region transition, install / reject /
    evict / quota-reject rates, blacklist occupancy, bailout windows), and
    — when the run carries a telemetry sink — cumulative p50/p90/p99
    summaries over the telemetry log2 histograms (residency, trace length,
    time to first link).

    Determinism contract: sampling reads counters and mutates nothing
    simulated (the parity suite pins that a metered run's [Run_metrics]
    are identical to an unmetered one); exports use no wall clock, a fixed
    series order and fixed number formatting, so a fixed seed yields
    byte-identical output across reruns — and, for {!Fleet} sampling at
    multi-stream barriers, across domain counts. *)

module Stats = Regionsel_engine.Stats
module Context = Regionsel_engine.Context
module Simulator = Regionsel_engine.Simulator

val default_window : int
(** 4096 steps — the multi-stream default batch, and the window the bench
    overhead gate measures. *)

type value = Int of int | Float of float

type window = {
  w_labels : (string * string) list;  (** The recorder's static labels. *)
  w_index : int;  (** 0-based window sequence number within its recorder. *)
  w_start_step : int;  (** Step count at the previous sample (inclusive). *)
  w_end_step : int;  (** Step count at this sample. *)
  w_values : (string * value) list;  (** Series values, fixed order. *)
}

type recorder

val create :
  ?window:int ->
  ?keep:int ->
  ?notify:(window -> unit) ->
  labels:(string * string) list ->
  unit ->
  recorder
(** A fresh recorder with a zero baseline.  [window] (default
    {!default_window}) is the boundary period used by {!hook}; explicit
    {!sample} calls (barrier sampling) ignore it.  [keep] bounds retention
    to the newest [keep] windows — flight-recorder mode; the default
    retains everything.  [notify] fires on every closed window (the
    [--status] reporter).
    @raise Invalid_argument on a non-positive [window] or [keep]. *)

val labels : recorder -> (string * string) list
val window_size : recorder -> int

val n_windows : recorder -> int
(** Total windows sampled, including any dropped by [keep]. *)

val windows : recorder -> window list
(** Retained windows, oldest first. *)

val last_windows : recorder -> int -> window list
(** The newest [k] retained windows, oldest first. *)

val sample : recorder -> step:int -> stats:Stats.t -> ctx:Context.t -> unit
(** Close one window against the live counters.  Matches the signature of
    {!Simulator.sample}'s callback, so barrier sampling is
    [Simulator.sample sim (Metrics.sample r)]. *)

val hook : recorder -> Simulator.window_hook
(** The recorder as a simulator window hook: samples every
    [window_size r] steps at absolute step boundaries. *)

val finalize : recorder -> Simulator.result -> unit
(** Close the final partial window, if the run ended past the last
    boundary; a run ending exactly on a boundary adds nothing. *)

(** {1 Exporters} *)

val to_jsonl : window list -> string
(** Append-only JSONL time-series: one record per window per series —
    [{"series":…,"labels":{…},"window":…,"start_step":…,"end_step":…,
    "value":…}] — byte-deterministic for a fixed seed. *)

val output_jsonl : out_channel -> window list -> unit
val write_jsonl : path:string -> window list -> unit

val to_prometheus : window list -> string
(** Scrape-ready text exposition: the newest window of each label set
    (first-seen order), one [# HELP]/[# TYPE] block per series, plus a
    [regionsel_windows_total] counter per label set.  Never emits
    duplicate series (one window per label set, one value per name). *)

val write_prometheus : path:string -> window list -> unit

val status_line : window -> string
(** One-line human summary of a window, for the [--status] stderr
    reporter (no trailing newline). *)

(** {1 Flight recorder} *)

val default_flight_keep : int
(** 16 windows — the default crash-history depth. *)

val flight_dump :
  path:string -> cli:string -> ?detail:string -> window list -> int
(** Dump a crash flight record: a JSONL header line carrying the
    reproducer CLI line and failure detail, followed by the window
    records.  Returns the number of windows written. *)

(** {1 Multi-stream fleets} *)

module Fleet : sig
  (** Per-tenant recorders plus a fleet aggregate, driven by the
      {!Multi_stream.run} [on_barrier] hook: each barrier closes one
      window per participating tenant (in submission order) and one
      aggregate window summing their deltas (gauges sum to fleet
      occupancy; quantile series stay per-tenant).  Byte-identical output
      whatever the domain count. *)

  type t

  val create :
    ?keep:int ->
    ?notify:(window -> unit) ->
    ?aggregate_labels:(string * string) list ->
    (string * (string * string) list) list ->
    t
  (** [create tenants] takes [(tenant name, static labels)] in submission
      order.  [aggregate_labels] defaults to [[("tenant", "fleet")]]. *)

  val on_barrier : t -> round:int -> (string * Simulator.t) array -> unit
  (** Pass as {!Multi_stream.run}'s [on_barrier]. *)

  val tenant_windows : t -> (string * window list) list
  val aggregate_windows : t -> window list

  val all_windows : t -> window list
  (** Every tenant's windows in submission order, then the aggregate. *)
end
