(* Tests for the code emitter: the emitted image must agree with the
   abstract region (instruction counts, stub counts, the byte-cost model
   and the layout) on every region any policy selects. *)

open Regionsel_isa
module Emitter = Regionsel_engine.Emitter
module Region = Regionsel_engine.Region
module Policies = Regionsel_core.Policies
open Fixtures

let mk start size term = Block.make ~start ~size ~term

let emit_path ?(kind = Region.Trace) blocks final_next =
  let spec = Region.spec_of_path ~kind { Region.blocks; final_next } in
  Emitter.emit (Region.of_spec ~id:0 ~selected_at:0 spec)

let simple_cycle () =
  let e =
    emit_path [ mk 0 3 (Terminator.Cond 100); mk 3 2 (Terminator.Cond 0) ] (Some 0)
  in
  check_int "five instructions" 5 (Array.length e.Emitter.body);
  check_int "two stubs" 2 (Array.length e.Emitter.stubs);
  check_int "bytes match the cost model" (Region.cache_bytes e.Emitter.region)
    (Emitter.total_bytes e);
  (* The back edge must be internal to offset 0. *)
  match e.Emitter.body.(4) with
  | Emitter.Rewritten { taken = Some (Emitter.Internal 0); _ } -> ()
  | _ -> Alcotest.fail "cycle branch should be rewritten to the region top"

let stub_targets_recorded () =
  let e =
    emit_path [ mk 0 3 (Terminator.Cond 100); mk 3 2 (Terminator.Cond 0) ] (Some 0)
  in
  let targets =
    Array.to_list e.Emitter.stubs
    |> List.filter_map (fun s -> s.Emitter.exit_target)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "stub exits are the off-region directions" [ 5; 100 ] targets

let indirect_stub_has_no_static_target () =
  let e = emit_path [ mk 0 2 Terminator.Return ] None in
  check_int "one stub" 1 (Array.length e.Emitter.stubs);
  check_true "no static target" ((e.Emitter.stubs.(0)).Emitter.exit_target = None)

let copied_instructions_enumerated () =
  let e = emit_path [ mk 10 4 Terminator.Return ] None in
  let copied =
    Array.to_list e.Emitter.body
    |> List.filter_map (function Emitter.Copied { orig } -> Some orig | _ -> None)
  in
  Alcotest.(check (list int)) "straight-line prefix copied" [ 10; 11; 12 ] copied

let agreement_on_real_regions () =
  (* Every region selected by every policy on the scenario programs must
     emit consistently. *)
  List.iter
    (fun (_, policy) ->
      List.iter
        (fun image ->
          let result = run ~max_steps:60_000 policy image in
          List.iter
            (fun r ->
              let e = Emitter.emit r in
              check_int "instruction count matches expansion" r.Region.copied_insts
                (Array.length e.Emitter.body);
              check_int "byte size matches the cost model" (Region.cache_bytes r)
                (Emitter.total_bytes e);
              (* Internal operands stay inside the body; stub indices are
                 dense. *)
              Array.iter
                (fun inst ->
                  match inst with
                  | Emitter.Copied _ -> ()
                  | Emitter.Rewritten { taken; fall; _ } ->
                    List.iter
                      (function
                        | Some (Emitter.Internal off) ->
                          check_true "internal offset within body"
                            (off >= 0 && off < Emitter.body_bytes e)
                        | Some (Emitter.Stub i) ->
                          check_true "stub index dense"
                            (i >= 0 && i < Array.length e.Emitter.stubs)
                        | None -> ())
                      [ taken; fall ])
                e.Emitter.body)
            (regions_of result))
        [ figure2 (); figure3 (); figure4 () ])
    Policies.all

let pp_smoke () =
  let e =
    emit_path [ mk 0 3 (Terminator.Cond 100); mk 3 2 (Terminator.Cond 0) ] (Some 0)
  in
  let rendered = Format.asprintf "%a" Emitter.pp e in
  check_true "listing mentions stubs" (contains ~sub:"stub0" rendered);
  check_true "listing mentions offsets" (contains ~sub:"+0000" rendered)

let suite =
  [
    case "simple cycle" simple_cycle;
    case "stub targets recorded" stub_targets_recorded;
    case "indirect stub has no static target" indirect_stub_has_no_static_target;
    case "copied instructions enumerated" copied_instructions_enumerated;
    case "agreement on real regions (all policies)" agreement_on_real_regions;
    case "pp smoke" pp_smoke;
  ]
