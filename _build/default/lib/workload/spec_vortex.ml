(* 255.vortex: an object-oriented database.  Transactions take one of many
   moderately likely paths from the same entry — an 8-way dispatch inside
   the hot loop plus near-unbiased validation diamonds — so each block
   appears in only a few of the T_prof observed traces.  Combination then
   keeps only fragments (the T_min filter), which is how the paper explains
   vortex's region transitions rising ~1% under combined NET. *)

let build () =
  let b = Builder.create () in
  Patterns.leaf b ~name:"mem_get" ~size:6;
  Patterns.dispatch_loop b ~name:"transaction" ~trip:500
    ~cases:[ 5, 1.0; 6, 1.0; 4, 1.0; 7, 1.0; 5, 1.0; 6, 1.0; 4, 1.0; 8, 1.0 ];
  Patterns.diamond_loop b ~name:"validate" ~trip:80
    ~diamonds:
      [ { Patterns.bias = 0.85; side_size = 5 }; { Patterns.bias = 0.9; side_size = 4 } ];
  Patterns.composite_loop b ~name:"index_scan" ~trip:200
    ~body:
      [
        Patterns.Straight 4;
        Patterns.Call_to "mem_get";
        Patterns.Straight 5;
        Patterns.Continue 0.15;
      ];
  Patterns.cold_farm b ~name:"obj_pool" ~n:12 ~body_size:5;
  Patterns.driver b ~name:"main"
      ~weights:[ "obj_pool", 0.1 ]
    [ "transaction"; "validate"; "index_scan"; "obj_pool" ];
  Builder.compile b ~name:"vortex" ~entry:"main"

let spec =
  Spec.make ~name:"vortex"
    ~description:
      "255.vortex stand-in: 8-way uniform transaction dispatch and near-unbiased \
       validation; path diversity defeats the T_min filter (combined-NET outlier)"
    ~steps:900_000 build
