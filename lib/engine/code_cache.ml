open Regionsel_isa
module Telemetry = Regionsel_telemetry.Telemetry

type reject = Duplicate_entry | Blacklisted | Translation_failed | Quota_exceeded

let reject_to_string = function
  | Duplicate_entry -> "duplicate-entry"
  | Blacklisted -> "blacklisted"
  | Translation_failed -> "translation-failed"
  | Quota_exceeded -> "quota-exceeded"

type blacklist_entry = {
  mutable fails : int;
  mutable until : int;
  mutable expire_traced : bool;
      (* Cooldowns expire passively (by step comparison), so expiry has no
         natural code point; the first install probe that finds the
         cooldown over emits one blacklist-expire telemetry event and sets
         this flag.  Pure observation: never read by the blacklist logic. *)
}

type t = {
  by_entry : Region.t Int_tbl.t;
  by_aux_entry : Region.t Int_tbl.t;
  mutable fifo : Region.t Queue.t;
      (* Install order.  Retired regions are left in place as tombstones and
         skipped lazily, so eviction pops each element at most once:
         [make_room] under [Evict_oldest] is O(evicted) amortized.
         Invalidation retires without popping, so [fifo_tombstones] counts
         the dead elements and the queue is compacted (live entries only,
         order preserved) once tombstones outnumber live regions —
         otherwise an unbounded cache under an SMC/shock-heavy schedule
         accumulates every region it ever retired. *)
  mutable fifo_tombstones : int;
  mutable retired : Region.t list;
  mutable next_id : int;
  mutable bytes_used : int;
  mutable alloc_cursor : int;
      (* Bump allocator for region placement; holes left by eviction are not
         reused, as in cache managers that only reclaim on flush. *)
  capacity_bytes : int option;
  mutable quota_bytes : int option;
      (* Scheduler-imposed byte quota (per-tenant share of a global budget),
         tightening [capacity_bytes] at runtime.  Not part of snapshots:
         whoever imposed it re-imposes it after a restore. *)
  mutable quota_rejects : int;
  mutable quota_evictions : int;
  eviction : Params.eviction;
  evicted_entries : unit Int_tbl.t;
  program : Program.t option;
  dispatch : Region.t option array;
      (* block_id -> live region claiming that block as entry or aux entry.
         Present only when [create] was given the program; mirrors
         by_entry/by_aux_entry exactly so the simulator's per-transition
         probe is one array read instead of up to two hash probes. *)
  incoming_links : (Region.t * int) list Int_tbl.t;
      (* target region id -> (source region, slot) pairs whose exit stub is
         patched to jump to the target, so retiring a region severs every
         link into it in O(links).  Entries are cleaned lazily: a recorded
         pair whose slot no longer points at the target is ignored. *)
  slot_links : Region.t list Int_tbl.t;
      (* block id -> source regions holding a live link through that slot,
         so an install that (re)claims the block id can sever links that
         would otherwise disagree with the dispatch array. *)
  mutable links_created : int;
  mutable link_severs : int;
  mutable live_links : int;
  blacklist : blacklist_entry Int_tbl.t;
  blacklist_base_cooldown : int;
  blacklist_max_shift : int;
  mutable fail_installs_until : int;
      (* While [now <= fail_installs_until] the translator is flaky and
         every install fails. *)
  mutable now : int;
  mutable clock_regressions : int;
      (* Times [set_now] was handed a step earlier than [now] (clamped, not
         applied).  The simulator's stamps are monotone by construction, so
         a nonzero count means a caller replayed a stale step — surfaced as
         a sanitizer rule under [--check]. *)
  mutable evictions : int;
  mutable flushes : int;
  mutable regenerations : int;
  mutable invalidations : int;
  mutable blacklist_hits : int;
  mutable duplicate_installs : int;
  mutable translation_failures : int;
  telemetry : Telemetry.sink;
      (* Lifecycle-event sink (no-op by default).  Events are stamped with
         [now], which the simulator advances via [set_now] before installs
         and fault deliveries. *)
  mutable auditor : (string -> unit) option;
      (* Sanitizer hook: called with the operation name after every
         mutating operation (install, evict, flush, invalidate, shock,
         add_link) and on a clock regression.  [None] (the default) costs
         one compare per mutation; no cache decision ever depends on it. *)
}

let create ?capacity_bytes ?(eviction = Params.Flush_all)
    ?(blacklist_base_cooldown = Params.default.Params.blacklist_base_cooldown)
    ?(blacklist_max_shift = Params.default.Params.blacklist_max_shift)
    ?(telemetry = Telemetry.none) ?program () =
  {
    by_entry = Int_tbl.create 256;
    by_aux_entry = Int_tbl.create 64;
    fifo = Queue.create ();
    fifo_tombstones = 0;
    retired = [];
    next_id = 0;
    bytes_used = 0;
    alloc_cursor = 0;
    capacity_bytes;
    quota_bytes = None;
    quota_rejects = 0;
    quota_evictions = 0;
    eviction;
    evicted_entries = Int_tbl.create 64;
    program;
    dispatch =
      (match program with
      | Some p -> Array.make (max 1 (Program.n_blocks p)) None
      | None -> [||]);
    incoming_links = Int_tbl.create 64;
    slot_links = Int_tbl.create 64;
    links_created = 0;
    link_severs = 0;
    live_links = 0;
    blacklist = Int_tbl.create 16;
    blacklist_base_cooldown;
    blacklist_max_shift;
    fail_installs_until = -1;
    now = 0;
    clock_regressions = 0;
    evictions = 0;
    flushes = 0;
    regenerations = 0;
    invalidations = 0;
    blacklist_hits = 0;
    duplicate_installs = 0;
    translation_failures = 0;
    telemetry;
    auditor = None;
  }

let set_auditor t f = t.auditor <- Some f
let clear_auditor t = t.auditor <- None

let audited t op = match t.auditor with None -> () | Some f -> f op

let dispatch t id =
  if id >= 0 && id < Array.length t.dispatch then Array.unsafe_get t.dispatch id else None

(* Unpatch every live link routed through the given block id.  Called when
   an install (re)claims the id: the existing links point at whatever was
   dispatchable there before, and a link must always agree with the
   dispatch array (the simulator consults the link slot *instead of*
   dispatching). *)
let sever_slot t id =
  match Int_tbl.find_opt t.slot_links id with
  | None -> ()
  | Some sources ->
    Int_tbl.remove t.slot_links id;
    List.iter
      (fun (src : Region.t) ->
        match Region.link_target src id with
        | Some (tgt : Region.t) ->
          Region.set_link src ~slot:id None;
          t.link_severs <- t.link_severs + 1;
          t.live_links <- t.live_links - 1;
          Telemetry.link_sever t.telemetry ~step:t.now ~from_id:src.Region.id
            ~target_id:tgt.Region.id
        | None -> ())
      sources

let dispatch_set t a region =
  match t.program with
  | None -> ()
  | Some p ->
    let id = Program.block_id p a in
    if id >= 0 then begin
      sever_slot t id;
      t.dispatch.(id) <- Some region
    end

let dispatch_clear t a region =
  match t.program with
  | None -> ()
  | Some p ->
    let id = Program.block_id p a in
    if id >= 0 then begin
      match t.dispatch.(id) with
      | Some r when r == region -> t.dispatch.(id) <- None
      | Some _ | None -> ()
    end

let find t a =
  match Int_tbl.find_opt t.by_entry a with
  | Some _ as hit -> hit
  | None -> Int_tbl.find_opt t.by_aux_entry a

(* Option-free [find] for callers without a block id at hand. *)
let find_live t a =
  match Int_tbl.find t.by_entry a with
  | r -> r
  | exception Not_found -> Int_tbl.find t.by_aux_entry a

let mem t a =
  match t.program with
  | Some p ->
    let id = Program.block_id p a in
    id >= 0 && (match t.dispatch.(id) with Some _ -> true | None -> false)
  | None -> Int_tbl.mem t.by_entry a || Int_tbl.mem t.by_aux_entry a

let is_live t (region : Region.t) =
  match Int_tbl.find_opt t.by_entry region.Region.entry with
  | Some r -> r == region
  | None -> false

(* Sever every link into the retiring region — the link-cache invariant is
   "no link may outlive its target region" — and drop its own outgoing
   links (which die with it but are not counted as severs: nothing ever
   consults a retired region's slots on the hot path, they are cleared so
   retired regions cannot pin their former neighbours live). *)
let sever_links_into t (region : Region.t) =
  (match Int_tbl.find_opt t.incoming_links region.Region.id with
  | None -> ()
  | Some sources ->
    Int_tbl.remove t.incoming_links region.Region.id;
    List.iter
      (fun ((src : Region.t), slot) ->
        match Region.link_target src slot with
        | Some r when r == region ->
          Region.set_link src ~slot None;
          t.link_severs <- t.link_severs + 1;
          t.live_links <- t.live_links - 1;
          Telemetry.link_sever t.telemetry ~step:t.now ~from_id:src.Region.id
            ~target_id:region.Region.id
        | Some _ | None -> ())
      sources);
  t.live_links <- t.live_links - Region.clear_links region

(* Unlink a region from every live index.  Counter policy is the caller's:
   capacity eviction and flushes count as evictions, invalidation as
   invalidations. *)
let retire t (region : Region.t) =
  sever_links_into t region;
  Int_tbl.remove t.by_entry region.Region.entry;
  dispatch_clear t region.Region.entry region;
  Addr.Set.iter
    (fun a ->
      (match Int_tbl.find_opt t.by_aux_entry a with
      | Some r when r == region -> Int_tbl.remove t.by_aux_entry a
      | Some _ | None -> ());
      dispatch_clear t a region)
    region.Region.aux_entries;
  Int_tbl.replace t.evicted_entries region.Region.entry ();
  t.retired <- region :: t.retired;
  t.bytes_used <- t.bytes_used - Region.cache_bytes region

(* Patch one exit link: [from]'s exit stub for the block [slot] jumps
   straight to [target] from now on, skipping dispatch.  First link wins;
   callers only attempt it right after a dispatch probe returned [target],
   so the link and the dispatch array agree by construction. *)
let add_link t ~(from : Region.t) ~slot ~(target : Region.t) =
  if
    slot >= 0
    && slot < Region.n_link_slots from
    && (match Region.link_target from slot with None -> true | Some _ -> false)
  then begin
    Region.set_link from ~slot (Some target);
    let incoming =
      match Int_tbl.find_opt t.incoming_links target.Region.id with
      | Some l -> l
      | None -> []
    in
    Int_tbl.replace t.incoming_links target.Region.id ((from, slot) :: incoming);
    let through =
      match Int_tbl.find_opt t.slot_links slot with Some l -> l | None -> []
    in
    Int_tbl.replace t.slot_links slot (from :: through);
    t.links_created <- t.links_created + 1;
    t.live_links <- t.live_links + 1;
    Telemetry.link_patch t.telemetry ~step:t.now ~from_id:from.Region.id
      ~target_id:target.Region.id;
    audited t "add-link"
  end

let rec evict_oldest t =
  match Queue.take_opt t.fifo with
  | None -> None
  | Some r ->
    if is_live t r then begin
      retire t r;
      t.evictions <- t.evictions + 1;
      Telemetry.evict t.telemetry ~step:t.now ~id:r.Region.id ~flush:false;
      audited t "evict";
      Some r
    end
    else begin
      (* Tombstone: already retired by another path. *)
      t.fifo_tombstones <- t.fifo_tombstones - 1;
      evict_oldest t
    end

let flush_all t =
  let flushed = ref [] in
  Queue.iter
    (fun r ->
      if is_live t r then begin
        retire t r;
        t.evictions <- t.evictions + 1;
        Telemetry.evict t.telemetry ~step:t.now ~id:r.Region.id ~flush:true;
        flushed := r :: !flushed
      end)
    t.fifo;
  Queue.clear t.fifo;
  t.fifo_tombstones <- 0;
  t.flushes <- t.flushes + 1;
  audited t "flush";
  List.rev !flushed

let n_regions t = Int_tbl.length t.by_entry

(* The byte bound installs must respect: the static capacity tightened by
   the runtime quota, whichever is smaller. *)
let effective_capacity t =
  match t.capacity_bytes, t.quota_bytes with
  | None, None -> None
  | (Some _ as c), None -> c
  | None, (Some _ as q) -> q
  | Some c, Some q -> Some (min c q)

let rec make_room t needed =
  match effective_capacity t with
  | None -> ()
  | Some capacity ->
    if t.bytes_used + needed > capacity && n_regions t > 0 then begin
      (match t.eviction with
      | Params.Flush_all -> ignore (flush_all t)
      | Params.Evict_oldest -> ignore (evict_oldest t));
      make_room t needed
    end

let set_now t step =
  if step > t.now then t.now <- step
  else if step < t.now then begin
    (* A stale stamp (e.g. a replayed snapshot from the bailout-watchdog
       resume path) is clamped, never applied: blacklist cooldowns and
       telemetry stamps must not move backwards.  The regression is counted
       so the sanitizer can flag the caller. *)
    t.clock_regressions <- t.clock_regressions + 1;
    audited t "set-now"
  end

let record_failure t entry =
  let b =
    match Int_tbl.find_opt t.blacklist entry with
    | Some b -> b
    | None ->
      let b = { fails = 0; until = 0; expire_traced = false } in
      Int_tbl.replace t.blacklist entry b;
      b
  in
  b.fails <- b.fails + 1;
  b.expire_traced <- false;
  let shift = min (b.fails - 1) t.blacklist_max_shift in
  let cooldown = t.blacklist_base_cooldown lsl shift in
  b.until <- t.now + cooldown;
  Telemetry.blacklist_add t.telemetry ~step:t.now ~entry ~cooldown

let blacklisted_until t entry =
  match Int_tbl.find_opt t.blacklist entry with Some b -> b.until | None -> 0

let n_blacklisted t =
  Int_tbl.fold (fun _ b acc -> if b.until > t.now then acc + 1 else acc) t.blacklist 0

let arm_translation_failures t ~window =
  let until = t.now + window in
  if until > t.fail_installs_until then t.fail_installs_until <- until

let install t (spec : Region.spec) =
  (* Blacklist before the translation window: an entry already in cooldown
     must not record a fresh failure (and a doubled cooldown) for installs
     it was never eligible to attempt. *)
  match Int_tbl.find_opt t.blacklist spec.Region.entry with
  | Some b when b.until > t.now ->
    t.blacklist_hits <- t.blacklist_hits + 1;
    Error Blacklisted
  | (Some _ | None) as stale ->
    (match stale with
    | Some b when b.until > 0 && not b.expire_traced ->
      b.expire_traced <- true;
      Telemetry.blacklist_expire t.telemetry ~step:t.now ~entry:spec.Region.entry
    | Some _ | None -> ());
    if t.now <= t.fail_installs_until then begin
      t.translation_failures <- t.translation_failures + 1;
      record_failure t spec.Region.entry;
      Error Translation_failed
    end
    else
      if mem t spec.Region.entry then begin
        t.duplicate_installs <- t.duplicate_installs + 1;
        Error Duplicate_entry
      end
      else begin
        let region = Region.of_spec ~id:t.next_id ~selected_at:t.next_id ?program:t.program spec in
        let bytes = Region.cache_bytes region in
        match t.quota_bytes with
        | Some quota when bytes > quota ->
          (* The region can never fit under the tenant's quota, no matter
             what is evicted: a typed admission reject with no cache
             mutation (the region id is not consumed). *)
          t.quota_rejects <- t.quota_rejects + 1;
          Error Quota_exceeded
        | Some _ | None ->
          make_room t bytes;
          t.next_id <- t.next_id + 1;
          if Int_tbl.mem t.evicted_entries spec.Region.entry then
            t.regenerations <- t.regenerations + 1;
          Int_tbl.replace t.by_entry spec.Region.entry region;
          dispatch_set t spec.Region.entry region;
          Addr.Set.iter
            (fun a ->
              (* An aux entry must not steal an address another live region
                 already claims: overwriting its index slot would leave that
                 region live-but-undispatchable (and, once this region
                 retires, a permanently dead dispatch slot).  The colliding
                 aux entry simply is not dispatchable — the owning region
                 still executes through it via its internal edges. *)
              if not (mem t a) then begin
                Int_tbl.replace t.by_aux_entry a region;
                dispatch_set t a region
              end)
            region.Region.aux_entries;
          Queue.add region t.fifo;
          t.bytes_used <- t.bytes_used + bytes;
          Region.set_cache_base region t.alloc_cursor;
          t.alloc_cursor <- t.alloc_cursor + bytes;
          Telemetry.install t.telemetry ~step:t.now ~id:region.Region.id
            ~n_nodes:region.Region.n_nodes;
          audited t "install";
          Ok region
      end

let install_exn t spec =
  match install t spec with
  | Ok region -> region
  | Error reject ->
    invalid_arg
      (Printf.sprintf "Code_cache.install: entry %s rejected (%s)"
         (Addr.to_string spec.Region.entry) (reject_to_string reject))

let overlaps ~lo ~hi (region : Region.t) =
  List.exists
    (fun (b : Block.t) -> b.Block.start <= hi && Block.last b >= lo)
    (Region.nodes region)

(* Invalidation (and blacklist-path retirement) leaves its victims in the
   FIFO as tombstones.  Under a bounded cache eviction pops them off
   eventually, but an unbounded cache never evicts, so a long SMC-heavy run
   would grow the queue without bound.  Rebuild the queue live-only (order
   preserved) once tombstones outnumber live regions; the floor keeps tiny
   caches from compacting on every invalidation. *)
let compact_floor = 8

let maybe_compact t =
  if t.fifo_tombstones > compact_floor && t.fifo_tombstones > n_regions t then begin
    let live = Queue.create () in
    Queue.iter (fun r -> if is_live t r then Queue.add r live) t.fifo;
    t.fifo <- live;
    t.fifo_tombstones <- 0
  end

let invalidate_range t ~lo ~hi =
  let hit =
    Queue.fold (fun acc r -> if is_live t r && overlaps ~lo ~hi r then r :: acc else acc) [] t.fifo
  in
  let hit = List.rev hit in
  List.iter
    (fun r ->
      retire t r;
      t.fifo_tombstones <- t.fifo_tombstones + 1;
      t.invalidations <- t.invalidations + 1;
      Telemetry.invalidate t.telemetry ~step:t.now ~id:r.Region.id;
      record_failure t r.Region.entry)
    hit;
  maybe_compact t;
  if hit <> [] then audited t "invalidate";
  hit

let shock t ~bytes =
  match t.eviction with
  | Params.Flush_all -> if n_regions t > 0 then flush_all t else []
  | Params.Evict_oldest ->
    let before = t.bytes_used in
    let retired = ref [] in
    let continue = ref true in
    while !continue && before - t.bytes_used < bytes && n_regions t > 0 do
      match evict_oldest t with
      | Some r -> retired := r :: !retired
      | None -> continue := false
    done;
    List.rev !retired

(* Quota changes: tightening below the current footprint forces immediate
   evictions.  Quota pressure always evicts oldest-first, whatever the
   configured eviction policy: the tenant did nothing wrong when the
   *global* budget shifted, so flushing its whole cache (the [Flush_all]
   response to self-inflicted capacity pressure) would be out of
   proportion.  Returns the retired regions so the caller can deliver
   invalidations to the policy. *)
let set_quota t quota =
  (match quota with
  | Some q when q < 0 -> invalid_arg "Code_cache.set_quota: negative quota"
  | Some _ | None -> ());
  t.quota_bytes <- quota;
  match quota with
  | None -> []
  | Some q ->
    let retired = ref [] in
    while t.bytes_used > q && n_regions t > 0 do
      match evict_oldest t with
      | Some r ->
        t.quota_evictions <- t.quota_evictions + 1;
        retired := r :: !retired
      | None -> ()
    done;
    List.rev !retired

let quota t = t.quota_bytes
let quota_rejects t = t.quota_rejects
let quota_evictions t = t.quota_evictions

let by_selection rs =
  List.sort (fun (a : Region.t) b -> compare a.Region.selected_at b.Region.selected_at) rs

let regions t = Queue.fold (fun acc r -> if is_live t r then r :: acc else acc) [] t.fifo |> List.rev
let all_regions t = by_selection (t.retired @ regions t)
let bytes_used t = t.bytes_used
let now t = t.now
let clock_regressions t = t.clock_regressions
let fifo_length t = Queue.length t.fifo
let fifo_tombstones t = t.fifo_tombstones
let iter_entries t f = Int_tbl.iter f t.by_entry
let iter_aux_entries t f = Int_tbl.iter f t.by_aux_entry

(* Deliberately break the dispatch ↔ index agreement: drop one live region
   from [by_entry] while leaving its dispatch slot and FIFO element in
   place.  Exists only so the sanitizer's self-test (regionsel_fuzz
   --self-test-break) has a real corruption to catch; never called by the
   engine. *)
let unsafe_corrupt_for_tests t =
  match Queue.fold (fun acc r -> if acc = None && is_live t r then Some r else acc) None t.fifo with
  | None -> false
  | Some r ->
    Int_tbl.remove t.by_entry r.Region.entry;
    true

let region_by_id t id =
  Queue.fold
    (fun acc r ->
      match acc with
      | Some _ -> acc
      | None -> if r.Region.id = id && is_live t r then Some r else None)
    None t.fifo

(* Checkpoint support.

   [save] serializes every region the cache has ever created (live and
   retired — retired regions still feed the post-run metrics), then the
   structural state as region-id references: the live set, the FIFO with
   its tombstones, the retirement list in its original order, the
   aux-entry index, the evicted-entry set, and the live link graph as
   (from, slot, target) triples.  The dispatch array is not saved: it
   mirrors by_entry/by_aux_entry exactly, so restore rebuilds it from
   them (and the post-restore audit re-proves the agreement).

   The aux-entry index IS saved explicitly rather than rebuilt by
   replaying installs: an aux entry only claims a dispatch slot that was
   free at its own install time, so the index depends on install order
   and interleaved retirements — replay would have to re-run history.

   [load] is decode-then-commit: the entire stream is parsed and
   cross-validated into local structures first, and the cache is only
   mutated after the last read, so a torn or corrupt section leaves the
   cache exactly as it was (empty, for a fresh restore target).  Import
   emits no telemetry and fires no auditor — restoring is not a lifecycle
   event. *)

let save t emit =
  emit t.next_id;
  emit t.bytes_used;
  emit t.alloc_cursor;
  emit t.now;
  emit t.clock_regressions;
  emit t.evictions;
  emit t.flushes;
  emit t.regenerations;
  emit t.invalidations;
  emit t.blacklist_hits;
  emit t.duplicate_installs;
  emit t.translation_failures;
  emit t.links_created;
  emit t.link_severs;
  emit t.live_links;
  emit t.fifo_tombstones;
  let live = regions t in
  let all = all_regions t in
  emit (List.length all);
  List.iter (fun r -> Region.save r emit) all;
  emit (List.length live);
  List.iter (fun (r : Region.t) -> emit r.Region.id) live;
  emit (Queue.length t.fifo);
  Queue.iter (fun (r : Region.t) -> emit r.Region.id) t.fifo;
  emit (List.length t.retired);
  List.iter (fun (r : Region.t) -> emit r.Region.id) t.retired;
  emit (Int_tbl.length t.by_aux_entry);
  List.iter
    (fun (a, (r : Region.t)) ->
      emit a;
      emit r.Region.id)
    (Int_tbl.sorted_pairs t.by_aux_entry);
  emit (Int_tbl.length t.evicted_entries);
  List.iter (fun (a, ()) -> emit a) (Int_tbl.sorted_pairs t.evicted_entries);
  let triples = ref [] in
  let n_triples = ref 0 in
  Queue.iter
    (fun (r : Region.t) ->
      if is_live t r then
        for slot = 0 to Region.n_link_slots r - 1 do
          match Region.link_target r slot with
          | Some (tgt : Region.t) ->
            incr n_triples;
            triples := (r.Region.id, slot, tgt.Region.id) :: !triples
          | None -> ()
        done)
    t.fifo;
  emit !n_triples;
  List.iter
    (fun (from, slot, tgt) ->
      emit from;
      emit slot;
      emit tgt)
    (List.rev !triples)

let read_len read what =
  let n = read () in
  if n < 0 then failwith (Printf.sprintf "Code_cache.load: negative %s length" what);
  n

let load t read =
  let program =
    match t.program with
    | Some p -> p
    | None -> failwith "Code_cache.load: cache was created without a program"
  in
  let next_id = read () in
  let bytes_used = read () in
  let alloc_cursor = read () in
  let now = read () in
  let clock_regressions = read () in
  let evictions = read () in
  let flushes = read () in
  let regenerations = read () in
  let invalidations = read () in
  let blacklist_hits = read () in
  let duplicate_installs = read () in
  let translation_failures = read () in
  let links_created = read () in
  let link_severs = read () in
  let live_links = read () in
  let fifo_tombstones = read () in
  let n_all = read_len read "region" in
  let by_id = Int_tbl.create (max 16 (2 * n_all)) in
  for _ = 1 to n_all do
    let r = Region.load ~program read in
    if r.Region.id < 0 || Int_tbl.mem by_id r.Region.id then
      failwith "Code_cache.load: duplicate or negative region id";
    Int_tbl.replace by_id r.Region.id r
  done;
  let resolve id =
    match Int_tbl.find_opt by_id id with
    | Some r -> r
    | None -> failwith "Code_cache.load: unresolved region id"
  in
  let n_live = read_len read "live-set" in
  let live = List.init n_live (fun _ -> resolve (read ())) in
  let n_fifo = read_len read "fifo" in
  let fifo_regions = List.init n_fifo (fun _ -> resolve (read ())) in
  let n_retired = read_len read "retired" in
  let retired = List.init n_retired (fun _ -> resolve (read ())) in
  let n_aux = read_len read "aux-entry" in
  let aux =
    List.init n_aux (fun _ ->
        let a = read () in
        let r = resolve (read ()) in
        (a, r))
  in
  let n_evicted = read_len read "evicted-entry" in
  let evicted = List.init n_evicted (fun _ -> read ()) in
  let n_links = read_len read "link" in
  let links =
    List.init n_links (fun _ ->
        let from = resolve (read ()) in
        let slot = read () in
        let tgt = resolve (read ()) in
        if slot < 0 || slot >= Region.n_link_slots from then
          failwith "Code_cache.load: link slot out of range";
        (from, slot, tgt))
  in
  if live_links <> n_links then failwith "Code_cache.load: live-link count mismatch";
  let entry_seen = Int_tbl.create (max 16 (2 * n_live)) in
  List.iter
    (fun (r : Region.t) ->
      if Int_tbl.mem entry_seen r.Region.entry then
        failwith "Code_cache.load: two live regions share an entry";
      Int_tbl.replace entry_seen r.Region.entry ())
    live;
  (* Everything decoded and cross-checked: commit. *)
  t.next_id <- next_id;
  t.bytes_used <- bytes_used;
  t.alloc_cursor <- alloc_cursor;
  t.now <- now;
  t.clock_regressions <- clock_regressions;
  t.evictions <- evictions;
  t.flushes <- flushes;
  t.regenerations <- regenerations;
  t.invalidations <- invalidations;
  t.blacklist_hits <- blacklist_hits;
  t.duplicate_installs <- duplicate_installs;
  t.translation_failures <- translation_failures;
  t.links_created <- links_created;
  t.link_severs <- link_severs;
  t.live_links <- live_links;
  Int_tbl.reset t.by_entry;
  Int_tbl.reset t.by_aux_entry;
  Int_tbl.reset t.evicted_entries;
  Int_tbl.reset t.incoming_links;
  Int_tbl.reset t.slot_links;
  if Array.length t.dispatch > 0 then Array.fill t.dispatch 0 (Array.length t.dispatch) None;
  List.iter
    (fun (r : Region.t) ->
      Int_tbl.replace t.by_entry r.Region.entry r;
      let id = Program.block_id program r.Region.entry in
      if id >= 0 then t.dispatch.(id) <- Some r)
    live;
  List.iter
    (fun (a, (r : Region.t)) ->
      Int_tbl.replace t.by_aux_entry a r;
      let id = Program.block_id program a in
      if id >= 0 then t.dispatch.(id) <- Some r)
    aux;
  let q = Queue.create () in
  List.iter (fun r -> Queue.add r q) fifo_regions;
  t.fifo <- q;
  t.fifo_tombstones <- fifo_tombstones;
  t.retired <- retired;
  List.iter (fun a -> Int_tbl.replace t.evicted_entries a ()) evicted;
  List.iter
    (fun ((from : Region.t), slot, (tgt : Region.t)) ->
      Region.set_link from ~slot (Some tgt);
      let incoming =
        match Int_tbl.find_opt t.incoming_links tgt.Region.id with Some l -> l | None -> []
      in
      Int_tbl.replace t.incoming_links tgt.Region.id ((from, slot) :: incoming);
      let through =
        match Int_tbl.find_opt t.slot_links slot with Some l -> l | None -> []
      in
      Int_tbl.replace t.slot_links slot (from :: through))
    links

let save_blacklist t emit =
  emit t.fail_installs_until;
  emit (Int_tbl.length t.blacklist);
  List.iter
    (fun (entry, b) ->
      emit entry;
      emit b.fails;
      emit b.until;
      emit (if b.expire_traced then 1 else 0))
    (Int_tbl.sorted_pairs t.blacklist)

let load_blacklist t read =
  let fail_installs_until = read () in
  let n = read_len read "blacklist" in
  let entries =
    List.init n (fun _ ->
        let entry = read () in
        let fails = read () in
        let until = read () in
        let expire_traced =
          match read () with
          | 0 -> false
          | 1 -> true
          | _ -> failwith "Code_cache.load_blacklist: bad flag"
        in
        if fails < 0 then failwith "Code_cache.load_blacklist: negative failure count";
        (entry, { fails; until; expire_traced }))
  in
  Int_tbl.reset t.blacklist;
  List.iter (fun (e, b) -> Int_tbl.replace t.blacklist e b) entries;
  t.fail_installs_until <- fail_installs_until

let reset_blacklist t =
  Int_tbl.reset t.blacklist;
  t.fail_installs_until <- -1

let evictions t = t.evictions
let flushes t = t.flushes
let regenerations t = t.regenerations
let invalidations t = t.invalidations
let blacklist_hits t = t.blacklist_hits
let duplicate_installs t = t.duplicate_installs
let translation_failures t = t.translation_failures
let links_created t = t.links_created
let link_severs t = t.link_severs
let n_links t = t.live_links
