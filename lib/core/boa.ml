open Regionsel_isa
module Policy = Regionsel_engine.Policy
module Context = Regionsel_engine.Context
module Region = Regionsel_engine.Region
module Code_cache = Regionsel_engine.Code_cache
module Counters = Regionsel_engine.Counters
module Params = Regionsel_engine.Params

type bias = { mutable taken : int; mutable not_taken : int }

type t = { ctx : Context.t; biases : bias Addr.Table.t (* keyed by conditional site *) }

let name = "boa"
let create ctx = { ctx; biases = Addr.Table.create 512 }

(* Checkpoint support.  [biases] is only ever probed by key (never
   iterated), so content equality is enough on restore. *)
let save t emit =
  emit (Addr.Table.length t.biases);
  (* Site-sorted: canonical bytes regardless of the table's insertion
     history. *)
  List.iter
    (fun (site, b) ->
      emit site;
      emit b.taken;
      emit b.not_taken)
    (List.sort
       (fun (a, _) (b, _) -> Addr.compare a b)
       (Addr.Table.fold (fun k v acc -> (k, v) :: acc) t.biases []))

let load ctx read =
  let t = create ctx in
  let n = read () in
  if n < 0 then failwith "Boa.load: negative bias count";
  for _ = 1 to n do
    let site = read () in
    let taken = read () in
    let not_taken = read () in
    if taken < 0 || not_taken < 0 then failwith "Boa.load: negative bias";
    Addr.Table.replace t.biases site { taken; not_taken }
  done;
  t

let bias_of t site =
  match Addr.Table.find_opt t.biases site with
  | Some b -> b
  | None ->
    let b = { taken = 0; not_taken = 0 } in
    Addr.Table.replace t.biases site b;
    b

let record_outcome t block taken =
  match block.Block.term with
  | Terminator.Cond _ ->
    let b = bias_of t (Block.last block) in
    if taken then b.taken <- b.taken + 1 else b.not_taken <- b.not_taken + 1
  | Terminator.Fallthrough | Terminator.Jump _ | Terminator.Call _ | Terminator.Indirect_jump
  | Terminator.Indirect_call | Terminator.Return | Terminator.Halt -> ()

(* Grow a trace from [entry] by following each conditional's bias. *)
let grow t entry =
  let program = t.ctx.Context.program in
  let params = t.ctx.Context.params in
  let seen = Addr.Table.create 32 in
  let rec go rev_blocks n_insts cur =
    let stop final_next = { Region.blocks = List.rev rev_blocks; final_next } in
    if Addr.Table.mem seen cur then stop (Some cur)
    else if (not (Addr.equal cur entry)) && Code_cache.mem t.ctx.Context.cache cur then
      stop (Some cur)
    else
      match Program.block_at program cur with
      | None -> stop None
      | Some b ->
        Addr.Table.replace seen cur ();
        let rev_blocks = b :: rev_blocks in
        let n_insts = n_insts + b.Block.size in
        let stop final_next = { Region.blocks = List.rev rev_blocks; final_next } in
        let next =
          match b.Block.term with
          | Terminator.Cond tgt ->
            let bias = bias_of t (Block.last b) in
            if bias.taken >= bias.not_taken then Some tgt else Some (Block.fall_addr b)
          | Terminator.Jump tgt | Terminator.Call tgt -> Some tgt
          | Terminator.Fallthrough -> Some (Block.fall_addr b)
          | Terminator.Return | Terminator.Indirect_jump | Terminator.Indirect_call
          | Terminator.Halt -> None
        in
        (match next with
        | None -> stop None
        | Some a ->
          if
            Addr.is_backward ~src:(Block.last b) ~tgt:a
            || n_insts >= params.Params.max_trace_insts
            || List.length rev_blocks >= params.Params.max_trace_blocks
          then stop (Some a)
          else go rev_blocks n_insts a)
  in
  let path = go [] 0 entry in
  if path.Region.blocks = [] then None else Some path

let bump t tgt =
  let c = Counters.incr t.ctx.Context.counters tgt in
  if c >= t.ctx.Context.params.Params.boa_threshold then begin
    Counters.release t.ctx.Context.counters tgt;
    match grow t tgt with
    | Some path -> Policy.Install [ Region.spec_of_path ~kind:Region.Trace path ]
    | None -> Policy.No_action
  end
  else Policy.No_action

let handle t = function
  | Policy.Interp_block ib ->
    let block = ib.Policy.block and taken = ib.Policy.taken and tgt = ib.Policy.next in
    record_outcome t block taken;
    if
      taken
      && (not (Addr.is_none tgt))
      && (not (Code_cache.mem t.ctx.Context.cache tgt))
      && Addr.is_backward ~src:(Block.last block) ~tgt
    then bump t tgt
    else Policy.No_action
  | Policy.Cache_exited { tgt; _ } -> bump t tgt
  | Policy.Region_invalidated { entry } ->
    (* Entry counting restarts; accumulated branch biases stay valid. *)
    Counters.release t.ctx.Context.counters entry;
    Policy.No_action
