(** The code cache: installed regions, indexed by entry address.

    As in the paper's framework (Section 2.3) the cache is unbounded by
    default.  A capacity (under the {!Region.cache_bytes} cost model) can
    be set for the bounded-cache ablation, with either of two overflow
    policies: Dynamo's preemptive whole-cache flush, or FIFO eviction of
    the oldest regions.  Evicted regions are retired — kept for metrics but
    no longer dispatchable — and re-selecting an entry that was previously
    evicted counts as a {e regeneration}, the cost the paper argues its
    fewer-larger-regions algorithms reduce. *)

open Regionsel_isa

type t

val create : ?capacity_bytes:int -> ?eviction:Params.eviction -> unit -> t
(** [create ()] is unbounded; pass [capacity_bytes] to bound it. *)

val find : t -> Addr.t -> Region.t option
(** The live region whose {e entry} is the given address, if any.  Regions
    are single-entry: an address inside a region's body is not a hit. *)

val find_live : t -> Addr.t -> Region.t
(** Option-free {!find} for the simulator's per-transition probe.
    @raise Not_found when no live region has that entry. *)

val mem : t -> Addr.t -> bool

val install : t -> Region.spec -> Region.t
(** Install a region, assigning it the next id and selection sequence
    number, evicting under the configured policy if the cache would
    overflow.
    @raise Invalid_argument if a live region with the same entry exists. *)

val regions : t -> Region.t list
(** Live regions, in selection order. *)

val all_regions : t -> Region.t list
(** Live and retired regions, in selection order: the population metrics
    should be computed over. *)

val n_regions : t -> int
(** Live regions. *)

val bytes_used : t -> int
(** Live footprint under the cost model. *)

val evictions : t -> int
(** Regions retired by capacity pressure. *)

val flushes : t -> int
(** Whole-cache flushes performed (Flush_all only). *)

val regenerations : t -> int
(** Installs whose entry had previously been evicted. *)
