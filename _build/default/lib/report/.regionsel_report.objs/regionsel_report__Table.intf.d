lib/report/table.mli:
