test/test_simulator.ml: Alcotest Fixtures List Regionsel_core Regionsel_engine
