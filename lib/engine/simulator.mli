(** The dynamic optimization system simulator (the paper's Figure 1).

    Execution alternates between the interpreter and the code cache:

    - While interpreting, every executed block is delivered to the policy;
      on a {e taken} branch whose target is a cached region entry, control
      dispatches into the cache.
    - While in a region, control follows internal edges.  An exit whose
      target is another cached region's entry is a linked jump (counted as a
      region transition); an exit to the region's own entry completes a
      cycle; any other exit returns to the interpreter and is reported to
      the policy.

    When the policy installs a region whose entry is the pending transfer
    target, control enters it immediately (the paper's "jump newT").

    With [params.faults] set, a deterministic {!Faults} schedule is applied
    at exact step indices: SMC writes invalidate spanning regions (the
    policy sees {!Policy.Region_invalidated}), translation failures make
    installs fail, async exits kick execution out of region mode, and cache
    shocks evict.  A watchdog monitors the windowed cached-instruction
    share and bails out to pure interpretation for a cooldown when
    selection thrashes.  With [params.faults = None] (the default) none of
    this machinery runs and all exported metrics are identical to earlier
    versions of the engine. *)

type result = {
  image : Regionsel_workload.Image.t;
  policy_name : string;
  ctx : Context.t;  (** Final cache, counters and gauges. *)
  stats : Stats.t;
  edges : Edge_profile.t;
  icache : Icache.t;
      (** Instruction-cache model fed by every fetch from the code cache:
          the locality instrument behind the paper's separation claims. *)
  halted : bool;  (** Whether the program ran to completion within budget. *)
  fault_log : Faults.log option;
      (** Fault runs only: the injected events plus the windowed
          cached-share samples — the degradation/recovery curve. *)
}

type observer = {
  on_context : Context.t -> unit;
      (** Called once, right after the run's [Context] (and hence its code
          cache) is created — the sanitizer installs its cache auditor
          here. *)
  on_step :
    step:int ->
    block:Regionsel_isa.Block.t ->
    taken:bool ->
    next:Regionsel_isa.Addr.t ->
    believed:Regionsel_isa.Addr.t ->
    unit;
      (** Called after every interpreter step, before the mode handlers run:
          [block]/[taken]/[next] are the interpreter's ground truth for the
          step, [believed] is the start address region mode believes it just
          executed ([Addr.none] while interpreting).  The loop invariant —
          the sanitizer's divergence rule — is [believed = block.start]
          whenever in region mode. *)
}
(** Sanitizer hook ([Regionsel_check.Check]): a per-run observer with no
    effect on the simulation.  With [observer = None] (the default) the
    loop pays one compare per step; metrics are identical either way. *)

type window_hook = {
  win_every : int;
      (** Window length in steps.  The hook fires whenever the step count
          reaches a multiple-of-[win_every] boundary — absolute multiples,
          so a restored run samples at the same steps as the uninterrupted
          one. *)
  win_fn : step:int -> stats:Stats.t -> ctx:Context.t -> unit;
      (** Called at each boundary with the live counters.  Pure
          observation: the metrics recorder ([Regionsel_obs.Metrics]) reads
          [Stats]/cache/gauge/telemetry counters here and must mutate
          nothing simulated. *)
}
(** Windowed-metrics hook.  With [on_window = None] (the default) the loop
    pays one always-false compare per step — same discipline as
    [observer] and [checkpoint]; simulated outcomes are identical either
    way (guarded by the parity suite). *)

type section = {
  sec_name : string;  (** Stable identifier ("interp", "cache", "loop", …). *)
  sec_save : (int -> unit) -> unit;
      (** Serialize the section's current state as a flat int stream.  Pure
          observation: saving changes no simulated outcome. *)
  sec_load : (unit -> int) -> unit;
      (** Replace the section's state from a saved stream.  Raises
          [Failure] on a malformed stream, in which case the section keeps
          its fresh (run-start) state — the caller treats it as degraded
          and the subsystem re-warms from scratch. *)
}
(** One independently recoverable unit of warm state.  The persistence
    layer ([Regionsel_persist.Persist]) frames, checksums and versions
    each section separately so corruption degrades section by section. *)

type internals = {
  int_ctx : Context.t;
  int_stats : Stats.t;
  int_sections : section list;
      (** In save order, which is also the required load order: the final
          "loop" section resolves its current-region reference against the
          already-restored code cache. *)
}
(** The checkpoint surface handed to the [checkpoint] and [restore] hooks
    of {!run}: everything warm about the run, as named sections. *)

type t
(** A resumable run: the same simulation {!run} performs, but advanced in
    caller-bounded step batches.  The multi-stream scheduler
    ({!Multi_stream}) multiplexes many of these over domains; a handle's
    state is owned by whichever domain is currently advancing it, with
    hand-offs only at batch boundaries. *)

val create :
  ?params:Params.t ->
  ?seed:int64 ->
  ?telemetry:Regionsel_telemetry.Telemetry.sink ->
  ?observer:observer ->
  ?on_window:window_hook ->
  ?checkpoint:int * (internals -> unit) ->
  ?restore:(internals -> unit) ->
  ?record:Branch_stream.events ->
  ?replay:Branch_stream.events ->
  policy:(module Policy.S) ->
  max_steps:int ->
  Regionsel_workload.Image.t ->
  t
(** Set up a run without stepping it (the [restore] hook, if any, fires
    here).  [record] tees every executed branch event into the given
    recording; [replay] substitutes a recorded stream for the live
    interpreter as the branch-event source — a replayed run over a
    recording of a live run with the same params, seed, policy and budget
    is bit-identical to that live run.  Recording and replaying are not
    meaningfully combined with mid-run snapshot restore (the stream cursor
    is not part of the snapshot). *)

val advance : t -> upto:int -> unit
(** Step until the step count reaches [min upto max_steps], the program
    halts, or the stream ends.  Monotone: an [upto] at or below the
    current count is a no-op. *)

val finish : t -> result
(** Run any remaining budget, then finalize (end-of-run checkpoint, final
    edge-profile flush, fault-log assembly).  Idempotent: further calls
    return the same result.  [run] is exactly [create] + [finish]. *)

val steps : t -> int
val halted : t -> bool
val max_steps : t -> int

val exhausted : t -> bool
(** No more stepping will happen: the budget is spent or the run halted. *)

val set_cache_quota : t -> int option -> unit
(** Set or clear this run's code-cache byte quota ({!Code_cache.set_quota});
    regions evicted to fit are reported to the policy as invalidations,
    exactly like fault-driven evictions.  Called by the multi-stream
    scheduler at batch boundaries. *)

val cache_bytes_used : t -> int

val sample : t -> (step:int -> stats:Stats.t -> ctx:Context.t -> unit) -> unit
(** Observe the run's live counters between advances: calls the function
    with the current step count, stats and context.  The multi-stream
    scheduler's barrier sampling and end-of-run partial-window flushes use
    this; like the window hook, the callback must be pure observation.
    Only safe from whichever domain currently owns the handle (at batch
    barriers, the scheduler's main domain). *)

val internals : t -> internals
(** The run's checkpoint surface, for on-demand snapshots between
    advances — the daemon's disconnect/shutdown path, where the save
    point is an external event rather than a step threshold.  Saving
    through it is pure observation; same ownership rule as {!sample}. *)

val run :
  ?params:Params.t ->
  ?seed:int64 ->
  ?telemetry:Regionsel_telemetry.Telemetry.sink ->
  ?observer:observer ->
  ?on_window:window_hook ->
  ?checkpoint:int * (internals -> unit) ->
  ?restore:(internals -> unit) ->
  ?record:Branch_stream.events ->
  ?replay:Branch_stream.events ->
  policy:(module Policy.S) ->
  max_steps:int ->
  Regionsel_workload.Image.t ->
  result
(** [run ~policy ~max_steps image] simulates [image] under [policy] for at
    most [max_steps] executed blocks. The [seed] (default [1L]) drives all
    branch behaviour.  Pass [telemetry] to record region-lifecycle events
    (selection, install, dispatch, link patch/sever, eviction,
    invalidation, fault delivery, bailout enter/exit, blacklist
    add/expire) into its ring buffer; the default sink is a no-op and
    recording is pure observation — enabling it changes no simulated
    outcome (guarded by the parity suite).

    [checkpoint] is [(at_step, fn)]: the first time the step count reaches
    [at_step], [fn] is called once with the run's {!internals} — saving
    through them is pure observation.  A threshold the run never reaches
    (use [max_int] for "at end of run") fires once after the last step,
    before end-of-run finalization.  [restore] is called once before the
    first step; loading a snapshot saved at step [N] through it and
    continuing is bit-identical — metrics, telemetry, PRNG streams — to
    the uninterrupted run, provided params, seed, image and policy match.

    With [params.faults] naming a profile with a [crash_period], crash
    events kill the warm optimizer mid-run: the cache is flushed, the
    blacklist, live counters and policy state are reset, and execution
    falls back to the interpreter — the program itself and the run's
    accumulated metrics persist. *)
