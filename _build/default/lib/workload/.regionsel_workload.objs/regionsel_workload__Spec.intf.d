lib/workload/spec.mli: Image Lazy
