(** Trace combination over LEI traces (Section 4.3's "combined LEI").

    Cycle detection and profiling work exactly as in LEI, but at the lower
    start threshold [Params.combined_lei_start]; each further counted cycle
    completion forms a cyclic trace from the history buffer and stores it
    compactly, and after [T_prof] observations the stored traces are
    combined into one multi-path region. *)

include Regionsel_engine.Policy.S
