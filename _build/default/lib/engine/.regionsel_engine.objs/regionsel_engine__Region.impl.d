lib/engine/region.ml: Addr Block Format Hashtbl List Option Regionsel_isa Terminator
