(* 254.gap: computational group theory.  Arithmetic kernels — garbage
   collected bag operations with an interprocedural allocation cycle,
   nested multiplication loops, and moderately biased permutation
   filters. *)

let build () =
  let b = Builder.create () in
  Patterns.leaf b ~name:"new_bag" ~size:6;
  Patterns.composite_loop b ~name:"collect" ~trip:200
    ~body:
      [
        Patterns.Straight 5;
        Patterns.Call_to "new_bag";
        Patterns.Diamond { Patterns.bias = 0.75; side_size = 4 };
        Patterns.Straight 4;
        Patterns.Continue 0.12;
      ];
  Patterns.nested_loop b ~name:"mult_perm" ~outer_trip:25 ~inner_trip:40 ~body_size:5;
  Patterns.composite_loop b ~name:"filter_orbit" ~trip:200
    ~body:
      [
        Patterns.Straight 4;
        Patterns.Diamond { Patterns.bias = 0.6; side_size = 5 };
        Patterns.Straight 5;
      ];
  Patterns.plain_loop b ~name:"vec_add" ~trip:250 ~body_blocks:2 ~body_size:5;
  Patterns.spaced_loop b ~name:"read_syntax" ~body_size:4;
  Patterns.recursive_fn b ~name:"pow_mod" ~depth:8 ~body_size:5;
  Patterns.cold_farm b ~name:"lib_pool" ~n:10 ~body_size:5;
  Patterns.driver b ~name:"main"
    ~weights:[ "read_syntax", 0.2; "pow_mod", 0.3; "lib_pool", 0.1 ]
    [ "collect"; "mult_perm"; "filter_orbit"; "vec_add"; "read_syntax"; "pow_mod"; "lib_pool" ];
  Builder.compile b ~name:"gap" ~entry:"main"

let spec =
  Spec.make ~name:"gap"
    ~description:
      "254.gap stand-in: allocation cycle through the GC, nested permutation loops, \
       biased orbit filters"
    ~steps:900_000 build
