lib/engine/context.ml: Code_cache Counters Gauges Params Program Regionsel_isa
