lib/prng/splitmix.mli:
