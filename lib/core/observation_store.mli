(** Storage for compactly-encoded observed traces, keyed by entry address
    (Section 4.2.1).

    Each stored trace is independent — no cross-trace analysis happens
    until the entry's region is selected — and the store keeps the shared
    memory gauge up to date so the Figure 18 high-water metric reflects the
    bytes held at every instant. *)

open Regionsel_isa
module Gauges = Regionsel_engine.Gauges

type t

val create : Gauges.t -> t

val record : t -> Compact_trace.t -> unit
(** File one observed trace under its entry address. *)

val count : t -> Addr.t -> int
(** Observed traces currently stored for the entry. *)

val take : t -> Addr.t -> Compact_trace.t list
(** Remove and return the entry's traces in observation order, returning
    their bytes to the gauge. *)

val total_bytes : t -> int
val n_entries : t -> int

val save : t -> (int -> unit) -> unit
(** Checkpoint support: every stored trace, keyed by entry. *)

val load : t -> (unit -> int) -> unit
(** Replace the store's contents from a {!save} stream.  Does not touch
    the shared gauges (they have their own snapshot section).  Raises
    [Failure] on a malformed stream. *)
