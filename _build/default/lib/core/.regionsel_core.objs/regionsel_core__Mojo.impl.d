lib/core/mojo.ml: Net_like Regionsel_engine
