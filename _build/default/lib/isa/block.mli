(** Basic blocks of the virtual ISA.

    A block is a maximal straight-line run of instructions: [size - 1]
    ordinary instructions followed by one terminator.  Instructions are
    unit-sized, so the block occupies addresses [start .. start + size - 1]
    and the terminator sits at [last]. *)

type t = private { start : Addr.t; size : int; term : Terminator.t }

val make : start:Addr.t -> size:int -> term:Terminator.t -> t
(** Requires [size >= 1]. *)

val last : t -> Addr.t
(** Address of the terminator instruction. *)

val fall_addr : t -> Addr.t
(** Address immediately after the block: the not-taken / return-to target. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
