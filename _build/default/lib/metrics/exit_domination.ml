open Regionsel_isa
module Region = Regionsel_engine.Region

type verdict = { dominated : Region.t; dominator : Region.t; dup_insts : int }

type summary = {
  verdicts : verdict list;
  n_regions : int;
  n_dominated : int;
  dominated_fraction : float;
  dup_insts : int;
  dup_fraction : float;
}

let shared_insts (r : Region.t) (s : Region.t) =
  List.fold_left
    (fun acc b -> if Region.mem_block r b.Block.start then acc + b.Block.size else acc)
    0 (Region.nodes s)

(* The regions containing a given block, used to resolve the unique outside
   predecessor to candidate dominators. *)
let index_by_block regions =
  let table = Addr.Table.create 1024 in
  List.iter
    (fun (r : Region.t) ->
      List.iter
        (fun b ->
          let prev = Option.value ~default:[] (Addr.Table.find_opt table b.Block.start) in
          Addr.Table.replace table b.Block.start (r :: prev))
        (Region.nodes r))
    regions;
  table

let dominator_of ~by_block ~preds (s : Region.t) =
  let entry = s.Region.entry in
  let executed_preds = preds entry in
  let outside = Addr.Set.filter (fun p -> not (Region.mem_block s p)) executed_preds in
  let qualifies p (r : Region.t) =
    r.Region.selected_at < s.Region.selected_at
    && (not (r == s))
    && Addr.Set.mem p (Region.exited_to r ~tgt:entry)
  in
  let earliest candidates =
    let by_age (a : Region.t) (b : Region.t) = compare a.Region.selected_at b.Region.selected_at in
    match List.sort by_age candidates with r :: _ -> Some r | [] -> None
  in
  let dominator_via p =
    let candidates = Option.value ~default:[] (Addr.Table.find_opt by_block p) in
    earliest (List.filter (qualifies p) candidates)
  in
  match Addr.Set.elements outside with
  | [ p ] -> dominator_via p
  | [] ->
    (* Every executed predecessor of the entrance lies inside [s] itself —
       which happens when [s] duplicates its dominator's exit block.  The
       separation is still useless, so it still counts as domination if some
       earlier region dynamically exited to the entrance from one of those
       predecessors. *)
    Addr.Set.fold
      (fun p acc -> match acc with Some _ -> acc | None -> dominator_via p)
      executed_preds None
  | _ :: _ :: _ -> None

let analyze ~regions ~preds =
  let by_block = index_by_block regions in
  let verdicts =
    List.filter_map
      (fun s ->
        match dominator_of ~by_block ~preds s with
        | Some r -> Some { dominated = s; dominator = r; dup_insts = shared_insts r s }
        | None -> None)
      regions
  in
  let n_regions = List.length regions in
  let n_dominated = List.length verdicts in
  let dup_insts = List.fold_left (fun acc (v : verdict) -> acc + v.dup_insts) 0 verdicts in
  let total_selected =
    List.fold_left (fun acc (r : Region.t) -> acc + r.Region.copied_insts) 0 regions
  in
  let frac num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den in
  {
    verdicts;
    n_regions;
    n_dominated;
    dominated_fraction = frac n_dominated n_regions;
    dup_insts;
    dup_fraction = frac dup_insts total_selected;
  }
