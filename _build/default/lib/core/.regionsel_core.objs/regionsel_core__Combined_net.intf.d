lib/core/combined_net.mli: Regionsel_engine
