(** Last-Executed Iteration (LEI) trace selection — the paper's first
    contribution (Section 3, Figures 5 and 6).

    Every interpreted taken branch whose target is not cached is pushed
    into a history buffer.  When the target already occurs in the buffer, a
    cycle has just executed; if the closing branch is backward, or the
    earlier occurrence followed a code-cache exit, the target's counter is
    incremented.  At [Params.lei_threshold] the cyclic path recorded in the
    buffer is selected as a trace.  Unlike NET, formation crosses backward
    calls and returns, so interprocedural cycles are spanned, and it stops
    at blocks that begin existing regions, so nested cycles are not
    duplicated. *)

include Regionsel_engine.Policy.S
