lib/report/barchart.mli:
