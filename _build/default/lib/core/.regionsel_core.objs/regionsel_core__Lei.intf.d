lib/core/lei.mli: Regionsel_engine
