lib/engine/counters.ml: Addr Option Regionsel_isa
