(** The NET policy family, parameterized over profiling thresholds.

    NET (Duesterwald & Bala) profiles the targets of taken backward
    branches and of code-cache exits; when a counter reaches the threshold
    it records the next-executing tail as a trace.  Mojo (Chen et al.,
    Section 5) is the same machine with a lower threshold for exit targets,
    so both are instances of this functor. *)

module type CONFIG = sig
  val name : string

  val backward_threshold : Regionsel_engine.Params.t -> int
  (** Threshold applied to targets profiled via taken backward branches. *)

  val exit_threshold : Regionsel_engine.Params.t -> int
  (** Threshold applied to targets profiled via code-cache exits. *)
end

module Make (_ : CONFIG) : Regionsel_engine.Policy.S
