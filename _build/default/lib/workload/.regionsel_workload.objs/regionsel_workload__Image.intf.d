lib/workload/image.mli: Addr Behavior Program Regionsel_isa
