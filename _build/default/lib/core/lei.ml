open Regionsel_isa
module Policy = Regionsel_engine.Policy
module Context = Regionsel_engine.Context
module Region = Regionsel_engine.Region
module Code_cache = Regionsel_engine.Code_cache
module Counters = Regionsel_engine.Counters
module Params = Regionsel_engine.Params

type t = { ctx : Context.t; buf : History_buffer.t }

let name = "lei"

let create (ctx : Context.t) =
  { ctx; buf = History_buffer.create ~capacity:ctx.Context.params.Params.lei_buffer_size }

(* INTERPRETED-BRANCH-TAKEN, Figure 5, for a target that is not cached.  A
   code-cache exit reaches the dispatcher exactly like an interpreted taken
   branch, so it runs the same algorithm; its buffer entry carries the
   [follows_exit] flag that line 9 tests on the {e previous} occurrence. *)
let on_taken_branch t ~src ~tgt ~is_exit =
  let old = History_buffer.find t.buf tgt in
  ignore (History_buffer.insert t.buf ~src ~tgt ~follows_exit:is_exit);
  match old with
  | None -> Policy.No_action
  | Some old ->
    if Addr.is_backward ~src ~tgt || old.History_buffer.follows_exit then begin
      let c = Counters.incr t.ctx.Context.counters tgt in
      if c >= t.ctx.Context.params.Params.lei_threshold then begin
        let path =
          Lei_former.form ~ctx:t.ctx ~buf:t.buf ~start:tgt ~after_seq:old.History_buffer.seq
        in
        History_buffer.truncate_after t.buf ~seq:old.History_buffer.seq;
        Counters.release t.ctx.Context.counters tgt;
        match path with
        | Some path -> Policy.Install [ Region.spec_of_path ~kind:Region.Trace path ]
        | None -> Policy.No_action
      end
      else Policy.No_action
    end
    else Policy.No_action

let handle t = function
  | Policy.Interp_block { block; taken; next } -> (
    match next with
    | Some tgt when taken ->
      if Code_cache.mem t.ctx.Context.cache tgt then Policy.No_action
      else on_taken_branch t ~src:(Block.last block) ~tgt ~is_exit:false
    | Some _ | None -> Policy.No_action)
  | Policy.Cache_exited { src; tgt; _ } -> on_taken_branch t ~src ~tgt ~is_exit:true
