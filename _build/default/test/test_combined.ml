(* Behavioural tests of the trace-combination policies: observation
   counting, install timing relative to the thresholds, and the memory
   gauge (Figure 18's instrument). *)

module Region = Regionsel_engine.Region
module Stats = Regionsel_engine.Stats
module Gauges = Regionsel_engine.Gauges
module Context = Regionsel_engine.Context
module Params = Regionsel_engine.Params
module Simulator = Regionsel_engine.Simulator
module Policies = Regionsel_core.Policies
open Fixtures

let combined_regions result =
  List.filter (fun (r : Region.t) -> r.Region.kind = Region.Combined) (regions_of result)

let install_timing () =
  (* A simple loop: combined NET starts profiling at T_start and combines
     after T_prof observations, so the region appears after
     T_start + T_prof executions of the header — and not a step before.
     Each loop iteration executes the header once. *)
  let params = Params.default in
  let needed = params.Params.combined_net_start + params.Params.combine_t_prof in
  let below = run Policies.combined_net (simple_loop ~trip:needed ()) in
  check_int "no region with one execution missing" 0 (List.length (regions_of below));
  let enough = run Policies.combined_net (simple_loop ~trip:(needed + 1) ()) in
  check_int "region right at the threshold" 1 (List.length (regions_of enough))

let observations_leave_no_residue () =
  (* After combination, the observation store must have returned all its
     bytes: the gauge ends at zero for a program with one hot entry. *)
  let result = run Policies.combined_net (simple_loop ()) in
  let gauges = result.Simulator.ctx.Context.gauges in
  check_int "no stored traces left" 0 (Gauges.observed_bytes gauges);
  check_true "but some memory was used while profiling"
    (Gauges.observed_bytes_high_water gauges > 0)

let memory_high_water_positive_on_suite () =
  List.iter
    (fun name ->
      let spec = Option.get (Regionsel_workload.Suite.find name) in
      let result =
        run ~max_steps:100_000 Policies.combined_lei (Regionsel_workload.Spec.image spec)
      in
      check_true (name ^ " recorded observation memory")
        (Gauges.observed_bytes_high_water result.Simulator.ctx.Context.gauges > 0))
    [ "gzip"; "twolf" ]

let lower_t_prof_still_works () =
  (* Footnote 8's setting. *)
  let params =
    { Params.default with Params.combine_t_prof = 5; combine_t_min = 2; combined_net_start = 45 }
  in
  let result = run ~params Policies.combined_net (figure4 ()) in
  check_true "combined regions selected" (combined_regions result <> []);
  let merged =
    List.exists
      (fun r -> Region.mem_block r 0x1005 && Region.mem_block r 0x1009)
      (combined_regions result)
  in
  check_true "unbiased arms still merged with T_prof=5" merged

let t_min_one_takes_everything () =
  let params = { Params.default with Params.combine_t_min = 1 } in
  let result = run ~params Policies.combined_net (figure4 ~p_first:0.2 ()) in
  (* With T_min = 1 even a 20% arm observed once is kept. *)
  check_true "rare arm included at T_min=1"
    (List.exists (fun r -> Region.mem_block r 0x1009) (combined_regions result))

let combined_regions_have_splits () =
  let result = run Policies.combined_net (figure4 ()) in
  match combined_regions result with
  | r :: _ ->
    (* The unbiased block A must keep both internal successors. *)
    check_true "taken side internal" (Region.has_edge r ~src:0x1002 ~dst:0x1009);
    check_true "fall side internal" (Region.has_edge r ~src:0x1002 ~dst:0x1005)
  | [] -> Alcotest.fail "expected a combined region"

let combination_improves_executed_cycles () =
  (* Control stays in the merged region regardless of the unbiased
     direction, so nearly every region execution completes the cycle. *)
  let module Run_metrics = Regionsel_metrics.Run_metrics in
  let m policy = Run_metrics.of_result (run policy (figure4 ())) in
  let base = m Policies.net and combined = m Policies.combined_net in
  check_true "executed-cycle ratio improves a lot"
    (combined.Run_metrics.executed_cycle_ratio
    > base.Run_metrics.executed_cycle_ratio +. 0.3)

let rejoin_statistics_exposed () =
  let before = Regionsel_core.Combine.rejoin_pass_total () in
  ignore (run Policies.combined_net (figure4 ()));
  check_true "rejoin passes counted" (Regionsel_core.Combine.rejoin_pass_total () > before);
  check_true "multi-pass regions are rare"
    (Regionsel_core.Combine.rejoin_multi_pass_total ()
    <= Regionsel_core.Combine.rejoin_pass_total () / 10)

let suite =
  [
    case "install timing" install_timing;
    case "observations leave no residue" observations_leave_no_residue;
    case "memory high water positive on suite" memory_high_water_positive_on_suite;
    case "lower T_prof still works" lower_t_prof_still_works;
    case "T_min=1 takes everything" t_min_one_takes_everything;
    case "combined regions have splits" combined_regions_have_splits;
    case "combination improves executed cycles" combination_improves_executed_cycles;
    case "rejoin statistics exposed" rejoin_statistics_exposed;
  ]
