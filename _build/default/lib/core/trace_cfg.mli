(** The control-flow graph built from observed traces (Section 4.2.2), and
    the region-selection passes run over it (Figures 13 and 15).

    The CFG represents only control transfers that occurred in an observed
    trace — any other target exits the region, so nothing else is needed.
    Blocks are annotated with the number of observed traces containing
    them; blocks reaching the [T_min] occurrence threshold are marked, the
    MARK-REJOINING-PATHS dataflow extends the marking to every block from
    which a marked block is reachable, and unmarked blocks are pruned.
    Finally, any remaining exit whose target is a block of the region is
    replaced by an internal edge. *)

open Regionsel_isa
module Region = Regionsel_engine.Region

type t

val create : entry:Addr.t -> t

val add_path : t -> Region.path -> unit
(** Merge one observed trace.  Every path must begin at the CFG's entry.
    Each block's occurrence count rises at most once per path. *)

val n_paths : t -> int
val n_blocks : t -> int

val occurrences : t -> Addr.t -> int
(** Observed traces containing the block (0 if unknown). *)

val mark_frequent : t -> t_min:int -> unit
(** Mark all blocks occurring in at least [t_min] observed traces (line 13
    of Figure 13). *)

val is_marked : t -> Addr.t -> bool

val mark_rejoining_paths : t -> int
(** The Figure 15 dataflow: repeatedly, in a post-order traversal, mark any
    block with a marked successor, until a pass marks nothing.  Afterwards
    a block is marked iff a marked block is reachable from it.  Returns the
    number of passes that marked at least one block (almost always 1, per
    Section 4.2.3). *)

val to_spec : ?layout:[ `Hot_first | `Address_order ] -> t -> Region.spec
(** Prune unmarked blocks and build the installable region: edges are the
    observed transfers between surviving blocks, plus every direct static
    successor relation between surviving blocks (line 16 of Figure 13:
    exits targeting a block of the region become edges).  [layout]
    (default [`Hot_first]) chooses the cache placement: blocks ordered by
    observation count — the profile-guided layout Section 4.4 argues
    larger regions enable — or plain address order for the ablation.
    @raise Invalid_argument if the entry is unmarked (it cannot be: it
    occurs in every observed trace). *)
