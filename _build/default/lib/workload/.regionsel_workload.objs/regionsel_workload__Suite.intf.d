lib/workload/suite.mli: Spec
