test/test_reporting.ml: Alcotest Fixtures Format List Regionsel_core Regionsel_engine Regionsel_metrics
