(* The multi-stream scheduler's two contracts: without a budget every
   tenant's multiplexed result is bit-identical to its solo run (whatever
   the domain count or batch size), and with a shared budget the outcome
   is a pure function of the barrier states — identical across domain
   counts, with every tenant's footprint inside its quota. *)

module Spec = Regionsel_workload.Spec
module Suite = Regionsel_workload.Suite
module Simulator = Regionsel_engine.Simulator
module Multi_stream = Regionsel_engine.Multi_stream
module Code_cache = Regionsel_engine.Code_cache
module Context = Regionsel_engine.Context
module Params = Regionsel_engine.Params
module Run_metrics = Regionsel_metrics.Run_metrics
module Policies = Regionsel_core.Policies
module Check = Regionsel_check.Check
module Image = Regionsel_workload.Image
open Fixtures

let budget_steps (spec : Spec.t) = min spec.Spec.default_steps 20_000

(* A mixed fleet: different workloads, policies, seeds and fault
   schedules per tenant. *)
let fleet_specs =
  [
    ("gzip", "net", 1L, None);
    ("twolf", "lei", 2L, Some "mixed");
    ("mcf", "combined-net", 3L, None);
    ("vpr", "mojo", 4L, Some "smc");
  ]

let params_of fault =
  match fault with
  | None -> Params.default
  | Some name -> { Params.default with Params.faults = Params.fault_profile name }

let tenants () =
  List.map
    (fun (bench, pname, seed, fault) ->
      let spec = Option.get (Suite.find bench) in
      Multi_stream.tenant ~params:(params_of fault) ~seed
        ~policy:(Option.get (Policies.find pname))
        ~max_steps:(budget_steps spec)
        ~name:(bench ^ "/" ^ pname) (Spec.image spec))
    fleet_specs

let solo_json (bench, pname, seed, fault) =
  let spec = Option.get (Suite.find bench) in
  Run_metrics.to_json
    (Run_metrics.of_result
       (Simulator.run ~params:(params_of fault) ~seed
          ~policy:(Option.get (Policies.find pname))
          ~max_steps:(budget_steps spec) (Spec.image spec)))

let outcome_jsons (o : Multi_stream.outcome) =
  List.map (fun (_, r) -> Run_metrics.to_json (Run_metrics.of_result r)) o.Multi_stream.results

let merged_equals_sequential () =
  let solo = List.map solo_json fleet_specs in
  let o = Multi_stream.run ~n_domains:2 ~batch_steps:1024 (tenants ()) in
  check_int "one result per tenant" (List.length fleet_specs)
    (List.length o.Multi_stream.results);
  List.iter2
    (fun (name, _) (want, got) ->
      Alcotest.(check string) (name ^ " bit-identical to its solo run") want got)
    o.Multi_stream.results
    (List.combine solo (outcome_jsons o))

let domain_count_invariant () =
  let a = Multi_stream.run ~n_domains:1 ~batch_steps:1024 (tenants ()) in
  let b = Multi_stream.run ~n_domains:4 ~batch_steps:1024 (tenants ()) in
  Alcotest.(check (list string)) "1 vs 4 domains" (outcome_jsons a) (outcome_jsons b);
  check_int "same rounds" a.Multi_stream.rounds b.Multi_stream.rounds

let batch_size_invariant_without_budget () =
  let a = Multi_stream.run ~n_domains:2 ~batch_steps:64 (tenants ()) in
  let b = Multi_stream.run ~n_domains:2 ~batch_steps:4096 (tenants ()) in
  Alcotest.(check (list string)) "batch 64 vs 4096" (outcome_jsons a) (outcome_jsons b)

(* Shared budget: quota pressure must actually fire, the outcome must not
   depend on the domain count, and every final cache must satisfy the
   quota bound (checked both directly and through the audit rule). *)
let shared_budget () =
  let unconstrained = Multi_stream.run ~n_domains:1 ~batch_steps:512 (tenants ()) in
  let total =
    List.fold_left
      (fun acc (_, (r : Simulator.result)) ->
        acc + Code_cache.bytes_used r.Simulator.ctx.Context.cache)
      0 unconstrained.Multi_stream.results
  in
  check_true "fleet uses cache bytes at all" (total > 0);
  let budget = max 1024 (total / 3) in
  let a = Multi_stream.run ~n_domains:1 ~batch_steps:512 ~budget_bytes:budget (tenants ()) in
  let b = Multi_stream.run ~n_domains:4 ~batch_steps:512 ~budget_bytes:budget (tenants ()) in
  Alcotest.(check (list string)) "budgeted, 1 vs 4 domains" (outcome_jsons a) (outcome_jsons b);
  check_int "same quota rejects" a.Multi_stream.quota_rejects b.Multi_stream.quota_rejects;
  check_int "same quota evictions" a.Multi_stream.quota_evictions
    b.Multi_stream.quota_evictions;
  check_true "budget exerted pressure"
    (a.Multi_stream.quota_evictions > 0 || a.Multi_stream.quota_rejects > 0
    || List.exists
         (fun (_, (r : Simulator.result)) ->
           Code_cache.evictions r.Simulator.ctx.Context.cache > 0)
         a.Multi_stream.results);
  List.iter
    (fun (name, (r : Simulator.result)) ->
      let cache = r.Simulator.ctx.Context.cache in
      (match Code_cache.quota cache with
      | Some q ->
        check_true
          (Printf.sprintf "%s: footprint %d fits quota %d" name
             (Code_cache.bytes_used cache) q)
          (Code_cache.bytes_used cache <= q)
      | None -> Alcotest.failf "%s: no quota set under a budget" name);
      (* The audit rule sees the same invariant. *)
      Check.audit_cache ~program:r.Simulator.image.Image.program cache
        ~step:(Code_cache.now cache))
    a.Multi_stream.results

(* Aggregate footprint at the end respects the budget (the barrier
   invariant; the run has just crossed its last barrier). *)
let budget_bounds_aggregate () =
  let unconstrained = Multi_stream.run ~n_domains:1 ~batch_steps:512 (tenants ()) in
  let total =
    List.fold_left
      (fun acc (_, (r : Simulator.result)) ->
        acc + Code_cache.bytes_used r.Simulator.ctx.Context.cache)
      0 unconstrained.Multi_stream.results
  in
  let budget = max 1024 (total / 3) in
  let o = Multi_stream.run ~n_domains:2 ~batch_steps:512 ~budget_bytes:budget (tenants ()) in
  let used =
    List.fold_left
      (fun acc (_, (r : Simulator.result)) ->
        acc + Code_cache.bytes_used r.Simulator.ctx.Context.cache)
      0 o.Multi_stream.results
  in
  check_true
    (Printf.sprintf "aggregate %d within budget %d" used budget)
    (used <= budget)

let edge_cases () =
  let o = Multi_stream.run [] in
  check_int "empty fleet: no results" 0 (List.length o.Multi_stream.results);
  check_int "empty fleet: no rounds" 0 o.Multi_stream.rounds;
  check_true "batch_steps = 0 rejected"
    (try
       ignore (Multi_stream.run ~batch_steps:0 (tenants ()));
       false
     with Invalid_argument _ -> true);
  check_true "negative budget rejected"
    (try
       ignore (Multi_stream.run ~budget_bytes:(-1) (tenants ()));
       false
     with Invalid_argument _ -> true)

(* The resumable handle under the scheduler's own API: advance is
   monotone and finish is idempotent. *)
let handle_semantics () =
  let spec = Option.get (Suite.find "gzip") in
  let image = Spec.image spec in
  let policy = Option.get (Policies.find "net") in
  let t = Simulator.create ~seed:1L ~policy ~max_steps:5_000 image in
  check_int "fresh handle at step 0" 0 (Simulator.steps t);
  Simulator.advance t ~upto:1_000;
  check_int "advanced to 1000" 1_000 (Simulator.steps t);
  Simulator.advance t ~upto:500;
  check_int "advance is monotone" 1_000 (Simulator.steps t);
  Simulator.advance t ~upto:100_000;
  check_int "advance clamps to max_steps" 5_000 (Simulator.steps t);
  check_true "exhausted" (Simulator.exhausted t);
  let a = Simulator.finish t in
  let b = Simulator.finish t in
  check_true "finish is idempotent" (a == b);
  (* Batched stepping is bit-identical to one-shot running. *)
  Alcotest.(check string) "batched == one-shot"
    (Run_metrics.to_json
       (Run_metrics.of_result (Simulator.run ~seed:1L ~policy ~max_steps:5_000 image)))
    (Run_metrics.to_json (Run_metrics.of_result a))

let suite =
  [
    case "merged fleet == sequential solo runs (bit-identical)" merged_equals_sequential;
    case "outcome independent of domain count" domain_count_invariant;
    case "outcome independent of batch size (no budget)" batch_size_invariant_without_budget;
    case "shared budget: pressure, determinism, quota bound" shared_budget;
    case "shared budget bounds the aggregate footprint" budget_bounds_aggregate;
    case "edge cases" edge_cases;
    case "resumable handle semantics" handle_semantics;
  ]
