lib/workload/spec_vpr.ml: Builder Patterns Spec
