type t = {
  line_bytes : int;
  line_shift : int; (* log2 line_bytes when it is a power of two, else -1 *)
  n_sets : int;
  ways : int;
  tags : int array; (* n_sets * ways, -1 = invalid *)
  stamps : int array; (* LRU timestamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(size_bytes = 32 * 1024) ?(line_bytes = 64) ?(ways = 4) () =
  if size_bytes <= 0 || line_bytes <= 0 || ways <= 0 then
    invalid_arg "Icache.create: geometry must be positive";
  let n_lines = size_bytes / line_bytes in
  if n_lines mod ways <> 0 then invalid_arg "Icache.create: lines not divisible by ways";
  let n_sets = n_lines / ways in
  if not (is_power_of_two n_sets) then invalid_arg "Icache.create: set count must be a power of two";
  let line_shift =
    if is_power_of_two line_bytes then
      let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
      log2 line_bytes 0
    else -1
  in
  {
    line_bytes;
    line_shift;
    n_sets;
    ways;
    tags = Array.make (n_sets * ways) (-1);
    stamps = Array.make (n_sets * ways) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

(* Closed top-level helpers: a local [let rec] capturing [t]/[base] would
   allocate a closure on every access, which dominates the per-step cost. *)
let rec find_way tags base tag ways i =
  if i = ways then -1 else if Array.get tags (base + i) = tag then i else find_way tags base tag ways (i + 1)

let rec lru_way stamps base ways best i =
  if i = ways then best
  else
    let best = if Array.get stamps (base + i) < Array.get stamps (base + best) then i else best in
    lru_way stamps base ways best (i + 1)

let touch_line t line =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let set = line land (t.n_sets - 1) in
  let base = set * t.ways in
  if t.ways = 2 then begin
    (* The default geometry, on the per-step path: both ways checked
       inline, no way-scan calls.  [base + 1] is in bounds because [set <
       n_sets] and the arrays hold [n_sets * ways] slots.  Tie-breaking
       matches [lru_way]: way 1 is the victim only when strictly older. *)
    let tags = t.tags and stamps = t.stamps in
    if Array.unsafe_get tags base = line then Array.unsafe_set stamps base t.clock
    else if Array.unsafe_get tags (base + 1) = line then
      Array.unsafe_set stamps (base + 1) t.clock
    else begin
      t.misses <- t.misses + 1;
      let victim =
        if Array.unsafe_get stamps (base + 1) < Array.unsafe_get stamps base then base + 1
        else base
      in
      Array.unsafe_set tags victim line;
      Array.unsafe_set stamps victim t.clock
    end
  end
  else begin
    let i = find_way t.tags base line t.ways 0 in
    if i >= 0 then t.stamps.(base + i) <- t.clock
    else begin
      t.misses <- t.misses + 1;
      (* Evict the least-recently-used way. *)
      let victim = lru_way t.stamps base t.ways 0 1 in
      t.tags.(base + victim) <- line;
      t.stamps.(base + victim) <- t.clock
    end
  end

let access t ~addr ~bytes =
  if bytes > 0 then
    if t.line_shift >= 0 then begin
      (* Power-of-two lines: shift instead of two integer divisions, which
         are the single most expensive ALU ops on this per-step path. *)
      let first = addr lsr t.line_shift in
      let last = (addr + bytes - 1) lsr t.line_shift in
      for line = first to last do
        touch_line t line
      done
    end
    else begin
      let first = addr / t.line_bytes in
      let last = (addr + bytes - 1) / t.line_bytes in
      for line = first to last do
        touch_line t line
      done
    end

let accesses t = t.accesses
let misses t = t.misses
let miss_rate t = if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses
let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0

(* Checkpoint support.  Geometry is not saved — the restored cache must be
   created with the same parameters; the slot count is emitted as a guard
   so a geometry mismatch is caught instead of silently misfiling lines. *)

let save t emit =
  emit (Array.length t.tags);
  Array.iter emit t.tags;
  Array.iter emit t.stamps;
  emit t.clock;
  emit t.accesses;
  emit t.misses

let load t read =
  let n = read () in
  if n <> Array.length t.tags then failwith "Icache.load: geometry mismatch";
  for i = 0 to n - 1 do
    t.tags.(i) <- read ()
  done;
  for i = 0 to n - 1 do
    t.stamps.(i) <- read ()
  done;
  t.clock <- read ();
  t.accesses <- read ();
  t.misses <- read ()
