type t = {
  mutable observed_bytes : int;
  mutable high_water : int;
  mutable blacklisted : int;
  mutable blacklisted_high_water : int;
  mutable links : int;
  mutable links_high_water : int;
}

let create () =
  {
    observed_bytes = 0;
    high_water = 0;
    blacklisted = 0;
    blacklisted_high_water = 0;
    links = 0;
    links_high_water = 0;
  }

let add_observed_bytes t delta =
  t.observed_bytes <- t.observed_bytes + delta;
  assert (t.observed_bytes >= 0);
  if t.observed_bytes > t.high_water then t.high_water <- t.observed_bytes

let observed_bytes t = t.observed_bytes
let observed_bytes_high_water t = t.high_water

let set_blacklisted t n =
  t.blacklisted <- n;
  if n > t.blacklisted_high_water then t.blacklisted_high_water <- n

let blacklisted t = t.blacklisted
let blacklisted_high_water t = t.blacklisted_high_water

let set_links t n =
  t.links <- n;
  if n > t.links_high_water then t.links_high_water <- n

let links t = t.links
let links_high_water t = t.links_high_water

let save t emit =
  emit t.observed_bytes;
  emit t.high_water;
  emit t.blacklisted;
  emit t.blacklisted_high_water;
  emit t.links;
  emit t.links_high_water

let load t read =
  t.observed_bytes <- read ();
  t.high_water <- read ();
  t.blacklisted <- read ();
  t.blacklisted_high_water <- read ();
  t.links <- read ();
  t.links_high_water <- read ()
