lib/engine/params.ml: Format Printf
