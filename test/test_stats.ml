(* Stats snapshots: immutable copies and field-wise windows, the substrate
   the bailout watchdog and windowed telemetry read instead of live
   mutable counters. *)

module Stats = Regionsel_engine.Stats
open Fixtures

(* Touch every one of the 16 counters with a distinct prime so a copied or
   swapped field shows up as a wrong delta. *)
let bump (s : Stats.t) k =
  s.Stats.steps <- s.Stats.steps + (2 * k);
  s.Stats.interpreted_insts <- s.Stats.interpreted_insts + (3 * k);
  s.Stats.cached_insts <- s.Stats.cached_insts + (5 * k);
  s.Stats.taken_branches <- s.Stats.taken_branches + (7 * k);
  s.Stats.region_transitions <- s.Stats.region_transitions + (11 * k);
  s.Stats.dispatches <- s.Stats.dispatches + (13 * k);
  s.Stats.cache_exits_to_interp <- s.Stats.cache_exits_to_interp + (17 * k);
  s.Stats.installs <- s.Stats.installs + (19 * k);
  s.Stats.links <- s.Stats.links + (23 * k);
  s.Stats.link_hits <- s.Stats.link_hits + (29 * k);
  s.Stats.node_steps <- s.Stats.node_steps + (31 * k);
  s.Stats.install_rejects <- s.Stats.install_rejects + (37 * k);
  s.Stats.faults_injected <- s.Stats.faults_injected + (41 * k);
  s.Stats.async_exits <- s.Stats.async_exits + (43 * k);
  s.Stats.bailouts <- s.Stats.bailouts + (47 * k);
  s.Stats.recovery_steps <- s.Stats.recovery_steps + (53 * k)

let snapshot_is_frozen () =
  let s = Stats.create () in
  bump s 1;
  let snap = Stats.snapshot s in
  bump s 10;
  (* The copy must not move with the live record. *)
  Alcotest.(check int) "steps frozen" 2 snap.Stats.Snapshot.steps;
  Alcotest.(check int) "cached frozen" 5 snap.Stats.Snapshot.cached_insts;
  Alcotest.(check int) "recovery frozen" 53 snap.Stats.Snapshot.recovery_steps;
  Alcotest.(check int) "live record moved" 22 s.Stats.steps

let snapshot_copies_every_field () =
  let s = Stats.create () in
  bump s 1;
  let snap = Stats.snapshot s in
  Alcotest.(check int) "steps" s.Stats.steps snap.Stats.Snapshot.steps;
  Alcotest.(check int) "interpreted" s.Stats.interpreted_insts
    snap.Stats.Snapshot.interpreted_insts;
  Alcotest.(check int) "cached" s.Stats.cached_insts snap.Stats.Snapshot.cached_insts;
  Alcotest.(check int) "branches" s.Stats.taken_branches snap.Stats.Snapshot.taken_branches;
  Alcotest.(check int) "transitions" s.Stats.region_transitions
    snap.Stats.Snapshot.region_transitions;
  Alcotest.(check int) "dispatches" s.Stats.dispatches snap.Stats.Snapshot.dispatches;
  Alcotest.(check int) "exits" s.Stats.cache_exits_to_interp
    snap.Stats.Snapshot.cache_exits_to_interp;
  Alcotest.(check int) "installs" s.Stats.installs snap.Stats.Snapshot.installs;
  Alcotest.(check int) "links" s.Stats.links snap.Stats.Snapshot.links;
  Alcotest.(check int) "link hits" s.Stats.link_hits snap.Stats.Snapshot.link_hits;
  Alcotest.(check int) "node steps" s.Stats.node_steps snap.Stats.Snapshot.node_steps;
  Alcotest.(check int) "rejects" s.Stats.install_rejects snap.Stats.Snapshot.install_rejects;
  Alcotest.(check int) "faults" s.Stats.faults_injected snap.Stats.Snapshot.faults_injected;
  Alcotest.(check int) "async exits" s.Stats.async_exits snap.Stats.Snapshot.async_exits;
  Alcotest.(check int) "bailouts" s.Stats.bailouts snap.Stats.Snapshot.bailouts;
  Alcotest.(check int) "recovery" s.Stats.recovery_steps snap.Stats.Snapshot.recovery_steps

let diff_is_field_wise () =
  let s = Stats.create () in
  bump s 3;
  let earlier = Stats.snapshot s in
  bump s 4;
  let later = Stats.snapshot s in
  let d = Stats.diff ~earlier ~later in
  (* Each delta is prime * 4: the window's activity only. *)
  Alcotest.(check int) "steps" (2 * 4) d.Stats.Snapshot.steps;
  Alcotest.(check int) "interpreted" (3 * 4) d.Stats.Snapshot.interpreted_insts;
  Alcotest.(check int) "cached" (5 * 4) d.Stats.Snapshot.cached_insts;
  Alcotest.(check int) "branches" (7 * 4) d.Stats.Snapshot.taken_branches;
  Alcotest.(check int) "transitions" (11 * 4) d.Stats.Snapshot.region_transitions;
  Alcotest.(check int) "dispatches" (13 * 4) d.Stats.Snapshot.dispatches;
  Alcotest.(check int) "exits" (17 * 4) d.Stats.Snapshot.cache_exits_to_interp;
  Alcotest.(check int) "installs" (19 * 4) d.Stats.Snapshot.installs;
  Alcotest.(check int) "links" (23 * 4) d.Stats.Snapshot.links;
  Alcotest.(check int) "link hits" (29 * 4) d.Stats.Snapshot.link_hits;
  Alcotest.(check int) "node steps" (31 * 4) d.Stats.Snapshot.node_steps;
  Alcotest.(check int) "rejects" (37 * 4) d.Stats.Snapshot.install_rejects;
  Alcotest.(check int) "faults" (41 * 4) d.Stats.Snapshot.faults_injected;
  Alcotest.(check int) "async exits" (43 * 4) d.Stats.Snapshot.async_exits;
  Alcotest.(check int) "bailouts" (47 * 4) d.Stats.Snapshot.bailouts;
  Alcotest.(check int) "recovery" (53 * 4) d.Stats.Snapshot.recovery_steps

let diff_of_equal_snapshots_is_zero () =
  let s = Stats.create () in
  bump s 5;
  let snap = Stats.snapshot s in
  let d = Stats.diff ~earlier:snap ~later:snap in
  Alcotest.(check int) "steps zero" 0 d.Stats.Snapshot.steps;
  Alcotest.(check int) "cached zero" 0 d.Stats.Snapshot.cached_insts;
  Alcotest.(check int) "recovery zero" 0 d.Stats.Snapshot.recovery_steps

let diff_clamps_reloaded_counters () =
  (* A snapshot taken before a counter reload (checkpoint restore into a
     younger state, or a test harness recycling a [Stats.t]) can exceed
     the later one.  The window must read as empty activity, never as a
     negative delta that would corrupt rate math downstream. *)
  let s = Stats.create () in
  bump s 7;
  let earlier = Stats.snapshot s in
  let fresh = Stats.create () in
  bump fresh 2;
  let later = Stats.snapshot fresh in
  let d = Stats.diff ~earlier ~later in
  Alcotest.(check int) "steps clamped" 0 d.Stats.Snapshot.steps;
  Alcotest.(check int) "interpreted clamped" 0 d.Stats.Snapshot.interpreted_insts;
  Alcotest.(check int) "cached clamped" 0 d.Stats.Snapshot.cached_insts;
  Alcotest.(check int) "branches clamped" 0 d.Stats.Snapshot.taken_branches;
  Alcotest.(check int) "transitions clamped" 0 d.Stats.Snapshot.region_transitions;
  Alcotest.(check int) "dispatches clamped" 0 d.Stats.Snapshot.dispatches;
  Alcotest.(check int) "exits clamped" 0 d.Stats.Snapshot.cache_exits_to_interp;
  Alcotest.(check int) "installs clamped" 0 d.Stats.Snapshot.installs;
  Alcotest.(check int) "links clamped" 0 d.Stats.Snapshot.links;
  Alcotest.(check int) "link hits clamped" 0 d.Stats.Snapshot.link_hits;
  Alcotest.(check int) "node steps clamped" 0 d.Stats.Snapshot.node_steps;
  Alcotest.(check int) "rejects clamped" 0 d.Stats.Snapshot.install_rejects;
  Alcotest.(check int) "faults clamped" 0 d.Stats.Snapshot.faults_injected;
  Alcotest.(check int) "async exits clamped" 0 d.Stats.Snapshot.async_exits;
  Alcotest.(check int) "bailouts clamped" 0 d.Stats.Snapshot.bailouts;
  Alcotest.(check int) "recovery clamped" 0 d.Stats.Snapshot.recovery_steps

let diff_clamps_per_field_not_per_record () =
  (* The clamp is field-wise: counters that did advance across the window
     still report their delta even when a sibling field went backwards. *)
  let s = Stats.create () in
  bump s 3;
  let earlier = Stats.snapshot s in
  bump s 2;
  (* One counter "reloads" below its earlier value; the rest advanced. *)
  s.Stats.recovery_steps <- 1;
  let later = Stats.snapshot s in
  let d = Stats.diff ~earlier ~later in
  Alcotest.(check int) "advanced field reports its window" (2 * 2) d.Stats.Snapshot.steps;
  Alcotest.(check int) "advanced sibling unaffected" (5 * 2) d.Stats.Snapshot.cached_insts;
  Alcotest.(check int) "reloaded field clamps to zero" 0 d.Stats.Snapshot.recovery_steps

let suite =
  [
    case "snapshot is frozen" snapshot_is_frozen;
    case "snapshot copies every field" snapshot_copies_every_field;
    case "diff is field-wise" diff_is_field_wise;
    case "diff of equal snapshots is zero" diff_of_equal_snapshots_is_zero;
    case "diff clamps reloaded counters" diff_clamps_reloaded_counters;
    case "diff clamps per field, not per record" diff_clamps_per_field_not_per_record;
  ]
