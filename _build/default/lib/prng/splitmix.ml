type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy g = { state = g.state }

(* Finalization mix from the SplitMix64 reference implementation. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let seed = next_int64 g in
  { state = seed }

let bits30 g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 34)

let int g bound =
  assert (bound > 0);
  if bound <= 1 then 0
  else
    (* Rejection sampling over 30-bit values to avoid modulo bias. *)
    let limit = 0x4000_0000 - (0x4000_0000 mod bound) in
    let rec draw () =
      let v = bits30 g in
      if v < limit then v mod bound else draw ()
    in
    draw ()

let float g =
  (* 53 uniform bits, as in the reference double generator. *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 g) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let bool g = Int64.logand (next_int64 g) 1L = 1L

let bernoulli g ~p = if p >= 1.0 then true else if p <= 0.0 then false else float g < p

let categorical g ~weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  assert (Array.length weights > 0 && total > 0.0);
  let x = float g *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else scan (i + 1) acc
  in
  scan 0 0.0
