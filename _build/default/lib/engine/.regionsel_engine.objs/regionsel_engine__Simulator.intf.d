lib/engine/simulator.mli: Context Edge_profile Icache Params Policy Regionsel_workload Stats
