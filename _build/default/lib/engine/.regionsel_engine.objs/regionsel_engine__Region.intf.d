lib/engine/region.mli: Addr Block Format Hashtbl Regionsel_isa
