lib/workload/spec_gcc.ml: Behavior Builder List Patterns Printf Spec
