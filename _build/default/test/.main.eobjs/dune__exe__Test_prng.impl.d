test/test_prng.ml: Alcotest Array Fixtures Int64 List QCheck QCheck_alcotest Regionsel_prng
