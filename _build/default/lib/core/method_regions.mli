(** Whole-method region selection (extension).

    The paper's introduction contrasts trace-based systems with just-in-time
    compilers organised around whole methods (Jikes RVM).  This policy
    models that organisation inside the same framework: it profiles function
    entries (dynamic call targets, plus loop headers as an on-stack-
    replacement proxy attributed to their containing function) and, at the
    threshold, selects the {e whole function} as one multi-path region.

    Method regions exercise the engine's multi-entry support: a call inside
    a compiled method exits to the callee, and the return re-enters the
    method at the call's continuation (an auxiliary entry point), exactly
    as returns re-enter compiled code in a real JIT. *)

include Regionsel_engine.Policy.S
