(* The branch-stream seam: a run consuming a recording of itself must be
   bit-identical to the live run — the paper's substitution argument made
   executable.  Checked over the full (workload x policy) matrix, clean
   and under mixed faults, plus the on-disk codec's round-trip and
   corruption behaviour. *)

module Spec = Regionsel_workload.Spec
module Suite = Regionsel_workload.Suite
module Image = Regionsel_workload.Image
module Simulator = Regionsel_engine.Simulator
module Branch_stream = Regionsel_engine.Branch_stream
module Interp = Regionsel_engine.Interp
module Params = Regionsel_engine.Params
module Run_metrics = Regionsel_metrics.Run_metrics
module Policies = Regionsel_core.Policies
module Event_log = Regionsel_persist.Event_log
module Persist = Regionsel_persist.Persist
module Addr = Regionsel_isa.Addr
open Fixtures

let budget (spec : Spec.t) = min spec.Spec.default_steps 30_000

let tasks =
  List.concat_map
    (fun (spec : Spec.t) -> List.map (fun (p, _) -> spec, p) Policies.all)
    Suite.all

(* Live run recording its stream, then a replayed run over the recording:
   the two metric JSONs (fixed field order, lossless floats) must be
   byte-identical.  [to_json] equality is the strongest cheap comparison
   we have — it covers every exported metric. *)
let live_vs_replay ?params () =
  List.iter
    (fun ((spec : Spec.t), pname) ->
      let policy = Option.get (Policies.find pname) in
      let max_steps = budget spec in
      let image = Spec.image spec in
      let events = Branch_stream.recorder () in
      let live =
        Simulator.run ?params ~seed:1L ~record:events ~policy ~max_steps image
      in
      let replayed = Simulator.run ?params ~seed:1L ~replay:events ~policy ~max_steps image in
      let lj = Run_metrics.to_json (Run_metrics.of_result live) in
      let rj = Run_metrics.to_json (Run_metrics.of_result replayed) in
      if lj <> rj then
        Alcotest.failf "live vs replay diverged for %s under %s:\nlive:   %s\nreplay: %s"
          spec.Spec.name pname lj rj;
      (* Recording must also be pure observation: the recorded run's
         metrics equal an unrecorded run's. *)
      let plain = Simulator.run ?params ~seed:1L ~policy ~max_steps image in
      Alcotest.(check string)
        (Printf.sprintf "recording is pure observation (%s/%s)" spec.Spec.name pname)
        (Run_metrics.to_json (Run_metrics.of_result plain))
        lj)
    tasks

let matrix_clean () = live_vs_replay ()

let matrix_mixed_faults () =
  let faults = Params.fault_profile "mixed" in
  live_vs_replay ~params:{ Params.default with Params.faults } ()

(* The in-memory recorder API itself. *)
let recorder_basics () =
  let ev = Branch_stream.recorder () in
  check_int "empty" 0 (Branch_stream.length ev);
  (* Push enough events to force several growths past the initial array. *)
  for i = 0 to 4999 do
    Branch_stream.append_event ev ~block_id:(i mod 300) ~taken:(i mod 3 = 0)
      ~next:(if i mod 7 = 0 then Addr.none else i * 2)
  done;
  check_int "length" 5000 (Branch_stream.length ev);
  for i = 0 to 4999 do
    assert (Branch_stream.get_block_id ev i = i mod 300);
    assert (Branch_stream.get_taken ev i = (i mod 3 = 0));
    assert (Branch_stream.get_next ev i = if i mod 7 = 0 then Addr.none else i * 2)
  done;
  check_true "equal to itself" (Branch_stream.equal ev ev);
  let other = Branch_stream.recorder () in
  Branch_stream.iter
    (fun ~block_id ~taken ~next -> Branch_stream.append_event other ~block_id ~taken ~next)
    ev;
  check_true "iter rebuilds an equal recording" (Branch_stream.equal ev other);
  Branch_stream.append_event other ~block_id:1 ~taken:false ~next:Addr.none;
  check_true "longer recording differs" (not (Branch_stream.equal ev other));
  check_true "negative block id rejected"
    (try
       Branch_stream.append_event ev ~block_id:(-1) ~taken:false ~next:0;
       false
     with Invalid_argument _ -> true)

(* [of_events] delivers exactly the recorded events then reports a halt,
   and [of_interp] over a fresh interpreter reproduces the recording. *)
let stream_producers_agree () =
  let image = figure2 ~iters:500 () in
  let interp = Interp.create image ~seed:7L in
  let ev = Branch_stream.recorder () in
  let s = Interp.make_step () in
  let live = Branch_stream.of_interp interp in
  let n = ref 0 in
  while Branch_stream.next_into live s && !n < 100_000 do
    Branch_stream.append ev s;
    incr n
  done;
  check_true "program halted" (!n < 100_000);
  let replay = Branch_stream.of_events ev in
  let interp2 = Interp.create image ~seed:7L in
  let live2 = Branch_stream.of_interp interp2 in
  let a = Interp.make_step () and b = Interp.make_step () in
  let steps = ref 0 in
  let rec loop () =
    let ra = Branch_stream.next_into replay a in
    let rb = Branch_stream.next_into live2 b in
    check_true "streams end together" (ra = rb);
    if ra then begin
      incr steps;
      check_int "block id" b.Interp.block_id a.Interp.block_id;
      check_true "taken" (a.Interp.taken = b.Interp.taken);
      check_true "next" (Addr.equal a.Interp.next b.Interp.next);
      loop ()
    end
  in
  loop ();
  check_int "replay delivered every event" (Branch_stream.length ev) !steps

(* --- Event_log codec ------------------------------------------------ *)

let record_of (spec : Spec.t) pname =
  let policy = Option.get (Policies.find pname) in
  let events = Branch_stream.recorder () in
  ignore
    (Simulator.run ~seed:1L ~record:events ~policy ~max_steps:(budget spec)
       (Spec.image spec));
  events

let codec_round_trip () =
  List.iter
    (fun bench ->
      let spec = Option.get (Suite.find bench) in
      let program = (Spec.image spec).Image.program in
      let events = record_of spec "net" in
      let bytes = Event_log.encode ~program ~seed:1L events in
      let decoded = Event_log.decode bytes ~program ~seed:1L in
      check_true
        (Printf.sprintf "round trip (%s, %d events, %d bytes)" bench
           (Branch_stream.length events) (Bytes.length bytes))
        (Branch_stream.equal events decoded))
    [ "gzip"; "twolf"; "mcf" ]

let codec_file_round_trip () =
  let spec = Option.get (Suite.find "gzip") in
  let program = (Spec.image spec).Image.program in
  let events = record_of spec "net" in
  let path = Filename.temp_file "regionsel_events" ".revl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let size = Event_log.write_file ~path ~program ~seed:1L events in
      check_int "reported size is the file size" size
        (let ic = open_in_bin path in
         let n = in_channel_length ic in
         close_in ic;
         n);
      let decoded = Event_log.read_file ~path ~program ~seed:1L in
      check_true "file round trip" (Branch_stream.equal events decoded))

let expect_corruption what f =
  match f () with
  | (_ : Branch_stream.events) -> Alcotest.failf "%s: accepted instead of rejected" what
  | exception Persist.Hard_corruption _ -> ()
  | exception e ->
    Alcotest.failf "%s: raised %s instead of Hard_corruption" what (Printexc.to_string e)

let codec_rejects_corruption () =
  let spec = Option.get (Suite.find "gzip") in
  let program = (Spec.image spec).Image.program in
  let events = record_of spec "net" in
  let pristine = Event_log.encode ~program ~seed:1L events in
  let flip i bytes =
    let b = Bytes.copy bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    b
  in
  expect_corruption "bad magic" (fun () ->
      Event_log.decode (flip 0 pristine) ~program ~seed:1L);
  expect_corruption "header bit flip" (fun () ->
      Event_log.decode (flip 9 pristine) ~program ~seed:1L);
  expect_corruption "payload bit flip" (fun () ->
      Event_log.decode (flip 40 pristine) ~program ~seed:1L);
  expect_corruption "truncation" (fun () ->
      Event_log.decode (Bytes.sub pristine 0 (Bytes.length pristine / 2)) ~program ~seed:1L);
  expect_corruption "empty file" (fun () ->
      Event_log.decode Bytes.empty ~program ~seed:1L);
  (* Identity pinning: same bytes, wrong seed or wrong program. *)
  expect_corruption "seed mismatch" (fun () ->
      Event_log.decode pristine ~program ~seed:2L);
  let other = (Spec.image (Option.get (Suite.find "twolf"))).Image.program in
  expect_corruption "program mismatch" (fun () ->
      Event_log.decode pristine ~program:other ~seed:1L)

(* A corrupt recording must never reach the engine: the CLI contract is
   exit-code 5, here the exception at decode time. *)
let replay_after_round_trip_is_identical () =
  let spec = Option.get (Suite.find "twolf") in
  let image = Spec.image spec in
  let program = image.Image.program in
  let policy = Option.get (Policies.find "lei") in
  let max_steps = budget spec in
  let events = Branch_stream.recorder () in
  let live = Simulator.run ~seed:1L ~record:events ~policy ~max_steps image in
  let decoded = Event_log.decode (Event_log.encode ~program ~seed:1L events) ~program ~seed:1L in
  let replayed = Simulator.run ~seed:1L ~replay:decoded ~policy ~max_steps image in
  Alcotest.(check string) "replay through the codec is bit-identical"
    (Run_metrics.to_json (Run_metrics.of_result live))
    (Run_metrics.to_json (Run_metrics.of_result replayed))

let suite =
  [
    case "recorder basics" recorder_basics;
    case "producers agree (live vs recorded)" stream_producers_agree;
    case "matrix: live == replay, byte-identical" matrix_clean;
    case "matrix: live == replay under mixed faults" matrix_mixed_faults;
    case "event-log round trip" codec_round_trip;
    case "event-log file round trip" codec_file_round_trip;
    case "event-log rejects corruption and identity mismatch" codec_rejects_corruption;
    case "replay through the codec is bit-identical" replay_after_round_trip_is_identical;
  ]
