lib/engine/policy.mli: Addr Block Context Region Regionsel_isa
