lib/core/history_buffer.ml: Addr Array List Regionsel_isa
