test/test_report.ml: Alcotest Fixtures List Regionsel_report String
