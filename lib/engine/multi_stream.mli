(** The domain-sharded multi-stream scheduler.

    Multiplexes N independent tenant simulations — each with its own
    policy, stats, telemetry sink, fault schedule and PRNG stream — over
    OCaml 5 domains in bounded step batches ({!Domain_pool.iter} work
    stealing).  A run handle is owned by whichever domain is advancing it;
    domains synchronize only at batch barriers, where the main domain
    walks the tenants in submission order.  Every cross-tenant decision is
    a pure function of the barrier states, so the outcome is bit-identical
    whatever [n_domains] — and with no shared budget the tenants are fully
    independent: each tenant's result is bit-identical to running it alone
    through {!Simulator.run} (guarded by the multi-stream parity suite).

    With [budget_bytes], the tenants share a global code-cache byte
    budget.  Each barrier recomputes per-tenant quotas from the barrier
    footprints: the budget (less the frozen footprint of already-finished
    tenants) splits into fair shares; headroom the under-fair tenants are
    not using is granted to the over-fair ones, which otherwise evict down
    to their share ({!Code_cache.set_quota}) — cross-tenant eviction
    pressure.  Aggregate footprint never exceeds the budget at a barrier;
    between barriers it can transiently overshoot by at most the granted
    slack. *)

type tenant

val tenant :
  ?params:Params.t ->
  ?seed:int64 ->
  ?telemetry:Regionsel_telemetry.Telemetry.sink ->
  policy:(module Policy.S) ->
  max_steps:int ->
  name:string ->
  Regionsel_workload.Image.t ->
  tenant
(** One independent stream: the same arguments {!Simulator.run} takes,
    plus a [name] used to label its slot in the outcome. *)

val name : tenant -> string

type outcome = {
  results : (string * Simulator.result) list;
      (** One per tenant, in submission order. *)
  rounds : int;  (** Batch barriers executed. *)
  quota_rejects : int;
      (** Installs rejected as [Quota_exceeded], summed over tenants. *)
  quota_evictions : int;
      (** Regions evicted by quota tightening, summed over tenants. *)
}

val run :
  ?n_domains:int ->
  ?batch_steps:int ->
  ?budget_bytes:int ->
  ?on_barrier:(round:int -> (string * Simulator.t) array -> unit) ->
  tenant list ->
  outcome
(** [run tenants] advances every tenant to completion in [batch_steps]
    batches (default 4096) over up to [n_domains] domains (default
    {!Domain_pool.default_n_domains}).  An empty list is a no-op outcome.

    [on_barrier] is the metrics observation point: called on the main
    domain at the end of every round — after the batch advance joins and
    after any quota rebalance — with the 1-based round number and this
    round's participants (name, handle) in submission order.  The hook
    may read tenant state ({!Simulator.sample}, {!Simulator.steps},
    {!Simulator.cache_bytes_used}) but must mutate nothing simulated;
    everything it can observe is a pure function of the barrier states,
    so what it sees is bit-identical whatever [n_domains].

    @raise Invalid_argument on [batch_steps <= 0] or a negative budget. *)
