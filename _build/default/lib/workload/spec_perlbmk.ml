(* 253.perlbmk: the Perl interpreter.  An opcode-dispatch loop whose
   indirect jump fans out to many warm handlers: a single trace can follow
   only one handler, so NET and LEI both split the dispatch across many
   separated traces, while trace combination can keep several handlers in
   one region — a strong combination winner. *)

let build () =
  let b = Builder.create () in
  Patterns.dispatch_loop b ~name:"runops" ~trip:400
    ~cases:
      [
        6, 4.0; 5, 3.0; 7, 2.5; 4, 2.0; 6, 1.5; 5, 1.0; 8, 0.8; 4, 0.6;
        6, 0.4; 5, 0.3; 7, 0.2; 4, 0.1;
      ];
  Patterns.nested_loop b ~name:"regmatch" ~outer_trip:20 ~inner_trip:40 ~body_size:4;
  Patterns.leaf b ~name:"sv_grow" ~size:7;
  Patterns.composite_loop b ~name:"string_ops" ~trip:160
    ~body:
      [
        Patterns.Straight 5;
        Patterns.Call_to "sv_grow";
        Patterns.Diamond { Patterns.bias = 0.8; side_size = 4 };
        Patterns.Straight 4;
      ];
  Patterns.spaced_loop b ~name:"gv_fetch" ~body_size:5;
  Patterns.cold_farm b ~name:"op_pool" ~n:12 ~body_size:5;
  Patterns.driver b ~name:"main"
    ~weights:[ "gv_fetch", 0.2; "op_pool", 0.1 ]
    [ "runops"; "regmatch"; "string_ops"; "gv_fetch"; "op_pool" ];
  Builder.compile b ~name:"perlbmk" ~entry:"main"

let spec =
  Spec.make ~name:"perlbmk"
    ~description:
      "253.perlbmk stand-in: opcode dispatch through an indirect jump with a dozen warm \
       handlers; traces split per handler, combination merges them"
    ~steps:900_000 build
