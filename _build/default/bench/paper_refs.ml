(* Reference values quoted or read off the paper's figures, used to print
   paper-vs-measured comparisons.  Figures give bar heights, so averages
   are the numbers the text states and per-benchmark values are
   approximate. *)

(* Section 3.2.1 / Figure 7: LEI raises the proportion of cycle-spanning
   traces "by nearly 5%" overall. *)
let fig7_spanned_increase_avg = 0.05

(* Section 3.2.2 / Figure 8. *)
let fig8_expansion_ratio_avg = 0.92
let fig8_transitions_ratio_avg = 0.80

(* Section 3.2.3 / Figure 9: average 18% cover-set reduction. *)
let fig9_cover_ratio_avg = 0.82

(* Section 3.2.4 / Figure 10: LEI needs about two-thirds of NET's
   counters. *)
let fig10_counters_ratio_avg = 0.66

(* Section 4.1 / Figures 11 and 12. *)
let fig11_dup_fraction_range = 0.01, 0.07
let fig12_dominated_net_avg = 0.15
let fig12_dominated_lei_avg = 0.22

(* Section 4.3.2 / Figure 16. *)
let fig16_transitions_cnet_avg = 0.85
let fig16_transitions_clei_avg = 0.64

(* Section 4.3.2 text: combined expansion relative to the base policy. *)
let expansion_cnet_avg = 0.98
let expansion_clei_avg = 0.99

(* Section 4.3.3 / Figure 17. *)
let fig17_cover_cnet_avg = 0.85
let fig17_cover_clei_avg = 0.72

(* Section 4.3.4 / Figure 18: observed-trace memory as a share of the
   estimated cache size. *)
let fig18_memory_cnet_avg = 0.06
let fig18_memory_cnet_max = 0.12
let fig18_memory_clei_avg = 0.13
let fig18_memory_clei_max = 0.18

(* Section 4.3.4 / Figure 19. *)
let fig19_stubs_cnet_avg = 0.82
let fig19_stubs_clei_avg = 0.74

(* Section 4.3.1 text. *)
let exit_dom_dup_reduction = 0.65
let exit_dom_region_reduction = 0.40

(* Section 3.2 text: hit rates. *)
let hit_net_mcf = 0.9980
let hit_lei_mcf = 0.9831
let hit_net_gcc = 0.9937
let hit_lei_gcc = 0.9898

(* Section 6: combined LEI versus the NET baseline. *)
let summary_expansion = 0.91
let summary_stubs = 0.68
let summary_transitions = 0.50
let summary_cover = 0.56
