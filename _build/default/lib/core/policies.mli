(** Registry of the available region-selection policies. *)

val net : (module Regionsel_engine.Policy.S)
val lei : (module Regionsel_engine.Policy.S)
val combined_net : (module Regionsel_engine.Policy.S)
val combined_lei : (module Regionsel_engine.Policy.S)
val mojo : (module Regionsel_engine.Policy.S)
val boa : (module Regionsel_engine.Policy.S)
val jit_method : (module Regionsel_engine.Policy.S)

val all : (string * (module Regionsel_engine.Policy.S)) list
(** Every policy, keyed by its name. *)

val paper : (string * (module Regionsel_engine.Policy.S)) list
(** The four policies evaluated in the paper: net, lei, combined-net,
    combined-lei. *)

val find : string -> (module Regionsel_engine.Policy.S) option
