(* The abstract branch-event stream of the paper's substitution table:
   every selection algorithm consumes only (block, taken?, target) plus
   static layout, so the hot loop does not care whether events come from
   the live interpreter or a recording.  Events are delivered through the
   caller's reusable [Interp.step] record — same discipline as the step
   loop itself — so a stream costs no allocation per event. *)

(* In-memory recording: two parallel int arrays, doubling on demand.  One
   slot packs the dense block id with the taken flag; the other holds the
   successor address verbatim ([Addr.none] on a halt), so appending is two
   stores and replaying is two loads. *)
type events = {
  mutable packed : int array; (* (block_id lsl 1) lor taken *)
  mutable next : int array; (* successor start address, or Addr.none *)
  mutable len : int;
}

type t = Interp.step -> bool

let recorder () = { packed = Array.make 1024 0; next = Array.make 1024 0; len = 0 }

let grow ev =
  let cap = Array.length ev.packed in
  let packed = Array.make (2 * cap) 0 in
  let next = Array.make (2 * cap) 0 in
  Array.blit ev.packed 0 packed 0 ev.len;
  Array.blit ev.next 0 next 0 ev.len;
  ev.packed <- packed;
  ev.next <- next

let append_event ev ~block_id ~taken ~next =
  if block_id < 0 then invalid_arg "Branch_stream.append_event: negative block id";
  if ev.len = Array.length ev.packed then grow ev;
  ev.packed.(ev.len) <- (block_id lsl 1) lor (if taken then 1 else 0);
  ev.next.(ev.len) <- next;
  ev.len <- ev.len + 1

let append ev (s : Interp.step) =
  append_event ev ~block_id:s.Interp.block_id ~taken:s.Interp.taken ~next:s.Interp.next

let length ev = ev.len

let get_block_id ev i = ev.packed.(i) lsr 1
let get_taken ev i = ev.packed.(i) land 1 = 1
let get_next ev i = ev.next.(i)

let iter f ev =
  for i = 0 to ev.len - 1 do
    f ~block_id:(get_block_id ev i) ~taken:(get_taken ev i) ~next:(get_next ev i)
  done

let equal a b =
  a.len = b.len
  &&
  let rec go i =
    i >= a.len
    || (a.packed.(i) = b.packed.(i) && a.next.(i) = b.next.(i) && go (i + 1))
  in
  go 0

let of_interp interp : t = fun s -> Interp.step_into interp s

(* Replaying holds one mutable cursor in the closure; past the end the
   stream reports a halt, exactly like an interpreter whose program
   finished. *)
let of_events ev : t =
  let cursor = ref 0 in
  fun s ->
    let i = !cursor in
    if i >= ev.len then false
    else begin
      let p = Array.unsafe_get ev.packed i in
      s.Interp.block_id <- p lsr 1;
      s.Interp.taken <- p land 1 = 1;
      s.Interp.next <- Array.unsafe_get ev.next i;
      cursor := i + 1;
      true
    end

let next_into (t : t) s = t s
