module Simulator = Regionsel_engine.Simulator
module Stats = Regionsel_engine.Stats
module Region = Regionsel_engine.Region
module Code_cache = Regionsel_engine.Code_cache
module Context = Regionsel_engine.Context
module Counters = Regionsel_engine.Counters
module Gauges = Regionsel_engine.Gauges
module Edge_profile = Regionsel_engine.Edge_profile
module Image = Regionsel_workload.Image

type t = {
  benchmark : string;
  policy : string;
  steps : int;
  halted : bool;
  total_insts : int;
  hit_rate : float;
  n_regions : int;
  code_expansion : int;
  n_stubs : int;
  avg_region_insts : float;
  spanned_cycle_ratio : float;
  executed_cycle_ratio : float;
  region_transitions : int;
  dispatches : int;
  cover_90 : int;
  cover_90_achievable : bool;
  counters_high_water : int;
  observed_bytes_high_water : int;
  est_cache_bytes : int;
  exit_dominated_regions : int;
  exit_dominated_fraction : float;
  exit_dominated_dup_insts : int;
  exit_dominated_dup_fraction : float;
  links : int;
  link_hits : int;
  link_severs : int;
  links_high_water : int;
  node_steps : int;
  icache_accesses : int;
  icache_misses : int;
  icache_miss_rate : float;
  evictions : int;
  cache_flushes : int;
  regenerations : int;
  invalidations : int;
  blacklist_hits : int;
  install_rejects : int;
  faults_injected : int;
  async_exits : int;
  bailouts : int;
  recovery_steps : int;
  blacklisted_high_water : int;
  telemetry : (int * int * int * int) option;
}

let inst_bytes = Region.inst_bytes
let stub_bytes = Region.stub_bytes

let of_result ?(x = 0.9) (result : Simulator.result) =
  let cache = result.Simulator.ctx.Context.cache in
  (* Metrics cover every region ever selected, including any retired by a
     bounded cache. *)
  let regions = Code_cache.all_regions cache in
  let n_regions = List.length regions in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 regions in
  let code_expansion = sum (fun (r : Region.t) -> r.Region.copied_insts) in
  let n_stubs = sum (fun (r : Region.t) -> r.Region.n_stubs) in
  let n_cyclic =
    List.length (List.filter (fun (r : Region.t) -> r.Region.spans_cycle) regions)
  in
  let cycles = sum (fun (r : Region.t) -> r.Region.cycle_iters) in
  let exits = sum (fun (r : Region.t) -> r.Region.exits) in
  let total_insts = Stats.total_insts result.Simulator.stats in
  let cover = Cover.compute ~x ~total_insts regions in
  let dom =
    Exit_domination.analyze ~regions ~preds:(Edge_profile.preds result.Simulator.edges)
  in
  let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den in
  {
    benchmark = result.Simulator.image.Image.name;
    policy = result.Simulator.policy_name;
    steps = result.Simulator.stats.Stats.steps;
    halted = result.Simulator.halted;
    total_insts;
    hit_rate = Stats.hit_rate result.Simulator.stats;
    n_regions;
    code_expansion;
    n_stubs;
    avg_region_insts = ratio code_expansion n_regions;
    spanned_cycle_ratio = ratio n_cyclic n_regions;
    executed_cycle_ratio = ratio cycles (cycles + exits);
    region_transitions = result.Simulator.stats.Stats.region_transitions;
    dispatches = result.Simulator.stats.Stats.dispatches;
    cover_90 = cover.Cover.size;
    cover_90_achievable = cover.Cover.achievable;
    counters_high_water = Counters.high_water result.Simulator.ctx.Context.counters;
    observed_bytes_high_water =
      Gauges.observed_bytes_high_water result.Simulator.ctx.Context.gauges;
    est_cache_bytes = (code_expansion * inst_bytes) + (n_stubs * stub_bytes);
    exit_dominated_regions = dom.Exit_domination.n_dominated;
    exit_dominated_fraction = dom.Exit_domination.dominated_fraction;
    exit_dominated_dup_insts = dom.Exit_domination.dup_insts;
    exit_dominated_dup_fraction = dom.Exit_domination.dup_fraction;
    links = result.Simulator.stats.Stats.links;
    link_hits = result.Simulator.stats.Stats.link_hits;
    link_severs = Code_cache.link_severs cache;
    links_high_water = Gauges.links_high_water result.Simulator.ctx.Context.gauges;
    node_steps = result.Simulator.stats.Stats.node_steps;
    icache_accesses = Regionsel_engine.Icache.accesses result.Simulator.icache;
    icache_misses = Regionsel_engine.Icache.misses result.Simulator.icache;
    icache_miss_rate = Regionsel_engine.Icache.miss_rate result.Simulator.icache;
    evictions = Code_cache.evictions cache;
    cache_flushes = Code_cache.flushes cache;
    regenerations = Code_cache.regenerations cache;
    invalidations = Code_cache.invalidations cache;
    blacklist_hits = Code_cache.blacklist_hits cache;
    install_rejects = result.Simulator.stats.Stats.install_rejects;
    faults_injected = result.Simulator.stats.Stats.faults_injected;
    async_exits = result.Simulator.stats.Stats.async_exits;
    bailouts = result.Simulator.stats.Stats.bailouts;
    recovery_steps = result.Simulator.stats.Stats.recovery_steps;
    blacklisted_high_water =
      Gauges.blacklisted_high_water result.Simulator.ctx.Context.gauges;
    (* Ring-loss and span-ledger visibility without exporting a trace
       file.  Only populated when the run carried a sink: a sink-less
       run's JSON must stay byte-identical to pre-telemetry output. *)
    telemetry =
      (match result.Simulator.ctx.Context.telemetry with
      | None -> None
      | Some tel ->
        Some
          ( Regionsel_telemetry.Telemetry.n_emitted tel,
            Regionsel_telemetry.Telemetry.n_dropped tel,
            Regionsel_telemetry.Telemetry.n_open_spans tel,
            List.length (Regionsel_telemetry.Telemetry.spans tel) ));
  }

(* Machine-readable dump: fixed field order, [%.17g] floats (lossless for
   binary64), so two runs with identical metrics produce byte-identical
   JSON — the checkpoint round-trip gate in CI diffs this output. *)
let to_json t =
  let b = Buffer.create 1024 in
  let first = ref true in
  let field k v =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b (Printf.sprintf "  %S: %s" k v)
  in
  let str k v = field k (Printf.sprintf "%S" v) in
  let int k v = field k (string_of_int v) in
  let boolean k v = field k (if v then "true" else "false") in
  let flt k v = field k (if Float.is_finite v then Printf.sprintf "%.17g" v else "null") in
  Buffer.add_string b "{\n";
  str "benchmark" t.benchmark;
  str "policy" t.policy;
  int "steps" t.steps;
  boolean "halted" t.halted;
  int "total_insts" t.total_insts;
  flt "hit_rate" t.hit_rate;
  int "n_regions" t.n_regions;
  int "code_expansion" t.code_expansion;
  int "n_stubs" t.n_stubs;
  flt "avg_region_insts" t.avg_region_insts;
  flt "spanned_cycle_ratio" t.spanned_cycle_ratio;
  flt "executed_cycle_ratio" t.executed_cycle_ratio;
  int "region_transitions" t.region_transitions;
  int "dispatches" t.dispatches;
  int "cover_90" t.cover_90;
  boolean "cover_90_achievable" t.cover_90_achievable;
  int "counters_high_water" t.counters_high_water;
  int "observed_bytes_high_water" t.observed_bytes_high_water;
  int "est_cache_bytes" t.est_cache_bytes;
  int "exit_dominated_regions" t.exit_dominated_regions;
  flt "exit_dominated_fraction" t.exit_dominated_fraction;
  int "exit_dominated_dup_insts" t.exit_dominated_dup_insts;
  flt "exit_dominated_dup_fraction" t.exit_dominated_dup_fraction;
  int "links" t.links;
  int "link_hits" t.link_hits;
  int "link_severs" t.link_severs;
  int "links_high_water" t.links_high_water;
  int "node_steps" t.node_steps;
  int "icache_accesses" t.icache_accesses;
  int "icache_misses" t.icache_misses;
  flt "icache_miss_rate" t.icache_miss_rate;
  int "evictions" t.evictions;
  int "cache_flushes" t.cache_flushes;
  int "regenerations" t.regenerations;
  int "invalidations" t.invalidations;
  int "blacklist_hits" t.blacklist_hits;
  int "install_rejects" t.install_rejects;
  int "faults_injected" t.faults_injected;
  int "async_exits" t.async_exits;
  int "bailouts" t.bailouts;
  int "recovery_steps" t.recovery_steps;
  int "blacklisted_high_water" t.blacklisted_high_water;
  (match t.telemetry with
  | None -> ()
  | Some (emitted, dropped, spans_open, spans_closed) ->
    int "telemetry_events_emitted" emitted;
    int "telemetry_events_dropped" dropped;
    int "telemetry_spans_open" spans_open;
    int "telemetry_spans_closed" spans_closed);
  Buffer.add_string b "\n}";
  Buffer.contents b

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s / %s:@,\
    \  steps=%d halted=%b total_insts=%d@,\
    \  hit_rate=%.4f regions=%d expansion=%d stubs=%d avg_region=%.1f@,\
    \  spanned_cycle=%.3f executed_cycle=%.3f transitions=%d dispatches=%d@,\
    \  cover90=%d%s counters_hw=%d observed_hw=%dB cache=%dB@,\
    \  exit_dom regions=%d (%.3f) dup_insts=%d (%.3f)@,\
    \  links=%d link_hits=%d link_severs=%d links_hw=%d node_steps=%d@]" t.benchmark t.policy
    t.steps t.halted t.total_insts t.hit_rate t.n_regions t.code_expansion t.n_stubs
    t.avg_region_insts t.spanned_cycle_ratio t.executed_cycle_ratio t.region_transitions
    t.dispatches t.cover_90
    (if t.cover_90_achievable then "" else "(unachievable)")
    t.counters_high_water t.observed_bytes_high_water t.est_cache_bytes t.exit_dominated_regions
    t.exit_dominated_fraction t.exit_dominated_dup_insts t.exit_dominated_dup_fraction t.links
    t.link_hits t.link_severs t.links_high_water t.node_steps;
  if t.faults_injected > 0 then
    Format.fprintf ppf
      "@\n\
      \  faults=%d invalidations=%d blacklist_hits=%d rejects=%d async_exits=%d bailouts=%d \
       recovery_steps=%d blacklisted_hw=%d"
      t.faults_injected t.invalidations t.blacklist_hits t.install_rejects t.async_exits
      t.bailouts t.recovery_steps t.blacklisted_high_water
