(** The view of the system a region-selection policy operates on. *)

open Regionsel_isa

type t = {
  program : Program.t;
  params : Params.t;
  cache : Code_cache.t;
  counters : Counters.t;
  gauges : Gauges.t;
}

val create : ?params:Params.t -> Program.t -> t
