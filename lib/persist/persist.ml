open Regionsel_isa
module Simulator = Regionsel_engine.Simulator
module Context = Regionsel_engine.Context
module Bitbuf = Regionsel_core.Bitbuf

exception Hard_corruption of string

type degraded = { section : string; reason : string }
type report = { restored : string list; degraded : degraded list; skipped : int }

let clean r = r.degraded = []

(* CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc_update c bytes ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref c in
  for i = pos to pos + len - 1 do
    c := Array.unsafe_get table ((!c lxor Char.code (Bytes.get bytes i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c

let crc32 bytes ~pos ~len = crc_update 0xFFFFFFFF bytes ~pos ~len lxor 0xFFFFFFFF

(* A section's checksum covers its 12-byte frame header (tag, version,
   payload length) and the payload.  Covering the header matters: a bit
   flip in the tag would otherwise turn a known section into a
   silently-skipped "unknown" one — data loss with a clean report. *)
let crc32_frame bytes ~hpos ~ppos ~plen =
  crc_update (crc_update 0xFFFFFFFF bytes ~pos:hpos ~len:12) bytes ~pos:ppos ~len:plen
  lxor 0xFFFFFFFF

(* Every quantity in the file is a big-endian u32; OCaml ints ride as two
   of them, low word first then the high 31 bits ([asr 32] keeps the sign
   in bit 30), which reconstructs every 63-bit int exactly. *)

let bu32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let emit_int w v =
  Bitbuf.Writer.add_uint32 w (v land 0xFFFFFFFF);
  Bitbuf.Writer.add_uint32 w ((v asr 32) land 0x7FFFFFFF)

let read_int r =
  let lo = Bitbuf.Reader.read_uint32 r in
  let hi = Bitbuf.Reader.read_uint32 r in
  if hi > 0x7FFFFFFF then failwith "malformed int (high half out of range)";
  (hi lsl 32) lor lo

let magic = "RSNP"
let format_version = 1
let section_version = 1

(* Stable tag table.  New sections append new tags; a reader skips tags it
   does not know, so adding one never breaks older snapshots. *)
let tags =
  [
    (1, "interp");
    (2, "stats");
    (3, "edges");
    (4, "icache");
    (5, "counters");
    (6, "gauges");
    (7, "cache");
    (8, "blacklist");
    (9, "policy");
    (10, "telemetry");
    (11, "loop");
  ]

let tag_of_section name =
  match List.find_opt (fun (_, n) -> String.equal n name) tags with
  | Some (t, _) -> t
  | None -> invalid_arg ("Persist: section has no tag: " ^ name)

let section_of_tag tag = Option.map snd (List.find_opt (fun (t, _) -> t = tag) tags)

let seed_lo seed = Int64.to_int (Int64.logand seed 0xFFFFFFFFL)
let seed_hi seed = Int64.to_int (Int64.shift_right_logical seed 32)

let encode ~seed ~policy (internals : Simulator.internals) =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf magic;
  bu32 buf format_version;
  bu32 buf (Program.n_blocks internals.Simulator.int_ctx.Context.program);
  bu32 buf (seed_lo seed);
  bu32 buf (seed_hi seed);
  bu32 buf (String.length policy);
  Buffer.add_string buf policy;
  (* The section count makes a truncation at an exact frame boundary
     detectable: without it, a snapshot cut between frames parses as a
     shorter-but-valid file and the missing tail would re-warm silently. *)
  bu32 buf (List.length internals.Simulator.int_sections);
  let header = Buffer.to_bytes buf in
  bu32 buf (crc32 header ~pos:0 ~len:(Bytes.length header));
  List.iter
    (fun (s : Simulator.section) ->
      let w = Bitbuf.Writer.create () in
      s.Simulator.sec_save (emit_int w);
      let payload = Bitbuf.Writer.contents w in
      let len = Bytes.length payload in
      let hdr = Buffer.create 12 in
      bu32 hdr (tag_of_section s.Simulator.sec_name);
      bu32 hdr section_version;
      bu32 hdr len;
      let hdr = Buffer.to_bytes hdr in
      let framed = Bytes.cat hdr payload in
      Buffer.add_bytes buf hdr;
      bu32 buf (crc32_frame framed ~hpos:0 ~ppos:12 ~plen:len);
      Buffer.add_bytes buf payload)
    internals.Simulator.int_sections;
  Buffer.to_bytes buf

let decode_into bytes ~seed ~policy (internals : Simulator.internals) =
  let len = Bytes.length bytes in
  let pos = ref 0 in
  let hard msg = raise (Hard_corruption msg) in
  let u32 () =
    let v =
      (Char.code (Bytes.get bytes !pos) lsl 24)
      lor (Char.code (Bytes.get bytes (!pos + 1)) lsl 16)
      lor (Char.code (Bytes.get bytes (!pos + 2)) lsl 8)
      lor Char.code (Bytes.get bytes (!pos + 3))
    in
    pos := !pos + 4;
    v
  in
  let u32_hard what = if !pos + 4 > len then hard ("truncated header: " ^ what) else u32 () in
  if len < 4 || not (String.equal (Bytes.sub_string bytes 0 4) magic) then hard "bad magic";
  pos := 4;
  let ver = u32_hard "format version" in
  if ver <> format_version then
    hard (Printf.sprintf "unsupported format version %d (this build reads %d)" ver format_version);
  let n_blocks = u32_hard "block count" in
  let slo = u32_hard "seed" in
  let shi = u32_hard "seed" in
  let name_len = u32_hard "policy name length" in
  if !pos + name_len > len then hard "truncated header: policy name";
  let snap_policy = Bytes.sub_string bytes !pos name_len in
  pos := !pos + name_len;
  let n_sections = u32_hard "section count" in
  let header_end = !pos in
  let header_crc = u32_hard "header checksum" in
  if header_crc <> crc32 bytes ~pos:0 ~len:header_end then hard "header checksum mismatch";
  let run_blocks = Program.n_blocks internals.Simulator.int_ctx.Context.program in
  if n_blocks <> run_blocks then
    hard
      (Printf.sprintf "snapshot is for a different program (%d blocks, this run has %d)"
         n_blocks run_blocks);
  let snap_seed = Int64.logor (Int64.of_int slo) (Int64.shift_left (Int64.of_int shi) 32) in
  if not (Int64.equal snap_seed seed) then
    hard (Printf.sprintf "snapshot seed %Ld does not match this run's seed %Ld" snap_seed seed);
  if not (String.equal snap_policy policy) then
    hard
      (Printf.sprintf "snapshot policy %S does not match this run's policy %S" snap_policy
         policy);
  let restored = ref [] in
  let degraded = ref [] in
  let skipped = ref 0 in
  let drop section reason = degraded := { section; reason } :: !degraded in
  let find_section n =
    List.find_opt
      (fun (s : Simulator.section) -> String.equal s.Simulator.sec_name n)
      internals.Simulator.int_sections
  in
  let seen = ref 0 in
  let stop = ref false in
  while (not !stop) && !pos < len do
    incr seen;
    if !pos + 16 > len then begin
      drop "<frame>" "truncated section header";
      stop := true
    end
    else begin
      let fpos = !pos in
      let tag = u32 () in
      let sver = u32 () in
      let plen = u32 () in
      let pcrc = u32 () in
      let sec_name =
        match section_of_tag tag with Some n -> n | None -> Printf.sprintf "tag-%d" tag
      in
      if !pos + plen > len then begin
        drop sec_name "truncated payload";
        stop := true
      end
      else begin
        let ppos = !pos in
        pos := !pos + plen;
        if pcrc <> crc32_frame bytes ~hpos:fpos ~ppos ~plen then
          drop sec_name "checksum mismatch"
        else
          match find_section sec_name with
          | None ->
            (* Unknown tag, or a section this run has no home for (e.g. a
               telemetry section restored into a run without a sink).
               The checksum above already vouched for the frame, so this
               is version skew or configuration skew, not corruption. *)
            incr skipped
          | Some s ->
            if sver <> section_version then
              drop sec_name (Printf.sprintf "unsupported section version %d" sver)
            else begin
            let payload = Bytes.sub bytes ppos plen in
            let r = Bitbuf.Reader.create payload ~n_bits:(plen * 8) in
            match s.Simulator.sec_load (fun () -> read_int r) with
            | () -> restored := sec_name :: !restored
            | exception Failure msg -> drop sec_name msg
            | exception Invalid_argument msg -> drop sec_name msg
            | exception Bitbuf.Reader.Out_of_bits -> drop sec_name "payload too short"
          end
      end
    end
  done;
  if !seen < n_sections then
    drop "<file>"
      (Printf.sprintf "snapshot ends after %d of %d sections" !seen n_sections);
  { restored = List.rev !restored; degraded = List.rev !degraded; skipped = !skipped }

let save_file ?crash_after_bytes ~path ~seed ~policy internals =
  Io.write_atomic ?crash_after_bytes ~path (encode ~seed ~policy internals)

(* Daemon session naming: one snapshot file per (tenant, bench, policy,
   seed) identity.  The tenant name is sanitized into a filesystem-safe
   stem; the rest of the identity rides as a CRC32 suffix, so a tenant
   reconnecting under a different bench/policy/seed resolves to a fresh
   session instead of tripping the snapshot header's identity check. *)
let session_file ~dir ~tenant ~bench ~policy ~seed =
  let stem =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
        | _ -> '_')
      tenant
  in
  let stem = if stem = "" then "tenant" else stem in
  let ident = Bytes.of_string (Printf.sprintf "%s|%s|%s|%Ld" tenant bench policy seed) in
  Filename.concat dir
    (Printf.sprintf "%s-%08x.session" stem (crc32 ident ~pos:0 ~len:(Bytes.length ident)))

let restore_file ~path ~seed ~policy internals =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let data = really_input_string ic n in
      decode_into (Bytes.of_string data) ~seed ~policy internals)
