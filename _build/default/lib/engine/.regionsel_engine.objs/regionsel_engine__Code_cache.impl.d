lib/engine/code_cache.ml: Addr List Params Printf Region Regionsel_isa
