lib/metrics/cover.mli: Regionsel_engine
