(* Cache lifecycle tests: Flush_all vs Evict_oldest, regeneration counting,
   aux-entry retirement, and the fault-recovery paths (invalidation,
   blacklisting, translation failures, flat dispatch). *)

open Regionsel_isa
module Region = Regionsel_engine.Region
module Code_cache = Regionsel_engine.Code_cache
module Params = Regionsel_engine.Params
open Fixtures

let mk start size term = Block.make ~start ~size ~term

let spec_at ?(size = 10) start =
  Region.spec_of_path ~kind:Region.Trace
    { Region.blocks = [ mk start size Terminator.Return ]; final_next = None }

let region_cost = (10 * Region.inst_bytes) + Region.stub_bytes

(* A cache whose blacklist never bites, for tests about other machinery. *)
let plain_cache ?capacity_bytes ?eviction ?program () =
  Code_cache.create ?capacity_bytes ?eviction ~blacklist_base_cooldown:0 ?program ()

let entry_of (r : Region.t) = r.Region.entry

(* Eviction policies *)

let flush_all_returns_victims () =
  let cache =
    plain_cache ~capacity_bytes:(3 * region_cost) ~eviction:Params.Flush_all ()
  in
  for i = 0 to 2 do
    ignore (Code_cache.install_exn cache (spec_at (i * 16)))
  done;
  ignore (Code_cache.install_exn cache (spec_at 100));
  check_int "one flush" 1 (Code_cache.flushes cache);
  check_int "three evictions" 3 (Code_cache.evictions cache);
  check_int "only the newcomer lives" 1 (Code_cache.n_regions cache);
  check_true "newcomer dispatchable" (Code_cache.find cache 100 <> None)

let fifo_skips_tombstones () =
  (* Invalidating the oldest region leaves a tombstone in the FIFO; the
     next capacity eviction must skip it and take the oldest *live*
     region, and the skipped tombstone costs no extra eviction. *)
  let cache =
    plain_cache ~capacity_bytes:(3 * region_cost) ~eviction:Params.Evict_oldest ()
  in
  for i = 0 to 2 do
    ignore (Code_cache.install_exn cache (spec_at (i * 16)))
  done;
  (* Retire region 0 (blocks [0,9]) out of band via invalidation. *)
  let retired = Code_cache.invalidate_range cache ~lo:0 ~hi:0 in
  check_int "one invalidated" 1 (List.length retired);
  check_int "two live" 2 (Code_cache.n_regions cache);
  (* Two more installs fit without eviction (invalidation freed a slot)... *)
  ignore (Code_cache.install_exn cache (spec_at 100));
  check_int "no capacity eviction yet" 0 (Code_cache.evictions cache);
  (* ...and the next overflow pops the tombstone, then evicts region 16. *)
  ignore (Code_cache.install_exn cache (spec_at 200));
  check_int "exactly one eviction" 1 (Code_cache.evictions cache);
  check_true "oldest live region evicted" (Code_cache.find cache 16 = None);
  check_true "younger region survives" (Code_cache.find cache 32 <> None)

let fifo_shock_frees_requested_bytes () =
  let cache = plain_cache ~eviction:Params.Evict_oldest () in
  for i = 0 to 4 do
    ignore (Code_cache.install_exn cache (spec_at (i * 16)))
  done;
  let retired = Code_cache.shock cache ~bytes:(2 * region_cost) in
  check_int "exactly the two oldest retired" 2 (List.length retired);
  Alcotest.(check (list int)) "oldest first" [ 0; 16 ] (List.map entry_of retired);
  check_int "three live" 3 (Code_cache.n_regions cache)

let flush_shock_empties_cache () =
  let cache = plain_cache ~eviction:Params.Flush_all () in
  for i = 0 to 2 do
    ignore (Code_cache.install_exn cache (spec_at (i * 16)))
  done;
  let retired = Code_cache.shock cache ~bytes:1 in
  check_int "everything retired" 3 (List.length retired);
  check_int "cache empty" 0 (Code_cache.n_regions cache);
  check_int "counted as a flush" 1 (Code_cache.flushes cache);
  check_int "no-op shock on empty cache" 0 (List.length (Code_cache.shock cache ~bytes:1))

(* Regeneration counting *)

let regeneration_after_invalidation () =
  let cache = plain_cache () in
  ignore (Code_cache.install_exn cache (spec_at 0));
  ignore (Code_cache.invalidate_range cache ~lo:0 ~hi:0);
  ignore (Code_cache.install_exn cache (spec_at 0));
  check_int "re-selecting an invalidated entry is a regeneration" 1
    (Code_cache.regenerations cache);
  check_int "invalidation is not an eviction" 0 (Code_cache.evictions cache);
  check_int "one invalidation" 1 (Code_cache.invalidations cache)

(* Aux entries *)

let aux_spec ~entry ~aux =
  (* Two Return blocks; the second is an aux entry (a method-region
     continuation). *)
  {
    Region.entry;
    nodes = [ mk entry 4 Terminator.Return; mk aux 4 Terminator.Return ];
    edges = [];
    copied_insts = 8;
    kind = Region.Method;
    aux_entries = [ aux ];
    layout_hint = [];
  }

let aux_entries_retired_with_region () =
  let cache = plain_cache () in
  ignore (Code_cache.install_exn cache (aux_spec ~entry:0 ~aux:16));
  check_true "aux entry dispatchable" (Code_cache.find cache 16 <> None);
  (* Dirty only the aux block: the whole region must go, including the
     aux index slot. *)
  let retired = Code_cache.invalidate_range cache ~lo:18 ~hi:18 in
  check_int "region retired via aux block" 1 (List.length retired);
  check_true "entry gone" (Code_cache.find cache 0 = None);
  check_true "aux slot gone" (Code_cache.find cache 16 = None);
  (* A later region claiming the same aux address is not clobbered by the
     old region's retirement. *)
  ignore (Code_cache.install_exn cache (aux_spec ~entry:32 ~aux:16));
  check_true "new claimant resolves" (Code_cache.find cache 16 <> None)

let invalidate_range_is_span_based () =
  let cache = plain_cache () in
  ignore (Code_cache.install_exn cache (spec_at 0)) (* blocks [0, 9] *);
  ignore (Code_cache.install_exn cache (spec_at 32)) (* blocks [32, 41] *);
  check_int "disjoint write hits nothing" 0
    (List.length (Code_cache.invalidate_range cache ~lo:16 ~hi:20));
  check_int "overlapping write hits one region" 1
    (List.length (Code_cache.invalidate_range cache ~lo:8 ~hi:12));
  check_true "other region untouched" (Code_cache.find cache 32 <> None)

(* Blacklisting *)

let blacklist_backoff_and_expiry () =
  let cache = Code_cache.create ~blacklist_base_cooldown:100 ~blacklist_max_shift:2 () in
  Code_cache.set_now cache 1_000;
  ignore (Code_cache.invalidate_range cache ~lo:0 ~hi:0) (* nothing live: no fail *);
  ignore (Code_cache.install_exn cache (spec_at 0));
  ignore (Code_cache.invalidate_range cache ~lo:0 ~hi:0);
  check_int "first failure: base cooldown" 1_100 (Code_cache.blacklisted_until cache 0);
  check_int "one entry blacklisted" 1 (Code_cache.n_blacklisted cache);
  (* Re-selection during the cooldown is rejected and counted. *)
  check_true "install rejected while blacklisted"
    (Code_cache.install cache (spec_at 0) = Error Code_cache.Blacklisted);
  check_int "blacklist hit counted" 1 (Code_cache.blacklist_hits cache);
  (* After the cooldown the entry is admitted again... *)
  Code_cache.set_now cache 1_200;
  ignore (Code_cache.install_exn cache (spec_at 0));
  (* ...and a repeat failure doubles the cooldown, capped at base lsl 2. *)
  ignore (Code_cache.invalidate_range cache ~lo:0 ~hi:0);
  check_int "second failure: doubled" (1_200 + 200) (Code_cache.blacklisted_until cache 0);
  Code_cache.set_now cache 2_000;
  ignore (Code_cache.install_exn cache (spec_at 0));
  ignore (Code_cache.invalidate_range cache ~lo:0 ~hi:0);
  Code_cache.set_now cache 3_000;
  ignore (Code_cache.install_exn cache (spec_at 0));
  ignore (Code_cache.invalidate_range cache ~lo:0 ~hi:0);
  check_int "backoff capped" (3_000 + 400) (Code_cache.blacklisted_until cache 0)

let translation_failures_fail_next_installs () =
  let cache = Code_cache.create ~blacklist_base_cooldown:500 () in
  Code_cache.arm_translation_failures cache ~window:50;
  check_true "first armed install fails"
    (Code_cache.install cache (spec_at 0) = Error Code_cache.Translation_failed);
  check_true "second armed install fails"
    (Code_cache.install cache (spec_at 16) = Error Code_cache.Translation_failed);
  check_int "failures counted" 2 (Code_cache.translation_failures cache);
  check_int "nothing installed" 0 (Code_cache.n_regions cache);
  (* Past the window the translator works again, but the entries that
     failed inside it are now blacklisted. *)
  Code_cache.set_now cache 100;
  check_true "failed entry blacklisted"
    (Code_cache.install cache (spec_at 0) = Error Code_cache.Blacklisted);
  (* A fresh entry installs fine. *)
  ignore (Code_cache.install_exn cache (spec_at 32));
  check_int "fresh entry installed" 1 (Code_cache.n_regions cache);
  (* And the blacklisted one recovers once its cooldown passes. *)
  Code_cache.set_now cache 600;
  ignore (Code_cache.install_exn cache (spec_at 0));
  check_int "blacklisted entry recovered" 2 (Code_cache.n_regions cache)

let duplicate_reported_not_raised () =
  let cache = plain_cache () in
  ignore (Code_cache.install_exn cache (spec_at 0));
  check_true "duplicate is a typed rejection"
    (Code_cache.install cache (spec_at 0) = Error Code_cache.Duplicate_entry);
  check_int "duplicate counted" 1 (Code_cache.duplicate_installs cache);
  check_int "cache unchanged" 1 (Code_cache.n_regions cache)

(* Flat dispatch array *)

let dispatch_tracks_lifecycle () =
  let program =
    Program.of_blocks_exn ~entry:0
      [ mk 0 10 Terminator.Return; mk 16 10 Terminator.Return ]
  in
  let cache = plain_cache ~program () in
  let id_of a = Program.block_id program a in
  check_true "empty cache dispatches nothing" (Code_cache.dispatch cache (id_of 0) = None);
  let r = Code_cache.install_exn cache (spec_at 0) in
  check_true "installed region dispatches" (Code_cache.dispatch cache (id_of 0) = Some r);
  check_true "non-start address dispatches nothing" (Code_cache.dispatch cache (id_of 5) = None);
  check_true "other block dispatches nothing" (Code_cache.dispatch cache (id_of 16) = None);
  ignore (Code_cache.invalidate_range cache ~lo:0 ~hi:0);
  check_true "invalidated region no longer dispatches"
    (Code_cache.dispatch cache (id_of 0) = None);
  let r2 = Code_cache.install_exn cache (spec_at 16) in
  ignore (Code_cache.flush_all cache);
  check_true "flush clears dispatch" (Code_cache.dispatch cache (id_of 16) = None);
  check_true "flush retired the region" (not (Code_cache.is_live cache r2))

let dispatch_matches_find () =
  (* The flat array and the hash index must agree on every block. *)
  let blocks = List.init 8 (fun i -> mk (i * 16) 10 Terminator.Return) in
  let program = Program.of_blocks_exn ~entry:0 blocks in
  let cache = plain_cache ~program ~capacity_bytes:(3 * region_cost) ~eviction:Params.Evict_oldest () in
  List.iteri
    (fun i _ -> if i land 1 = 0 then ignore (Code_cache.install_exn cache (spec_at (i * 16))))
    blocks;
  ignore (Code_cache.invalidate_range cache ~lo:64 ~hi:70);
  List.iteri
    (fun i _ ->
      let a = i * 16 in
      check_true "dispatch = find"
        (Code_cache.dispatch cache (Program.block_id program a) = Code_cache.find cache a))
    blocks

(* Inter-region links.  The invariant under test: no link may outlive its
   target region, and a link always agrees with the dispatch array. *)

let linked_pair () =
  (* Two single-block regions with a link r0 -> r1 through block 16. *)
  let program =
    Program.of_blocks_exn ~entry:0
      [ mk 0 10 Terminator.Return; mk 16 10 Terminator.Return; mk 32 10 Terminator.Return ]
  in
  let cache = plain_cache ~program ~eviction:Params.Evict_oldest () in
  let r0 = Code_cache.install_exn cache (spec_at 0) in
  let r1 = Code_cache.install_exn cache (spec_at 16) in
  let slot = Program.block_id program 16 in
  Code_cache.add_link cache ~from:r0 ~slot ~target:r1;
  program, cache, r0, r1, slot

let invalidation_severs_links () =
  let program, cache, r0, r1, slot = linked_pair () in
  check_int "one live link" 1 (Code_cache.n_links cache);
  check_true "slot patched" (Region.link_target r0 slot = Some r1);
  ignore (Code_cache.invalidate_range cache ~lo:16 ~hi:16);
  check_true "link severed with its target" (Region.link_target r0 slot = None);
  check_int "no live links" 0 (Code_cache.n_links cache);
  check_int "sever counted" 1 (Code_cache.link_severs cache);
  (* Reinstalling the target must not resurrect the old link: the source
     re-links only after a fresh dispatch. *)
  Code_cache.set_now cache 1_000_000;
  ignore (Code_cache.install_exn cache (spec_at 16));
  check_true "no resurrection on reinstall" (Region.link_target r0 slot = None);
  ignore program

let eviction_severs_links () =
  (* r1 -> r0; evicting r0 (the FIFO-oldest) must unpatch r1's slot. *)
  let program =
    Program.of_blocks_exn ~entry:0 [ mk 0 10 Terminator.Return; mk 16 10 Terminator.Return ]
  in
  let cache =
    plain_cache ~program ~capacity_bytes:(2 * region_cost) ~eviction:Params.Evict_oldest ()
  in
  let r0 = Code_cache.install_exn cache (spec_at 0) in
  let r1 = Code_cache.install_exn cache (spec_at 16) in
  let slot = Program.block_id program 0 in
  Code_cache.add_link cache ~from:r1 ~slot ~target:r0;
  ignore (Code_cache.install_exn cache (spec_at 32));
  check_true "oldest region evicted" (Code_cache.find cache 0 = None);
  check_true "link into the victim severed" (Region.link_target r1 slot = None);
  check_int "no live links" 0 (Code_cache.n_links cache);
  check_int "sever counted" 1 (Code_cache.link_severs cache)

let flush_severs_all_links () =
  (* Mutual links; a flush retires both regions and leaves nothing live. *)
  let program =
    Program.of_blocks_exn ~entry:0 [ mk 0 10 Terminator.Return; mk 16 10 Terminator.Return ]
  in
  let cache = plain_cache ~program () in
  let r0 = Code_cache.install_exn cache (spec_at 0) in
  let r1 = Code_cache.install_exn cache (spec_at 16) in
  let s0 = Program.block_id program 0 and s1 = Program.block_id program 16 in
  Code_cache.add_link cache ~from:r0 ~slot:s1 ~target:r1;
  Code_cache.add_link cache ~from:r1 ~slot:s0 ~target:r0;
  check_int "two live links" 2 (Code_cache.n_links cache);
  check_int "two created" 2 (Code_cache.links_created cache);
  ignore (Code_cache.flush_all cache);
  check_int "no live links after flush" 0 (Code_cache.n_links cache);
  check_true "both slots unpatched"
    (Region.link_target r0 s1 = None && Region.link_target r1 s0 = None)

let colliding_aux_entry_does_not_steal_slot () =
  (* Pinned by the sanitizer PR: an install whose aux entry collides with a
     live region's entry must NOT steal its dispatch slot.  The old steal
     semantics left the claimant live-but-undispatchable — [find] and
     [dispatch] disagreed, a later install of the same entry silently
     overwrote the zombie's index slot, and its bytes leaked from the
     accounting forever.  First claimant wins; links stay valid. *)
  let program, cache, r0, r1, slot = linked_pair () in
  let r2 = Code_cache.install_exn cache (aux_spec ~entry:32 ~aux:16) in
  check_true "existing link survives" (Region.link_target r0 slot = Some r1);
  check_int "one live link" 1 (Code_cache.n_links cache);
  check_true "claimant keeps its dispatch slot"
    (Code_cache.dispatch cache slot = Some r1);
  check_true "find and dispatch agree" (Code_cache.find cache 16 = Some r1);
  check_true "newcomer dispatchable at its own entry"
    (Code_cache.dispatch cache (Program.block_id program 32) = Some r2);
  (* Retiring the newcomer must not clobber the claimant's slot. *)
  ignore (Code_cache.invalidate_range cache ~lo:32 ~hi:32);
  check_true "claimant still dispatchable after newcomer retires"
    (Code_cache.dispatch cache slot = Some r1);
  check_true "claimant still live" (Code_cache.is_live cache r1)

let fifo_tombstones_bounded () =
  (* Regression (sanitizer PR): on an unbounded cache, regions retired by
     invalidation used to linger in the FIFO forever — nothing ever popped
     them.  Under a shock-heavy install/invalidate schedule the queue must
     stay bounded by the live population (plus the compaction floor). *)
  let cache = plain_cache () in
  let peak = ref 0 in
  for round = 0 to 199 do
    let base = round * 64 in
    for i = 0 to 3 do
      ignore (Code_cache.install_exn cache (spec_at (base + (i * 16))))
    done;
    (* Dirty the whole round's range: all four regions retire in place. *)
    ignore (Code_cache.invalidate_range cache ~lo:base ~hi:(base + 63));
    peak := max !peak (Code_cache.fifo_length cache)
  done;
  check_int "no live regions left" 0 (Code_cache.n_regions cache);
  check_int "800 invalidations" 800 (Code_cache.invalidations cache);
  check_true
    (Printf.sprintf "peak queue length bounded (saw %d)" !peak)
    (!peak <= 16);
  check_true "tombstone count consistent with queue"
    (Code_cache.fifo_length cache - Code_cache.fifo_tombstones cache
    = Code_cache.n_regions cache)

let set_now_clamps_stale_stamps () =
  (* Hardening (sanitizer PR): a non-monotone stamp is clamped, never
     applied, and counted so the sanitizer can flag the caller. *)
  let cache = plain_cache () in
  Code_cache.set_now cache 100;
  check_int "clock advanced" 100 (Code_cache.now cache);
  Code_cache.set_now cache 40;
  check_int "stale stamp clamped" 100 (Code_cache.now cache);
  check_int "regression counted" 1 (Code_cache.clock_regressions cache);
  Code_cache.set_now cache 100;
  check_int "equal stamp is not a regression" 1 (Code_cache.clock_regressions cache);
  Code_cache.set_now cache 250;
  check_int "clock advances again" 250 (Code_cache.now cache)

let auditor_fires_on_mutations () =
  let cache = plain_cache () in
  let ops = ref [] in
  Code_cache.set_auditor cache (fun op -> ops := op :: !ops);
  ignore (Code_cache.install_exn cache (spec_at 0));
  ignore (Code_cache.invalidate_range cache ~lo:0 ~hi:0);
  Code_cache.set_now cache 10;
  Code_cache.set_now cache 5;
  ignore (Code_cache.flush_all cache);
  Alcotest.(check (list string))
    "mutations audited in order"
    [ "install"; "invalidate"; "set-now"; "flush" ]
    (List.rev !ops);
  Code_cache.clear_auditor cache;
  ignore (Code_cache.install_exn cache (spec_at 16));
  check_int "cleared auditor is silent" 4 (List.length !ops)

let link_guards () =
  let program, cache, r0, r1, slot = linked_pair () in
  (* First link wins: re-linking an occupied slot is a no-op. *)
  Code_cache.add_link cache ~from:r0 ~slot ~target:r0;
  check_true "occupied slot unchanged" (Region.link_target r0 slot = Some r1);
  check_int "no second creation" 1 (Code_cache.links_created cache);
  (* Out-of-range slots are ignored. *)
  Code_cache.add_link cache ~from:r0 ~slot:(-1) ~target:r1;
  Code_cache.add_link cache ~from:r0 ~slot:9_999 ~target:r1;
  check_int "still one live link" 1 (Code_cache.n_links cache);
  ignore program

(* Byte quotas (the multi-stream scheduler's per-tenant share of a global
   budget).  Admission honours [min capacity quota]; tightening evicts
   oldest-first whatever the eviction policy; an oversized spec is a typed
   reject with no cache mutation. *)

let quota_tightening_evicts_oldest_first () =
  (* Flush_all policy on purpose: quota pressure must NOT flush, it must
     shed oldest-first — the tenant did nothing wrong when the global
     budget shifted. *)
  let cache = plain_cache ~eviction:Params.Flush_all () in
  for i = 0 to 4 do
    ignore (Code_cache.install_exn cache (spec_at (i * 16)))
  done;
  check_true "no quota by default" (Code_cache.quota cache = None);
  let retired = Code_cache.set_quota cache (Some (3 * region_cost)) in
  Alcotest.(check (list int)) "two oldest retired, in age order" [ 0; 16 ]
    (List.map entry_of retired);
  check_int "quota evictions counted" 2 (Code_cache.quota_evictions cache);
  check_int "no flush happened" 0 (Code_cache.flushes cache);
  check_int "three live" 3 (Code_cache.n_regions cache);
  check_true "footprint within quota"
    (Code_cache.bytes_used cache <= 3 * region_cost);
  check_true "quota readable" (Code_cache.quota cache = Some (3 * region_cost));
  (* Loosening (or matching) the footprint retires nothing. *)
  check_int "no-op retighten" 0
    (List.length (Code_cache.set_quota cache (Some (4 * region_cost))))

let quota_bounds_admission () =
  (* Unbounded capacity, quota of two regions: the third install evicts
     the oldest under the effective bound. *)
  let cache = plain_cache ~eviction:Params.Evict_oldest () in
  ignore (Code_cache.set_quota cache (Some (2 * region_cost)));
  for i = 0 to 2 do
    ignore (Code_cache.install_exn cache (spec_at (i * 16)))
  done;
  check_int "two live under quota" 2 (Code_cache.n_regions cache);
  check_true "oldest evicted" (Code_cache.find cache 0 = None);
  check_true "newcomers live"
    (Code_cache.find cache 16 <> None && Code_cache.find cache 32 <> None);
  (* A quota tighter than capacity wins over capacity... *)
  let tight =
    plain_cache ~capacity_bytes:(10 * region_cost) ~eviction:Params.Evict_oldest ()
  in
  ignore (Code_cache.set_quota tight (Some (1 * region_cost)));
  ignore (Code_cache.install_exn tight (spec_at 0));
  ignore (Code_cache.install_exn tight (spec_at 16));
  check_int "quota tighter than capacity wins" 1 (Code_cache.n_regions tight);
  (* ...and capacity tighter than quota still applies. *)
  let cap = plain_cache ~capacity_bytes:region_cost ~eviction:Params.Evict_oldest () in
  ignore (Code_cache.set_quota cap (Some (100 * region_cost)));
  ignore (Code_cache.install_exn cap (spec_at 0));
  ignore (Code_cache.install_exn cap (spec_at 16));
  check_int "capacity tighter than quota wins" 1 (Code_cache.n_regions cap)

let oversized_spec_is_typed_reject () =
  let cache = plain_cache ~eviction:Params.Evict_oldest () in
  ignore (Code_cache.install_exn cache (spec_at 0));
  let bytes_before = Code_cache.bytes_used cache in
  ignore (Code_cache.set_quota cache (Some (2 * region_cost)));
  (* A spec that alone exceeds the quota can never fit, whatever is
     evicted: reject without touching the cache. *)
  let huge = spec_at ~size:100 200 in
  check_true "oversized spec rejected"
    (Code_cache.install cache huge = Error Code_cache.Quota_exceeded);
  check_int "reject counted" 1 (Code_cache.quota_rejects cache);
  check_int "no eviction attempted" 0 (Code_cache.quota_evictions cache);
  check_int "resident region untouched" 1 (Code_cache.n_regions cache);
  check_int "accounting untouched" bytes_before (Code_cache.bytes_used cache);
  check_true "rejection is printable"
    (Code_cache.reject_to_string Code_cache.Quota_exceeded = "quota-exceeded");
  (* The region id was not consumed by the reject: the next admitted
     region's id is contiguous with the last one's. *)
  let r = Code_cache.install_exn cache (spec_at 16) in
  check_int "region id not consumed by reject" 1 r.Region.id

let clearing_quota_lifts_the_bound () =
  let cache = plain_cache ~eviction:Params.Evict_oldest () in
  ignore (Code_cache.set_quota cache (Some region_cost));
  ignore (Code_cache.install_exn cache (spec_at 0));
  ignore (Code_cache.install_exn cache (spec_at 16));
  check_int "bounded while quota set" 1 (Code_cache.n_regions cache);
  check_int "clearing retires nothing" 0 (List.length (Code_cache.set_quota cache None));
  check_true "quota cleared" (Code_cache.quota cache = None);
  for i = 2 to 9 do
    ignore (Code_cache.install_exn cache (spec_at (i * 16)))
  done;
  check_int "unbounded again" 9 (Code_cache.n_regions cache);
  check_true "negative quota rejected"
    (try
       ignore (Code_cache.set_quota cache (Some (-1)));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    case "flush_all returns victims" flush_all_returns_victims;
    case "fifo skips tombstones" fifo_skips_tombstones;
    case "fifo shock frees requested bytes" fifo_shock_frees_requested_bytes;
    case "flush shock empties cache" flush_shock_empties_cache;
    case "regeneration after invalidation" regeneration_after_invalidation;
    case "aux entries retired with region" aux_entries_retired_with_region;
    case "invalidate_range is span based" invalidate_range_is_span_based;
    case "blacklist backoff and expiry" blacklist_backoff_and_expiry;
    case "translation failures fail next installs" translation_failures_fail_next_installs;
    case "duplicate reported not raised" duplicate_reported_not_raised;
    case "dispatch tracks lifecycle" dispatch_tracks_lifecycle;
    case "dispatch matches find" dispatch_matches_find;
    case "invalidation severs links" invalidation_severs_links;
    case "eviction severs links" eviction_severs_links;
    case "flush severs all links" flush_severs_all_links;
    case "colliding aux entry does not steal slot" colliding_aux_entry_does_not_steal_slot;
    case "fifo tombstones bounded" fifo_tombstones_bounded;
    case "set_now clamps stale stamps" set_now_clamps_stale_stamps;
    case "auditor fires on mutations" auditor_fires_on_mutations;
    case "link guards" link_guards;
    case "quota tightening evicts oldest first" quota_tightening_evicts_oldest_first;
    case "quota bounds admission" quota_bounds_admission;
    case "oversized spec is a typed reject" oversized_spec_is_typed_reject;
    case "clearing quota lifts the bound" clearing_quota_lifts_the_bound;
  ]
