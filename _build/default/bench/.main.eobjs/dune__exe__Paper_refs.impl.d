bench/paper_refs.ml:
