(** The dynamic optimization system simulator (the paper's Figure 1).

    Execution alternates between the interpreter and the code cache:

    - While interpreting, every executed block is delivered to the policy;
      on a {e taken} branch whose target is a cached region entry, control
      dispatches into the cache.
    - While in a region, control follows internal edges.  An exit whose
      target is another cached region's entry is a linked jump (counted as a
      region transition); an exit to the region's own entry completes a
      cycle; any other exit returns to the interpreter and is reported to
      the policy.

    When the policy installs a region whose entry is the pending transfer
    target, control enters it immediately (the paper's "jump newT").

    With [params.faults] set, a deterministic {!Faults} schedule is applied
    at exact step indices: SMC writes invalidate spanning regions (the
    policy sees {!Policy.Region_invalidated}), translation failures make
    installs fail, async exits kick execution out of region mode, and cache
    shocks evict.  A watchdog monitors the windowed cached-instruction
    share and bails out to pure interpretation for a cooldown when
    selection thrashes.  With [params.faults = None] (the default) none of
    this machinery runs and all exported metrics are identical to earlier
    versions of the engine. *)

type result = {
  image : Regionsel_workload.Image.t;
  policy_name : string;
  ctx : Context.t;  (** Final cache, counters and gauges. *)
  stats : Stats.t;
  edges : Edge_profile.t;
  icache : Icache.t;
      (** Instruction-cache model fed by every fetch from the code cache:
          the locality instrument behind the paper's separation claims. *)
  halted : bool;  (** Whether the program ran to completion within budget. *)
  fault_log : Faults.log option;
      (** Fault runs only: the injected events plus the windowed
          cached-share samples — the degradation/recovery curve. *)
}

type observer = {
  on_context : Context.t -> unit;
      (** Called once, right after the run's [Context] (and hence its code
          cache) is created — the sanitizer installs its cache auditor
          here. *)
  on_step :
    step:int ->
    block:Regionsel_isa.Block.t ->
    taken:bool ->
    next:Regionsel_isa.Addr.t ->
    believed:Regionsel_isa.Addr.t ->
    unit;
      (** Called after every interpreter step, before the mode handlers run:
          [block]/[taken]/[next] are the interpreter's ground truth for the
          step, [believed] is the start address region mode believes it just
          executed ([Addr.none] while interpreting).  The loop invariant —
          the sanitizer's divergence rule — is [believed = block.start]
          whenever in region mode. *)
}
(** Sanitizer hook ([Regionsel_check.Check]): a per-run observer with no
    effect on the simulation.  With [observer = None] (the default) the
    loop pays one compare per step; metrics are identical either way. *)

val run :
  ?params:Params.t ->
  ?seed:int64 ->
  ?telemetry:Regionsel_telemetry.Telemetry.sink ->
  ?observer:observer ->
  policy:(module Policy.S) ->
  max_steps:int ->
  Regionsel_workload.Image.t ->
  result
(** [run ~policy ~max_steps image] simulates [image] under [policy] for at
    most [max_steps] executed blocks. The [seed] (default [1L]) drives all
    branch behaviour.  Pass [telemetry] to record region-lifecycle events
    (selection, install, dispatch, link patch/sever, eviction,
    invalidation, fault delivery, bailout enter/exit, blacklist
    add/expire) into its ring buffer; the default sink is a no-op and
    recording is pure observation — enabling it changes no simulated
    outcome (guarded by the parity suite). *)
