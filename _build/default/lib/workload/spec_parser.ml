(* 197.parser: link-grammar parsing.  Dictionary scans and connector
   matching: intraprocedural loops with biased early-out tests, helpers
   called between (not inside) the hot cycles.  Like crafty, NET already
   spans most of these cycles, so LEI's locality gain is minimal — the
   paper's region-transition outlier in Figure 8. *)

let build () =
  let b = Builder.create () in
  Patterns.leaf b ~name:"hash_word" ~size:7;
  Patterns.composite_loop b ~name:"dict_scan" ~trip:450
    ~body:
      [
        Patterns.Straight 4;
        Patterns.Straight 5;
        Patterns.Diamond { Patterns.bias = 0.9; side_size = 3 };
        Patterns.Continue 0.15;
      ];
  Patterns.composite_loop b ~name:"match_connector" ~trip:400
    ~body:
      [
        Patterns.Straight 4;
        Patterns.Diamond { Patterns.bias = 0.88; side_size = 4 };
        Patterns.Diamond { Patterns.bias = 0.93; side_size = 3 };
        Patterns.Continue 0.1;
      ];
  Patterns.plain_loop b ~name:"count_links" ~trip:300 ~body_blocks:3 ~body_size:4;
  Patterns.plain_loop b ~name:"prune" ~trip:350 ~body_blocks:2 ~body_size:5;
  (* Link-grammar parsing is recursive: a descent that exercises the call
     stack and return-target cycles. *)
  Patterns.recursive_fn b ~name:"parse_expr" ~depth:12 ~body_size:4;
  Patterns.cold_farm b ~name:"dict_pool" ~n:10 ~body_size:5;
  Patterns.driver b ~name:"main"
    ~weights:[ "hash_word", 0.5; "parse_expr", 0.3; "dict_pool", 0.1 ]
    [ "dict_scan"; "match_connector"; "count_links"; "prune"; "hash_word"; "parse_expr";
      "dict_pool" ];
  Builder.compile b ~name:"parser" ~entry:"main"

let spec =
  Spec.make ~name:"parser"
    ~description:
      "197.parser stand-in: biased intraprocedural scan loops with helpers outside the \
       hot cycles; minimal LEI locality gain (the Figure 8 outlier)"
    ~steps:900_000 build
