lib/workload/spec_vortex.mli: Spec
