(** Benchmark descriptors: a named workload plus its default step budget. *)

type t = {
  name : string;
  description : string;
      (** Which SPECint2000 benchmark this stands in for and which
          control-flow traits it models. *)
  image : Image.t Lazy.t;
  default_steps : int;  (** Block-step budget for the full evaluation. *)
}

val make : name:string -> description:string -> steps:int -> (unit -> Image.t) -> t
val image : t -> Image.t
