(** Tunable parameters of the simulated dynamic optimization system.

    Defaults follow the paper (see DESIGN.md for the per-parameter source):
    NET's published threshold of 50, LEI's 35 with a 500-entry history
    buffer, and the trace-combination settings [T_prof = 15], [T_min = 5]
    with start thresholds lowered so that regions are selected after the
    same number of interpreted executions as the underlying algorithm
    (Section 4.3). *)

type eviction =
  | Flush_all  (** Dynamo's policy: preemptively empty the whole cache. *)
  | Evict_oldest  (** FIFO: drop regions in selection order until it fits. *)

type fault_profile = {
  first_fault_step : int;
      (** Warm-up: no fault stream fires before this step. *)
  smc_period : int;
      (** Steps between self-modifying-code writes (0 = stream off).  Each
          write dirties a contiguous range of blocks, forcing every live
          region spanning the range to be invalidated. *)
  smc_span_blocks : int;  (** Blocks dirtied per SMC write. *)
  translation_failure_period : int;
      (** Steps between translation-failure windows (0 = off). *)
  translation_failure_window : int;
      (** Steps each failure window stays open: every install attempted
          inside it fails. *)
  async_exit_period : int;
      (** Steps between spurious asynchronous exits from region mode
          (signal delivery in a real system; 0 = off). *)
  cache_shock_period : int;  (** Steps between cache-pressure shocks (0 = off). *)
  cache_shock_bytes : int;
      (** Bytes each shock must reclaim (a whole flush under [Flush_all]). *)
  crash_period : int;
      (** Steps between optimizer crash/restarts (0 = off).  A crash loses
          every warm optimizer structure — code cache, blacklist, counter
          pool, policy state — while the program itself (and its PRNG
          streams) runs on, modelling a kill-and-restart of the dynamic
          optimizer under a persistent workload. *)
}

val no_faults : fault_profile
(** All streams off: a schedule that injects nothing.  A run with
    [faults = Some no_faults] must export metrics byte-identical to a run
    with [faults = None]. *)

val fault_profiles : (string * fault_profile) list
(** Named profiles for the CLI / bench ("mixed", "crash", "smc",
    "translation", "pressure"). *)

val fault_profile : string -> fault_profile option

type t = {
  net_threshold : int;  (** Execution count before NET selects a trace. *)
  lei_threshold : int;  (** LEI's [T_cyc]: counted cycle completions. *)
  lei_buffer_size : int;  (** LEI history buffer capacity (taken branches). *)
  combine_t_prof : int;  (** Observed traces per combined region. *)
  combine_t_min : int;  (** Occurrences for a block to be marked. *)
  combined_net_start : int;  (** [T_start] when combining NET traces. *)
  combined_lei_start : int;  (** [T_start] when combining LEI traces. *)
  max_trace_insts : int;  (** Trace size limit, instructions. *)
  max_trace_blocks : int;  (** Trace size limit, blocks. *)
  mojo_exit_threshold : int;
      (** Extension (Section 5): Mojo's lower threshold for trace-exit
          targets. *)
  boa_threshold : int;
      (** Extension (Section 5): BOA's entry threshold before a bias-directed
          trace is grown. *)
  method_threshold : int;
      (** Extension: invocation count before the whole-method policy
          compiles a function. *)
  cache_capacity_bytes : int option;
      (** Extension ablation: bound the code cache to this many bytes under
          the {!Region.cache_bytes} cost model ([None] = unbounded, the
          paper's setting). *)
  cache_eviction : eviction;
      (** What to do when a bounded cache overflows. *)
  combined_layout_hot_first : bool;
      (** Lay combined regions out hottest-block-first (the Section 4.4
          profile-guided layout); [false] uses address order (ablation). *)
  icache_size_bytes : int;
  icache_line_bytes : int;
  icache_ways : int;
      (** Geometry of the modelled I-cache.  The default (256 B, 16-byte
          lines, 2-way) is deliberately scaled down in proportion to the
          synthetic workloads' kilobyte-sized code caches, just as the
          workloads themselves are scaled-down SPEC stand-ins; a real
          32 KiB L1 would hold every toy region at once and show nothing. *)
  faults : fault_profile option;
      (** Deterministic fault schedule ([None] = clean run, the default —
          the zero-fault hot path is unchanged). *)
  blacklist_base_cooldown : int;
      (** Steps an entry is blacklisted after its first translation failure
          or invalidation; doubles per repeat failure. *)
  blacklist_max_shift : int;
      (** Cap on the exponential backoff: cooldown never exceeds
          [base lsl max_shift]. *)
  watchdog_window : int;
      (** Sliding-window width (steps) over which the bailout watchdog
          samples the cached-instruction share. *)
  watchdog_min_share : float;
      (** Bail out when the windowed share drops below this fraction of its
          previous peak while faults are active. *)
  bailout_cooldown : int;
      (** Steps of pure interpretation after a watchdog bailout. *)
  compiled_regions : bool;
      (** Execute cached code through the compiled region automaton and the
          inter-region link cache (the default).  [false] keeps the legacy
          address-keyed region stepping — same metrics, slower — as the
          parity reference. *)
  threaded_dispatch : bool;
      (** Drive the interpreter through threaded-code dispatch (the
          default): each block's terminator precompiled into a closure
          indexed by dense block id.  [false] keeps the legacy match-based
          dispatch — bit-identical steps, slower — as the parity
          reference. *)
  validate : bool;
      (** Run under the sanitizer (see [Regionsel_check.Check]): audit the
          DESIGN.md cache/link/telemetry invariants on every cache mutation
          and shadow-step the pure interpreter as a differential oracle.
          Off by default — a [validate = false] run is bit-identical to one
          built before the checker existed; the flag itself changes nothing
          in the engine, it only records that the run is meant to go through
          [Check.checked_run] (the [--check] CLI flag sets both). *)
}

val default : t

val pp : Format.formatter -> t -> unit
