lib/metrics/cover.ml: List Regionsel_engine
