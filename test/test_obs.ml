(* The windowed metrics pipeline's contracts: recorders close windows at
   deterministic step boundaries and mutate nothing simulated; both
   exporters are byte-deterministic (JSONL across reruns and across
   multi-stream domain counts, Prometheus duplicate-free and grammatical);
   the flight recorder's ring bounds history to the newest K windows. *)

module Spec = Regionsel_workload.Spec
module Suite = Regionsel_workload.Suite
module Simulator = Regionsel_engine.Simulator
module Multi_stream = Regionsel_engine.Multi_stream
module Params = Regionsel_engine.Params
module Stats = Regionsel_engine.Stats
module Run_metrics = Regionsel_metrics.Run_metrics
module Policies = Regionsel_core.Policies
module Telemetry = Regionsel_telemetry.Telemetry
module Metrics = Regionsel_obs.Metrics
open Fixtures

let policy_exn name = Option.get (Policies.find name)
let labels = [ ("tenant", "gzip"); ("policy", "net"); ("dispatch", "threaded") ]

let metered_run ?telemetry ?(window = 1000) ?keep ?(max_steps = 20_000) () =
  let spec = Option.get (Suite.find "gzip") in
  let r = Metrics.create ~window ?keep ~labels () in
  let result =
    Simulator.run ~params:Params.default ~seed:1L ?telemetry
      ~on_window:(Metrics.hook r) ~policy:(policy_exn "net") ~max_steps
      (Spec.image spec)
  in
  Metrics.finalize r result;
  (r, result)

(* ---- Recorder semantics ---- *)

let windows_close_at_absolute_boundaries () =
  let r, result = metered_run () in
  let ws = Metrics.windows r in
  check_true "has windows" (ws <> []);
  check_int "retains everything without keep" (Metrics.n_windows r) (List.length ws);
  List.iteri
    (fun i (w : Metrics.window) ->
      check_int "indices are sequential" i w.Metrics.w_index;
      check_true "window is non-empty" (w.Metrics.w_end_step > w.Metrics.w_start_step);
      (* Every boundary except a final partial one is an absolute multiple
         of the window size — not an offset from the previous sample. *)
      if i < List.length ws - 1 then
        check_int "boundary is an absolute multiple" 0 (w.Metrics.w_end_step mod 1000))
    ws;
  (* Contiguous coverage: each window starts where the last one ended,
     and the final one ends at the run's last step. *)
  let rec contiguous = function
    | a :: (b :: _ as rest) ->
      check_int "windows are contiguous" a.Metrics.w_end_step b.Metrics.w_start_step;
      contiguous rest
    | [ last ] ->
      check_int "final window ends at the run's last step"
        result.Simulator.stats.Stats.steps last.Metrics.w_end_step
    | [] -> ()
  in
  contiguous ws;
  List.iter
    (fun (w : Metrics.window) ->
      Alcotest.(check (list (pair string string))) "labels ride every window" labels
        w.Metrics.w_labels)
    ws

let finalize_is_boundary_exact () =
  (* A run halting exactly on a boundary gains nothing from finalize; one
     halting past it gains exactly the partial tail. *)
  let r, result = metered_run ~window:100 () in
  let last = List.nth (Metrics.windows r) (Metrics.n_windows r - 1) in
  check_int "tail window reaches the final step" result.Simulator.stats.Stats.steps
    last.Metrics.w_end_step;
  let n = Metrics.n_windows r in
  Metrics.finalize r result;
  check_int "finalize is idempotent" n (Metrics.n_windows r)

let keep_bounds_the_ring () =
  let r, _ = metered_run ~window:500 ~keep:4 () in
  let ws = Metrics.windows r in
  check_int "ring keeps the newest 4" 4 (List.length ws);
  check_true "more were sampled than kept" (Metrics.n_windows r > 4);
  let first = List.hd ws in
  check_int "oldest retained index" (Metrics.n_windows r - 4) first.Metrics.w_index

let notify_fires_per_window () =
  let seen = ref 0 in
  let spec = Option.get (Suite.find "gzip") in
  let r = Metrics.create ~window:1000 ~notify:(fun _ -> incr seen) ~labels () in
  let result =
    Simulator.run ~params:Params.default ~seed:1L ~on_window:(Metrics.hook r)
      ~policy:(policy_exn "net") ~max_steps:20_000 (Spec.image spec)
  in
  Metrics.finalize r result;
  check_int "notify fired once per window" (Metrics.n_windows r) !seen;
  check_true "status line is labelled"
    (let line = Metrics.status_line (List.hd (Metrics.windows r)) in
     let has sub =
       let n = String.length sub in
       let rec at i = i + n <= String.length line && (String.sub line i n = sub || at (i + 1)) in
       at 0
     in
     has "tenant=gzip" && has "policy=net" && has "win=")

let quantiles_require_a_sink () =
  let names (r, _) =
    List.concat_map
      (fun (w : Metrics.window) -> List.map fst w.Metrics.w_values)
      (Metrics.windows r)
  in
  let plain = names (metered_run ()) in
  check_true "no quantile series without a sink"
    (not (List.exists (fun n -> n = "residency_p50") plain));
  let traced = names (metered_run ~telemetry:(Some (Telemetry.create ())) ()) in
  List.iter
    (fun n -> check_true (n ^ " series present with a sink") (List.mem n traced))
    [
      "residency_p50"; "residency_p90"; "residency_p99";
      "trace_length_p50"; "trace_length_p90"; "trace_length_p99";
      "time_to_first_link_p50"; "time_to_first_link_p90"; "time_to_first_link_p99";
    ]

(* ---- The parity pin: metering changes nothing simulated ---- *)

let metered_run_changes_no_metric () =
  let spec = Option.get (Suite.find "gzip") in
  let bare =
    Simulator.run ~params:Params.default ~seed:1L ~policy:(policy_exn "net")
      ~max_steps:20_000 (Spec.image spec)
  in
  let _, metered = metered_run ~window:64 () in
  Alcotest.(check string) "Run_metrics identical with metering on"
    (Run_metrics.to_json (Run_metrics.of_result bare))
    (Run_metrics.to_json (Run_metrics.of_result metered))

(* ---- Exporters ---- *)

let jsonl_is_byte_identical_across_reruns () =
  let dump () =
    let r, _ = metered_run ~telemetry:(Some (Telemetry.create ())) () in
    Metrics.to_jsonl (Metrics.windows r)
  in
  let a = dump () in
  check_true "jsonl is non-empty" (String.length a > 0);
  Alcotest.(check string) "rerun is byte-identical" a (dump ())

let jsonl_records_are_one_per_series_per_window () =
  let r, _ = metered_run ~window:1000 () in
  let ws = Metrics.windows r in
  let lines =
    String.split_on_char '\n' (Metrics.to_jsonl ws) |> List.filter (fun l -> l <> "")
  in
  let per_window = List.length (List.hd ws).Metrics.w_values in
  check_int "one line per series per window" (List.length ws * per_window)
    (List.length lines);
  List.iter
    (fun l ->
      check_true "line is a JSON object"
        (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
    lines

let prometheus_grammar_and_uniqueness () =
  let r, _ = metered_run ~telemetry:(Some (Telemetry.create ())) () in
  let text = Metrics.to_prometheus (Metrics.windows r) in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  check_true "exposition is non-empty" (lines <> []);
  let typed = Hashtbl.create 32 in
  let seen = Hashtbl.create 32 in
  List.iter
    (fun line ->
      if String.length line > 0 && line.[0] = '#' then begin
        (* "# HELP name text" / "# TYPE name kind" *)
        match String.split_on_char ' ' line with
        | "#" :: kind :: name :: _ ->
          check_true "comment is HELP or TYPE" (kind = "HELP" || kind = "TYPE");
          if kind = "TYPE" then begin
            check_true ("TYPE once per series: " ^ name) (not (Hashtbl.mem typed name));
            Hashtbl.replace typed name ()
          end
        | _ -> Alcotest.failf "malformed comment line: %s" line
      end
      else begin
        (* "name{label="v",...} value" — value must parse as a float. *)
        let sp = String.rindex line ' ' in
        let value = String.sub line (sp + 1) (String.length line - sp - 1) in
        check_true ("sample value parses: " ^ line)
          (Float.is_finite (float_of_string value));
        let key = String.sub line 0 sp in
        let name =
          match String.index_opt key '{' with
          | Some i ->
            check_true "label block closes" (key.[String.length key - 1] = '}');
            String.sub key 0 i
          | None -> key
        in
        check_true ("name is prefixed: " ^ name)
          (String.length name > 10 && String.sub name 0 10 = "regionsel_");
        check_true ("TYPE precedes sample: " ^ name) (Hashtbl.mem typed name);
        check_true ("no duplicate series: " ^ key) (not (Hashtbl.mem seen key));
        Hashtbl.replace seen key ()
      end)
    lines

(* ---- Multi-stream fleets ---- *)

let fleet_specs =
  [ ("gzip", "net", 1L); ("twolf", "lei", 2L); ("mcf", "combined-net", 3L) ]

let fleet_tenants () =
  List.map
    (fun (bench, pname, seed) ->
      let spec = Option.get (Suite.find bench) in
      Multi_stream.tenant ~params:Params.default ~seed ~policy:(policy_exn pname)
        ~max_steps:(min spec.Spec.default_steps 20_000)
        ~name:bench (Spec.image spec))
    fleet_specs

let fleet_labels =
  List.map
    (fun (bench, pname, _) -> (bench, [ ("tenant", bench); ("policy", pname) ]))
    fleet_specs

let fleet_jsonl ~n_domains =
  let fleet = Metrics.Fleet.create fleet_labels in
  let (_ : Multi_stream.outcome) =
    Multi_stream.run ~n_domains ~batch_steps:1024
      ~on_barrier:(Metrics.Fleet.on_barrier fleet) (fleet_tenants ())
  in
  (fleet, Metrics.to_jsonl (Metrics.Fleet.all_windows fleet))

let fleet_jsonl_identical_across_domain_counts () =
  let fleet, a = fleet_jsonl ~n_domains:1 in
  let _, b = fleet_jsonl ~n_domains:3 in
  check_true "fleet jsonl is non-empty" (String.length a > 0);
  Alcotest.(check string) "1 vs 3 domains byte-identical" a b;
  (* Every tenant recorded windows, and the aggregate matched the barrier
     count of the longest-lived tenant. *)
  List.iter
    (fun (name, ws) -> check_true (name ^ " has windows") (ws <> []))
    (Metrics.Fleet.tenant_windows fleet);
  let agg = Metrics.Fleet.aggregate_windows fleet in
  check_true "aggregate has windows" (agg <> []);
  let longest =
    List.fold_left max 0
      (List.map (fun (_, ws) -> List.length ws) (Metrics.Fleet.tenant_windows fleet))
  in
  check_int "aggregate closes one window per barrier" longest (List.length agg)

let fleet_aggregate_sums_steps () =
  let fleet, _ = fleet_jsonl ~n_domains:2 in
  let steps_of ws =
    List.fold_left
      (fun acc (w : Metrics.window) ->
        match List.assoc "steps" w.Metrics.w_values with
        | Metrics.Int n -> acc + n
        | Metrics.Float _ -> acc)
      0 ws
  in
  let tenant_total =
    List.fold_left
      (fun acc (_, ws) -> acc + steps_of ws)
      0
      (Metrics.Fleet.tenant_windows fleet)
  in
  check_int "aggregate windows sum the tenants' step deltas" tenant_total
    (steps_of (Metrics.Fleet.aggregate_windows fleet))

(* ---- Flight recorder ---- *)

let flight_dump_writes_header_and_ring () =
  let r, _ = metered_run ~window:500 ~keep:Metrics.default_flight_keep () in
  let path = Filename.temp_file "regionsel" ".flight.jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let n =
        Metrics.flight_dump ~path ~cli:"regionsel_sim run gzip" ~detail:"unit test"
          (Metrics.windows r)
      in
      check_int "dumps the retained ring" Metrics.default_flight_keep n;
      let lines =
        In_channel.with_open_text path In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      let header = List.hd lines in
      check_true "header carries the reproducer line"
        (String.length header > 0
        && header.[0] = '{'
        &&
        let has sub =
          let nn = String.length sub in
          let rec at i =
            i + nn <= String.length header && (String.sub header i nn = sub || at (i + 1))
          in
          at 0
        in
        has "\"flight\"" && has "regionsel_sim run gzip" && has "unit test");
      let per_window =
        List.length (List.hd (Metrics.windows r)).Metrics.w_values
      in
      check_int "header plus one line per series per window"
        (1 + (n * per_window))
        (List.length lines))

let suite =
  [
    case "windows close at absolute boundaries" windows_close_at_absolute_boundaries;
    case "finalize is boundary-exact" finalize_is_boundary_exact;
    case "keep bounds the ring" keep_bounds_the_ring;
    case "notify fires per window" notify_fires_per_window;
    case "quantile series require a sink" quantiles_require_a_sink;
    case "metered run changes no metric" metered_run_changes_no_metric;
    case "jsonl byte-identical across reruns" jsonl_is_byte_identical_across_reruns;
    case "jsonl one record per series per window" jsonl_records_are_one_per_series_per_window;
    case "prometheus grammar and uniqueness" prometheus_grammar_and_uniqueness;
    case "fleet jsonl identical across domain counts" fleet_jsonl_identical_across_domain_counts;
    case "fleet aggregate sums steps" fleet_aggregate_sums_steps;
    case "flight dump writes header and ring" flight_dump_writes_header_and_ring;
  ]
