lib/workload/spec_gzip.mli: Spec
