open Regionsel_isa
module Policy = Regionsel_engine.Policy
module Context = Regionsel_engine.Context
module Region = Regionsel_engine.Region
module Code_cache = Regionsel_engine.Code_cache
module Counters = Regionsel_engine.Counters
module Params = Regionsel_engine.Params

module type CONFIG = sig
  val name : string
  val backward_threshold : Params.t -> int
  val exit_threshold : Params.t -> int
end

module Make (C : CONFIG) : Policy.S = struct
  type recording = Idle | Pending of Addr.t | Active of Net_former.t

  type t = {
    ctx : Context.t;
    mutable recording : recording;
    exit_targets : unit Addr.Table.t;
        (** Targets first profiled via a cache exit get the exit threshold. *)
  }

  let name = C.name
  let create ctx = { ctx; recording = Idle; exit_targets = Addr.Table.create 256 }

  (* Checkpoint support.  [exit_targets] is a pure membership set (never
     iterated), so content equality is enough on restore. *)
  let save t emit =
    (match t.recording with
    | Idle -> emit 0
    | Pending a ->
      emit 1;
      emit a
    | Active former ->
      emit 2;
      Net_former.save former emit);
    emit (Addr.Table.length t.exit_targets);
    (* Sorted: canonical bytes regardless of insertion history. *)
    List.iter
      (fun a -> emit a)
      (List.sort Addr.compare
         (Addr.Table.fold (fun a () acc -> a :: acc) t.exit_targets []))

  let load ctx read =
    let t = create ctx in
    (match read () with
    | 0 -> ()
    | 1 -> t.recording <- Pending (read ())
    | 2 -> t.recording <- Active (Net_former.load ~program:ctx.Context.program read)
    | _ -> failwith (name ^ ".load: bad recording tag"));
    let n = read () in
    if n < 0 then failwith (name ^ ".load: negative exit-target count");
    for _ = 1 to n do
      Addr.Table.replace t.exit_targets (read ()) ()
    done;
    t

  let threshold_for t tgt =
    if Addr.Table.mem t.exit_targets tgt then C.exit_threshold t.ctx.Context.params
    else C.backward_threshold t.ctx.Context.params

  (* Count one eligible execution of [tgt]; arm a recording on threshold. *)
  let bump t tgt =
    let c = Counters.incr t.ctx.Context.counters tgt in
    if c >= threshold_for t tgt && t.recording = Idle then begin
      Counters.release t.ctx.Context.counters tgt;
      Addr.Table.remove t.exit_targets tgt;
      t.recording <- Pending tgt
    end

  let advance_recording t block taken next =
    match t.recording with
    | Idle -> Policy.No_action
    | Pending entry ->
      if Addr.equal block.Block.start entry then begin
        let former = Net_former.start ~entry in
        t.recording <- Active former;
        match Net_former.feed former ~ctx:t.ctx ~block ~taken ~next with
        | Net_former.Continue -> Policy.No_action
        | Net_former.Done path ->
          t.recording <- Idle;
          Policy.Install [ Region.spec_of_path ~kind:Region.Trace path ]
      end
      else begin
        (* Control did not reach the armed entry: abandon the recording. *)
        t.recording <- Idle;
        Policy.No_action
      end
    | Active former -> (
      match Net_former.feed former ~ctx:t.ctx ~block ~taken ~next with
      | Net_former.Continue -> Policy.No_action
      | Net_former.Done path ->
        t.recording <- Idle;
        Policy.Install [ Region.spec_of_path ~kind:Region.Trace path ])

  let install_entries = function
    | Policy.No_action -> Addr.Set.empty
    | Policy.Install specs ->
      List.fold_left (fun acc (s : Region.spec) -> Addr.Set.add s.Region.entry acc) Addr.Set.empty
        specs

  let handle t = function
    | Policy.Interp_block ib ->
      let block = ib.Policy.block and taken = ib.Policy.taken and next = ib.Policy.next in
      (* The option is only materialized while a recording is in flight;
         the steady (Idle) state stays allocation-free. *)
      let action =
        match t.recording with
        | Idle -> Policy.No_action
        | Pending _ | Active _ ->
          advance_recording t block taken (if Addr.is_none next then None else Some next)
      in
      if
        taken
        && (not (Addr.is_none next))
        && (not (Code_cache.mem t.ctx.Context.cache next))
        && (not (Addr.Set.mem next (install_entries action)))
        && Addr.is_backward ~src:(Block.last block) ~tgt:next
      then bump t next;
      action
    | Policy.Cache_exited { tgt; _ } ->
      if not (Addr.Table.mem t.exit_targets tgt) then
        if Counters.peek t.ctx.Context.counters tgt = 0 then
          Addr.Table.replace t.exit_targets tgt ();
      bump t tgt;
      Policy.No_action
    | Policy.Region_invalidated { entry } ->
      (* Profiling restarts from scratch for the retired entry. *)
      Addr.Table.remove t.exit_targets entry;
      Counters.release t.ctx.Context.counters entry;
      (match t.recording with
      | Pending e when Addr.equal e entry -> t.recording <- Idle
      | Idle | Pending _ | Active _ -> ());
      Policy.No_action
end
