lib/core/lei.ml: Addr Block History_buffer Lei_former Regionsel_engine Regionsel_isa
