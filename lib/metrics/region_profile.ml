open Regionsel_isa
module Region = Regionsel_engine.Region
module Simulator = Regionsel_engine.Simulator
module Stats = Regionsel_engine.Stats
module Context = Regionsel_engine.Context
module Code_cache = Regionsel_engine.Code_cache

type exit_route = { from_block : Addr.t; target : Addr.t; count : int }

type t = {
  region : Region.t;
  exec_share : float;
  completion_ratio : float;
  insts_per_entry : float;
  routes : exit_route list;
}

let routes_of (r : Region.t) =
  let all =
    Regionsel_engine.Flat_tbl.fold
      (fun key count acc ->
        { from_block = Region.exit_src key; target = Region.exit_tgt key; count } :: acc)
      r.Region.exit_log []
  in
  List.sort (fun a b -> compare b.count a.count) all

let profile_of ~total_insts (r : Region.t) =
  let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  {
    region = r;
    exec_share = ratio r.Region.insts_executed total_insts;
    completion_ratio = ratio r.Region.cycle_iters (r.Region.cycle_iters + r.Region.exits);
    insts_per_entry = ratio r.Region.insts_executed r.Region.entries;
    routes = routes_of r;
  }

let of_result (result : Simulator.result) =
  let total_insts = Stats.total_insts result.Simulator.stats in
  let profiles =
    List.map (profile_of ~total_insts)
      (Code_cache.all_regions result.Simulator.ctx.Context.cache)
  in
  List.sort (fun a b -> compare b.exec_share a.exec_share) profiles

let pp ppf t =
  let r = t.region in
  let kind =
    match r.Region.kind with
    | Region.Trace -> "trace"
    | Region.Combined -> "region"
    | Region.Method -> "method"
  in
  Format.fprintf ppf
    "@[<v>%s #%d entry=%a: %.1f%% of execution, %d entries, %.1f insts/entry, %s%.1f%% \
     completed cycles"
    kind r.Region.id Addr.pp r.Region.entry (100.0 *. t.exec_share) r.Region.entries
    t.insts_per_entry
    (if r.Region.spans_cycle then "" else "acyclic, ")
    (100.0 *. t.completion_ratio);
  List.iteri
    (fun i { from_block; target; count } ->
      if i < 5 then
        Format.fprintf ppf "@,  exit %a -> %a: %d times" Addr.pp from_block Addr.pp target count)
    t.routes;
  if List.length t.routes > 5 then
    Format.fprintf ppf "@,  (%d more exit routes)" (List.length t.routes - 5);
  Format.fprintf ppf "@]"
