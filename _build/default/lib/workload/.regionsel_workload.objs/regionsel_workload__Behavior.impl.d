lib/workload/behavior.ml: Addr Array Format List Regionsel_isa Regionsel_prng String
