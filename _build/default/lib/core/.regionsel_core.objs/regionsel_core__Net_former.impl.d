lib/core/net_former.ml: Addr Block List Regionsel_engine Regionsel_isa
