test/test_interp.ml: Alcotest Block Fixtures List Option Program Regionsel_engine Regionsel_isa Regionsel_workload Terminator
