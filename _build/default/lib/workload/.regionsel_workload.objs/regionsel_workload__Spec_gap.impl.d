lib/workload/spec_gap.ml: Builder Patterns Spec
