lib/core/combined_lei.mli: Regionsel_engine
