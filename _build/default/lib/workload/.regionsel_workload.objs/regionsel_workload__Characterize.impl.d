lib/workload/characterize.ml: Addr Behavior Block Format Image List Program Regionsel_isa Terminator
