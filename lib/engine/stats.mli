(** Raw dynamic counts accumulated over one simulated run. *)

type t = {
  mutable steps : int;  (** Blocks executed (interpreted + cached). *)
  mutable interpreted_insts : int;
  mutable cached_insts : int;
  mutable taken_branches : int;
  mutable region_transitions : int;
      (** Exits from one cached region directly into another (the linked-stub
          jumps the paper counts as separation). *)
  mutable dispatches : int;  (** Interpreter-to-cache entries. *)
  mutable cache_exits_to_interp : int;
  mutable installs : int;  (** Regions selected. *)
  mutable links : int;
      (** Distinct region-to-region links created (exit stubs patched to
          jump directly to another region) — the memory the paper's
          footnote 9 expects its algorithms to reduce. *)
  mutable link_hits : int;
      (** Region transitions taken through a patched link slot rather than
          the dispatch array (compiled mode only; 0 in legacy mode). *)
  mutable node_steps : int;
      (** Cached steps executed through the compiled region automaton
          (compiled mode only; 0 in legacy mode). *)
  mutable install_rejects : int;
      (** Install attempts the cache rejected (duplicate, blacklisted or
          translation-failed) or the bailout cooldown suppressed. *)
  mutable faults_injected : int;  (** Fault events delivered to this run. *)
  mutable async_exits : int;
      (** Spurious asynchronous exits that actually kicked execution out of
          region mode. *)
  mutable bailouts : int;  (** Watchdog flush-and-interpret bailouts. *)
  mutable recovery_steps : int;
      (** Steps spent inside a bailout cooldown (pure interpretation). *)
}

val create : unit -> t

(** An immutable copy of the counters at one instant, so windowed readers
    (the bailout watchdog, telemetry samplers) work off a frozen image
    instead of live mutable fields that may advance under them. *)
module Snapshot : sig
  type t = {
    steps : int;
    interpreted_insts : int;
    cached_insts : int;
    taken_branches : int;
    region_transitions : int;
    dispatches : int;
    cache_exits_to_interp : int;
    installs : int;
    links : int;
    link_hits : int;
    node_steps : int;
    install_rejects : int;
    faults_injected : int;
    async_exits : int;
    bailouts : int;
    recovery_steps : int;
  }
end

val snapshot : t -> Snapshot.t
(** Freeze the current counter values. *)

val diff : earlier:Snapshot.t -> later:Snapshot.t -> Snapshot.t
(** Field-wise [later - earlier], clamped at zero: the activity inside
    one window.  A window that straddles a counter reload (snapshot
    restore to an older image) reads as empty activity, never as a
    negative rate. *)

val save : t -> (int -> unit) -> unit
(** Checkpoint support: emit every counter, in declaration order. *)

val load : t -> (unit -> int) -> unit
(** Overwrite every counter from a {!save} stream. *)

val save_snapshot : Snapshot.t -> (int -> unit) -> unit
val load_snapshot : (unit -> int) -> Snapshot.t

val total_insts : t -> int

val hit_rate : t -> float
(** Fraction of executed instructions executed from the code cache. *)
