lib/engine/interp.mli: Addr Block Regionsel_isa Regionsel_workload
