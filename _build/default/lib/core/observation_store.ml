open Regionsel_isa
module Gauges = Regionsel_engine.Gauges

type t = { table : Compact_trace.t list Addr.Table.t; gauges : Gauges.t; mutable bytes : int }

let create gauges = { table = Addr.Table.create 64; gauges; bytes = 0 }

let record t trace =
  let entry = Compact_trace.entry trace in
  let prev = Option.value ~default:[] (Addr.Table.find_opt t.table entry) in
  Addr.Table.replace t.table entry (trace :: prev);
  let bytes = Compact_trace.size_bytes trace in
  t.bytes <- t.bytes + bytes;
  Gauges.add_observed_bytes t.gauges bytes

let count t entry =
  match Addr.Table.find_opt t.table entry with Some l -> List.length l | None -> 0

let take t entry =
  match Addr.Table.find_opt t.table entry with
  | None -> []
  | Some traces ->
    Addr.Table.remove t.table entry;
    let bytes = List.fold_left (fun acc tr -> acc + Compact_trace.size_bytes tr) 0 traces in
    t.bytes <- t.bytes - bytes;
    Gauges.add_observed_bytes t.gauges (-bytes);
    List.rev traces

let total_bytes t = t.bytes
let n_entries t = Addr.Table.length t.table
