test/test_metrics.ml: Alcotest Block Fixtures Gen List QCheck QCheck_alcotest Regionsel_core Regionsel_engine Regionsel_isa Regionsel_metrics Terminator
