lib/metrics/run_metrics.mli: Format Regionsel_engine
