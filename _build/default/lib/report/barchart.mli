(** Unicode bar charts, used to render the paper's figures in a terminal. *)

val bar : width:int -> max:float -> float -> string
(** [bar ~width ~max v] is a horizontal bar proportional to [v / max]
    (clamped to [[0, 1]]), using block characters for sub-cell precision. *)

val chart : ?width:int -> title:string -> (string * float) list -> string
(** [chart ~title rows] renders a labelled bar per row, scaled to the
    largest value, with the numeric value printed after each bar. *)

val print : ?width:int -> title:string -> (string * float) list -> unit
