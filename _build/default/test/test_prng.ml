module Splitmix = Regionsel_prng.Splitmix
open Fixtures

let stream g n = List.init n (fun _ -> Splitmix.next_int64 g)

let determinism () =
  let a = Splitmix.create ~seed:42L and b = Splitmix.create ~seed:42L in
  Alcotest.(check (list int64)) "same seed, same stream" (stream a 32) (stream b 32)

let seeds_differ () =
  let a = Splitmix.create ~seed:1L and b = Splitmix.create ~seed:2L in
  check_true "different seeds diverge" (stream a 8 <> stream b 8)

let copy_independent () =
  let a = Splitmix.create ~seed:5L in
  let b = Splitmix.copy a in
  let sa = stream a 16 in
  let sb = stream b 16 in
  Alcotest.(check (list int64)) "copy replays the same future" sa sb

let split_diverges () =
  let a = Splitmix.create ~seed:5L in
  let b = Splitmix.split a in
  check_true "split stream differs from parent" (stream a 8 <> stream b 8)

let split_deterministic () =
  let mk () =
    let g = Splitmix.create ~seed:9L in
    let h = Splitmix.split g in
    stream h 8
  in
  Alcotest.(check (list int64)) "split is deterministic" (mk ()) (mk ())

let int_bounds () =
  let g = Splitmix.create ~seed:3L in
  for _ = 1 to 1_000 do
    let v = Splitmix.int g 17 in
    check_true "int in bounds" (v >= 0 && v < 17)
  done

let int_one () =
  let g = Splitmix.create ~seed:3L in
  check_int "bound 1 always 0" 0 (Splitmix.int g 1)

let float_range () =
  let g = Splitmix.create ~seed:3L in
  for _ = 1 to 1_000 do
    let v = Splitmix.float g in
    check_true "float in [0,1)" (v >= 0.0 && v < 1.0)
  done

let bernoulli_extremes () =
  let g = Splitmix.create ~seed:3L in
  for _ = 1 to 100 do
    check_true "p=1 always true" (Splitmix.bernoulli g ~p:1.0);
    check_true "p=0 always false" (not (Splitmix.bernoulli g ~p:0.0))
  done

let bernoulli_rate () =
  let g = Splitmix.create ~seed:11L in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Splitmix.bernoulli g ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check_true "empirical rate near 0.3" (abs_float (rate -. 0.3) < 0.02)

let categorical_range () =
  let g = Splitmix.create ~seed:3L in
  let weights = [| 1.0; 2.0; 3.0 |] in
  for _ = 1 to 1_000 do
    let i = Splitmix.categorical g ~weights in
    check_true "index in range" (i >= 0 && i < 3)
  done

let categorical_rates () =
  let g = Splitmix.create ~seed:13L in
  let weights = [| 1.0; 3.0 |] in
  let counts = [| 0; 0 |] in
  let n = 20_000 in
  for _ = 1 to n do
    let i = Splitmix.categorical g ~weights in
    counts.(i) <- counts.(i) + 1
  done;
  let rate1 = float_of_int counts.(1) /. float_of_int n in
  check_true "weighted rate near 0.75" (abs_float (rate1 -. 0.75) < 0.02)

let categorical_zero_weight () =
  let g = Splitmix.create ~seed:3L in
  let weights = [| 0.0; 1.0; 0.0 |] in
  for _ = 1 to 200 do
    check_int "zero-weight entries never drawn" 1 (Splitmix.categorical g ~weights)
  done

let bool_balanced () =
  let g = Splitmix.create ~seed:17L in
  let n = 20_000 in
  let trues = ref 0 in
  for _ = 1 to n do
    if Splitmix.bool g then incr trues
  done;
  let rate = float_of_int !trues /. float_of_int n in
  check_true "bool near fair" (abs_float (rate -. 0.5) < 0.02)

let qcheck_int_bounds =
  QCheck.Test.make ~name:"int g bound stays in [0, bound)" ~count:500
    QCheck.(pair (int_bound 1_000_000) small_int)
    (fun (seed, bound) ->
      let bound = max 1 bound in
      let g = Splitmix.create ~seed:(Int64.of_int seed) in
      let v = Splitmix.int g bound in
      v >= 0 && v < bound)

let qcheck_bits30 =
  QCheck.Test.make ~name:"bits30 stays below 2^30" ~count:500
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let g = Splitmix.create ~seed:(Int64.of_int seed) in
      let v = Splitmix.bits30 g in
      v >= 0 && v < 0x4000_0000)

let suite =
  [
    case "determinism" determinism;
    case "seeds differ" seeds_differ;
    case "copy independent" copy_independent;
    case "split diverges" split_diverges;
    case "split deterministic" split_deterministic;
    case "int bounds" int_bounds;
    case "int bound 1" int_one;
    case "float range" float_range;
    case "bernoulli extremes" bernoulli_extremes;
    case "bernoulli rate" bernoulli_rate;
    case "categorical range" categorical_range;
    case "categorical rates" categorical_rates;
    case "categorical zero weight" categorical_zero_weight;
    case "bool balanced" bool_balanced;
    QCheck_alcotest.to_alcotest qcheck_int_bounds;
    QCheck_alcotest.to_alcotest qcheck_bits30;
  ]
