(** The program interpreter: replays a workload image block by block.

    This is the substitute for the Pin-reported dynamic basic-block stream
    of the paper's framework (Section 2.3).  Branch outcomes come from the
    image's behaviour specs, instantiated with a private PRNG stream per
    branch site so runs are deterministic per seed.  Calls and returns use a
    real shadow stack, so return addresses — and hence interprocedural
    cycles — behave exactly as in native execution. *)

open Regionsel_isa

type t

val create : Regionsel_workload.Image.t -> seed:int64 -> t

type step = {
  block : Block.t;  (** The block just executed. *)
  taken : bool;  (** Whether its terminator transferred control away. *)
  next : Addr.t option;  (** The next block start; [None] after a halt. *)
}

val step : t -> step option
(** Execute one block. [None] once the program has halted (explicit [Halt]
    or return with an empty stack). *)

val pc : t -> Addr.t option
(** The next block to execute. *)

val stack_depth : t -> int

exception Runaway_stack of int
(** Raised if the shadow stack exceeds a sanity bound (100_000 frames),
    which would indicate a malformed workload. *)
