lib/workload/patterns.ml: Array Behavior Builder List Printf
