lib/workload/spec_twolf.mli: Spec
