lib/workload/spec_gap.mli: Spec
