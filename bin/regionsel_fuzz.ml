(* Differential fuzz driver: random workloads x policies x fault schedules
   x dispatch modes, every run under the invariant sanitizer with a
   shadow-interpreter oracle and a compiled-vs-legacy metric cross-check.
   The first failure is greedily shrunk to a minimal case and reported as
   a replayable command line. *)

module Check = Regionsel_check.Check
module Fuzz = Regionsel_check.Fuzz

let usage =
  "regionsel_fuzz [--seeds A-B | --seed N] [--steps N] [--shrink] [--out FILE] \
   [--snapshots [--corruptions N]] [--streams] [--frames [--cases N]]\n\
   regionsel_fuzz --seed N --genome G1,G2,... [--policy P] [--fault F] [--legacy] \
   [--legacy-dispatch] [--steps N]\n\
   regionsel_fuzz --self-test-break [--flight FILE]"

let parse_seeds s =
  match String.index_opt s '-' with
  | None -> (int_of_string s, int_of_string s)
  | Some i ->
    ( int_of_string (String.sub s 0 i),
      int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )

let parse_genome s =
  String.split_on_char ',' s |> List.filter (fun g -> g <> "") |> List.map int_of_string

let report_failure ~shrink ~out ~flight (c, f) =
  Printf.printf "FAIL %s\n  %s\n%!" (Fuzz.cli_line c) (Fuzz.failure_to_string f);
  let c, f = if shrink then Fuzz.shrink c f else (c, f) in
  if shrink then
    Printf.printf "shrunk to: %s\n  %s\n%!" (Fuzz.cli_line c) (Fuzz.failure_to_string f);
  (match out with
  | "" -> ()
  | path ->
    let oc = open_out path in
    Printf.fprintf oc "%s\n# %s\n" (Fuzz.cli_line c) (Fuzz.failure_to_string f);
    close_out oc;
    Printf.printf "reproducer written to %s\n%!" path);
  match flight with
  | "" -> ()
  | path ->
    let n = Fuzz.flight_dump c f ~path in
    Printf.printf "flight recorder: %d windows -> %s\n%!" n path

(* Daemon-framing axis: batter the wire protocol — truncated frames,
   bit flips, garbage splices, corrupt length prefixes — through the
   server's incremental dechunker and, for Events bodies, the batch
   event codec.  The contract under fuzz: every outcome is typed
   ([Proto.Protocol_error] / [Persist.Hard_corruption] / clean decode),
   never any other exception, and a pristine byte stream always decodes
   every frame that went in. *)
let run_frames_seed ~cases seed =
  let module P = Regionsel_serve.Proto in
  let module Sm = Regionsel_prng.Splitmix in
  let module Spec = Regionsel_workload.Spec in
  let module Suite = Regionsel_workload.Suite in
  let module Image = Regionsel_workload.Image in
  let module Program = Regionsel_isa.Program in
  let module Block = Regionsel_isa.Block in
  let module Addr = Regionsel_isa.Addr in
  let module Event_log = Regionsel_persist.Event_log in
  let module Persist = Regionsel_persist.Persist in
  let module Branch_stream = Regionsel_engine.Branch_stream in
  let rng = Sm.create ~seed:(Int64.add (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L) 1L) in
  let spec = match Suite.find "gzip" with Some s -> s | None -> assert false in
  let image = Spec.image spec in
  let program = image.Image.program in
  let n_blocks = Program.n_blocks program in
  let mk_events n =
    let ev = Branch_stream.recorder () in
    for _ = 1 to n do
      let next =
        if Sm.bool rng then (Program.block_of_id program (Sm.int rng n_blocks)).Block.start
        else Addr.none
      in
      Branch_stream.append_event ev ~block_id:(Sm.int rng n_blocks) ~taken:(Sm.bool rng)
        ~next
    done;
    Event_log.encode_batch ~program ev ~pos:0 ~len:n
  in
  let valid_msg () =
    match Sm.int rng 8 with
    | 0 ->
      P.Hello
        { h_tenant = "t"; h_bench = "gzip"; h_policy = "net"; h_seed = 7L;
          h_max_steps = Sm.int rng 100000 }
    | 1 -> P.Events (mk_events (1 + Sm.int rng 200))
    | 2 -> P.Fin
    | 3 -> P.Ctrl "status"
    | 4 -> P.Welcome { resume_step = Sm.int rng 100000; session = "s" }
    | 5 -> P.Reject { code = P.Bad_frame; detail = "detail" }
    | 6 -> P.Result "{}"
    | _ -> P.Data "body"
  in
  let n_ok = ref 0 and n_rejected = ref 0 in
  let failure = ref None in
  let case i =
    let n_msgs = 1 + Sm.int rng 3 in
    let buf = Buffer.create 256 in
    for _ = 1 to n_msgs do
      Buffer.add_bytes buf (P.encode (valid_msg ()))
    done;
    let data = Buffer.to_bytes buf in
    let mutation = Sm.int rng 4 in
    let data =
      match mutation with
      | 0 -> data (* pristine: must decode every frame *)
      | 1 ->
        (* truncate mid-stream *)
        Bytes.sub data 0 (1 + Sm.int rng (Bytes.length data - 1))
      | 2 ->
        (* flip one bit *)
        let j = Sm.int rng (Bytes.length data) in
        Bytes.set data j
          (Char.chr (Char.code (Bytes.get data j) lxor (1 lsl Sm.int rng 8)));
        data
      | _ ->
        (* splice trailing garbage *)
        Bytes.cat data (Bytes.init (1 + Sm.int rng 32) (fun _ -> Char.chr (Sm.int rng 256)))
    in
    let dech = P.Dechunker.create () in
    let decoded = ref 0 in
    let outcome =
      try
        let pos = ref 0 in
        while !pos < Bytes.length data do
          let len = min (1 + Sm.int rng 97) (Bytes.length data - !pos) in
          P.Dechunker.feed dech data ~pos:!pos ~len;
          pos := !pos + len;
          let draining = ref true in
          while !draining do
            match P.Dechunker.next dech with
            | Some msg ->
              incr decoded;
              (match msg with
              | P.Events body -> (
                try
                  ignore
                    (Event_log.decode_batch body ~program
                       ~into:(Branch_stream.recorder ()))
                with Persist.Hard_corruption _ -> ())
              | _ -> ())
            | None -> draining := false
          done
        done;
        `Clean
      with P.Protocol_error _ -> `Rejected
    in
    match outcome with
    | `Clean when mutation = 0 && !decoded <> n_msgs ->
      failure :=
        Some
          (Printf.sprintf "case %d: pristine stream decoded %d of %d frames" i !decoded
             n_msgs)
    | `Rejected when mutation = 0 ->
      failure := Some (Printf.sprintf "case %d: pristine stream rejected" i)
    | `Clean -> incr n_ok
    | `Rejected -> incr n_rejected
  in
  let i = ref 0 in
  while !failure = None && !i < cases do
    (try case !i
     with e ->
       failure :=
         Some (Printf.sprintf "case %d: unexpected exception %s" !i (Printexc.to_string e)));
    incr i
  done;
  (!failure, !n_ok, !n_rejected)

let () =
  let seeds = ref "1-5" in
  let steps = ref 4000 in
  let shrink = ref false in
  let self_test = ref false in
  let out = ref "" in
  let genome = ref "" in
  let policy = ref "net" in
  let fault = ref "" in
  let legacy = ref false in
  let legacy_dispatch = ref false in
  let snapshots = ref false in
  let corruptions = ref 50 in
  let streams = ref false in
  let frames = ref false in
  let cases = ref 200 in
  let flight = ref "" in
  let spec =
    [
      ("--seeds", Arg.Set_string seeds, "A-B  seed range to fuzz (default 1-5)");
      ("--seed", Arg.Set_string seeds, "N  fuzz (or replay) a single seed");
      ("--steps", Arg.Set_int steps, "N  step budget per case (default 4000)");
      ("--shrink", Arg.Set shrink, " greedily shrink the first failure before reporting");
      ("--out", Arg.Set_string out, "FILE  write the reproducer command line to FILE");
      ( "--genome",
        Arg.Set_string genome,
        "G1,G2,...  replay one explicit case instead of fuzzing" );
      ("--policy", Arg.Set_string policy, "NAME  policy for --genome replay (default net)");
      ( "--fault",
        Arg.Set_string fault,
        "NAME  fault profile for --genome replay (default none)" );
      ( "--legacy",
        Arg.Set legacy,
        " use legacy (non-compiled) region stepping for --genome replay" );
      ( "--legacy-dispatch",
        Arg.Set legacy_dispatch,
        " use the legacy terminator-match interpreter (not the threaded closure table) \
         for --genome replay" );
      ( "--snapshots",
        Arg.Set snapshots,
        " fuzz the checkpoint restore path instead: corrupt a mid-run snapshot and \
         require clean/degraded/rejected restores, never a crash or silent divergence" );
      ( "--corruptions",
        Arg.Set_int corruptions,
        "N  corrupted restores per seed with --snapshots (default 50)" );
      ( "--streams",
        Arg.Set streams,
        " fuzz the multi-stream scheduler instead: seeded 2-4 tenant fleets (mixed \
         policies and faults), each tenant solo-checked under the sanitizer, then \
         multiplexed and held to solo parity and cross-domain budget determinism" );
      ( "--frames",
        Arg.Set frames,
        " fuzz the daemon wire protocol instead: truncated/bit-flipped/garbage frames \
         through the incremental dechunker and the batch event codec; every outcome \
         must be a typed reject or a clean decode, never a crash" );
      ("--cases", Arg.Set_int cases, "N  frame cases per seed with --frames (default 200)");
      ( "--self-test-break",
        Arg.Set self_test,
        " (test only) inject a cache corruption and verify the sanitizer catches and \
         shrinks it" );
      ( "--flight",
        Arg.Set_string flight,
        "FILE  on failure, re-run the shrunk case with windowed metrics and dump the \
         flight record (metric history leading up to the crash + reproducer line) to \
         FILE as JSONL" );
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  if !self_test then begin
    match Fuzz.self_test ?flight:(if !flight = "" then None else Some !flight) () with
    | Error msg ->
      Printf.eprintf "self-test FAILED: %s\n%!" msg;
      exit 1
    | Ok budget ->
      Printf.printf "self-test: injected corruption caught; minimal reproducing budget \
                     is %d steps\n%!"
        budget;
      if budget <= 20 then exit 0
      else begin
        Printf.eprintf "self-test FAILED: reproducer budget %d exceeds 20 steps\n%!" budget;
        exit 1
      end
  end;
  let lo, hi = parse_seeds !seeds in
  if !snapshots then begin
    (* Snapshot-corruption axis: per seed, one mid-run checkpoint battered
       [corruptions] times; every restore must land in a lawful outcome. *)
    let failed = ref false in
    let seed = ref lo in
    while (not !failed) && !seed <= hi do
      (match Fuzz.run_snapshot_seed ~corruptions:!corruptions ~max_steps:!steps !seed with
      | None, s ->
        Printf.printf "seed %d: %d restores ok (%d clean, %d degraded, %d rejected)\n%!"
          !seed s.Fuzz.snap_cases s.Fuzz.snap_clean s.Fuzz.snap_degraded s.Fuzz.snap_rejected
      | Some (c, detail), s ->
        failed := true;
        Printf.printf "FAIL %s\n  snapshot restore after %d ok restores: %s\n%!"
          (Fuzz.cli_line c) (s.Fuzz.snap_cases - 1) detail);
      incr seed
    done;
    exit (if !failed then 1 else 0)
  end;
  if !streams then begin
    (* Multi-stream axis: tenant fleets held to solo parity (no budget)
       and cross-domain determinism (shared budget).  Failures are already
       shrunk — per-tenant reproducers print as replayable cli lines. *)
    let failed = ref false in
    let seed = ref lo in
    while (not !failed) && !seed <= hi do
      (match Fuzz.run_streams_seed ~max_steps:!steps !seed with
      | None, n -> Printf.printf "seed %d: %d-tenant fleet ok\n%!" !seed n
      | Some (cases, detail), n ->
        failed := true;
        Printf.printf "FAIL seed %d (%d-tenant fleet, shrunk to %d): %s\n%!" !seed n
          (List.length cases) detail;
        List.iter (fun c -> Printf.printf "  tenant: %s\n%!" (Fuzz.cli_line c)) cases;
        match !out with
        | "" -> ()
        | path ->
          let oc = open_out path in
          Printf.fprintf oc "# %s\n" detail;
          List.iter (fun c -> Printf.fprintf oc "%s\n" (Fuzz.cli_line c)) cases;
          close_out oc;
          Printf.printf "reproducer written to %s\n%!" path);
      incr seed
    done;
    exit (if !failed then 1 else 0)
  end;
  if !frames then begin
    (* Daemon-framing axis: corrupt wire bytes must always land in a
       typed outcome. *)
    let failed = ref false in
    let seed = ref lo in
    while (not !failed) && !seed <= hi do
      (match run_frames_seed ~cases:!cases !seed with
      | None, ok, rejected ->
        Printf.printf "seed %d: %d frame cases ok (%d clean, %d rejected)\n%!" !seed
          (ok + rejected) ok rejected
      | Some detail, _, _ ->
        failed := true;
        Printf.printf "FAIL seed %d (frames): %s\n%!" !seed detail);
      incr seed
    done;
    exit (if !failed then 1 else 0)
  end;
  if !genome <> "" then begin
    (* Explicit replay of one case (the shrinker's output format). *)
    let c =
      {
        Fuzz.seed = lo;
        genome = parse_genome !genome;
        policy = !policy;
        fault = (if !fault = "" then None else Some !fault);
        compiled = not !legacy;
        threaded = not !legacy_dispatch;
        max_steps = !steps;
      }
    in
    match Fuzz.run_case c with
    | None ->
      Printf.printf "ok: %s\n%!" (Fuzz.cli_line c);
      exit 0
    | Some f ->
      report_failure ~shrink:!shrink ~out:!out ~flight:!flight (c, f);
      exit 1
  end;
  let failed = ref false in
  let total = ref 0 in
  let seed = ref lo in
  while (not !failed) && !seed <= hi do
    (match Fuzz.run_seed ~max_steps:!steps !seed with
    | None, n ->
      total := !total + n;
      Printf.printf "seed %d: %d cases ok\n%!" !seed n
    | Some (c, f), n ->
      total := !total + n;
      failed := true;
      report_failure ~shrink:!shrink ~out:!out ~flight:!flight (c, f));
    incr seed
  done;
  if !failed then exit 1
  else begin
    Printf.printf "all %d cases ok (seeds %d-%d)\n%!" !total lo hi;
    exit 0
  end
