type t = {
  table : int Int_tbl.t;
  mutable high_water : int;
  mutable total_allocations : int;
}

let create () = { table = Int_tbl.create 256; high_water = 0; total_allocations = 0 }

let incr t a =
  match Int_tbl.find t.table a with
  | c ->
    let c = c + 1 in
    Int_tbl.replace t.table a c;
    c
  | exception Not_found ->
    Int_tbl.replace t.table a 1;
    t.total_allocations <- t.total_allocations + 1;
    let live = Int_tbl.length t.table in
    if live > t.high_water then t.high_water <- live;
    1

let peek t a = match Int_tbl.find t.table a with c -> c | exception Not_found -> 0
let release t a = Int_tbl.remove t.table a
let live t = Int_tbl.length t.table
let high_water t = t.high_water
let total_allocations t = t.total_allocations

let live_entries t = Int_tbl.fold (fun a c acc -> (a, c) :: acc) t.table []
