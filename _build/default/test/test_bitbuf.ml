module Bitbuf = Regionsel_core.Bitbuf
open Fixtures

let roundtrip_bits () =
  let w = Bitbuf.Writer.create () in
  let bits = [ true; false; true; true; false; false; true; false; true ] in
  List.iter (Bitbuf.Writer.add_bit w) bits;
  check_int "nine bits" 9 (Bitbuf.Writer.length_bits w);
  check_int "two bytes" 2 (Bitbuf.Writer.byte_length w);
  let r = Bitbuf.Reader.create (Bitbuf.Writer.contents w) ~n_bits:9 in
  let back = List.init 9 (fun _ -> Bitbuf.Reader.read_bit r) in
  Alcotest.(check (list bool)) "bits round-trip" bits back

let roundtrip_codes () =
  let w = Bitbuf.Writer.create () in
  List.iter (Bitbuf.Writer.add_bits2 w) [ 0; 1; 2; 3; 3; 0 ];
  Bitbuf.Writer.add_uint32 w 0xDEADBEEF;
  Bitbuf.Writer.add_bits2 w 2;
  let r = Bitbuf.Reader.create (Bitbuf.Writer.contents w) ~n_bits:(Bitbuf.Writer.length_bits w) in
  Alcotest.(check (list int)) "codes" [ 0; 1; 2; 3; 3; 0 ]
    (List.init 6 (fun _ -> Bitbuf.Reader.read_bits2 r));
  check_int "uint32" 0xDEADBEEF (Bitbuf.Reader.read_uint32 r);
  check_int "trailing code" 2 (Bitbuf.Reader.read_bits2 r);
  check_int "nothing remains" 0 (Bitbuf.Reader.remaining_bits r)

let out_of_bits () =
  let w = Bitbuf.Writer.create () in
  Bitbuf.Writer.add_bit w true;
  let r = Bitbuf.Reader.create (Bitbuf.Writer.contents w) ~n_bits:1 in
  ignore (Bitbuf.Reader.read_bit r);
  check_true "reading past the end raises"
    (try
       ignore (Bitbuf.Reader.read_bit r);
       false
     with Bitbuf.Reader.Out_of_bits -> true)

let growth () =
  let w = Bitbuf.Writer.create () in
  for i = 0 to 9_999 do
    Bitbuf.Writer.add_bit w (i mod 3 = 0)
  done;
  check_int "ten thousand bits" 10_000 (Bitbuf.Writer.length_bits w);
  let r = Bitbuf.Reader.create (Bitbuf.Writer.contents w) ~n_bits:10_000 in
  let ok = ref true in
  for i = 0 to 9_999 do
    if Bitbuf.Reader.read_bit r <> (i mod 3 = 0) then ok := false
  done;
  check_true "all bits correct after growth" !ok

let padding_is_zero () =
  let w = Bitbuf.Writer.create () in
  Bitbuf.Writer.add_bit w true;
  let bytes = Bitbuf.Writer.contents w in
  check_int "single byte" 1 (Bytes.length bytes);
  check_int "only the top bit set" 0x80 (Char.code (Bytes.get bytes 0))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"arbitrary bit sequences round-trip" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 200) bool)
    (fun bits ->
      let w = Bitbuf.Writer.create () in
      List.iter (Bitbuf.Writer.add_bit w) bits;
      let r =
        Bitbuf.Reader.create (Bitbuf.Writer.contents w) ~n_bits:(Bitbuf.Writer.length_bits w)
      in
      List.for_all (fun b -> Bitbuf.Reader.read_bit r = b) bits)

let qcheck_uint32_roundtrip =
  QCheck.Test.make ~name:"uint32 values round-trip at any bit offset" ~count:300
    QCheck.(pair (int_range 0 15) (int_bound 0x3FFFFFFF))
    (fun (offset, v) ->
      let w = Bitbuf.Writer.create () in
      for _ = 1 to offset do
        Bitbuf.Writer.add_bit w true
      done;
      Bitbuf.Writer.add_uint32 w v;
      let r =
        Bitbuf.Reader.create (Bitbuf.Writer.contents w) ~n_bits:(Bitbuf.Writer.length_bits w)
      in
      for _ = 1 to offset do
        ignore (Bitbuf.Reader.read_bit r)
      done;
      Bitbuf.Reader.read_uint32 r = v)

let suite =
  [
    case "roundtrip bits" roundtrip_bits;
    case "roundtrip codes" roundtrip_codes;
    case "out of bits" out_of_bits;
    case "growth" growth;
    case "padding is zero" padding_is_zero;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_uint32_roundtrip;
  ]
