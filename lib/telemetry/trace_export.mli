(** Post-run timeline export for a finished {!Telemetry.t}.

    Two formats:

    - {!write_chrome} emits Chrome [trace_event] JSON (the
      ["traceEvents"] object format), loadable in [chrome://tracing] and
      {{:https://ui.perfetto.dev}Perfetto}.  Each region lifetime span
      becomes a complete (["ph":"X"]) event — [ts] is the install step,
      [dur] the residency in steps — packed onto the smallest set of
      tracks such that overlapping spans never share one; faults,
      bailouts and blacklist events become instant (["ph":"i"]) events.
    - {!write_jsonl} emits one JSON object per surviving ring event
      (oldest first), followed by a final summary record with the span
      count, drop count and the four histograms.

    Call {!Telemetry.finish} before exporting so regions still live at the
    end of the run are closed into spans. *)

val write_chrome : ?name:string -> Telemetry.t -> path:string -> unit
(** [name] labels the Perfetto process track (default ["regionsel"]). *)

val write_jsonl : Telemetry.t -> path:string -> unit

val histograms_json : Telemetry.t -> string
(** The four histograms as one JSON object (also embedded in the JSONL
    summary record): [{"residency": {"count": ..., "sum": ..., "max": ...,
    "buckets": [{"lo": ..., "hi": ..., "count": ...}, ...]}, ...}]. *)
