(** The code cache: installed regions, indexed by entry address.

    As in the paper's framework (Section 2.3) the cache is unbounded by
    default.  A capacity (under the {!Region.cache_bytes} cost model) can
    be set for the bounded-cache ablation, with either of two overflow
    policies: Dynamo's preemptive whole-cache flush, or FIFO eviction of
    the oldest regions.  Evicted regions are retired — kept for metrics but
    no longer dispatchable — and re-selecting an entry that was previously
    evicted counts as a {e regeneration}, the cost the paper argues its
    fewer-larger-regions algorithms reduce.

    The cache is also the recovery substrate of the fault model (see
    DESIGN.md "Fault model & recovery invariants"): regions can be
    {e invalidated} when a code write dirties their span, installs can fail
    (flaky translation), and entries that repeatedly fail are
    {e blacklisted} with exponential backoff so they stop being re-selected
    for a growing cooldown. *)

open Regionsel_isa

type t

type reject =
  | Duplicate_entry  (** A live region with the same entry exists. *)
  | Blacklisted  (** The entry is in a blacklist cooldown. *)
  | Translation_failed  (** An injected translation-failure window is open. *)
  | Quota_exceeded
      (** The region alone is larger than the tenant's byte quota, so no
          amount of eviction can admit it (see {!set_quota}). *)

val reject_to_string : reject -> string

val create :
  ?capacity_bytes:int ->
  ?eviction:Params.eviction ->
  ?blacklist_base_cooldown:int ->
  ?blacklist_max_shift:int ->
  ?telemetry:Regionsel_telemetry.Telemetry.sink ->
  ?program:Program.t ->
  unit ->
  t
(** [create ()] is unbounded; pass [capacity_bytes] to bound it.  Pass
    [program] to enable the flat dispatch array behind {!dispatch} (and the
    O(1) fast path of {!mem}).  Pass [telemetry] to emit lifecycle events
    (install, evict/flush, invalidate, link patch/sever, blacklist
    add/expire) stamped with the {!set_now} step; the default sink is a
    no-op and the events are pure observation — no cache decision ever
    depends on the sink. *)

val find : t -> Addr.t -> Region.t option
(** The live region whose {e entry} is the given address, if any.  Regions
    are single-entry: an address inside a region's body is not a hit. *)

val find_live : t -> Addr.t -> Region.t
(** Option-free {!find} for callers without a block id at hand.
    @raise Not_found when no live region has that entry. *)

val dispatch : t -> int -> Region.t option
(** [dispatch t block_id] is the live region claiming that block as its
    entry (or an aux entry) — the simulator's per-transition probe: a
    single flat-array read, no hash table.  Returns [None] for negative
    ids ([Program.block_id] of a non-start address) and on caches created
    without [~program]. *)

val mem : t -> Addr.t -> bool

val add_link : t -> from:Region.t -> slot:int -> target:Region.t -> unit
(** Patch [from]'s exit stub for block id [slot] to jump straight to
    [target] (fragment linking).  First link through a slot wins; only
    call it immediately after {!dispatch} on [slot] returned [target], so
    the link agrees with the dispatch array.  The cache registers the link
    and severs it automatically — the invariant is {e no link may outlive
    its target region} — when the target is retired by any path
    ({!invalidate_range}, {!shock}, {!flush_all}, eviction) or when a new
    install claims the slot's block id. *)

val n_links : t -> int
(** Links currently live (patched exit stubs). *)

val links_created : t -> int
(** Links ever patched in. *)

val link_severs : t -> int
(** Links unpatched because their target was retired or their slot's block
    id was reclaimed by a new install. *)

val is_live : t -> Region.t -> bool
(** Whether this exact region (physical identity) is still dispatchable. *)

val install : t -> Region.spec -> (Region.t, reject) result
(** Install a region, assigning it the next id and selection sequence
    number, evicting under the configured policy if the cache would
    overflow.  Total: a duplicate entry, a blacklisted entry, or an armed
    translation-failure window yields [Error] instead of raising, so
    invalidation/regeneration races surface as policy-visible outcomes. *)

val install_exn : t -> Region.spec -> Region.t
(** {!install}, raising on rejection — for tests and harnesses where
    rejection is a bug.
    @raise Invalid_argument on any [Error]. *)

val invalidate_range : t -> lo:Addr.t -> hi:Addr.t -> Region.t list
(** Retire every live region one of whose constituent blocks intersects
    the address range [[lo, hi]] (a self-modifying-code write), including
    their aux-entry index slots, and blacklist each retired entry.  Returns
    the retired regions in selection order. *)

val shock : t -> bytes:int -> Region.t list
(** Apply cache pressure that must reclaim [bytes]: a whole flush under
    [Flush_all], oldest-first eviction until freed under [Evict_oldest].
    Returns the retired regions. *)

val flush_all : t -> Region.t list
(** Retire every live region and count one flush (the bailout watchdog's
    hammer).  Returns the retired regions in selection order. *)

val set_quota : t -> int option -> Region.t list
(** Set or clear the runtime byte quota — a scheduler-imposed bound (the
    tenant's share of a global budget) that tightens [capacity_bytes] for
    as long as it is set: installs evict under [min capacity quota], and a
    region larger than the quota is rejected outright with
    [Quota_exceeded].  Tightening the quota below the current footprint
    evicts oldest-first (whatever the configured eviction policy — global
    budget pressure is not the tenant's fault, so a whole-cache flush
    would be out of proportion) until the footprint fits; the evicted
    regions are returned so the caller can deliver invalidations.  The
    quota is runtime state, not part of snapshots: whoever imposed it
    re-imposes it after a restore.
    @raise Invalid_argument on a negative quota. *)

val quota : t -> int option
(** The current quota, if one is set. *)

val quota_rejects : t -> int
(** Installs rejected with [Quota_exceeded]. *)

val quota_evictions : t -> int
(** Regions evicted by {!set_quota} tightening (a subset of the evictions
    counter). *)

val arm_translation_failures : t -> window:int -> unit
(** Make every install within the next [window] steps (measured against
    {!set_now}) fail with [Translation_failed].  A new window extends, but
    never shortens, an open one. *)

val set_now : t -> int -> unit
(** Advance the cache's notion of the current step, which blacklist
    cooldowns are measured against.  Monotonic: an earlier step is clamped
    (never applied) and counted in {!clock_regressions} so the sanitizer
    can flag the non-monotone caller. *)

val now : t -> int
(** The current step as last advanced by {!set_now}. *)

val clock_regressions : t -> int
(** Times {!set_now} was handed a step earlier than the current one.  The
    simulator's stamps are monotone by construction, so this is 0 on every
    healthy run — a sanitizer rule under [--check]. *)

val blacklisted_until : t -> Addr.t -> int
(** The step until which the entry is blacklisted (0 = never failed). *)

val n_blacklisted : t -> int
(** Entries currently inside a blacklist cooldown. *)

val regions : t -> Region.t list
(** Live regions, in selection order. *)

val all_regions : t -> Region.t list
(** Live and retired regions, in selection order: the population metrics
    should be computed over. *)

val n_regions : t -> int
(** Live regions. *)

val bytes_used : t -> int
(** Live footprint under the cost model. *)

val evictions : t -> int
(** Regions retired by capacity pressure (including flushes and shocks). *)

val flushes : t -> int
(** Whole-cache flushes performed. *)

val regenerations : t -> int
(** Installs whose entry had previously been evicted or invalidated. *)

val invalidations : t -> int
(** Regions retired by {!invalidate_range}. *)

val blacklist_hits : t -> int
(** Installs rejected because their entry was in a blacklist cooldown. *)

val duplicate_installs : t -> int
(** Installs rejected as duplicates. *)

val translation_failures : t -> int
(** Installs failed by an armed translation-failure window. *)

val region_by_id : t -> int -> Region.t option
(** The live region with the given id, if any (linear in the FIFO; cold
    callers only). *)

(** {1 Checkpoint support} *)

val save : t -> (int -> unit) -> unit
(** Serialize every region ever created (live and retired), the FIFO with
    its tombstones, the aux-entry index, the evicted-entry set, the live
    link graph and all counters — everything except the blacklist, which
    has its own section (see {!save_blacklist}) so it can degrade
    independently. *)

val load : t -> (unit -> int) -> unit
(** Restore a {!save} stream into a freshly created cache over the same
    program.  Decode-then-commit: the stream is fully parsed and
    cross-validated before the first mutation, so on [Failure] /
    [Invalid_argument] the cache is untouched.  Emits no telemetry and
    fires no auditor. *)

val save_blacklist : t -> (int -> unit) -> unit
(** Serialize the blacklist (per-entry failure counts, backoff deadlines)
    and the translation-failure window. *)

val load_blacklist : t -> (unit -> int) -> unit
(** Restore a {!save_blacklist} stream, replacing the current blacklist. *)

val reset_blacklist : t -> unit
(** Forget every blacklist entry and any armed translation-failure window
    (an optimizer crash loses this state along with the cache). *)

(** {1 Sanitizer hooks}

    Introspection used by [Regionsel_check.Check] to audit the DESIGN.md
    invariants from outside the module.  Pure observation: none of these
    mutate the cache (except {!unsafe_corrupt_for_tests}, which exists to
    prove the sanitizer catches real corruption). *)

val set_auditor : t -> (string -> unit) -> unit
(** Install a callback invoked with the operation name after every mutating
    operation ("install", "evict", "flush", "invalidate", "add-link") and
    on a {!set_now} clock regression ("set-now").  The callback must not
    mutate the cache.  With no auditor installed (the default) each call
    site costs one compare. *)

val clear_auditor : t -> unit

val fifo_length : t -> int
(** Elements in the install-order FIFO, live regions plus tombstones. *)

val fifo_tombstones : t -> int
(** Retired regions still occupying FIFO slots.  Bounded: the queue is
    compacted once tombstones outnumber live regions (above a small floor),
    so [fifo_length t - fifo_tombstones t = n_regions t] always, and
    tombstones never exceed [max 8 (n_regions t)] between operations. *)

val iter_entries : t -> (Addr.t -> Region.t -> unit) -> unit
(** Iterate the live entry index (order unspecified). *)

val iter_aux_entries : t -> (Addr.t -> Region.t -> unit) -> unit
(** Iterate the live aux-entry index (order unspecified). *)

val unsafe_corrupt_for_tests : t -> bool
(** Deliberately desynchronize the indices (drop one live region from the
    entry index, leaving its dispatch slot in place) so tests can prove the
    sanitizer fires.  [false] if the cache had no live region to corrupt.
    Never call this outside a test or the fuzz driver's self-test mode. *)
