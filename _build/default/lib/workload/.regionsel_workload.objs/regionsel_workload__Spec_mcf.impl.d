lib/workload/spec_mcf.ml: Builder Patterns Spec
