type eviction = Flush_all | Evict_oldest

type t = {
  net_threshold : int;
  lei_threshold : int;
  lei_buffer_size : int;
  combine_t_prof : int;
  combine_t_min : int;
  combined_net_start : int;
  combined_lei_start : int;
  max_trace_insts : int;
  max_trace_blocks : int;
  mojo_exit_threshold : int;
  boa_threshold : int;
  method_threshold : int;
  cache_capacity_bytes : int option;
  cache_eviction : eviction;
  combined_layout_hot_first : bool;
  icache_size_bytes : int;
  icache_line_bytes : int;
  icache_ways : int;
}

let default =
  {
    net_threshold = 50;
    lei_threshold = 35;
    lei_buffer_size = 500;
    combine_t_prof = 15;
    combine_t_min = 5;
    combined_net_start = 35;
    combined_lei_start = 20;
    max_trace_insts = 1024;
    max_trace_blocks = 64;
    mojo_exit_threshold = 25;
    boa_threshold = 15;
    method_threshold = 50;
    cache_capacity_bytes = None;
    cache_eviction = Flush_all;
    combined_layout_hot_first = true;
    icache_size_bytes = 256;
    icache_line_bytes = 16;
    icache_ways = 2;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>net_threshold=%d@,lei_threshold=%d@,lei_buffer_size=%d@,combine_t_prof=%d@,\
     combine_t_min=%d@,combined_net_start=%d@,combined_lei_start=%d@,max_trace_insts=%d@,\
     max_trace_blocks=%d@,mojo_exit_threshold=%d@,boa_threshold=%d@,cache=%s@]"
    t.net_threshold t.lei_threshold t.lei_buffer_size t.combine_t_prof t.combine_t_min
    t.combined_net_start t.combined_lei_start t.max_trace_insts t.max_trace_blocks
    t.mojo_exit_threshold t.boa_threshold
    (match t.cache_capacity_bytes with
    | None -> "unbounded"
    | Some b ->
      Printf.sprintf "%dB/%s" b
        (match t.cache_eviction with Flush_all -> "flush" | Evict_oldest -> "fifo"))
