lib/workload/behavior.mli: Addr Format Regionsel_isa Regionsel_prng
