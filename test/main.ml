let () =
  Alcotest.run "regionsel"
    [
      (* The daemon suite forks server processes, and OCaml 5 forbids
         Unix.fork once any Domain has ever been spawned — so it must run
         before every domain-spawning suite (domain-pool, multi-stream,
         parity, obs). *)
      "daemon", Test_daemon.suite;
      "prng", Test_prng.suite;
      "isa", Test_isa.suite;
      "behavior", Test_behavior.suite;
      "builder", Test_builder.suite;
      "interp", Test_interp.suite;
      "history-buffer", Test_history_buffer.suite;
      "bitbuf", Test_bitbuf.suite;
      "compact-trace", Test_compact_trace.suite;
      "engine", Test_engine.suite;
      "policies", Test_policies.suite;
      "trace-cfg", Test_trace_cfg.suite;
      "simulator", Test_simulator.suite;
      "metrics", Test_metrics.suite;
      "observation-store", Test_observation_store.suite;
      "report", Test_report.suite;
      "workloads", Test_workloads.suite;
      "workload-structure", Test_workload_structure.suite;
      "transparency", Test_transparency.suite;
      "characterize", Test_characterize.suite;
      "reporting", Test_reporting.suite;
      "fuzz", Test_fuzz.suite;
      "formers", Test_formers.suite;
      "combined", Test_combined.suite;
      "icache", Test_icache.suite;
      "emitter", Test_emitter.suite;
      "extensions", Test_extensions.suite;
      "region", Test_region.suite;
      "code-cache", Test_code_cache.suite;
      "faults", Test_faults.suite;
      "domain-pool", Test_domain_pool.suite;
      "parity", Test_parity.suite;
      "stats", Test_stats.suite;
      "gauges-counters", Test_gauges_counters.suite;
      "telemetry", Test_telemetry.suite;
      "check", Test_check.suite;
      "persist", Test_persist.suite;
      "branch-stream", Test_branch_stream.suite;
      "multi-stream", Test_multi_stream.suite;
      "obs", Test_obs.suite;
    ]
