examples/unbiased_branch.mli:
