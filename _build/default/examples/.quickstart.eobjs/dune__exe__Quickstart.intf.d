examples/quickstart.mli:
