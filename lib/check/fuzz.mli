(** Property-based fuzz harness over the sanitizer.

    A {!case} is a fully deterministic point in the test matrix: a compact
    genome (expanded into a workload program exactly as the qcheck fuzz
    suite expands it), a policy, an optional fault profile, a dispatch
    mode and a step budget.  {!run_case} executes it under
    [Check.checked_run] with a per-step audit; {!run_case_cross} runs both
    region execution modes and additionally requires their mode-invariant
    metrics to agree (the differential compiled-vs-legacy oracle).
    {!run_seed} sweeps one seed's genome across every policy × fault
    profile × interpreter dispatch mode.

    The first failure {!shrink}s greedily — drop the fault profile, drop
    genes, halve gene values, clamp the budget to the failing step — to a
    minimal case whose {!cli_line} replays it from the command line. *)

type case = {
  seed : int;  (** Simulation seed (branch behaviour). *)
  genome : int list;  (** Workload genome; see {!image_of_genome}. *)
  policy : string;  (** A [Regionsel_core.Policies] name. *)
  fault : string option;  (** A [Params.fault_profile] name, if any. *)
  compiled : bool;  (** Region execution mode for {!run_case}. *)
  threaded : bool;
      (** Interpreter dispatch mode: threaded closure table ([true]) or the
          legacy terminator match.  The checked run's shadow interpreter
          always takes the opposite mode, so either setting doubles as a
          live threaded-vs-legacy differential. *)
  max_steps : int;
}

type failure =
  | Violation of Check.violation  (** The sanitizer raised. *)
  | Mode_divergence of string
      (** Compiled and legacy stepping disagreed on a mode-invariant
          metric ({!run_case_cross} only). *)

val failure_to_string : failure -> string

val image_of_genome : int list -> Regionsel_workload.Image.t
(** Expand a genome into a compiled workload image: each gene adds one
    function whose shape (leaf, plain/diamond/nested loop, call loop) and
    parameters derive from the gene value, plus a driver loop over all of
    them.  An empty genome is treated as [[1]]. *)

val cli_line : case -> string
(** A [regionsel_fuzz] invocation replaying exactly this case. *)

val run_case : ?break_at:int -> ?audit_every:int -> case -> failure option
(** Run one case in its own dispatch mode under the sanitizer
    ([audit_every] defaults to 1: a full cache audit every step).
    [break_at] threads through to [Check.checked_run] (self-test only). *)

val run_case_cross : ?audit_every:int -> case -> failure option
(** Run the case under both dispatch modes ([compiled] is ignored) and
    compare their mode-invariant signatures: executed instructions
    (interpreted and cached), dispatches, region transitions, exits to the
    interpreter, installs, and the install-ordered region entry list. *)

val run_seed : ?max_steps:int -> int -> (case * failure) option * int
(** Derive a genome from the seed and sweep it across every policy and
    every fault profile (including none) with {!run_case_cross}.  Returns
    the first failing case, if any, and the number of cases run
    ([max_steps] defaults to 4000 per case). *)

type snapshot_outcome =
  | Snapshot_clean
      (** Every section restored; the continued run finished bit-identical
          to the uninterrupted one. *)
  | Snapshot_degraded of int
      (** [n] sections dropped; the cache passed {!Check.audit_cache}
          immediately after the restore and the run completed. *)
  | Snapshot_rejected  (** [Persist.Hard_corruption]: nothing restored. *)

type snapshot_summary = {
  snap_cases : int;  (** Restores attempted (control + corruptions). *)
  snap_clean : int;
  snap_degraded : int;
  snap_rejected : int;
}

val run_snapshot_seed :
  ?corruptions:int -> ?max_steps:int -> int -> (case * string) option * snapshot_summary
(** The snapshot-corruption axis for one seed: derive a case (genome,
    policy, fault profile and dispatch mode all keyed off the seed),
    capture a [Persist] snapshot halfway through the run, then restore
    the pristine snapshot plus [corruptions] (default 50) mutants of it —
    random byte flips, truncations, garbage tails — each into a fresh
    run.  Every restore must end in one of the three
    {!snapshot_outcome}s; the first that instead raises an unhandled
    exception, fails the immediate post-restore cache audit, or silently
    diverges after a clean restore is returned as [(case, detail)].
    [max_steps] (default 3000) bounds each run. *)

val stream_cases_of_seed : ?max_steps:int -> int -> case list
(** The tenant fleet the multi-stream axis derives from a seed: 2-4
    tenants with their own genomes, cycling through the policy and fault
    tables and alternating dispatch modes ([max_steps] defaults to 3000
    per tenant). *)

val run_streams_seed : ?max_steps:int -> int -> (case list * string) option * int
(** The multi-stream axis for one seed.  Each tenant of
    {!stream_cases_of_seed} first runs solo under the full sanitizer (a
    solo violation shrinks through {!shrink} and is reported as a
    one-tenant fleet); then the fleet is multiplexed through
    [Multi_stream.run] (batch 512) and checked against the scheduler's
    contracts: without a budget every tenant's result must be
    bit-identical to its solo run, and with a shared budget (derived from
    the fleet's unconstrained footprint) the outcome — signatures, quota
    counters, round count — must be identical on 1 and 2 domains, with
    every final cache passing {!Check.audit_cache} (including the
    quota-accounting rule).  A failing fleet shrinks to a single-tenant
    reproducer when one exists, else to a minimal tenant subset.  Returns
    the shrunk fleet and a detail line, if any, plus the fleet size. *)

val shrink : case -> failure -> case * failure
(** Greedily minimize a failing case (re-validating with
    {!run_case_cross} after every candidate edit) until no single edit —
    dropping the fault, dropping a gene, halving a gene, clamping or
    halving the budget — still fails.  Returns the minimal case and its
    failure. *)

val flight_dump :
  ?window:int ->
  ?params:Regionsel_engine.Params.t ->
  case ->
  failure ->
  path:string ->
  int
(** Write the crash flight record for a failing case: re-run it (cases
    are deterministic) with a small-window metrics recorder
    ({!Regionsel_obs.Metrics}), stopping just short of a violation's
    failing step, and dump the retained window ring to [path] as JSONL
    headed by the reproducer CLI line and the failure detail.  The re-run
    is unsanitized — it records the honest metric history leading up to
    the crash.  Always writes at least one window (a failure inside the
    first window ships a zero-step end-state sample).  Returns the number
    of windows written. *)

val self_test : ?flight:string -> unit -> (int, string) result
(** Prove the sanitizer catches real corruption: run a tiny hot loop with
    a low selection threshold and [break_at = 1], so the first installed
    region is silently dropped from the entry index, then shrink the step
    budget of the resulting violation.  [Ok budget] is the minimal budget
    that still reproduces (the acceptance bound is 20); [Error] means the
    corruption went uncaught — the sanitizer is broken.  With [flight], a
    {!flight_dump} of the shrunk reproducer is written there — the CI
    assertion that crash dumps actually appear on the failure path. *)
