(* Open-addressing hash table from non-negative int keys (addresses,
   packed edges) to non-negative int values, for the simulator's per-step
   probes.  [Hashtbl.Make] tables pay an indirect call to the key module's
   [hash]/[equal] per probe; here a probe is a multiply, a shift and a
   linear scan of one int array — no calls, no allocation.

   No deletion (none of the per-step tables ever remove a key), -1 marks
   an empty slot, and iteration order is arbitrary: only use this where
   that order is never observable. *)

type t = {
  mutable keys : int array; (* -1 = empty *)
  mutable vals : int array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable len : int;
}

let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (acc * 2)

let create n =
  let cap = pow2_at_least (max 16 (2 * n)) 16 in
  { keys = Array.make cap (-1); vals = Array.make cap 0; mask = cap - 1; len = 0 }

(* Fibonacci hashing; the shift keeps enough mixed high bits above the
   bucket mask for the capacities we use. *)
let slot mask key = ((key * 0x9E3779B97F4A7C1) lsr 21) land mask

let rec probe keys mask key i =
  let k = Array.unsafe_get keys i in
  if k = key || k = -1 then i else probe keys mask key ((i + 1) land mask)

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = 2 * (t.mask + 1) in
  t.keys <- Array.make cap (-1);
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  for i = 0 to Array.length old_keys - 1 do
    let k = old_keys.(i) in
    if k >= 0 then begin
      let j = probe t.keys t.mask k (slot t.mask k) in
      t.keys.(j) <- k;
      t.vals.(j) <- old_vals.(i)
    end
  done

let maybe_grow t = if 4 * t.len > 3 * (t.mask + 1) then grow t

(* The value bound to [key], or -1 when absent. *)
let find t key =
  let i = probe t.keys t.mask key (slot t.mask key) in
  if Array.unsafe_get t.keys i = key then Array.unsafe_get t.vals i else -1

let mem t key =
  let i = probe t.keys t.mask key (slot t.mask key) in
  Array.unsafe_get t.keys i = key

let set t key v =
  if key < 0 then invalid_arg "Flat_tbl.set: negative key";
  let i = probe t.keys t.mask key (slot t.mask key) in
  if t.keys.(i) = key then t.vals.(i) <- v
  else begin
    t.keys.(i) <- key;
    t.vals.(i) <- v;
    t.len <- t.len + 1;
    maybe_grow t
  end

(* Add [1] to [key]'s count, inserting it at 1: one probe either way. *)
let bump t key =
  if key < 0 then invalid_arg "Flat_tbl.bump: negative key";
  let i = probe t.keys t.mask key (slot t.mask key) in
  if Array.unsafe_get t.keys i = key then t.vals.(i) <- t.vals.(i) + 1
  else begin
    t.keys.(i) <- key;
    t.vals.(i) <- 1;
    t.len <- t.len + 1;
    maybe_grow t
  end

(* [bump] that also reports whether the key was newly inserted, fusing the
   length-changed check callers would otherwise do with two extra reads
   around the probe (Edge_profile invalidates its predecessor index only
   on fresh edges — once per static edge, on a per-step path). *)
let bump_fresh t key =
  if key < 0 then invalid_arg "Flat_tbl.bump_fresh: negative key";
  let i = probe t.keys t.mask key (slot t.mask key) in
  if Array.unsafe_get t.keys i = key then begin
    t.vals.(i) <- t.vals.(i) + 1;
    false
  end
  else begin
    t.keys.(i) <- key;
    t.vals.(i) <- 1;
    t.len <- t.len + 1;
    maybe_grow t;
    true
  end

(* [bump_fresh] generalized to an arbitrary positive increment: the edge
   profiler's flush path lands a whole batched count in one probe. *)
let add_fresh t key n =
  if key < 0 then invalid_arg "Flat_tbl.add_fresh: negative key";
  let i = probe t.keys t.mask key (slot t.mask key) in
  if Array.unsafe_get t.keys i = key then begin
    t.vals.(i) <- t.vals.(i) + n;
    false
  end
  else begin
    t.keys.(i) <- key;
    t.vals.(i) <- n;
    t.len <- t.len + 1;
    maybe_grow t;
    true
  end

let length t = t.len

let fold f t acc =
  let acc = ref acc in
  for i = 0 to Array.length t.keys - 1 do
    if t.keys.(i) >= 0 then acc := f t.keys.(i) t.vals.(i) !acc
  done;
  !acc

let iter f t =
  for i = 0 to Array.length t.keys - 1 do
    if t.keys.(i) >= 0 then f t.keys.(i) t.vals.(i)
  done

(* Key-sorted bindings: a canonical enumeration for snapshot codecs, where
   [iter]'s slot order would leak the table's insertion history (and hence
   a restore-vs-uninterrupted layout difference) into the bytes. *)
let sorted_pairs t =
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (fold (fun k v acc -> (k, v) :: acc) t [])
