lib/workload/suite.ml: List Spec Spec_bzip2 Spec_crafty Spec_eon Spec_gap Spec_gcc Spec_gzip Spec_mcf Spec_parser Spec_perlbmk Spec_twolf Spec_vortex Spec_vpr String
