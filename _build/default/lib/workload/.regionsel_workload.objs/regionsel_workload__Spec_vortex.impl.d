lib/workload/spec_vortex.ml: Builder Patterns Spec
