open Regionsel_isa

type indirect = Weighted of (string * float) list | Round_robin of string list

type term =
  | Fallthrough
  | Jump of string
  | Cond of string * Behavior.spec
  | Call of string
  | Indirect_jump of indirect
  | Indirect_call of indirect
  | Return
  | Halt

type decl = { label : string; size : int; term : term }

type t = {
  base : Addr.t;
  mutable funcs : (string * decl list ref) list; (* newest first *)
  mutable labels : string list; (* for duplicate detection *)
  mutable first_func : string option;
  mutable anon : int;
}

let create ?(base = 0x1000) () =
  { base; funcs = []; labels = []; first_func = None; anon = 0 }

let func t name =
  if t.first_func = None then t.first_func <- Some name;
  t.funcs <- (name, ref []) :: t.funcs

let fresh_label t =
  t.anon <- t.anon + 1;
  Printf.sprintf "__anon_%d" t.anon

let block t ?label ?(size = 4) term =
  match t.funcs with
  | [] -> invalid_arg "Builder.block: no function open (call Builder.func first)"
  | (fname, decls) :: _ ->
    let label =
      match label, !decls with
      | Some l, [] ->
        if not (String.equal l fname) then
          invalid_arg
            (Printf.sprintf "Builder.block: first block of %s must be labelled %s (got %s)" fname
               fname l);
        l
      | Some l, _ -> l
      | None, [] -> fname
      | None, _ -> fresh_label t
    in
    if List.exists (String.equal label) t.labels then
      invalid_arg (Printf.sprintf "Builder.block: duplicate label %s" label);
    t.labels <- label :: t.labels;
    decls := { label; size; term } :: !decls

let compile ?entry t ~name =
  let funcs = List.rev_map (fun (fname, decls) -> fname, List.rev !decls) t.funcs in
  (* Pass 1: lay out addresses. *)
  let addr_of_label = Hashtbl.create 64 in
  let cursor = ref t.base in
  List.iter
    (fun (_fname, decls) ->
      List.iter
        (fun d ->
          Hashtbl.replace addr_of_label d.label !cursor;
          cursor := !cursor + d.size)
        decls)
    funcs;
  let resolve context l =
    match Hashtbl.find_opt addr_of_label l with
    | Some a -> a
    | None -> invalid_arg (Printf.sprintf "Builder.compile: unresolved label %s (in %s)" l context)
  in
  (* Pass 2: build blocks and behaviour tables. *)
  let cond_specs = Addr.Table.create 64 in
  let indirect_specs = Addr.Table.create 16 in
  let blocks = ref [] in
  let cursor = ref t.base in
  List.iter
    (fun (_fname, decls) ->
      List.iter
        (fun d ->
          let start = !cursor in
          cursor := !cursor + d.size;
          let last = start + d.size - 1 in
          let resolve_indirect = function
            | Weighted pairs ->
              Behavior.Weighted_targets
                (Array.of_list (List.map (fun (l, w) -> resolve d.label l, w) pairs))
            | Round_robin ls ->
              Behavior.Round_robin (Array.of_list (List.map (resolve d.label) ls))
          in
          let term =
            match d.term with
            | Fallthrough -> Terminator.Fallthrough
            | Jump l -> Terminator.Jump (resolve d.label l)
            | Cond (l, spec) ->
              Addr.Table.replace cond_specs last spec;
              Terminator.Cond (resolve d.label l)
            | Call l -> Terminator.Call (resolve d.label l)
            | Indirect_jump ind ->
              Addr.Table.replace indirect_specs last (resolve_indirect ind);
              Terminator.Indirect_jump
            | Indirect_call ind ->
              Addr.Table.replace indirect_specs last (resolve_indirect ind);
              Terminator.Indirect_call
            | Return -> Terminator.Return
            | Halt -> Terminator.Halt
          in
          blocks := Block.make ~start ~size:d.size ~term :: !blocks)
        decls)
    funcs;
  let entry_label =
    match entry, t.first_func with
    | Some l, _ -> l
    | None, Some f -> f
    | None, None -> invalid_arg "Builder.compile: empty program"
  in
  let entry = resolve "entry" entry_label in
  match Program.of_blocks ~entry (List.rev !blocks) with
  | Ok program -> { Image.name; program; cond_specs; indirect_specs }
  | Error msg -> invalid_arg ("Builder.compile: " ^ msg)
