lib/workload/spec_perlbmk.ml: Builder Patterns Spec
