bench/main.mli:
