test/test_policies.ml: Alcotest Fixtures List Regionsel_core Regionsel_engine
