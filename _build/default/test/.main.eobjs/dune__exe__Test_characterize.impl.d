test/test_characterize.ml: Fixtures Format List Regionsel_workload
