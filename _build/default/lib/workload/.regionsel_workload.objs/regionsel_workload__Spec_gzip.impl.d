lib/workload/spec_gzip.ml: Builder Patterns Spec
