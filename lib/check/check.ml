open Regionsel_isa
module Image = Regionsel_workload.Image
module Telemetry = Regionsel_telemetry.Telemetry
module Code_cache = Regionsel_engine.Code_cache
module Context = Regionsel_engine.Context
module Interp = Regionsel_engine.Interp
module Params = Regionsel_engine.Params
module Region = Regionsel_engine.Region
module Simulator = Regionsel_engine.Simulator
module Stats = Regionsel_engine.Stats

type violation = { step : int; rule : string; detail : string }

exception Check_violation of violation

let violation_to_string { step; rule; detail } =
  Printf.sprintf "invariant %S violated at step %d: %s" rule step detail

let () =
  Printexc.register_printer (function
    | Check_violation v -> Some (violation_to_string v)
    | _ -> None)

let fail ~step ~rule fmt =
  Printf.ksprintf (fun detail -> raise (Check_violation { step; rule; detail })) fmt

let audit_cache ?telemetry ~program cache ~step =
  (* Dispatch array -> indices: every slot holds a live region that claims
     the slot's block. *)
  for id = 0 to Program.n_blocks program - 1 do
    match Code_cache.dispatch cache id with
    | None -> ()
    | Some r ->
      if not (Code_cache.is_live cache r) then
        fail ~step ~rule:"dispatch-live" "dispatch slot %d holds retired region #%d" id
          r.Region.id;
      let a = (Program.block_of_id program id).Block.start in
      if not (Addr.equal a r.Region.entry || Addr.Set.mem a r.Region.aux_entries) then
        fail ~step ~rule:"dispatch-claim"
          "dispatch slot %d (%s) held by region #%d, whose entry is %s and which claims \
           no aux entry there"
          id (Addr.to_string a) r.Region.id
          (Addr.to_string r.Region.entry)
  done;
  (* Indices -> dispatch array: every binding routes its address back to
     the same physical region, so [find] and [dispatch] cannot disagree. *)
  let expect_dispatch ~what a (r : Region.t) =
    let id = Program.block_id program a in
    if id < 0 then
      fail ~step ~rule:"index-block" "%s index holds %s, which is not a block start" what
        (Addr.to_string a);
    match Code_cache.dispatch cache id with
    | Some r' when r' == r -> ()
    | Some r' ->
      fail ~step ~rule:"index-dispatch"
        "%s index routes %s to region #%d but dispatch slot %d holds region #%d" what
        (Addr.to_string a) r.Region.id id r'.Region.id
    | None ->
      fail ~step ~rule:"index-dispatch"
        "%s index routes %s to region #%d but its dispatch slot is empty" what
        (Addr.to_string a) r.Region.id
  in
  let n_live = ref 0 in
  let live_bytes = ref 0 in
  Code_cache.iter_entries cache (fun a r ->
      incr n_live;
      live_bytes := !live_bytes + Region.cache_bytes r;
      if not (Addr.equal a r.Region.entry) then
        fail ~step ~rule:"entry-key" "entry index binds %s to region #%d whose entry is %s"
          (Addr.to_string a) r.Region.id
          (Addr.to_string r.Region.entry);
      expect_dispatch ~what:"entry" a r);
  if !n_live <> Code_cache.n_regions cache then
    fail ~step ~rule:"live-count" "entry index holds %d regions but n_regions reports %d"
      !n_live (Code_cache.n_regions cache);
  Code_cache.iter_aux_entries cache (fun a r ->
      if not (Code_cache.is_live cache r) then
        fail ~step ~rule:"aux-live" "aux index binds %s to retired region #%d"
          (Addr.to_string a) r.Region.id;
      if not (Addr.Set.mem a r.Region.aux_entries) then
        fail ~step ~rule:"aux-key"
          "aux index binds %s to region #%d, which does not claim it as an aux entry"
          (Addr.to_string a) r.Region.id;
      expect_dispatch ~what:"aux" a r);
  (* Link slots: no link outlives its target, and a link always agrees
     with the dispatch array (a linked jump lands exactly where a dispatch
     would have). *)
  Code_cache.iter_entries cache (fun _ r ->
      for slot = 0 to Region.n_link_slots r - 1 do
        match Region.link_target r slot with
        | None -> ()
        | Some tgt ->
          if not (Code_cache.is_live cache tgt) then
            fail ~step ~rule:"link-live" "region #%d slot %d links to retired region #%d"
              r.Region.id slot tgt.Region.id;
          (match Code_cache.dispatch cache slot with
          | Some d when d == tgt -> ()
          | Some d ->
            fail ~step ~rule:"link-dispatch"
              "region #%d slot %d links to region #%d but the slot dispatches to #%d"
              r.Region.id slot tgt.Region.id d.Region.id
          | None ->
            fail ~step ~rule:"link-dispatch"
              "region #%d slot %d links to region #%d but the slot dispatches nowhere"
              r.Region.id slot tgt.Region.id)
      done);
  (* FIFO tombstone accounting (the compaction bound). *)
  let fifo_len = Code_cache.fifo_length cache in
  let tombstones = Code_cache.fifo_tombstones cache in
  if fifo_len - tombstones <> !n_live then
    fail ~step ~rule:"fifo-accounting"
      "FIFO holds %d entries with %d tombstones but %d regions are live" fifo_len
      tombstones !n_live;
  if tombstones > max 8 !n_live then
    fail ~step ~rule:"fifo-tombstones" "%d tombstones against %d live regions (bound %d)"
      tombstones !n_live (max 8 !n_live);
  (* Byte ledger. *)
  if Code_cache.bytes_used cache <> !live_bytes then
    fail ~step ~rule:"bytes-accounting"
      "cache reports %d bytes used but the live regions sum to %d"
      (Code_cache.bytes_used cache) !live_bytes;
  (* Step clock. *)
  if Code_cache.clock_regressions cache <> 0 then
    fail ~step ~rule:"clock-monotone" "set_now was handed a stale step %d time(s)"
      (Code_cache.clock_regressions cache);
  (* Quota bound: once installs and quota evictions have settled, the live
     footprint fits the tenant's quota (the multi-stream invariant). *)
  (match Code_cache.quota cache with
  | None -> ()
  | Some q ->
    if Code_cache.bytes_used cache > q then
      fail ~step ~rule:"quota-accounting"
        "cache holds %d bytes against a quota of %d" (Code_cache.bytes_used cache) q);
  (* Telemetry span ledger: open spans are exactly the live regions. *)
  match telemetry with
  | None -> ()
  | Some t ->
    Code_cache.iter_entries cache (fun _ r ->
        if not (Telemetry.span_open t ~id:r.Region.id) then
          fail ~step ~rule:"span-open" "live region #%d has no open telemetry span"
            r.Region.id);
    let open_spans = Telemetry.n_open_spans t in
    if open_spans <> !n_live then
      fail ~step ~rule:"span-ledger"
        "telemetry has %d open spans but the cache holds %d live regions" open_spans
        !n_live

let checked_run ?(params = Params.default) ?(seed = 1L) ?telemetry ?(audit_every = 64)
    ?break_at ?on_window ?checkpoint ?restore ?record ?replay ~policy ~max_steps image =
  let params = { params with Params.validate = true } in
  let t = match telemetry with Some t -> t | None -> Telemetry.create () in
  let program = image.Image.program in
  (* The shadow runs the *other* dispatch mode: every checked run is then
     also a live threaded-vs-legacy differential, step by step. *)
  let shadow = Interp.create ~threaded:(not params.Params.threaded_dispatch) image ~seed in
  let sh = Interp.make_step () in
  let cache_ref = ref None in
  let audit ~step =
    match !cache_ref with
    | None -> ()
    | Some cache -> audit_cache ~telemetry:t ~program cache ~step
  in
  let broken = ref false in
  let observer =
    {
      Simulator.on_context =
        (fun ctx ->
          let cache = ctx.Context.cache in
          cache_ref := Some cache;
          Code_cache.set_auditor cache (fun _op -> audit ~step:(Code_cache.now cache)));
      on_step =
        (fun ~step ~block ~taken ~next ~believed ->
          (* Self-test corruption: desynchronize the indices once a live
             region exists, then let the audit below convict it. *)
          (match break_at with
          | Some at when (not !broken) && step >= at -> (
            match !cache_ref with
            | Some cache ->
              if Code_cache.unsafe_corrupt_for_tests cache then broken := true
            | None -> ())
          | Some _ | None -> ());
          (* Differential oracle: the shadow interpreter is the ground
             truth for what the program executes. *)
          if not (Interp.step_into shadow sh) then
            fail ~step ~rule:"oracle-halt"
              "the run executed %s but the shadow interpreter has halted"
              (Addr.to_string block.Block.start);
          if not (Block.equal (Interp.block shadow sh) block) then
            fail ~step ~rule:"oracle-block"
              "the run executed block %s but the shadow interpreter executed %s"
              (Addr.to_string block.Block.start)
              (Addr.to_string (Interp.block shadow sh).Block.start);
          if sh.Interp.taken <> taken then
            fail ~step ~rule:"oracle-branch"
              "block %s: the run saw taken=%b but the shadow interpreter saw %b"
              (Addr.to_string block.Block.start)
              taken sh.Interp.taken;
          if not (Addr.equal sh.Interp.next next) then
            fail ~step ~rule:"oracle-target"
              "block %s: the run continues at %s but the shadow interpreter at %s"
              (Addr.to_string block.Block.start)
              (Addr.to_string next)
              (Addr.to_string sh.Interp.next);
          (* Region mode must believe it executed the block the
             interpreter actually executed. *)
          if (not (Addr.is_none believed)) && not (Addr.equal believed block.Block.start)
          then
            fail ~step ~rule:"region-position"
              "region mode believes it executed %s but the interpreter executed %s"
              (Addr.to_string believed)
              (Addr.to_string block.Block.start);
          if audit_every > 0 && step mod audit_every = 0 then audit ~step);
    }
  in
  (* Restoring a snapshot fast-forwards the run to its saved position; the
     shadow oracle must follow, or every subsequent step would "diverge".
     The run's own interp section — already restored by the caller's hook —
     is replayed into the shadow, which puts its pc, stack and every PRNG
     stream at exactly the restored position (warm interpreter state is
     dispatch-mode-independent). *)
  let restore =
    Option.map
      (fun f (internals : Simulator.internals) ->
        f internals;
        match
          List.find_opt
            (fun (s : Simulator.section) -> String.equal s.Simulator.sec_name "interp")
            internals.Simulator.int_sections
        with
        | None -> ()
        | Some s ->
          let ints = ref [] in
          s.Simulator.sec_save (fun v -> ints := v :: !ints);
          let arr = Array.of_list (List.rev !ints) in
          let i = ref 0 in
          Interp.load_warm shadow (fun () ->
              let v = arr.(!i) in
              incr i;
              v))
      restore
  in
  let result =
    Simulator.run ~params ~seed ~telemetry:(Some t) ~observer ?on_window ?checkpoint
      ?restore ?record ?replay ~policy ~max_steps image
  in
  let final = result.Simulator.stats.Stats.steps in
  audit ~step:final;
  Telemetry.finish t ~step:final;
  List.iter
    (fun (s : Telemetry.span) ->
      if s.Telemetry.retired_at < s.Telemetry.installed_at then
        fail ~step:final ~rule:"span-duration"
          "region #%d's span runs backwards: installed at %d, retired at %d"
          s.Telemetry.id s.Telemetry.installed_at s.Telemetry.retired_at)
    (Telemetry.spans t);
  let closed = List.length (Telemetry.spans t) in
  if closed <> Telemetry.n_installs t then
    fail ~step:final ~rule:"span-count"
      "telemetry recorded %d installs but closed %d spans" (Telemetry.n_installs t)
      closed;
  result
