lib/engine/edge_profile.ml: Addr Hashtbl Option Regionsel_isa
