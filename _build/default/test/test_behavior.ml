module Behavior = Regionsel_workload.Behavior
module Splitmix = Regionsel_prng.Splitmix
open Fixtures

let prng () = Splitmix.create ~seed:21L

let decisions spec n =
  let state = Behavior.make_state spec (prng ()) in
  List.init n (fun _ -> Behavior.decide state)

let constant_specs () =
  check_true "always taken" (List.for_all Fun.id (decisions Behavior.Always_taken 50));
  check_true "never taken" (List.for_all not (decisions Behavior.Never_taken 50))

let loop_sequence () =
  (* Loop 4: taken three times, not taken once, repeating. *)
  let expected = [ true; true; true; false; true; true; true; false ] in
  Alcotest.(check (list bool)) "loop 4 pattern" expected (decisions (Behavior.Loop 4) 8)

let loop_one () =
  check_true "trip 1 never taken" (List.for_all not (decisions (Behavior.Loop 1) 10))

let loop_invalid () =
  Alcotest.check_raises "trip 0 rejected"
    (Invalid_argument "Behavior: Loop trip count must be >= 1") (fun () ->
      ignore (Behavior.make_state (Behavior.Loop 0) (prng ())))

let pattern_cycles () =
  let expected = [ true; false; false; true; false; false ] in
  Alcotest.(check (list bool)) "pattern repeats" expected
    (decisions (Behavior.Pattern [| true; false; false |]) 6)

let pattern_empty () =
  Alcotest.check_raises "empty pattern rejected" (Invalid_argument "Behavior: empty pattern")
    (fun () -> ignore (Behavior.make_state (Behavior.Pattern [||]) (prng ())))

let bernoulli_deterministic () =
  Alcotest.(check (list bool)) "same seed, same outcomes"
    (decisions (Behavior.Bernoulli 0.5) 32)
    (decisions (Behavior.Bernoulli 0.5) 32)

let bernoulli_invalid () =
  Alcotest.check_raises "p > 1 rejected"
    (Invalid_argument "Behavior: Bernoulli probability out of range") (fun () ->
      ignore (Behavior.make_state (Behavior.Bernoulli 1.5) (prng ())))

let phased_switches () =
  (* Two decisions always-taken, then two never-taken, cycling. *)
  let spec = Behavior.Phased [ 2, Behavior.Always_taken; 2, Behavior.Never_taken ] in
  let expected = [ true; true; false; false; true; true; false; false ] in
  Alcotest.(check (list bool)) "phases cycle" expected (decisions spec 8)

let phased_nested_loop () =
  let spec = Behavior.Phased [ 3, Behavior.Loop 3; 1, Behavior.Never_taken ] in
  let expected = [ true; true; false; false; true; true; false; false ] in
  Alcotest.(check (list bool)) "loop state persists across phases" expected (decisions spec 8)

let phased_invalid () =
  Alcotest.check_raises "empty phases rejected" (Invalid_argument "Behavior: empty phase list")
    (fun () -> ignore (Behavior.make_state (Behavior.Phased []) (prng ())))

let round_robin_cycles () =
  let state = Behavior.make_indirect (Behavior.Round_robin [| 10; 20; 30 |]) (prng ()) in
  let picks = List.init 7 (fun _ -> Behavior.choose state) in
  Alcotest.(check (list int)) "round robin order" [ 10; 20; 30; 10; 20; 30; 10 ] picks

let weighted_targets_in_set () =
  let state =
    Behavior.make_indirect (Behavior.Weighted_targets [| 10, 1.0; 20, 2.0 |]) (prng ())
  in
  for _ = 1 to 500 do
    let t = Behavior.choose state in
    check_true "chosen target is known" (t = 10 || t = 20)
  done

let weighted_rates () =
  let state =
    Behavior.make_indirect (Behavior.Weighted_targets [| 10, 1.0; 20, 3.0 |]) (prng ())
  in
  let n = 20_000 in
  let twenties = ref 0 in
  for _ = 1 to n do
    if Behavior.choose state = 20 then incr twenties
  done;
  let rate = float_of_int !twenties /. float_of_int n in
  check_true "weighted rate near 0.75" (abs_float (rate -. 0.75) < 0.02)

let empty_targets_rejected () =
  Alcotest.check_raises "no indirect targets" (Invalid_argument "Behavior: no indirect targets")
    (fun () -> ignore (Behavior.make_indirect (Behavior.Round_robin [||]) (prng ())))

let pp_spec_smoke () =
  let render s = Format.asprintf "%a" Behavior.pp_spec s in
  Alcotest.(check string) "loop" "loop(7)" (render (Behavior.Loop 7));
  Alcotest.(check string) "pattern" "pattern(TN)" (render (Behavior.Pattern [| true; false |]));
  check_true "phased mentions inner"
    (contains ~sub:"loop(3)" (render (Behavior.Phased [ 5, Behavior.Loop 3 ])))

let qcheck_loop_rate =
  QCheck.Test.make ~name:"Loop n is taken exactly (n-1)/n of the time" ~count:50
    QCheck.(int_range 1 20)
    (fun n ->
      let state = Behavior.make_state (Behavior.Loop n) (prng ()) in
      let takes = ref 0 in
      let total = n * 100 in
      for _ = 1 to total do
        if Behavior.decide state then incr takes
      done;
      !takes = (n - 1) * 100)

let suite =
  [
    case "constant specs" constant_specs;
    case "loop sequence" loop_sequence;
    case "loop trip 1" loop_one;
    case "loop invalid" loop_invalid;
    case "pattern cycles" pattern_cycles;
    case "pattern empty" pattern_empty;
    case "bernoulli deterministic" bernoulli_deterministic;
    case "bernoulli invalid" bernoulli_invalid;
    case "phased switches" phased_switches;
    case "phased nested loop" phased_nested_loop;
    case "phased invalid" phased_invalid;
    case "round robin cycles" round_robin_cycles;
    case "weighted targets in set" weighted_targets_in_set;
    case "weighted rates" weighted_rates;
    case "empty targets rejected" empty_targets_rejected;
    case "pp spec" pp_spec_smoke;
    QCheck_alcotest.to_alcotest qcheck_loop_rate;
  ]
