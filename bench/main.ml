(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation (Sections 3.2 and 4.3) over the twelve synthetic
   SPECint2000 stand-ins, prints paper-reference values next to the
   measured ones, runs the ablations called out in DESIGN.md, and measures
   per-branch selection overhead with Bechamel (the Section 3.1 claim).

   Usage: main.exe [--quick] [--only SECTION ...] [--json FILE]
          [--fault-seed N]
   Sections: fig7 fig8 fig9 fig10 fig11 fig12 hitrate fig16 fig17 fig18
   fig19 summary related ablation-buffer ablation-tprof faults speed
   codec restore

   The (benchmark x policy) matrix behind the figures is simulated up
   front, fanned across domains (see Domain_pool); each run is
   self-contained, so the memoized metrics are identical to a sequential
   run.  [--json FILE] additionally dumps every table's average row plus a
   steps-per-second throughput figure for cross-PR perf tracking. *)

module Suite = Regionsel_workload.Suite
module Spec = Regionsel_workload.Spec
module Params = Regionsel_engine.Params
module Faults = Regionsel_engine.Faults
module Run_metrics = Regionsel_metrics.Run_metrics
module Aggregate = Regionsel_metrics.Aggregate
module Policies = Regionsel_core.Policies
module Domain_pool = Regionsel_engine.Domain_pool
module Table = Regionsel_report.Table
module Barchart = Regionsel_report.Barchart
module Stats = Regionsel_engine.Stats
module Telemetry = Regionsel_telemetry.Telemetry
module Trace_export = Regionsel_telemetry.Trace_export

let quick = Array.exists (( = ) "--quick") Sys.argv

(* With [--check] every simulation in the harness routes through the
   invariant sanitizer (shadow-interpreter oracle + per-mutation cache
   audits).  Pure observation: every table and JSON figure is identical,
   only slower — so the perf gate runs without it. *)
let check = Array.exists (( = ) "--check") Sys.argv

module Simulator = struct
  include Regionsel_engine.Simulator

  let run ?params ?seed ?telemetry ~policy ~max_steps image =
    if check then
      Regionsel_check.Check.checked_run ?params ?seed
        ?telemetry:(Option.join telemetry) ~policy ~max_steps image
    else
      Regionsel_engine.Simulator.run ?params ?seed ?telemetry ~policy ~max_steps image
end

let only =
  let rec collect i acc =
    if i >= Array.length Sys.argv then acc
    else if Sys.argv.(i) = "--only" && i + 1 < Array.length Sys.argv then
      collect (i + 2) (Sys.argv.(i + 1) :: acc)
    else collect (i + 1) acc
  in
  collect 1 []

let enabled section = only = [] || List.mem section only

let json_path =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--json" && i + 1 < Array.length Sys.argv then
      Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* With [--trace-out FILE] the throughput runs behind [--json] record
   region-lifecycle telemetry, and the last traced run is exported as a
   Chrome trace_event timeline (plus FILE.jsonl).  Tracing is pure
   observation; the throughput gate in CI runs with it enabled to keep the
   recording overhead inside the perf budget. *)
let trace_out_path =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--trace-out" && i + 1 < Array.length Sys.argv then
      Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* The most recent traced throughput run, exported on exit. *)
let last_trace : (string * Telemetry.t) option ref = ref None

(* Seed for the fault section, so CI can fuzz schedules without touching
   the deterministic seed-1 matrix behind the figures. *)
let fault_seed =
  let rec find i =
    if i >= Array.length Sys.argv then 1L
    else if Sys.argv.(i) = "--fault-seed" && i + 1 < Array.length Sys.argv then
      Int64.of_string Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

(* Per-section average rows, collected for [--json]. *)
let current_section = ref ""
let json_tables : (string * (string * float) list) list ref = ref []

(* Per-disruption recovery fractions from the fault section, keyed by
   (policy, bench) — the burst table behind the [--json] schema. *)
let fault_bursts : (string * string * float list) list ref = ref []

let budget (spec : Spec.t) =
  if quick then spec.Spec.default_steps / 5 else spec.Spec.default_steps

(* Every (benchmark, policy) pair is simulated once and memoized. *)
let cache : (string * string, Run_metrics.t) Hashtbl.t = Hashtbl.create 64

let metric (spec : Spec.t) policy_name =
  let key = spec.Spec.name, policy_name in
  match Hashtbl.find_opt cache key with
  | Some m -> m
  | None ->
    let policy = Option.get (Policies.find policy_name) in
    let result =
      Simulator.run ~seed:1L ~policy ~max_steps:(budget spec) (Spec.image spec)
    in
    let m = Run_metrics.of_result result in
    Hashtbl.replace cache key m;
    m

let benches = Suite.all
let bench_names = Suite.names

let pct = Table.fmt_pct
let f2 = Table.fmt_float 2

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Print one row per benchmark plus an average row; [cols] computes the
   numeric columns for one benchmark, [fmts] formats each column. *)
let per_bench_table ~columns ~fmts ~cols =
  let rows = List.map (fun spec -> Spec.(spec.name), cols spec) benches in
  let formatted =
    List.map (fun (name, values) -> name :: List.map2 (fun f v -> f v) fmts values) rows
  in
  let n = List.length fmts in
  let avg =
    List.init n (fun i -> Aggregate.mean (List.map (fun (_, vs) -> List.nth vs i) rows))
  in
  let avg_row = "average" :: List.map2 (fun f v -> f v) fmts avg in
  Table.print ~header:("bench" :: columns) (formatted @ [ avg_row ]);
  if json_path <> None then
    json_tables := (!current_section, List.combine columns avg) :: !json_tables;
  avg

let ratio_of field a b = Aggregate.ratio_int (field a) (field b)

(* ------------------------------------------------------------------ *)
(* Section 3: LEI vs NET                                               *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  header "Figure 7: LEI's improvement in spanning cycles (vs NET)";
  let avg =
    per_bench_table
      ~columns:[ "spanned NET"; "spanned LEI"; "delta"; "executed NET"; "executed LEI"; "delta" ]
      ~fmts:[ pct; pct; pct; pct; pct; pct ]
      ~cols:(fun spec ->
        let net = metric spec "net" and lei = metric spec "lei" in
        [
          net.Run_metrics.spanned_cycle_ratio;
          lei.Run_metrics.spanned_cycle_ratio;
          lei.Run_metrics.spanned_cycle_ratio -. net.Run_metrics.spanned_cycle_ratio;
          net.Run_metrics.executed_cycle_ratio;
          lei.Run_metrics.executed_cycle_ratio;
          lei.Run_metrics.executed_cycle_ratio -. net.Run_metrics.executed_cycle_ratio;
        ])
  in
  Printf.printf "paper: spanned-cycle ratio rises by ~%s on average (measured %s)\n"
    (pct Paper_refs.fig7_spanned_increase_avg)
    (pct (List.nth avg 2))

let fig8 () =
  header "Figure 8: code expansion and region transitions of LEI relative to NET";
  let avg =
    per_bench_table
      ~columns:[ "expansion L/N"; "transitions L/N" ]
      ~fmts:[ f2; f2 ]
      ~cols:(fun spec ->
        let net = metric spec "net" and lei = metric spec "lei" in
        [
          ratio_of (fun m -> m.Run_metrics.code_expansion) lei net;
          ratio_of (fun m -> m.Run_metrics.region_transitions) lei net;
        ])
  in
  Printf.printf "paper: expansion %s, transitions %s (measured %s, %s)\n"
    (f2 Paper_refs.fig8_expansion_ratio_avg)
    (f2 Paper_refs.fig8_transitions_ratio_avg)
    (f2 (List.nth avg 0)) (f2 (List.nth avg 1))

let fig9 () =
  header "Figure 9: minimum number of traces covering 90% of execution";
  let avg =
    per_bench_table
      ~columns:[ "NET"; "LEI"; "ratio L/N" ]
      ~fmts:[ Table.fmt_float 0; Table.fmt_float 0; f2 ]
      ~cols:(fun spec ->
        let net = metric spec "net" and lei = metric spec "lei" in
        [
          float_of_int net.Run_metrics.cover_90;
          float_of_int lei.Run_metrics.cover_90;
          ratio_of (fun m -> m.Run_metrics.cover_90) lei net;
        ])
  in
  Printf.printf "paper: ~18%% smaller on average, ratio %s (measured %s)\n"
    (f2 Paper_refs.fig9_cover_ratio_avg) (f2 (List.nth avg 2));
  Barchart.print ~width:30 ~title:"90% cover set, LEI relative to NET (shorter is better):"
    (List.map
       (fun spec ->
         ( spec.Spec.name,
           Aggregate.ratio_int (metric spec "lei").Run_metrics.cover_90
             (metric spec "net").Run_metrics.cover_90 ))
       benches)

let fig10 () =
  header "Figure 10: profiling counters required by LEI relative to NET";
  let avg =
    per_bench_table
      ~columns:[ "NET peak"; "LEI peak"; "ratio L/N" ]
      ~fmts:[ Table.fmt_float 0; Table.fmt_float 0; f2 ]
      ~cols:(fun spec ->
        let net = metric spec "net" and lei = metric spec "lei" in
        [
          float_of_int net.Run_metrics.counters_high_water;
          float_of_int lei.Run_metrics.counters_high_water;
          ratio_of (fun m -> m.Run_metrics.counters_high_water) lei net;
        ])
  in
  Printf.printf "paper: about two-thirds, ratio %s (measured %s)\n"
    (f2 Paper_refs.fig10_counters_ratio_avg) (f2 (List.nth avg 2))

(* ------------------------------------------------------------------ *)
(* Section 4.1: exit domination                                        *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  header "Figure 11: share of selected instructions that are exit-dominated duplication";
  let _ =
    per_bench_table
      ~columns:[ "NET"; "LEI" ]
      ~fmts:[ pct; pct ]
      ~cols:(fun spec ->
        [
          (metric spec "net").Run_metrics.exit_dominated_dup_fraction;
          (metric spec "lei").Run_metrics.exit_dominated_dup_fraction;
        ])
  in
  let lo, hi = Paper_refs.fig11_dup_fraction_range in
  Printf.printf "paper: between %s and %s of selected instructions\n" (pct lo) (pct hi)

let fig12 () =
  header "Figure 12: share of selected traces that are exit-dominated";
  let avg =
    per_bench_table
      ~columns:[ "NET"; "LEI" ]
      ~fmts:[ pct; pct ]
      ~cols:(fun spec ->
        [
          (metric spec "net").Run_metrics.exit_dominated_fraction;
          (metric spec "lei").Run_metrics.exit_dominated_fraction;
        ])
  in
  Printf.printf "paper: NET %s, LEI %s on average, eon the outlier (measured %s, %s)\n"
    (pct Paper_refs.fig12_dominated_net_avg)
    (pct Paper_refs.fig12_dominated_lei_avg)
    (pct (List.nth avg 0)) (pct (List.nth avg 1))

let hitrate () =
  header "Hit rates (Sections 3.2 and 4.3 text)";
  let _ =
    per_bench_table
      ~columns:[ "NET"; "LEI"; "combined NET"; "combined LEI" ]
      ~fmts:[ pct; pct; pct; pct ]
      ~cols:(fun spec ->
        List.map
          (fun p -> (metric spec p).Run_metrics.hit_rate)
          [ "net"; "lei"; "combined-net"; "combined-lei" ])
  in
  Printf.printf "paper: mcf falls %s -> %s and gcc %s -> %s under LEI; others stay above 99%%\n"
    (pct Paper_refs.hit_net_mcf) (pct Paper_refs.hit_lei_mcf) (pct Paper_refs.hit_net_gcc)
    (pct Paper_refs.hit_lei_gcc)

(* ------------------------------------------------------------------ *)
(* Section 4.3: trace combination                                      *)
(* ------------------------------------------------------------------ *)

let fig16 () =
  header "Figure 16: region transitions under trace combination (and exit-domination effects)";
  let avg =
    per_bench_table
      ~columns:[ "cNET/NET"; "cLEI/LEI"; "expansion cNET/NET"; "expansion cLEI/LEI" ]
      ~fmts:[ f2; f2; f2; f2 ]
      ~cols:(fun spec ->
        let net = metric spec "net" and lei = metric spec "lei" in
        let cnet = metric spec "combined-net" and clei = metric spec "combined-lei" in
        [
          ratio_of (fun m -> m.Run_metrics.region_transitions) cnet net;
          ratio_of (fun m -> m.Run_metrics.region_transitions) clei lei;
          ratio_of (fun m -> m.Run_metrics.code_expansion) cnet net;
          ratio_of (fun m -> m.Run_metrics.code_expansion) clei lei;
        ])
  in
  Printf.printf "paper: transitions %s (cNET) and %s (cLEI); expansion %s and %s\n"
    (f2 Paper_refs.fig16_transitions_cnet_avg)
    (f2 Paper_refs.fig16_transitions_clei_avg)
    (f2 Paper_refs.expansion_cnet_avg) (f2 Paper_refs.expansion_clei_avg);
  Printf.printf "measured: %s, %s; %s, %s\n" (f2 (List.nth avg 0)) (f2 (List.nth avg 1))
    (f2 (List.nth avg 2)) (f2 (List.nth avg 3));
  (* Section 4.3.1: combination removes exit domination. *)
  let dom_regions base combined =
    Aggregate.mean
      (List.map
         (fun spec ->
           ratio_of
             (fun m -> m.Run_metrics.exit_dominated_regions)
             (metric spec combined) (metric spec base))
         benches)
  in
  let dom_dup base combined =
    Aggregate.mean
      (List.map
         (fun spec ->
           ratio_of
             (fun m -> m.Run_metrics.exit_dominated_dup_insts)
             (metric spec combined) (metric spec base))
         benches)
  in
  Printf.printf
    "exit domination under combination: dominated regions x%s (cNET), x%s (cLEI); duplication \
     x%s, x%s\n"
    (f2 (dom_regions "net" "combined-net"))
    (f2 (dom_regions "lei" "combined-lei"))
    (f2 (dom_dup "net" "combined-net"))
    (f2 (dom_dup "lei" "combined-lei"));
  Printf.printf "paper: combination avoids ~%s of duplication and ~%s of dominated regions\n"
    (pct Paper_refs.exit_dom_dup_reduction) (pct Paper_refs.exit_dom_region_reduction)

let fig17 () =
  header "Figure 17: 90% cover set size under trace combination";
  let avg =
    per_bench_table
      ~columns:[ "NET"; "cNET"; "cNET/NET"; "LEI"; "cLEI"; "cLEI/LEI" ]
      ~fmts:[ Table.fmt_float 0; Table.fmt_float 0; f2; Table.fmt_float 0; Table.fmt_float 0; f2 ]
      ~cols:(fun spec ->
        let net = metric spec "net" and lei = metric spec "lei" in
        let cnet = metric spec "combined-net" and clei = metric spec "combined-lei" in
        [
          float_of_int net.Run_metrics.cover_90;
          float_of_int cnet.Run_metrics.cover_90;
          ratio_of (fun m -> m.Run_metrics.cover_90) cnet net;
          float_of_int lei.Run_metrics.cover_90;
          float_of_int clei.Run_metrics.cover_90;
          ratio_of (fun m -> m.Run_metrics.cover_90) clei lei;
        ])
  in
  Printf.printf "paper: %s (cNET) and %s (cLEI) (measured %s, %s)\n"
    (f2 Paper_refs.fig17_cover_cnet_avg)
    (f2 Paper_refs.fig17_cover_clei_avg)
    (f2 (List.nth avg 2)) (f2 (List.nth avg 5));
  Barchart.print ~width:30 ~title:"90% cover set, combined LEI relative to LEI:"
    (List.map
       (fun spec ->
         ( spec.Spec.name,
           Aggregate.ratio_int
             (metric spec "combined-lei").Run_metrics.cover_90
             (metric spec "lei").Run_metrics.cover_90 ))
       benches)

let fig18 () =
  header "Figure 18: peak observed-trace memory as a share of the estimated cache size";
  let share m =
    Aggregate.ratio
      (float_of_int m.Run_metrics.observed_bytes_high_water)
      (float_of_int m.Run_metrics.est_cache_bytes)
  in
  let avg =
    per_bench_table
      ~columns:[ "combined NET"; "combined LEI" ]
      ~fmts:[ pct; pct ]
      ~cols:(fun spec ->
        [ share (metric spec "combined-net"); share (metric spec "combined-lei") ])
  in
  Printf.printf "paper: %s avg / %s max (cNET); %s avg / %s max (cLEI) — measured avg %s, %s\n"
    (pct Paper_refs.fig18_memory_cnet_avg)
    (pct Paper_refs.fig18_memory_cnet_max)
    (pct Paper_refs.fig18_memory_clei_avg)
    (pct Paper_refs.fig18_memory_clei_max)
    (pct (List.nth avg 0)) (pct (List.nth avg 1))

let fig19 () =
  header "Figure 19: exit stubs under trace combination";
  let avg =
    per_bench_table
      ~columns:[ "NET"; "cNET"; "cNET/NET"; "LEI"; "cLEI"; "cLEI/LEI" ]
      ~fmts:[ Table.fmt_float 0; Table.fmt_float 0; f2; Table.fmt_float 0; Table.fmt_float 0; f2 ]
      ~cols:(fun spec ->
        let net = metric spec "net" and lei = metric spec "lei" in
        let cnet = metric spec "combined-net" and clei = metric spec "combined-lei" in
        [
          float_of_int net.Run_metrics.n_stubs;
          float_of_int cnet.Run_metrics.n_stubs;
          ratio_of (fun m -> m.Run_metrics.n_stubs) cnet net;
          float_of_int lei.Run_metrics.n_stubs;
          float_of_int clei.Run_metrics.n_stubs;
          ratio_of (fun m -> m.Run_metrics.n_stubs) clei lei;
        ])
  in
  Printf.printf "paper: %s (cNET) and %s (cLEI) (measured %s, %s)\n"
    (f2 Paper_refs.fig19_stubs_cnet_avg)
    (f2 Paper_refs.fig19_stubs_clei_avg)
    (f2 (List.nth avg 2)) (f2 (List.nth avg 5))

let summary () =
  header "Section 6 summary: combined LEI relative to the NET baseline";
  let avg =
    per_bench_table
      ~columns:[ "expansion"; "stubs"; "transitions"; "cover90" ]
      ~fmts:[ f2; f2; f2; f2 ]
      ~cols:(fun spec ->
        let net = metric spec "net" and clei = metric spec "combined-lei" in
        [
          ratio_of (fun m -> m.Run_metrics.code_expansion) clei net;
          ratio_of (fun m -> m.Run_metrics.n_stubs) clei net;
          ratio_of (fun m -> m.Run_metrics.region_transitions) clei net;
          ratio_of (fun m -> m.Run_metrics.cover_90) clei net;
        ])
  in
  Printf.printf "paper: expansion %s, stubs %s, transitions %s, cover %s\n"
    (f2 Paper_refs.summary_expansion) (f2 Paper_refs.summary_stubs)
    (f2 Paper_refs.summary_transitions) (f2 Paper_refs.summary_cover);
  Printf.printf "measured: expansion %s, stubs %s, transitions %s, cover %s\n"
    (f2 (List.nth avg 0)) (f2 (List.nth avg 1)) (f2 (List.nth avg 2)) (f2 (List.nth avg 3));
  (* Footnote 9: fewer regions with more related code need fewer
     inter-region links. *)
  let link_ratio =
    Aggregate.mean
      (List.map
         (fun spec ->
           ratio_of (fun m -> m.Run_metrics.links) (metric spec "combined-lei")
             (metric spec "net"))
         benches)
  in
  Printf.printf
    "inter-region links (footnote 9): combined LEI creates x%s of NET's links on average\n"
    (f2 link_ratio)

(* ------------------------------------------------------------------ *)
(* Section 5: related-work policies                                    *)
(* ------------------------------------------------------------------ *)

let related () =
  header "Related work (Section 5): Mojo and BOA under the same metrics";
  ignore
    (per_bench_table
       ~columns:[ "hit mojo"; "hit boa"; "cover mojo"; "cover boa"; "tr mojo/NET"; "tr boa/NET" ]
       ~fmts:[ pct; pct; Table.fmt_float 0; Table.fmt_float 0; f2; f2 ]
       ~cols:(fun spec ->
         let net = metric spec "net" in
         let mojo = metric spec "mojo" and boa = metric spec "boa" in
         [
           mojo.Run_metrics.hit_rate;
           boa.Run_metrics.hit_rate;
           float_of_int mojo.Run_metrics.cover_90;
           float_of_int boa.Run_metrics.cover_90;
           ratio_of (fun m -> m.Run_metrics.region_transitions) mojo net;
           ratio_of (fun m -> m.Run_metrics.region_transitions) boa net;
         ]))

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_subset () =
  List.filter_map Suite.find [ "gzip"; "mcf"; "perlbmk"; "twolf" ]

let run_with_params spec params policy_name =
  let policy = Option.get (Policies.find policy_name) in
  let steps = min (budget spec) 400_000 in
  Run_metrics.of_result
    (Simulator.run ~seed:1L ~params ~policy ~max_steps:steps (Spec.image spec))

let ablation_buffer () =
  header "Ablation: LEI history-buffer size (spanned cycles / counters / hit rate)";
  let sizes = [ 4; 16; 64; 250; 500; 2000 ] in
  let rows =
    List.concat_map
      (fun spec ->
        List.map
          (fun size ->
            let params = { Params.default with Params.lei_buffer_size = size } in
            let m = run_with_params spec params "lei" in
            [
              Printf.sprintf "%s/%d" spec.Spec.name size;
              pct m.Run_metrics.spanned_cycle_ratio;
              string_of_int m.Run_metrics.counters_high_water;
              pct m.Run_metrics.hit_rate;
              string_of_int m.Run_metrics.n_regions;
            ])
          sizes)
      (ablation_subset ())
  in
  Table.print ~header:[ "bench/size"; "spanned"; "counters"; "hit"; "regions" ] rows;
  print_endline
    "expectation: tiny buffers detect only the shortest cycles, so fewer regions are selected \
     and hit rates dip; counter population grows with the window; growth saturates near the \
     paper's 500."

let ablation_tprof () =
  header "Ablation: trace-combination T_prof / T_min (footnote 8)";
  let settings = [ 15, 5; 10, 3; 5, 2; 20, 6 ] in
  let rows =
    List.concat_map
      (fun spec ->
        List.map
          (fun (t_prof, t_min) ->
            let params =
              {
                Params.default with
                Params.combine_t_prof = t_prof;
                combine_t_min = t_min;
                combined_net_start = max 1 (Params.default.Params.net_threshold - t_prof);
                combined_lei_start = max 1 (Params.default.Params.lei_threshold - t_prof);
              }
            in
            let base = metric spec "net" in
            let m = run_with_params spec params "combined-net" in
            [
              Printf.sprintf "%s/%d,%d" spec.Spec.name t_prof t_min;
              f2 (ratio_of (fun x -> x.Run_metrics.region_transitions) m base);
              f2 (ratio_of (fun x -> x.Run_metrics.cover_90) m base);
              f2 (ratio_of (fun x -> x.Run_metrics.code_expansion) m base);
              pct m.Run_metrics.hit_rate;
            ])
          settings)
      (ablation_subset ())
  in
  Table.print
    ~header:[ "bench/Tprof,Tmin"; "tr vs NET"; "cover vs NET"; "exp vs NET"; "hit" ]
    rows;
  print_endline
    "expectation (footnote 8): T_prof=5, T_min=2 gives smaller but similar improvements."

let icache_fig () =
  header "Locality instrument: I-cache miss rate over code-cache fetches";
  print_endline
    "Not a paper figure, but the paper's stated motivation for locality (Sections 1-2):\n\
     separated traces cost instruction fetches.  Geometry scaled to the toy code caches:\n\
     256 B / 16 B lines / 2-way LRU.";
  let avg =
    per_bench_table
      ~columns:[ "NET"; "LEI"; "combined NET"; "combined LEI"; "jit-method" ]
      ~fmts:[ pct; pct; pct; pct; pct ]
      ~cols:(fun spec ->
        List.map
          (fun p -> (metric spec p).Run_metrics.icache_miss_rate)
          [ "net"; "lei"; "combined-net"; "combined-lei"; "jit-method" ])
  in
  Printf.printf
    "observation: trace combination cuts fetch misses sharply by replacing inter-region jumps\n\
     with intra-region edges (avg miss: NET %s, LEI %s, cNET %s, cLEI %s); at this tiny\n\
     geometry single-path policies pay for separation and duplication.\n"
    (pct (List.nth avg 0)) (pct (List.nth avg 1)) (pct (List.nth avg 2)) (pct (List.nth avg 3))

let ablation_threshold () =
  header "Ablation: selection thresholds (Section 3.2's tuning remark)";
  let rows =
    List.concat_map
      (fun spec ->
        List.concat_map
          (fun scale ->
            let params =
              {
                Params.default with
                Params.net_threshold = max 2 (Params.default.Params.net_threshold * scale / 100);
                lei_threshold = max 2 (Params.default.Params.lei_threshold * scale / 100);
              }
            in
            List.map
              (fun policy ->
                let m = run_with_params spec params policy in
                [
                  Printf.sprintf "%s/%d%%/%s" spec.Spec.name scale policy;
                  pct m.Run_metrics.hit_rate;
                  string_of_int m.Run_metrics.n_regions;
                  string_of_int m.Run_metrics.code_expansion;
                  string_of_int m.Run_metrics.cover_90;
                ])
              [ "net"; "lei" ])
          [ 20; 50; 100; 200 ])
      (List.filter_map Suite.find [ "mcf"; "gcc" ])
  in
  Table.print ~header:[ "bench/thr/policy"; "hit"; "regions"; "expansion"; "cover90" ] rows;
  print_endline
    "expectation: lower thresholds select earlier (higher hit, more regions and expansion) —\n\
     the compensation Section 3.2 suggests for LEI's hit-rate dips, at a code-size cost.";
  print_endline ""

let ablation_bounded_cache () =
  header "Ablation: bounded code cache (Section 2.3's out-of-scope discussion)";
  print_endline
    "The paper argues its fewer/larger regions help bounded caches by regenerating fewer\n\
     evicted regions.  We bound the cache and count regenerations per policy.";
  let capacities = [ Some 256; Some 512; Some 1_024; None ] in
  let rows =
    List.concat_map
      (fun spec ->
        List.concat_map
          (fun capacity ->
            List.map
              (fun policy ->
                let params =
                  {
                    Params.default with
                    Params.cache_capacity_bytes = capacity;
                    cache_eviction = Params.Evict_oldest;
                  }
                in
                let m = run_with_params spec params policy in
                [
                  Printf.sprintf "%s/%s/%s" spec.Spec.name
                    (match capacity with None -> "unbounded" | Some b -> string_of_int b ^ "B")
                    policy;
                  pct m.Run_metrics.hit_rate;
                  string_of_int m.Run_metrics.n_regions;
                  string_of_int m.Run_metrics.evictions;
                  string_of_int m.Run_metrics.regenerations;
                ])
              [ "net"; "lei"; "combined-lei" ])
          capacities)
      (List.filter_map Suite.find [ "gzip"; "twolf" ])
  in
  Table.print ~header:[ "bench/cap/policy"; "hit"; "regions"; "evictions"; "regen" ] rows;
  print_endline
    "expectation: under tight caches, policies that select fewer, larger regions (LEI, and\n\
     especially combined LEI) evict and regenerate less and keep higher hit rates."

let ablation_layout () =
  header "Ablation: profile-guided layout of combined regions (Section 4.4)";
  print_endline
    "Combined regions carry observation counts, so the hot blocks can be placed first\n\
     (profile-guided layout); the ablation lays them in address order instead and compares\n\
     I-cache miss rates.";
  let rows =
    List.map
      (fun spec ->
        let miss hot =
          let params = { Params.default with Params.combined_layout_hot_first = hot } in
          (run_with_params spec params "combined-lei").Run_metrics.icache_miss_rate
        in
        let hot = miss true and addr = miss false in
        [ spec.Spec.name; pct hot; pct addr; f2 (Aggregate.ratio hot addr) ])
      benches
  in
  Table.print ~header:[ "bench"; "hot-first"; "address-order"; "ratio" ] rows;
  print_endline
    "expectation: hot-first keeps the frequently executed blocks on fewer lines (ratio <= 1\n\
     where the region working set is under cache pressure)."

let methods () =
  header "Extension: whole-method regions (the introduction's JIT organisation)";
  ignore
    (per_bench_table
       ~columns:[ "hit"; "regions"; "avg insts"; "transitions vs NET"; "expansion vs NET" ]
       ~fmts:[ pct; Table.fmt_float 0; Table.fmt_float 1; f2; f2 ]
       ~cols:(fun spec ->
         let net = metric spec "net" in
         let m = metric spec "jit-method" in
         [
           m.Run_metrics.hit_rate;
           float_of_int m.Run_metrics.n_regions;
           m.Run_metrics.avg_region_insts;
           ratio_of (fun x -> x.Run_metrics.region_transitions) m net;
           ratio_of (fun x -> x.Run_metrics.code_expansion) m net;
         ]));
  print_endline
    "expectation: far fewer, larger regions that include cold code (higher expansion on\n\
     diamond-heavy programs), with control crossing regions at every call/return."

(* ------------------------------------------------------------------ *)
(* Fault injection: degradation and recovery                           *)
(* ------------------------------------------------------------------ *)

let fault_subset () = List.filter_map Suite.find [ "gzip"; "mcf"; "perlbmk"; "twolf" ]

(* Per-burst recovery fractions from a run's fault log.  Cascades — a
   burst plus the watchdog bailout it provokes — are coalesced into one
   disruption; each disruption's post-burst peak share is compared against
   its pre-burst peak (same computation as test_faults). *)
let burst_recovery (log : Faults.log) =
  let samples = Array.of_list log.Faults.samples in
  let burst_steps =
    List.filter_map
      (fun (s, l) -> if l = "smc" || l = "shock" || l = "bailout" then Some s else None)
      log.Faults.events
  in
  let gap = Params.default.Params.bailout_cooldown + Params.default.Params.watchdog_window in
  let bursts =
    List.fold_left
      (fun groups s ->
        match groups with
        | (first, last) :: rest when s - last <= gap -> (first, s) :: rest
        | _ -> (s, s) :: groups)
      [] burst_steps
    |> List.rev
  in
  let bursts_arr = Array.of_list bursts in
  let fractions = ref [] in
  Array.iteri
    (fun i (first, last) ->
      let next_burst =
        if i + 1 < Array.length bursts_arr then fst bursts_arr.(i + 1) else max_int
      in
      let pre =
        Array.fold_left
          (fun acc (s, share) ->
            if s < first && s >= first - (3 * Params.default.Params.watchdog_window) then
              max acc share
            else acc)
          0.0 samples
      in
      let post =
        Array.fold_left
          (fun acc (s, share) -> if s > last && s <= next_burst then max acc share else acc)
          0.0 samples
      in
      let has_tail = Array.exists (fun (s, _) -> s > last && s <= next_burst) samples in
      if has_tail && pre > 0.0 then fractions := (post /. pre) :: !fractions)
    bursts_arr;
  List.rev !fractions

let faults_section () =
  header "Fault injection: degradation and recovery under the \"mixed\" profile";
  Printf.printf
    "fault seed %Ld; acceptance: after every flush/invalidation burst the windowed\n\
     cached-instruction share climbs back to >= 80%% of its pre-burst peak\n"
    fault_seed;
  let profile = Option.get (Params.fault_profile "mixed") in
  let params = { Params.default with Params.faults = Some profile } in
  List.iter
    (fun policy_name ->
      current_section := "faults:" ^ policy_name;
      let policy = Option.get (Policies.find policy_name) in
      let specs = fault_subset () in
      let runs =
        List.map
          (fun spec ->
            ( spec,
              Simulator.run ~params ~seed:fault_seed ~policy
                ~max_steps:(min (budget spec) 400_000)
                (Spec.image spec) ))
          specs
      in
      Printf.printf "\n%s:\n" policy_name;
      let per_bench =
        List.map
          (fun ((spec : Spec.t), result) ->
            let m = Run_metrics.of_result result in
            let fractions = burst_recovery (Option.get result.Simulator.fault_log) in
            fault_bursts := (policy_name, spec.Spec.name, fractions) :: !fault_bursts;
            let worst = List.fold_left min 1.0 fractions in
            let recovered = List.length (List.filter (fun f -> f >= 0.8) fractions) in
            let total = List.length fractions in
            spec, m, worst, recovered, total)
          runs
      in
      Table.print
        ~header:
          [ "bench"; "hit"; "faults"; "inval"; "blhits"; "rejects"; "bailouts"; "worst rec";
            "recovered" ]
        (List.map
           (fun ((spec : Spec.t), m, worst, recovered, total) ->
             [
               spec.Spec.name;
               pct m.Run_metrics.hit_rate;
               string_of_int m.Run_metrics.faults_injected;
               string_of_int m.Run_metrics.invalidations;
               string_of_int m.Run_metrics.blacklist_hits;
               string_of_int m.Run_metrics.install_rejects;
               string_of_int m.Run_metrics.bailouts;
               pct worst;
               Printf.sprintf "%d/%d" recovered total;
             ])
           per_bench);
      let mean f = Aggregate.mean (List.map f per_bench) in
      let avg_hit = mean (fun (_, m, _, _, _) -> m.Run_metrics.hit_rate) in
      let avg_worst = mean (fun (_, _, w, _, _) -> w) in
      let avg_recovered =
        mean (fun (_, _, _, r, t) -> if t = 0 then 1.0 else float_of_int r /. float_of_int t)
      in
      let unrecovered =
        List.concat_map
          (fun ((spec : Spec.t), _, _, r, t) ->
            if r < t then [ Printf.sprintf "%s (%d/%d)" spec.Spec.name r t ] else [])
          per_bench
      in
      if unrecovered <> [] then
        Printf.printf "NOT RECOVERED: %s\n" (String.concat ", " unrecovered);
      if json_path <> None then
        json_tables :=
          ( !current_section,
            [
              "hit", avg_hit; "worst_recovery", avg_worst; "recovered_fraction", avg_recovered;
              "bailouts", mean (fun (_, m, _, _, _) -> float_of_int m.Run_metrics.bailouts);
              ( "install_rejects",
                mean (fun (_, m, _, _, _) -> float_of_int m.Run_metrics.install_rejects) );
            ] )
          :: !json_tables)
    [ "net"; "lei"; "combined-lei" ];
  (* The per-disruption view: one row per (policy, bench), every burst's
     post/pre recovery fraction in delivery order. *)
  Printf.printf "\nfault-recovery bursts (post-burst peak / pre-burst peak, per disruption):\n";
  Table.print
    ~header:[ "policy"; "bench"; "bursts"; "worst"; "mean"; "fractions" ]
    (List.rev_map
       (fun (policy, bench, fractions) ->
         let n = List.length fractions in
         let worst = List.fold_left min 1.0 fractions in
         let mean = if n = 0 then 1.0 else Aggregate.mean fractions in
         [
           policy; bench; string_of_int n; pct worst; pct mean;
           String.concat " " (List.map (Table.fmt_float 2) fractions);
         ])
       !fault_bursts)

(* ------------------------------------------------------------------ *)
(* Selection overhead (Bechamel)                                       *)
(* ------------------------------------------------------------------ *)

let speed () =
  header "Per-branch selection overhead (Bechamel; Section 3.1 claim)";
  let open Bechamel in
  let image = Spec.image (Option.get (Suite.find "twolf")) in
  let steps = 40_000 in
  let make_test (name, policy) =
    Test.make ~name
      (Staged.stage (fun () -> ignore (Simulator.run ~seed:1L ~policy ~max_steps:steps image)))
  in
  let tests = Test.make_grouped ~name:"policies" (List.map make_test Policies.all) in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.6) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) ->
        rows := (name, est /. float_of_int steps) :: !rows
      | _ -> ())
    results;
  let rows = List.sort compare !rows in
  Table.print ~header:[ "policy"; "ns per executed block" ]
    (List.map (fun (name, ns) -> [ name; Table.fmt_float 1 ns ]) rows);
  print_endline
    "expectation: LEI within a small constant of NET (one buffer insert and one hash lookup \
     per taken branch); combination adds observation cost only while profiling."

let seeds () =
  header "Robustness: headline ratios across seeds";
  let subset = List.filter_map Suite.find [ "gzip"; "mcf"; "eon"; "twolf" ] in
  let rows =
    List.concat_map
      (fun spec ->
        List.map
          (fun seed ->
            let m policy =
              let p = Option.get (Policies.find policy) in
              Run_metrics.of_result
                (Simulator.run ~seed ~policy:p
                   ~max_steps:(min (budget spec) 400_000)
                   (Spec.image spec))
            in
            let net = m "net" and lei = m "lei" and clei = m "combined-lei" in
            [
              Printf.sprintf "%s/seed%Ld" spec.Spec.name seed;
              f2 (ratio_of (fun x -> x.Run_metrics.cover_90) lei net);
              f2 (ratio_of (fun x -> x.Run_metrics.region_transitions) lei net);
              f2 (ratio_of (fun x -> x.Run_metrics.cover_90) clei net);
            ])
          [ 1L; 2L; 3L ])
      subset
  in
  Table.print ~header:[ "bench/seed"; "cover L/N"; "tr L/N"; "cover cL/N" ] rows;
  print_endline
    "expectation: combined LEI beats NET at every seed; the LEI/NET ratios wobble on the\n\
     smallest benchmarks (warm-up noise), but the suite-level winners are seed-stable."

let codec_speed () =
  header "Compact-encoding overhead (Section 4.2.1's claim that storage is cheap)";
  let open Bechamel in
  let image = Spec.image (Option.get (Suite.find "gzip")) in
  (* A fixed long executed path to encode/decode. *)
  let interp = Regionsel_engine.Interp.create image ~seed:3L in
  let sbuf = Regionsel_engine.Interp.make_step () in
  let blocks = ref [] in
  for _ = 1 to 200 do
    if Regionsel_engine.Interp.step_into interp sbuf then
      blocks := Regionsel_engine.Interp.block interp sbuf :: !blocks
  done;
  let blocks = List.rev !blocks in
  let path = { Regionsel_engine.Region.blocks; final_next = None } in
  let module Compact_trace = Regionsel_core.Compact_trace in
  let encoded = Compact_trace.encode path in
  Printf.printf "path: %d blocks, %d insts -> %d bytes encoded\n" (List.length blocks)
    (Regionsel_engine.Region.path_insts path)
    (Compact_trace.size_bytes encoded);
  let tests =
    Test.make_grouped ~name:"codec"
      [
        Test.make ~name:"encode" (Staged.stage (fun () -> ignore (Compact_trace.encode path)));
        Test.make ~name:"decode"
          (Staged.stage (fun () ->
               ignore (Compact_trace.decode image.Regionsel_workload.Image.program encoded)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> Printf.printf "%-16s %10.0f ns per trace\n" name est
      | _ -> ())
    results

(* ------------------------------------------------------------------ *)
(* Warm-start vs cold-start (checkpoint/restore)                       *)
(* ------------------------------------------------------------------ *)

module Persist = Regionsel_persist.Persist

(* How much faster a run reaches steady state when its warm state (code
   cache, profiles, policy structures) is restored from a snapshot rather
   than rebuilt from scratch.  For each cell, [cold] is the smallest
   number of steps after which a from-scratch segment's cached-instruction
   share reaches 95% of the cell's steady-state share; [warm] is the same
   threshold for a segment that first restores an end-of-run snapshot.
   Both search the same deterministic share curve, so the ratio is exactly
   the re-warm work a crash-restart saves. *)
let restore_cells = [ "gzip", "net"; "mcf", "net"; "twolf", "lei" ]

let restore_snapshot ~spec ~policy_name =
  let policy = Option.get (Policies.find policy_name) in
  let snap = ref None in
  ignore
    (Regionsel_engine.Simulator.run ~seed:1L ~policy ~max_steps:(budget spec)
       ~checkpoint:
         ( max_int,
           fun internals ->
             snap := Some (Persist.encode ~seed:1L ~policy:policy_name internals) )
       (Spec.image spec));
  Option.get !snap

(* Cached-instruction share of one [n]-step segment: from scratch, or
   continuing from [snapshot] (where the counter diff isolates the new
   segment from the restored run's history). *)
let segment_share ?snapshot ~spec ~policy_name n =
  let policy = Option.get (Policies.find policy_name) in
  let base = ref None in
  let restore =
    Option.map
      (fun bytes (internals : Regionsel_engine.Simulator.internals) ->
        ignore (Persist.decode_into bytes ~seed:1L ~policy:policy_name internals);
        base :=
          Some (Stats.snapshot internals.Regionsel_engine.Simulator.int_stats))
      snapshot
  in
  let max_steps = (match snapshot with None -> 0 | Some _ -> budget spec) + n in
  let result =
    Regionsel_engine.Simulator.run ~seed:1L ~policy ?restore ~max_steps (Spec.image spec)
  in
  let later = Stats.snapshot result.Regionsel_engine.Simulator.stats in
  let d =
    match !base with None -> later | Some earlier -> Stats.diff ~earlier ~later
  in
  let total = d.Stats.Snapshot.cached_insts + d.Stats.Snapshot.interpreted_insts in
  if total = 0 then 0.0
  else float_of_int d.Stats.Snapshot.cached_insts /. float_of_int total

(* Smallest segment length whose share reaches [target], by bisection on
   the (monotone up to warm-up noise) share curve; [None] if even the full
   budget never gets there. *)
let steps_to_share ?snapshot ~spec ~policy_name ~target () =
  let n_max = budget spec in
  if segment_share ?snapshot ~spec ~policy_name n_max < target then None
  else begin
    let lo = ref 1 and hi = ref n_max in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if segment_share ?snapshot ~spec ~policy_name mid >= target then hi := mid
      else lo := mid + 1
    done;
    Some !lo
  end

let restore_section () =
  header "Warm vs cold start: steps to 95% of steady-state cached share";
  let rows =
    List.map
      (fun (bench, policy_name) ->
        let spec = Option.get (Suite.find bench) in
        let steady = segment_share ~spec ~policy_name (budget spec) in
        let target = 0.95 *. steady in
        let snapshot = restore_snapshot ~spec ~policy_name in
        let cold =
          Option.value ~default:(budget spec)
            (steps_to_share ~spec ~policy_name ~target ())
        in
        let warm =
          Option.value ~default:(budget spec)
            (steps_to_share ~snapshot ~spec ~policy_name ~target ())
        in
        (bench ^ "/" ^ policy_name, steady, cold, warm))
      restore_cells
  in
  Table.print
    ~header:[ "bench/policy"; "steady share"; "cold steps"; "warm steps"; "warm/cold" ]
    (List.map
       (fun (cell, steady, cold, warm) ->
         [
           cell; pct steady; string_of_int cold; string_of_int warm;
           f2 (float_of_int warm /. float_of_int cold);
         ])
       rows);
  if json_path <> None then begin
    let mean f = Aggregate.mean (List.map f rows) in
    json_tables :=
      ( !current_section,
        [
          "steady_share", mean (fun (_, s, _, _) -> s);
          "cold_steps_to_95", mean (fun (_, _, c, _) -> float_of_int c);
          "warm_steps_to_95", mean (fun (_, _, _, w) -> float_of_int w);
          ( "warm_over_cold",
            mean (fun (_, _, c, w) -> float_of_int w /. float_of_int c) );
        ] )
      :: !json_tables
  end

(* ------------------------------------------------------------------ *)
(* Harness driver                                                      *)
(* ------------------------------------------------------------------ *)

(* Simulate the full (benchmark x policy) matrix across domains before any
   section runs, so [metric] is a pure cache hit afterwards.  Images are
   lazy and not thread-safe, so they are forced here on the main domain;
   results come back in submission order, making the cache contents — and
   everything printed from them — independent of domain scheduling. *)
let prefill_matrix () =
  let pairs =
    List.concat_map
      (fun (spec : Spec.t) -> List.map (fun (pname, _) -> spec, pname) Policies.all)
      benches
  in
  let todo =
    List.filter
      (fun ((spec : Spec.t), pname) -> not (Hashtbl.mem cache (spec.Spec.name, pname)))
      pairs
  in
  List.iter (fun ((spec : Spec.t), _) -> ignore (Spec.image spec)) todo;
  let results =
    Domain_pool.map
      (fun ((spec : Spec.t), pname) ->
        let policy = Option.get (Policies.find pname) in
        Run_metrics.of_result
          (Simulator.run ~seed:1L ~policy ~max_steps:(budget spec) (Spec.image spec)))
      todo
  in
  List.iter2
    (fun ((spec : Spec.t), pname) m -> Hashtbl.replace cache (spec.Spec.name, pname) m)
    todo results

(* End-to-end simulation throughput (block steps per second).  The
   headline figure uses a mid-sized workload with the cheapest policy so
   it tracks the hot path rather than region formation; the "hot" figure
   uses the most region-dominated workload (gzip: tight loops, ~99% of
   instructions cached), where the compiled-automaton stepping and the
   link cache matter most. *)
let measure_throughput ?(params = Params.default) ~image_name ~policy_name () =
  let image = Spec.image (Option.get (Suite.find image_name)) in
  let policy = Option.get (Policies.find policy_name) in
  let steps = if quick then 100_000 else 400_000 in
  let run () =
    match trace_out_path with
    | None -> ignore (Simulator.run ~params ~seed:1L ~policy ~max_steps:steps image)
    | Some _ ->
      let t = Telemetry.create () in
      let result =
        Simulator.run ~params ~seed:1L ~telemetry:(Some t) ~policy ~max_steps:steps image
      in
      Telemetry.finish t ~step:result.Simulator.stats.Stats.steps;
      last_trace := Some (image_name ^ "/" ^ policy_name, t)
  in
  run () (* warm-up *);
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    run ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  float_of_int steps /. !best

let measure_steps_per_sec () = measure_throughput ~image_name:"twolf" ~policy_name:"net" ()

(* Link-cache counters from one region-dominated run, surfaced in the JSON
   so regressions in fragment linking are visible alongside throughput —
   plus the edge profiler's ring-drain count from the same run (a sudden
   jump would mean edges are falling out of the batching window). *)
let measure_link_counters () =
  let image = Spec.image (Option.get (Suite.find "twolf")) in
  let policy = Option.get (Policies.find "net") in
  let steps = if quick then 100_000 else 400_000 in
  let result = Simulator.run ~seed:1L ~policy ~max_steps:steps image in
  let m = Run_metrics.of_result result in
  ( m.Run_metrics.links,
    m.Run_metrics.link_hits,
    m.Run_metrics.link_severs,
    m.Run_metrics.links_high_water,
    m.Run_metrics.node_steps,
    Regionsel_engine.Edge_profile.flushes result.Simulator.edges )

(* Windowed-metrics overhead on the headline cell: the same run measured
   back-to-back with sampling off and with a recorder at the default
   window, best-of-3 each.  The recorder is recreated per run (its window
   list grows during the run); export cost is excluded — the gate prices
   the always-on sampling path only, and CI holds the fraction under
   3%. *)
let measure_metrics_overhead () =
  let module Metrics = Regionsel_obs.Metrics in
  let image = Spec.image (Option.get (Suite.find "twolf")) in
  let policy = Option.get (Policies.find "net") in
  let steps = if quick then 100_000 else 400_000 in
  let best_of_3 run =
    run () (* warm-up *);
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      run ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    float_of_int steps /. !best
  in
  let off =
    best_of_3 (fun () ->
        ignore
          (Regionsel_engine.Simulator.run ~seed:1L ~policy ~max_steps:steps image))
  in
  let on =
    best_of_3 (fun () ->
        let r =
          Metrics.create
            ~labels:[ "tenant", "twolf"; "policy", "net"; "dispatch", "threaded" ]
            ()
        in
        let result =
          Regionsel_engine.Simulator.run ~seed:1L ~policy
            ~on_window:(Metrics.hook r) ~max_steps:steps image
        in
        Metrics.finalize r result)
  in
  (off, on, Float.max 0.0 (1.0 -. (on /. off)))

(* Steady-state allocation of the headline loop, in minor-heap words per
   executed block: two runs differing only in length cancel the per-run
   setup costs (the interpreter's op table, policy state, region installs
   during warm-up), leaving the marginal per-step slope.  ~0.0 is the
   contract — the step loop itself allocates nothing; the tolerance gated
   in CI only absorbs rare growth events (table doublings, late
   installs). *)
let measure_minor_words_per_step () =
  let image = Spec.image (Option.get (Suite.find "twolf")) in
  let policy = Option.get (Policies.find "net") in
  let n = if quick then 100_000 else 400_000 in
  let alloc steps =
    let mw0 = Gc.minor_words () in
    ignore (Simulator.run ~seed:1L ~policy ~max_steps:steps image);
    Gc.minor_words () -. mw0
  in
  ignore (alloc 1_000) (* force lazy image state out of the measurement *);
  let a1 = alloc n in
  let a2 = alloc (2 * n) in
  (a2 -. a1) /. float_of_int n

(* Multi-stream scaling: aggregate steps/sec of N independent tenants
   (same workload, distinct seeds) multiplexed over the available domains
   by the Multi_stream scheduler.  One stream measures the scheduler's
   overhead against the headline single-run figure; N streams measure how
   close aggregate throughput gets to linear in the domain count.  Rows
   are kept for [--json] under the "streams" key (the CI scale gate). *)
module Multi_stream = Regionsel_engine.Multi_stream

let scale_rows : (int * float) list ref = ref []

let scale () =
  header "Multi-stream scaling: aggregate steps/sec (domain-sharded tenants)";
  let image = Spec.image (Option.get (Suite.find "twolf")) in
  let policy = Option.get (Policies.find "net") in
  let steps = if quick then 100_000 else 400_000 in
  let n_domains = Domain_pool.default_n_domains () in
  let measure streams =
    let run () =
      ignore
        (Multi_stream.run ~n_domains:(min n_domains streams) ~batch_steps:16384
           (List.init streams (fun i ->
                Multi_stream.tenant ~seed:(Int64.of_int (i + 1)) ~policy ~max_steps:steps
                  ~name:(Printf.sprintf "t%d" i) image)))
    in
    run () (* warm-up *);
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      run ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    float_of_int (streams * steps) /. !best
  in
  let rows = List.map (fun s -> (s, measure s)) [ 1; 2; 4; 8 ] in
  scale_rows := rows;
  let base = List.assoc 1 rows in
  Table.print
    ~header:[ "streams"; "Magg-steps/s"; "speedup" ]
    (List.map
       (fun (s, r) ->
         [ string_of_int s; Table.fmt_float 2 (r /. 1e6); Table.fmt_float 2 (r /. base) ])
       rows);
  Printf.printf "(%d domains available)\n" n_domains

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v = if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

let emit_json path =
  let steps_per_sec = measure_steps_per_sec () in
  let steps_per_sec_hot = measure_throughput ~image_name:"gzip" ~policy_name:"net" () in
  let steps_per_sec_hot_legacy =
    measure_throughput
      ~params:{ Params.default with Params.compiled_regions = false }
      ~image_name:"gzip" ~policy_name:"net" ()
  in
  let links, link_hits, link_severs, links_hw, node_steps, profiler_flushes =
    measure_link_counters ()
  in
  let minor_words_per_step = measure_minor_words_per_step () in
  let metrics_off, metrics_on, metrics_overhead = measure_metrics_overhead () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema_version\": 6,\n";
  Buffer.add_string b (Printf.sprintf "  \"quick\": %b,\n" quick);
  Buffer.add_string b
    (Printf.sprintf "  \"n_domains\": %d,\n" (Domain_pool.default_n_domains ()));
  (* The interpreter mode the measured runs used; "legacy" only if someone
     re-benches with Params.threaded_dispatch = false. *)
  Buffer.add_string b
    (Printf.sprintf "  \"dispatch_mode\": \"%s\",\n"
       (if Params.default.Params.threaded_dispatch then "threaded" else "legacy"));
  Buffer.add_string b
    (Printf.sprintf "  \"steps_per_sec\": %s,\n" (json_float steps_per_sec));
  Buffer.add_string b
    (Printf.sprintf "  \"ns_per_block\": %s,\n" (json_float (1e9 /. steps_per_sec)));
  Buffer.add_string b
    (Printf.sprintf "  \"steps_per_sec_hot\": %s,\n" (json_float steps_per_sec_hot));
  Buffer.add_string b
    (Printf.sprintf "  \"steps_per_sec_hot_legacy\": %s,\n"
       (json_float steps_per_sec_hot_legacy));
  Buffer.add_string b
    (Printf.sprintf "  \"minor_words_per_step\": %s,\n" (json_float minor_words_per_step));
  Buffer.add_string b
    (Printf.sprintf
       "  \"metrics_overhead\": {\"steps_per_sec_off\": %s, \"steps_per_sec_on\": %s, \
        \"overhead_frac\": %s, \"window\": %d},\n"
       (json_float metrics_off) (json_float metrics_on) (json_float metrics_overhead)
       Regionsel_obs.Metrics.default_window);
  Buffer.add_string b
    (Printf.sprintf
       "  \"links\": %d,\n  \"link_hits\": %d,\n  \"link_severs\": %d,\n  \
        \"links_high_water\": %d,\n  \"node_steps\": %d,\n  \"profiler_flushes\": %d,\n"
       links link_hits link_severs links_hw node_steps profiler_flushes);
  (* Always-present key like fault_bursts: [] when the scale section
     didn't run. *)
  let srows = !scale_rows in
  if srows = [] then Buffer.add_string b "  \"streams\": [],\n"
  else begin
    let base = List.assoc 1 srows in
    Buffer.add_string b "  \"streams\": [\n";
    List.iteri
      (fun i (s, r) ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"streams\": %d, \"aggregate_steps_per_sec\": %s, \"speedup\": %s}" s
             (json_float r)
             (json_float (r /. base)));
        Buffer.add_string b (if i < List.length srows - 1 then ",\n" else "\n"))
      srows;
    Buffer.add_string b "  ],\n"
  end;
  (* The key is part of the schema even when the fault section didn't run
     (e.g. [--only speed]): an explicit empty array, never a missing key. *)
  let bursts = List.rev !fault_bursts in
  if bursts = [] then Buffer.add_string b "  \"fault_bursts\": [],\n"
  else begin
    Buffer.add_string b "  \"fault_bursts\": [\n";
    List.iteri
      (fun i (policy, bench, fractions) ->
        Buffer.add_string b
          (Printf.sprintf "    {\"policy\": \"%s\", \"bench\": \"%s\", \"fractions\": [%s]}"
             (json_escape policy) (json_escape bench)
             (String.concat ", " (List.map json_float fractions)));
        Buffer.add_string b (if i < List.length bursts - 1 then ",\n" else "\n"))
      bursts;
    Buffer.add_string b "  ],\n"
  end;
  Buffer.add_string b "  \"sections\": [\n";
  let tables = List.rev !json_tables in
  List.iteri
    (fun i (section, avgs) ->
      Buffer.add_string b
        (Printf.sprintf "    {\"section\": \"%s\", \"averages\": [" (json_escape section));
      List.iteri
        (fun j (col, v) ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf "{\"column\": \"%s\", \"value\": %s}" (json_escape col)
               (json_float v)))
        avgs;
      Buffer.add_string b "]}";
      Buffer.add_string b (if i < List.length tables - 1 then ",\n" else "\n"))
    tables;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf
    "\nwrote %s (%.2fM steps/sec, %.1f ns/block; hot %.2fM vs legacy %.2fM = %.2fx; %.4f \
     minor words/step)\n"
    path (steps_per_sec /. 1e6) (1e9 /. steps_per_sec) (steps_per_sec_hot /. 1e6)
    (steps_per_sec_hot_legacy /. 1e6)
    (steps_per_sec_hot /. steps_per_sec_hot_legacy)
    minor_words_per_step

(* Sections that never touch the memoized matrix; prefilling for them
   would only add startup latency. *)
let matrix_free = [ "speed"; "codec"; "seeds"; "faults"; "restore"; "scale" ]

let () =
  Printf.printf "regionsel benchmark harness: %d benchmarks x %d policies%s\n"
    (List.length bench_names) (List.length Policies.all)
    (if quick then " (quick mode)" else "");
  let sections =
    [
      "fig7", fig7; "fig8", fig8; "fig9", fig9; "fig10", fig10; "fig11", fig11;
      "fig12", fig12; "hitrate", hitrate; "fig16", fig16; "fig17", fig17; "fig18", fig18;
      "fig19", fig19; "summary", summary; "related", related; "icache", icache_fig;
      "ablation-buffer", ablation_buffer; "ablation-tprof", ablation_tprof;
      "ablation-threshold", ablation_threshold; "ablation-cache", ablation_bounded_cache;
      "ablation-layout", ablation_layout;
      "methods", methods; "seeds", seeds; "faults", faults_section; "speed", speed;
      "codec", codec_speed; "restore", restore_section; "scale", scale;
    ]
  in
  if
    List.exists (fun (name, _) -> enabled name && not (List.mem name matrix_free)) sections
  then prefill_matrix ();
  List.iter
    (fun (name, f) ->
      if enabled name then begin
        current_section := name;
        f ()
      end)
    sections;
  Option.iter emit_json json_path;
  match trace_out_path with
  | None -> ()
  | Some path ->
    (if !last_trace = None then begin
       (* No throughput run happened (e.g. no [--json]): trace one
          dedicated cell so [--trace-out] always produces a timeline. *)
       let image = Spec.image (Option.get (Suite.find "twolf")) in
       let policy = Option.get (Policies.find "net") in
       let t = Telemetry.create () in
       let result =
         Simulator.run ~seed:1L ~telemetry:(Some t) ~policy
           ~max_steps:(if quick then 100_000 else 400_000)
           image
       in
       Telemetry.finish t ~step:result.Simulator.stats.Stats.steps;
       last_trace := Some ("twolf/net", t)
     end);
    (match !last_trace with
    | Some (name, t) ->
      Trace_export.write_chrome t ~name ~path;
      Trace_export.write_jsonl t ~path:(path ^ ".jsonl");
      Printf.eprintf "trace: %s (%d events, %d spans) -> %s, %s\n%!" name
        (Telemetry.n_emitted t)
        (List.length (Telemetry.spans t))
        path (path ^ ".jsonl")
    | None -> ())
