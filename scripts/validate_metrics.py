#!/usr/bin/env python3
"""Validate the windowed-metrics exporters' output.

Usage: validate_metrics.py SERIES.jsonl [SNAPSHOT.prom ...]

JSONL files: every line must be a standalone JSON object with the fixed
record shape ({series, labels, window, start_step, end_step, value}),
windows must be non-empty and contiguous per label set, and every label
set must carry the same series names in the same order in every window.

Prometheus files: text exposition grammar only — HELP/TYPE comment pairs
preceding their samples, every sample parsing as `name{labels} value`
with a finite value, and no duplicate (name, labels) series.

A flight-recorder JSONL (first line carrying a "flight" key) is accepted
too: the header is validated for its reproducer line, the remaining
lines as ordinary records.
"""
import json
import math
import re
import sys

RECORD_KEYS = {"series", "labels", "window", "start_step", "end_step", "value"}
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def validate_jsonl(path):
    # (labels-json -> list of (window, start, end, series)) in file order.
    per_labels = {}
    n = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: not JSON: {e}")
            if lineno == 1 and "flight" in rec:
                if not rec.get("cli"):
                    fail(f"{path}: flight header has no reproducer cli line")
                if not isinstance(rec.get("windows"), int) or rec["windows"] < 1:
                    fail(f"{path}: flight header windows={rec.get('windows')!r}")
                continue
            if set(rec) != RECORD_KEYS:
                fail(f"{path}:{lineno}: keys {sorted(rec)} != {sorted(RECORD_KEYS)}")
            if not isinstance(rec["labels"], dict) or not rec["labels"]:
                fail(f"{path}:{lineno}: labels must be a non-empty object")
            if not isinstance(rec["value"], (int, float)) or (
                isinstance(rec["value"], float) and not math.isfinite(rec["value"])
            ):
                fail(f"{path}:{lineno}: non-finite value {rec['value']!r}")
            if rec["end_step"] <= rec["start_step"]:
                fail(f"{path}:{lineno}: empty window {rec['start_step']}..{rec['end_step']}")
            key = json.dumps(rec["labels"], sort_keys=True)
            per_labels.setdefault(key, []).append(
                (rec["window"], rec["start_step"], rec["end_step"], rec["series"])
            )
            n += 1
    if n == 0:
        fail(f"{path}: no records")
    for key, rows in per_labels.items():
        # Group by window index; windows must be sequential and contiguous,
        # and every window must carry the same series list.
        windows = {}
        for w, start, end, series in rows:
            windows.setdefault(w, {"start": start, "end": end, "series": []})
            if (windows[w]["start"], windows[w]["end"]) != (start, end):
                fail(f"{path}: {key} window {w} has inconsistent bounds")
            windows[w]["series"].append(series)
        indices = sorted(windows)
        if indices != list(range(indices[0], indices[0] + len(indices))):
            fail(f"{path}: {key} window indices not sequential: {indices}")
        first = windows[indices[0]]["series"]
        if len(set(first)) != len(first):
            fail(f"{path}: {key} duplicate series within a window: {first}")
        for w in indices:
            if windows[w]["series"] != first:
                fail(f"{path}: {key} window {w} series list differs")
            if w > indices[0] and windows[w]["start"] != windows[w - 1]["end"]:
                fail(
                    f"{path}: {key} window {w} starts at {windows[w]['start']}, "
                    f"previous ended at {windows[w - 1]['end']}"
                )
    print(f"{path}: {n} records, {len(per_labels)} label sets ok")


def validate_prometheus(path):
    typed, helped, seen = set(), set(), set()
    samples = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                parts = line.split(" ", 3)
                if len(parts) < 4 or parts[1] not in ("HELP", "TYPE"):
                    fail(f"{path}:{lineno}: malformed comment: {line}")
                name = parts[2]
                book = typed if parts[1] == "TYPE" else helped
                if name in book:
                    fail(f"{path}:{lineno}: duplicate {parts[1]} for {name}")
                book.add(name)
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                fail(f"{path}:{lineno}: malformed sample: {line}")
            name, labels, value = m.group(1), m.group(2) or "", m.group(3)
            try:
                if not math.isfinite(float(value)):
                    raise ValueError
            except ValueError:
                fail(f"{path}:{lineno}: non-finite value: {line}")
            if labels:
                body = labels[1:-1].rstrip(",")
                if body and LABEL_RE.sub("", body).strip(",") != "":
                    fail(f"{path}:{lineno}: malformed labels: {labels}")
            if name not in typed or name not in helped:
                fail(f"{path}:{lineno}: sample before HELP/TYPE: {name}")
            if (name, labels) in seen:
                fail(f"{path}:{lineno}: duplicate series: {name}{labels}")
            seen.add((name, labels))
            samples += 1
    if samples == 0:
        fail(f"{path}: no samples")
    print(f"{path}: {samples} samples, {len(typed)} series names ok")


def main(argv):
    if len(argv) < 2:
        fail("usage: validate_metrics.py FILE.jsonl [FILE.prom ...]")
    for path in argv[1:]:
        if path.endswith(".prom"):
            validate_prometheus(path)
        else:
            validate_jsonl(path)


if __name__ == "__main__":
    main(sys.argv)
