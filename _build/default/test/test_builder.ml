open Regionsel_isa
module Builder = Regionsel_workload.Builder
module Behavior = Regionsel_workload.Behavior
module Image = Regionsel_workload.Image
open Fixtures

let two_function_image () =
  let b = Builder.create ~base:0x100 () in
  Builder.func b "callee";
  Builder.block b ~size:3 Builder.Return;
  Builder.func b "main";
  Builder.block b ~size:2 Builder.Fallthrough;
  Builder.block b ~label:"loop" ~size:4 (Builder.Call "callee");
  Builder.block b ~size:2 (Builder.Cond ("loop", Behavior.Loop 5));
  Builder.block b ~size:1 Builder.Halt;
  Builder.compile b ~name:"two" ~entry:"main"

let layout_follows_declaration () =
  let image = two_function_image () in
  let p = image.Image.program in
  check_int "base honoured" 0x100 (Block.make ~start:0x100 ~size:1 ~term:Terminator.Halt).Block.start;
  check_true "callee at base" (Program.block_at p 0x100 <> None);
  check_int "entry is main" 0x103 (Program.entry p);
  check_int "five blocks" 5 (Program.n_blocks p);
  check_int "twelve instructions" 12 (Program.n_insts p)

let call_is_backward () =
  let image = two_function_image () in
  let p = image.Image.program in
  let call_block = Program.block_at_exn p 0x105 in
  (match call_block.Block.term with
  | Terminator.Call tgt ->
    check_true "call targets lower address" (Addr.is_backward ~src:(Block.last call_block) ~tgt)
  | _ -> Alcotest.fail "expected a call terminator");
  ()

let cond_spec_registered () =
  let image = two_function_image () in
  let p = image.Image.program in
  (* The Cond block is the third main block, at 0x109, terminator at 0x10a. *)
  let cond_block = Program.block_at_exn p 0x109 in
  (match cond_block.Block.term with
  | Terminator.Cond _ -> ()
  | _ -> Alcotest.fail "expected a cond terminator");
  match Image.cond_spec image (Block.last cond_block) with
  | Behavior.Loop 5 -> ()
  | _ -> Alcotest.fail "cond spec should be Loop 5"

let duplicate_label_rejected () =
  let b = Builder.create () in
  Builder.func b "f";
  Builder.block b ~size:1 Builder.Return;
  Builder.func b "g";
  check_true "duplicate rejected"
    (try
       Builder.block b ~label:"f" ~size:1 Builder.Return;
       false
     with Invalid_argument _ -> true)

let block_without_function_rejected () =
  let b = Builder.create () in
  check_true "no function open"
    (try
       Builder.block b ~size:1 Builder.Halt;
       false
     with Invalid_argument _ -> true)

let first_block_label_must_match () =
  let b = Builder.create () in
  Builder.func b "f";
  check_true "mismatched first label rejected"
    (try
       Builder.block b ~label:"not_f" ~size:1 Builder.Return;
       false
     with Invalid_argument _ -> true)

let unresolved_label_rejected () =
  let b = Builder.create () in
  Builder.func b "f";
  Builder.block b ~size:1 (Builder.Jump "nowhere");
  check_true "unresolved label"
    (try
       ignore (Builder.compile b ~name:"bad");
       false
     with Invalid_argument _ -> true)

let empty_program_rejected () =
  let b = Builder.create () in
  check_true "empty program"
    (try
       ignore (Builder.compile b ~name:"empty");
       false
     with Invalid_argument _ -> true)

let indirect_specs_resolved () =
  let b = Builder.create () in
  Builder.func b "t1";
  Builder.block b ~size:1 Builder.Return;
  Builder.func b "t2";
  Builder.block b ~size:1 Builder.Return;
  Builder.func b "main";
  Builder.block b ~label:"main" ~size:2
    (Builder.Indirect_call (Builder.Round_robin [ "t1"; "t2" ]));
  Builder.block b ~size:1 Builder.Halt;
  let image = Builder.compile b ~name:"ind" ~entry:"main" in
  let p = image.Image.program in
  let entry = Program.entry p in
  let blk = Program.block_at_exn p entry in
  match Image.indirect_spec image (Block.last blk) with
  | Behavior.Round_robin targets ->
    check_int "two targets" 2 (Array.length targets);
    check_true "targets are block starts"
      (Array.for_all (Program.is_block_start p) targets)
  | Behavior.Weighted_targets _ -> Alcotest.fail "expected round robin"

let entry_defaults_to_first_function () =
  let b = Builder.create () in
  Builder.func b "first";
  Builder.block b ~size:1 Builder.Halt;
  let image = Builder.compile b ~name:"one" in
  check_int "entry at base" 0x1000 (Program.entry image.Image.program)

let all_patterns_compile () =
  (* The pattern library composes into a valid program. *)
  let module Patterns = Regionsel_workload.Patterns in
  let b = Builder.create () in
  Patterns.leaf b ~name:"leaf" ~size:4;
  Patterns.plain_loop b ~name:"plain" ~trip:5 ~body_blocks:2 ~body_size:3;
  Patterns.loop_with_calls b ~name:"withcalls" ~trip:5 ~callees:[ "leaf" ];
  Patterns.nested_loop b ~name:"nested" ~outer_trip:3 ~inner_trip:4 ~body_size:3;
  Patterns.diamond_loop b ~name:"diamond" ~trip:5
    ~diamonds:[ { Patterns.bias = 0.5; side_size = 3 } ];
  Patterns.dispatch_loop b ~name:"dispatch" ~trip:5 ~cases:[ 3, 1.0; 4, 2.0 ];
  Patterns.long_cycle_loop b ~name:"chain" ~trip:2 ~segments:2 ~hops_per_segment:3;
  Patterns.composite_loop b ~name:"composite" ~trip:5
    ~body:
      [
        Patterns.Straight 3;
        Patterns.Diamond { Patterns.bias = 0.8; side_size = 3 };
        Patterns.Call_to "leaf";
        Patterns.Continue 0.2;
      ];
  Patterns.spaced_loop b ~name:"spaced" ~body_size:3;
  Patterns.cold_farm b ~name:"farm" ~n:3 ~body_size:3;
  let callers = Patterns.call_farm b ~name:"farm2" ~callees:[ "leaf" ] ~n_callers:2 ~trip:3 in
  Patterns.driver b ~name:"main" ~weights:[ "spaced", 0.5 ]
    ([ "plain"; "withcalls"; "nested"; "diamond"; "dispatch"; "chain"; "composite";
       "spaced"; "farm" ] @ callers);
  let image = Builder.compile b ~name:"patterns" ~entry:"main" in
  check_true "many blocks" (Program.n_blocks image.Image.program > 40)

let suite =
  [
    case "layout follows declaration" layout_follows_declaration;
    case "call is backward" call_is_backward;
    case "cond spec registered" cond_spec_registered;
    case "duplicate label rejected" duplicate_label_rejected;
    case "block without function rejected" block_without_function_rejected;
    case "first block label must match" first_block_label_must_match;
    case "unresolved label rejected" unresolved_label_rejected;
    case "empty program rejected" empty_program_rejected;
    case "indirect specs resolved" indirect_specs_resolved;
    case "entry defaults to first function" entry_defaults_to_first_function;
    case "all patterns compile" all_patterns_compile;
  ]
