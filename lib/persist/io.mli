(** Retry-safe fd I/O: the write/read discipline shared by snapshots
    ({!Persist}), recordings ({!Event_log}), the metrics exporters and the
    daemon's socket code.

    [Unix.write] can return short, and with live signal handlers (the
    daemon's SIGTERM shutdown path) it can also fail with [EINTR]
    mid-artifact; non-blocking sockets add [EAGAIN].  Everything here
    retries all three, so a snapshot save cannot abort half-written
    because a signal landed. *)

val write_all : Unix.file_descr -> Bytes.t -> pos:int -> len:int -> unit
(** Write the whole range, retrying short writes and [EINTR]; on
    [EAGAIN]/[EWOULDBLOCK] (non-blocking fd) wait for writability and
    continue.  Any other [Unix.Unix_error] propagates. *)

val read : Unix.file_descr -> Bytes.t -> pos:int -> len:int -> int
(** One read, retrying [EINTR] and waiting out [EAGAIN]; returns the
    byte count ([0] = end of stream / peer closed). *)

val really_read : Unix.file_descr -> Bytes.t -> pos:int -> len:int -> bool
(** Fill the whole range; [false] if the stream ended first. *)

val write_atomic : ?crash_after_bytes:int -> path:string -> Bytes.t -> unit
(** The persist layer's atomic-publish pattern: write to [path ^ ".tmp"],
    fsync, rename over [path] — a reader (concurrent scraper, crashed
    writer) never observes a torn file.  With [crash_after_bytes = n] the
    write stops after [n] bytes of the temporary and neither fsyncs nor
    renames — the simulated mid-write crash: [path] keeps whatever it
    held before. *)
