test/test_trace_cfg.ml: Array Block Fixtures Gen List QCheck QCheck_alcotest Regionsel_core Regionsel_engine Regionsel_isa Terminator
