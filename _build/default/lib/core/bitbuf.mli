(** Growable bit buffers: the substrate of the Figure 14 compact trace
    encoding.

    Bits are written most-significant-first within each byte, so the
    serialized form is deterministic and the reader consumes bits in write
    order. *)

module Writer : sig
  type t

  val create : unit -> t
  val add_bit : t -> bool -> unit

  val add_bits2 : t -> int -> unit
  (** Append a 2-bit code (value in [[0, 3]]). *)

  val add_uint32 : t -> int -> unit
  (** Append a 32-bit big-endian unsigned value (value in [[0, 2^32)]). *)

  val length_bits : t -> int

  val byte_length : t -> int
  (** Bytes needed to store the bits written so far: the memory-cost of the
      encoding (Figure 18). *)

  val contents : t -> bytes
  (** The written bits, final partial byte zero-padded. *)
end

module Reader : sig
  type t

  val create : bytes -> n_bits:int -> t
  val read_bit : t -> bool

  val read_bits2 : t -> int
  val read_uint32 : t -> int

  val remaining_bits : t -> int

  exception Out_of_bits
  (** Raised when reading past [n_bits]. *)
end
