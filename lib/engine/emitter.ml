open Regionsel_isa

type operand = Internal of int | Stub of int

type inst =
  | Copied of { orig : Addr.t }
  | Rewritten of {
      orig : Addr.t;
      kind : Terminator.t;
      taken : operand option;
      fall : operand option;
    }

type stub = { index : int; exit_target : Addr.t option; from : Addr.t }

type t = { region : Region.t; body : inst array; stubs : stub array }

let layout_order (region : Region.t) = Region.layout_blocks region

let emit (region : Region.t) =
  let offset_of a =
    let off = Region.block_offset region a in
    if off >= 0 then Some off else None
  in
  let body = ref [] in
  let stubs = ref [] in
  let new_stub ~from ~exit_target =
    let index = List.length !stubs in
    stubs := { index; exit_target; from } :: !stubs;
    Stub index
  in
  let direction ~from target =
    if Region.has_edge region ~src:from ~dst:target then
      match offset_of target with
      | Some off -> Internal off
      | None -> new_stub ~from ~exit_target:(Some target)
    else new_stub ~from ~exit_target:(Some target)
  in
  let emit_block (b : Block.t) =
    let s = b.Block.start in
    for i = 0 to b.Block.size - 2 do
      body := Copied { orig = s + i } :: !body
    done;
    let taken, fall =
      match b.Block.term with
      | Terminator.Fallthrough -> None, Some (direction ~from:s (Block.fall_addr b))
      | Terminator.Cond tgt ->
        Some (direction ~from:s tgt), Some (direction ~from:s (Block.fall_addr b))
      | Terminator.Jump tgt | Terminator.Call tgt -> Some (direction ~from:s tgt), None
      | Terminator.Return | Terminator.Indirect_jump | Terminator.Indirect_call ->
        (* Predicted indirect targets may be internal edges, but the
           mispredict path always exits through a stub. *)
        Some (new_stub ~from:s ~exit_target:None), None
      | Terminator.Halt -> None, None
    in
    body := Rewritten { orig = Block.last b; kind = b.Block.term; taken; fall } :: !body
  in
  List.iter emit_block (layout_order region);
  let stubs = Array.of_list (List.rev !stubs) in
  if Array.length stubs <> region.Region.n_stubs then
    invalid_arg
      (Printf.sprintf "Emitter.emit: emitted %d stubs but the region accounts for %d"
         (Array.length stubs) region.Region.n_stubs);
  { region; body = Array.of_list (List.rev !body); stubs }

let body_bytes t = Array.length t.body * Region.inst_bytes
let total_bytes t = body_bytes t + (Array.length t.stubs * Region.stub_bytes)

let pp_operand ppf = function
  | Internal off -> Format.fprintf ppf "+%04x" off
  | Stub i -> Format.fprintf ppf "stub%d" i

let pp ppf t =
  Format.fprintf ppf "@[<v>emitted region #%d: %d insts + %d stubs = %d bytes"
    t.region.Region.id (Array.length t.body) (Array.length t.stubs) (total_bytes t);
  Array.iteri
    (fun i inst ->
      let off = i * Region.inst_bytes in
      match inst with
      | Copied { orig } -> Format.fprintf ppf "@,  +%04x  %a" off Addr.pp orig
      | Rewritten { orig; kind; taken; fall } ->
        Format.fprintf ppf "@,  +%04x  %a  %a" off Addr.pp orig Terminator.pp kind;
        (match taken with Some op -> Format.fprintf ppf " -> %a" pp_operand op | None -> ());
        (match fall with
        | Some op -> Format.fprintf ppf " / fall %a" pp_operand op
        | None -> ()))
    t.body;
  Array.iter
    (fun { index; exit_target; from } ->
      match exit_target with
      | Some a -> Format.fprintf ppf "@,  stub%d: exit to %a (from %a)" index Addr.pp a Addr.pp from
      | None -> Format.fprintf ppf "@,  stub%d: indirect exit (from %a)" index Addr.pp from)
    t.stubs;
  Format.fprintf ppf "@]"
