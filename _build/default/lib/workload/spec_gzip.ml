(* 164.gzip: LZ77 compression.  A handful of very hot, strongly biased
   kernels — the longest-match scan (an interprocedural cycle through the
   hash probe), the deflate output loop and the CRC loop — so nearly all
   execution concentrates in a tiny set of regions: the paper's smallest
   90% cover sets.  A farm of rarely-run maintenance routines exercises
   profiling-counter memory without mattering to execution time. *)

let build () =
  let b = Builder.create () in
  Patterns.leaf b ~name:"hash_probe" ~size:7;
  Patterns.composite_loop b ~name:"longest_match" ~trip:300
    ~body:
      [
        Patterns.Straight 5;
        Patterns.Diamond { Patterns.bias = 0.9; side_size = 4 };
        Patterns.Call_to "hash_probe";
        Patterns.Straight 4;
        Patterns.Continue 0.12;
        Patterns.Straight 3;
      ];
  Patterns.composite_loop b ~name:"deflate" ~trip:400
    ~body:
      [
        Patterns.Straight 6;
        Patterns.Straight 5;
        Patterns.Diamond { Patterns.bias = 0.93; side_size = 4 };
        Patterns.Straight 5;
      ];
  Patterns.nested_loop b ~name:"crc" ~outer_trip:30 ~inner_trip:60 ~body_size:4;
  Patterns.diamond_loop b ~name:"send_bits" ~trip:250
    ~diamonds:[ { Patterns.bias = 0.9; side_size = 4 } ];
  Patterns.spaced_loop b ~name:"flush_block" ~body_size:5;
  Patterns.cold_farm b ~name:"maintenance" ~n:10 ~body_size:5;
  Patterns.driver b ~name:"main"
    ~weights:[ "flush_block", 0.2; "maintenance", 0.1 ]
    [ "longest_match"; "deflate"; "crc"; "send_bits"; "flush_block"; "maintenance" ];
  Builder.compile b ~name:"gzip" ~entry:"main"

let spec =
  Spec.make ~name:"gzip"
    ~description:
      "164.gzip stand-in: few very hot biased kernels (match scan, deflate, CRC); \
       concentrated execution, smallest cover sets"
    ~steps:1_200_000 build
