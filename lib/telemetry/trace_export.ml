(* Everything here is cold post-run code: plain Buffer/Printf JSON
   emission, no dependencies. *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let hist_json h =
  let buckets =
    Telemetry.Hist.buckets h
    |> List.map (fun (lo, hi, count) ->
           (* Bucket 0's lower bound is min_int; clamp for JSON sanity. *)
           Printf.sprintf {|{"lo": %d, "hi": %d, "count": %d}|} (max lo 0) hi count)
    |> String.concat ", "
  in
  Printf.sprintf {|{"count": %d, "sum": %d, "max": %d, "buckets": [%s]}|}
    (Telemetry.Hist.count h) (Telemetry.Hist.sum h) (Telemetry.Hist.max_value h) buckets

let histograms_json t =
  Printf.sprintf
    {|{"residency": %s, "time_to_first_link": %s, "trace_length": %s, "blacklist_cooldown": %s}|}
    (hist_json (Telemetry.residency t))
    (hist_json (Telemetry.time_to_first_link t))
    (hist_json (Telemetry.trace_length t))
    (hist_json (Telemetry.blacklist_cooldown t))

(* Pack spans onto tracks: spans are in install order, so a greedy scan
   assigning each span the first track whose previous span already ended
   yields the minimal track count for interval graphs. *)
let assign_tracks spans =
  let tails = ref [] in (* (track id, step at which the track frees up) *)
  let n_tracks = ref 0 in
  List.map
    (fun (s : Telemetry.span) ->
      let tid =
        match
          List.find_opt (fun (_, free_at) -> free_at <= s.Telemetry.installed_at) !tails
        with
        | Some (tid, _) ->
          tails :=
            List.map
              (fun (t, f) -> if t = tid then (t, s.Telemetry.retired_at) else (t, f))
              !tails;
          tid
        | None ->
          let tid = !n_tracks in
          incr n_tracks;
          tails := !tails @ [ (tid, s.Telemetry.retired_at) ];
          tid
      in
      (s, tid))
    spans

let instant_name (e : Telemetry.event) =
  match e.Telemetry.kind with
  | Telemetry.Fault -> Some ("fault:" ^ Telemetry.fault_label e.Telemetry.a)
  | Telemetry.Bailout_enter -> Some "bailout-enter"
  | Telemetry.Bailout_exit -> Some "bailout-exit"
  | Telemetry.Blacklist_add -> Some (Printf.sprintf "blacklist-add:0x%x" e.Telemetry.a)
  | Telemetry.Blacklist_expire -> Some (Printf.sprintf "blacklist-expire:0x%x" e.Telemetry.a)
  | _ -> None

let write_chrome ?(name = "regionsel") t ~path =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  Buffer.add_string b
    (Printf.sprintf
       {|  {"name": "process_name", "ph": "M", "pid": 0, "tid": 0, "args": {"name": "%s"}}|}
       (json_escape name));
  List.iter
    (fun ((s : Telemetry.span), tid) ->
      Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           {|  {"name": "region %d (%d blocks)", "cat": "region", "ph": "X", "ts": %d, "dur": %d, "pid": 0, "tid": %d, "args": {"region": %d, "n_nodes": %d, "cause": "%s"}}|}
           s.Telemetry.id s.Telemetry.n_nodes s.Telemetry.installed_at
           (s.Telemetry.retired_at - s.Telemetry.installed_at)
           (tid + 1) s.Telemetry.id s.Telemetry.n_nodes
           (Telemetry.cause_label s.Telemetry.cause)))
    (assign_tracks (Telemetry.spans t));
  List.iter
    (fun (e : Telemetry.event) ->
      match instant_name e with
      | None -> ()
      | Some n ->
        Buffer.add_string b ",\n";
        Buffer.add_string b
          (Printf.sprintf
             {|  {"name": "%s", "cat": "event", "ph": "i", "ts": %d, "pid": 0, "tid": 0, "s": "g"}|}
             (json_escape n) e.Telemetry.step))
    (Telemetry.events t);
  Buffer.add_string b "\n]}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc

let event_json (e : Telemetry.event) =
  let payload =
    match e.Telemetry.kind with
    | Telemetry.Install ->
      Printf.sprintf {|"region": %d, "n_nodes": %d|} e.Telemetry.a e.Telemetry.b
    | Telemetry.Evict ->
      Printf.sprintf {|"region": %d, "flush": %b|} e.Telemetry.a (e.Telemetry.b = 1)
    | Telemetry.Invalidate | Telemetry.Dispatch ->
      Printf.sprintf {|"region": %d|} e.Telemetry.a
    | Telemetry.Link_patch | Telemetry.Link_sever ->
      Printf.sprintf {|"from": %d, "target": %d|} e.Telemetry.a e.Telemetry.b
    | Telemetry.Bailout_enter -> Printf.sprintf {|"until": %d|} e.Telemetry.a
    | Telemetry.Bailout_exit -> {|"until": null|}
    | Telemetry.Fault ->
      Printf.sprintf {|"fault": "%s"|} (Telemetry.fault_label e.Telemetry.a)
    | Telemetry.Blacklist_add ->
      Printf.sprintf {|"entry": %d, "cooldown": %d|} e.Telemetry.a e.Telemetry.b
    | Telemetry.Blacklist_expire -> Printf.sprintf {|"entry": %d|} e.Telemetry.a
    | Telemetry.Select ->
      Printf.sprintf {|"n_blocks": %d, "n_insts": %d|} e.Telemetry.a e.Telemetry.b
  in
  Printf.sprintf {|{"step": %d, "event": "%s", %s}|} e.Telemetry.step
    (Telemetry.label e.Telemetry.kind) payload

let write_jsonl t ~path =
  let oc = open_out path in
  List.iter
    (fun e ->
      output_string oc (event_json e);
      output_char oc '\n')
    (Telemetry.events t);
  output_string oc
    (Printf.sprintf
       {|{"summary": {"spans": %d, "installs": %d, "events_emitted": %d, "events_dropped": %d, "histograms": %s}}|}
       (List.length (Telemetry.spans t))
       (Telemetry.n_installs t) (Telemetry.n_emitted t) (Telemetry.n_dropped t)
       (histograms_json t));
  output_char oc '\n';
  close_out oc
