open Regionsel_isa

type t = {
  program : Program.t;
  params : Params.t;
  cache : Code_cache.t;
  counters : Counters.t;
  gauges : Gauges.t;
}

let create ?(params = Params.default) program =
  {
    program;
    params;
    cache =
      Code_cache.create ?capacity_bytes:params.Params.cache_capacity_bytes
        ~eviction:params.Params.cache_eviction ();
    counters = Counters.create ();
    gauges = Gauges.create ();
  }
