let all =
  [
    Spec_gzip.spec;
    Spec_vpr.spec;
    Spec_gcc.spec;
    Spec_mcf.spec;
    Spec_crafty.spec;
    Spec_parser.spec;
    Spec_eon.spec;
    Spec_perlbmk.spec;
    Spec_gap.spec;
    Spec_vortex.spec;
    Spec_bzip2.spec;
    Spec_twolf.spec;
  ]

let find name = List.find_opt (fun (s : Spec.t) -> String.equal s.Spec.name name) all
let names = List.map (fun (s : Spec.t) -> s.Spec.name) all
