lib/isa/program.mli: Addr Block Format
