(** Executed control-flow edge profile of a whole run.

    Records every dynamic transfer between blocks (interpreted or cached).
    Exit domination (Section 4.1) needs it to decide whether a region
    entrance has any executed predecessor other than its dominator's exit
    block.

    Recording is batched: occurrences accumulate in a small fixed ring of
    packed [(edge_key, count)] slots and are flushed into the backing flat
    table on slot conflict, on explicit {!flush} (the simulator drains at
    region exits and watchdog windows), and automatically before any read —
    so every observer sees counts identical to an unbatched per-step
    profile. *)

open Regionsel_isa

type t

val create : unit -> t

val record : t -> src:Addr.t -> dst:Addr.t -> unit
(** Count one executed transfer.  One multiply-hash and one or two array
    stores on the hot path; no allocation ever. *)

val flush : t -> unit
(** Drain the ring into the backing table.  A no-op when the ring is
    empty; otherwise counts one flush. *)

val flushes : t -> int
(** Number of ring drains so far (conflict spills are not counted). *)

val count : t -> src:Addr.t -> dst:Addr.t -> int

val preds : t -> Addr.t -> Addr.Set.t
(** Blocks from which an executed edge reaches the given block start. *)

val n_edges : t -> int
val fold : (src:Addr.t -> dst:Addr.t -> int -> 'a -> 'a) -> t -> 'a -> 'a

val save : t -> (int -> unit) -> unit
(** Checkpoint support: serialize the backing table {e and} the
    accumulation ring verbatim (the ring is not drained, so the flush
    count — which bench reports — is unperturbed by a save). *)

val load : t -> (unit -> int) -> unit
(** Replace the profile's contents from a {!save} stream.  Raises
    [Failure] on a structurally invalid stream. *)
