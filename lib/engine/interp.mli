(** The program interpreter: replays a workload image block by block.

    This is the substitute for the Pin-reported dynamic basic-block stream
    of the paper's framework (Section 2.3).  Branch outcomes come from the
    image's behaviour specs, instantiated with a private PRNG stream per
    branch site so runs are deterministic per seed.  Calls and returns use a
    real shadow stack, so return addresses — and hence interprocedural
    cycles — behave exactly as in native execution.

    Dispatch is threaded-code by default: {!create} precompiles every
    block's terminator into a closure indexed by the block's dense id, so a
    step is an array load and one call — no terminator [match], no
    per-step target validation for statically-checked transfers (the
    program constructor already proved them).  [create ~threaded:false]
    keeps the legacy match-based dispatch as a differential reference; the
    two modes are bit-identical (same PRNG streams, same step sequence),
    which the parity suite and the fuzz oracle verify.

    The stepping API is built for the simulator's hot loop: {!step_into}
    fills a caller-owned mutable {!step} record and performs no allocation.
    The record holds only immediates (the executed block's dense id, the
    taken flag, the next address); use {!block} — or
    [Program.block_of_id] directly — to recover the [Block.t]. *)

open Regionsel_isa

type t

val create : ?threaded:bool -> Regionsel_workload.Image.t -> seed:int64 -> t
(** [threaded] (default [true]) selects threaded-code dispatch; [false]
    selects the legacy match-based path.  Both produce identical steps. *)

type step = {
  mutable block_id : int;  (** Dense id of the block just executed. *)
  mutable taken : bool;  (** Whether its terminator transferred control away. *)
  mutable next : Addr.t;  (** The next block start; [Addr.none] after a halt. *)
}

val make_step : unit -> step
(** A scratch step record to pass to {!step_into}. *)

val step_into : t -> step -> bool
(** Execute one block, writing the outcome into the given record.  [false]
    once the program has halted (explicit [Halt] or return with an empty
    stack), in which case the record is untouched.  Allocation-free. *)

val block : t -> step -> Block.t
(** The block a filled step record refers to. *)

val threaded : t -> bool

val save_warm : t -> (int -> unit) -> unit
(** Serialize the warm state — pc, shadow-stack prefix, root PRNG limbs,
    and every branch-behaviour state created so far — as an int stream.
    The threaded-op table is not saved; it is a pure function of the
    image. *)

val load_warm : t -> (unit -> int) -> unit
(** Restore a {!save_warm} stream into a freshly created interpreter over
    the same image.  Every PRNG position (root and per-site) ends up
    exactly as saved, so the restored interpreter reproduces the original
    run's remaining step stream bit for bit.  Raises [Failure] on a
    structurally invalid stream. *)

val pc : t -> Addr.t option
(** The next block to execute. *)

val stack_depth : t -> int

exception Runaway_stack of int
(** Raised if the shadow stack exceeds a sanity bound (100_000 frames),
    which would indicate a malformed workload. *)
