(** The full metric record of one simulated run: everything the paper's
    evaluation plots, computed from a {!Regionsel_engine.Simulator.result}. *)

type t = {
  benchmark : string;
  policy : string;
  steps : int;
  halted : bool;
  total_insts : int;
  hit_rate : float;
  n_regions : int;
  code_expansion : int;  (** Instructions copied into the cache. *)
  n_stubs : int;
  avg_region_insts : float;
  spanned_cycle_ratio : float;
      (** Share of selected regions containing a branch to their own top. *)
  executed_cycle_ratio : float;
      (** Share of region executions that end by branching to the top. *)
  region_transitions : int;
  dispatches : int;
  cover_90 : int;
  cover_90_achievable : bool;
  counters_high_water : int;
  observed_bytes_high_water : int;  (** Figure 18 numerator. *)
  est_cache_bytes : int;
      (** Figure 18 denominator: instruction bytes + stub bytes. *)
  exit_dominated_regions : int;
  exit_dominated_fraction : float;  (** Figure 12. *)
  exit_dominated_dup_insts : int;
  exit_dominated_dup_fraction : float;  (** Figure 11. *)
  links : int;  (** Distinct inter-region links created (footnote 9). *)
  link_hits : int;
      (** Transitions taken through a patched link slot instead of the
          dispatch array (0 in legacy execution mode). *)
  link_severs : int;
      (** Links unpatched because their target region was retired or their
          slot was reclaimed (0 in legacy mode: no links are patched). *)
  links_high_water : int;
      (** Peak number of simultaneously live patched links (0 in legacy
          mode). *)
  node_steps : int;
      (** Cached steps executed through the compiled automaton (0 in
          legacy mode). *)
  icache_accesses : int;
  icache_misses : int;
  icache_miss_rate : float;
      (** Miss rate of the modelled I-cache over code-cache fetches: the
          direct locality instrument (lower = better layout). *)
  evictions : int;  (** Bounded-cache ablation: regions retired. *)
  cache_flushes : int;
  regenerations : int;  (** Re-selections of previously evicted entries. *)
  invalidations : int;
      (** Fault runs: regions retired because an SMC write dirtied their
          span. *)
  blacklist_hits : int;  (** Installs rejected by a blacklist cooldown. *)
  install_rejects : int;
      (** All install attempts that did not result in a live region. *)
  faults_injected : int;  (** Fault events delivered (0 on clean runs). *)
  async_exits : int;  (** Spurious exits that left region mode. *)
  bailouts : int;  (** Watchdog flush-and-interpret bailouts. *)
  recovery_steps : int;  (** Steps spent in bailout cooldowns. *)
  blacklisted_high_water : int;
      (** Peak number of simultaneously blacklisted entries. *)
  telemetry : (int * int * int * int) option;
      (** [(events_emitted, events_dropped, spans_open, spans_closed)]
          from the run's telemetry sink — ring-loss and span-ledger
          visibility without exporting a trace.  [None] for sink-less
          runs, whose JSON stays byte-identical to earlier versions;
          {!pp} never prints it, so the human report is identical with
          and without a tracer. *)
}

val inst_bytes : int
(** Bytes per instruction in the cache-size estimate (an alias of
    {!Regionsel_engine.Region.inst_bytes}). *)

val stub_bytes : int
(** Bytes per exit stub in the cache-size estimate (an alias of
    {!Regionsel_engine.Region.stub_bytes}). *)

val of_result : ?x:float -> Regionsel_engine.Simulator.result -> t
(** [of_result result] computes all metrics; [x] is the cover-set target
    (default 0.9). *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One JSON object with every field, in declaration order, floats printed
    with [%.17g] (lossless): runs with identical metrics produce
    byte-identical output, which the CI checkpoint round-trip gate diffs
    directly. *)
