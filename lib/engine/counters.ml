type t = {
  table : int Int_tbl.t;
  mutable high_water : int;
  mutable total_allocations : int;
}

let create () = { table = Int_tbl.create 256; high_water = 0; total_allocations = 0 }

let incr t a =
  match Int_tbl.find t.table a with
  | c ->
    let c = c + 1 in
    Int_tbl.replace t.table a c;
    c
  | exception Not_found ->
    Int_tbl.replace t.table a 1;
    t.total_allocations <- t.total_allocations + 1;
    let live = Int_tbl.length t.table in
    if live > t.high_water then t.high_water <- live;
    1

let peek t a = match Int_tbl.find t.table a with c -> c | exception Not_found -> 0
let release t a = Int_tbl.remove t.table a
let live t = Int_tbl.length t.table
let high_water t = t.high_water
let total_allocations t = t.total_allocations

let live_entries t = Int_tbl.fold (fun a c acc -> (a, c) :: acc) t.table []

(* A simulated optimizer crash loses every live counter but not the pool's
   lifetime statistics: the high-water mark and allocation count are run
   metrics, not recoverable state. *)
let reset t = Int_tbl.reset t.table

(* Checkpoint support.  Int_tbl iteration order is never observable (see
   int_tbl.ml), so content equality is all restore has to preserve; the
   key-sorted emission keeps the bytes canonical regardless of layout. *)

let save t emit =
  emit (Int_tbl.length t.table);
  List.iter
    (fun (a, c) ->
      emit a;
      emit c)
    (Int_tbl.sorted_pairs t.table);
  emit t.high_water;
  emit t.total_allocations

let load t read =
  Int_tbl.reset t.table;
  let n = read () in
  if n < 0 then failwith "Counters.load: negative table length";
  for _ = 1 to n do
    let a = read () in
    let c = read () in
    Int_tbl.replace t.table a c
  done;
  t.high_water <- read ();
  t.total_allocations <- read ()
