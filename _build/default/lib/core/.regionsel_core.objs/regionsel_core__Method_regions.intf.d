lib/core/method_regions.mli: Regionsel_engine
