open Regionsel_isa
module Telemetry = Regionsel_telemetry.Telemetry

type t = {
  program : Program.t;
  params : Params.t;
  cache : Code_cache.t;
  counters : Counters.t;
  gauges : Gauges.t;
  telemetry : Telemetry.sink;
}

let create ?(params = Params.default) ?(telemetry = Telemetry.none) program =
  {
    program;
    params;
    cache =
      Code_cache.create ?capacity_bytes:params.Params.cache_capacity_bytes
        ~eviction:params.Params.cache_eviction
        ~blacklist_base_cooldown:params.Params.blacklist_base_cooldown
        ~blacklist_max_shift:params.Params.blacklist_max_shift ~telemetry ~program ();
    counters = Counters.create ();
    gauges = Gauges.create ();
    telemetry;
  }
