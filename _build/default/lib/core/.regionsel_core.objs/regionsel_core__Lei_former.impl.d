lib/core/lei_former.ml: Addr Block History_buffer List Program Regionsel_engine Regionsel_isa Terminator
