open Regionsel_isa
module Region = Regionsel_engine.Region
module Context = Regionsel_engine.Context
module Code_cache = Regionsel_engine.Code_cache
module Params = Regionsel_engine.Params

(* The history buffer only records interpreted taken branches, so a slice
   of it is execution-contiguous except where control passed through the
   code cache.  Every such gap is immediately followed by a cache-exit
   entry ([follows_exit]): control re-enters the interpreter only through
   an exit.  FORM-TRACE therefore walks the slice normally between plain
   entries and, on reaching a gap, finishes with a best-effort fall-through
   tail from the last known point — stopping at blocks that begin cached
   regions (the paper's "next instruction begins a trace") and at
   unconditional transfers, whose taken target in a gap segment can only
   have been a cache dispatch. *)

type acc = {
  mutable rev_blocks : Block.t list;
  node_set : unit Addr.Table.t;
  mutable n_insts : int;
}

let form ~ctx ~buf ~start ~after_seq =
  let branches = History_buffer.entries_after buf ~seq:after_seq in
  let program = ctx.Context.program in
  let cache = ctx.Context.cache in
  let max_insts = ctx.Context.params.Params.max_trace_insts in
  let acc = { rev_blocks = []; node_set = Addr.Table.create 32; n_insts = 0 } in
  let path final_next =
    if acc.rev_blocks = [] then None
    else Some { Region.blocks = List.rev acc.rev_blocks; final_next }
  in
  let add b =
    acc.rev_blocks <- b :: acc.rev_blocks;
    Addr.Table.replace acc.node_set b.Block.start ();
    acc.n_insts <- acc.n_insts + b.Block.size
  in
  (* Extend the trace from [cur] along fall-throughs only, into a segment
     whose branch outcomes were not recorded. *)
  let rec tail_walk cur =
    if Code_cache.mem cache cur then path (Some cur)
    else
      match Program.block_at program cur with
      | None -> path None
      | Some b ->
        add b;
        if acc.n_insts >= max_insts then path (Some (Block.fall_addr b))
        else begin
          match b.Block.term with
          | Terminator.Fallthrough -> tail_walk (Block.fall_addr b)
          | Terminator.Cond tgt ->
            (* A taken conditional in a gap segment must have dispatched
               into the cache; otherwise it was not taken. *)
            if Code_cache.mem cache tgt then path (Some tgt)
            else tail_walk (Block.fall_addr b)
          | Terminator.Jump tgt | Terminator.Call tgt -> path (Some tgt)
          | Terminator.Return | Terminator.Indirect_jump | Terminator.Indirect_call
          | Terminator.Halt -> path None
        end
  in
  (* Walk the recorded fall-through blocks from [cur] up to the block
     ending at [branch.src]; [`Stopped] ends trace formation. *)
  let rec walk_fall_through cur (branch : History_buffer.entry) =
    if Code_cache.mem cache cur then `Stopped (path (Some cur))
    else
      match Program.block_at program cur with
      | None -> `Stopped (path None)
      | Some b ->
        add b;
        let next_on_path =
          if Addr.equal (Block.last b) branch.src then None else Some (Block.fall_addr b)
        in
        if acc.n_insts >= max_insts then
          `Stopped (path (match next_on_path with Some a -> Some a | None -> Some branch.tgt))
        else begin
          match next_on_path with
          | None -> `Reached_branch
          | Some a ->
            (* The slice disagrees with the program layout: stop rather
               than walk off the recorded path. *)
            if (not (Terminator.can_fall_through b.Block.term)) || a > branch.src then
              `Stopped (path (Terminator.static_target b.Block.term))
            else walk_fall_through a branch
        end
  in
  let rec over_branches prev = function
    | [] -> path (Some prev)
    | (branch : History_buffer.entry) :: rest ->
      if branch.follows_exit then
        (* Control passed through the code cache before this entry: the
           recorded outcomes end at [prev]. *)
        tail_walk prev
      else begin
        match walk_fall_through prev branch with
        | `Stopped result -> result
        | `Reached_branch ->
          if Addr.Table.mem acc.node_set branch.tgt then path (Some branch.tgt)
          else over_branches branch.tgt rest
      end
  in
  over_branches start branches
