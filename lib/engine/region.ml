open Regionsel_isa

type kind = Trace | Combined | Method

type path = { blocks : Block.t list; final_next : Addr.t option }

let path_insts path = List.fold_left (fun acc b -> acc + b.Block.size) 0 path.blocks

type spec = {
  entry : Addr.t;
  nodes : Block.t list;
  edges : (Addr.t * Addr.t) list;
  copied_insts : int;
  kind : kind;
  aux_entries : Addr.t list;
  layout_hint : Addr.t list;
}

let spec_of_path ~kind path =
  match path.blocks with
  | [] -> invalid_arg "Region.spec_of_path: empty path"
  | first :: _ ->
    let entry = first.Block.start in
    let nodes = ref [] in
    let node_set = Addr.Table.create 16 in
    List.iter
      (fun b ->
        if not (Addr.Table.mem node_set b.Block.start) then begin
          Addr.Table.replace node_set b.Block.start ();
          nodes := b :: !nodes
        end)
      path.blocks;
    let rec consecutive acc = function
      | a :: (b :: _ as rest) -> consecutive ((a.Block.start, b.Block.start) :: acc) rest
      | [ last ] ->
        (* Close the region when execution continued to a block of the path:
           the spanned-cycle case when that block is the entry. *)
        (match path.final_next with
        | Some next when Addr.Table.mem node_set next -> (last.Block.start, next) :: acc
        | Some _ | None -> acc)
      | [] -> acc
    in
    let edges = List.sort_uniq compare (consecutive [] path.blocks) in
    let nodes = List.rev !nodes in
    let layout_hint = List.map (fun (b : Block.t) -> b.Block.start) nodes in
    (* A block revisited within one path (possible for LEI's cyclic paths)
       is stored once: the region is an automaton over distinct blocks, so
       its cache footprint counts each selected block once.  Cross-region
       duplication — the paper's code-expansion signal — is unaffected. *)
    let copied_insts = List.fold_left (fun acc (b : Block.t) -> acc + b.Block.size) 0 nodes in
    { entry; nodes; edges; copied_insts; kind; aux_entries = []; layout_hint }

(* The compiled automaton: nodes are numbered 0..n-1 in cache layout order
   (the entry is always node 0), and every structure the hot loop touches
   is a flat array indexed by node id.  The address-keyed API below is
   reimplemented on top via [node_by_addr] for cold callers (metrics,
   emitter, tests). *)
type t = {
  id : int;
  entry : Addr.t;
  kind : kind;
  n_nodes : int;
  node_blocks : Block.t array;  (* node id -> block, in layout order *)
  node_offsets : int array;  (* node id -> byte offset within the region *)
  node_is_entry : bool array;  (* node id -> dispatchable entry (entry or aux) *)
  succ_bits : int array;  (* adjacency bitset: row [src * succ_stride], 32-bit words *)
  succ_stride : int;
  hot_succ_addr : int array;  (* node id -> first internal successor address, -1 if none *)
  hot_succ_node : int array;  (* node id -> that successor's node id *)
  node_by_addr : Flat_tbl.t;  (* block start address -> node id *)
  node_of_block : int array;  (* Program block_id -> node id, -1 elsewhere; [||] without program *)
  link_slots : t option array;  (* Program block_id -> linked exit target; [||] without program *)
  copied_insts : int;
  n_stubs : int;
  spans_cycle : bool;
  selected_at : int;
  mutable entries : int;
  mutable cycle_iters : int;
  mutable exits : int;
  mutable insts_executed : int;
  exit_log : Flat_tbl.t; (* key [(from lsl 32) lor tgt] -> count *)
  aux_entries : Addr.Set.t;
  mutable cache_base : int;
}

let pack_edge ~src ~dst = (src lsl 32) lor dst

let inst_bytes = 4
let stub_bytes = 10

let count_stubs ~edge_index nodes =
  let internal src dst = Flat_tbl.mem edge_index (pack_edge ~src ~dst) in
  let stub_count b =
    let s = b.Block.start in
    match b.Block.term with
    | Terminator.Cond tgt ->
      (if internal s tgt then 0 else 1) + if internal s (Block.fall_addr b) then 0 else 1
    | Terminator.Jump tgt | Terminator.Call tgt -> if internal s tgt then 0 else 1
    | Terminator.Fallthrough -> if internal s (Block.fall_addr b) then 0 else 1
    | Terminator.Return | Terminator.Indirect_jump | Terminator.Indirect_call ->
      (* Predicted targets may be internal edges, but the mispredict path
         always needs a stub. *)
      1
    | Terminator.Halt -> 0
  in
  List.fold_left (fun acc b -> acc + stub_count b) 0 nodes

let of_spec ~id ~selected_at ?program spec =
  (* Distinct nodes, first occurrence wins (LEI's cyclic paths may revisit). *)
  let seen = Flat_tbl.create (List.length spec.nodes * 2) in
  let nodes =
    List.filter
      (fun (b : Block.t) ->
        if Flat_tbl.mem seen b.Block.start then false
        else begin
          Flat_tbl.set seen b.Block.start 0;
          true
        end)
      spec.nodes
  in
  if not (Flat_tbl.mem seen spec.entry) then invalid_arg "Region.of_spec: entry is not a node";
  let edge_index = Flat_tbl.create (List.length spec.edges * 2) in
  List.iter
    (fun (src, dst) ->
      if not (Flat_tbl.mem seen src && Flat_tbl.mem seen dst) then
        invalid_arg "Region.of_spec: edge endpoint is not a node";
      Flat_tbl.set edge_index (pack_edge ~src ~dst) 1)
    spec.edges;
  List.iter
    (fun a ->
      if not (Flat_tbl.mem seen a) then invalid_arg "Region.of_spec: aux entry is not a node")
    spec.aux_entries;
  let spans_cycle = List.exists (fun (_, dst) -> Addr.equal dst spec.entry) spec.edges in
  let n_stubs = count_stubs ~edge_index nodes in
  (* Lay the blocks out contiguously: the entry first, then the layout
     hint's order, then any remaining nodes in address order.  Layout order
     IS the node numbering, so the entry is always node 0. *)
  let hint_rank = Addr.Table.create 16 in
  List.iteri
    (fun i a -> if not (Addr.Table.mem hint_rank a) then Addr.Table.replace hint_rank a i)
    spec.layout_hint;
  let sorted_nodes =
    List.sort
      (fun (a : Block.t) (b : Block.t) ->
        let rank (x : Block.t) =
          if Addr.equal x.Block.start spec.entry then (-1, 0)
          else
            match Addr.Table.find_opt hint_rank x.Block.start with
            | Some i -> (0, i)
            | None -> (1, x.Block.start)
        in
        compare (rank a) (rank b))
      nodes
  in
  let node_blocks = Array.of_list sorted_nodes in
  let n = Array.length node_blocks in
  let node_offsets = Array.make n 0 in
  let node_by_addr = Flat_tbl.create (n * 2) in
  let cursor = ref 0 in
  Array.iteri
    (fun i (b : Block.t) ->
      node_offsets.(i) <- !cursor;
      cursor := !cursor + (b.Block.size * inst_bytes);
      Flat_tbl.set node_by_addr b.Block.start i)
    node_blocks;
  let aux_entries = Addr.Set.of_list spec.aux_entries in
  let node_is_entry =
    Array.map
      (fun (b : Block.t) ->
        Addr.equal b.Block.start spec.entry || Addr.Set.mem b.Block.start aux_entries)
      node_blocks
  in
  let succ_stride = (n + 31) lsr 5 in
  let succ_bits = Array.make (max 1 (n * succ_stride)) 0 in
  let hot_succ_addr = Array.make n (-1) in
  let hot_succ_node = Array.make n (-1) in
  List.iter
    (fun (src, dst) ->
      let s = Flat_tbl.find node_by_addr src in
      let d = Flat_tbl.find node_by_addr dst in
      let w = (s * succ_stride) + (d lsr 5) in
      succ_bits.(w) <- succ_bits.(w) lor (1 lsl (d land 31));
      if hot_succ_addr.(s) < 0 then begin
        hot_succ_addr.(s) <- dst;
        hot_succ_node.(s) <- d
      end)
    spec.edges;
  let node_of_block, link_slots =
    match program with
    | None -> ([||], [||])
    | Some p ->
      let nb = max 1 (Program.n_blocks p) in
      let translate = Array.make nb (-1) in
      Array.iteri
        (fun i (b : Block.t) ->
          let bid = Program.block_id p b.Block.start in
          if bid >= 0 then translate.(bid) <- i)
        node_blocks;
      (translate, Array.make nb None)
  in
  {
    id;
    entry = spec.entry;
    kind = spec.kind;
    n_nodes = n;
    node_blocks;
    node_offsets;
    node_is_entry;
    succ_bits;
    succ_stride;
    hot_succ_addr;
    hot_succ_node;
    node_by_addr;
    node_of_block;
    link_slots;
    copied_insts = spec.copied_insts;
    n_stubs;
    spans_cycle;
    selected_at;
    entries = 0;
    cycle_iters = 0;
    exits = 0;
    insts_executed = 0;
    exit_log = Flat_tbl.create 8;
    aux_entries;
    cache_base = -1;
  }

(* A sentinel for "no region": the simulator's current-region cell is a
   plain [t ref] compared by physical equality, so staying in or leaving
   region mode never allocates an option constructor.  Never executed —
   nothing reads its (empty) fields. *)
let dummy =
  {
    id = -1;
    entry = Addr.none;
    kind = Trace;
    n_nodes = 0;
    node_blocks = [||];
    node_offsets = [||];
    node_is_entry = [||];
    succ_bits = [||];
    succ_stride = 0;
    hot_succ_addr = [||];
    hot_succ_node = [||];
    node_by_addr = Flat_tbl.create 1;
    node_of_block = [||];
    link_slots = [||];
    copied_insts = 0;
    n_stubs = 0;
    spans_cycle = false;
    selected_at = 0;
    entries = 0;
    cycle_iters = 0;
    exits = 0;
    insts_executed = 0;
    exit_log = Flat_tbl.create 1;
    aux_entries = Addr.Set.empty;
    cache_base = -1;
  }

let node_id t a = if a < 0 then -1 else Flat_tbl.find t.node_by_addr a
let node_block t i = t.node_blocks.(i)

let has_edge_nodes t ~src ~dst =
  Array.unsafe_get t.succ_bits ((src * t.succ_stride) + (dst lsr 5)) land (1 lsl (dst land 31))
  <> 0

let has_edge t ~src ~dst =
  let s = node_id t src in
  s >= 0
  &&
  let d = node_id t dst in
  d >= 0 && has_edge_nodes t ~src:s ~dst:d

let mem_block t a = node_id t a >= 0

let find_block t a =
  let i = node_id t a in
  if i < 0 then None else Some t.node_blocks.(i)

let nodes t =
  List.sort
    (fun (a : Block.t) (b : Block.t) -> Addr.compare a.Block.start b.Block.start)
    (Array.to_list t.node_blocks)

let layout_blocks t = Array.to_list t.node_blocks

let record_entry t = t.entries <- t.entries + 1
let record_cycle t = t.cycle_iters <- t.cycle_iters + 1
let record_exec t n = t.insts_executed <- t.insts_executed + n

let record_exit t ~from ~tgt =
  t.exits <- t.exits + 1;
  Flat_tbl.bump t.exit_log (pack_edge ~src:from ~dst:tgt)

let exit_src key = key lsr 32
let exit_tgt key = key land 0xFFFF_FFFF

let exit_targets t =
  Flat_tbl.fold (fun key _ acc -> Addr.Set.add (exit_tgt key) acc) t.exit_log Addr.Set.empty

let exited_to t ~tgt =
  Flat_tbl.fold
    (fun key _ acc ->
      if Addr.equal tgt (exit_tgt key) then Addr.Set.add (exit_src key) acc else acc)
    t.exit_log Addr.Set.empty

let cache_bytes t = (t.copied_insts * inst_bytes) + (t.n_stubs * stub_bytes)

let set_cache_base t base = t.cache_base <- base

let block_offset t a =
  let i = node_id t a in
  if i < 0 then -1 else Array.unsafe_get t.node_offsets i

let block_cache_addr t a =
  if t.cache_base < 0 then None
  else
    let off = block_offset t a in
    if off < 0 then None else Some (t.cache_base + off)

(* Allocation-free variant for the simulator's per-step icache model. *)
let block_cache_offset t a =
  if t.cache_base < 0 then -1
  else
    let off = block_offset t a in
    if off < 0 then -1 else t.cache_base + off

let n_link_slots t = Array.length t.link_slots

let link_target t slot =
  let ls = t.link_slots in
  if slot >= 0 && slot < Array.length ls then Array.unsafe_get ls slot else None

let set_link t ~slot target = t.link_slots.(slot) <- target

let clear_links t =
  let ls = t.link_slots in
  let cleared = ref 0 in
  for i = 0 to Array.length ls - 1 do
    match Array.unsafe_get ls i with
    | Some _ ->
      ls.(i) <- None;
      incr cleared
    | None -> ()
  done;
  !cleared

(* Checkpoint support.  A region is rebuilt through [of_spec] — the same
   constructor (and validation) installs use — so every derived structure
   (node numbering, offsets, adjacency bitset, stub count) is recomputed
   rather than trusted from the stream.  Two order-sensitive details are
   made explicit: the layout hint is the saved node order, so the rebuilt
   node numbering is identical; and each node's edges are emitted hot
   successor first, because [of_spec] takes the first listed edge per
   source as the compiled fall-through.  Link slots are not saved here —
   the code cache re-registers links after every region exists. *)

let save t emit =
  emit t.id;
  emit t.selected_at;
  emit (match t.kind with Trace -> 0 | Combined -> 1 | Method -> 2);
  emit t.n_nodes;
  Array.iter (fun (b : Block.t) -> emit b.Block.start) t.node_blocks;
  emit t.copied_insts;
  let edges = ref [] in
  let n_edges = ref 0 in
  for s = t.n_nodes - 1 downto 0 do
    let hot = t.hot_succ_node.(s) in
    let row = ref [] in
    for d = t.n_nodes - 1 downto 0 do
      if d <> hot && has_edge_nodes t ~src:s ~dst:d then row := d :: !row
    done;
    let row = if hot >= 0 then hot :: !row else !row in
    List.iter
      (fun d ->
        incr n_edges;
        edges := (s, d) :: !edges)
      (List.rev row)
  done;
  emit !n_edges;
  List.iter
    (fun (s, d) ->
      emit s;
      emit d)
    !edges;
  emit (Addr.Set.cardinal t.aux_entries);
  Addr.Set.iter emit t.aux_entries;
  emit t.entries;
  emit t.cycle_iters;
  emit t.exits;
  emit t.insts_executed;
  emit (Flat_tbl.length t.exit_log);
  List.iter
    (fun (key, count) ->
      emit key;
      emit count)
    (Flat_tbl.sorted_pairs t.exit_log);
  emit t.cache_base

let load ~program read =
  let id = read () in
  let selected_at = read () in
  let kind =
    match read () with
    | 0 -> Trace
    | 1 -> Combined
    | 2 -> Method
    | _ -> failwith "Region.load: bad kind tag"
  in
  let n = read () in
  if n < 1 then failwith "Region.load: node count out of range";
  let node_addrs = Array.init n (fun _ -> read ()) in
  let blocks =
    Array.map
      (fun a ->
        if not (Program.is_block_start program a) then
          failwith "Region.load: node is not a block start";
        Program.block_of_id program (Program.block_id program a))
      node_addrs
  in
  let copied_insts = read () in
  if copied_insts < 0 then failwith "Region.load: negative copied_insts";
  let n_edges = read () in
  if n_edges < 0 then failwith "Region.load: negative edge count";
  let edges =
    List.init n_edges (fun _ ->
        let s = read () in
        let d = read () in
        if s < 0 || s >= n || d < 0 || d >= n then failwith "Region.load: edge node out of range";
        (node_addrs.(s), node_addrs.(d)))
  in
  let n_aux = read () in
  if n_aux < 0 then failwith "Region.load: negative aux-entry count";
  let aux_entries = List.init n_aux (fun _ -> read ()) in
  let spec =
    {
      entry = node_addrs.(0);
      nodes = Array.to_list blocks;
      edges;
      copied_insts;
      kind;
      aux_entries;
      layout_hint = Array.to_list node_addrs;
    }
  in
  let t = of_spec ~id ~selected_at ~program spec in
  t.entries <- read ();
  t.cycle_iters <- read ();
  t.exits <- read ();
  t.insts_executed <- read ();
  let n_exits = read () in
  if n_exits < 0 then failwith "Region.load: negative exit-log length";
  for _ = 1 to n_exits do
    let key = read () in
    let count = read () in
    Flat_tbl.set t.exit_log key count
  done;
  t.cache_base <- read ();
  t

let pp ppf t =
  let kind =
    match t.kind with Trace -> "trace" | Combined -> "region" | Method -> "method"
  in
  Format.fprintf ppf "@[<v>%s #%d entry=%a (%d blocks, %d insts, %d stubs%s)" kind t.id Addr.pp
    t.entry t.n_nodes t.copied_insts t.n_stubs
    (if t.spans_cycle then ", cyclic" else "");
  List.iter (fun b -> Format.fprintf ppf "@,  %a" Block.pp b) (nodes t);
  Format.fprintf ppf "@]"
