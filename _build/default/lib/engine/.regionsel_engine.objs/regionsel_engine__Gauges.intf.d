lib/engine/gauges.mli:
