(** A compiled workload: a validated program image plus the behaviour specs
    of its branch sites.

    This is the unit handed to the engine: the interpreter instantiates the
    behaviour specs with a seed-derived PRNG and replays the program, playing
    the role Pin plays in the paper (reporting the dynamic sequence of basic
    blocks). *)

open Regionsel_isa

type t = {
  name : string;
  program : Program.t;
  cond_specs : Behavior.spec Addr.Table.t;
      (** Keyed by the terminator address ({!Block.last}) of each [Cond]
          block. *)
  indirect_specs : Behavior.indirect_spec Addr.Table.t;
      (** Keyed by the terminator address of each [Indirect_jump] /
          [Indirect_call] block. *)
}

val cond_spec : t -> Addr.t -> Behavior.spec
(** @raise Not_found if the address is not a known conditional site. *)

val indirect_spec : t -> Addr.t -> Behavior.indirect_spec
(** @raise Not_found if the address is not a known indirect site. *)
