open Regionsel_isa

type t = {
  program : Program.t;
  params : Params.t;
  cache : Code_cache.t;
  counters : Counters.t;
  gauges : Gauges.t;
}

let create ?(params = Params.default) program =
  {
    program;
    params;
    cache =
      Code_cache.create ?capacity_bytes:params.Params.cache_capacity_bytes
        ~eviction:params.Params.cache_eviction
        ~blacklist_base_cooldown:params.Params.blacklist_base_cooldown
        ~blacklist_max_shift:params.Params.blacklist_max_shift ~program ();
    counters = Counters.create ();
    gauges = Gauges.create ();
  }
