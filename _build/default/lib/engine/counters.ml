open Regionsel_isa

type t = {
  table : int Addr.Table.t;
  mutable high_water : int;
  mutable total_allocations : int;
}

let create () = { table = Addr.Table.create 256; high_water = 0; total_allocations = 0 }

let incr t a =
  match Addr.Table.find_opt t.table a with
  | Some c ->
    let c = c + 1 in
    Addr.Table.replace t.table a c;
    c
  | None ->
    Addr.Table.replace t.table a 1;
    t.total_allocations <- t.total_allocations + 1;
    let live = Addr.Table.length t.table in
    if live > t.high_water then t.high_water <- live;
    1

let peek t a = Option.value ~default:0 (Addr.Table.find_opt t.table a)
let release t a = Addr.Table.remove t.table a
let live t = Addr.Table.length t.table
let high_water t = t.high_water
let total_allocations t = t.total_allocations

let live_entries t = Addr.Table.fold (fun a c acc -> (a, c) :: acc) t.table []
