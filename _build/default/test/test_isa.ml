open Regionsel_isa
open Fixtures

(* Addr *)

let backward () =
  check_true "lower target is backward" (Addr.is_backward ~src:100 ~tgt:50);
  check_true "equal target is backward" (Addr.is_backward ~src:100 ~tgt:100);
  check_true "higher target is forward" (not (Addr.is_backward ~src:100 ~tgt:101))

let addr_pp () =
  Alcotest.(check string) "hex rendering" "0x1f" (Addr.to_string 31);
  Alcotest.(check string) "pp matches to_string" (Addr.to_string 4096)
    (Format.asprintf "%a" Addr.pp 4096)

let addr_containers () =
  let set = Addr.Set.of_list [ 3; 1; 2; 3 ] in
  check_int "set dedups" 3 (Addr.Set.cardinal set);
  let table = Addr.Table.create 4 in
  Addr.Table.replace table 7 "seven";
  Alcotest.(check (option string)) "table lookup" (Some "seven") (Addr.Table.find_opt table 7)

(* Terminator *)

let all_terminators =
  [
    Terminator.Fallthrough;
    Terminator.Jump 10;
    Terminator.Cond 10;
    Terminator.Call 10;
    Terminator.Indirect_jump;
    Terminator.Indirect_call;
    Terminator.Return;
    Terminator.Halt;
  ]

let terminator_equal () =
  List.iter (fun t -> check_true "reflexive" (Terminator.equal t t)) all_terminators;
  check_true "different targets differ" (not (Terminator.equal (Terminator.Jump 1) (Terminator.Jump 2)));
  check_true "different kinds differ"
    (not (Terminator.equal (Terminator.Jump 1) (Terminator.Cond 1)))

let terminator_static_target () =
  Alcotest.(check (option int)) "jump" (Some 10) (Terminator.static_target (Terminator.Jump 10));
  Alcotest.(check (option int)) "cond" (Some 10) (Terminator.static_target (Terminator.Cond 10));
  Alcotest.(check (option int)) "call" (Some 10) (Terminator.static_target (Terminator.Call 10));
  List.iter
    (fun t -> Alcotest.(check (option int)) "no static target" None (Terminator.static_target t))
    [ Terminator.Fallthrough; Terminator.Indirect_jump; Terminator.Return; Terminator.Halt ]

let terminator_predicates () =
  check_true "fallthrough is not a branch" (not (Terminator.is_branch Terminator.Fallthrough));
  check_true "halt is not a branch" (not (Terminator.is_branch Terminator.Halt));
  List.iter
    (fun t -> check_true "branch kinds" (Terminator.is_branch t))
    [
      Terminator.Jump 1; Terminator.Cond 1; Terminator.Call 1; Terminator.Indirect_jump;
      Terminator.Indirect_call; Terminator.Return;
    ];
  List.iter
    (fun t -> check_true "indirect kinds" (Terminator.is_indirect t))
    [ Terminator.Indirect_jump; Terminator.Indirect_call; Terminator.Return ];
  check_true "cond can fall through" (Terminator.can_fall_through (Terminator.Cond 1));
  check_true "jump cannot fall through" (not (Terminator.can_fall_through (Terminator.Jump 1)))

(* Block *)

let block_geometry () =
  let b = Block.make ~start:100 ~size:5 ~term:(Terminator.Cond 50) in
  check_int "last is start + size - 1" 104 (Block.last b);
  check_int "fall address is one past" 105 (Block.fall_addr b)

let block_size_validation () =
  Alcotest.check_raises "size 0 rejected" (Invalid_argument "Block.make: size must be >= 1")
    (fun () -> ignore (Block.make ~start:0 ~size:0 ~term:Terminator.Halt))

let block_equal () =
  let b = Block.make ~start:1 ~size:2 ~term:Terminator.Return in
  check_true "equal to itself" (Block.equal b b);
  check_true "size matters"
    (not (Block.equal b (Block.make ~start:1 ~size:3 ~term:Terminator.Return)))

(* Program *)

let mk start size term = Block.make ~start ~size ~term

let valid_program () =
  let blocks =
    [
      mk 0 2 Terminator.Fallthrough;
      mk 2 3 (Terminator.Cond 0);
      mk 5 1 Terminator.Halt;
    ]
  in
  let p = Program.of_blocks_exn ~entry:0 blocks in
  check_int "three blocks" 3 (Program.n_blocks p);
  check_int "six instructions" 6 (Program.n_insts p);
  check_true "block at start found" (Program.block_at p 2 <> None);
  check_true "mid-block address is not a start" (Program.block_at p 3 = None);
  check_int "entry preserved" 0 (Program.entry p)

let expect_error blocks ~entry fragment =
  match Program.of_blocks ~entry blocks with
  | Ok _ -> Alcotest.failf "expected validation error mentioning %S" fragment
  | Error msg ->
    check_true (Printf.sprintf "error %S mentions %S" msg fragment)
      (contains ~sub:fragment msg)

let overlap_rejected () =
  expect_error ~entry:0 [ mk 0 4 Terminator.Halt; mk 2 2 Terminator.Halt ] "overlap"

let bad_target_rejected () =
  expect_error ~entry:0 [ mk 0 2 (Terminator.Jump 99); mk 2 1 Terminator.Halt ] "not a block start"

let bad_fallthrough_rejected () =
  expect_error ~entry:0 [ mk 0 2 Terminator.Fallthrough ] "falls through"

let bad_entry_rejected () =
  expect_error ~entry:1 [ mk 0 2 Terminator.Halt ] "entry"

let empty_rejected () = expect_error ~entry:0 [] "no blocks"

let call_needs_return_point () =
  (* A call block at the end of the program has no valid return point. *)
  expect_error ~entry:0 [ mk 0 1 Terminator.Halt; mk 1 2 (Terminator.Call 0) ] "falls through"

let duplicate_start_rejected () =
  expect_error ~entry:0 [ mk 0 1 Terminator.Halt; mk 0 1 Terminator.Halt ] "share a start address"

let gaps_allowed () =
  let p =
    Program.of_blocks_exn ~entry:0 [ mk 0 1 (Terminator.Jump 10); mk 10 1 Terminator.Halt ]
  in
  check_int "gap between blocks is fine" 2 (Program.n_blocks p)

let qcheck_straight_line =
  (* Any chain of fall-through blocks capped with Halt validates, and its
     instruction count is the sum of sizes. *)
  QCheck.Test.make ~name:"straight-line programs validate" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 8))
    (fun sizes ->
      let blocks = ref [] in
      let cursor = ref 0 in
      List.iter
        (fun size ->
          blocks := mk !cursor size Terminator.Fallthrough :: !blocks;
          cursor := !cursor + size)
        sizes;
      let blocks = List.rev (mk !cursor 1 Terminator.Halt :: !blocks) in
      match Program.of_blocks ~entry:0 blocks with
      | Ok p -> Program.n_insts p = List.fold_left ( + ) 1 sizes
      | Error _ -> false)

let suite =
  [
    case "addr backward" backward;
    case "addr pp" addr_pp;
    case "addr containers" addr_containers;
    case "terminator equal" terminator_equal;
    case "terminator static target" terminator_static_target;
    case "terminator predicates" terminator_predicates;
    case "block geometry" block_geometry;
    case "block size validation" block_size_validation;
    case "block equal" block_equal;
    case "valid program" valid_program;
    case "overlap rejected" overlap_rejected;
    case "bad target rejected" bad_target_rejected;
    case "bad fallthrough rejected" bad_fallthrough_rejected;
    case "bad entry rejected" bad_entry_rejected;
    case "empty rejected" empty_rejected;
    case "call needs return point" call_needs_return_point;
    case "duplicate start rejected" duplicate_start_rejected;
    case "gaps allowed" gaps_allowed;
    QCheck_alcotest.to_alcotest qcheck_straight_line;
  ]
