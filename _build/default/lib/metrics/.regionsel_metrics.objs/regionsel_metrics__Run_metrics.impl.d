lib/metrics/run_metrics.ml: Cover Exit_domination Format List Regionsel_engine Regionsel_workload
