open Regionsel_isa

type t = {
  by_entry : Region.t Addr.Table.t;
  by_aux_entry : Region.t Addr.Table.t;
  mutable live_order : Region.t list; (* newest first *)
  mutable retired : Region.t list; (* newest first *)
  mutable next_id : int;
  mutable bytes_used : int;
  mutable alloc_cursor : int;
      (* Bump allocator for region placement; holes left by eviction are not
         reused, as in cache managers that only reclaim on flush. *)
  capacity_bytes : int option;
  eviction : Params.eviction;
  evicted_entries : unit Addr.Table.t;
  mutable evictions : int;
  mutable flushes : int;
  mutable regenerations : int;
}

let create ?capacity_bytes ?(eviction = Params.Flush_all) () =
  {
    by_entry = Addr.Table.create 256;
    by_aux_entry = Addr.Table.create 64;
    live_order = [];
    retired = [];
    next_id = 0;
    bytes_used = 0;
    alloc_cursor = 0;
    capacity_bytes;
    eviction;
    evicted_entries = Addr.Table.create 64;
    evictions = 0;
    flushes = 0;
    regenerations = 0;
  }

let find t a =
  match Addr.Table.find_opt t.by_entry a with
  | Some _ as hit -> hit
  | None -> Addr.Table.find_opt t.by_aux_entry a

let mem t a = Addr.Table.mem t.by_entry a || Addr.Table.mem t.by_aux_entry a

let retire t (region : Region.t) =
  Addr.Table.remove t.by_entry region.Region.entry;
  Addr.Set.iter
    (fun a ->
      match Addr.Table.find_opt t.by_aux_entry a with
      | Some r when r == region -> Addr.Table.remove t.by_aux_entry a
      | Some _ | None -> ())
    region.Region.aux_entries;
  Addr.Table.replace t.evicted_entries region.Region.entry ();
  t.retired <- region :: t.retired;
  t.bytes_used <- t.bytes_used - Region.cache_bytes region;
  t.evictions <- t.evictions + 1

let flush_all t =
  List.iter (retire t) t.live_order;
  t.live_order <- [];
  t.flushes <- t.flushes + 1

let evict_oldest t =
  match List.rev t.live_order with
  | [] -> ()
  | oldest :: _ ->
    retire t oldest;
    t.live_order <- List.filter (fun r -> not (r == oldest)) t.live_order

let rec make_room t needed =
  match t.capacity_bytes with
  | None -> ()
  | Some capacity ->
    if t.bytes_used + needed > capacity && t.live_order <> [] then begin
      (match t.eviction with Params.Flush_all -> flush_all t | Params.Evict_oldest -> evict_oldest t);
      make_room t needed
    end

let install t (spec : Region.spec) =
  if mem t spec.Region.entry then
    invalid_arg
      (Printf.sprintf "Code_cache.install: entry %s already cached"
         (Addr.to_string spec.Region.entry));
  let region = Region.of_spec ~id:t.next_id ~selected_at:t.next_id spec in
  make_room t (Region.cache_bytes region);
  t.next_id <- t.next_id + 1;
  if Addr.Table.mem t.evicted_entries spec.Region.entry then
    t.regenerations <- t.regenerations + 1;
  Addr.Table.replace t.by_entry spec.Region.entry region;
  Addr.Set.iter
    (fun a -> Addr.Table.replace t.by_aux_entry a region)
    region.Region.aux_entries;
  t.live_order <- region :: t.live_order;
  t.bytes_used <- t.bytes_used + Region.cache_bytes region;
  Region.set_cache_base region t.alloc_cursor;
  t.alloc_cursor <- t.alloc_cursor + Region.cache_bytes region;
  region

let by_selection rs =
  List.sort (fun (a : Region.t) b -> compare a.Region.selected_at b.Region.selected_at) rs

let regions t = List.rev t.live_order
let all_regions t = by_selection (t.retired @ t.live_order)
let n_regions t = Addr.Table.length t.by_entry
let bytes_used t = t.bytes_used
let evictions t = t.evictions
let flushes t = t.flushes
let regenerations t = t.regenerations
