lib/workload/image.ml: Addr Behavior Program Regionsel_isa
