lib/metrics/aggregate.mli:
