lib/core/mojo.mli: Regionsel_engine
