type diamond = { bias : float; side_size : int }

let leaf b ~name ~size =
  Builder.func b name;
  Builder.block b ~size Builder.Return

let plain_loop b ~name ~trip ~body_blocks ~body_size =
  Builder.func b name;
  Builder.block b ~size:2 Builder.Fallthrough;
  let head = name ^ ".head" in
  Builder.block b ~label:head ~size:body_size Builder.Fallthrough;
  for _ = 2 to max 2 body_blocks do
    Builder.block b ~size:body_size Builder.Fallthrough
  done;
  Builder.block b ~size:2 (Builder.Cond (head, Behavior.Loop trip));
  Builder.block b ~size:1 Builder.Return

let loop_with_calls b ~name ~trip ~callees =
  Builder.func b name;
  Builder.block b ~size:2 Builder.Fallthrough;
  let head = name ^ ".head" in
  Builder.block b ~label:head ~size:4 Builder.Fallthrough;
  List.iter (fun callee -> Builder.block b ~size:3 (Builder.Call callee)) callees;
  Builder.block b ~size:2 (Builder.Cond (head, Behavior.Loop trip));
  Builder.block b ~size:1 Builder.Return

let nested_loop b ~name ~outer_trip ~inner_trip ~body_size =
  Builder.func b name;
  Builder.block b ~size:2 Builder.Fallthrough;
  let outer = name ^ ".outer" and inner = name ^ ".inner" in
  Builder.block b ~label:outer ~size:3 Builder.Fallthrough;
  Builder.block b ~label:inner ~size:body_size
    (Builder.Cond (inner, Behavior.Loop inner_trip));
  Builder.block b ~size:3 (Builder.Cond (outer, Behavior.Loop outer_trip));
  Builder.block b ~size:1 Builder.Return

let diamond_loop b ~name ~trip ~diamonds =
  Builder.func b name;
  Builder.block b ~size:2 Builder.Fallthrough;
  let head = name ^ ".head" in
  let n = List.length diamonds in
  List.iteri
    (fun i { bias; side_size } ->
      let taken = Printf.sprintf "%s.d%d.taken" name i in
      let join = Printf.sprintf "%s.d%d.join" name i in
      let split_label = if i = 0 then Some head else None in
      Builder.block b ?label:split_label ~size:3 (Builder.Cond (taken, Behavior.Bernoulli bias));
      (* fall-through arm *)
      Builder.block b ~size:side_size (Builder.Jump join);
      Builder.block b ~label:taken ~size:side_size Builder.Fallthrough;
      Builder.block b ~label:join ~size:2
        (if i = n - 1 then Builder.Cond (head, Behavior.Loop trip) else Builder.Fallthrough))
    diamonds;
  Builder.block b ~size:1 Builder.Return

let diamond_loop_with b ~name ~trip ~diamonds =
  Builder.func b name;
  Builder.block b ~size:2 Builder.Fallthrough;
  let head = name ^ ".head" in
  let n = List.length diamonds in
  List.iteri
    (fun i (behaviour, side_size) ->
      let taken = Printf.sprintf "%s.d%d.taken" name i in
      let join = Printf.sprintf "%s.d%d.join" name i in
      let split_label = if i = 0 then Some head else None in
      Builder.block b ?label:split_label ~size:3 (Builder.Cond (taken, behaviour));
      Builder.block b ~size:side_size (Builder.Jump join);
      Builder.block b ~label:taken ~size:side_size Builder.Fallthrough;
      Builder.block b ~label:join ~size:2
        (if i = n - 1 then Builder.Cond (head, Behavior.Loop trip) else Builder.Fallthrough))
    diamonds;
  Builder.block b ~size:1 Builder.Return

let dispatch_loop b ~name ~trip ~cases =
  Builder.func b name;
  Builder.block b ~size:2 Builder.Fallthrough;
  let head = name ^ ".head" in
  let case_label i = Printf.sprintf "%s.case%d" name i in
  let targets = List.mapi (fun i (_, w) -> case_label i, w) cases in
  let latch = name ^ ".latch" in
  Builder.block b ~label:head ~size:3 Builder.Fallthrough;
  Builder.block b ~size:2 (Builder.Indirect_jump (Builder.Weighted targets));
  List.iteri
    (fun i (size, _) -> Builder.block b ~label:(case_label i) ~size (Builder.Jump latch))
    cases;
  Builder.block b ~label:latch ~size:2 (Builder.Cond (head, Behavior.Loop trip));
  Builder.block b ~size:1 Builder.Return

let long_cycle_loop b ~name ~trip ~segments ~hops_per_segment =
  (* A pointer-chasing walk of [segments * hops_per_segment] taken jumps per
     iteration.  Segments are laid out in {e descending} address order (the
     first-executed segment last), so every segment entry is the target of a
     backward jump: NET profiles all segment entries in parallel and covers
     the walk with one trace per segment, while a cycle longer than the
     history buffer never completes inside it, so LEI selects nothing. *)
  Builder.func b name;
  Builder.block b ~size:2 Builder.Fallthrough;
  let head = name ^ ".head" in
  let seg i = Printf.sprintf "%s.seg%d" name i in
  let hop i j = Printf.sprintf "%s.hop%d_%d" name i j in
  Builder.block b ~label:head ~size:3 (Builder.Jump (seg 0));
  Builder.block b ~label:(name ^ ".latch") ~size:2 (Builder.Cond (head, Behavior.Loop trip));
  Builder.block b ~size:1 Builder.Return;
  (* Segments as separate functions, declared in reverse execution order. *)
  for i = segments - 1 downto 0 do
    Builder.func b (seg i);
    Builder.block b ~size:2 (Builder.Jump (hop i 0));
    for j = 0 to hops_per_segment - 1 do
      let next =
        if j < hops_per_segment - 1 then hop i (j + 1)
        else if i < segments - 1 then seg (i + 1)
        else name ^ ".latch"
      in
      Builder.block b ~label:(hop i j) ~size:1 (Builder.Jump next)
    done
  done

type element =
  | Straight of int
  | Diamond of diamond
  | Call_to of string
  | Continue of float

let composite_loop b ~name ~trip ~body =
  Builder.func b name;
  Builder.block b ~size:2 Builder.Fallthrough;
  let head = name ^ ".head" in
  let fresh =
    let n = ref 0 in
    fun tag ->
      incr n;
      Printf.sprintf "%s.%s%d" name tag !n
  in
  List.iteri
    (fun i element ->
      let label = if i = 0 then Some head else None in
      match element with
      | Straight size -> Builder.block b ?label ~size Builder.Fallthrough
      | Call_to callee ->
        (* Put the call in its own block so the head label stays on a
           plain block even when a call opens the body. *)
        (match label with Some _ -> Builder.block b ?label ~size:2 Builder.Fallthrough | None -> ());
        Builder.block b ~size:3 (Builder.Call callee)
      | Continue prob ->
        (match label with Some _ -> Builder.block b ?label ~size:2 Builder.Fallthrough | None -> ());
        Builder.block b ~size:2 (Builder.Cond (head, Behavior.Bernoulli prob))
      | Diamond { bias; side_size } ->
        let taken = fresh "arm" and join = fresh "join" in
        Builder.block b ?label ~size:3 (Builder.Cond (taken, Behavior.Bernoulli bias));
        Builder.block b ~size:side_size (Builder.Jump join);
        Builder.block b ~label:taken ~size:side_size Builder.Fallthrough;
        Builder.block b ~label:join ~size:2 Builder.Fallthrough)
    body;
  Builder.block b ~size:2 (Builder.Cond (head, Behavior.Loop trip));
  Builder.block b ~size:1 Builder.Return

let recursive_fn b ~name ~depth ~body_size =
  Builder.func b name;
  Builder.block b ~size:2
    (Builder.Cond (name ^ ".base", Behavior.Pattern
                     (Array.init depth (fun i -> i = depth - 1))));
  Builder.block b ~size:body_size (Builder.Call name);
  Builder.block b ~size:2 Builder.Fallthrough;
  Builder.block b ~label:(name ^ ".base") ~size:body_size Builder.Return

let spaced_loop b ~name ~body_size =
  (* A loop whose backward branch is taken exactly once per call.  Called
     less often than once per 500 taken branches, its header recurs in the
     history buffer only after eviction: NET allocates a counter for it on
     every call, LEI never does (Figure 10's counter-memory gap). *)
  Builder.func b name;
  Builder.block b ~size:2 Builder.Fallthrough;
  let head = name ^ ".head" in
  Builder.block b ~label:head ~size:body_size
    (Builder.Cond (head, Behavior.Pattern [| true; false |]));
  Builder.block b ~size:1 Builder.Return

let cold_farm b ~name ~n ~body_size =
  let member i = Printf.sprintf "%s.fn%d" name i in
  let members = List.init n member in
  List.iter (fun m -> spaced_loop b ~name:m ~body_size) members;
  Builder.func b name;
  Builder.block b ~size:2
    (Builder.Indirect_call (Builder.Round_robin members));
  Builder.block b ~size:1 Builder.Return



let call_farm b ~name ~callees ~n_callers ~trip =
  List.init n_callers (fun i ->
      let caller = Printf.sprintf "%s.caller%d" name i in
      loop_with_calls b ~name:caller ~trip ~callees;
      caller)

let driver b ~name ?(weights = []) funcs =
  Builder.func b name;
  Builder.block b ~size:2 Builder.Fallthrough;
  let head = name ^ ".head" in
  let skip_label f = name ^ ".skip." ^ f in
  let alt_label f = name ^ ".alt." ^ f in
  let join_label f = name ^ ".join." ^ f in
  List.iteri
    (fun i f ->
      let label = if i = 0 then Some head else None in
      match List.assoc_opt f weights with
      | None ->
        (* Call from one of two sites, as real programs reach a function
           from several places; a single-site entrance would make every
           callee trace look exit-dominated. *)
        Builder.block b ?label ~size:2
          (Builder.Cond (alt_label f, Behavior.Bernoulli 0.5));
        Builder.block b ~size:2 (Builder.Call f);
        Builder.block b ~size:1 (Builder.Jump (join_label f));
        Builder.block b ~label:(alt_label f) ~size:2 (Builder.Call f);
        Builder.block b ~label:(join_label f) ~size:1 Builder.Fallthrough
      | Some p ->
        (* Branch around the call with probability 1 - p. *)
        Builder.block b ?label ~size:2
          (Builder.Cond (skip_label f, Behavior.Bernoulli (1.0 -. p)));
        Builder.block b ~size:2 (Builder.Call f);
        Builder.block b ~label:(skip_label f) ~size:1 Builder.Fallthrough)
    funcs;
  Builder.block b ~size:2 (Builder.Cond (head, Behavior.Always_taken));
  Builder.block b ~size:1 Builder.Halt
