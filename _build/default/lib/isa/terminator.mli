(** Block terminators: the control-transfer instruction ending a basic block.

    Every basic block ends with exactly one terminator; all earlier
    instructions in the block are straight-line.  The terminator taxonomy is
    the minimum needed by the paper's algorithms: NET and LEI only care about
    (a) whether a transfer was taken, (b) its source and target addresses,
    and (c) — for the compact trace encoding of Figure 14 — whether the
    target is knowable from the instruction alone (direct) or not
    (indirect / return). *)

type t =
  | Fallthrough  (** No branch: control continues at the next address. *)
  | Jump of Addr.t  (** Unconditional direct jump. *)
  | Cond of Addr.t
      (** Conditional direct branch; taken goes to the target, not-taken
          falls through. *)
  | Call of Addr.t
      (** Direct call; pushes the fall-through address as the return
          address. *)
  | Indirect_jump  (** Jump through a register; target chosen at run time. *)
  | Indirect_call  (** Call through a register. *)
  | Return  (** Pops the most recent return address. *)
  | Halt  (** End of program. *)

val equal : t -> t -> bool

val static_target : t -> Addr.t option
(** The taken-direction target when it is encoded in the instruction. *)

val is_branch : t -> bool
(** [is_branch t] is [false] only for [Fallthrough] and [Halt]: whether this
    instruction participates in the Figure 14 compact encoding. *)

val is_indirect : t -> bool
(** Whether the taken target is unknown from the instruction ([Indirect_jump],
    [Indirect_call] or [Return]). *)

val can_fall_through : t -> bool
(** Whether the not-taken direction exists ([Fallthrough] and [Cond]). *)

val pp : Format.formatter -> t -> unit
