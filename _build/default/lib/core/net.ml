module Params = Regionsel_engine.Params

include Net_like.Make (struct
  let name = "net"
  let backward_threshold (p : Params.t) = p.Params.net_threshold
  let exit_threshold (p : Params.t) = p.Params.net_threshold
end)
