(* Retry-safe fd I/O shared by every persisted artifact and the daemon's
   socket code.

   [Unix.write] can return short, and under live signal handling (the
   daemon traps SIGTERM for shutdown snapshots) it can also fail with
   EINTR mid-artifact; on a non-blocking fd (the daemon's sockets) it
   fails with EAGAIN when the peer stops draining.  A bare retry loop
   that only handles the short-write case aborts a snapshot save on the
   first signal — the bug this module factors out of [Persist.save_file]
   and [Event_log.write_file]. *)

let rec wait_readable fd =
  match Unix.select [ fd ] [] [] (-1.0) with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable fd

let rec wait_writable fd =
  match Unix.select [] [ fd ] [] (-1.0) with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_writable fd

let write_all fd bytes ~pos ~len =
  let rec go pos len =
    if len > 0 then
      match Unix.write fd bytes pos len with
      | n -> go (pos + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        wait_writable fd;
        go pos len
  in
  go pos len

let rec read fd bytes ~pos ~len =
  match Unix.read fd bytes pos len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read fd bytes ~pos ~len
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    wait_readable fd;
    read fd bytes ~pos ~len

let really_read fd bytes ~pos ~len =
  let rec go pos len = len = 0 || (match read fd bytes ~pos ~len with
    | 0 -> false
    | n -> go (pos + n) (len - n))
  in
  go pos len

let write_atomic ?crash_after_bytes ~path data =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  match crash_after_bytes with
  | Some n ->
    (* Simulated crash mid-write: a prefix of the temporary is on disk,
       nothing was fsynced, and the rename never happens — the previous
       artifact at [path], if any, is untouched. *)
    write_all fd data ~pos:0 ~len:(min (max n 0) (Bytes.length data));
    Unix.close fd
  | None ->
    (try
       write_all fd data ~pos:0 ~len:(Bytes.length data);
       Unix.fsync fd
     with e ->
       Unix.close fd;
       raise e);
    Unix.close fd;
    Unix.rename tmp path
