(** The program interpreter: replays a workload image block by block.

    This is the substitute for the Pin-reported dynamic basic-block stream
    of the paper's framework (Section 2.3).  Branch outcomes come from the
    image's behaviour specs, instantiated with a private PRNG stream per
    branch site so runs are deterministic per seed.  Calls and returns use a
    real shadow stack, so return addresses — and hence interprocedural
    cycles — behave exactly as in native execution.

    The stepping API is built for the simulator's hot loop: {!step_into}
    fills a caller-owned mutable {!step} record and performs no allocation —
    block lookup is a dense-id array read, branch state is an array read,
    and the shadow stack is an int array.  {!step} is the boxed convenience
    wrapper for cold callers that want to retain steps. *)

open Regionsel_isa

type t

val create : Regionsel_workload.Image.t -> seed:int64 -> t

type step = {
  mutable block : Block.t;  (** The block just executed. *)
  mutable taken : bool;  (** Whether its terminator transferred control away. *)
  mutable next : Addr.t;  (** The next block start; [Addr.none] after a halt. *)
}

val make_step : unit -> step
(** A scratch step record to pass to {!step_into}. *)

val step_into : t -> step -> bool
(** Execute one block, writing the outcome into the given record.  [false]
    once the program has halted (explicit [Halt] or return with an empty
    stack), in which case the record is untouched.  Allocation-free. *)

val step : t -> step option
(** Execute one block.  [None] once the program has halted.  Each call
    returns a fresh record, safe to retain. *)

val pc : t -> Addr.t option
(** The next block to execute. *)

val stack_depth : t -> int

exception Runaway_stack of int
(** Raised if the shadow stack exceeds a sanity bound (100_000 frames),
    which would indicate a malformed workload. *)
