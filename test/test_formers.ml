(* Unit tests for the two trace-formation engines: the NET recorder
   (next-executing tail) and LEI's FORM-TRACE reconstruction. *)

open Regionsel_isa
module Net_former = Regionsel_core.Net_former
module Lei_former = Regionsel_core.Lei_former
module History_buffer = Regionsel_core.History_buffer
module Region = Regionsel_engine.Region
module Context = Regionsel_engine.Context
module Code_cache = Regionsel_engine.Code_cache
module Params = Regionsel_engine.Params
module Image = Regionsel_workload.Image
open Fixtures

let ctx_of ?params (image : Image.t) = Context.create ?params image.Image.program

let block_at (image : Image.t) a = Program.block_at_exn image.Image.program a
let starts path = List.map (fun b -> b.Block.start) path.Region.blocks

(* NET former *)

let feed ctx former image ~at ~taken ~next =
  Net_former.feed former ~ctx ~block:(block_at image at) ~taken ~next

let net_stops_at_backward_branch () =
  let image = figure2 () in
  let ctx = ctx_of image in
  (* Record from the loop head A (0x1008): A, B (0x100b), latch (0x100f)
     which branches backward to A. *)
  let f = Net_former.start ~entry:0x1008 in
  (match feed ctx f image ~at:0x1008 ~taken:false ~next:(Some 0x100b) with
  | Net_former.Continue -> ()
  | Net_former.Done _ -> Alcotest.fail "should not stop on fall-through");
  (match feed ctx f image ~at:0x100b ~taken:true ~next:(Some 0x1000) with
  | Net_former.Continue -> Alcotest.fail "backward call must stop the trace"
  | Net_former.Done path ->
    Alcotest.(check (list int)) "two blocks recorded" [ 0x1008; 0x100b ] (starts path);
    Alcotest.(check (option int)) "final transfer kept" (Some 0x1000) path.Region.final_next)

let net_stops_at_cached_entry () =
  let image = figure2 () in
  let ctx = ctx_of image in
  let cached =
    Region.spec_of_path ~kind:Region.Trace
      { Region.blocks = [ block_at image 0x1012 ]; final_next = None }
  in
  ignore (Code_cache.install ctx.Context.cache cached);
  let f = Net_former.start ~entry:0x1008 in
  (match feed ctx f image ~at:0x1008 ~taken:true ~next:(Some 0x1012) with
  | Net_former.Continue -> Alcotest.fail "taken branch to a cached entry must stop"
  | Net_former.Done path ->
    Alcotest.(check (option int)) "stops into the cached region" (Some 0x1012)
      path.Region.final_next)

let net_stops_at_own_entry () =
  let image = simple_loop () in
  let ctx = ctx_of image in
  let f = Net_former.start ~entry:0x1002 in
  match feed ctx f image ~at:0x1002 ~taken:true ~next:(Some 0x1002) with
  | Net_former.Done path ->
    check_true "cycle closed" (path.Region.final_next = Some 0x1002)
  | Net_former.Continue -> Alcotest.fail "branch to own entry must close the trace"

let net_size_limit () =
  let image = figure2 () in
  let params = { Params.default with Params.max_trace_blocks = 2 } in
  let ctx = ctx_of ~params image in
  let f = Net_former.start ~entry:0x1006 in
  (match feed ctx f image ~at:0x1006 ~taken:false ~next:(Some 0x1008) with
  | Net_former.Continue -> ()
  | Net_former.Done _ -> Alcotest.fail "one block is under the limit");
  match feed ctx f image ~at:0x1008 ~taken:false ~next:(Some 0x100b) with
  | Net_former.Done path -> check_int "limit enforced" 2 (List.length path.Region.blocks)
  | Net_former.Continue -> Alcotest.fail "block limit must stop the trace"

let net_halt_ends_trace () =
  let image = simple_loop () in
  let ctx = ctx_of image in
  let f = Net_former.start ~entry:0x1002 in
  match feed ctx f image ~at:0x1002 ~taken:false ~next:None with
  | Net_former.Done path -> check_true "no final transfer" (path.Region.final_next = None)
  | Net_former.Continue -> Alcotest.fail "halt must end the trace"

let net_wrong_first_block_rejected () =
  let image = simple_loop () in
  let ctx = ctx_of image in
  let f = Net_former.start ~entry:0x1002 in
  check_true "first block must match the entry"
    (try
       ignore (feed ctx f image ~at:0x1000 ~taken:false ~next:(Some 0x1002));
       false
     with Invalid_argument _ -> true)

(* LEI former *)

let lei_reconstructs_interprocedural_cycle () =
  let image = figure2 () in
  let ctx = ctx_of image in
  let buf = History_buffer.create ~capacity:64 in
  (* One full iteration of the cycle starting at A (0x1008).  The taken
     branches of an iteration are: the call (0x100e -> callee 0x1000), the
     return (0x1005 -> continuation 0x100f) and the back edge
     (0x1010 -> 0x1008), which closes the cycle. *)
  let old = History_buffer.insert buf ~src:0x1010 ~tgt:0x1008 ~follows_exit:false in
  ignore (History_buffer.insert buf ~src:0x100e ~tgt:0x1000 ~follows_exit:false);
  ignore (History_buffer.insert buf ~src:0x1005 ~tgt:0x100f ~follows_exit:false);
  ignore (History_buffer.insert buf ~src:0x1010 ~tgt:0x1008 ~follows_exit:false);
  match Lei_former.form ~ctx ~buf ~start:0x1008 ~after_seq:old with
  | Some path ->
    Alcotest.(check (list int)) "full interprocedural cycle reconstructed"
      [ 0x1008; 0x100b; 0x1000; 0x1004; 0x100f ]
      (starts path);
    Alcotest.(check (option int)) "closed back to the entry" (Some 0x1008)
      path.Region.final_next
  | None -> Alcotest.fail "expected a trace"

let lei_stops_at_cached_entry () =
  let image = figure2 () in
  let ctx = ctx_of image in
  let cached =
    Region.spec_of_path ~kind:Region.Trace
      { Region.blocks = [ block_at image 0x1000 ]; final_next = None }
  in
  ignore (Code_cache.install ctx.Context.cache cached);
  let buf = History_buffer.create ~capacity:64 in
  let old = History_buffer.insert buf ~src:0x1010 ~tgt:0x1008 ~follows_exit:false in
  ignore (History_buffer.insert buf ~src:0x100e ~tgt:0x1000 ~follows_exit:false);
  ignore (History_buffer.insert buf ~src:0x1010 ~tgt:0x1008 ~follows_exit:false);
  match Lei_former.form ~ctx ~buf ~start:0x1008 ~after_seq:old with
  | Some path ->
    Alcotest.(check (list int)) "stops before the cached callee" [ 0x1008; 0x100b ]
      (starts path);
    Alcotest.(check (option int)) "exits into the cached region" (Some 0x1000)
      path.Region.final_next
  | None -> Alcotest.fail "expected a trace"

let lei_gap_tail_walk () =
  let image = figure2 () in
  let ctx = ctx_of image in
  let buf = History_buffer.create ~capacity:64 in
  (* Two consecutive cache exits landing at A: the slice contains only the
     flagged closing entry, so formation falls back to the fall-through
     tail from A, stopping at the call (an unconditional transfer). *)
  let old = History_buffer.insert buf ~src:0x1020 ~tgt:0x1008 ~follows_exit:true in
  ignore (History_buffer.insert buf ~src:0x1020 ~tgt:0x1008 ~follows_exit:true);
  match Lei_former.form ~ctx ~buf ~start:0x1008 ~after_seq:old with
  | Some path ->
    Alcotest.(check (list int)) "tail walk across fall-throughs" [ 0x1008; 0x100b ]
      (starts path);
    Alcotest.(check (option int)) "ends at the call target" (Some 0x1000)
      path.Region.final_next
  | None -> Alcotest.fail "expected a tail trace"

let lei_start_cached_yields_nothing () =
  let image = figure2 () in
  let ctx = ctx_of image in
  let cached =
    Region.spec_of_path ~kind:Region.Trace
      { Region.blocks = [ block_at image 0x1008 ]; final_next = None }
  in
  ignore (Code_cache.install ctx.Context.cache cached);
  let buf = History_buffer.create ~capacity:64 in
  let old = History_buffer.insert buf ~src:0x1010 ~tgt:0x1008 ~follows_exit:false in
  ignore (History_buffer.insert buf ~src:0x1010 ~tgt:0x1008 ~follows_exit:false);
  check_true "no trace when the start is already cached"
    (Lei_former.form ~ctx ~buf ~start:0x1008 ~after_seq:old = None)

let lei_respects_size_cap () =
  let image = figure2 () in
  let params = { Params.default with Params.max_trace_insts = 5 } in
  let ctx = ctx_of ~params image in
  let buf = History_buffer.create ~capacity:64 in
  let old = History_buffer.insert buf ~src:0x1010 ~tgt:0x1008 ~follows_exit:false in
  ignore (History_buffer.insert buf ~src:0x100e ~tgt:0x1000 ~follows_exit:false);
  ignore (History_buffer.insert buf ~src:0x1010 ~tgt:0x1008 ~follows_exit:false);
  match Lei_former.form ~ctx ~buf ~start:0x1008 ~after_seq:old with
  | Some path -> check_true "capped" (Region.path_insts path <= 8)
  | None -> Alcotest.fail "expected a trace"

let suite =
  [
    case "net: stops at backward branch" net_stops_at_backward_branch;
    case "net: stops at cached entry" net_stops_at_cached_entry;
    case "net: stops at own entry" net_stops_at_own_entry;
    case "net: size limit" net_size_limit;
    case "net: halt ends trace" net_halt_ends_trace;
    case "net: wrong first block rejected" net_wrong_first_block_rejected;
    case "lei: reconstructs interprocedural cycle" lei_reconstructs_interprocedural_cycle;
    case "lei: stops at cached entry" lei_stops_at_cached_entry;
    case "lei: gap tail walk" lei_gap_tail_walk;
    case "lei: start cached yields nothing" lei_start_cached_yields_nothing;
    case "lei: respects size cap" lei_respects_size_cap;
  ]
