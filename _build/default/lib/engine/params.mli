(** Tunable parameters of the simulated dynamic optimization system.

    Defaults follow the paper (see DESIGN.md for the per-parameter source):
    NET's published threshold of 50, LEI's 35 with a 500-entry history
    buffer, and the trace-combination settings [T_prof = 15], [T_min = 5]
    with start thresholds lowered so that regions are selected after the
    same number of interpreted executions as the underlying algorithm
    (Section 4.3). *)

type eviction =
  | Flush_all  (** Dynamo's policy: preemptively empty the whole cache. *)
  | Evict_oldest  (** FIFO: drop regions in selection order until it fits. *)

type t = {
  net_threshold : int;  (** Execution count before NET selects a trace. *)
  lei_threshold : int;  (** LEI's [T_cyc]: counted cycle completions. *)
  lei_buffer_size : int;  (** LEI history buffer capacity (taken branches). *)
  combine_t_prof : int;  (** Observed traces per combined region. *)
  combine_t_min : int;  (** Occurrences for a block to be marked. *)
  combined_net_start : int;  (** [T_start] when combining NET traces. *)
  combined_lei_start : int;  (** [T_start] when combining LEI traces. *)
  max_trace_insts : int;  (** Trace size limit, instructions. *)
  max_trace_blocks : int;  (** Trace size limit, blocks. *)
  mojo_exit_threshold : int;
      (** Extension (Section 5): Mojo's lower threshold for trace-exit
          targets. *)
  boa_threshold : int;
      (** Extension (Section 5): BOA's entry threshold before a bias-directed
          trace is grown. *)
  method_threshold : int;
      (** Extension: invocation count before the whole-method policy
          compiles a function. *)
  cache_capacity_bytes : int option;
      (** Extension ablation: bound the code cache to this many bytes under
          the {!Region.cache_bytes} cost model ([None] = unbounded, the
          paper's setting). *)
  cache_eviction : eviction;
      (** What to do when a bounded cache overflows. *)
  combined_layout_hot_first : bool;
      (** Lay combined regions out hottest-block-first (the Section 4.4
          profile-guided layout); [false] uses address order (ablation). *)
  icache_size_bytes : int;
  icache_line_bytes : int;
  icache_ways : int;
      (** Geometry of the modelled I-cache.  The default (256 B, 16-byte
          lines, 2-way) is deliberately scaled down in proportion to the
          synthetic workloads' kilobyte-sized code caches, just as the
          workloads themselves are scaled-down SPEC stand-ins; a real
          32 KiB L1 would hold every toy region at once and show nothing. *)
}

val default : t

val pp : Format.formatter -> t -> unit
