(* Coverage for the reporting layer: per-region profiles, the metric
   pretty-printer and the cover-set target parameter. *)

module Region_profile = Regionsel_metrics.Region_profile
module Run_metrics = Regionsel_metrics.Run_metrics
module Cover = Regionsel_metrics.Cover
module Region = Regionsel_engine.Region
module Policies = Regionsel_core.Policies
open Fixtures

let profiles_ordered_by_share () =
  let result = run Policies.net (figure4 ()) in
  let profiles = Region_profile.of_result result in
  check_true "profiles exist" (profiles <> []);
  let shares = List.map (fun p -> p.Region_profile.exec_share) profiles in
  check_true "sorted hottest first" (List.sort (fun a b -> compare b a) shares = shares);
  check_true "shares within [0,1]" (List.for_all (fun s -> s >= 0.0 && s <= 1.0) shares);
  check_true "total share below one" (List.fold_left ( +. ) 0.0 shares <= 1.0 +. 1e-9)

let profile_routes_match_exits () =
  let result = run Policies.net (figure4 ()) in
  List.iter
    (fun p ->
      let total_routes =
        List.fold_left (fun acc r -> acc + r.Region_profile.count) 0 p.Region_profile.routes
      in
      check_int "route counts sum to the region's exits" p.Region_profile.region.Region.exits
        total_routes;
      match p.Region_profile.routes with
      | a :: b :: _ -> check_true "routes sorted by frequency" (a.Region_profile.count >= b.Region_profile.count)
      | _ -> ())
    (Region_profile.of_result result)

let profile_pp_smoke () =
  let result = run Policies.lei (figure2 ()) in
  match Region_profile.of_result result with
  | p :: _ ->
    let rendered = Format.asprintf "%a" Region_profile.pp p in
    check_true "mentions execution share" (contains ~sub:"of execution" rendered)
  | [] -> Alcotest.fail "expected profiles"

let run_metrics_pp_smoke () =
  let m = Run_metrics.of_result (run Policies.net (figure2 ())) in
  let rendered = Format.asprintf "%a" Run_metrics.pp m in
  check_true "mentions hit rate" (contains ~sub:"hit_rate" rendered);
  check_true "mentions cover" (contains ~sub:"cover90" rendered)

let cover_target_parameter () =
  let result = run Policies.net (figure4 ()) in
  let cover x = (Run_metrics.of_result ~x result).Run_metrics.cover_90 in
  check_true "tighter targets need at least as many regions" (cover 0.5 <= cover 0.95)

let unachievable_cover_flagged () =
  (* A tiny budget leaves most execution interpreted: 99% coverage is
     unachievable from the cache. *)
  let result = run ~max_steps:3_000 Policies.net (figure4 ()) in
  let m = Run_metrics.of_result ~x:0.99 result in
  check_true "flagged as unachievable" (not m.Run_metrics.cover_90_achievable)

let suite =
  [
    case "profiles ordered by share" profiles_ordered_by_share;
    case "profile routes match exits" profile_routes_match_exits;
    case "profile pp smoke" profile_pp_smoke;
    case "run metrics pp smoke" run_metrics_pp_smoke;
    case "cover target parameter" cover_target_parameter;
    case "unachievable cover flagged" unachievable_cover_flagged;
  ]
