type t = {
  entry : Addr.t;
  blocks : Block.t array; (* sorted by start address; index = dense block id *)
  addr_to_id : int array; (* start address -> dense id; -1 elsewhere *)
  n_insts : int;
}

let entry t = t.entry

let addr_limit t = Array.length t.addr_to_id

(* The hot-path primitive: an O(1) bounds-checked array read, no hashing. *)
let block_id t a = if a < 0 || a >= Array.length t.addr_to_id then -1 else t.addr_to_id.(a)

let block_of_id t id = t.blocks.(id)

let block_at t a =
  let id = block_id t a in
  if id < 0 then None else Some t.blocks.(id)

let block_at_exn t a =
  let id = block_id t a in
  if id < 0 then raise Not_found else t.blocks.(id)

let is_block_start t a = block_id t a >= 0
let n_blocks t = Array.length t.blocks
let n_insts t = t.n_insts
let blocks t = Array.copy t.blocks
let iter_blocks f t = Array.iter f t.blocks

let errorf fmt = Format.kasprintf (fun s -> Error s) fmt

let validate ~entry blocks =
  let sorted = List.sort (fun a b -> Addr.compare a.Block.start b.Block.start) blocks in
  let rec check_layout = function
    | [] | [ _ ] -> Ok ()
    | a :: (b :: _ as rest) ->
      if Addr.equal a.Block.start b.Block.start then
        errorf "two blocks share a start address"
      else if Block.fall_addr a > b.Block.start then
        errorf "blocks %a and %a overlap" Block.pp a Block.pp b
      else check_layout rest
  in
  let rec check_addresses = function
    | [] -> Ok ()
    | b :: rest ->
      if b.Block.start < 0 then errorf "block %a has a negative start address" Block.pp b
      else check_addresses rest
  in
  if sorted = [] then errorf "program has no blocks"
  else begin
    match check_addresses sorted with
    | Error _ as e -> e
    | Ok () ->
      match check_layout sorted with
      | Error _ as e -> e
      | Ok () ->
        let blocks = Array.of_list sorted in
        (* Dense ids: the flat array covers every address up to the last
           block's fall-through point, so every transfer target a validated
           program can produce is an in-bounds read. *)
        let limit = Block.fall_addr blocks.(Array.length blocks - 1) + 1 in
        let addr_to_id = Array.make limit (-1) in
        Array.iteri (fun id b -> addr_to_id.(b.Block.start) <- id) blocks;
        let is_start a = a >= 0 && a < limit && addr_to_id.(a) >= 0 in
        let check_target b tgt =
          if is_start tgt then Ok ()
          else errorf "block %a targets %a, which is not a block start" Block.pp b Addr.pp tgt
        in
        let check_fall b =
          let fall = Block.fall_addr b in
          if is_start fall then Ok ()
          else
            errorf "block %a falls through to %a, which is not a block start" Block.pp b Addr.pp
              fall
        in
        let check_block b =
          match b.Block.term with
          | Terminator.Fallthrough -> check_fall b
          | Terminator.Jump tgt -> check_target b tgt
          | Terminator.Cond tgt -> (
            match check_target b tgt with Ok () -> check_fall b | Error _ as e -> e)
          | Terminator.Call tgt -> (
            (* The return address must be a valid resumption point. *)
            match check_target b tgt with Ok () -> check_fall b | Error _ as e -> e)
          | Terminator.Indirect_call -> check_fall b
          | Terminator.Indirect_jump | Terminator.Return | Terminator.Halt -> Ok ()
        in
        let rec check_all = function
          | [] -> Ok ()
          | b :: rest -> (
            match check_block b with Ok () -> check_all rest | Error _ as e -> e)
        in
        if not (is_start entry) then errorf "entry %a is not a block start" Addr.pp entry
        else begin
          match check_all sorted with
          | Error _ as e -> e
          | Ok () ->
            let n_insts = List.fold_left (fun acc b -> acc + b.Block.size) 0 sorted in
            Ok { entry; blocks; addr_to_id; n_insts }
        end
  end

let of_blocks ~entry blocks = validate ~entry blocks

let of_blocks_exn ~entry blocks =
  match of_blocks ~entry blocks with
  | Ok t -> t
  | Error msg -> invalid_arg ("Program.of_blocks_exn: " ^ msg)

let pp ppf t =
  Format.fprintf ppf "@[<v>program entry=%a (%d blocks, %d insts)" Addr.pp t.entry (n_blocks t)
    t.n_insts;
  Array.iter (fun b -> Format.fprintf ppf "@,  %a" Block.pp b) t.blocks;
  Format.fprintf ppf "@]"
