(** The X% cover set metric (Section 2.3).

    The X% cover set of a region-selection algorithm is the smallest set of
    regions that together account for at least X% of the program's executed
    instructions.  Bala et al. found the 90% cover set size to be a perfect
    predictor of real Dynamo performance, which is why it is the paper's
    headline metric (Figures 9 and 17). *)

module Region = Regionsel_engine.Region

type t = {
  size : int;  (** Regions needed, or the total region count if unreachable. *)
  achievable : bool;
      (** Whether the target coverage can be met from the cache at all (it
          cannot when the hit rate is below X%). *)
  covered_insts : int;  (** Instructions the chosen set executed. *)
}

val compute : x:float -> total_insts:int -> Region.t list -> t
(** [compute ~x ~total_insts regions] greedily picks regions by executed
    instructions.  Requires [0 < x <= 1]. *)
