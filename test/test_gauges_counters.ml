(* High-water semantics of the shared gauges and the recyclable
   profiling-counter pool. *)

module Gauges = Regionsel_engine.Gauges
module Counters = Regionsel_engine.Counters
open Fixtures

let observed_bytes_high_water () =
  let g = Gauges.create () in
  Alcotest.(check int) "starts empty" 0 (Gauges.observed_bytes g);
  Gauges.add_observed_bytes g 100;
  Gauges.add_observed_bytes g 50;
  Alcotest.(check int) "accumulates" 150 (Gauges.observed_bytes g);
  Alcotest.(check int) "high water follows" 150 (Gauges.observed_bytes_high_water g);
  (* Releases shrink the current total but never the high-water mark. *)
  Gauges.add_observed_bytes g (-120);
  Alcotest.(check int) "negative add subtracts" 30 (Gauges.observed_bytes g);
  Alcotest.(check int) "high water retained" 150 (Gauges.observed_bytes_high_water g);
  Gauges.add_observed_bytes g 40;
  Alcotest.(check int) "regrows" 70 (Gauges.observed_bytes g);
  Alcotest.(check int) "high water still the peak" 150 (Gauges.observed_bytes_high_water g);
  Gauges.add_observed_bytes g 200;
  Alcotest.(check int) "new peak recorded" 270 (Gauges.observed_bytes_high_water g)

let set_gauges_interleaved () =
  let g = Gauges.create () in
  (* The two set-style gauges keep independent high-water marks. *)
  Gauges.set_blacklisted g 3;
  Gauges.set_links g 10;
  Gauges.set_blacklisted g 7;
  Gauges.set_links g 2;
  Gauges.set_blacklisted g 1;
  Alcotest.(check int) "blacklisted current" 1 (Gauges.blacklisted g);
  Alcotest.(check int) "blacklisted peak" 7 (Gauges.blacklisted_high_water g);
  Alcotest.(check int) "links current" 2 (Gauges.links g);
  Alcotest.(check int) "links peak" 10 (Gauges.links_high_water g);
  (* A set gauge dropping to zero keeps its peak too. *)
  Gauges.set_links g 0;
  Alcotest.(check int) "links drop to zero" 0 (Gauges.links g);
  Alcotest.(check int) "links peak survives zero" 10 (Gauges.links_high_water g);
  (* And the observed-bytes gauge is unaffected by either. *)
  Alcotest.(check int) "observed untouched" 0 (Gauges.observed_bytes_high_water g)

let counter_pool_recycles () =
  let c = Counters.create () in
  let a1 = 100 and a2 = 200 and a3 = 300 in
  Alcotest.(check int) "first incr" 1 (Counters.incr c a1);
  Alcotest.(check int) "second incr" 2 (Counters.incr c a1);
  Alcotest.(check int) "peek live" 2 (Counters.peek c a1);
  Alcotest.(check int) "one live" 1 (Counters.live c);
  ignore (Counters.incr c a2);
  Alcotest.(check int) "two live" 2 (Counters.live c);
  Alcotest.(check int) "high water tracks live" 2 (Counters.high_water c);
  (* Release recycles: live falls, high water doesn't. *)
  Counters.release c a1;
  Alcotest.(check int) "released not live" 1 (Counters.live c);
  Alcotest.(check int) "released peek is 0" 0 (Counters.peek c a1);
  Alcotest.(check int) "high water retained" 2 (Counters.high_water c);
  (* Releasing an address with no live counter is a no-op. *)
  Counters.release c a3;
  Alcotest.(check int) "no-op release" 1 (Counters.live c);
  (* Re-allocation after release restarts the count and is a fresh
     allocation. *)
  Alcotest.(check int) "re-incr restarts" 1 (Counters.incr c a1);
  Alcotest.(check int) "allocations counted" 3 (Counters.total_allocations c);
  Alcotest.(check int) "live back to two" 2 (Counters.live c);
  Alcotest.(check int) "high water unchanged" 2 (Counters.high_water c)

let counter_pool_high_water_is_peak () =
  let c = Counters.create () in
  let addr i = 1000 + i in
  for i = 1 to 5 do
    ignore (Counters.incr c (addr i))
  done;
  for i = 1 to 5 do
    Counters.release c (addr i)
  done;
  Alcotest.(check int) "all recycled" 0 (Counters.live c);
  Alcotest.(check int) "peak was 5" 5 (Counters.high_water c);
  (* Interleaved allocate/release never exceeding 2 live leaves the
     earlier peak in place. *)
  for i = 6 to 12 do
    ignore (Counters.incr c (addr i));
    ignore (Counters.incr c (addr (i + 100)));
    Counters.release c (addr i);
    Counters.release c (addr (i + 100))
  done;
  Alcotest.(check int) "peak still 5" 5 (Counters.high_water c);
  Alcotest.(check int) "allocations all counted" 19 (Counters.total_allocations c)

let live_entries_match () =
  let c = Counters.create () in
  let a1 = 7 and a2 = 8 in
  ignore (Counters.incr c a1);
  ignore (Counters.incr c a1);
  ignore (Counters.incr c a2);
  let entries = List.sort compare (Counters.live_entries c) in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  Alcotest.(check bool) "counts match" true
    (entries = List.sort compare [ a1, 2; a2, 1 ])

let suite =
  [
    case "observed-bytes high water" observed_bytes_high_water;
    case "set gauges interleaved" set_gauges_interleaved;
    case "counter pool recycles" counter_pool_recycles;
    case "counter pool high water is peak" counter_pool_high_water_is_peak;
    case "live entries match" live_entries_match;
  ]
