open Regionsel_isa
module Policy = Regionsel_engine.Policy
module Context = Regionsel_engine.Context
module Region = Regionsel_engine.Region
module Code_cache = Regionsel_engine.Code_cache
module Counters = Regionsel_engine.Counters
module Params = Regionsel_engine.Params

type t = { ctx : Context.t; buf : History_buffer.t }

let name = "lei"

let create (ctx : Context.t) =
  { ctx; buf = History_buffer.create ~capacity:ctx.Context.params.Params.lei_buffer_size }

(* Checkpoint support: the history buffer is the policy's only state (the
   counter pool lives in the shared context). *)
let save t emit = History_buffer.save t.buf emit

let load ctx read =
  let t = create ctx in
  History_buffer.load t.buf read;
  t

(* INTERPRETED-BRANCH-TAKEN, Figure 5, for a target that is not cached.  A
   code-cache exit reaches the dispatcher exactly like an interpreted taken
   branch, so it runs the same algorithm; its buffer entry carries the
   [follows_exit] flag that line 9 tests on the {e previous} occurrence. *)
let on_taken_branch t ~src ~tgt ~is_exit =
  (* Seq-based lookups keep the per-branch fast path allocation-free: the
     previous occurrence's flag must be read before the insert, which may
     overwrite its slot. *)
  let old_seq = History_buffer.find_seq t.buf tgt in
  let old_follows_exit =
    old_seq > 0 && History_buffer.follows_exit_at t.buf ~seq:old_seq
  in
  ignore (History_buffer.insert t.buf ~src ~tgt ~follows_exit:is_exit);
  if old_seq = 0 then Policy.No_action
  else if Addr.is_backward ~src ~tgt || old_follows_exit then begin
    let c = Counters.incr t.ctx.Context.counters tgt in
    if c >= t.ctx.Context.params.Params.lei_threshold then begin
      let path = Lei_former.form ~ctx:t.ctx ~buf:t.buf ~start:tgt ~after_seq:old_seq in
      History_buffer.truncate_after t.buf ~seq:old_seq;
      Counters.release t.ctx.Context.counters tgt;
      match path with
      | Some path -> Policy.Install [ Region.spec_of_path ~kind:Region.Trace path ]
      | None -> Policy.No_action
    end
    else Policy.No_action
  end
  else Policy.No_action

let handle t = function
  | Policy.Interp_block ib ->
    let tgt = ib.Policy.next in
    if ib.Policy.taken && not (Addr.is_none tgt) then
      if Code_cache.mem t.ctx.Context.cache tgt then Policy.No_action
      else on_taken_branch t ~src:(Block.last ib.Policy.block) ~tgt ~is_exit:false
    else Policy.No_action
  | Policy.Cache_exited { src; tgt; _ } -> on_taken_branch t ~src ~tgt ~is_exit:true
  | Policy.Region_invalidated { entry } ->
    (* Cycle counting restarts from scratch for the retired entry. *)
    Counters.release t.ctx.Context.counters entry;
    Policy.No_action
