lib/engine/counters.mli: Addr Regionsel_isa
