(** LEI's branch history buffer (Figures 5 and 6 of the paper).

    A bounded circular buffer of the most recently interpreted taken
    branches, with a hash index from target address to that target's most
    recent occurrence.  If an inserted branch's target is already in the
    buffer, a cycle has just executed and the buffer slice between the two
    occurrences spells out its path.

    Entries carry a [follows_exit] flag: the entry recorded immediately
    after execution left the code cache, which is LEI's analogue of NET's
    trace-exit profiling points (line 9 of Figure 5 accepts a cycle whose
    earlier occurrence "follows an exit from the code cache").

    Each entry has a monotonically increasing sequence number; sequence
    numbers identify occurrences stably across wrap-around and truncation. *)

open Regionsel_isa

type entry = { src : Addr.t; tgt : Addr.t; follows_exit : bool; seq : int }

type t

val create : capacity:int -> t
(** Requires [capacity >= 1]. *)

val capacity : t -> int

val length : t -> int
(** Entries currently held (at most [capacity]). *)

val find : t -> Addr.t -> entry option
(** The most recent live occurrence of the address as a branch target —
    the paper's [HASH-LOOKUP(Buf.hash, tgt)]. *)

val insert : t -> src:Addr.t -> tgt:Addr.t -> follows_exit:bool -> entry
(** Append a taken branch, evicting the oldest entry when full, and update
    the hash index to this newest occurrence. *)

val entries_after : t -> seq:int -> entry list
(** Live entries with sequence number strictly greater than [seq], oldest
    first: the just-completed cycle's branches, when called with the
    previous occurrence's sequence number. *)

val truncate_after : t -> seq:int -> unit
(** Drop all entries with sequence number strictly greater than [seq] —
    line 13 of Figure 5 ("remove all elements of Buf after old"). *)
