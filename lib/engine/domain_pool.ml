(* A minimal ordered parallel map over OCaml 5 domains.

   Tasks are closures; results come back in submission order regardless of
   which domain ran which task, so callers that fill caches or print tables
   from the result list are deterministic by construction.  Each task must
   be self-contained: it may share read-only data with the others but must
   not mutate anything another task reads (the simulator allocates all
   per-run state per call, so [fun () -> Simulator.run ...] qualifies). *)

let default_n_domains () =
  match Sys.getenv_opt "REGIONSEL_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> max 1 n (* 0 or negative clamps to sequential, not an error *)
    | None -> invalid_arg "REGIONSEL_DOMAINS must be an integer")
  | None -> max 1 (Domain.recommended_domain_count ())

(* Work-stealing by shared index: domains race on [next] and write results
   into a slot array, so order is preserved without any per-task channel. *)
let map ?n_domains f tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let n_domains =
    match n_domains with Some d -> max 1 d | None -> default_n_domains ()
  in
  if n = 0 then []
  else if n_domains = 1 || n = 1 then List.map f (Array.to_list tasks)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else
          match f tasks.(i) with
          | r -> results.(i) <- Some r
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)));
            continue := false
      done
    in
    let spawned =
      List.init (min n_domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list results
    |> List.map (function
         | Some r -> r
         | None -> failwith "Domain_pool.map: missing result")
  end

(* Same stealing discipline for effectful tasks that return nothing: the
   multi-stream scheduler advances an array of run handles one batch each.
   Elements are claimed exactly once, so [f] may mutate the state its own
   element owns without synchronization. *)
let iter ?n_domains f tasks =
  let n = Array.length tasks in
  let n_domains =
    match n_domains with Some d -> max 1 d | None -> default_n_domains ()
  in
  if n = 0 then ()
  else if n_domains = 1 || n = 1 then Array.iter f tasks
  else begin
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else
          match f tasks.(i) with
          | () -> ()
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set failure None (Some (e, bt)));
            continue := false
      done
    in
    let spawned =
      List.init (min n_domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end
