(* 175.vpr: FPGA placement and routing.  Simulated-annealing swaps with a
   moderately unbiased accept/reject split and a distance call inside the
   hot cycle, a routing wave expansion, and a timing-analysis loop. *)

let build () =
  let b = Builder.create () in
  Patterns.leaf b ~name:"dist" ~size:6;
  Patterns.composite_loop b ~name:"try_swap" ~trip:220
    ~body:
      [
        Patterns.Straight 4;
        Patterns.Diamond { Patterns.bias = 0.55; side_size = 6 };
        Patterns.Call_to "dist";
        Patterns.Diamond { Patterns.bias = 0.5; side_size = 5 };
        Patterns.Straight 4;
        Patterns.Continue 0.15;
      ];
  Patterns.composite_loop b ~name:"route_net" ~trip:180
    ~body:
      [
        Patterns.Straight 4;
        Patterns.Call_to "dist";
        Patterns.Diamond { Patterns.bias = 0.85; side_size = 4 };
        Patterns.Straight 3;
      ];
  Patterns.plain_loop b ~name:"timing" ~trip:200 ~body_blocks:3 ~body_size:5;
  Patterns.nested_loop b ~name:"update_bb" ~outer_trip:20 ~inner_trip:30 ~body_size:4;
  Patterns.spaced_loop b ~name:"dump_stats" ~body_size:4;
  Patterns.cold_farm b ~name:"misc_pool" ~n:12 ~body_size:5;
  Patterns.driver b ~name:"main"
    ~weights:[ "dump_stats", 0.1; "misc_pool", 0.1 ]
    [ "try_swap"; "route_net"; "timing"; "update_bb"; "dump_stats"; "misc_pool" ];
  Builder.compile b ~name:"vpr" ~entry:"main"

let spec =
  Spec.make ~name:"vpr"
    ~description:
      "175.vpr stand-in: annealing accept/reject diamonds around a distance call, \
       routing loop, timing loops"
    ~steps:900_000 build
