(* On-disk branch-event recordings.

   The file is the persistent form of a [Branch_stream.events] recording:
   a CRC'd identity header (program shape + seed, the two inputs that
   determine the branch stream) followed by one bit-packed payload.  Each
   event costs [kb + 1 + kn] bits where [kb]/[kn] are the minimal widths
   for a block id / successor code under the program's block count — for
   the bundled workloads (tens to hundreds of blocks) that is ~2 bytes per
   event against the 24 bytes of the in-memory arrays.

   Unlike snapshots there is no per-section degrade path: a recording with
   any corrupt byte cannot be replayed bit-identically, which is its whole
   contract, so every validation failure is [Persist.Hard_corruption]. *)

open Regionsel_isa
module Branch_stream = Regionsel_engine.Branch_stream
module Bitbuf = Regionsel_core.Bitbuf

let magic = "REVL"
let version = 1

(* Bits to represent every value in [0, max]. *)
let bits_for max =
  let rec go acc v = if v = 0 then acc else go (acc + 1) (v lsr 1) in
  if max = 0 then 1 else go 0 max

let add_bits w v k =
  for i = k - 1 downto 0 do
    Bitbuf.Writer.add_bit w ((v lsr i) land 1 = 1)
  done

let read_bits r k =
  let v = ref 0 in
  for _ = 1 to k do
    v := (!v lsl 1) lor if Bitbuf.Reader.read_bit r then 1 else 0
  done;
  !v

let bu32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let ru32 bytes pos =
  (Char.code (Bytes.get bytes pos) lsl 24)
  lor (Char.code (Bytes.get bytes (pos + 1)) lsl 16)
  lor (Char.code (Bytes.get bytes (pos + 2)) lsl 8)
  lor Char.code (Bytes.get bytes (pos + 3))

let seed_lo seed = Int64.to_int (Int64.logand seed 0xFFFFFFFFL)
let seed_hi seed = Int64.to_int (Int64.shift_right_logical seed 32)

let corrupt reason = raise (Persist.Hard_corruption ("event log: " ^ reason))

let pack_event w ~program ~n_blocks ~kb ~kn ~block_id ~taken ~next =
  if block_id >= n_blocks then invalid_arg "Event_log.encode: block id outside the program";
  add_bits w block_id kb;
  Bitbuf.Writer.add_bit w taken;
  let code =
    if next = Addr.none then 0
    else begin
      let id = Program.block_id program next in
      if id < 0 then invalid_arg "Event_log.encode: successor is not a block start";
      id + 1
    end
  in
  add_bits w code kn

let unpack_event r ~program ~n_blocks ~kb ~kn ~into =
  let block_id = read_bits r kb in
  if block_id >= n_blocks then corrupt "block id outside the program";
  let taken = Bitbuf.Reader.read_bit r in
  let code = read_bits r kn in
  if code > n_blocks then corrupt "successor code outside the program";
  let next =
    if code = 0 then Addr.none else (Program.block_of_id program (code - 1)).Block.start
  in
  Branch_stream.append_event into ~block_id ~taken ~next

let encode ~program ~seed events =
  let n_blocks = Program.n_blocks program in
  let kb = bits_for (n_blocks - 1) in
  let kn = bits_for n_blocks in
  let w = Bitbuf.Writer.create () in
  Branch_stream.iter
    (fun ~block_id ~taken ~next -> pack_event w ~program ~n_blocks ~kb ~kn ~block_id ~taken ~next)
    events;
  let payload = Bitbuf.Writer.contents w in
  let n_bits = Bitbuf.Writer.length_bits w in
  let header = Buffer.create 32 in
  Buffer.add_string header magic;
  bu32 header version;
  bu32 header n_blocks;
  bu32 header (seed_lo seed);
  bu32 header (seed_hi seed);
  bu32 header (Branch_stream.length events land 0xFFFFFFFF);
  bu32 header ((Branch_stream.length events asr 32) land 0x7FFFFFFF);
  let hbytes = Buffer.to_bytes header in
  let out = Buffer.create (Bytes.length hbytes + Bytes.length payload + 16) in
  Buffer.add_bytes out hbytes;
  bu32 out (Persist.crc32 hbytes ~pos:0 ~len:(Bytes.length hbytes));
  bu32 out n_bits;
  Buffer.add_bytes out payload;
  bu32 out (Persist.crc32 payload ~pos:0 ~len:(Bytes.length payload));
  Buffer.to_bytes out

let decode bytes ~program ~seed =
  let total = Bytes.length bytes in
  if total < 36 then corrupt "truncated header";
  if Bytes.sub_string bytes 0 4 <> magic then corrupt "bad magic";
  let stored_header_crc = ru32 bytes 28 in
  if Persist.crc32 bytes ~pos:0 ~len:28 <> stored_header_crc then
    corrupt "header checksum mismatch";
  let v = ru32 bytes 4 in
  if v <> version then corrupt (Printf.sprintf "unsupported version %d" v);
  let n_blocks = ru32 bytes 8 in
  if n_blocks <> Program.n_blocks program then
    corrupt
      (Printf.sprintf "program mismatch (%d blocks recorded, %d here)" n_blocks
         (Program.n_blocks program));
  if ru32 bytes 12 <> seed_lo seed || ru32 bytes 16 <> seed_hi seed then
    corrupt "seed mismatch";
  let n_events = (ru32 bytes 24 lsl 32) lor ru32 bytes 20 in
  let n_bits = ru32 bytes 32 in
  let kb = bits_for (n_blocks - 1) in
  let kn = bits_for n_blocks in
  if n_events * (kb + 1 + kn) <> n_bits then corrupt "event count disagrees with payload size";
  let plen = (n_bits + 7) / 8 in
  if total <> 36 + plen + 4 then corrupt "truncated payload";
  let payload = Bytes.sub bytes 36 plen in
  if Persist.crc32 payload ~pos:0 ~len:plen <> ru32 bytes (36 + plen) then
    corrupt "payload checksum mismatch";
  let r = Bitbuf.Reader.create payload ~n_bits in
  let events = Branch_stream.recorder () in
  for _ = 1 to n_events do
    unpack_event r ~program ~n_blocks ~kb ~kn ~into:events
  done;
  events

(* The wire form of a recording slice — the daemon's Events frame body.
   Same bit packing and checksum discipline as the file, but no identity
   header: on the wire, identity was already pinned by the session Hello.

       u32 n_events | u32 n_bits | payload | u32 crc32(payload) *)

let encode_batch ~program events ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Branch_stream.length events then
    invalid_arg "Event_log.encode_batch: range outside the recording";
  let n_blocks = Program.n_blocks program in
  let kb = bits_for (n_blocks - 1) in
  let kn = bits_for n_blocks in
  let w = Bitbuf.Writer.create () in
  for i = pos to pos + len - 1 do
    pack_event w ~program ~n_blocks ~kb ~kn
      ~block_id:(Branch_stream.get_block_id events i)
      ~taken:(Branch_stream.get_taken events i)
      ~next:(Branch_stream.get_next events i)
  done;
  let payload = Bitbuf.Writer.contents w in
  let n_bits = Bitbuf.Writer.length_bits w in
  let out = Buffer.create (Bytes.length payload + 16) in
  bu32 out len;
  bu32 out n_bits;
  Buffer.add_bytes out payload;
  bu32 out (Persist.crc32 payload ~pos:0 ~len:(Bytes.length payload));
  Buffer.to_bytes out

let decode_batch bytes ~program ~into =
  let total = Bytes.length bytes in
  if total < 12 then corrupt "truncated batch";
  let n_events = ru32 bytes 0 in
  let n_bits = ru32 bytes 4 in
  let n_blocks = Program.n_blocks program in
  let kb = bits_for (n_blocks - 1) in
  let kn = bits_for n_blocks in
  if n_events * (kb + 1 + kn) <> n_bits then corrupt "event count disagrees with payload size";
  let plen = (n_bits + 7) / 8 in
  if total <> 8 + plen + 4 then corrupt "truncated batch payload";
  let payload = Bytes.sub bytes 8 plen in
  if Persist.crc32 payload ~pos:0 ~len:plen <> ru32 bytes (8 + plen) then
    corrupt "batch payload checksum mismatch";
  let r = Bitbuf.Reader.create payload ~n_bits in
  (* Unpack into a scratch recorder first: a payload whose checksum holds
     but whose events fail validation (block ids outside the program) must
     not leave a partial append in [into] — callers feed live replay
     streams. *)
  let scratch = Branch_stream.recorder () in
  for _ = 1 to n_events do
    unpack_event r ~program ~n_blocks ~kb ~kn ~into:scratch
  done;
  Branch_stream.iter
    (fun ~block_id ~taken ~next -> Branch_stream.append_event into ~block_id ~taken ~next)
    scratch;
  n_events

let write_file ~path ~program ~seed events =
  let data = encode ~program ~seed events in
  Io.write_atomic ~path data;
  Bytes.length data

let read_file ~path ~program ~seed =
  let ic = open_in_bin path in
  let data =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  decode (Bytes.of_string data) ~program ~seed
