(** Region-lifecycle event tracing and histogram telemetry.

    A fixed-size ring buffer of packed-int lifecycle events emitted from
    the hot paths of the engine (region install/evict/invalidate, link
    patch/sever, dispatch, bailout enter/exit, fault delivery, blacklist
    add/expire), each stamped with the step count at which it happened,
    plus log2-bucketed histograms for region residency, time-to-first-link,
    selected-trace length and blacklist cooldown duration.

    The buffer never grows: when full, the oldest events are overwritten
    ({!n_dropped} counts the casualties).  Emission writes four ints into a
    preallocated array — no allocation, no branching beyond the sink check —
    so a tracer-on run stays inside the bench-smoke regression gate, and a
    tracer-off run ([sink = None], the default everywhere) costs one
    immediate-value compare per emission site.

    Region install/retire events additionally feed a {e span ledger} kept
    outside the ring, so per-region lifetime spans survive ring overwrite
    and {!spans} can reconstruct every install→retirement pair regardless
    of buffer capacity (see DESIGN.md "Observability & trace export").

    This library is dependency-free; the engine threads a {!sink} through
    [Context] and the exporters in {!Trace_export} turn a finished recorder
    into Chrome [trace_event] JSON or JSONL. *)

type t
(** A telemetry recorder: ring buffer + histograms + span ledger. *)

type sink = t option
(** What the engine threads through [Context]: [None] (the default) is a
    no-op sink; every emission function below is safe on both. *)

val none : sink

val create : ?capacity:int -> unit -> t
(** A fresh recorder.  [capacity] is the maximum number of buffered events
    (default 65536), rounded up to a power of two. *)

(** {1 Event kinds}

    Each event carries two payload ints [a] and [b] whose meaning depends
    on the kind — see the emission functions below for the encoding. *)

type kind =
  | Install  (** [a] = region id, [b] = node count. *)
  | Evict  (** [a] = region id, [b] = 1 for a whole-cache flush, else 0. *)
  | Invalidate  (** [a] = region id (an SMC write dirtied its span). *)
  | Link_patch  (** [a] = source region id, [b] = target region id. *)
  | Link_sever  (** [a] = source region id, [b] = target region id. *)
  | Dispatch  (** [a] = region id entered from the interpreter. *)
  | Bailout_enter  (** [a] = step until which the cooldown runs. *)
  | Bailout_exit
  | Fault  (** [a] = fault code, see {!fault_label}. *)
  | Blacklist_add  (** [a] = entry address, [b] = cooldown in steps. *)
  | Blacklist_expire  (** [a] = entry address. *)
  | Select  (** [a] = trace length in blocks, [b] = in instructions. *)

val label : kind -> string
(** Short stable tag for exports, e.g. ["install"], ["link-patch"]. *)

val fault_label : int -> string
(** Label for a [Fault] event's code: 0 = ["smc"], 1 = ["translation"],
    2 = ["async-exit"], 3 = ["shock"], 4 = ["crash"] (matching
    [Faults.label]). *)

(** {1 Emission} — allocation-free; no-ops on a [None] sink. *)

val install : sink -> step:int -> id:int -> n_nodes:int -> unit
val evict : sink -> step:int -> id:int -> flush:bool -> unit
val invalidate : sink -> step:int -> id:int -> unit
val link_patch : sink -> step:int -> from_id:int -> target_id:int -> unit
val link_sever : sink -> step:int -> from_id:int -> target_id:int -> unit
val dispatch : sink -> step:int -> id:int -> unit
val bailout_enter : sink -> step:int -> until:int -> unit
val bailout_exit : sink -> step:int -> unit
val fault : sink -> step:int -> code:int -> unit
val blacklist_add : sink -> step:int -> entry:int -> cooldown:int -> unit
val blacklist_expire : sink -> step:int -> entry:int -> unit
val select : sink -> step:int -> n_blocks:int -> n_insts:int -> unit

val finish : t -> step:int -> unit
(** Close every region span still open at end of run (cause
    [End_of_run], retired at [step]).  Call once, after the simulation,
    before reading {!spans} or exporting.  Idempotent. *)

(** {1 Reading the ring} *)

type event = { step : int; kind : kind; a : int; b : int }

val events : t -> event list
(** Surviving events, oldest first.  At most [capacity] of them. *)

val n_emitted : t -> int
(** Events ever emitted (including overwritten ones). *)

val n_dropped : t -> int
(** Events lost to ring overwrite: [max 0 (n_emitted - capacity)]. *)

val capacity : t -> int

(** {1 Spans} *)

type cause = Evicted | Flushed | Invalidated | End_of_run

val cause_label : cause -> string

type span = {
  id : int;  (** Region id. *)
  installed_at : int;
  retired_at : int;
  cause : cause;
  n_nodes : int;
}

val spans : t -> span list
(** Completed spans in install order — after {!finish}, exactly one per
    install ever recorded. *)

val n_installs : t -> int
(** Install events ever recorded (ring overwrite cannot lose them). *)

val span_open : t -> id:int -> bool
(** Whether region [id] currently has an open span (installed, not yet
    retired).  Sanitizer rule: before {!finish}, the open spans are exactly
    the cache's live regions. *)

val iter_open_spans : t -> (id:int -> installed_at:int -> unit) -> unit
(** Iterate the ledger's open spans, increasing region id. *)

val n_open_spans : t -> int
(** Open spans (regions installed and not yet retired). *)

val reconcile_spans : t -> step:int -> live:(int -> bool) -> unit
(** Close (as [End_of_run]) any open span whose region id fails [live].
    Snapshot restore uses this when the ledger outlived the cache section
    it described — the ghost spans close so spans = installs holds and
    the sanitizer's open-spans = live-regions rule is re-established. *)

(** {1 Histograms} *)

module Hist : sig
  (** A log2-bucketed histogram of non-negative ints: bucket 0 counts
      values [<= 0] (sentinel observations), bucket [b >= 1] counts values
      in [[2^(b-1), 2^b - 1]].  Observation is allocation-free. *)

  type h

  val create : unit -> h
  val observe : h -> int -> unit
  val count : h -> int
  val sum : h -> int
  val max_value : h -> int

  val buckets : h -> (int * int * int) list
  (** Non-empty buckets as [(lo, hi, count)], increasing. *)
end

val residency : t -> Hist.h
(** Steps from install to retirement, observed at each genuine retirement
    (regions still live at {!finish} are not observed). *)

val time_to_first_link : t -> Hist.h
(** Steps from a region's install to the first time one of its exit stubs
    was patched, observed once per region. *)

val trace_length : t -> Hist.h
(** Block count of each policy-selected region spec, observed at selection
    (before the install is attempted, so rejected selections count). *)

val blacklist_cooldown : t -> Hist.h
(** Cooldown durations in steps, observed at each blacklist (re-)arming. *)

(** {1 Checkpoint support} *)

val save : t -> (int -> unit) -> unit
(** Serialize the full recorder — ring (written slots verbatim, so
    {!events}, {!n_emitted} and {!n_dropped} survive exactly), histograms,
    span ledger geometry, completed spans, counters — as a flat int
    stream. *)

val load : t -> (unit -> int) -> unit
(** Fill an existing recorder from a {!save} stream.  The recorder must
    have been created at the same capacity as the saved one; raises
    [Failure] on a capacity mismatch or a malformed stream. *)
