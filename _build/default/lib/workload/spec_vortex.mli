(** The vortex stand-in workload. See the module implementation for the
    modelled control-flow traits. *)

val spec : Spec.t
