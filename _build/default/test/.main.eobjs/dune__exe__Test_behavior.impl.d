test/test_behavior.ml: Alcotest Fixtures Format Fun List QCheck QCheck_alcotest Regionsel_prng Regionsel_workload
