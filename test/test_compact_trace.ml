open Regionsel_isa
module Compact_trace = Regionsel_core.Compact_trace
module Region = Regionsel_engine.Region
module Interp = Regionsel_engine.Interp
module Image = Regionsel_workload.Image
open Fixtures

(* Slice real executions into paths: any contiguous run of interpreted
   blocks is a valid trace, which is exactly what the observers record.
   Each observed step is snapshotted out of the reused step record. *)
let executed_steps image ~seed ~n =
  let interp = Interp.create image ~seed in
  let s = Interp.make_step () in
  let rec go acc k =
    if k = 0 || not (Interp.step_into interp s) then List.rev acc
    else go ((Interp.block interp s, s.Interp.next) :: acc) (k - 1)
  in
  go [] n

let path_of_slice steps =
  match List.rev steps with
  | [] -> invalid_arg "empty slice"
  | (_, last_next) :: _ ->
    {
      Region.blocks = List.map fst steps;
      final_next = (if Addr.is_none last_next then None else Some last_next);
    }

let block_starts path = List.map (fun b -> b.Block.start) path.Region.blocks

let roundtrip_path image path =
  let encoded = Compact_trace.encode path in
  let decoded = Compact_trace.decode image.Image.program encoded in
  Alcotest.(check (list int)) "blocks round-trip" (block_starts path) (block_starts decoded);
  Alcotest.(check (option int)) "final transfer round-trips" path.Region.final_next
    decoded.Region.final_next

let roundtrip_figure2 () =
  let image = figure2 ~iters:100 () in
  let steps = executed_steps image ~seed:3L ~n:200 in
  let rec slices = function
    | [] -> ()
    | steps ->
      let len = min 17 (List.length steps) in
      let slice = List.filteri (fun i _ -> i < len) steps in
      roundtrip_path image (path_of_slice slice);
      slices (List.filteri (fun i _ -> i >= len) steps)
  in
  slices steps

let roundtrip_single_block () =
  let image = simple_loop ~trip:5 () in
  let steps = executed_steps image ~seed:1L ~n:1 in
  roundtrip_path image (path_of_slice steps)

let roundtrip_halting_path () =
  let image = simple_loop ~trip:3 () in
  let steps = executed_steps image ~seed:1L ~n:100 in
  (* The full run ends in a halt: final_next = None. *)
  let path = path_of_slice steps in
  check_true "final transfer unknown" (path.Region.final_next = None);
  roundtrip_path image path

let entry_recorded () =
  let image = figure4 ~iters:50 () in
  let steps = executed_steps image ~seed:2L ~n:10 in
  let path = path_of_slice steps in
  let encoded = Compact_trace.encode path in
  check_int "entry is the first block"
    (List.hd path.Region.blocks).Block.start
    (Compact_trace.entry encoded)

let size_is_compact () =
  let image = figure4 ~iters:1000 () in
  let steps = executed_steps image ~seed:2L ~n:400 in
  let path = path_of_slice steps in
  let encoded = Compact_trace.encode path in
  (* Two bits per branch plus the 34-bit end marker: far below one byte per
     instruction. *)
  check_true "encoding is much smaller than the code"
    (Compact_trace.size_bytes encoded < Region.path_insts path)

let inconsistent_path_rejected () =
  let image = figure2 ~iters:10 () in
  let p = image.Image.program in
  let entry = Program.entry p in
  let b1 = Program.block_at_exn p entry in
  (* Claim that b1 transfers to itself, which its terminator cannot do. *)
  let bogus = { Region.blocks = [ b1; b1 ]; final_next = None } in
  check_true "encode rejects impossible transfer"
    (try
       ignore (Compact_trace.encode bogus);
       false
     with Invalid_argument _ -> true)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"random executed slices round-trip" ~count:150
    QCheck.(pair (int_range 1 60) (pair (int_bound 200) (int_bound 1000)))
    (fun (len, (skip, seed)) ->
      let image = figure4 ~iters:5_000 ~p_first:0.5 ~p_second:0.7 () in
      let steps = executed_steps image ~seed:(Int64.of_int seed) ~n:(skip + len) in
      if List.length steps <= skip then true
      else begin
        let slice = List.filteri (fun i _ -> i >= skip) steps in
        let path = path_of_slice slice in
        let decoded = Compact_trace.decode image.Image.program (Compact_trace.encode path) in
        block_starts decoded = block_starts path
        && decoded.Region.final_next = path.Region.final_next
      end)

let suite =
  [
    case "roundtrip figure2 slices" roundtrip_figure2;
    case "roundtrip single block" roundtrip_single_block;
    case "roundtrip halting path" roundtrip_halting_path;
    case "entry recorded" entry_recorded;
    case "size is compact" size_is_compact;
    case "inconsistent path rejected" inconsistent_path_rejected;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
  ]
