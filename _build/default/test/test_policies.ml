(* Scenario tests for the selection policies, encoding the paper's three
   motivating examples: the interprocedural cycle of Figure 2, the nested
   loops of Figure 3 and the unbiased branch of Figure 4. *)

module Region = Regionsel_engine.Region
module Stats = Regionsel_engine.Stats
module Simulator = Regionsel_engine.Simulator
module Policies = Regionsel_core.Policies
open Fixtures

let cyclic = List.filter (fun (r : Region.t) -> r.Region.spans_cycle)

let hot (result : Simulator.result) =
  (* Regions that executed a meaningful share of the run. *)
  let total = Stats.total_insts result.Simulator.stats in
  List.filter
    (fun (r : Region.t) -> 10 * r.Region.insts_executed > total / 10)
    (regions_of result)

(* Figure 2: NET cannot span the interprocedural cycle. *)

let net_splits_interprocedural_cycle () =
  let result = run Policies.net (figure2 ()) in
  let hot_regions = hot result in
  check_true "NET needs at least two hot traces" (List.length hot_regions >= 2);
  check_true "no hot NET trace spans the cycle" (cyclic hot_regions = [])

let lei_spans_interprocedural_cycle () =
  let result = run Policies.lei (figure2 ()) in
  match cyclic (hot result) with
  | [ r ] ->
    check_true "the cyclic trace includes the callee"
      (Region.mem_block r 0x1000 (* callee entry, at the base address *));
    check_true "it includes the loop body" (r.Region.n_nodes >= 3)
  | [] -> Alcotest.fail "LEI should span the interprocedural cycle"
  | _ :: _ :: _ -> Alcotest.fail "expected exactly one hot cyclic trace"

let lei_fewer_stubs_on_figure2 () =
  let stubs policy =
    List.fold_left (fun acc (r : Region.t) -> acc + r.Region.n_stubs) 0
      (regions_of (run policy (figure2 ())))
  in
  check_true "LEI needs fewer exit stubs" (stubs Policies.lei < stubs Policies.net)

let lei_fewer_transitions_on_figure2 () =
  let transitions policy =
    (run policy (figure2 ())).Simulator.stats.Stats.region_transitions
  in
  check_true "LEI transitions well below NET"
    (transitions Policies.lei * 2 < transitions Policies.net)

(* Figure 3: nested loops.  NET duplicates the inner loop in the outer
   trace; LEI stops at the existing inner region. *)

let inner_addr = 0x1005 (* entry(2) + a(3) *)

let net_duplicates_inner_loop () =
  let result = run Policies.net (figure3 ()) in
  let containing =
    List.filter (fun r -> Region.mem_block r inner_addr) (regions_of result)
  in
  check_true "inner block appears in several NET traces" (List.length containing >= 2)

let lei_avoids_inner_duplication () =
  let result = run Policies.lei (figure3 ()) in
  let containing =
    List.filter (fun r -> Region.mem_block r inner_addr) (regions_of result)
  in
  check_int "inner block selected exactly once" 1 (List.length containing)

let lei_less_expansion_on_figure3 () =
  let expansion policy =
    List.fold_left (fun acc (r : Region.t) -> acc + r.Region.copied_insts) 0
      (regions_of (run policy (figure3 ())))
  in
  check_true "LEI copies fewer instructions" (expansion Policies.lei < expansion Policies.net)

(* Figure 4: the unbiased branch.  Trace combination merges both sides into
   one region; plain NET duplicates the tail. *)

let net_duplicates_tail_on_figure4 () =
  let result = run Policies.net (figure4 ()) in
  (* The biased branch's block D (0x100c) is duplicated across traces. *)
  let containing = List.filter (fun r -> Region.mem_block r 0x100d) (regions_of result) in
  check_true "tail duplicated by NET" (List.length containing >= 2)

let combined_net_merges_figure4 () =
  let result = run Policies.combined_net (figure4 ()) in
  let merged =
    List.filter
      (fun (r : Region.t) ->
        r.Region.kind = Region.Combined
        && Region.mem_block r 0x1005 (* b *)
        && Region.mem_block r 0x1009 (* c *)
        && Region.mem_block r 0x100d (* d *))
      (regions_of result)
  in
  check_true "one region holds both unbiased arms and the join" (merged <> []);
  let r = List.hd merged in
  check_true "the region also spans the loop" r.Region.spans_cycle

let combined_net_fewer_transitions_on_figure4 () =
  let transitions policy = (run policy (figure4 ())).Simulator.stats.Stats.region_transitions in
  check_true "combination removes most transitions"
    (transitions Policies.combined_net * 2 < transitions Policies.net)

let combination_keeps_dominant_path_single () =
  (* With a heavily biased branch there is a single dominant path, and the
     combined region should not include the cold arm. *)
  let image = figure4 ~p_first:0.01 ~p_second:0.99 () in
  let result = run Policies.combined_net image in
  let combined =
    List.filter (fun (r : Region.t) -> r.Region.kind = Region.Combined) (regions_of result)
  in
  check_true "a combined region exists" (combined <> []);
  let r = List.hd combined in
  check_true "cold arm excluded" (not (Region.mem_block r 0x1009 (* c: the 1% arm *)))

(* Registry *)

let registry_names () =
  let names = List.map fst Policies.all in
  check_int "seven policies" 7 (List.length names);
  check_int "no duplicate names" 7 (List.length (List.sort_uniq compare names));
  check_true "paper subset" (List.length Policies.paper = 4);
  List.iter (fun n -> check_true ("find " ^ n) (Policies.find n <> None)) names;
  check_true "unknown name" (Policies.find "nope" = None)

let all_policies_run_everywhere () =
  List.iter
    (fun (name, policy) ->
      List.iter
        (fun image ->
          let result = run ~max_steps:30_000 policy image in
          check_true (name ^ " executed something") (Stats.total_insts result.Simulator.stats > 0))
        [ figure2 (); figure3 (); figure4 (); simple_loop () ])
    Policies.all

(* Related-work policies. *)

let mojo_selects_exit_traces_sooner () =
  let image = figure4 ~p_first:0.5 () in
  let n_regions policy = List.length (regions_of (run ~max_steps:6_000 policy image)) in
  check_true "mojo selects at least as many traces early"
    (n_regions Policies.mojo >= n_regions Policies.net)

let boa_follows_bias () =
  let image = figure4 ~p_first:0.9 ~p_second:0.9 () in
  let result = run Policies.boa image in
  (* BOA's first trace from the loop head should follow the taken (90%)
     directions: blocks C and F, not B and E. *)
  let r = List.hd (regions_of result) in
  check_true "follows majority at the unbiased split" (Region.mem_block r 0x1009);
  check_true "skips the minority arm" (not (Region.mem_block r 0x1005))

let suite =
  [
    case "figure2: NET splits the cycle" net_splits_interprocedural_cycle;
    case "figure2: LEI spans the cycle" lei_spans_interprocedural_cycle;
    case "figure2: LEI fewer stubs" lei_fewer_stubs_on_figure2;
    case "figure2: LEI fewer transitions" lei_fewer_transitions_on_figure2;
    case "figure3: NET duplicates inner loop" net_duplicates_inner_loop;
    case "figure3: LEI avoids duplication" lei_avoids_inner_duplication;
    case "figure3: LEI less expansion" lei_less_expansion_on_figure3;
    case "figure4: NET duplicates tail" net_duplicates_tail_on_figure4;
    case "figure4: combined NET merges arms" combined_net_merges_figure4;
    case "figure4: combined NET fewer transitions" combined_net_fewer_transitions_on_figure4;
    case "combination keeps dominant path single" combination_keeps_dominant_path_single;
    case "registry names" registry_names;
    case "all policies run everywhere" all_policies_run_everywhere;
    case "mojo selects exit traces sooner" mojo_selects_exit_traces_sooner;
    case "boa follows bias" boa_follows_bias;
  ]
