(* Quickstart: build a tiny workload with the DSL, run it under each of the
   paper's four region-selection policies, and print the metrics that drive
   the paper's evaluation.

   The program is a hot loop that calls a helper (declared first, so the
   call is a backward branch as in the paper's Figure 2) and a cold error
   path, roughly:

     while (i < N) { if (rare) cold(); sum += helper(i); }           *)

module Builder = Regionsel_workload.Builder
module Behavior = Regionsel_workload.Behavior
module Simulator = Regionsel_engine.Simulator
module Run_metrics = Regionsel_metrics.Run_metrics
module Policies = Regionsel_core.Policies
module Table = Regionsel_report.Table

let image =
  let b = Builder.create () in
  (* Helper first: lowest addresses, so calls to it are backward. *)
  Builder.func b "helper";
  Builder.block b ~size:6 Builder.Return;
  Builder.func b "cold";
  Builder.block b ~size:20 Builder.Return;
  Builder.func b "main";
  Builder.block b ~size:3 Builder.Fallthrough;
  Builder.block b ~label:"loop" ~size:4
    (Builder.Cond ("rare_path", Behavior.Bernoulli 0.002));
  Builder.block b ~label:"body" ~size:5 (Builder.Call "helper");
  Builder.block b ~size:4 (Builder.Cond ("loop", Behavior.Loop 1000));
  Builder.block b ~size:2 Builder.Halt;
  Builder.block b ~label:"rare_path" ~size:3 (Builder.Call "cold");
  Builder.block b ~size:2 (Builder.Jump "body");
  Builder.compile b ~name:"quickstart" ~entry:"main"

let () =
  print_endline "quickstart: one hot interprocedural loop, four policies\n";
  let rows =
    List.map
      (fun (name, policy) ->
        let result = Simulator.run ~policy ~max_steps:400_000 image in
        let m = Run_metrics.of_result result in
        [
          name;
          string_of_int m.Run_metrics.n_regions;
          Table.fmt_pct m.Run_metrics.hit_rate;
          string_of_int m.Run_metrics.code_expansion;
          string_of_int m.Run_metrics.n_stubs;
          string_of_int m.Run_metrics.region_transitions;
          Table.fmt_pct m.Run_metrics.spanned_cycle_ratio;
          string_of_int m.Run_metrics.cover_90;
        ])
      Policies.paper
  in
  Table.print
    ~header:
      [ "policy"; "regions"; "hit rate"; "expansion"; "stubs"; "transitions"; "cyclic"; "cover90" ]
    rows;
  print_endline
    "\nExpected shape: LEI spans the call-containing cycle in one trace (fewer\n\
     regions/stubs/transitions than NET); the combined policies merge the rare\n\
     rejoining path into the hot region.";
  (* Show the actual regions LEI selected. *)
  let result = Simulator.run ~policy:Policies.lei ~max_steps:400_000 image in
  let regions = Regionsel_engine.Code_cache.regions result.Simulator.ctx.Regionsel_engine.Context.cache in
  print_endline "\nLEI regions:";
  List.iter (fun r -> Format.printf "%a@." Regionsel_engine.Region.pp r) regions
