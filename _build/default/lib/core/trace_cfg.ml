open Regionsel_isa
module Region = Regionsel_engine.Region

type node = {
  block : Block.t;
  mutable occurrences : int;
  mutable marked : bool;
  mutable succs : Addr.Set.t;
}

type t = {
  entry : Addr.t;
  nodes : node Addr.Table.t;
  mutable n_paths : int;
  mutable finals : (Addr.t * Addr.t) list;
      (** Final transfers of observed traces, resolved to edges at
          [to_spec] time if the target survives pruning. *)
}

let create ~entry = { entry; nodes = Addr.Table.create 64; n_paths = 0; finals = [] }

let node t block =
  match Addr.Table.find_opt t.nodes block.Block.start with
  | Some n -> n
  | None ->
    let n = { block; occurrences = 0; marked = false; succs = Addr.Set.empty } in
    Addr.Table.replace t.nodes block.Block.start n;
    n

let add_path t (path : Region.path) =
  (match path.blocks with
  | [] -> invalid_arg "Trace_cfg.add_path: empty path"
  | first :: _ ->
    if not (Addr.equal first.Block.start t.entry) then
      invalid_arg "Trace_cfg.add_path: path does not start at the entry");
  t.n_paths <- t.n_paths + 1;
  let seen = Addr.Table.create 16 in
  let visit b =
    let n = node t b in
    if not (Addr.Table.mem seen b.Block.start) then begin
      Addr.Table.replace seen b.Block.start ();
      n.occurrences <- n.occurrences + 1
    end;
    n
  in
  let rec go = function
    | [] -> ()
    | [ last ] -> (
      let n = visit last in
      match path.final_next with
      | Some a -> t.finals <- (n.block.Block.start, a) :: t.finals
      | None -> ())
    | b :: (c :: _ as rest) ->
      let n = visit b in
      n.succs <- Addr.Set.add c.Block.start n.succs;
      go rest
  in
  go path.blocks

let n_paths t = t.n_paths
let n_blocks t = Addr.Table.length t.nodes
let occurrences t a = match Addr.Table.find_opt t.nodes a with Some n -> n.occurrences | None -> 0

let mark_frequent t ~t_min =
  Addr.Table.iter (fun _ n -> if n.occurrences >= t_min then n.marked <- true) t.nodes

let is_marked t a = match Addr.Table.find_opt t.nodes a with Some n -> n.marked | None -> false

(* Post-order over observed edges from the entry.  Visiting successors
   before predecessors lets a mark propagate through a whole acyclic chain
   in one pass (Section 4.2.3). *)
let postorder t =
  let visited = Addr.Table.create (n_blocks t) in
  let order = ref [] in
  let rec dfs a =
    if not (Addr.Table.mem visited a) then begin
      Addr.Table.replace visited a ();
      (match Addr.Table.find_opt t.nodes a with
      | Some n ->
        Addr.Set.iter dfs n.succs;
        order := n :: !order
      | None -> ())
    end
  in
  dfs t.entry;
  (* Nodes unreachable from the entry along observed edges cannot be
     selected; they are pruned implicitly by never being marked frequent...
     but a frequent unreachable node would be an inconsistency, so include
     any stragglers at the end for safety. *)
  Addr.Table.iter (fun a n -> if not (Addr.Table.mem visited a) then order := n :: !order) t.nodes;
  List.rev !order

let mark_rejoining_paths t =
  let order = postorder t in
  let productive_passes = ref 0 in
  let continue = ref true in
  while !continue do
    let marked_any = ref false in
    List.iter
      (fun n ->
        if not n.marked then
          if Addr.Set.exists (fun s -> is_marked t s) n.succs then begin
            n.marked <- true;
            marked_any := true
          end)
      order;
    if !marked_any then incr productive_passes else continue := false
  done;
  !productive_passes

let to_spec ?(layout = `Hot_first) t =
  if not (is_marked t t.entry) then invalid_arg "Trace_cfg.to_spec: entry is not marked";
  let surviving a = is_marked t a in
  let nodes = ref [] in
  let edges = ref [] in
  let add_edge src dst = edges := (src, dst) :: !edges in
  Addr.Table.iter
    (fun a n ->
      if n.marked then begin
        nodes := n.block :: !nodes;
        Addr.Set.iter (fun s -> if surviving s then add_edge a s) n.succs;
        (* Line 16 of Figure 13: a region exit that targets a block of the
           region becomes an edge.  For direct transfers the link is static. *)
        (match Terminator.static_target n.block.Block.term with
        | Some tgt when surviving tgt -> add_edge a tgt
        | Some _ | None -> ());
        if Terminator.can_fall_through n.block.Block.term then begin
          let fall = Block.fall_addr n.block in
          if surviving fall then add_edge a fall
        end
      end)
    t.nodes;
  List.iter (fun (src, dst) -> if surviving src && surviving dst then add_edge src dst) t.finals;
  let nodes = List.sort (fun a b -> Addr.compare a.Block.start b.Block.start) !nodes in
  let copied_insts = List.fold_left (fun acc b -> acc + b.Block.size) 0 nodes in
  let layout_hint =
    match layout with
    | `Address_order -> []
    | `Hot_first ->
      List.map
        (fun (b : Block.t) -> b.Block.start)
        (List.sort
           (fun (a : Block.t) (b : Block.t) ->
             compare
               (-occurrences t a.Block.start, a.Block.start)
               (-occurrences t b.Block.start, b.Block.start))
           nodes)
  in
  {
    Region.entry = t.entry;
    nodes;
    edges = List.sort_uniq compare !edges;
    copied_insts;
    kind = Region.Combined;
    aux_entries = [];
    layout_hint;
  }
