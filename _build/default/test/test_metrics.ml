open Regionsel_isa
module Cover = Regionsel_metrics.Cover
module Exit_domination = Regionsel_metrics.Exit_domination
module Aggregate = Regionsel_metrics.Aggregate
module Run_metrics = Regionsel_metrics.Run_metrics
module Region = Regionsel_engine.Region
module Edge_profile = Regionsel_engine.Edge_profile
module Policies = Regionsel_core.Policies
open Fixtures

let mk start size term = Block.make ~start ~size ~term

let region_with_execution ~id ~start ~executed =
  let b = mk start 4 Terminator.Return in
  let r =
    Region.of_spec ~id ~selected_at:id
      (Region.spec_of_path ~kind:Region.Trace { Region.blocks = [ b ]; final_next = None })
  in
  Region.record_exec r executed;
  r

(* Cover sets *)

let cover_exact () =
  let regions =
    [
      region_with_execution ~id:0 ~start:0 ~executed:500;
      region_with_execution ~id:1 ~start:10 ~executed:300;
      region_with_execution ~id:2 ~start:20 ~executed:100;
    ]
  in
  let c = Cover.compute ~x:0.9 ~total_insts:1000 regions in
  check_int "two regions cover 90% with 100 interpreted" 3 c.Cover.size;
  let c80 = Cover.compute ~x:0.8 ~total_insts:1000 regions in
  check_int "80% needs two" 2 c80.Cover.size;
  check_true "achievable" c80.Cover.achievable;
  check_int "covered" 800 c80.Cover.covered_insts

let cover_unachievable () =
  let regions = [ region_with_execution ~id:0 ~start:0 ~executed:100 ] in
  let c = Cover.compute ~x:0.9 ~total_insts:1000 regions in
  check_true "not achievable" (not c.Cover.achievable);
  check_int "all regions consumed" 1 c.Cover.size

let cover_greedy_order () =
  (* The greedy pick must use the biggest regions first regardless of
     selection order. *)
  let regions =
    [
      region_with_execution ~id:0 ~start:0 ~executed:10;
      region_with_execution ~id:1 ~start:10 ~executed:990;
    ]
  in
  let c = Cover.compute ~x:0.9 ~total_insts:1000 regions in
  check_int "one big region suffices" 1 c.Cover.size

let cover_monotone_in_x () =
  let regions =
    List.init 10 (fun i -> region_with_execution ~id:i ~start:(i * 10) ~executed:100)
  in
  let sizes =
    List.map (fun x -> (Cover.compute ~x ~total_insts:1000 regions).Cover.size)
      [ 0.1; 0.3; 0.5; 0.7; 0.9; 1.0 ]
  in
  check_true "cover size grows with x" (List.sort compare sizes = sizes)

let cover_invalid_x () =
  check_true "x out of range rejected"
    (try
       ignore (Cover.compute ~x:1.5 ~total_insts:100 []);
       false
     with Invalid_argument _ -> true)

(* Exit domination on a constructed scenario. *)

let domination_scenario () =
  (* R = [a], exits from a to s_entry; S = [s]; edge profile says a is the
     only executed predecessor of s. *)
  let a = mk 0 4 (Terminator.Cond 10) in
  let s = mk 10 6 Terminator.Return in
  let r =
    Region.of_spec ~id:0 ~selected_at:0
      (Region.spec_of_path ~kind:Region.Trace { Region.blocks = [ a ]; final_next = None })
  in
  let s_region =
    Region.of_spec ~id:1 ~selected_at:1
      (Region.spec_of_path ~kind:Region.Trace { Region.blocks = [ s ]; final_next = None })
  in
  Region.record_exit r ~from:0 ~tgt:10;
  let edges = Edge_profile.create () in
  Edge_profile.record edges ~src:0 ~dst:10;
  let summary =
    Exit_domination.analyze ~regions:[ r; s_region ] ~preds:(Edge_profile.preds edges)
  in
  check_int "one dominated region" 1 summary.Exit_domination.n_dominated;
  (match summary.Exit_domination.verdicts with
  | [ v ] ->
    check_int "S is dominated" 1 v.Exit_domination.dominated.Region.id;
    check_int "R dominates" 0 v.Exit_domination.dominator.Region.id;
    check_int "no shared blocks" 0 v.Exit_domination.dup_insts
  | _ -> Alcotest.fail "expected exactly one verdict");
  check_true "fraction is half" (abs_float (summary.Exit_domination.dominated_fraction -. 0.5) < 1e-9)

let domination_needs_selection_order () =
  (* Same scenario, but S selected before R: not dominated. *)
  let a = mk 0 4 (Terminator.Cond 10) in
  let s = mk 10 6 Terminator.Return in
  let r =
    Region.of_spec ~id:1 ~selected_at:1
      (Region.spec_of_path ~kind:Region.Trace { Region.blocks = [ a ]; final_next = None })
  in
  let s_region =
    Region.of_spec ~id:0 ~selected_at:0
      (Region.spec_of_path ~kind:Region.Trace { Region.blocks = [ s ]; final_next = None })
  in
  Region.record_exit r ~from:0 ~tgt:10;
  let edges = Edge_profile.create () in
  Edge_profile.record edges ~src:0 ~dst:10;
  let summary =
    Exit_domination.analyze ~regions:[ r; s_region ] ~preds:(Edge_profile.preds edges)
  in
  check_int "selection order matters" 0 summary.Exit_domination.n_dominated

let domination_blocked_by_second_pred () =
  let a = mk 0 4 (Terminator.Cond 10) in
  let s = mk 10 6 Terminator.Return in
  let r =
    Region.of_spec ~id:0 ~selected_at:0
      (Region.spec_of_path ~kind:Region.Trace { Region.blocks = [ a ]; final_next = None })
  in
  let s_region =
    Region.of_spec ~id:1 ~selected_at:1
      (Region.spec_of_path ~kind:Region.Trace { Region.blocks = [ s ]; final_next = None })
  in
  Region.record_exit r ~from:0 ~tgt:10;
  let edges = Edge_profile.create () in
  Edge_profile.record edges ~src:0 ~dst:10;
  Edge_profile.record edges ~src:50 ~dst:10;
  let summary =
    Exit_domination.analyze ~regions:[ r; s_region ] ~preds:(Edge_profile.preds edges)
  in
  check_int "second executed predecessor blocks domination" 0 summary.Exit_domination.n_dominated

let domination_counts_duplication () =
  (* S shares a block with its dominator. *)
  let a = mk 0 4 (Terminator.Cond 10) in
  let shared = mk 20 5 Terminator.Return in
  let s = mk 10 6 Terminator.Fallthrough in
  let sh2 = mk 16 1 (Terminator.Jump 20) in
  let r =
    Region.of_spec ~id:0 ~selected_at:0
      (Region.spec_of_path ~kind:Region.Trace
         { Region.blocks = [ a; shared ]; final_next = None })
  in
  let s_region =
    Region.of_spec ~id:1 ~selected_at:1
      (Region.spec_of_path ~kind:Region.Trace
         { Region.blocks = [ s; sh2; shared ]; final_next = None })
  in
  Region.record_exit r ~from:0 ~tgt:10;
  let edges = Edge_profile.create () in
  Edge_profile.record edges ~src:0 ~dst:10;
  let summary =
    Exit_domination.analyze ~regions:[ r; s_region ] ~preds:(Edge_profile.preds edges)
  in
  check_int "duplicated instructions counted" 5 summary.Exit_domination.dup_insts

(* Aggregation helpers *)

let aggregate_basics () =
  check_true "ratio" (Aggregate.ratio 3.0 4.0 = 0.75);
  check_true "ratio by zero" (Aggregate.ratio 3.0 0.0 = 0.0);
  check_true "ratio_int" (Aggregate.ratio_int 1 2 = 0.5);
  check_true "mean" (Aggregate.mean [ 1.0; 2.0; 3.0 ] = 2.0);
  check_true "mean empty" (Aggregate.mean [] = 0.0);
  check_true "geomean" (abs_float (Aggregate.geomean [ 1.0; 4.0 ] -. 2.0) < 1e-9);
  check_true "geomean skips nonpositive" (abs_float (Aggregate.geomean [ 0.0; 4.0 ] -. 4.0) < 1e-9);
  Alcotest.(check string) "percent change" "-18.0%" (Aggregate.percent_change 0.82)

(* Run_metrics end-to-end sanity on a real run. *)

let run_metrics_consistency () =
  let result = run Policies.net (figure2 ()) in
  let m = Run_metrics.of_result result in
  check_true "hit rate in range" (m.Run_metrics.hit_rate >= 0.0 && m.Run_metrics.hit_rate <= 1.0);
  check_true "cover no larger than region count" (m.Run_metrics.cover_90 <= m.Run_metrics.n_regions);
  check_true "expansion at least one inst per region"
    (m.Run_metrics.code_expansion >= m.Run_metrics.n_regions);
  check_true "cache estimate consistent"
    (m.Run_metrics.est_cache_bytes
    = (m.Run_metrics.code_expansion * Run_metrics.inst_bytes)
      + (m.Run_metrics.n_stubs * Run_metrics.stub_bytes));
  check_true "spanned ratio in range"
    (m.Run_metrics.spanned_cycle_ratio >= 0.0 && m.Run_metrics.spanned_cycle_ratio <= 1.0)

let qcheck_cover_bounds =
  QCheck.Test.make ~name:"cover size bounded by region count" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 20) (int_range 0 1_000))
    (fun executions ->
      let regions =
        List.mapi (fun i e -> region_with_execution ~id:i ~start:(i * 10) ~executed:e) executions
      in
      let total = max 1 (List.fold_left ( + ) 0 executions) in
      let c = Cover.compute ~x:0.9 ~total_insts:total regions in
      c.Cover.size <= List.length regions)

let suite =
  [
    case "cover exact" cover_exact;
    case "cover unachievable" cover_unachievable;
    case "cover greedy order" cover_greedy_order;
    case "cover monotone in x" cover_monotone_in_x;
    case "cover invalid x" cover_invalid_x;
    case "domination scenario" domination_scenario;
    case "domination needs selection order" domination_needs_selection_order;
    case "domination blocked by second pred" domination_blocked_by_second_pred;
    case "domination counts duplication" domination_counts_duplication;
    case "aggregate basics" aggregate_basics;
    case "run metrics consistency" run_metrics_consistency;
    QCheck_alcotest.to_alcotest qcheck_cover_bounds;
  ]
