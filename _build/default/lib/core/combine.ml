open Regionsel_isa
module Region = Regionsel_engine.Region
module Context = Regionsel_engine.Context
module Params = Regionsel_engine.Params

let rejoin_passes = ref 0
let rejoin_multi = ref 0
let rejoin_pass_total () = !rejoin_passes
let rejoin_multi_pass_total () = !rejoin_multi

let build_region (ctx : Context.t) ~entry ~observations =
  match observations with
  | [] -> None
  | _ ->
    let cfg = Trace_cfg.create ~entry in
    List.iter
      (fun obs ->
        if not (Addr.equal (Compact_trace.entry obs) entry) then
          invalid_arg "Combine.build_region: observation entry mismatch";
        Trace_cfg.add_path cfg (Compact_trace.decode ctx.Context.program obs))
      observations;
    let t_min = min ctx.Context.params.Params.combine_t_min (Trace_cfg.n_paths cfg) in
    Trace_cfg.mark_frequent cfg ~t_min;
    let passes = Trace_cfg.mark_rejoining_paths cfg in
    rejoin_passes := !rejoin_passes + max passes 1;
    if passes > 1 then incr rejoin_multi;
    let layout =
      if ctx.Context.params.Params.combined_layout_hot_first then `Hot_first
      else `Address_order
    in
    Some (Trace_cfg.to_spec ~layout cfg)
