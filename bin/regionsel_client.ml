(* Client for the region-selection daemon: stream a recorded event file
   into a tenant session, or run a control command.

   Exit codes: 0 = done, 2 = CLI error, 4 = I/O error, 5 = corrupt
   recording, 6 = server rejected the request (admission or protocol). *)

open Cmdliner
module Client = Regionsel_serve.Client
module Proto = Regionsel_serve.Proto
module Persist = Regionsel_persist.Persist

let with_error_reporting f =
  try f () with
  | Client.Rejected { code; detail } ->
    Printf.eprintf "rejected: %s: %s\n%!" (Proto.reject_code_to_string code) detail;
    exit 6
  | Proto.Protocol_error msg ->
    Printf.eprintf "protocol error: %s\n%!" msg;
    exit 6
  | Sys_error msg ->
    Printf.eprintf "i/o error: %s\n%!" msg;
    exit 4
  | Unix.Unix_error (err, fn, arg) ->
    Printf.eprintf "i/o error: %s: %s%s\n%!" fn (Unix.error_message err)
      (if arg = "" then "" else " (" ^ arg ^ ")");
    exit 4
  | Persist.Hard_corruption msg ->
    Printf.eprintf "recording hard corruption: %s\n%!" msg;
    exit 5
  | Invalid_argument msg ->
    Printf.eprintf "error: %s\n%!" msg;
    exit 2

let socket_arg =
  let doc = "The daemon's Unix-domain socket path." in
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let stream_cmd =
  let run socket_path tenant bench policy seed steps events_in chunk truncate_at =
    with_error_reporting @@ fun () ->
    match
      Client.stream_file ?chunk ?truncate_at ~socket_path ~tenant ~bench ~policy ~seed
        ~max_steps:(Option.value steps ~default:0) ~path:events_in ()
    with
    | Client.Finished json -> print_endline json
    | Client.Truncated n -> Printf.eprintf "disconnected after %d events (no fin)\n%!" n
  in
  let tenant_arg =
    let doc = "Tenant name (the session identity stem)." in
    Arg.(required & opt (some string) None & info [ "tenant" ] ~docv:"NAME" ~doc)
  in
  let bench_arg =
    let doc = "Benchmark the recording was made from." in
    Arg.(required & opt (some string) None & info [ "b"; "bench" ] ~docv:"NAME" ~doc)
  in
  let policy_arg =
    let doc = "Region-selection policy for the session." in
    Arg.(value & opt string "net" & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed the recording was made with." in
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let steps_arg =
    let doc = "Step budget (default: the bench's standard budget)." in
    Arg.(value & opt (some int) None & info [ "n"; "steps" ] ~docv:"N" ~doc)
  in
  let events_in_arg =
    let doc = "REVL branch-event recording to stream (regionsel_sim record)." in
    Arg.(required & opt (some string) None & info [ "events-in" ] ~docv:"FILE" ~doc)
  in
  let chunk_arg =
    let doc = "Events per batch frame." in
    Arg.(value & opt (some int) None & info [ "chunk" ] ~docv:"N" ~doc)
  in
  let truncate_arg =
    let doc =
      "Disconnect (without fin) after sending at most $(docv) events — the session \
       stays resumable; used to exercise snapshot/restore."
    in
    Arg.(value & opt (some int) None & info [ "truncate-at" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:"Stream a recorded event file into a tenant session; print the Result JSON")
    Term.(
      const run $ socket_arg $ tenant_arg $ bench_arg $ policy_arg $ seed_arg $ steps_arg
      $ events_in_arg $ chunk_arg $ truncate_arg)

let ctrl_cmd =
  let run socket_path cmd =
    with_error_reporting @@ fun () ->
    match Client.ctrl ~socket_path (String.concat " " cmd) with
    | Ok text -> print_string text
    | Error (code, detail) ->
      Printf.eprintf "rejected: %s: %s\n%!" (Proto.reject_code_to_string code) detail;
      exit 6
  in
  let cmd_arg =
    let doc = "Control command: ping, status, prom, jsonl [N], shutdown." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"CMD" ~doc)
  in
  Cmd.v
    (Cmd.info "ctrl" ~doc:"Run one control command against a running daemon")
    Term.(const run $ socket_arg $ cmd_arg)

let main =
  Cmd.group
    (Cmd.info "regionsel_client" ~version:"1.0.0"
       ~doc:"Client for the streaming region-selection daemon")
    [ stream_cmd; ctrl_cmd ]

let () = exit (Cmd.eval main)
