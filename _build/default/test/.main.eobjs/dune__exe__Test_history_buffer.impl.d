test/test_history_buffer.ml: Alcotest Fixtures Gen List QCheck QCheck_alcotest Regionsel_core
