lib/metrics/region_profile.ml: Addr Format Hashtbl List Regionsel_engine Regionsel_isa
