(* Fault injection and recovery: deterministic schedules, invalidation and
   blacklist counters, async exits, the bailout watchdog, and the
   degradation/recovery behaviour the bench fault section asserts. *)

module Spec = Regionsel_workload.Spec
module Suite = Regionsel_workload.Suite
module Image = Regionsel_workload.Image
module Simulator = Regionsel_engine.Simulator
module Faults = Regionsel_engine.Faults
module Params = Regionsel_engine.Params
module Stats = Regionsel_engine.Stats
module Run_metrics = Regionsel_metrics.Run_metrics
module Policies = Regionsel_core.Policies
open Fixtures

let with_faults ?(base = Params.default) profile = { base with Params.faults = Some profile }

(* A profile sized for 100k-step test runs: SMC bursts at 10k, 40k and 70k
   leave a quiet tail to recover in. *)
let smc_profile =
  {
    Params.no_faults with
    Params.first_fault_step = 10_000;
    smc_period = 30_000;
    smc_span_blocks = 4;
  }

let run_faulty ?(policy = "net") ?(seed = 1L) ?(max_steps = 100_000) ~profile image =
  Simulator.run
    ~params:(with_faults profile)
    ~seed
    ~policy:(Option.get (Policies.find policy))
    ~max_steps image

(* Schedule construction *)

let schedule_is_exact () =
  let image = figure3 () in
  let profile =
    { Params.no_faults with Params.first_fault_step = 50; smc_period = 100; smc_span_blocks = 1 }
  in
  let f =
    Faults.create ~profile ~seed:1L ~program:image.Image.program ~max_steps:400
  in
  check_int "four events" 4 (Faults.n_events f);
  let steps = ref [] in
  while Faults.next_step f < max_int do
    steps := Faults.next_step f :: !steps;
    (match Faults.pop f with
    | Faults.Smc_write _ -> ()
    | _ -> Alcotest.fail "expected an SMC event");
    ()
  done;
  Alcotest.(check (list int)) "exact periodic steps" [ 50; 150; 250; 350 ] (List.rev !steps)

let schedule_is_deterministic () =
  let image = figure3 () in
  let mk () =
    Faults.create ~profile:(Option.get (Params.fault_profile "mixed")) ~seed:9L
      ~program:image.Image.program ~max_steps:500_000
  in
  let a = mk () and b = mk () in
  check_int "same length" (Faults.n_events a) (Faults.n_events b);
  while Faults.next_step a < max_int do
    check_int "same step" (Faults.next_step a) (Faults.next_step b);
    let ea = Faults.pop a and eb = Faults.pop b in
    Alcotest.(check string) "same event" (Faults.label ea) (Faults.label eb)
  done

(* End-to-end fault runs *)

let fault_runs_are_deterministic () =
  let spec = Option.get (Suite.find "gzip") in
  let image = Spec.image spec in
  let m () = Run_metrics.of_result (run_faulty ~policy:"lei" ~profile:smc_profile image) in
  let a = m () and b = m () in
  if a <> b then Alcotest.fail "two identical fault runs diverged"

let counters_populated () =
  let result = run_faulty ~profile:smc_profile (figure4 ()) in
  let m = Run_metrics.of_result result in
  check_true "faults injected" (m.Run_metrics.faults_injected > 0);
  check_true "regions invalidated" (m.Run_metrics.invalidations > 0);
  check_true "invalidated entries blacklisted" (m.Run_metrics.blacklisted_high_water > 0);
  match result.Simulator.fault_log with
  | None -> Alcotest.fail "fault run must carry a log"
  | Some log ->
    check_int "log records every event" m.Run_metrics.faults_injected
      (List.length (List.filter (fun (_, l) -> l <> "bailout") log.Faults.events));
    check_true "watchdog sampled the run" (List.length log.Faults.samples > 10)

let clean_run_has_no_log () =
  let result = run Policies.net (figure3 ()) in
  check_true "no fault log on clean runs" (result.Simulator.fault_log = None);
  check_int "no faults" 0 result.Simulator.stats.Stats.faults_injected

let async_exits_counted () =
  let profile =
    { Params.no_faults with Params.first_fault_step = 5_000; async_exit_period = 2_000 }
  in
  let result = run_faulty ~profile (simple_loop ~trip:200_000 ()) in
  check_true "async exits left region mode"
    (result.Simulator.stats.Stats.async_exits > 0);
  (* A spurious exit retires nothing, so the system re-enters the still-live
     region and the hit rate stays high. *)
  check_true "hit rate survives async exits"
    ((Run_metrics.of_result result).Run_metrics.hit_rate > 0.9)

let translation_failures_surface_as_rejects () =
  let profile =
    {
      Params.no_faults with
      Params.first_fault_step = 100;
      translation_failure_period = 10_000;
      translation_failure_window = 2_000;
    }
  in
  let result = run_faulty ~profile ~max_steps:50_000 (figure4 ()) in
  let m = Run_metrics.of_result result in
  check_true "rejected installs counted" (m.Run_metrics.install_rejects > 0);
  check_true "run still makes progress" (m.Run_metrics.hit_rate > 0.0)

(* Per-burst recovery: after every flush/invalidation burst the windowed
   cached-instruction share must climb back to >= 80% of its pre-burst
   level before the next burst (the bench fault section's acceptance
   criterion, asserted here on one workload per policy). *)
let recovers_after_bursts () =
  List.iter
    (fun policy ->
      let result = run_faulty ~policy ~profile:smc_profile (figure4 ~iters:200_000 ()) in
      let log = Option.get result.Simulator.fault_log in
      let samples = Array.of_list log.Faults.samples in
      let burst_steps =
        List.filter_map
          (fun (s, l) -> if l = "smc" || l = "shock" || l = "bailout" then Some s else None)
          log.Faults.events
      in
      (* Coalesce cascades — a burst plus the watchdog bailout it provokes
         is one disruption, and recovery is only expected after its last
         event (plus the bailout cooldown it may impose). *)
      let gap =
        Params.default.Params.bailout_cooldown + Params.default.Params.watchdog_window
      in
      let bursts =
        List.fold_left
          (fun groups s ->
            match groups with
            | (first, last) :: rest when s - last <= gap -> (first, s) :: rest
            | _ -> (s, s) :: groups)
          [] burst_steps
        |> List.rev
      in
      List.iteri
        (fun i (first, last) ->
          let next_burst =
            match List.nth_opt bursts (i + 1) with Some (f, _) -> f | None -> max_int
          in
          let pre =
            Array.fold_left
              (fun acc (s, share) ->
                if s < first && s >= first - (3 * Params.default.Params.watchdog_window) then
                  max acc share
                else acc)
              0.0 samples
          in
          let post =
            Array.fold_left
              (fun acc (s, share) ->
                if s > last && s <= next_burst then max acc share else acc)
              0.0 samples
          in
          let has_tail = Array.exists (fun (s, _) -> s > last && s <= next_burst) samples in
          if has_tail && pre > 0.0 && post < 0.8 *. pre then
            Alcotest.failf "%s: share %.3f after burst at %d never recovered (pre %.3f)"
              policy post first pre)
        bursts)
    [ "net"; "lei"; "combined-lei" ]

let watchdog_bails_out_under_thrash () =
  (* SMC writes every 400 steps spanning most of the program: regions die
     as fast as they form, the windowed share collapses, and the watchdog
     must flush and fall back to interpretation. *)
  let profile =
    {
      Params.no_faults with
      Params.first_fault_step = 4_000;
      smc_period = 400;
      smc_span_blocks = 64;
    }
  in
  let params =
    { (with_faults profile) with Params.blacklist_base_cooldown = 2_000 }
  in
  let result =
    Simulator.run ~params ~seed:1L
      ~policy:(Option.get (Policies.find "net"))
      ~max_steps:100_000
      (simple_loop ~trip:200_000 ())
  in
  let m = Run_metrics.of_result result in
  check_true "watchdog bailed out" (m.Run_metrics.bailouts > 0);
  check_true "cooldown steps counted" (m.Run_metrics.recovery_steps > 0);
  check_true "bailout flushed the cache" (m.Run_metrics.cache_flushes > 0)

(* Crash events interleave with every other stream without disturbing the
   schedule invariants: construction stays deterministic and the merged
   schedule stays step-sorted. *)
let crash_schedule_deterministic_and_sorted () =
  let image = figure3 () in
  let profile =
    {
      (Option.get (Params.fault_profile "mixed")) with
      Params.first_fault_step = 5_000;
      crash_period = 17_000;
    }
  in
  let mk () =
    Faults.create ~profile ~seed:11L ~program:image.Image.program ~max_steps:400_000
  in
  let a = mk () and b = mk () in
  check_int "same length" (Faults.n_events a) (Faults.n_events b);
  check_true "schedule not empty" (Faults.n_events a > 0);
  let crashes = ref 0 and others = ref 0 and last = ref min_int in
  while Faults.next_step a < max_int do
    let step = Faults.next_step a in
    check_true "schedule is step-sorted" (step >= !last);
    last := step;
    check_int "same step as twin" step (Faults.next_step b);
    let ea = Faults.pop a and eb = Faults.pop b in
    Alcotest.(check string) "same event as twin" (Faults.label ea) (Faults.label eb);
    match ea with Faults.Crash -> incr crashes | _ -> incr others
  done;
  check_true "crash events scheduled" (!crashes > 1);
  check_true "other streams still fire alongside crashes" (!others > 0)

(* An end-to-end crash run: the warm state dies and re-forms, and doing it
   twice yields identical metrics (crash recovery is as reproducible as a
   clean run). *)
let crash_run_recovers_deterministically () =
  let profile = Option.get (Params.fault_profile "crash") in
  let profile = { profile with Params.first_fault_step = 20_000; crash_period = 30_000 } in
  let spec = Option.get (Suite.find "gzip") in
  let image = Spec.image spec in
  let m () =
    Run_metrics.of_result (run_faulty ~policy:"net" ~max_steps:120_000 ~profile image)
  in
  let a = m () and b = m () in
  if a <> b then Alcotest.fail "two identical crash runs diverged";
  check_true "crashes were injected" (a.Run_metrics.faults_injected >= 3);
  check_true "cache was flushed by crashes" (a.Run_metrics.cache_flushes >= 3);
  check_true "regions re-formed after crashes" (a.Run_metrics.n_regions > 0)

let suite =
  [
    case "schedule is exact" schedule_is_exact;
    case "schedule is deterministic" schedule_is_deterministic;
    case "crash schedule deterministic and step-sorted" crash_schedule_deterministic_and_sorted;
    case "crash run recovers deterministically" crash_run_recovers_deterministically;
    case "fault runs are deterministic" fault_runs_are_deterministic;
    case "counters populated" counters_populated;
    case "clean run has no log" clean_run_has_no_log;
    case "async exits counted" async_exits_counted;
    case "translation failures surface as rejects" translation_failures_surface_as_rejects;
    case "recovers after bursts" recovers_after_bursts;
    case "watchdog bails out under thrash" watchdog_bails_out_under_thrash;
  ]
