lib/workload/characterize.mli: Format Image
