open Regionsel_isa
module Region = Regionsel_engine.Region

type t = { entry : Addr.t; data : bytes; n_bits : int }

let entry t = t.entry
let size_bytes t = Bytes.length t.data

(* Branch codes, per Figure 14. *)
let code_end = 0
let code_indirect = 1
let code_not_taken = 2
let code_taken = 3

let encode (path : Region.path) =
  match path.blocks with
  | [] -> invalid_arg "Compact_trace.encode: empty path"
  | first :: _ ->
    let w = Bitbuf.Writer.create () in
    let inconsistent b s =
      invalid_arg
        (Printf.sprintf "Compact_trace.encode: %s cannot transfer to %s" (Addr.to_string
           (Block.last b)) (Addr.to_string s))
    in
    let emit b succ =
      match b.Block.term with
      | Terminator.Fallthrough | Terminator.Halt -> (
        match succ with
        | Some s when not (Addr.equal s (Block.fall_addr b)) -> inconsistent b s
        | Some _ | None -> ())
      | Terminator.Cond tgt -> (
        match succ with
        | Some s when Addr.equal s tgt -> Bitbuf.Writer.add_bits2 w code_taken
        | Some s when Addr.equal s (Block.fall_addr b) ->
          Bitbuf.Writer.add_bits2 w code_not_taken
        | Some s -> inconsistent b s
        | None -> ())
      | Terminator.Jump tgt | Terminator.Call tgt -> (
        match succ with
        | Some s when Addr.equal s tgt -> Bitbuf.Writer.add_bits2 w code_taken
        | Some s -> inconsistent b s
        | None -> ())
      | Terminator.Return | Terminator.Indirect_jump | Terminator.Indirect_call -> (
        match succ with
        | Some s ->
          Bitbuf.Writer.add_bits2 w code_indirect;
          Bitbuf.Writer.add_uint32 w s
        | None -> ())
    in
    let rec go = function
      | [] -> assert false
      | [ last ] ->
        emit last path.Region.final_next;
        last
      | b :: (c :: _ as rest) ->
        emit b (Some c.Block.start);
        go rest
    in
    let last = go path.blocks in
    Bitbuf.Writer.add_bits2 w code_end;
    Bitbuf.Writer.add_uint32 w (Block.last last);
    {
      entry = first.Block.start;
      data = Bitbuf.Writer.contents w;
      n_bits = Bitbuf.Writer.length_bits w;
    }

(* Checkpoint support: the encoding is already a flat byte string, so a
   trace serializes as its geometry plus raw bytes. *)

let save t emit =
  emit t.entry;
  emit t.n_bits;
  emit (Bytes.length t.data);
  Bytes.iter (fun c -> emit (Char.code c)) t.data

let load read =
  let entry = read () in
  let n_bits = read () in
  let len = read () in
  if len < 0 || n_bits < 0 || n_bits > len * 8 then
    failwith "Compact_trace.load: invalid geometry";
  let data = Bytes.create len in
  for i = 0 to len - 1 do
    let c = read () in
    if c < 0 || c > 255 then failwith "Compact_trace.load: byte out of range";
    Bytes.set data i (Char.chr c)
  done;
  { entry; data; n_bits }

type token = Taken | Not_taken | Indirect of Addr.t

let read_tokens t =
  let r = Bitbuf.Reader.create t.data ~n_bits:t.n_bits in
  let rec collect acc =
    let code = Bitbuf.Reader.read_bits2 r in
    if code = code_end then List.rev acc, Bitbuf.Reader.read_uint32 r
    else if code = code_indirect then collect (Indirect (Bitbuf.Reader.read_uint32 r) :: acc)
    else if code = code_not_taken then collect (Not_taken :: acc)
    else collect (Taken :: acc)
  in
  collect []

let errorf fmt = Format.kasprintf invalid_arg fmt

let decode program t =
  let tokens, end_addr = read_tokens t in
  let tokens = ref tokens in
  let pop () =
    match !tokens with
    | tok :: rest ->
      tokens := rest;
      Some tok
    | [] -> None
  in
  let blocks = ref [] in
  let final_next = ref None in
  let finished = ref false in
  let cur = ref t.entry in
  let steps = ref 0 in
  while not !finished do
    incr steps;
    if !steps > 1_000_000 then errorf "Compact_trace.decode: runaway walk from %a" Addr.pp t.entry;
    let b =
      match Program.block_at program !cur with
      | Some b -> b
      | None -> errorf "Compact_trace.decode: %a is not a block start" Addr.pp !cur
    in
    blocks := b :: !blocks;
    let succ =
      match b.Block.term with
      | Terminator.Fallthrough -> Some (Block.fall_addr b)
      | Terminator.Halt -> None
      | term -> (
        match pop () with
        | None ->
          (* The final branch's outcome was unknown to the encoder. *)
          if Block.last b <> end_addr then
            errorf "Compact_trace.decode: ran out of codes before %a" Addr.pp end_addr;
          None
        | Some tok -> (
          match term, tok with
          | Terminator.Cond tgt, Taken -> Some tgt
          | Terminator.Cond _, Not_taken -> Some (Block.fall_addr b)
          | (Terminator.Jump tgt | Terminator.Call tgt), Taken -> Some tgt
          | ( (Terminator.Return | Terminator.Indirect_jump | Terminator.Indirect_call),
              Indirect a ) -> Some a
          | _ ->
            errorf "Compact_trace.decode: code inconsistent with %a at %a" Terminator.pp term
              Addr.pp (Block.last b)))
    in
    if !tokens = [] && Block.last b = end_addr then begin
      final_next := succ;
      finished := true
    end
    else
      match succ with
      | Some a -> cur := a
      | None ->
        if Block.last b <> end_addr then
          errorf "Compact_trace.decode: walk stopped at %a but trace ends at %a" Addr.pp
            (Block.last b) Addr.pp end_addr;
        finished := true
  done;
  { Region.blocks = List.rev !blocks; final_next = !final_next }
