lib/engine/emitter.ml: Addr Array Block Format List Printf Region Regionsel_isa Terminator
