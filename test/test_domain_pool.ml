module Domain_pool = Regionsel_engine.Domain_pool
open Fixtures

exception Boom of int

let ordering () =
  let tasks = List.init 100 Fun.id in
  let expected = List.map (fun i -> i * i) tasks in
  Alcotest.(check (list int))
    "results in submission order (4 domains)" expected
    (Domain_pool.map ~n_domains:4 (fun i -> i * i) tasks);
  Alcotest.(check (list int))
    "results in submission order (more domains than tasks)" expected
    (Domain_pool.map ~n_domains:64 (fun i -> i * i) tasks)

let inline_fallback () =
  (* n_domains = 1 must run inline on the calling domain: a task can then
     safely touch domain-local state such as this closure's ref. *)
  let self = Domain.self () in
  let saw = ref [] in
  let results =
    Domain_pool.map ~n_domains:1
      (fun i ->
        check_true "runs on the calling domain" (Domain.self () = self);
        saw := i :: !saw;
        i + 1)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "results" [ 2; 3; 4 ] results;
  Alcotest.(check (list int)) "left to right" [ 3; 2; 1 ] !saw

let empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Domain_pool.map ~n_domains:4 Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Domain_pool.map ~n_domains:4 Fun.id [ 7 ])

let exception_propagation () =
  let raised =
    try
      ignore
        (Domain_pool.map ~n_domains:4
           (fun i -> if i = 13 then raise (Boom i) else i)
           (List.init 40 Fun.id));
      None
    with Boom i -> Some i
  in
  Alcotest.(check (option int)) "exception reaches the caller" (Some 13) raised;
  (* Inline path too. *)
  let raised =
    try
      ignore (Domain_pool.map ~n_domains:1 (fun i -> raise (Boom i)) [ 5 ]);
      None
    with Boom i -> Some i
  in
  Alcotest.(check (option int)) "inline exception reaches the caller" (Some 5) raised

let default_n_domains_env () =
  (* The env override is read per call, so exercise both directions. *)
  let with_env v f =
    let old = Sys.getenv_opt "REGIONSEL_DOMAINS" in
    Unix.putenv "REGIONSEL_DOMAINS" v;
    (* No unsetenv in the stdlib: restore a benign "1" when it was unset. *)
    Fun.protect f ~finally:(fun () ->
        Unix.putenv "REGIONSEL_DOMAINS" (Option.value old ~default:"1"))
  in
  with_env "3" (fun () -> check_int "env respected" 3 (Domain_pool.default_n_domains ()));
  with_env "junk" (fun () ->
      check_true "bad env rejected"
        (try
           ignore (Domain_pool.default_n_domains ());
           false
         with Invalid_argument _ -> true));
  (* Zero and negative clamp to sequential rather than erroring, so scripts
     can force single-domain runs without knowing the validation rules. *)
  with_env "0" (fun () -> check_int "0 clamps to 1" 1 (Domain_pool.default_n_domains ()));
  with_env "-3" (fun () -> check_int "-3 clamps to 1" 1 (Domain_pool.default_n_domains ()));
  with_env " 2 " (fun () ->
      check_int "whitespace trimmed" 2 (Domain_pool.default_n_domains ()))

let iter_covers_all () =
  (* Every element visited exactly once, effects visible after the join. *)
  let n = 100 in
  let hits = Array.make n (Atomic.make 0) in
  for i = 0 to n - 1 do
    hits.(i) <- Atomic.make 0
  done;
  Domain_pool.iter ~n_domains:4 (fun i -> Atomic.incr hits.(i)) (Array.init n Fun.id);
  Array.iter (fun a -> check_int "visited exactly once" 1 (Atomic.get a)) hits

let iter_inline_and_empty () =
  Domain_pool.iter ~n_domains:4 (fun _ -> Alcotest.fail "called on empty") [||];
  let self = Domain.self () in
  let saw = ref [] in
  Domain_pool.iter ~n_domains:1
    (fun i ->
      check_true "runs on the calling domain" (Domain.self () = self);
      saw := i :: !saw)
    [| 1; 2; 3 |];
  Alcotest.(check (list int)) "inline left to right" [ 3; 2; 1 ] !saw;
  (* A single element never spawns either, whatever n_domains says. *)
  let saw_one = ref 0 in
  Domain_pool.iter ~n_domains:8 (fun i -> saw_one := i) [| 42 |];
  check_int "singleton" 42 !saw_one

let iter_exception () =
  let raised =
    try
      Domain_pool.iter ~n_domains:4
        (fun i -> if i = 13 then raise (Boom i))
        (Array.init 40 Fun.id);
      None
    with Boom i -> Some i
  in
  Alcotest.(check (option int)) "exception reaches the caller" (Some 13) raised

let suite =
  [
    case "ordering" ordering;
    case "n_domains = 1 runs inline" inline_fallback;
    case "empty and singleton" empty_and_singleton;
    case "exception propagation" exception_propagation;
    case "REGIONSEL_DOMAINS env" default_n_domains_env;
    case "iter covers all elements" iter_covers_all;
    case "iter inline, empty and singleton" iter_inline_and_empty;
    case "iter exception propagation" iter_exception;
  ]
