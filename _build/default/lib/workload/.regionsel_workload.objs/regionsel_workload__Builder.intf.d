lib/workload/builder.mli: Behavior Image Regionsel_isa
