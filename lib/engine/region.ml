open Regionsel_isa

type kind = Trace | Combined | Method

type path = { blocks : Block.t list; final_next : Addr.t option }

let path_insts path = List.fold_left (fun acc b -> acc + b.Block.size) 0 path.blocks

type spec = {
  entry : Addr.t;
  nodes : Block.t list;
  edges : (Addr.t * Addr.t) list;
  copied_insts : int;
  kind : kind;
  aux_entries : Addr.t list;
  layout_hint : Addr.t list;
}

let spec_of_path ~kind path =
  match path.blocks with
  | [] -> invalid_arg "Region.spec_of_path: empty path"
  | first :: _ ->
    let entry = first.Block.start in
    let nodes = ref [] in
    let node_set = Addr.Table.create 16 in
    List.iter
      (fun b ->
        if not (Addr.Table.mem node_set b.Block.start) then begin
          Addr.Table.replace node_set b.Block.start ();
          nodes := b :: !nodes
        end)
      path.blocks;
    let rec consecutive acc = function
      | a :: (b :: _ as rest) -> consecutive ((a.Block.start, b.Block.start) :: acc) rest
      | [ last ] ->
        (* Close the region when execution continued to a block of the path:
           the spanned-cycle case when that block is the entry. *)
        (match path.final_next with
        | Some next when Addr.Table.mem node_set next -> (last.Block.start, next) :: acc
        | Some _ | None -> acc)
      | [] -> acc
    in
    let edges = List.sort_uniq compare (consecutive [] path.blocks) in
    let nodes = List.rev !nodes in
    let layout_hint = List.map (fun (b : Block.t) -> b.Block.start) nodes in
    (* A block revisited within one path (possible for LEI's cyclic paths)
       is stored once: the region is an automaton over distinct blocks, so
       its cache footprint counts each selected block once.  Cross-region
       duplication — the paper's code-expansion signal — is unaffected. *)
    let copied_insts = List.fold_left (fun acc (b : Block.t) -> acc + b.Block.size) 0 nodes in
    { entry; nodes; edges; copied_insts; kind; aux_entries = []; layout_hint }

type t = {
  id : int;
  entry : Addr.t;
  kind : kind;
  node_index : Block.t Addr.Table.t;
  n_nodes : int;
  copied_insts : int;
  n_stubs : int;
  spans_cycle : bool;
  selected_at : int;
  mutable entries : int;
  mutable cycle_iters : int;
  mutable exits : int;
  mutable insts_executed : int;
  exit_log : Flat_tbl.t; (* key [(from lsl 32) lor tgt] -> count, like edge_index *)
  edge_index : Flat_tbl.t; (* (src lsl 32) lor dst -> 1 — no per-query tuple *)
  aux_entries : Addr.Set.t;
  mutable cache_base : int;
  block_offsets : Flat_tbl.t;
}

let pack_edge ~src ~dst = (src lsl 32) lor dst

let count_stubs ~node_index ~edge_index nodes =
  let internal src dst = Flat_tbl.mem edge_index (pack_edge ~src ~dst) in
  let stub_count b =
    let s = b.Block.start in
    match b.Block.term with
    | Terminator.Cond tgt ->
      (if internal s tgt then 0 else 1) + if internal s (Block.fall_addr b) then 0 else 1
    | Terminator.Jump tgt | Terminator.Call tgt -> if internal s tgt then 0 else 1
    | Terminator.Fallthrough -> if internal s (Block.fall_addr b) then 0 else 1
    | Terminator.Return | Terminator.Indirect_jump | Terminator.Indirect_call ->
      (* Predicted targets may be internal edges, but the mispredict path
         always needs a stub. *)
      1
    | Terminator.Halt -> 0
  in
  ignore node_index;
  List.fold_left (fun acc b -> acc + stub_count b) 0 nodes

let of_spec ~id ~selected_at spec =
  let node_index = Addr.Table.create (List.length spec.nodes * 2) in
  List.iter (fun b -> Addr.Table.replace node_index b.Block.start b) spec.nodes;
  if not (Addr.Table.mem node_index spec.entry) then
    invalid_arg "Region.of_spec: entry is not a node";
  let edge_index = Flat_tbl.create (List.length spec.edges * 2) in
  List.iter
    (fun (src, dst) ->
      if not (Addr.Table.mem node_index src && Addr.Table.mem node_index dst) then
        invalid_arg "Region.of_spec: edge endpoint is not a node";
      Flat_tbl.set edge_index (pack_edge ~src ~dst) 1)
    spec.edges;
  List.iter
    (fun a ->
      if not (Addr.Table.mem node_index a) then
        invalid_arg "Region.of_spec: aux entry is not a node")
    spec.aux_entries;
  let spans_cycle = List.exists (fun (_, dst) -> Addr.equal dst spec.entry) spec.edges in
  let n_stubs = count_stubs ~node_index ~edge_index spec.nodes in
  (* Lay the blocks out contiguously: the entry first, then the layout
     hint's order, then any remaining nodes in address order. *)
  let block_offsets = Flat_tbl.create (List.length spec.nodes * 2) in
  let hint_rank = Addr.Table.create 16 in
  List.iteri
    (fun i a -> if not (Addr.Table.mem hint_rank a) then Addr.Table.replace hint_rank a i)
    spec.layout_hint;
  let sorted_nodes =
    List.sort
      (fun (a : Block.t) (b : Block.t) ->
        let rank (x : Block.t) =
          if Addr.equal x.Block.start spec.entry then (-1, 0)
          else
            match Addr.Table.find_opt hint_rank x.Block.start with
            | Some i -> (0, i)
            | None -> (1, x.Block.start)
        in
        compare (rank a) (rank b))
      spec.nodes
  in
  let cursor = ref 0 in
  List.iter
    (fun (b : Block.t) ->
      if not (Flat_tbl.mem block_offsets b.Block.start) then begin
        Flat_tbl.set block_offsets b.Block.start !cursor;
        cursor := !cursor + (b.Block.size * 4)
      end)
    sorted_nodes;
  {
    id;
    entry = spec.entry;
    kind = spec.kind;
    node_index;
    n_nodes = Addr.Table.length node_index;
    copied_insts = spec.copied_insts;
    n_stubs;
    spans_cycle;
    selected_at;
    entries = 0;
    cycle_iters = 0;
    exits = 0;
    insts_executed = 0;
    exit_log = Flat_tbl.create 8;
    edge_index;
    aux_entries = Addr.Set.of_list spec.aux_entries;
    cache_base = -1;
    block_offsets;
  }

let mem_block t a = Addr.Table.mem t.node_index a
let find_block t a = Addr.Table.find_opt t.node_index a
let has_edge t ~src ~dst = Flat_tbl.mem t.edge_index (pack_edge ~src ~dst)

let nodes t =
  let all = Addr.Table.fold (fun _ b acc -> b :: acc) t.node_index [] in
  List.sort (fun a b -> Addr.compare a.Block.start b.Block.start) all

let record_entry t = t.entries <- t.entries + 1
let record_cycle t = t.cycle_iters <- t.cycle_iters + 1
let record_exec t n = t.insts_executed <- t.insts_executed + n

let record_exit t ~from ~tgt =
  t.exits <- t.exits + 1;
  Flat_tbl.bump t.exit_log (pack_edge ~src:from ~dst:tgt)

let exit_src key = key lsr 32
let exit_tgt key = key land 0xFFFF_FFFF

let exit_targets t =
  Flat_tbl.fold (fun key _ acc -> Addr.Set.add (exit_tgt key) acc) t.exit_log Addr.Set.empty

let exited_to t ~tgt =
  Flat_tbl.fold
    (fun key _ acc ->
      if Addr.equal tgt (exit_tgt key) then Addr.Set.add (exit_src key) acc else acc)
    t.exit_log Addr.Set.empty

let inst_bytes = 4
let stub_bytes = 10
let cache_bytes t = (t.copied_insts * inst_bytes) + (t.n_stubs * stub_bytes)

let set_cache_base t base = t.cache_base <- base

let block_cache_addr t a =
  if t.cache_base < 0 then None
  else
    let off = Flat_tbl.find t.block_offsets a in
    if off < 0 then None else Some (t.cache_base + off)

(* Allocation-free variant for the simulator's per-step icache model. *)
let block_cache_offset t a =
  if t.cache_base < 0 then -1
  else
    let off = Flat_tbl.find t.block_offsets a in
    if off < 0 then -1 else t.cache_base + off

let pp ppf t =
  let kind =
    match t.kind with Trace -> "trace" | Combined -> "region" | Method -> "method"
  in
  Format.fprintf ppf "@[<v>%s #%d entry=%a (%d blocks, %d insts, %d stubs%s)" kind t.id Addr.pp
    t.entry t.n_nodes t.copied_insts t.n_stubs
    (if t.spans_cycle then ", cyclic" else "");
  List.iter (fun b -> Format.fprintf ppf "@,  %a" Block.pp b) (nodes t);
  Format.fprintf ppf "@]"
