(* Compiled-region representation tests: cache-layout node numbering, the
   successor bitset (including multi-word rows), the block-id translation,
   offsets before and after installation, and the link-slot arrays. *)

open Regionsel_isa
module Region = Regionsel_engine.Region
open Fixtures

let mk start size term = Block.make ~start ~size ~term

let spec ?(kind = Region.Combined) ?(edges = []) ?(aux = []) ?(hint = []) ~entry nodes =
  {
    Region.entry;
    nodes;
    edges;
    copied_insts = List.fold_left (fun acc (b : Block.t) -> acc + b.Block.size) 0 nodes;
    kind;
    aux_entries = aux;
    layout_hint = hint;
  }

let starts region = List.map (fun (b : Block.t) -> b.Block.start) (Region.layout_blocks region)
let check_starts = Alcotest.(check (list int))

(* Four blocks, entry in the middle, a partial layout hint: the entry is
   node 0, hinted blocks follow in hint order, the rest in address order. *)
let layout_hint_ordering () =
  let nodes = [ mk 0 2 Terminator.Return; mk 16 3 Terminator.Return;
                mk 32 4 Terminator.Return; mk 48 5 Terminator.Return ] in
  let r = Region.of_spec ~id:0 ~selected_at:0 (spec ~entry:32 ~hint:[ 48; 16 ] nodes) in
  check_starts "entry, hint order, then address order" [ 32; 48; 16; 0 ] (starts r);
  check_int "entry is node 0" 0 (Region.node_id r 32);
  check_int "first hinted block is node 1" 1 (Region.node_id r 48);
  check_int "unhinted block comes last" 3 (Region.node_id r 0);
  check_int "non-node address has no node id" (-1) (Region.node_id r 100);
  (* [nodes] stays in address order regardless of layout. *)
  Alcotest.(check (list int)) "nodes are address-sorted" [ 0; 16; 32; 48 ]
    (List.map (fun (b : Block.t) -> b.Block.start) (Region.nodes r))

let entry_first_even_when_hinted_late () =
  (* A hint listing the entry late must not displace it from node 0. *)
  let nodes = [ mk 0 2 Terminator.Return; mk 16 3 Terminator.Return ] in
  let r = Region.of_spec ~id:0 ~selected_at:0 (spec ~entry:0 ~hint:[ 16; 0 ] nodes) in
  check_starts "entry stays first" [ 0; 16 ] (starts r);
  check_true "entry node is dispatchable" r.Region.node_is_entry.(0);
  check_true "interior node is not" (not r.Region.node_is_entry.(1))

let offsets_before_and_after_install () =
  let nodes = [ mk 0 2 Terminator.Return; mk 16 3 Terminator.Return ] in
  let r = Region.of_spec ~id:0 ~selected_at:0 (spec ~entry:0 nodes) in
  (* Layout offsets exist independently of installation... *)
  check_int "entry at offset 0" 0 (Region.block_offset r 0);
  check_int "second block follows the entry's copy" (2 * Region.inst_bytes)
    (Region.block_offset r 16);
  check_int "non-node offset is -1" (-1) (Region.block_offset r 100);
  (* ...but cache addresses do not exist until the cache places the region. *)
  check_int "no cache offset before install" (-1) (Region.block_cache_offset r 16);
  check_true "no cache addr before install" (Region.block_cache_addr r 16 = None);
  Region.set_cache_base r 1_000;
  check_int "cache offset after install" (1_000 + (2 * Region.inst_bytes))
    (Region.block_cache_offset r 16);
  check_true "cache addr after install"
    (Region.block_cache_addr r 0 = Some 1_000);
  check_int "non-node still -1 after install" (-1) (Region.block_cache_offset r 100)

let edge_queries_agree () =
  let nodes = [ mk 0 2 Terminator.Return; mk 16 3 Terminator.Return;
                mk 32 4 Terminator.Return ] in
  let edges = [ 0, 16; 16, 32; 32, 0; 0, 32 ] in
  let r = Region.of_spec ~id:0 ~selected_at:0 (spec ~entry:0 ~edges nodes) in
  check_true "spans cycle via edge to entry" r.Region.spans_cycle;
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          let by_addr = Region.has_edge r ~src ~dst in
          check_true "has_edge matches the spec"
            (by_addr = List.mem (src, dst) edges);
          let s = Region.node_id r src and d = Region.node_id r dst in
          check_true "bitset agrees with has_edge"
            (Region.has_edge_nodes r ~src:s ~dst:d = by_addr))
        [ 0; 16; 32 ])
    [ 0; 16; 32 ];
  check_true "edge to a non-node is absent" (not (Region.has_edge r ~src:0 ~dst:100));
  (* The compiled fall-through is the first internal successor listed. *)
  check_int "hot successor is the first edge" 16 r.Region.hot_succ_addr.(Region.node_id r 0);
  check_int "hot successor node id" (Region.node_id r 16)
    r.Region.hot_succ_node.(Region.node_id r 0)

let wide_region_uses_multiword_rows () =
  (* 40 nodes: each bitset row spans two 32-bit words, so edges to nodes
     32..39 live in the second word of their row. *)
  let n = 40 in
  let nodes = List.init n (fun i -> mk (i * 16) 2 Terminator.Return) in
  let edges = [ 0, (n - 1) * 16; (n - 1) * 16, 0 ] in
  let r = Region.of_spec ~id:0 ~selected_at:0 (spec ~entry:0 ~edges nodes) in
  check_int "two words per row" 2 r.Region.succ_stride;
  check_int "node count" n r.Region.n_nodes;
  (* No hint: node ids follow address order, so node (n-1) sits past bit 31. *)
  check_int "last node id" (n - 1) (Region.node_id r ((n - 1) * 16));
  check_true "edge into the second word"
    (Region.has_edge_nodes r ~src:0 ~dst:(n - 1));
  check_true "edge back out of the second word"
    (Region.has_edge_nodes r ~src:(n - 1) ~dst:0);
  check_true "absent high-word edge stays absent"
    (not (Region.has_edge_nodes r ~src:1 ~dst:(n - 1)))

let block_translation_requires_program () =
  let blocks = [ mk 0 2 Terminator.Return; mk 16 3 Terminator.Return;
                 mk 32 4 Terminator.Return ] in
  let program = Program.of_blocks_exn ~entry:0 blocks in
  let s = spec ~entry:16 [ mk 16 3 Terminator.Return; mk 32 4 Terminator.Return ] in
  let r = Region.of_spec ~id:0 ~selected_at:0 ~program s in
  check_int "member block translates to its node" 0
    r.Region.node_of_block.(Program.block_id program 16);
  check_int "other member block" 1 r.Region.node_of_block.(Program.block_id program 32);
  check_int "non-member block translates to -1" (-1)
    r.Region.node_of_block.(Program.block_id program 0);
  check_int "one link slot per program block" 3 (Region.n_link_slots r);
  check_true "slots start unlinked" (Region.link_target r 0 = None);
  (* Without the program the dense structures are absent, not sized 0..n. *)
  let bare = Region.of_spec ~id:1 ~selected_at:1 s in
  check_int "no link slots without program" 0 (Region.n_link_slots bare);
  check_int "no translation without program" 0 (Array.length bare.Region.node_of_block);
  check_true "out-of-range link query is None" (Region.link_target bare 0 = None)

let duplicate_nodes_deduped () =
  (* A spec listing a block twice compiles it once; node count and layout
     reflect the distinct set. *)
  let b0 = mk 0 2 Terminator.Return and b1 = mk 16 3 Terminator.Return in
  let r = Region.of_spec ~id:0 ~selected_at:0 (spec ~entry:0 [ b0; b1; b0 ]) in
  check_int "distinct nodes only" 2 r.Region.n_nodes;
  check_starts "each block placed once" [ 0; 16 ] (starts r)

let suite =
  [
    case "layout hint ordering" layout_hint_ordering;
    case "entry first even when hinted late" entry_first_even_when_hinted_late;
    case "offsets before and after install" offsets_before_and_after_install;
    case "edge queries agree" edge_queries_agree;
    case "wide region uses multiword rows" wide_region_uses_multiword_rows;
    case "block translation requires program" block_translation_requires_program;
    case "duplicate nodes deduped" duplicate_nodes_deduped;
  ]
