(** LEI's branch history buffer (Figures 5 and 6 of the paper).

    A bounded circular buffer of the most recently interpreted taken
    branches, with a hash index from target address to that target's most
    recent occurrence.  If an inserted branch's target is already in the
    buffer, a cycle has just executed and the buffer slice between the two
    occurrences spells out its path.

    Entries carry a [follows_exit] flag: the entry recorded immediately
    after execution left the code cache, which is LEI's analogue of NET's
    trace-exit profiling points (line 9 of Figure 5 accepts a cycle whose
    earlier occurrence "follows an exit from the code cache").

    Each entry has a monotonically increasing sequence number; sequence
    numbers identify occurrences stably across wrap-around and truncation.

    Storage is parallel unboxed arrays, so the per-branch operations —
    {!insert}, {!find_seq}, {!follows_exit_at}, {!length} — allocate
    nothing; the {!entry}-returning accessors materialize records on demand
    and are meant for the cold (trace-formation and testing) paths. *)

open Regionsel_isa

type entry = { src : Addr.t; tgt : Addr.t; follows_exit : bool; seq : int }

type t

val create : capacity:int -> t
(** Requires [capacity >= 1]. *)

val capacity : t -> int

val length : t -> int
(** Entries currently held (at most [capacity]).  O(1): a live counter is
    maintained across insertion, eviction and truncation. *)

val find_seq : t -> Addr.t -> int
(** The sequence number of the most recent live occurrence of the address
    as a branch target, or [0] if absent — the allocation-free core of the
    paper's [HASH-LOOKUP(Buf.hash, tgt)]. *)

val follows_exit_at : t -> seq:int -> bool
(** The [follows_exit] flag of the live entry with the given sequence
    number ([false] if the entry is dead). *)

val find : t -> Addr.t -> entry option
(** {!find_seq} materialized as an entry record. *)

val insert : t -> src:Addr.t -> tgt:Addr.t -> follows_exit:bool -> int
(** Append a taken branch, evicting the oldest entry when full, and update
    the hash index to this newest occurrence.  Returns the new entry's
    sequence number. *)

val entries_after : t -> seq:int -> entry list
(** Live entries with sequence number strictly greater than [seq], oldest
    first: the just-completed cycle's branches, when called with the
    previous occurrence's sequence number. *)

val truncate_after : t -> seq:int -> unit
(** Drop all entries with sequence number strictly greater than [seq] —
    line 13 of Figure 5 ("remove all elements of Buf after old"). *)

val save : t -> (int -> unit) -> unit
(** Checkpoint support: serialize the slot arrays verbatim (stale slots
    included) and the full hash index (stale bindings included — they are
    load-bearing: a stale binding shadows older live occurrences, and
    rebuilding the index from live entries would resurrect them). *)

val load : t -> (unit -> int) -> unit
(** Restore a {!save} stream into a buffer created with the same
    capacity.  Raises [Failure] on capacity mismatch or a malformed
    stream. *)
