(** Plain-text tables for the benchmark harness. *)

type align = Left | Right

val render : header:string list -> ?aligns:align list -> string list list -> string
(** [render ~header rows] lays the rows out under the header with column
    separators and a rule under the header.  Columns default to
    right-aligned except the first.  Ragged rows are padded with empty
    cells. *)

val print : header:string list -> ?aligns:align list -> string list list -> unit
(** {!render} to stdout, followed by a newline. *)

val fmt_float : int -> float -> string
(** [fmt_float digits v] renders with fixed decimals. *)

val fmt_pct : float -> string
(** Render a fraction as a percentage with one decimal, e.g. [0.982] ->
    ["98.2%"]. *)

val fmt_ratio : float -> string
(** Render a relative value, e.g. [0.82] -> ["0.82x"]. *)
