(** The streaming region-selection daemon: a Unix-domain-socket front end
    over {!Regionsel_engine.Multi_stream.Engine}.

    One process, one event loop.  Streaming connections (Hello, Events*,
    Fin — see {!Proto}) each attach one tenant; between socket activity
    the loop runs batch-barrier rounds, each tenant's advance bounded by
    the events its connection has ingested so far.  Control connections
    serve live exports (Prometheus snapshot, JSONL tail) from per-tenant
    metrics recorders sampled at every barrier.

    Admission control answers Hello with a typed Reject when tenant slots
    or the shared cache budget saturate.  Backpressure bounds each
    connection's ingest backlog to [ingest_max] unconsumed events by
    removing the socket from the read set — the client's writes block in
    the kernel; the daemon never buffers unboundedly — resuming below
    half the bound.  A tenant whose simulation is exhausted (step budget
    spent or program halted) is never paused: its backlog cannot drain,
    so the remaining events are absorbed to reach the Fin behind them.
    Outgoing frames are queued per connection and flushed through the
    loop's writability set, so a peer that stops draining its replies
    stalls only itself (and is dropped once its unsent queue passes a
    bound).

    Sessions survive disconnects and daemon restarts: warm state is
    snapshotted through {!Regionsel_persist.Persist.save_file} on
    disconnect and on SIGTERM/SIGINT, keyed by
    {!Regionsel_persist.Persist.session_file} identity, and restored when
    the same (tenant, bench, policy, seed) says Hello again; Welcome
    carries [resume_step] and the client resends events from there, which
    makes a resumed run bit-identical to an uninterrupted one.  A
    {!Regionsel_check.Check.Check_violation} — e.g. from the post-restore
    cache audit — dumps the flight recorder to [state_dir/flight.jsonl]
    and re-raises (the binary maps it to exit code 3). *)

type config = {
  socket_path : string;
  state_dir : string;  (** Session snapshots + flight dumps live here. *)
  budget_bytes : int option;  (** Shared code-cache budget across tenants. *)
  quota_floor : int;  (** Admission floor for per-tenant fair shares. *)
  max_tenants : int;
  batch_steps : int;
  ingest_max : int;  (** Per-tenant unconsumed-event bound (backpressure). *)
  n_domains : int option;
  metrics_keep : int;  (** Windows retained per tenant recorder. *)
  verbose : bool;
}

val default_config : socket_path:string -> state_dir:string -> config

val wants_read : backlog:int -> high:int -> paused:bool -> bool
(** The backpressure hysteresis, exposed pure for testing: pause reads at
    [high] unconsumed events, resume only once drained to [high / 2] —
    a tenant hovering at the bound does not flap in and out of the read
    set. *)

val serve : config -> unit
(** Bind, listen and run until a SIGTERM/SIGINT or a [shutdown] control
    command; on the way out every attached tenant is snapshotted and the
    socket is unlinked.  Replaces the process's SIGTERM/SIGINT/SIGPIPE
    handlers for the duration.
    @raise Invalid_argument on a non-positive [batch_steps]/[ingest_max].
    @raise Regionsel_check.Check.Check_violation after dumping the flight
    recorder, if a sanitizer invariant fails. *)
