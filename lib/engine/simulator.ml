open Regionsel_isa
module Image = Regionsel_workload.Image
module Telemetry = Regionsel_telemetry.Telemetry

type result = {
  image : Image.t;
  policy_name : string;
  ctx : Context.t;
  stats : Stats.t;
  edges : Edge_profile.t;
  icache : Icache.t;
  halted : bool;
  fault_log : Faults.log option;
}

type observer = {
  on_context : Context.t -> unit;
      (** Called once, right after the run's [Context] (and hence its code
          cache) is created — the sanitizer installs its cache auditor
          here. *)
  on_step :
    step:int ->
    block:Block.t ->
    taken:bool ->
    next:Addr.t ->
    believed:Addr.t ->
    unit;
      (** Called after every interpreter step, before the mode handlers run:
          [block]/[taken]/[next] are the interpreter's ground truth for the
          step, [believed] is the start address region mode believes it just
          executed ([Addr.none] while interpreting).  The loop invariant is
          [believed = block.start] whenever in region mode — the sanitizer's
          divergence rule. *)
}

type window_hook = {
  win_every : int;
      (** Window length in steps; the hook fires when the step count
          reaches each successive multiple-of-[win_every] boundary. *)
  win_fn : step:int -> stats:Stats.t -> ctx:Context.t -> unit;
      (** Pure observation: reads counters, mutates nothing simulated. *)
}

(* Checkpoint plumbing.  A [section] is one independently recoverable unit
   of warm state: the persistence layer frames, checksums and versions each
   one separately, so a torn or bit-flipped section degrades alone — its
   subsystem re-warms from scratch — instead of poisoning the whole
   snapshot.  Loaders raise [Failure] on malformed streams and (apart from
   the fault-cursor commit, which is ordered first) mutate nothing until
   the stream has parsed. *)
type section = {
  sec_name : string;
  sec_save : (int -> unit) -> unit;
  sec_load : (unit -> int) -> unit;
}

type internals = {
  int_ctx : Context.t;
  int_stats : Stats.t;
  int_sections : section list;
}

(* Floats ride the int stream as two 32-bit halves of their IEEE bits:
   [Int64.to_int] of a full 64-bit pattern would lose the top bit. *)
let emit_float emit f =
  let bits = Int64.bits_of_float f in
  emit (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
  emit (Int64.to_int (Int64.shift_right_logical bits 32))

let read_float read =
  let lo = read () in
  let hi = read () in
  if lo < 0 || lo > 0xFFFFFFFF || hi < 0 || hi > 0xFFFFFFFF then
    failwith "Simulator: malformed float in snapshot";
  Int64.float_of_bits (Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32))

(* Stable codes for the fault-log labels ([Faults.label] plus the
   watchdog's own "bailout" entries). *)
let ev_labels = [| "smc"; "translation"; "async-exit"; "shock"; "crash"; "bailout" |]

let ev_label_code l =
  let rec go i =
    if i >= Array.length ev_labels then failwith ("Simulator: unknown event label " ^ l)
    else if String.equal ev_labels.(i) l then i
    else go (i + 1)
  in
  go 0

let ev_label_of_code c =
  if c < 0 || c >= Array.length ev_labels then
    failwith "Simulator: bad event-label code in snapshot"
  else ev_labels.(c)

(* The execution mode is a [Region.t ref] holding [Region.dummy] while
   interpreting, plus an int cell for the position within the region
   ([cur_node] compiled / [cur_addr] legacy).  Physical equality against
   the sentinel replaces an option match, and — the point — entering or
   crossing regions is a plain store: with [Region.t option ref] every one
   of the ~100k region-to-region transitions of a cache-friendly run
   allocated a [Some], the last allocation on the steady-state path. *)

(* A resumable run: the hot loop bounded by a step limit instead of owning
   the whole budget, so a scheduler can multiplex many runs in bounded
   batches.  The closures share the run's state; nothing outside them can
   observe a half-stepped simulator. *)
type t = {
  h_advance : int -> unit;
  h_finish : unit -> result;
  h_steps : unit -> int;
  h_halted : unit -> bool;
  h_max_steps : int;
  h_set_quota : int option -> unit;
  h_bytes_used : unit -> int;
  h_sample : (step:int -> stats:Stats.t -> ctx:Context.t -> unit) -> unit;
  h_internals : unit -> internals;
}

let create ?(params = Params.default) ?(seed = 1L) ?(telemetry = Telemetry.none) ?observer
    ?on_window ?checkpoint ?restore ?record ?replay ~policy ~max_steps image =
  let program = image.Image.program in
  let ctx = Context.create ~params ~telemetry program in
  (match observer with None -> () | Some o -> o.on_context ctx);
  let cache = ctx.Context.cache in
  let policy_mod = policy in
  let policy_name = Policy.name policy_mod in
  (* A ref, not a binding: a crash fault re-instantiates the policy from
     scratch, and restoring a snapshot replaces it with the saved one. *)
  let policy = ref (Policy.instantiate policy_mod ctx) in
  let interp = Interp.create ~threaded:params.Params.threaded_dispatch image ~seed in
  let stats = Stats.create () in
  let edges = Edge_profile.create () in
  let icache =
    Icache.create ~size_bytes:params.Params.icache_size_bytes
      ~line_bytes:params.Params.icache_line_bytes ~ways:params.Params.icache_ways ()
  in
  let compiled = params.Params.compiled_regions in
  let cur_region = ref Region.dummy in (* dummy = interpreting *)
  let cur_addr = ref Addr.none in (* legacy mode: current block address *)
  let cur_node = ref 0 in (* compiled mode: current node id within !cur_region *)
  let halted = ref false in
  (* Fault machinery.  On clean runs ([faults = None]) all of this
     collapses to one always-false branch per step. *)
  let faults =
    match params.Params.faults with
    | None -> None
    | Some profile -> Some (Faults.create ~profile ~seed ~program ~max_steps)
  in
  let fault_next = ref (match faults with None -> max_int | Some f -> Faults.next_step f) in
  let bail_until = ref (-1) in
  let bail_exit_pending = ref false in
  let next_window = ref (match faults with None -> max_int | Some _ -> params.Params.watchdog_window) in
  let peak_share = ref 0.0 in
  (* The watchdog works off frozen counter snapshots (Stats.snapshot /
     Stats.diff) rather than reading live mutable fields mid-run. *)
  let window_start = ref (Stats.snapshot stats) in
  let ev_log = ref [] in
  let sample_log = ref [] in
  (* Hot-loop scratch: one step record and one policy event, reused for
     every interpreted block so the per-step path allocates nothing. *)
  let sbuf = Interp.make_step () in
  (* Branch-event source: the live interpreter, or a recorded stream.  The
     clean-run fast path keeps the direct [Interp.step_into] call; replay
     pays one option compare per step either way. *)
  let replay_stream = Option.map Branch_stream.of_events replay in
  let has_record = Option.is_some record in
  let rec_events = match record with Some ev -> ev | None -> Branch_stream.recorder () in
  let ib = { Policy.block = Program.block_of_id program 0; taken = false; next = Addr.none } in
  let interp_event = Policy.Interp_block ib in
  (* Selection events are policy decisions, stamped before the install is
     attempted; the node-list walk only happens with a live sink. *)
  let emit_select (spec : Region.spec) =
    match telemetry with
    | None -> ()
    | Some _ ->
      Telemetry.select telemetry ~step:stats.Stats.steps
        ~n_blocks:(List.length spec.Region.nodes) ~n_insts:spec.Region.copied_insts
  in
  let links = Flat_tbl.create 64 in
  let record_link ~(from : Region.t) ~(into : Region.t) =
    (* Packed int key, as in the region exit log: no tuple, no hash layer. *)
    let key = (from.Region.id lsl 32) lor into.Region.id in
    if not (Flat_tbl.mem links key) then begin
      Flat_tbl.set links key 1;
      stats.Stats.links <- stats.Stats.links + 1
    end
  in
  (* The simulator's per-transition probe: one flat-array read indexed by
     block id (the ROADMAP's region-cache-dispatch item) instead of up to
     two hash probes. *)
  let probe a = Code_cache.dispatch cache (Program.block_id program a) in
  (* A rejected install is reported back to the policy as an invalidation
     of the would-be entry: the policy drops its profiling state for the
     entry and can re-select it later — without this, a policy that
     believes it installed a region never retries, and one translation
     failure kills the entry for the rest of the run. *)
  let rec install_if_any = function
    | Policy.No_action -> ()
    | Policy.Install specs ->
      if stats.Stats.steps <= !bail_until then begin
        (* Bailed out: the system is interpreting through a cooldown and
           suppresses region formation entirely. *)
        stats.Stats.install_rejects <- stats.Stats.install_rejects + List.length specs;
        List.iter
          (fun (spec : Region.spec) ->
            emit_select spec;
            reject_spec spec)
          specs
      end
      else begin
        Code_cache.set_now cache stats.Stats.steps;
        List.iter
          (fun (spec : Region.spec) ->
            emit_select spec;
            match Code_cache.install cache spec with
            | Ok _ -> stats.Stats.installs <- stats.Stats.installs + 1
            | Error _ ->
              stats.Stats.install_rejects <- stats.Stats.install_rejects + 1;
              reject_spec spec)
          specs
      end
  and reject_spec (spec : Region.spec) =
    Gauges.set_blacklisted ctx.Context.gauges (Code_cache.n_blacklisted cache);
    install_if_any
      (Policy.handle !policy (Policy.Region_invalidated { entry = spec.Region.entry }))
  in
  let interpret_step (block : Block.t) (s : Interp.step) =
    stats.Stats.interpreted_insts <- stats.Stats.interpreted_insts + block.Block.size;
    ib.Policy.block <- block;
    ib.Policy.taken <- s.Interp.taken;
    ib.Policy.next <- s.Interp.next;
    install_if_any (Policy.handle !policy interp_event);
    let a = s.Interp.next in
    if Addr.is_none a then halted := true
    else if s.Interp.taken && stats.Stats.steps > !bail_until then begin
      let id = Program.block_id program a in
      match Code_cache.dispatch cache id with
      | Some region ->
        stats.Stats.dispatches <- stats.Stats.dispatches + 1;
        Telemetry.dispatch telemetry ~step:stats.Stats.steps ~id:region.Region.id;
        Region.record_entry region;
        cur_region := region;
        cur_addr := a;
        (* A dispatch hit is at the region's entry or an aux entry, both
           nodes of the region, so the translation is never -1. *)
        cur_node := Array.unsafe_get region.Region.node_of_block id
      | None -> ()
    end
  in
  (* Invariant: [cur] is the start address of the block just executed,
     [block] — the loop only enters region mode at a block start. *)
  let region_step region cur (block : Block.t) (s : Interp.step) =
    stats.Stats.cached_insts <- stats.Stats.cached_insts + block.Block.size;
    Region.record_exec region block.Block.size;
    let off = Region.block_cache_offset region cur in
    if off >= 0 then Icache.access icache ~addr:off ~bytes:(block.Block.size * Region.inst_bytes);
    let a = s.Interp.next in
    if Addr.is_none a then halted := true
    else begin
      if Region.has_edge region ~src:cur ~dst:a then begin
        if Addr.equal a region.Region.entry then Region.record_cycle region;
        cur_addr := a
      end
      else begin
        match probe a with
        | Some other when other == region ->
          (* A side exit linked back to this region's own entry: execution
             stays put, and the paper's executed-cycle metric counts it as a
             completed cycle, not an exit. *)
          Region.record_cycle region;
          cur_addr := a
        | Some other ->
          Region.record_exit region ~from:cur ~tgt:a;
          stats.Stats.region_transitions <- stats.Stats.region_transitions + 1;
          record_link ~from:region ~into:other;
          Region.record_entry other;
          cur_region := other;
          cur_addr := a
        | None ->
          Region.record_exit region ~from:cur ~tgt:a;
          stats.Stats.cache_exits_to_interp <- stats.Stats.cache_exits_to_interp + 1;
          (* Leaving cached execution is an edge-profile drain point: any
             observer that runs while the system interprets sees counts as
             exact as the unbatched profile's. *)
          Edge_profile.flush edges;
          install_if_any
            (Policy.handle !policy
               (Policy.Cache_exited
                  { from_entry = region.Region.entry; src = Block.last block; tgt = a }));
          (* The paper's "jump newT": if the policy just installed a region
             at the pending target, enter it without interpreting. *)
          (match probe a with
          | Some fresh ->
            stats.Stats.dispatches <- stats.Stats.dispatches + 1;
            Telemetry.dispatch telemetry ~step:stats.Stats.steps ~id:fresh.Region.id;
            Region.record_entry fresh;
            cur_region := fresh;
            cur_addr := a
          | None -> cur_region := Region.dummy)
      end
    end
  in
  (* Compiled-mode stepping: [!cur_node] is the node id (within [region])
     of the block just executed, [block].  The common stay-in-region step
     is one compare against the node's precompiled hot successor; the
     general internal edge is a bitset word read; an exit consults the
     region's patched link slot before the dispatch array.  Every metric
     update matches [region_step] exactly — the parity suite runs both
     modes over the full matrix and diffs the results. *)
  let region_step_node (region : Region.t) (block : Block.t) (s : Interp.step) =
    stats.Stats.cached_insts <- stats.Stats.cached_insts + block.Block.size;
    stats.Stats.node_steps <- stats.Stats.node_steps + 1;
    Region.record_exec region block.Block.size;
    let node = !cur_node in
    let base = region.Region.cache_base in
    if base >= 0 then
      Icache.access icache
        ~addr:(base + Array.unsafe_get region.Region.node_offsets node)
        ~bytes:(block.Block.size * Region.inst_bytes);
    let a = s.Interp.next in
    if Addr.is_none a then halted := true
    else if a = Array.unsafe_get region.Region.hot_succ_addr node then begin
      let nid = Array.unsafe_get region.Region.hot_succ_node node in
      if nid = 0 then Region.record_cycle region;
      cur_node := nid
    end
    else begin
      let id = Program.block_id program a in
      let nid =
        let translate = region.Region.node_of_block in
        if id >= 0 && id < Array.length translate then Array.unsafe_get translate id else -1
      in
      if nid >= 0 && Region.has_edge_nodes region ~src:node ~dst:nid then begin
        if nid = 0 then Region.record_cycle region;
        cur_node := nid
      end
      else begin
        let cur = block.Block.start in
        match Region.link_target region id with
        | Some other ->
          (* Linked exit stub: jump region-to-region without dispatching.
             The (from, into) pair was recorded when the link was made. *)
          stats.Stats.link_hits <- stats.Stats.link_hits + 1;
          Region.record_exit region ~from:cur ~tgt:a;
          stats.Stats.region_transitions <- stats.Stats.region_transitions + 1;
          Region.record_entry other;
          cur_region := other;
          cur_node := Array.unsafe_get other.Region.node_of_block id
        | None -> (
          match Code_cache.dispatch cache id with
          | Some other when other == region ->
            (* A side exit linked back to this region's own entry: execution
               stays put, and the paper's executed-cycle metric counts it as
               a completed cycle, not an exit. *)
            Region.record_cycle region;
            cur_node := Array.unsafe_get region.Region.node_of_block id
          | Some other ->
            Region.record_exit region ~from:cur ~tgt:a;
            stats.Stats.region_transitions <- stats.Stats.region_transitions + 1;
            record_link ~from:region ~into:other;
            Code_cache.add_link cache ~from:region ~slot:id ~target:other;
            Gauges.set_links ctx.Context.gauges (Code_cache.n_links cache);
            Region.record_entry other;
            cur_region := other;
            cur_node := Array.unsafe_get other.Region.node_of_block id
          | None ->
            Region.record_exit region ~from:cur ~tgt:a;
            stats.Stats.cache_exits_to_interp <- stats.Stats.cache_exits_to_interp + 1;
            (* Edge-profile drain point, as in [region_step]. *)
            Edge_profile.flush edges;
            install_if_any
              (Policy.handle !policy
                 (Policy.Cache_exited
                    { from_entry = region.Region.entry; src = Block.last block; tgt = a }));
            (* The paper's "jump newT": if the policy just installed a region
               at the pending target, enter it without interpreting. *)
            (match Code_cache.dispatch cache id with
            | Some fresh ->
              stats.Stats.dispatches <- stats.Stats.dispatches + 1;
              Telemetry.dispatch telemetry ~step:stats.Stats.steps ~id:fresh.Region.id;
              Region.record_entry fresh;
              cur_region := fresh;
              cur_node := Array.unsafe_get fresh.Region.node_of_block id
            | None -> cur_region := Region.dummy))
      end
    end
  in
  (* Retired regions are reported to the policy so it drops stale
     observation state; the region being executed loses its claim to the
     program counter immediately. *)
  let deliver_invalidations retired =
    List.iter
      (fun (r : Region.t) ->
        if !cur_region == r then cur_region := Region.dummy;
        install_if_any
          (Policy.handle !policy (Policy.Region_invalidated { entry = r.Region.entry })))
      retired;
    Gauges.set_blacklisted ctx.Context.gauges (Code_cache.n_blacklisted cache);
    Gauges.set_links ctx.Context.gauges (Code_cache.n_links cache)
  in
  let fault_code = function
    | Faults.Smc_write _ -> 0
    | Faults.Translation_failure _ -> 1
    | Faults.Async_exit -> 2
    | Faults.Cache_shock _ -> 3
    | Faults.Crash -> 4
  in
  let apply_fault ev =
    stats.Stats.faults_injected <- stats.Stats.faults_injected + 1;
    ev_log := (stats.Stats.steps, Faults.label ev) :: !ev_log;
    Code_cache.set_now cache stats.Stats.steps;
    Telemetry.fault telemetry ~step:stats.Stats.steps ~code:(fault_code ev);
    match ev with
    | Faults.Smc_write { lo; hi } ->
      deliver_invalidations (Code_cache.invalidate_range cache ~lo ~hi)
    | Faults.Translation_failure { window } -> Code_cache.arm_translation_failures cache ~window
    | Faults.Async_exit ->
      if !cur_region != Region.dummy then begin
        cur_region := Region.dummy;
        stats.Stats.async_exits <- stats.Stats.async_exits + 1
      end
    | Faults.Cache_shock { bytes } -> deliver_invalidations (Code_cache.shock cache ~bytes)
    | Faults.Crash ->
      (* The optimizer process dies and restarts: every warm optimizer
         structure is lost — live regions, links, the blacklist, live
         profiling counters, policy state, any claim on the program
         counter — while the program itself (interpreter state) and the
         run's accumulated metrics persist.  No invalidations are
         delivered: the policy that would receive them died with the
         cache. *)
      cur_region := Region.dummy;
      ignore (Code_cache.flush_all cache : Region.t list);
      Code_cache.reset_blacklist cache;
      Counters.reset ctx.Context.counters;
      Gauges.add_observed_bytes ctx.Context.gauges
        (-Gauges.observed_bytes ctx.Context.gauges);
      Gauges.set_blacklisted ctx.Context.gauges 0;
      Gauges.set_links ctx.Context.gauges 0;
      policy := Policy.instantiate policy_mod ctx
  in
  (* The bailout watchdog (fault runs only): sample the cached-instruction
     share over a sliding window; if it collapses relative to its peak
     while regions are still resident, selection is thrashing — flush
     everything and interpret through a cooldown. *)
  let watchdog () =
    (* Window boundaries are observation points: drain the edge ring so the
       snapshot-aligned state of the profile is exact. *)
    Edge_profile.flush edges;
    let now_snap = Stats.snapshot stats in
    let d = Stats.diff ~earlier:!window_start ~later:now_snap in
    window_start := now_snap;
    let cached_d = d.Stats.Snapshot.cached_insts in
    let interp_d = d.Stats.Snapshot.interpreted_insts in
    let total = cached_d + interp_d in
    let share = if total = 0 then 0.0 else float_of_int cached_d /. float_of_int total in
    sample_log := (stats.Stats.steps, share) :: !sample_log;
    if share > !peak_share then peak_share := share;
    if
      stats.Stats.faults_injected > 0
      && !bail_until < stats.Stats.steps
      && !peak_share >= 0.5
      && share < params.Params.watchdog_min_share *. !peak_share
    then begin
      ev_log := (stats.Stats.steps, "bailout") :: !ev_log;
      Code_cache.set_now cache stats.Stats.steps;
      let retired = Code_cache.flush_all cache in
      stats.Stats.bailouts <- stats.Stats.bailouts + 1;
      bail_until := stats.Stats.steps + params.Params.bailout_cooldown;
      bail_exit_pending := true;
      Telemetry.bailout_enter telemetry ~step:stats.Stats.steps ~until:!bail_until;
      deliver_invalidations retired
    end;
    next_window := stats.Stats.steps + params.Params.watchdog_window
  in
  (* Loop-state section codec: the refs above plus the fault cursor, the
     event/sample logs and the link-dedup table — everything the hot loop
     owns that is not already inside a subsystem with its own section. *)
  let save_loop emit =
    let r = !cur_region in
    emit (if r == Region.dummy then -1 else r.Region.id);
    emit !cur_addr;
    emit !cur_node;
    emit (if !halted then 1 else 0);
    emit !bail_until;
    emit (if !bail_exit_pending then 1 else 0);
    emit !next_window;
    emit_float emit !peak_share;
    Stats.save_snapshot !window_start emit;
    (match faults with
    | None -> emit 0
    | Some f ->
      emit 1;
      emit (Faults.cursor f));
    emit (List.length !ev_log);
    List.iter
      (fun (step, l) ->
        emit step;
        emit (ev_label_code l))
      !ev_log;
    emit (List.length !sample_log);
    List.iter
      (fun (step, v) ->
        emit step;
        emit_float emit v)
      !sample_log;
    emit (Flat_tbl.length links);
    List.iter
      (fun (k, v) ->
        emit k;
        emit v)
      (Flat_tbl.sorted_pairs links)
  in
  let load_loop read =
    let read_bool what =
      match read () with
      | 0 -> false
      | 1 -> true
      | _ -> failwith ("Simulator: bad flag in snapshot: " ^ what)
    in
    let rid = read () in
    let addr = read () in
    let node = read () in
    let halted' = read_bool "halted" in
    let bail_until' = read () in
    let bail_exit_pending' = read_bool "bail-exit-pending" in
    let next_window' = read () in
    let peak_share' = read_float read in
    let window_start' = Stats.load_snapshot read in
    let fault_cursor =
      match read () with
      | 0 -> None
      | 1 -> Some (read ())
      | _ -> failwith "Simulator: bad fault-cursor tag in snapshot"
    in
    let read_len what =
      let n = read () in
      if n < 0 then failwith ("Simulator: negative length in snapshot: " ^ what);
      n
    in
    let ev_log' =
      List.init (read_len "event log") (fun _ ->
          let step = read () in
          (step, ev_label_of_code (read ())))
    in
    let sample_log' =
      List.init (read_len "sample log") (fun _ ->
          let step = read () in
          (step, read_float read))
    in
    let link_pairs =
      List.init (read_len "link table") (fun _ ->
          let k = read () in
          let v = read () in
          if k < 0 || v < 0 then failwith "Simulator: negative link entry in snapshot";
          (k, v))
    in
    (* Resolve the mode refs against the restored cache.  A region id that
       no longer resolves (the cache section was dropped and re-warmed
       empty) falls back to the interpreter rather than failing the whole
       section. *)
    (* With no live region ([rid < 0], or the cache section was dropped
       and re-warmed empty) the node id is scratch — region entry always
       sets it before compiled stepping reads it — so it is restored
       verbatim, like [cur_addr], to keep a re-encoded snapshot
       byte-identical to the one just loaded. *)
    let region', node' =
      if rid < 0 then (Region.dummy, node)
      else
        match Code_cache.region_by_id cache rid with
        | None -> (Region.dummy, node)
        | Some r ->
          if node < 0 || node >= Array.length r.Region.node_blocks then
            failwith "Simulator: region node out of range in snapshot";
          (* [cur_addr] is the live position only in legacy mode; compiled
             stepping advances [cur_node] alone (a link transition can move
             to another region without touching [cur_addr]), so there the
             address is restored verbatim as scratch state. *)
          if
            (not compiled)
            && not
                 (Array.exists
                    (fun (b : Block.t) -> Addr.equal b.Block.start addr)
                    r.Region.node_blocks)
          then failwith "Simulator: region address not a node start in snapshot";
          (r, node)
    in
    (* Commit.  The fault-cursor store goes first: [Faults.set_cursor] is
       the only committing call that can raise, and failing before any ref
       is written leaves the loop state untouched (fresh), which is the
       degraded-section contract. *)
    (match (faults, fault_cursor) with
    | Some f, Some c -> Faults.set_cursor f c
    | None, None -> ()
    | Some _, None | None, Some _ ->
      failwith "Simulator: snapshot fault profile does not match this run");
    fault_next := (match faults with None -> max_int | Some f -> Faults.next_step f);
    cur_region := region';
    cur_addr := addr;
    cur_node := node';
    halted := halted';
    bail_until := bail_until';
    bail_exit_pending := bail_exit_pending';
    next_window := next_window';
    peak_share := peak_share';
    window_start := window_start';
    ev_log := ev_log';
    sample_log := sample_log';
    List.iter (fun (k, v) -> Flat_tbl.set links k v) link_pairs
  in
  let internals =
    let sec name save load = { sec_name = name; sec_save = save; sec_load = load } in
    (* Save/restore order is load order; "loop" goes last because its
       region reference resolves against the already-restored cache. *)
    {
      int_ctx = ctx;
      int_stats = stats;
      int_sections =
        [
          sec "interp" (Interp.save_warm interp) (Interp.load_warm interp);
          sec "stats" (Stats.save stats) (Stats.load stats);
          sec "edges" (Edge_profile.save edges) (Edge_profile.load edges);
          sec "icache" (Icache.save icache) (Icache.load icache);
          sec "counters"
            (Counters.save ctx.Context.counters)
            (Counters.load ctx.Context.counters);
          sec "gauges" (Gauges.save ctx.Context.gauges) (Gauges.load ctx.Context.gauges);
          sec "cache" (Code_cache.save cache) (Code_cache.load cache);
          sec "blacklist" (Code_cache.save_blacklist cache) (Code_cache.load_blacklist cache);
          sec "policy"
            (fun emit -> Policy.save !policy emit)
            (fun read -> policy := Policy.load policy_mod ctx read);
        ]
        @ (match telemetry with
          | None -> []
          | Some tel -> [ sec "telemetry" (Telemetry.save tel) (Telemetry.load tel) ])
        @ [ sec "loop" save_loop load_loop ];
    }
  in
  (match restore with
  | None -> ()
  | Some f ->
    f internals;
    (* A snapshot and the run restoring it need not agree on
       instrumentation: a sink-less save carries no telemetry section,
       and a damaged cache or telemetry frame re-warms one side only.
       Reconcile the span ledger with the restored live set so the
       sanitizer's open-spans = live-regions rule holds from the first
       post-restore audit; a matched clean restore makes both passes
       no-ops. *)
    (match telemetry with
    | None -> ()
    | Some tel ->
      let step = stats.Stats.steps in
      let live = Int_tbl.create 64 in
      Code_cache.iter_entries cache (fun _ r ->
          Int_tbl.replace live r.Region.id ();
          if not (Telemetry.span_open tel ~id:r.Region.id) then
            Telemetry.install (Some tel) ~step ~id:r.Region.id
              ~n_nodes:r.Region.n_nodes);
      Telemetry.reconcile_spans tel ~step ~live:(fun id -> Int_tbl.mem live id)));
  let has_checkpoint = Option.is_some checkpoint in
  let checkpoint_done = ref false in
  let maybe_checkpoint () =
    match checkpoint with
    | Some (at, fn) when (not !checkpoint_done) && stats.Stats.steps >= at ->
      checkpoint_done := true;
      fn internals
    | _ -> ()
  in
  (* Bailouts, fault arrival, and watchdog windows all require a fault
     profile, so a clean run folds their four per-step compares into this
     one hoisted, always-false branch. *)
  let has_events = faults <> None in
  (* Windowed-metrics hook: fires at each multiple-of-[win_every] step
     boundary.  Off by default; like [has_events] and [has_checkpoint],
     the clean path pays one always-false compare per step.  Boundaries
     are absolute multiples of the window so a restored run samples at
     the same steps as the uninterrupted one. *)
  let has_window = on_window <> None in
  let mwin_next =
    ref
      (match on_window with
      | None -> max_int
      | Some w ->
        stats.Stats.steps - (stats.Stats.steps mod w.win_every) + w.win_every)
  in
  (* [limit] is the current advance bound, always <= max_steps; {!run}
     sets it to the full budget once, so the uninterrupted path costs one
     extra immediate load per step over the old closed loop. *)
  let limit = ref 0 in
  let rec loop () =
    if stats.Stats.steps >= !limit || !halted then ()
    else if
      not
        (match replay_stream with
        | None -> Interp.step_into interp sbuf
        | Some stream -> Branch_stream.next_into stream sbuf)
    then halted := true
    else begin
      stats.Stats.steps <- stats.Stats.steps + 1;
      if has_record then Branch_stream.append rec_events sbuf;
      if sbuf.Interp.taken then stats.Stats.taken_branches <- stats.Stats.taken_branches + 1;
      let block = Program.block_of_id program sbuf.Interp.block_id in
      let next = sbuf.Interp.next in
      if not (Addr.is_none next) then
        Edge_profile.record edges ~src:block.Block.start ~dst:next;
      (match observer with
      | None -> ()
      | Some o ->
        let r = !cur_region in
        let believed =
          if r == Region.dummy then Addr.none
          else if compiled then (Array.unsafe_get r.Region.node_blocks !cur_node).Block.start
          else !cur_addr
        in
        o.on_step ~step:stats.Stats.steps ~block ~taken:sbuf.Interp.taken ~next ~believed);
      (let r = !cur_region in
       if r == Region.dummy then interpret_step block sbuf
       else if compiled then region_step_node r block sbuf
       else region_step r !cur_addr block sbuf);
      if has_events then begin
        if stats.Stats.steps <= !bail_until then
          stats.Stats.recovery_steps <- stats.Stats.recovery_steps + 1
        else if !bail_exit_pending then begin
          bail_exit_pending := false;
          Telemetry.bailout_exit telemetry ~step:stats.Stats.steps
        end;
        if stats.Stats.steps >= !fault_next then begin
          (match faults with
          | Some f ->
            while Faults.next_step f <= stats.Stats.steps do
              apply_fault (Faults.pop f)
            done;
            fault_next := Faults.next_step f
          | None -> ())
        end;
        if stats.Stats.steps >= !next_window then watchdog ()
      end;
      if has_window && stats.Stats.steps >= !mwin_next then begin
        match on_window with
        | Some w ->
          w.win_fn ~step:stats.Stats.steps ~stats ~ctx;
          mwin_next :=
            stats.Stats.steps - (stats.Stats.steps mod w.win_every) + w.win_every
        | None -> ()
      end;
      if has_checkpoint then maybe_checkpoint ();
      loop ()
    end
  in
  let advance upto =
    let upto = if upto > max_steps then max_steps else upto in
    if upto > !limit then limit := upto;
    loop ()
  in
  let finished = ref None in
  let finish () =
    match !finished with
    | Some r -> r
    | None ->
      limit := max_steps;
      loop ();
      (* A checkpoint aimed past the run's actual length (or at [max_int],
         the CLI's "save at end") fires here, before the final flush, so
         the saved edge ring matches what a mid-run checkpoint at this step
         would have seen and restore-then-finish replays the flush
         identically. *)
      (match checkpoint with
      | Some (_, fn) when not !checkpoint_done ->
        checkpoint_done := true;
        fn internals
      | _ -> ());
      (* End of run is the final observation point. *)
      Edge_profile.flush edges;
      let fault_log =
        match faults with
        | None -> None
        | Some _ -> Some { Faults.events = List.rev !ev_log; samples = List.rev !sample_log }
      in
      let r = { image; policy_name; ctx; stats; edges; icache; halted = !halted; fault_log } in
      finished := Some r;
      r
  in
  (* Quota changes arrive from the multi-stream scheduler at batch
     boundaries; evictions they force go through the same invalidation
     delivery as faults and shocks, so the policy drops its stale state. *)
  let set_quota q =
    Code_cache.set_now cache stats.Stats.steps;
    deliver_invalidations (Code_cache.set_quota cache q)
  in
  {
    h_advance = advance;
    h_finish = finish;
    h_steps = (fun () -> stats.Stats.steps);
    h_halted = (fun () -> !halted);
    h_max_steps = max_steps;
    h_set_quota = set_quota;
    h_bytes_used = (fun () -> Code_cache.bytes_used cache);
    h_sample = (fun fn -> fn ~step:stats.Stats.steps ~stats ~ctx);
    h_internals = (fun () -> internals);
  }

let advance t ~upto = t.h_advance upto
let finish t = t.h_finish ()
let steps t = t.h_steps ()
let halted t = t.h_halted ()
let max_steps t = t.h_max_steps
let exhausted t = t.h_steps () >= t.h_max_steps || t.h_halted ()
let set_cache_quota t quota = t.h_set_quota quota
let cache_bytes_used t = t.h_bytes_used ()
let sample t fn = t.h_sample fn
let internals t = t.h_internals ()

let run ?params ?seed ?telemetry ?observer ?on_window ?checkpoint ?restore ?record ?replay
    ~policy ~max_steps image =
  finish
    (create ?params ?seed ?telemetry ?observer ?on_window ?checkpoint ?restore ?record
       ?replay ~policy ~max_steps image)
