(* Unit tests for the engine substrate: counters, gauges, the edge profile,
   regions and the code cache. *)

open Regionsel_isa
module Counters = Regionsel_engine.Counters
module Gauges = Regionsel_engine.Gauges
module Edge_profile = Regionsel_engine.Edge_profile
module Region = Regionsel_engine.Region
module Code_cache = Regionsel_engine.Code_cache
open Fixtures

(* Counters *)

let counter_lifecycle () =
  let c = Counters.create () in
  check_int "first increment" 1 (Counters.incr c 10);
  check_int "second increment" 2 (Counters.incr c 10);
  check_int "peek" 2 (Counters.peek c 10);
  check_int "one live" 1 (Counters.live c);
  Counters.release c 10;
  check_int "released" 0 (Counters.peek c 10);
  check_int "none live" 0 (Counters.live c);
  check_int "high water persists" 1 (Counters.high_water c)

let counter_high_water () =
  let c = Counters.create () in
  for a = 1 to 5 do
    ignore (Counters.incr c a)
  done;
  Counters.release c 1;
  Counters.release c 2;
  ignore (Counters.incr c 6);
  check_int "high water is the peak" 5 (Counters.high_water c);
  check_int "total allocations count reuse" 6 (Counters.total_allocations c)

let counter_release_unknown () =
  let c = Counters.create () in
  Counters.release c 42;
  check_int "releasing unknown is a no-op" 0 (Counters.live c)

(* Gauges *)

let gauge_high_water () =
  let g = Gauges.create () in
  Gauges.add_observed_bytes g 100;
  Gauges.add_observed_bytes g 50;
  Gauges.add_observed_bytes g (-120);
  check_int "current" 30 (Gauges.observed_bytes g);
  check_int "high water" 150 (Gauges.observed_bytes_high_water g)

(* Edge profile *)

let edge_profile_counts () =
  let e = Edge_profile.create () in
  Edge_profile.record e ~src:1 ~dst:2;
  Edge_profile.record e ~src:1 ~dst:2;
  Edge_profile.record e ~src:3 ~dst:2;
  check_int "count accumulates" 2 (Edge_profile.count e ~src:1 ~dst:2);
  check_int "distinct edges" 2 (Edge_profile.n_edges e);
  Alcotest.(check (list int)) "preds" [ 1; 3 ] (Addr.Set.elements (Edge_profile.preds e 2));
  check_true "no preds for unknown block" (Addr.Set.is_empty (Edge_profile.preds e 9))

let edge_profile_index_invalidation () =
  let e = Edge_profile.create () in
  Edge_profile.record e ~src:1 ~dst:2;
  ignore (Edge_profile.preds e 2);
  Edge_profile.record e ~src:5 ~dst:2;
  Alcotest.(check (list int)) "index rebuilt after new edge" [ 1; 5 ]
    (Addr.Set.elements (Edge_profile.preds e 2))

(* Regions *)

let mk start size term = Block.make ~start ~size ~term

let trace_path () =
  (* A three-block path closing a cycle back to its entry. *)
  let b0 = mk 0 3 (Terminator.Cond 100) in
  let b1 = mk 3 2 Terminator.Fallthrough in
  let b2 = mk 5 2 (Terminator.Cond 0) in
  { Region.blocks = [ b0; b1; b2 ]; final_next = Some 0 }

let spec_of_path_cycle () =
  let spec = Region.spec_of_path ~kind:Region.Trace (trace_path ()) in
  check_int "entry is first block" 0 spec.Region.entry;
  check_int "three nodes" 3 (List.length spec.Region.nodes);
  check_int "seven instructions" 7 spec.Region.copied_insts;
  check_true "cycle edge present" (List.mem (5, 0) spec.Region.edges);
  check_int "three edges" 3 (List.length spec.Region.edges)

let spec_of_path_duplicates () =
  let b0 = mk 0 2 (Terminator.Jump 4) in
  let b1 = mk 4 3 (Terminator.Jump 0) in
  let path = { Region.blocks = [ b0; b1; b0; b1 ]; final_next = Some 0 } in
  let spec = Region.spec_of_path ~kind:Region.Trace path in
  check_int "nodes deduplicated" 2 (List.length spec.Region.nodes);
  check_int "copied instructions count each block once" 5 spec.Region.copied_insts

let spec_of_path_no_cycle () =
  let path =
    { (trace_path ()) with Region.final_next = Some 100 (* leaves the region *) }
  in
  let spec = Region.spec_of_path ~kind:Region.Trace path in
  check_int "only the two path edges" 2 (List.length spec.Region.edges)

let region_cyclic_detection () =
  let r = Region.of_spec ~id:0 ~selected_at:0 (Region.spec_of_path ~kind:Region.Trace (trace_path ())) in
  check_true "spans a cycle" r.Region.spans_cycle;
  check_true "has the internal edge" (Region.has_edge r ~src:5 ~dst:0);
  check_true "no phantom edge" (not (Region.has_edge r ~src:0 ~dst:5))

let region_stub_counts () =
  (* b0: Cond, taken side (100) leaves, fall side (3) internal -> 1 stub.
     b1: Fallthrough internal -> 0 stubs.
     b2: Cond, taken side (0) internal, fall side (7) leaves -> 1 stub. *)
  let r = Region.of_spec ~id:0 ~selected_at:0 (Region.spec_of_path ~kind:Region.Trace (trace_path ())) in
  check_int "two stubs" 2 r.Region.n_stubs

let region_stub_indirect () =
  let b0 = mk 0 2 Terminator.Fallthrough in
  let b1 = mk 2 2 Terminator.Return in
  let path = { Region.blocks = [ b0; b1 ]; final_next = Some 50 } in
  let r = Region.of_spec ~id:0 ~selected_at:0 (Region.spec_of_path ~kind:Region.Trace path) in
  (* Fallthrough internal; the return always needs its mispredict stub. *)
  check_int "return keeps one stub" 1 r.Region.n_stubs

let region_bad_spec () =
  let b0 = mk 0 2 Terminator.Fallthrough in
  check_true "edge endpoint must be a node"
    (try
       ignore
         (Region.of_spec ~id:0 ~selected_at:0
            { Region.entry = 0; nodes = [ b0 ]; edges = [ 0, 99 ]; copied_insts = 2;
              kind = Region.Trace; aux_entries = []; layout_hint = [] });
       false
     with Invalid_argument _ -> true);
  check_true "entry must be a node"
    (try
       ignore
         (Region.of_spec ~id:0 ~selected_at:0
            { Region.entry = 9; nodes = [ b0 ]; edges = []; copied_insts = 2;
              kind = Region.Trace; aux_entries = []; layout_hint = [] });
       false
     with Invalid_argument _ -> true)

let region_exit_log () =
  let r = Region.of_spec ~id:0 ~selected_at:0 (Region.spec_of_path ~kind:Region.Trace (trace_path ())) in
  Region.record_exit r ~from:0 ~tgt:100;
  Region.record_exit r ~from:0 ~tgt:100;
  Region.record_exit r ~from:5 ~tgt:7;
  check_int "exits counted" 3 r.Region.exits;
  Alcotest.(check (list int)) "exit targets" [ 7; 100 ]
    (Addr.Set.elements (Region.exit_targets r));
  Alcotest.(check (list int)) "exited_to resolves blocks" [ 0 ]
    (Addr.Set.elements (Region.exited_to r ~tgt:100))

(* Code cache *)

let cache_basics () =
  let cache = Code_cache.create () in
  let spec = Region.spec_of_path ~kind:Region.Trace (trace_path ()) in
  let r = Code_cache.install_exn cache spec in
  check_int "region id assigned" 0 r.Region.id;
  check_true "found by entry" (Code_cache.find cache 0 <> None);
  check_true "body addresses are not entries" (Code_cache.find cache 3 = None);
  check_int "one region" 1 (Code_cache.n_regions cache)

let cache_duplicate_rejected () =
  let cache = Code_cache.create () in
  let spec = Region.spec_of_path ~kind:Region.Trace (trace_path ()) in
  ignore (Code_cache.install_exn cache spec);
  check_true "duplicate entry reported as typed rejection"
    (Code_cache.install cache spec = Error Code_cache.Duplicate_entry);
  check_int "rejected install leaves one region" 1 (Code_cache.n_regions cache);
  check_true "install_exn raises on rejection"
    (try
       ignore (Code_cache.install_exn cache spec);
       false
     with Invalid_argument _ -> true)

let cache_selection_order () =
  let cache = Code_cache.create () in
  let spec1 = Region.spec_of_path ~kind:Region.Trace (trace_path ()) in
  let b = mk 100 2 Terminator.Halt in
  let spec2 =
    Region.spec_of_path ~kind:Region.Trace { Region.blocks = [ b ]; final_next = None }
  in
  let r1 = Code_cache.install_exn cache spec1 in
  let r2 = Code_cache.install_exn cache spec2 in
  check_true "selection order preserved"
    (List.map (fun (r : Region.t) -> r.Region.id) (Code_cache.regions cache) = [ 0; 1 ]);
  check_true "selected_at increases" (r1.Region.selected_at < r2.Region.selected_at)

let qcheck_stub_bound =
  (* Stubs never exceed two per block (a conditional's two directions). *)
  QCheck.Test.make ~name:"stub count bounded by 2x nodes" ~count:200
    QCheck.(int_range 1 30)
    (fun n ->
      let blocks =
        List.init n (fun i -> mk (i * 3) 3 (if i = n - 1 then Terminator.Return else Terminator.Fallthrough))
      in
      let path = { Region.blocks; final_next = None } in
      let r = Region.of_spec ~id:0 ~selected_at:0 (Region.spec_of_path ~kind:Region.Trace path) in
      r.Region.n_stubs <= 2 * n && r.Region.n_stubs >= 1)

let suite =
  [
    case "counter lifecycle" counter_lifecycle;
    case "counter high water" counter_high_water;
    case "counter release unknown" counter_release_unknown;
    case "gauge high water" gauge_high_water;
    case "edge profile counts" edge_profile_counts;
    case "edge profile index invalidation" edge_profile_index_invalidation;
    case "spec_of_path cycle" spec_of_path_cycle;
    case "spec_of_path duplicates" spec_of_path_duplicates;
    case "spec_of_path no cycle" spec_of_path_no_cycle;
    case "region cyclic detection" region_cyclic_detection;
    case "region stub counts" region_stub_counts;
    case "region stub indirect" region_stub_indirect;
    case "region bad spec" region_bad_spec;
    case "region exit log" region_exit_log;
    case "cache basics" cache_basics;
    case "cache duplicate rejected" cache_duplicate_rejected;
    case "cache selection order" cache_selection_order;
    QCheck_alcotest.to_alcotest qcheck_stub_bound;
  ]
