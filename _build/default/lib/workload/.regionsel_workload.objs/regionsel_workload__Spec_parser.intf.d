lib/workload/spec_parser.mli: Spec
