(** Runtime invariant sanitizer for the region pipeline.

    Two layers, both pure observation (a checked run computes the same
    metrics as an unchecked one, it just refuses to finish silently when
    the structures disagree):

    - {!audit_cache} walks the code cache and cross-checks every redundant
      structure against every other: the flat dispatch array against the
      entry/aux-entry hash indices, the per-region link slots against the
      dispatch array and target liveness, the FIFO tombstone accounting,
      the byte ledger, the telemetry span ledger, and the step clock.
      These are the DESIGN.md "Checked invariants" (see that section for
      the rule-by-rule rationale).

    - {!checked_run} wraps [Simulator.run] with a differential oracle: a
      second, pure interpreter shadow-steps the run and every executed
      (block, branch outcome, target) triple must match — region dispatch,
      compiled automata, fragment links and fault recovery may change
      {e where} metrics are attributed, never {e what} the program
      executes.  It also installs {!audit_cache} behind the cache's
      auditor hook so every mutating cache operation is audited at the
      step it happens.

    Violations raise {!Check_violation} with the failing rule's name, the
    step, and a human-readable explanation — the fuzz driver
    ([regionsel_fuzz]) turns the first one into a shrunk reproducer. *)

type violation = {
  step : int;  (** Simulation step at which the rule failed. *)
  rule : string;  (** Stable rule name, e.g. ["dispatch-live"]. *)
  detail : string;  (** Human-readable explanation. *)
}

exception Check_violation of violation

val violation_to_string : violation -> string

val audit_cache :
  ?telemetry:Regionsel_telemetry.Telemetry.t ->
  program:Regionsel_isa.Program.t ->
  Regionsel_engine.Code_cache.t ->
  step:int ->
  unit
(** Audit every cache invariant, raising {!Check_violation} (stamped with
    [step]) on the first failure.  Rules, in checking order:

    - ["dispatch-live"]: every dispatch slot holds a live region.
    - ["dispatch-claim"]: that region claims the slot's block as its entry
      or one of its aux entries.
    - ["live-count"]: the entry index holds exactly [n_regions] regions.
    - ["entry-key"]: each entry-index key is its region's entry address.
    - ["aux-key"]: each aux-index key is in its region's aux-entry set.
    - ["aux-live"]: each aux-index region is live.
    - ["index-block"] / ["index-dispatch"]: each index binding routes
      through a block-start address whose dispatch slot holds that exact
      region — [find] and [dispatch] can never disagree.
    - ["link-live"] / ["link-dispatch"]: a patched link slot targets a live
      region and agrees with the dispatch array ({e no link outlives its
      target}).
    - ["fifo-accounting"]: [fifo_length - fifo_tombstones = n_regions].
    - ["fifo-tombstones"]: tombstones never exceed [max 8 n_regions].
    - ["bytes-accounting"]: [bytes_used] equals the summed
      [Region.cache_bytes] of the live regions.
    - ["clock-monotone"]: [Code_cache.set_now] was never handed a stale
      step.
    - ["quota-accounting"]: with a quota set ([Code_cache.set_quota]), the
      live footprint fits it — the multi-stream budget invariant.
    - ["span-open"] / ["span-ledger"] (with [telemetry]): the open
      telemetry spans are exactly the live regions. *)

val checked_run :
  ?params:Regionsel_engine.Params.t ->
  ?seed:int64 ->
  ?telemetry:Regionsel_telemetry.Telemetry.t ->
  ?audit_every:int ->
  ?break_at:int ->
  ?on_window:Regionsel_engine.Simulator.window_hook ->
  ?checkpoint:int * (Regionsel_engine.Simulator.internals -> unit) ->
  ?restore:(Regionsel_engine.Simulator.internals -> unit) ->
  ?record:Regionsel_engine.Branch_stream.events ->
  ?replay:Regionsel_engine.Branch_stream.events ->
  policy:(module Regionsel_engine.Policy.S) ->
  max_steps:int ->
  Regionsel_workload.Image.t ->
  Regionsel_engine.Simulator.result
(** [Simulator.run] under the sanitizer ([params.validate] is forced on).
    A shadow interpreter with the same image and seed is stepped in
    lockstep; any divergence in executed block, branch outcome or target
    raises (rules ["oracle-halt"], ["oracle-block"], ["oracle-branch"],
    ["oracle-target"]).  Region mode's believed position is checked
    against the interpreter's ground truth every step
    (["region-position"]).  {!audit_cache} runs after every mutating cache
    operation, every [audit_every] steps (default 64; [0] disables the
    periodic sweep), and once after the run; the final sweep also checks
    that every telemetry span closed with [retired_at >= installed_at]
    (["span-duration"]) and that installs and closed spans agree
    (["span-count"]).

    [telemetry] supplies the recorder to audit against (a fresh one is
    created otherwise); it is threaded into the run as its sink, so a
    caller exporting traces audits the very recorder it exports.

    [break_at] is the fuzz driver's self-test hook: from that step on, the
    first live region is deliberately desynchronized from the entry index
    ([Code_cache.unsafe_corrupt_for_tests]) — a healthy sanitizer must
    then raise.  Never set it outside tests.

    [checkpoint] and [restore] pass through to [Simulator.run]; on restore
    the shadow oracle is fast-forwarded to the restored interpreter
    position, so a checked run can resume a snapshot without spurious
    divergence reports.

    [record] and [replay] pass through to [Simulator.run].  A checked
    {e replay} is a strong oracle: the recorded events are cross-checked
    step by step against the shadow interpreter, so a recording that does
    not reproduce the live program's exact branch stream raises rather
    than silently skewing metrics. *)
