lib/engine/interp.ml: Addr Block Printf Program Regionsel_isa Regionsel_prng Regionsel_workload Stack Terminator
