(** Code addresses in the virtual ISA.

    An address identifies one instruction.  Instructions are unit-sized, so
    the instruction after address [a] lives at [a + 1]; byte sizes only enter
    the picture in the memory-cost model of {!Regionsel_metrics}.  The
    ordering of addresses is what makes a branch "backward" ([target <=
    source]), which is the load-bearing notion for both NET and LEI. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val none : t
(** A sentinel that is not a valid address (valid addresses are [>= 0]).
    Hot paths use it in place of an [option] to stay allocation-free. *)

val is_none : t -> bool
(** [is_none a] iff [a] is the {!none} sentinel (any negative value). *)

val is_backward : src:t -> tgt:t -> bool
(** [is_backward ~src ~tgt] is [tgt <= src]: the transfer moves control to a
    lower (or equal) address, the paper's criterion for a branch that may
    close a loop. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering, e.g. [0x104]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
