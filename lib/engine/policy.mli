(** The region-selection policy interface.

    A policy is the pluggable heart of the system: NET, LEI, their combined
    variants and the related-work algorithms all implement this signature.
    The simulator delivers two kinds of events:

    - [Interp_block]: a block was just executed {e by the interpreter}
      (never delivered for blocks executed from the code cache).  The policy
      sees every interpreted block, including ones whose taken branch is
      about to dispatch into the cache — it must itself skip profiling work
      in that case, mirroring lines 1-4 of the paper's Figure 5.
    - [Cache_exited]: execution left a cached region through an exit stub
      whose target is {e not} cached (a linked stub — one leading to another
      region — performs no profiling in a real system, so no event is
      delivered for it).
    - [Region_invalidated]: a region the policy had installed was retired
      by a fault (self-modifying code, cache shock) or a watchdog bailout —
      or an install the policy requested was rejected (translation failure,
      blacklist cooldown, bailout), in which case [entry] is the entry of
      the spec that never made it in.  The policy should drop any stale
      observation state keyed by that entry — counters, pending formers,
      stored traces — so re-selection starts from scratch.  Never delivered
      on clean (zero-fault) runs.

    A policy responds with at most one region to install.  The simulator
    installs it and, if the current transfer targets the new region's entry,
    dispatches into it immediately — the paper's "jump newT".

    [Interp_block] fires once per interpreted block — the hottest edge in
    the whole system — so its payload is a mutable record the simulator
    preallocates and reuses, with [Addr.none] standing in for "no next
    block".  Policies must read the fields during [handle] and must not
    retain the record. *)

open Regionsel_isa

type interp_block = { mutable block : Block.t; mutable taken : bool; mutable next : Addr.t }

type event =
  | Interp_block of interp_block
  | Cache_exited of { from_entry : Addr.t; src : Addr.t; tgt : Addr.t }
  | Region_invalidated of { entry : Addr.t }

type action = No_action | Install of Region.spec list

module type S = sig
  type t

  val name : string
  val create : Context.t -> t
  val handle : t -> event -> action

  val save : t -> (int -> unit) -> unit
  (** Checkpoint support: serialize the policy's warm observation state
      (counters, pending formers, stored traces, history cursors) as a
      flat int stream.  A stateless policy emits nothing. *)

  val load : Context.t -> (unit -> int) -> t
  (** Rebuild a policy instance from a {!save} stream over the given
      context.  [load ctx] of a stream saved by a fresh instance must
      behave exactly like [create ctx].  Raises [Failure] on a
      structurally invalid stream. *)
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed

val instantiate : (module S) -> Context.t -> packed
val handle : packed -> event -> action
val name : (module S) -> string

val save : packed -> (int -> unit) -> unit
(** {!S.save} through the packing. *)

val load : (module S) -> Context.t -> (unit -> int) -> packed
(** {!S.load} through the packing: rebuild a packed instance of the given
    policy module from a saved stream. *)
