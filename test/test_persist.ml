(* Crash-safe warm-state checkpoint/restore: the differential identity
   gate (save at step N + restore + continue is bit-identical to the
   uninterrupted run across every policy and dispatch mode), per-section
   codec round-trips, corruption tolerance with graceful degradation, and
   atomic on-disk writes. *)

module Image = Regionsel_workload.Image
module Simulator = Regionsel_engine.Simulator
module Params = Regionsel_engine.Params
module Context = Regionsel_engine.Context
module Code_cache = Regionsel_engine.Code_cache
module History_buffer = Regionsel_core.History_buffer
module Policies = Regionsel_core.Policies
module Telemetry = Regionsel_telemetry.Telemetry
module Run_metrics = Regionsel_metrics.Run_metrics
module Persist = Regionsel_persist.Persist
module Check = Regionsel_check.Check
module Fuzz = Regionsel_check.Fuzz
open Fixtures

let policy_exn name = Option.get (Policies.find name)

(* Run [image] with a telemetry sink, capturing an encoded snapshot the
   first time the step count reaches [at] ([max_int] = after the last
   step).  [restore] decodes a snapshot before the first step. *)
let capture ?restore ~at ~params ~policy ~seed ~max_steps image =
  let bytes = ref None in
  let checkpoint =
    (at, fun internals -> bytes := Some (Persist.encode ~seed ~policy internals))
  in
  let result =
    Simulator.run ~params ~seed
      ~telemetry:(Some (Telemetry.create ()))
      ~checkpoint ?restore
      ~policy:(policy_exn policy)
      ~max_steps image
  in
  (result, Option.get !bytes)

let get_u32 bytes pos =
  (Char.code (Bytes.get bytes pos) lsl 24)
  lor (Char.code (Bytes.get bytes (pos + 1)) lsl 16)
  lor (Char.code (Bytes.get bytes (pos + 2)) lsl 8)
  lor Char.code (Bytes.get bytes (pos + 3))

let set_u32 bytes pos v =
  Bytes.set bytes pos (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set bytes (pos + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set bytes (pos + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set bytes (pos + 3) (Char.chr (v land 0xFF))

(* Walk the file format: magic(4) ver(4) n_blocks(4) seed(8) nlen(4) name
   n_sections(4) crc(4), then frames of tag(4) ver(4) len(4) crc(4)
   payload. *)
let frames bytes =
  let name_len = get_u32 bytes 20 in
  let pos = ref (24 + name_len + 8) in
  let acc = ref [] in
  while !pos < Bytes.length bytes do
    let plen = get_u32 bytes (!pos + 8) in
    acc := (get_u32 bytes !pos, !pos, plen) :: !acc;
    pos := !pos + 16 + plen
  done;
  List.rev !acc

(* Name the sections whose frames differ between two snapshots, for
   failure messages that say *what* state diverged. *)
let diff_frames a b =
  let frame bytes (tag, fpos, plen) = (tag, Bytes.sub bytes fpos (16 + plen)) in
  let fa = List.map (frame a) (frames a) and fb = List.map (frame b) (frames b) in
  if List.length fa <> List.length fb then [ "frame count" ]
  else
    List.filter_map
      (fun ((tag, pa), (_, pb)) ->
        if Bytes.equal pa pb then None
        else
          let n = min (Bytes.length pa) (Bytes.length pb) in
          let off = ref 16 in
          while !off < n && Bytes.get pa !off = Bytes.get pb !off do
            incr off
          done;
          Some
            (Printf.sprintf "tag %d (lens %d/%d, first diff at %d)" tag (Bytes.length pa)
               (Bytes.length pb) !off))
      (List.combine fa fb)

(* A restore hook that insists on a fully clean decode and runs the cache
   auditor the instant the state is back. *)
let clean_restore ~bytes ~policy ~seed (internals : Simulator.internals) =
  let report = Persist.decode_into bytes ~seed ~policy internals in
  if not (Persist.clean report) then
    Alcotest.fail
      (Printf.sprintf "expected a clean restore, got %d degraded sections (%s)"
         (List.length report.Persist.degraded)
         (String.concat "; "
            (List.map (fun (d : Persist.degraded) -> d.Persist.section) report.Persist.degraded)));
  let cache = internals.Simulator.int_ctx.Context.cache in
  Check.audit_cache ~program:internals.Simulator.int_ctx.Context.program cache
    ~step:(Code_cache.now cache)

(* The tentpole gate: for one (policy, params) point, an uninterrupted run
   and a save-at-mid + restore-into-fresh-run + continue must agree on the
   metric record byte-for-byte AND on a full end-of-run snapshot
   byte-for-byte — the latter pins every PRNG stream position, telemetry
   counter and policy-private structure, not just the reported metrics. *)
let assert_identity ?(seed = 7L) ~params ~policy ~max_steps ~mid image =
  let full_result, full_end = capture ~at:max_int ~params ~policy ~seed ~max_steps image in
  let _, mid_bytes = capture ~at:mid ~params ~policy ~seed ~max_steps image in
  let restored_result, restored_end =
    capture
      ~restore:(clean_restore ~bytes:mid_bytes ~policy ~seed)
      ~at:max_int ~params ~policy ~seed ~max_steps image
  in
  Alcotest.(check string)
    (policy ^ ": restored metrics JSON is byte-identical")
    (Run_metrics.to_json (Run_metrics.of_result full_result))
    (Run_metrics.to_json (Run_metrics.of_result restored_result));
  if not (Bytes.equal full_end restored_end) then
    Alcotest.failf "%s (mid %d): end-of-run snapshot diverged in sections [%s]" policy mid
      (String.concat "; " (diff_frames full_end restored_end))

let identity_across_policies_and_dispatch_modes () =
  let image = figure2 ~iters:4_000 () in
  check_int "the whole policy matrix is under test" 7 (List.length Policies.all);
  List.iter
    (fun (policy, _) ->
      List.iter
        (fun threaded ->
          let params = { Params.default with Params.threaded_dispatch = threaded } in
          assert_identity ~params ~policy ~max_steps:30_000 ~mid:11_000 image)
        [ true; false ])
    Policies.all

(* The same gate under an adversarial schedule: every fault stream firing,
   including optimizer crashes, with the snapshot taken between faults. *)
let identity_under_mixed_faults_with_crashes () =
  let profile =
    {
      Params.first_fault_step = 4_000;
      smc_period = 11_000;
      smc_span_blocks = 4;
      translation_failure_period = 13_000;
      translation_failure_window = 1_000;
      async_exit_period = 7_000;
      cache_shock_period = 17_000;
      cache_shock_bytes = 4_096;
      crash_period = 19_000;
    }
  in
  let image = figure2 ~iters:20_000 () in
  List.iter
    (fun threaded ->
      let params =
        { Params.default with Params.faults = Some profile; threaded_dispatch = threaded }
      in
      List.iter
        (fun mid -> assert_identity ~params ~policy:"net" ~max_steps:60_000 ~mid image)
        [ 9_500; 31_000 ])
    [ true; false ]

(* Restoring under the sanitizer: the shadow oracle fast-forwards to the
   restored position, so a checked run can resume a snapshot without
   spurious divergence reports (and with per-mutation audits on). *)
let checked_run_resumes_a_snapshot () =
  let image = figure2 ~iters:4_000 () in
  let policy = "net" and seed = 7L in
  let params = Params.default in
  let _, mid_bytes = capture ~at:11_000 ~params ~policy ~seed ~max_steps:30_000 image in
  let result =
    Check.checked_run ~params ~seed
      ~restore:(fun internals ->
        let report = Persist.decode_into mid_bytes ~seed ~policy internals in
        check_true "checked restore is clean" (Persist.clean report))
      ~policy:(policy_exn policy) ~max_steps:30_000 image
  in
  let full, _ = capture ~at:max_int ~params ~policy ~seed ~max_steps:30_000 image in
  (* Restore reconciles the span ledger (closing spans that were live at
     the checkpoint), so the open/closed split legitimately differs from
     an uninterrupted run.  Every other metric — including the telemetry
     event counts — must match exactly. *)
  let norm (m : Run_metrics.t) =
    {
      m with
      Run_metrics.telemetry =
        Option.map
          (fun (emitted, dropped, _open_, _closed) -> (emitted, dropped, 0, 0))
          m.Run_metrics.telemetry;
    }
  in
  Alcotest.(check string)
    "checked resumed run reports the uninterrupted metrics"
    (Run_metrics.to_json (norm (Run_metrics.of_result full)))
    (Run_metrics.to_json (norm (Run_metrics.of_result result)))

(* ---- Snapshot surgery helpers for the corruption tests ---- *)

(* An independent CRC32 (same IEEE polynomial as the writer) so the tests
   can forge section frames with valid checksums. *)
let crc_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let crc_update c bytes ~pos ~len =
  let acc = ref c in
  for i = pos to pos + len - 1 do
    acc := crc_table.((!acc lxor Char.code (Bytes.get bytes i)) land 0xFF) lxor (!acc lsr 8)
  done;
  !acc

let crc32_frame bytes ~hpos ~ppos ~plen =
  crc_update (crc_update 0xFFFFFFFF bytes ~pos:hpos ~len:12) bytes ~pos:ppos ~len:plen
  lxor 0xFFFFFFFF

(* Re-seal a frame whose header or payload the test just edited. *)
let reseal bytes fpos plen =
  set_u32 bytes (fpos + 12) (crc32_frame bytes ~hpos:fpos ~ppos:(fpos + 16) ~plen)

let mk_snapshot () =
  let image = figure2 ~iters:4_000 () in
  let policy = "lei" and seed = 7L in
  let params = Params.default in
  let _, bytes = capture ~at:11_000 ~params ~policy ~seed ~max_steps:30_000 image in
  (image, policy, seed, params, bytes)

(* Decode [bytes] into a fresh run's state and hand back the report. *)
let decode_fresh (image, policy, seed, params, bytes) =
  let got = ref None in
  let (_ : Simulator.result) =
    Simulator.run ~params ~seed
      ~telemetry:(Some (Telemetry.create ()))
      ~restore:(fun internals ->
        let report = Persist.decode_into bytes ~seed ~policy internals in
        (* Whatever was dropped, the structural cache invariants must hold
           before the run takes its first step. *)
        let cache = internals.Simulator.int_ctx.Context.cache in
        Check.audit_cache ~program:internals.Simulator.int_ctx.Context.program cache
          ~step:(Code_cache.now cache);
        got := Some report)
      ~policy:(policy_exn policy) ~max_steps:30_000 image
  in
  Option.get !got

let sections_of report = List.map (fun (d : Persist.degraded) -> d.Persist.section) report.Persist.degraded

(* A snapshot and the run restoring it need not agree on instrumentation.
   Both skew directions must keep the sanitizer's open-spans =
   live-regions rule intact: a sink-less snapshot restored into an
   instrumented run re-announces its live regions to the ledger, and a
   snapshot whose cache section is lost (but whose telemetry section
   survives) closes the ghost spans. *)
let restore_reconciles_span_ledger () =
  let image = figure2 ~iters:4_000 () in
  let policy = "lei" and seed = 7L in
  let params = Params.default in
  (* Direction 1: saved without a telemetry sink, restored under check. *)
  let sinkless_bytes =
    let bytes = ref None in
    let checkpoint =
      (11_000, fun internals -> bytes := Some (Persist.encode ~seed ~policy internals))
    in
    let (_ : Simulator.result) =
      Simulator.run ~params ~seed ~checkpoint ~policy:(policy_exn policy) ~max_steps:30_000
        image
    in
    Option.get !bytes
  in
  let (_ : Simulator.result) =
    Check.checked_run ~params ~seed
      ~restore:(fun internals ->
        let report = Persist.decode_into sinkless_bytes ~seed ~policy internals in
        check_true "sink-less restore is clean" (Persist.clean report))
      ~policy:(policy_exn policy) ~max_steps:30_000 image
  in
  (* Direction 2: cache section corrupted, telemetry section intact. *)
  let _, sink_bytes = capture ~at:11_000 ~params ~policy ~seed ~max_steps:30_000 image in
  let tag, fpos, plen =
    List.find (fun (tag, _, _) -> tag = 7) (frames sink_bytes)
  in
  check_int "found the cache frame" 7 tag;
  let mutant = Bytes.copy sink_bytes in
  Bytes.set mutant (fpos + 16 + (plen / 2))
    (Char.chr (Char.code (Bytes.get mutant (fpos + 16 + (plen / 2))) lxor 0x40));
  let (_ : Simulator.result) =
    Check.checked_run ~params ~seed
      ~restore:(fun internals ->
        let report = Persist.decode_into mutant ~seed ~policy internals in
        Alcotest.(check (list string))
          "only the cache section dropped" [ "cache" ] (sections_of report))
      ~policy:(policy_exn policy) ~max_steps:30_000 image
  in
  ()

let flipped_payload_degrades_only_that_section () =
  let image, policy, seed, params, bytes = mk_snapshot () in
  let tag, fpos, plen = List.nth (frames bytes) 6 in
  check_int "frame 6 is the cache section" 7 tag;
  check_true "cache payload is non-trivial" (plen > 16);
  let mutant = Bytes.copy bytes in
  Bytes.set mutant (fpos + 16 + (plen / 2))
    (Char.chr (Char.code (Bytes.get mutant (fpos + 16 + (plen / 2))) lxor 0x40));
  let report = decode_fresh (image, policy, seed, params, mutant) in
  Alcotest.(check (list string)) "only the cache section dropped" [ "cache" ] (sections_of report);
  check_true "everything else restored"
    (List.length report.Persist.restored = List.length (frames bytes) - 1);
  check_int "nothing skipped" 0 report.Persist.skipped

let flipped_tag_is_checksummed_not_skipped () =
  (* The frame checksum covers the header: corrupting the tag must surface
     as a degraded section, never as a silently-skipped unknown one. *)
  let image, policy, seed, params, bytes = mk_snapshot () in
  let _, fpos, _ = List.hd (frames bytes) in
  let mutant = Bytes.copy bytes in
  set_u32 mutant fpos 99;
  let report = decode_fresh (image, policy, seed, params, mutant) in
  Alcotest.(check (list string)) "tag flip degrades the frame" [ "tag-99" ] (sections_of report);
  check_int "tag flip is not a skip" 0 report.Persist.skipped

let unknown_tag_with_valid_seal_is_skipped () =
  (* A well-formed frame from a future writer (unknown tag, valid
     checksum) is version skew, not corruption: skipped, not degraded. *)
  let image, policy, seed, params, bytes = mk_snapshot () in
  let _, fpos, plen = List.hd (frames bytes) in
  let mutant = Bytes.copy bytes in
  set_u32 mutant fpos 99;
  reseal mutant fpos plen;
  let report = decode_fresh (image, policy, seed, params, mutant) in
  check_int "future-tag frame skipped" 1 report.Persist.skipped;
  Alcotest.(check (list string)) "nothing degraded" [] (sections_of report)

let version_skewed_section_degrades () =
  let image, policy, seed, params, bytes = mk_snapshot () in
  let _, fpos, plen = List.nth (frames bytes) 1 in
  let mutant = Bytes.copy bytes in
  set_u32 mutant (fpos + 4) 2;
  reseal mutant fpos plen;
  let report = decode_fresh (image, policy, seed, params, mutant) in
  Alcotest.(check (list string)) "stats section dropped on version skew" [ "stats" ]
    (sections_of report);
  match report.Persist.degraded with
  | [ d ] -> check_true "reason names the version" (d.Persist.reason = "unsupported section version 2")
  | _ -> Alcotest.fail "expected exactly one degraded section"

let truncation_degrades_tail_sections () =
  let image, policy, seed, params, bytes = mk_snapshot () in
  let _, fpos, plen = List.nth (frames bytes) 6 in
  (* Cut inside the cache payload: cache and every later section die,
     every earlier section survives. *)
  let mutant = Bytes.sub bytes 0 (fpos + 16 + (plen / 2)) in
  let report = decode_fresh (image, policy, seed, params, mutant) in
  check_true "the cut section is degraded" (List.mem "cache" (sections_of report));
  check_true "earlier sections survived" (List.mem "interp" report.Persist.restored);
  check_true "later sections gone" (not (List.mem "loop" report.Persist.restored));
  (* A cut at an exact frame boundary parses as a shorter-but-valid file;
     the header's section count must still convict it (otherwise the
     missing tail would re-warm silently). *)
  let boundary = Bytes.sub bytes 0 fpos in
  let report = decode_fresh (image, policy, seed, params, boundary) in
  check_true "boundary truncation is not a clean restore"
    (not (Persist.clean report));
  check_true "boundary truncation names the missing tail"
    (List.mem "<file>" (sections_of report))

let header_damage_is_hard_corruption () =
  let image, policy, seed, params, bytes = mk_snapshot () in
  List.iter
    (fun (label, mutate) ->
      let mutant = Bytes.copy bytes in
      mutate mutant;
      match decode_fresh (image, policy, seed, params, mutant) with
      | (_ : Persist.report) -> Alcotest.fail (label ^ ": expected Hard_corruption")
      | exception Persist.Hard_corruption _ -> ())
    [
      ("magic", fun b -> Bytes.set b 0 'X');
      ("format version", fun b -> set_u32 b 4 9);
      ("seed word", fun b -> set_u32 b 12 (get_u32 b 12 lxor 1));
      ( "section count",
        fun b -> set_u32 b (24 + get_u32 b 20) (get_u32 b (24 + get_u32 b 20) lxor 1) );
      ( "header checksum",
        fun b -> set_u32 b (28 + get_u32 b 20) (get_u32 b (28 + get_u32 b 20) lxor 1) );
      ("empty file", fun b -> Bytes.fill b 0 (Bytes.length b) '\000');
    ];
  (* Identity mismatches are also hard: restoring under the wrong policy
     or seed must refuse rather than silently continue a different run. *)
  (match decode_fresh (image, "net", seed, params, bytes) with
  | (_ : Persist.report) -> Alcotest.fail "policy mismatch: expected Hard_corruption"
  | exception Persist.Hard_corruption _ -> ());
  match decode_fresh (image, policy, 8L, params, bytes) with
  | (_ : Persist.report) -> Alcotest.fail "seed mismatch: expected Hard_corruption"
  | exception Persist.Hard_corruption _ -> ()

let degraded_restore_still_finishes () =
  (* Drop the cache section and run to completion: the re-warmed cache
     refills and the run ends sane (fresh regions, no violations). *)
  let image, policy, seed, params, bytes = mk_snapshot () in
  let tag, fpos, plen = List.nth (frames bytes) 6 in
  check_int "frame 6 is the cache section" 7 tag;
  let mutant = Bytes.copy bytes in
  Bytes.set mutant (fpos + 16) (Char.chr (Char.code (Bytes.get mutant (fpos + 16)) lxor 1));
  ignore plen;
  let result =
    Simulator.run ~params ~seed
      ~restore:(fun internals ->
        let report = Persist.decode_into mutant ~seed ~policy internals in
        check_true "cache dropped" (List.mem "cache" (sections_of report)))
      ~policy:(policy_exn policy) ~max_steps:30_000 image
  in
  let m = Run_metrics.of_result result in
  check_true "run completed past the snapshot point" (m.Run_metrics.steps > 11_000);
  check_true "re-warmed cache selected regions again" (m.Run_metrics.n_regions > 0)

(* ---- qcheck properties ---- *)

let genome_gen = QCheck.(list_of_size (Gen.int_range 1 5) (int_bound 1000))

(* Decode-then-re-encode is the identity on snapshot bytes: every section
   codec reproduces, from its restored state, the exact stream it was
   loaded from (random workloads, policies and checkpoint moments). *)
let qcheck_reencode_identity =
  QCheck.Test.make ~name:"decode then re-encode reproduces the snapshot byte-for-byte"
    ~count:20
    QCheck.(triple genome_gen (int_bound 1000) (int_bound 6))
    (fun (genome, seed_small, policy_idx) ->
      let image = Fuzz.image_of_genome genome in
      let policy = fst (List.nth Policies.all policy_idx) in
      let seed = Int64.of_int (seed_small + 1) in
      let params = Params.default in
      let bytes =
        let _, b = capture ~at:1_000 ~params ~policy ~seed ~max_steps:2_000 image in
        b
      in
      let reencoded = ref None in
      let (_ : Simulator.result) =
        Simulator.run ~params ~seed
          ~telemetry:(Some (Telemetry.create ()))
          ~restore:(fun internals ->
            let report = Persist.decode_into bytes ~seed ~policy internals in
            if not (Persist.clean report) then
              QCheck.Test.fail_report "restore of a pristine snapshot degraded";
            reencoded := Some (Persist.encode ~seed ~policy internals))
          ~policy:(policy_exn policy) ~max_steps:2_000 image
      in
      let reencoded = Option.get !reencoded in
      if not (Bytes.equal bytes reencoded) then
        QCheck.Test.fail_reportf "re-encode diverged in sections [%s]"
          (String.concat "; " (diff_frames bytes reencoded));
      true)

(* The PR 5 aliasing regression class: a history buffer whose ring cursor
   has wrapped (and possibly been truncated back) must round-trip through
   its codec with identical bytes and identical lookup behaviour. *)
let qcheck_history_buffer_roundtrip =
  QCheck.Test.make ~name:"history buffer codec round-trips wrapped-cursor states" ~count:200
    QCheck.(
      pair (int_range 2 8)
        (list_of_size (Gen.int_range 0 40) (pair (int_bound 50) (int_bound 20))))
    (fun (capacity, ops) ->
      let t = History_buffer.create ~capacity in
      let seqs =
        List.map
          (fun (src, tgt) ->
            History_buffer.insert t ~src ~tgt ~follows_exit:(src mod 3 = 0))
          ops
      in
      (* Occasionally rewind: truncate_after moves the cursor backwards,
         the other half of the wraparound state space. *)
      (match seqs with
      | s :: _ :: _ when capacity mod 2 = 0 -> History_buffer.truncate_after t ~seq:s
      | _ -> ());
      let dump u =
        let acc = ref [] in
        History_buffer.save u (fun v -> acc := v :: !acc);
        List.rev !acc
      in
      let saved = dump t in
      let t' = History_buffer.create ~capacity in
      let arr = Array.of_list saved in
      let i = ref 0 in
      History_buffer.load t' (fun () ->
          let v = arr.(!i) in
          incr i;
          v);
      dump t' = saved
      && List.for_all
           (fun tgt -> History_buffer.find t tgt = History_buffer.find t' tgt)
           (List.init 21 Fun.id))

(* ---- Corruption fuzz (the snapshot axis of regionsel_fuzz) ---- *)

let snapshot_corruption_axis () =
  for seed = 1 to 3 do
    match Fuzz.run_snapshot_seed ~corruptions:20 ~max_steps:2_000 seed with
    | None, s ->
      check_true "control restore was clean" (s.Fuzz.snap_clean >= 1);
      check_int "every restore classified" 21 s.Fuzz.snap_cases
    | Some (c, detail), _ -> Alcotest.fail (Fuzz.cli_line c ^ ": " ^ detail)
  done

(* ---- On-disk atomicity ---- *)

let with_internals_at ~at (image, policy, seed, params) f =
  let got = ref None in
  let (_ : Simulator.result) =
    Simulator.run ~params ~seed
      ~checkpoint:(at, fun internals -> got := Some (f internals))
      ~policy:(policy_exn policy) ~max_steps:30_000 image
  in
  Option.get !got

let torn_write_leaves_previous_snapshot_intact () =
  let image = figure2 ~iters:4_000 () in
  let cfg = (image, "net", 7L, Params.default) in
  let path = Filename.temp_file "regionsel" ".snap" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () ->
      (* A good snapshot at step 8k, then a crash halfway through writing
         a later one: the file must still hold the step-8k state. *)
      with_internals_at ~at:8_000 cfg (fun internals ->
          Persist.save_file ~path ~seed:7L ~policy:"net" internals);
      let good = In_channel.with_open_bin path In_channel.input_all in
      with_internals_at ~at:20_000 cfg (fun internals ->
          Persist.save_file ~crash_after_bytes:(String.length good / 3) ~path ~seed:7L
            ~policy:"net" internals);
      let after = In_channel.with_open_bin path In_channel.input_all in
      Alcotest.(check string) "crashed checkpoint never touched the snapshot" good after;
      check_true "the torn temporary is a partial prefix"
        (Sys.file_exists (path ^ ".tmp")
        && (Unix.stat (path ^ ".tmp")).Unix.st_size = String.length good / 3);
      (* And the surviving file restores cleanly. *)
      let report = ref None in
      let (_ : Simulator.result) =
        Simulator.run ~params:Params.default ~seed:7L
          ~restore:(fun internals ->
            report := Some (Persist.restore_file ~path ~seed:7L ~policy:"net" internals))
          ~policy:(policy_exn "net") ~max_steps:30_000 image
      in
      check_true "survivor restores clean" (Persist.clean (Option.get !report));
      (* A completed save replaces it and removes the temporary. *)
      with_internals_at ~at:20_000 cfg (fun internals ->
          Persist.save_file ~path ~seed:7L ~policy:"net" internals);
      let replaced = In_channel.with_open_bin path In_channel.input_all in
      check_true "completed save replaced the snapshot" (replaced <> good))

let missing_file_raises_sys_error () =
  let image = figure2 ~iters:4_000 () in
  match
    Simulator.run ~params:Params.default ~seed:7L
      ~restore:(fun internals ->
        ignore
          (Persist.restore_file ~path:"/nonexistent/regionsel.snap" ~seed:7L ~policy:"net"
             internals))
      ~policy:(policy_exn "net") ~max_steps:1_000 image
  with
  | (_ : Simulator.result) -> Alcotest.fail "expected Sys_error"
  | exception Sys_error _ -> ()

let suite =
  [
    case "identity across policies and dispatch modes" identity_across_policies_and_dispatch_modes;
    case "identity under mixed faults with crashes" identity_under_mixed_faults_with_crashes;
    case "checked run resumes a snapshot" checked_run_resumes_a_snapshot;
    case "restore reconciles span ledger" restore_reconciles_span_ledger;
    case "flipped payload degrades only that section" flipped_payload_degrades_only_that_section;
    case "flipped tag is checksummed, not skipped" flipped_tag_is_checksummed_not_skipped;
    case "unknown tag with valid seal is skipped" unknown_tag_with_valid_seal_is_skipped;
    case "version-skewed section degrades" version_skewed_section_degrades;
    case "truncation degrades tail sections" truncation_degrades_tail_sections;
    case "header damage is hard corruption" header_damage_is_hard_corruption;
    case "degraded restore still finishes" degraded_restore_still_finishes;
    QCheck_alcotest.to_alcotest qcheck_reencode_identity;
    QCheck_alcotest.to_alcotest qcheck_history_buffer_roundtrip;
    case "snapshot corruption axis" snapshot_corruption_axis;
    case "torn write leaves previous snapshot intact" torn_write_leaves_previous_snapshot_intact;
    case "missing file raises Sys_error" missing_file_raises_sys_error;
  ]
