(* The streaming region-selection daemon binary: a thin cmdliner shell
   around [Regionsel_serve.Server].

   Exit codes follow the repo-wide discipline (documented in DESIGN.md):
   0 = clean shutdown (signal or ctrl shutdown), 2 = CLI error, 3 =
   sanitizer violation (flight recorder already dumped), 4 = I/O error,
   5 = snapshot hard corruption. *)

open Cmdliner
module Server = Regionsel_serve.Server
module Check = Regionsel_check.Check
module Persist = Regionsel_persist.Persist

let with_error_reporting f =
  try f () with
  | Check.Check_violation v ->
    Printf.eprintf "%s\n%!" (Check.violation_to_string v);
    exit 3
  | Sys_error msg ->
    Printf.eprintf "i/o error: %s\n%!" msg;
    exit 4
  | Unix.Unix_error (err, fn, arg) ->
    Printf.eprintf "i/o error: %s: %s%s\n%!" fn (Unix.error_message err)
      (if arg = "" then "" else " (" ^ arg ^ ")");
    exit 4
  | Persist.Hard_corruption msg ->
    Printf.eprintf "snapshot hard corruption: %s\n%!" msg;
    exit 5
  | Invalid_argument msg ->
    Printf.eprintf "error: %s\n%!" msg;
    exit 2

let socket_arg =
  let doc = "Unix-domain socket path to listen on." in
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let state_dir_arg =
  let doc = "Directory for session snapshots and flight dumps (created if missing)." in
  Arg.(required & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)

let budget_arg =
  let doc = "Shared code-cache budget in bytes across all tenants (default unlimited)." in
  Arg.(value & opt (some int) None & info [ "budget-bytes" ] ~docv:"N" ~doc)

let quota_floor_arg =
  let doc =
    "Admission floor: reject a new tenant if per-tenant fair shares of the budget would \
     drop below $(docv) bytes."
  in
  Arg.(value & opt int 4096 & info [ "quota-floor" ] ~docv:"N" ~doc)

let max_tenants_arg =
  let doc = "Admission limit on concurrently attached tenants." in
  Arg.(value & opt int 64 & info [ "max-tenants" ] ~docv:"N" ~doc)

let batch_steps_arg =
  let doc = "Steps per tenant per engine round." in
  Arg.(value & opt int 4096 & info [ "batch-steps" ] ~docv:"N" ~doc)

let ingest_max_arg =
  let doc =
    "Backpressure bound: stop reading a connection whose tenant has $(docv) ingested \
     but unconsumed events; resume below half that."
  in
  Arg.(value & opt int 65536 & info [ "ingest-max" ] ~docv:"N" ~doc)

let domains_arg =
  let doc = "Worker domains for engine rounds (default: automatic)." in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let metrics_keep_arg =
  let doc = "Metrics windows retained per tenant recorder." in
  Arg.(value & opt int 256 & info [ "metrics-keep" ] ~docv:"N" ~doc)

let verbose_arg =
  let doc = "Log session lifecycle events to stderr." in
  Arg.(value & flag & info [ "verbose" ] ~doc)

let main =
  let run socket_path state_dir budget_bytes quota_floor max_tenants batch_steps ingest_max
      n_domains metrics_keep verbose =
    with_error_reporting @@ fun () ->
    Server.serve
      {
        Server.socket_path;
        state_dir;
        budget_bytes;
        quota_floor;
        max_tenants;
        batch_steps;
        ingest_max;
        n_domains;
        metrics_keep;
        verbose;
      }
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Long-running socket front end for the region-selection simulator: clients \
         stream recorded branch events into tenant sessions multiplexed over the \
         multi-stream engine; control connections scrape live Prometheus/JSONL \
         metrics.  Sessions are snapshotted on disconnect and on SIGTERM, and resume \
         bit-identically on reconnect.";
    ]
  in
  Cmd.v
    (Cmd.info "regionsel_daemon" ~version:"1.0.0" ~man
       ~doc:"Streaming region-selection daemon over a Unix-domain socket")
    Term.(
      const run $ socket_arg $ state_dir_arg $ budget_arg $ quota_floor_arg
      $ max_tenants_arg $ batch_steps_arg $ ingest_max_arg $ domains_arg
      $ metrics_keep_arg $ verbose_arg)

let () = exit (Cmd.eval main)
