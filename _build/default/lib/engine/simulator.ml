open Regionsel_isa
module Image = Regionsel_workload.Image

type result = {
  image : Image.t;
  policy_name : string;
  ctx : Context.t;
  stats : Stats.t;
  edges : Edge_profile.t;
  icache : Icache.t;
  halted : bool;
}

type mode = Interpreting | In_region of Region.t * Addr.t

let run ?(params = Params.default) ?(seed = 1L) ~policy ~max_steps image =
  let ctx = Context.create ~params image.Image.program in
  let policy_name = Policy.name policy in
  let policy = Policy.instantiate policy ctx in
  let interp = Interp.create image ~seed in
  let stats = Stats.create () in
  let edges = Edge_profile.create () in
  let icache =
    Icache.create ~size_bytes:params.Params.icache_size_bytes
      ~line_bytes:params.Params.icache_line_bytes ~ways:params.Params.icache_ways ()
  in
  let mode = ref Interpreting in
  let halted = ref false in
  let links = Hashtbl.create 64 in
  let record_link ~(from : Region.t) ~(into : Region.t) =
    let key = from.Region.id, into.Region.id in
    if not (Hashtbl.mem links key) then begin
      Hashtbl.replace links key ();
      stats.Stats.links <- stats.Stats.links + 1
    end
  in
  let install_if_any = function
    | Policy.No_action -> ()
    | Policy.Install specs ->
      List.iter
        (fun spec ->
          stats.Stats.installs <- stats.Stats.installs + 1;
          ignore (Code_cache.install ctx.Context.cache spec))
        specs
  in
  let interpret_step (s : Interp.step) =
    let block = s.Interp.block in
    stats.Stats.interpreted_insts <- stats.Stats.interpreted_insts + block.Block.size;
    install_if_any
      (Policy.handle policy
         (Policy.Interp_block { block; taken = s.Interp.taken; next = s.Interp.next }));
    match s.Interp.next with
    | None -> halted := true
    | Some a ->
      if s.Interp.taken then begin
        match Code_cache.find ctx.Context.cache a with
        | Some region ->
          stats.Stats.dispatches <- stats.Stats.dispatches + 1;
          Region.record_entry region;
          mode := In_region (region, a)
        | None -> ()
      end
  in
  let region_step region cur (s : Interp.step) =
    let block = s.Interp.block in
    assert (Addr.equal block.Block.start cur);
    stats.Stats.cached_insts <- stats.Stats.cached_insts + block.Block.size;
    Region.record_exec region block.Block.size;
    (match Region.block_cache_addr region cur with
    | Some addr -> Icache.access icache ~addr ~bytes:(block.Block.size * Region.inst_bytes)
    | None -> ());
    match s.Interp.next with
    | None -> halted := true
    | Some a ->
      if Region.has_edge region ~src:cur ~dst:a then begin
        if Addr.equal a region.Region.entry then Region.record_cycle region;
        mode := In_region (region, a)
      end
      else begin
        match Code_cache.find ctx.Context.cache a with
        | Some other when other == region ->
          (* A side exit linked back to this region's own entry: execution
             stays put, and the paper's executed-cycle metric counts it as a
             completed cycle, not an exit. *)
          Region.record_cycle region;
          mode := In_region (region, a)
        | Some other ->
          Region.record_exit region ~from:cur ~tgt:a;
          stats.Stats.region_transitions <- stats.Stats.region_transitions + 1;
          record_link ~from:region ~into:other;
          Region.record_entry other;
          mode := In_region (other, a)
        | None ->
          Region.record_exit region ~from:cur ~tgt:a;
          stats.Stats.cache_exits_to_interp <- stats.Stats.cache_exits_to_interp + 1;
          install_if_any
            (Policy.handle policy
               (Policy.Cache_exited
                  { from_entry = region.Region.entry; src = Block.last block; tgt = a }));
          (* The paper's "jump newT": if the policy just installed a region
             at the pending target, enter it without interpreting. *)
          (match Code_cache.find ctx.Context.cache a with
          | Some fresh ->
            stats.Stats.dispatches <- stats.Stats.dispatches + 1;
            Region.record_entry fresh;
            mode := In_region (fresh, a)
          | None -> mode := Interpreting)
      end
  in
  let rec loop () =
    if stats.Stats.steps >= max_steps || !halted then ()
    else
      match Interp.step interp with
      | None -> halted := true
      | Some s ->
        stats.Stats.steps <- stats.Stats.steps + 1;
        if s.Interp.taken then stats.Stats.taken_branches <- stats.Stats.taken_branches + 1;
        (match s.Interp.next with
        | Some a -> Edge_profile.record edges ~src:s.Interp.block.Block.start ~dst:a
        | None -> ());
        (match !mode with
        | Interpreting -> interpret_step s
        | In_region (region, cur) -> region_step region cur s);
        loop ()
  in
  loop ();
  { image; policy_name; ctx; stats; edges; icache; halted = !halted }
