let net : (module Regionsel_engine.Policy.S) = (module Net)
let lei : (module Regionsel_engine.Policy.S) = (module Lei)
let combined_net : (module Regionsel_engine.Policy.S) = (module Combined_net)
let combined_lei : (module Regionsel_engine.Policy.S) = (module Combined_lei)
let mojo : (module Regionsel_engine.Policy.S) = (module Mojo)
let boa : (module Regionsel_engine.Policy.S) = (module Boa)
let jit_method : (module Regionsel_engine.Policy.S) = (module Method_regions)

let paper =
  [ "net", net; "lei", lei; "combined-net", combined_net; "combined-lei", combined_lei ]

let all = paper @ [ "mojo", mojo; "boa", boa; "jit-method", jit_method ]
let find name = List.assoc_opt name all
