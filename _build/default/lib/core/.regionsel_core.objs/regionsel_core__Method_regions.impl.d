lib/core/method_regions.ml: Addr Block List Program Regionsel_engine Regionsel_isa Terminator
