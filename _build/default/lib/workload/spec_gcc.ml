(* 176.gcc: the paper's canonical "many important procedures, mix of biased
   and unbiased branches" program (Section 6).  Dozens of warm functions —
   pass bodies with diamond chains at varied biases, several loops with
   calls, and an insn-dispatch loop — so execution spreads over one to two
   orders of magnitude more paths than the small kernels (Ball & Larus).
   Produces the largest cover sets and the lowest hit rates. *)

let build () =
  let b = Builder.create () in
  let passes = List.init 28 (fun i -> Printf.sprintf "pass%d" i) in
  let analyses = List.init 8 (fun i -> Printf.sprintf "analysis%d" i) in
  let spaced = List.init 4 (fun i -> Printf.sprintf "reload%d" i) in
  Patterns.leaf b ~name:"alloc" ~size:6;
  Patterns.leaf b ~name:"lookup" ~size:8;
  (* 28 warm "pass" functions with varied diamond chains and trips. *)
  let pass i =
    let name = Printf.sprintf "pass%d" i in
    let bias =
      match i mod 4 with 0 -> 0.5 | 1 -> 0.65 | 2 -> 0.8 | _ -> 0.95
    in
    (* Odd passes flip their dominant direction every few thousand
       decisions: the phase behaviour (Sherwood et al.) that Section 4.3.1
       blames for observed traces misrepresenting future execution. *)
    let behave p =
      if i mod 2 = 1 then
        Behavior.Phased [ 3_000, Behavior.Bernoulli p; 3_000, Behavior.Bernoulli (1.0 -. p) ]
      else Behavior.Bernoulli p
    in
    Patterns.diamond_loop_with b ~name
      ~trip:(20 + (3 * (i mod 7)))
      ~diamonds:
        [
          behave bias, 3 + (i mod 3);
          behave (1.0 -. bias), 4;
        ];
    name
  in
  let declared_passes = List.init 28 pass in
  assert (declared_passes = passes);
  (* 8 analysis loops that call the shared helpers (interprocedural cycles). *)
  let analysis i =
    let name = Printf.sprintf "analysis%d" i in
    let callee = if i mod 2 = 0 then "alloc" else "lookup" in
    Patterns.composite_loop b ~name
      ~trip:(25 + (5 * (i mod 5)))
      ~body:
        [
          Patterns.Straight (4 + (i mod 3));
          Patterns.Call_to callee;
          Patterns.Diamond { Patterns.bias = 0.7 +. (0.05 *. float_of_int (i mod 4)); side_size = 4 };
          Patterns.Straight 4;
        ];
    name
  in
  let declared_analyses = List.init 8 analysis in
  assert (declared_analyses = analyses);
  Patterns.dispatch_loop b ~name:"recog" ~trip:80
    ~cases:[ 5, 3.0; 6, 2.0; 4, 2.0; 7, 1.0; 5, 1.0; 6, 0.5; 4, 0.5; 8, 0.25 ];
  List.iteri (fun i name -> Patterns.spaced_loop b ~name ~body_size:(4 + (i mod 3))) spaced;
  Patterns.cold_farm b ~name:"rtl_pool" ~n:20 ~body_size:5;
  Patterns.driver b ~name:"main"
    ~weights:(List.map (fun f -> f, 0.2) spaced)
    (passes @ analyses @ [ "recog"; "rtl_pool" ] @ spaced);
  Builder.compile b ~name:"gcc" ~entry:"main"

let spec =
  Spec.make ~name:"gcc"
    ~description:
      "176.gcc stand-in: dozens of warm pass/analysis functions with mixed biases; \
       the many-hot-paths outlier (largest cover sets, lowest hit rate)"
    ~steps:1_600_000 build
