lib/engine/params.mli: Format
