lib/workload/spec_eon.mli: Spec
