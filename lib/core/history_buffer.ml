open Regionsel_isa

type entry = { src : Addr.t; tgt : Addr.t; follows_exit : bool; seq : int }

(* Storage is four parallel unboxed arrays indexed by [seq mod cap] instead
   of an [entry option array]: an insert writes three ints and a bool in
   place, with no [Some] box and no entry record on the hot path.  Slot [i]
   holds the entry with sequence [seqs.(i)]; a slot is live iff its sequence
   lies in the current window [(hi - cap, hi]] and matches, which also makes
   stale slots left behind by {!truncate_after} unreachable (they are
   overwritten exactly when their sequence number is re-issued). *)
type t = {
  srcs : int array;
  tgts : int array;
  fexits : bool array;
  seqs : int array; (* 0 = never written *)
  cap : int;
  mutable hi : int; (* highest live sequence number; 0 = empty *)
  mutable live : int; (* number of live entries, maintained incrementally *)
  hash : int Addr.Table.t; (* target -> seq of most recent occurrence *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "History_buffer.create: capacity must be >= 1";
  {
    srcs = Array.make capacity 0;
    tgts = Array.make capacity 0;
    fexits = Array.make capacity false;
    seqs = Array.make capacity 0;
    cap = capacity;
    hi = 0;
    live = 0;
    hash = Addr.Table.create 1024;
  }

let capacity t = t.cap
let length t = t.live

let is_live t seq = seq >= 1 && seq > t.hi - t.cap && seq <= t.hi && t.seqs.(seq mod t.cap) = seq

let get t seq =
  if not (is_live t seq) then None
  else
    let i = seq mod t.cap in
    Some { src = t.srcs.(i); tgt = t.tgts.(i); follows_exit = t.fexits.(i); seq }

let find_seq t tgt =
  match Addr.Table.find t.hash tgt with
  | seq -> if is_live t seq && Addr.equal t.tgts.(seq mod t.cap) tgt then seq else 0
  | exception Not_found -> 0

let follows_exit_at t ~seq = is_live t seq && t.fexits.(seq mod t.cap)

let find t tgt =
  let seq = find_seq t tgt in
  if seq = 0 then None else get t seq

let insert t ~src ~tgt ~follows_exit =
  let seq = t.hi + 1 in
  let i = seq mod t.cap in
  (* The slot being overwritten holds the entry falling out of the window
     (if it was live); anything else there is already dead. *)
  if not (is_live t t.seqs.(i)) then t.live <- t.live + 1;
  t.srcs.(i) <- src;
  t.tgts.(i) <- tgt;
  t.fexits.(i) <- follows_exit;
  t.seqs.(i) <- seq;
  t.hi <- seq;
  Addr.Table.replace t.hash tgt seq;
  seq

let entries_after t ~seq =
  let rec collect s acc =
    if s > t.hi then List.rev acc
    else collect (s + 1) (match get t s with Some e -> e :: acc | None -> acc)
  in
  collect (max 1 (seq + 1)) []

let truncate_after t ~seq =
  if seq < t.hi then begin
    let cut = max 0 seq in
    let rec dead s acc = if s > t.hi then acc else dead (s + 1) (if is_live t s then acc + 1 else acc) in
    t.live <- t.live - dead (cut + 1) 0;
    t.hi <- cut
  end

(* Checkpoint support.  The slot arrays are serialized verbatim — stale
   slots included — and so is the whole hash index, stale bindings
   included: [find_seq] deliberately misses a stale binding (returns 0)
   even when an older live occurrence of the same target exists in the
   window, so rebuilding the index from live entries would resurrect that
   older occurrence and silently diverge from the uninterrupted run. *)

let save t emit =
  emit t.cap;
  Array.iter emit t.srcs;
  Array.iter emit t.tgts;
  Array.iter (fun b -> emit (if b then 1 else 0)) t.fexits;
  Array.iter emit t.seqs;
  emit t.hi;
  emit t.live;
  emit (Addr.Table.length t.hash);
  (* Target-sorted: canonical bytes regardless of insertion history. *)
  List.iter
    (fun (tgt, seq) ->
      emit tgt;
      emit seq)
    (List.sort
       (fun (a, _) (b, _) -> Addr.compare a b)
       (Addr.Table.fold (fun k v acc -> (k, v) :: acc) t.hash []))

let load t read =
  if read () <> t.cap then failwith "History_buffer.load: capacity mismatch";
  for i = 0 to t.cap - 1 do
    t.srcs.(i) <- read ()
  done;
  for i = 0 to t.cap - 1 do
    t.tgts.(i) <- read ()
  done;
  for i = 0 to t.cap - 1 do
    t.fexits.(i) <-
      (match read () with
      | 0 -> false
      | 1 -> true
      | _ -> failwith "History_buffer.load: bad flag")
  done;
  for i = 0 to t.cap - 1 do
    t.seqs.(i) <- read ()
  done;
  t.hi <- read ();
  t.live <- read ();
  if t.live < 0 || t.live > t.cap then failwith "History_buffer.load: live count out of range";
  let n = read () in
  if n < 0 then failwith "History_buffer.load: negative index length";
  Addr.Table.reset t.hash;
  for _ = 1 to n do
    let tgt = read () in
    let seq = read () in
    Addr.Table.replace t.hash tgt seq
  done
