lib/workload/spec_bzip2.mli: Spec
