open Regionsel_isa

(* Edges are keyed by a single packed int, [src lsl 32 lor dst], into a
   flat open-addressing table: recording an edge is one inline probe and
   one array store — no tuple key, no option, no allocation, no C-call
   hash.  Addresses are small non-negative ints, so the packing is
   injective and never overflows OCaml's 63-bit ints.  The table's
   iteration order is only ever folded into order-insensitive results
   (sums, predecessor sets), as [Flat_tbl] requires. *)

type t = {
  edges : Flat_tbl.t;
  mutable pred_index : Addr.Set.t Addr.Table.t option;
}

let pack ~src ~dst = (src lsl 32) lor dst
let unpack_src key = key lsr 32
let unpack_dst key = key land 0xFFFF_FFFF

let create () = { edges = Flat_tbl.create 4096; pred_index = None }

let record t ~src ~dst =
  (* Only a previously unseen edge can change the predecessor sets. *)
  if Flat_tbl.bump_fresh t.edges (pack ~src ~dst) then t.pred_index <- None

let count t ~src ~dst =
  let c = Flat_tbl.find t.edges (pack ~src ~dst) in
  if c < 0 then 0 else c

let build_pred_index t =
  let index = Addr.Table.create 1024 in
  Flat_tbl.iter
    (fun key _ ->
      let src = unpack_src key and dst = unpack_dst key in
      let prev = Option.value ~default:Addr.Set.empty (Addr.Table.find_opt index dst) in
      Addr.Table.replace index dst (Addr.Set.add src prev))
    t.edges;
  t.pred_index <- Some index;
  index

let preds t a =
  let index = match t.pred_index with Some i -> i | None -> build_pred_index t in
  Option.value ~default:Addr.Set.empty (Addr.Table.find_opt index a)

let n_edges t = Flat_tbl.length t.edges

let fold f t init =
  Flat_tbl.fold
    (fun key count acc -> f ~src:(unpack_src key) ~dst:(unpack_dst key) count acc)
    t.edges init
