(* Fuzzing the whole stack: random workload programs are generated from a
   compact genome, executed under every policy, and checked against the
   global invariants (accounting identities, transparency, region
   well-formedness, emitter agreement).  Any seed that fails shrinks to a
   small reproducible genome. *)


module Builder = Regionsel_workload.Builder
module Behavior = Regionsel_workload.Behavior
module Patterns = Regionsel_workload.Patterns
module Simulator = Regionsel_engine.Simulator
module Stats = Regionsel_engine.Stats
module Region = Regionsel_engine.Region
module Emitter = Regionsel_engine.Emitter
module Policies = Regionsel_core.Policies
open Fixtures

(* A genome is a list of small integers; each entry adds one function with
   derived shape parameters.  The builder-level derivation keeps every
   generated program valid by construction. *)
let image_of_genome genome =
  let b = Builder.create () in
  let funcs =
    List.mapi
      (fun i gene ->
        let name = Printf.sprintf "f%d" i in
        let trip = 3 + (gene mod 37) in
        (match gene mod 5 with
        | 0 -> Patterns.leaf b ~name ~size:(2 + (gene mod 7))
        | 1 -> Patterns.plain_loop b ~name ~trip ~body_blocks:(1 + (gene mod 3)) ~body_size:3
        | 2 ->
          Patterns.diamond_loop b ~name ~trip
            ~diamonds:
              [ { Patterns.bias = float_of_int (gene mod 10) /. 10.0; side_size = 3 } ]
        | 3 ->
          let callees =
            (* Call one earlier function if any exists. *)
            if i = 0 then []
            else [ Printf.sprintf "f%d" (gene mod i) ]
          in
          if callees = [] then Patterns.leaf b ~name ~size:4
          else Patterns.loop_with_calls b ~name ~trip ~callees
        | _ ->
          Patterns.nested_loop b ~name ~outer_trip:(1 + (gene mod 6))
            ~inner_trip:(1 + (gene mod 9))
            ~body_size:3);
        name)
      genome
  in
  Patterns.driver b ~name:"main" funcs;
  Builder.compile b ~name:"fuzz" ~entry:"main"

let genome_gen = QCheck.(list_of_size (Gen.int_range 1 6) (int_bound 1000))

let check_invariants policy_name result =
  let stats = result.Simulator.stats in
  let regions = regions_of result in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 regions in
  let label msg = Printf.sprintf "[%s] %s" policy_name msg in
  let ok = ref true in
  let expect msg b =
    if not b then begin
      ok := false;
      print_endline (label msg)
    end
  in
  expect "entries = dispatches + transitions"
    (sum (fun (r : Region.t) -> r.Region.entries)
    = stats.Stats.dispatches + stats.Stats.region_transitions);
  expect "exits = transitions + exits-to-interp"
    (sum (fun (r : Region.t) -> r.Region.exits)
    = stats.Stats.region_transitions + stats.Stats.cache_exits_to_interp);
  expect "cached insts attributed"
    (sum (fun (r : Region.t) -> r.Region.insts_executed) = stats.Stats.cached_insts);
  expect "hit rate in range"
    (Stats.hit_rate stats >= 0.0 && Stats.hit_rate stats <= 1.0);
  List.iter
    (fun (r : Region.t) ->
      expect "entry is a node" (Region.mem_block r r.Region.entry);
      expect "positive footprint" (r.Region.copied_insts > 0);
      let e = Emitter.emit r in
      expect "emitter agrees on instruction count"
        (Array.length e.Emitter.body = r.Region.copied_insts);
      expect "emitter agrees on bytes" (Emitter.total_bytes e = Region.cache_bytes r))
    regions;
  !ok

let qcheck_all_policies_on_random_programs =
  QCheck.Test.make ~name:"random programs satisfy all invariants under all policies" ~count:60
    genome_gen
    (fun genome ->
      let image = image_of_genome genome in
      let reference =
        let result = run ~seed:5L ~max_steps:15_000 Policies.net image in
        Stats.total_insts result.Simulator.stats
      in
      List.for_all
        (fun (name, policy) ->
          let result = run ~seed:5L ~max_steps:15_000 policy image in
          check_invariants name result
          && Stats.total_insts result.Simulator.stats = reference)
        Policies.all)

let qcheck_deterministic_replay =
  QCheck.Test.make ~name:"random programs replay deterministically" ~count:40 genome_gen
    (fun genome ->
      let image = image_of_genome genome in
      let snap () =
        let result = run ~seed:13L ~max_steps:10_000 Policies.combined_lei image in
        ( Stats.total_insts result.Simulator.stats,
          result.Simulator.stats.Stats.region_transitions,
          List.map (fun (r : Region.t) -> r.Region.entry) (regions_of result) )
      in
      snap () = snap ())

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_all_policies_on_random_programs;
    QCheck_alcotest.to_alcotest qcheck_deterministic_replay;
  ]
