open Regionsel_isa

type t = {
  name : string;
  n_functions : int;
  n_blocks : int;
  n_insts : int;
  n_conditionals : int;
  n_unbiased : int;
  n_loops : int;
  n_phased : int;
  n_calls : int;
  n_backward_calls : int;
  n_indirect : int;
  n_returns : int;
  avg_block_size : float;
}

let rec spec_is_unbiased = function
  | Behavior.Bernoulli p -> p >= 0.4 && p <= 0.6
  | Behavior.Phased phases -> List.exists (fun (_, s) -> spec_is_unbiased s) phases
  | Behavior.Always_taken | Behavior.Never_taken | Behavior.Loop _ | Behavior.Pattern _ -> false

let rec spec_is_loop = function
  | Behavior.Loop _ -> true
  | Behavior.Phased phases -> List.exists (fun (_, s) -> spec_is_loop s) phases
  | Behavior.Always_taken | Behavior.Never_taken | Behavior.Bernoulli _ | Behavior.Pattern _ ->
    false

let of_image (image : Image.t) =
  let p = image.Image.program in
  let conditionals = ref 0 in
  let unbiased = ref 0 in
  let loops = ref 0 in
  let phased = ref 0 in
  let calls = ref 0 in
  let backward_calls = ref 0 in
  let indirect = ref 0 in
  let returns = ref 0 in
  let call_targets = ref Addr.Set.empty in
  Program.iter_blocks
    (fun b ->
      match b.Block.term with
      | Terminator.Cond _ ->
        incr conditionals;
        let spec = Image.cond_spec image (Block.last b) in
        if spec_is_unbiased spec then incr unbiased;
        if spec_is_loop spec then incr loops;
        (match spec with Behavior.Phased _ -> incr phased | _ -> ())
      | Terminator.Call tgt ->
        incr calls;
        call_targets := Addr.Set.add tgt !call_targets;
        if Addr.is_backward ~src:(Block.last b) ~tgt then incr backward_calls
      | Terminator.Indirect_jump | Terminator.Indirect_call -> incr indirect
      | Terminator.Return -> incr returns
      | Terminator.Fallthrough | Terminator.Jump _ | Terminator.Halt -> ())
    p;
  {
    name = image.Image.name;
    n_functions = 1 + Addr.Set.cardinal (Addr.Set.remove (Program.entry p) !call_targets);
    n_blocks = Program.n_blocks p;
    n_insts = Program.n_insts p;
    n_conditionals = !conditionals;
    n_unbiased = !unbiased;
    n_loops = !loops;
    n_phased = !phased;
    n_calls = !calls;
    n_backward_calls = !backward_calls;
    n_indirect = !indirect;
    n_returns = !returns;
    avg_block_size =
      (if Program.n_blocks p = 0 then 0.0
       else float_of_int (Program.n_insts p) /. float_of_int (Program.n_blocks p));
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: %d functions, %d blocks, %d insts (%.1f insts/block)@,\
     branches: %d conditionals (%d unbiased, %d trip-counted, %d phased), %d calls (%d \
     backward), %d indirect, %d returns@]"
    t.name t.n_functions t.n_blocks t.n_insts t.avg_block_size t.n_conditionals t.n_unbiased
    t.n_loops t.n_phased t.n_calls t.n_backward_calls t.n_indirect t.n_returns

let header =
  [
    "bench"; "funcs"; "blocks"; "insts"; "conds"; "unbiased"; "loops"; "phased"; "calls";
    "bwd-calls"; "indirect"; "returns";
  ]

let row t =
  [
    t.name;
    string_of_int t.n_functions;
    string_of_int t.n_blocks;
    string_of_int t.n_insts;
    string_of_int t.n_conditionals;
    string_of_int t.n_unbiased;
    string_of_int t.n_loops;
    string_of_int t.n_phased;
    string_of_int t.n_calls;
    string_of_int t.n_backward_calls;
    string_of_int t.n_indirect;
    string_of_int t.n_returns;
  ]
