(** The benchmark suite: the twelve SPECint2000 stand-ins (Section 2.3). *)

val all : Spec.t list
(** In the paper's figure order: gzip, vpr, gcc, mcf, crafty, parser, eon,
    perlbmk, gap, vortex, bzip2, twolf. *)

val find : string -> Spec.t option
val names : string list
