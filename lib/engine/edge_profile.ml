open Regionsel_isa

(* Edges are keyed by a single packed int, [src lsl 32 lor dst].  Addresses
   are small non-negative ints, so the packing is injective and never
   overflows OCaml's 63-bit ints.

   Recording is batched through a small fixed ring of (key, count) slots —
   a direct-mapped accumulation cache in front of the big flat table.  The
   per-step path hashes the key to one of [ring_size] slots: a hit bumps
   the slot's count in place (the common case — the hot loop replays the
   same few edges), a conflicting occupant is spilled into [edges] with its
   accumulated count (one probe), and the slot is reseeded.  The big table
   is only touched on conflicts and drains, so its cache-unfriendly probe
   leaves the per-step path, and one probe can land hundreds of
   occurrences.

   Exactness invariant: every read ([count]/[preds]/[n_edges]/[fold])
   drains the ring first, so observers — snapshot windows, the watchdog,
   policy trip decisions, post-run metrics — always see counts identical
   to an unbatched per-step profile.  The parity and batching tests pin
   this down.  [flushes] counts full drains (spills are per-slot and not
   counted). *)

type t = {
  mutable edges : Flat_tbl.t;
  ring_keys : int array; (* -1 = empty slot *)
  ring_counts : int array;
  mutable ring_live : int; (* occupied slots, to make an empty drain free *)
  mutable flushes : int;
  mutable pred_index : Addr.Set.t Addr.Table.t option;
}

let ring_size = 512
let ring_shift = 63 - 9 (* top 9 bits of the 63-bit fibonacci product *)

let pack ~src ~dst = (src lsl 32) lor dst
let unpack_src key = key lsr 32
let unpack_dst key = key land 0xFFFF_FFFF

let create () =
  {
    edges = Flat_tbl.create 4096;
    ring_keys = Array.make ring_size (-1);
    ring_counts = Array.make ring_size 0;
    ring_live = 0;
    flushes = 0;
    pred_index = None;
  }

(* Only a previously unseen edge can change the predecessor sets. *)
let[@inline] spill t key count =
  if Flat_tbl.add_fresh t.edges key count then t.pred_index <- None

let[@inline] record t ~src ~dst =
  let key = pack ~src ~dst in
  let i = (key * 0x9E3779B97F4A7C1) lsr ring_shift in
  let k = Array.unsafe_get t.ring_keys i in
  if k = key then
    Array.unsafe_set t.ring_counts i (Array.unsafe_get t.ring_counts i + 1)
  else begin
    if k >= 0 then spill t k (Array.unsafe_get t.ring_counts i)
    else t.ring_live <- t.ring_live + 1;
    Array.unsafe_set t.ring_keys i key;
    Array.unsafe_set t.ring_counts i 1
  end

let flush t =
  if t.ring_live > 0 then begin
    for i = 0 to ring_size - 1 do
      let k = Array.unsafe_get t.ring_keys i in
      if k >= 0 then begin
        spill t k (Array.unsafe_get t.ring_counts i);
        Array.unsafe_set t.ring_keys i (-1)
      end
    done;
    t.ring_live <- 0;
    t.flushes <- t.flushes + 1
  end

let flushes t = t.flushes

let count t ~src ~dst =
  flush t;
  let c = Flat_tbl.find t.edges (pack ~src ~dst) in
  if c < 0 then 0 else c

let build_pred_index t =
  let index = Addr.Table.create 1024 in
  Flat_tbl.iter
    (fun key _ ->
      let src = unpack_src key and dst = unpack_dst key in
      let prev = Option.value ~default:Addr.Set.empty (Addr.Table.find_opt index dst) in
      Addr.Table.replace index dst (Addr.Set.add src prev))
    t.edges;
  t.pred_index <- Some index;
  index

let preds t a =
  flush t;
  let index = match t.pred_index with Some i -> i | None -> build_pred_index t in
  Option.value ~default:Addr.Set.empty (Addr.Table.find_opt index a)

let n_edges t =
  flush t;
  Flat_tbl.length t.edges

let fold f t init =
  flush t;
  Flat_tbl.fold
    (fun key count acc -> f ~src:(unpack_src key) ~dst:(unpack_dst key) count acc)
    t.edges init

(* Checkpoint support.  The ring is serialized verbatim rather than
   drained: draining would bump [flushes], which bench reports, and would
   make a save-then-continue run observably different from an
   uninterrupted one. *)

let save t emit =
  emit ring_size;
  Array.iter emit t.ring_keys;
  Array.iter emit t.ring_counts;
  emit t.ring_live;
  emit t.flushes;
  emit (Flat_tbl.length t.edges);
  List.iter
    (fun (key, count) ->
      emit key;
      emit count)
    (Flat_tbl.sorted_pairs t.edges)

let load t read =
  if read () <> ring_size then failwith "Edge_profile.load: ring size mismatch";
  for i = 0 to ring_size - 1 do
    t.ring_keys.(i) <- read ()
  done;
  for i = 0 to ring_size - 1 do
    t.ring_counts.(i) <- read ()
  done;
  t.ring_live <- read ();
  if t.ring_live < 0 || t.ring_live > ring_size then
    failwith "Edge_profile.load: ring occupancy out of range";
  t.flushes <- read ();
  let n = read () in
  if n < 0 then failwith "Edge_profile.load: negative edge count";
  let edges = Flat_tbl.create (max 4096 n) in
  for _ = 1 to n do
    let key = read () in
    let count = read () in
    Flat_tbl.set edges key count
  done;
  t.edges <- edges;
  t.pred_index <- None
