(* 256.bzip2: block-sorting compression.  The hot sorting kernels are big
   interprocedural cycles (comparison helpers called from the sort loops):
   LEI captures each as one long cyclic trace while NET splits it at every
   backward call, so LEI's cover set is already far smaller than NET's —
   which is why trace combination improves bzip2's LEI less than its NET
   (the paper's Figure 17 callout). *)

let build () =
  let b = Builder.create () in
  Patterns.leaf b ~name:"cmp_block" ~size:8;
  Patterns.leaf b ~name:"swap" ~size:4;
  Patterns.composite_loop b ~name:"qsort3" ~trip:250
    ~body:
      [
        Patterns.Straight 6;
        Patterns.Call_to "cmp_block";
        Patterns.Diamond { Patterns.bias = 0.6; side_size = 4 };
        Patterns.Call_to "swap";
        Patterns.Straight 4;
      ];
  Patterns.composite_loop b ~name:"fallback_sort" ~trip:200
    ~body:
      [
        Patterns.Straight 5;
        Patterns.Call_to "cmp_block";
        Patterns.Straight 5;
        Patterns.Continue 0.1;
      ];
  Patterns.plain_loop b ~name:"mtf" ~trip:300 ~body_blocks:3 ~body_size:4;
  Patterns.nested_loop b ~name:"huffman" ~outer_trip:20 ~inner_trip:40 ~body_size:4;
  Patterns.cold_farm b ~name:"sort_pool" ~n:8 ~body_size:6;
  Patterns.driver b ~name:"main"
      ~weights:[ "sort_pool", 0.1 ]
    [ "qsort3"; "fallback_sort"; "mtf"; "huffman"; "sort_pool" ];
  Builder.compile b ~name:"bzip2" ~entry:"main"

let spec =
  Spec.make ~name:"bzip2"
    ~description:
      "256.bzip2 stand-in: sort kernels as big interprocedural cycles; LEI already has \
       a much smaller cover set, so combination helps its NET more"
    ~steps:1_000_000 build
