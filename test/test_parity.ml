(* Differential test for the hot-path overhaul: the dense-id interpreter,
   packed edge profile, and circular history buffer must not change a
   single metric, and fanning runs across domains must not either.

   [Run_metrics.t] is a flat record of ints, floats, bools, and strings,
   so structural equality is exactly "every metric identical". *)

module Spec = Regionsel_workload.Spec
module Suite = Regionsel_workload.Suite
module Simulator = Regionsel_engine.Simulator
module Domain_pool = Regionsel_engine.Domain_pool
module Run_metrics = Regionsel_metrics.Run_metrics
module Policies = Regionsel_core.Policies
open Fixtures

(* Small budgets keep the full (workload x policy) sweep test-suite fast
   while still exercising region formation, cache exits, and eviction. *)
let budget (spec : Spec.t) = min spec.Spec.default_steps 30_000

let run ?params (spec : Spec.t) policy_name =
  let policy = Option.get (Policies.find policy_name) in
  Run_metrics.of_result
    (Simulator.run ?params ~seed:1L ~policy ~max_steps:(budget spec) (Spec.image spec))

let tasks =
  List.concat_map
    (fun (spec : Spec.t) -> List.map (fun (p, _) -> spec, p) Policies.all)
    Suite.all

let check_pairwise ~what reference candidate =
  List.iter2
    (fun ((spec : Spec.t), pname) (r, c) ->
      if r <> c then
        Alcotest.failf "%s: metrics differ for %s under %s:\nreference: %a\ncandidate: %a"
          what spec.Spec.name pname Run_metrics.pp r Run_metrics.pp c)
    tasks
    (List.combine reference candidate)

(* The reference: every pair simulated twice sequentially must agree with
   itself — a guard that the simulator is deterministic at all (otherwise
   the parallel comparison below proves nothing). *)
let sequential_deterministic () =
  let a = List.map (fun (spec, p) -> run spec p) tasks in
  let b = List.map (fun (spec, p) -> run spec p) tasks in
  check_pairwise ~what:"sequential repeat" a b

let sequential_vs_parallel () =
  (* Images are lazy: force them on this domain before fanning out. *)
  List.iter (fun ((spec : Spec.t), _) -> ignore (Spec.image spec)) tasks;
  let reference = List.map (fun (spec, p) -> run spec p) tasks in
  let pooled = Domain_pool.map ~n_domains:4 (fun (spec, p) -> run spec p) tasks in
  check_pairwise ~what:"parallel (4 domains)" reference pooled

(* The fault layer's zero-fault guarantee: enabling the machinery with an
   empty schedule must leave every exported metric identical to a run with
   the machinery disabled — the fault path costs the clean path nothing. *)
let empty_fault_profile_is_identity () =
  let params =
    { Regionsel_engine.Params.default with
      Regionsel_engine.Params.faults = Some Regionsel_engine.Params.no_faults
    }
  in
  let reference = List.map (fun (spec, p) -> run spec p) tasks in
  let with_empty_faults = List.map (fun (spec, p) -> run ~params spec p) tasks in
  check_pairwise ~what:"empty fault profile" reference with_empty_faults

(* The compiled automaton and the link cache are pure execution-path
   mechanics: every exported metric except the compiled-only link/node
   counters (which are 0 in legacy mode by construction) must be
   bit-identical between the two modes, across the whole matrix. *)
let legacy_params ?(faults = None) () =
  { Regionsel_engine.Params.default with
    Regionsel_engine.Params.compiled_regions = false;
    faults
  }

let strip_compiled_counters (m : Run_metrics.t) =
  { m with Run_metrics.link_hits = 0; link_severs = 0; links_high_water = 0; node_steps = 0 }

let compiled_matches_legacy () =
  let compiled = List.map (fun (spec, p) -> strip_compiled_counters (run spec p)) tasks in
  let legacy =
    List.map (fun (spec, p) -> strip_compiled_counters (run ~params:(legacy_params ()) spec p)) tasks
  in
  check_pairwise ~what:"compiled vs legacy execution" legacy compiled

(* Same comparison under fault injection: invalidation must sever links in
   a way that is metric-invisible — a stale link surviving an SMC
   invalidation would show up here as diverging hit rates or dispatches. *)
let compiled_matches_legacy_under_faults () =
  let faults = Regionsel_engine.Params.fault_profile "mixed" in
  let params = { Regionsel_engine.Params.default with Regionsel_engine.Params.faults } in
  let compiled = List.map (fun (spec, p) -> strip_compiled_counters (run ~params spec p)) tasks in
  let legacy =
    List.map
      (fun (spec, p) -> strip_compiled_counters (run ~params:(legacy_params ~faults ()) spec p))
      tasks
  in
  check_pairwise ~what:"compiled vs legacy under faults" legacy compiled

let suite =
  [
    case "sequential runs are deterministic" sequential_deterministic;
    case "pooled runs match sequential bit-for-bit" sequential_vs_parallel;
    case "empty fault profile leaves metrics identical" empty_fault_profile_is_identity;
    case "compiled matches legacy execution" compiled_matches_legacy;
    case "compiled matches legacy under faults" compiled_matches_legacy_under_faults;
  ]
