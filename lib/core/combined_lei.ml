open Regionsel_isa
module Policy = Regionsel_engine.Policy
module Context = Regionsel_engine.Context
module Code_cache = Regionsel_engine.Code_cache
module Counters = Regionsel_engine.Counters
module Params = Regionsel_engine.Params

type t = { ctx : Context.t; store : Observation_store.t; buf : History_buffer.t }

let name = "combined-lei"

let create (ctx : Context.t) =
  {
    ctx;
    store = Observation_store.create ctx.Context.gauges;
    buf = History_buffer.create ~capacity:ctx.Context.params.Params.lei_buffer_size;
  }

let t_start t = t.ctx.Context.params.Params.combined_lei_start
let t_prof t = t.ctx.Context.params.Params.combine_t_prof

(* Checkpoint support. *)
let save t emit =
  Observation_store.save t.store emit;
  History_buffer.save t.buf emit

let load ctx read =
  let t = create ctx in
  Observation_store.load t.store read;
  History_buffer.load t.buf read;
  t

let observe t ~tgt ~old_seq =
  let path = Lei_former.form ~ctx:t.ctx ~buf:t.buf ~start:tgt ~after_seq:old_seq in
  History_buffer.truncate_after t.buf ~seq:old_seq;
  match path with
  | None -> Policy.No_action
  | Some path ->
    Observation_store.record t.store (Compact_trace.encode path);
    if Observation_store.count t.store tgt >= t_prof t then begin
      let observations = Observation_store.take t.store tgt in
      Counters.release t.ctx.Context.counters tgt;
      match Combine.build_region t.ctx ~entry:tgt ~observations with
      | Some spec -> Policy.Install [ spec ]
      | None -> Policy.No_action
    end
    else Policy.No_action

(* LEI's Figure 5 algorithm with the Figure 13 thresholds: counted cycle
   completions beyond [T_start] each record one observed cyclic trace. *)
let on_taken_branch t ~src ~tgt ~is_exit =
  let old_seq = History_buffer.find_seq t.buf tgt in
  let old_follows_exit =
    old_seq > 0 && History_buffer.follows_exit_at t.buf ~seq:old_seq
  in
  ignore (History_buffer.insert t.buf ~src ~tgt ~follows_exit:is_exit);
  if old_seq = 0 then Policy.No_action
  else if Addr.is_backward ~src ~tgt || old_follows_exit then begin
    let c = Counters.incr t.ctx.Context.counters tgt in
    if c > t_start t then observe t ~tgt ~old_seq else Policy.No_action
  end
  else Policy.No_action

let handle t = function
  | Policy.Interp_block ib ->
    let tgt = ib.Policy.next in
    if ib.Policy.taken && not (Addr.is_none tgt) then
      if Code_cache.mem t.ctx.Context.cache tgt then Policy.No_action
      else on_taken_branch t ~src:(Block.last ib.Policy.block) ~tgt ~is_exit:false
    else Policy.No_action
  | Policy.Cache_exited { src; tgt; _ } -> on_taken_branch t ~src ~tgt ~is_exit:true
  | Policy.Region_invalidated { entry } ->
    (* Drop stored observations and the cycle counter for the retired
       entry; the history buffer ages out on its own. *)
    if Observation_store.count t.store entry > 0 then
      ignore (Observation_store.take t.store entry);
    Counters.release t.ctx.Context.counters entry;
    Policy.No_action
