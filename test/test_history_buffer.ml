module History_buffer = Regionsel_core.History_buffer
open Fixtures

let mk ?(capacity = 8) () = History_buffer.create ~capacity

let insert t ?(follows_exit = false) src tgt =
  History_buffer.insert t ~src ~tgt ~follows_exit

let find_latest () =
  let t = mk () in
  ignore (insert t 10 20);
  ignore (insert t 30 20);
  match History_buffer.find t 20 with
  | Some e ->
    check_int "hash points at latest occurrence" 30 e.History_buffer.src;
    check_int "sequence of latest" 2 e.History_buffer.seq
  | None -> Alcotest.fail "expected to find target"

let find_missing () =
  let t = mk () in
  ignore (insert t 10 20);
  check_true "unknown target absent" (History_buffer.find t 99 = None)

let eviction () =
  let t = mk ~capacity:4 () in
  ignore (insert t 1 100);
  for i = 2 to 5 do
    ignore (insert t i (200 + i))
  done;
  check_true "evicted entry no longer found" (History_buffer.find t 100 = None);
  check_int "length capped at capacity" 4 (History_buffer.length t)

let entries_after_ordering () =
  let t = mk () in
  let s1 = insert t 1 10 in
  ignore (insert t 2 20);
  ignore (insert t 3 30);
  let after = History_buffer.entries_after t ~seq:s1 in
  Alcotest.(check (list int)) "entries after in order" [ 20; 30 ]
    (List.map (fun e -> e.History_buffer.tgt) after)

let truncate_semantics () =
  let t = mk () in
  let s1 = insert t 1 10 in
  ignore (insert t 2 20);
  ignore (insert t 3 30);
  History_buffer.truncate_after t ~seq:s1;
  check_true "later entries gone" (History_buffer.find t 20 = None);
  check_true "earlier entry survives" (History_buffer.find t 10 <> None);
  check_int "length reflects truncation" 1 (History_buffer.length t);
  Alcotest.(check (list int)) "no entries after" []
    (List.map
       (fun e -> e.History_buffer.tgt)
       (History_buffer.entries_after t ~seq:s1))

let reinsert_after_truncate () =
  let t = mk () in
  let s1 = insert t 1 10 in
  ignore (insert t 2 20);
  History_buffer.truncate_after t ~seq:s1;
  let s2 = insert t 5 50 in
  check_int "sequence numbers restart after the cut" (s1 + 1) s2;
  check_true "new entry found" (History_buffer.find t 50 <> None)

let follows_exit_flag () =
  let t = mk () in
  ignore (insert t ~follows_exit:true 1 10);
  match History_buffer.find t 10 with
  | Some e -> check_true "flag preserved" e.History_buffer.follows_exit
  | None -> Alcotest.fail "entry missing"

let wraparound_find () =
  let t = mk ~capacity:3 () in
  for i = 1 to 10 do
    ignore (insert t i (i mod 4))
  done;
  (* Only the last three entries (i = 8, 9, 10 with tgt 0, 1, 2) are live. *)
  check_true "recent target found" (History_buffer.find t 1 <> None);
  check_true "target overwritten in place still latest" (History_buffer.find t 2 <> None);
  check_true "stale target gone" (History_buffer.find t 3 = None)

(* Oracle for {!History_buffer.length}: count the live entries directly. *)
let length_oracle t = List.length (History_buffer.entries_after t ~seq:0)

let length_after_wraparound () =
  let t = mk ~capacity:4 () in
  for i = 1 to 11 do
    ignore (insert t i (100 + i))
  done;
  check_int "length equals live entries after wraparound" (length_oracle t)
    (History_buffer.length t);
  check_int "full buffer holds capacity entries" 4 (History_buffer.length t)

let length_after_truncate_and_refill () =
  let t = mk ~capacity:4 () in
  for i = 1 to 6 do
    ignore (insert t i (200 + i))
  done;
  History_buffer.truncate_after t ~seq:4;
  check_int "length equals live entries after truncation" (length_oracle t)
    (History_buffer.length t);
  check_int "two live entries remain" 2 (History_buffer.length t);
  (* Refill past the stale slots the truncation left behind. *)
  for i = 1 to 5 do
    ignore (insert t (10 + i) (300 + i))
  done;
  check_int "length equals live entries after refill" (length_oracle t)
    (History_buffer.length t);
  check_int "buffer full again" 4 (History_buffer.length t)

let qcheck_length_matches_live =
  QCheck.Test.make ~name:"length agrees with live entries under insert/truncate" ~count:300
    QCheck.(pair (int_range 1 8) (list_of_size (Gen.int_range 1 120) (int_range 0 60)))
    (fun (capacity, ops) ->
      let t = History_buffer.create ~capacity in
      List.iter
        (fun v ->
          if v mod 7 = 0 then History_buffer.truncate_after t ~seq:(v / 2)
          else ignore (insert t v (v * 13 mod 17)))
        ops;
      History_buffer.length t = length_oracle t)

let qcheck_window =
  QCheck.Test.make ~name:"find only returns entries within the window" ~count:200
    QCheck.(pair (int_range 1 16) (list_of_size (Gen.int_range 1 100) (int_range 0 20)))
    (fun (capacity, tgts) ->
      let t = History_buffer.create ~capacity in
      let n = List.length tgts in
      List.iteri (fun i tgt -> ignore (insert t i tgt)) tgts;
      let last_seq = n in
      List.for_all
        (fun tgt ->
          match History_buffer.find t tgt with
          | None -> true
          | Some e ->
            e.History_buffer.tgt = tgt
            && e.History_buffer.seq > last_seq - capacity
            && e.History_buffer.seq <= last_seq)
        tgts)

let qcheck_entries_after_sorted =
  QCheck.Test.make ~name:"entries_after is sorted by sequence" ~count:200
    QCheck.(pair (int_range 1 16) (int_range 1 60))
    (fun (capacity, n) ->
      let t = History_buffer.create ~capacity in
      for i = 1 to n do
        ignore (insert t i (1000 + i))
      done;
      let entries = History_buffer.entries_after t ~seq:(n / 2) in
      let seqs = List.map (fun e -> e.History_buffer.seq) entries in
      List.sort compare seqs = seqs)

(* Model-based audit of sequence re-issue after truncation.  [insert]
   overwrites ring slots in place and [truncate_after] abandons them where
   they lie, so after a truncation a re-issued sequence number lands in a
   slot whose stale contents the hash index may still point at.  The audit
   outcome — [find_seq] re-checks both the live window and the stored
   target, so a stale hash binding surfaces as a miss, never as a wrong
   entry — is pinned by replaying random insert/truncate streams against a
   naive reference model and requiring [find], [length] and
   [entries_after] to agree with it after every operation. *)
let qcheck_model_audit =
  QCheck.Test.make
    ~name:"find/length/entries_after agree with a naive model across truncation"
    ~count:400
    QCheck.(pair (int_range 1 6) (list_of_size (Gen.int_range 1 160) (int_range 0 1000)))
    (fun (capacity, ops) ->
      let t = History_buffer.create ~capacity in
      let live = ref [] in
      let hash = Hashtbl.create 16 in
      let hi = ref 0 in
      let ok = ref true in
      let targets = List.init 13 Fun.id in
      let agree () =
        ok := !ok && History_buffer.length t = List.length !live;
        List.iter
          (fun tgt ->
            let expected =
              match Hashtbl.find_opt hash tgt with
              | None -> None
              | Some s ->
                List.find_opt
                  (fun e -> e.History_buffer.seq = s && e.History_buffer.tgt = tgt)
                  !live
            in
            ok := !ok && History_buffer.find t tgt = expected)
          targets
      in
      List.iter
        (fun v ->
          if v mod 13 = 0 then begin
            let seq = v mod (max 1 (!hi + 2)) in
            History_buffer.truncate_after t ~seq;
            if seq < !hi then begin
              hi := max 0 seq;
              live := List.filter (fun e -> e.History_buffer.seq <= !hi) !live
            end
          end
          else begin
            let src = v mod 7 and tgt = v mod 13 and follows_exit = v mod 2 = 0 in
            let seq = History_buffer.insert t ~src ~tgt ~follows_exit in
            incr hi;
            ok := !ok && seq = !hi;
            Hashtbl.replace hash tgt !hi;
            live :=
              { History_buffer.src; tgt; follows_exit; seq = !hi }
              :: List.filter (fun e -> e.History_buffer.seq > !hi - capacity) !live
          end;
          agree ())
        ops;
      List.iter
        (fun seq ->
          let expected =
            List.sort
              (fun a b -> compare a.History_buffer.seq b.History_buffer.seq)
              (List.filter (fun e -> e.History_buffer.seq > seq) !live)
          in
          ok := !ok && History_buffer.entries_after t ~seq = expected)
        [ 0; !hi / 2; !hi ];
      !ok)

let suite =
  [
    case "find latest" find_latest;
    case "find missing" find_missing;
    case "eviction" eviction;
    case "entries_after ordering" entries_after_ordering;
    case "truncate semantics" truncate_semantics;
    case "reinsert after truncate" reinsert_after_truncate;
    case "follows_exit flag" follows_exit_flag;
    case "wraparound find" wraparound_find;
    case "length after wraparound" length_after_wraparound;
    case "length after truncate and refill" length_after_truncate_and_refill;
    QCheck_alcotest.to_alcotest qcheck_length_matches_live;
    QCheck_alcotest.to_alcotest qcheck_window;
    QCheck_alcotest.to_alcotest qcheck_entries_after_sorted;
    QCheck_alcotest.to_alcotest qcheck_model_audit;
  ]
