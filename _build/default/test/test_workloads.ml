module Suite = Regionsel_workload.Suite
module Spec = Regionsel_workload.Spec
module Image = Regionsel_workload.Image
module Program = Regionsel_isa.Program
module Stats = Regionsel_engine.Stats
module Simulator = Regionsel_engine.Simulator
module Run_metrics = Regionsel_metrics.Run_metrics
module Policies = Regionsel_core.Policies
open Fixtures

let twelve_benchmarks () =
  check_int "twelve SPECint2000 stand-ins" 12 (List.length Suite.all);
  check_int "names unique" 12 (List.length (List.sort_uniq compare Suite.names));
  List.iter
    (fun name -> check_true ("find " ^ name) (Suite.find name <> None))
    [ "gzip"; "vpr"; "gcc"; "mcf"; "crafty"; "parser"; "eon"; "perlbmk"; "gap"; "vortex";
      "bzip2"; "twolf" ];
  check_true "unknown benchmark" (Suite.find "specfp" = None)

let images_compile_and_validate () =
  List.iter
    (fun (s : Spec.t) ->
      let image = Spec.image s in
      check_true (s.Spec.name ^ " has a non-trivial program")
        (Program.n_blocks image.Image.program > 20);
      check_true (s.Spec.name ^ " has a sensible budget") (s.Spec.default_steps >= 100_000))
    Suite.all

let builds_are_memoized () =
  List.iter
    (fun (s : Spec.t) -> check_true "same image object" (Spec.image s == Spec.image s))
    Suite.all

let short_runs_behave () =
  (* Every benchmark x paper policy combination runs cleanly and reaches a
     reasonable hit rate even at a reduced budget. *)
  List.iter
    (fun (s : Spec.t) ->
      List.iter
        (fun (pname, policy) ->
          let result = run ~max_steps:60_000 policy (Spec.image s) in
          let hit = Stats.hit_rate result.Simulator.stats in
          check_true
            (Printf.sprintf "%s/%s hit rate %.3f above 0.5" s.Spec.name pname hit)
            (hit > 0.5);
          check_true
            (Printf.sprintf "%s/%s selected regions" s.Spec.name pname)
            (regions_of result <> []))
        Policies.paper)
    Suite.all

let gcc_has_widest_footprint () =
  let program name = (Spec.image (Option.get (Suite.find name))).Image.program in
  List.iter
    (fun other ->
      check_true ("gcc bigger than " ^ other)
        (Program.n_blocks (program "gcc") > Program.n_blocks (program other)))
    [ "gzip"; "crafty"; "twolf"; "eon" ]

let paper_shape_lei_vs_net () =
  (* The headline claims, checked on the full suite at reduced budgets:
     LEI spans at least as many cycles as NET and needs a 90% cover set no
     larger than NET's, on average. *)
  let spans = ref 0.0 and covers = ref 0 and cover_net = ref 0 in
  List.iter
    (fun (s : Spec.t) ->
      let m policy = Run_metrics.of_result (run ~max_steps:100_000 policy (Spec.image s)) in
      let net = m Policies.net and lei = m Policies.lei in
      spans := !spans +. lei.Run_metrics.spanned_cycle_ratio -. net.Run_metrics.spanned_cycle_ratio;
      covers := !covers + lei.Run_metrics.cover_90;
      cover_net := !cover_net + net.Run_metrics.cover_90)
    Suite.all;
  check_true "LEI spans more cycles on average" (!spans > 0.0);
  check_true "LEI covers 90% with fewer traces in total" (!covers < !cover_net)

let suite =
  [
    case "twelve benchmarks" twelve_benchmarks;
    case "images compile and validate" images_compile_and_validate;
    case "builds are memoized" builds_are_memoized;
    case "short runs behave" short_runs_behave;
    case "gcc has widest footprint" gcc_has_widest_footprint;
    case "paper shape: LEI vs NET" paper_shape_lei_vs_net;
  ]
