type t = int

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let none = -1
let is_none a = a < 0
let is_backward ~src ~tgt = tgt <= src
let pp ppf a = Format.fprintf ppf "0x%x" a
let to_string a = Printf.sprintf "0x%x" a

module Set = Set.Make (Int)
module Map = Map.Make (Int)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
