type kind =
  | Install
  | Evict
  | Invalidate
  | Link_patch
  | Link_sever
  | Dispatch
  | Bailout_enter
  | Bailout_exit
  | Fault
  | Blacklist_add
  | Blacklist_expire
  | Select

(* Stable int codes for the packed ring representation; the emission
   functions below write the literal codes, this decodes them. *)
let kind_of_code = function
  | 0 -> Install
  | 1 -> Evict
  | 2 -> Invalidate
  | 3 -> Link_patch
  | 4 -> Link_sever
  | 5 -> Dispatch
  | 6 -> Bailout_enter
  | 7 -> Bailout_exit
  | 8 -> Fault
  | 9 -> Blacklist_add
  | 10 -> Blacklist_expire
  | 11 -> Select
  | c -> invalid_arg (Printf.sprintf "Telemetry.kind_of_code: %d" c)

let label = function
  | Install -> "install"
  | Evict -> "evict"
  | Invalidate -> "invalidate"
  | Link_patch -> "link-patch"
  | Link_sever -> "link-sever"
  | Dispatch -> "dispatch"
  | Bailout_enter -> "bailout-enter"
  | Bailout_exit -> "bailout-exit"
  | Fault -> "fault"
  | Blacklist_add -> "blacklist-add"
  | Blacklist_expire -> "blacklist-expire"
  | Select -> "select"

let fault_label = function
  | 0 -> "smc"
  | 1 -> "translation"
  | 2 -> "async-exit"
  | 3 -> "shock"
  | 4 -> "crash"
  | c -> Printf.sprintf "fault-%d" c

module Hist = struct
  (* 64 buckets cover every value an OCaml int can hold: bucket 0 is
     values <= 0, bucket b >= 1 is [2^(b-1), 2^b - 1]. *)
  type h = {
    counts : int array;
    mutable count : int;
    mutable sum : int;
    mutable max_value : int;
  }

  let create () = { counts = Array.make 64 0; count = 0; sum = 0; max_value = min_int }

  let bucket_of v =
    if v <= 0 then 0
    else begin
      (* Number of significant bits of v: 1 -> 1, 2..3 -> 2, 4..7 -> 3. *)
      let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
      bits 0 v
    end

  let observe h v =
    h.counts.(bucket_of v) <- h.counts.(bucket_of v) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum + v;
    if v > h.max_value then h.max_value <- v

  let count h = h.count
  let sum h = h.sum
  let max_value h = if h.count = 0 then 0 else h.max_value

  let bounds b = if b = 0 then (0, 0) else (1 lsl (b - 1), (1 lsl b) - 1)

  let buckets h =
    let acc = ref [] in
    for b = Array.length h.counts - 1 downto 0 do
      if h.counts.(b) > 0 then begin
        let lo, hi = bounds b in
        acc := (lo, hi, h.counts.(b)) :: !acc
      end
    done;
    !acc
end

type cause = Evicted | Flushed | Invalidated | End_of_run

let cause_label = function
  | Evicted -> "evicted"
  | Flushed -> "flushed"
  | Invalidated -> "invalidated"
  | End_of_run -> "end-of-run"

type span = { id : int; installed_at : int; retired_at : int; cause : cause; n_nodes : int }

(* Four int slots per event: step, kind code, a, b. *)
let slots = 4

type t = {
  buf : int array;
  cap : int;  (** events; power of two *)
  mutable head : int;  (** events ever emitted; next write = head mod cap *)
  hist_residency : Hist.h;
  hist_first_link : Hist.h;
  hist_trace_length : Hist.h;
  hist_cooldown : Hist.h;
  (* Span ledger, indexed by region id (ids are assigned sequentially by
     the code cache, so a flat array suffices).  Kept outside the ring so
     spans survive overwrite. *)
  mutable open_at : int array;  (** region id -> install step, -1 if not open *)
  mutable nodes_of : int array;  (** region id -> node count at install *)
  mutable linked : Bytes.t;  (** region id -> has its first link been observed *)
  mutable spans_rev : span list;
  mutable installs : int;
  mutable finished : bool;
}

type sink = t option

let none : sink = None

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(capacity = 65536) () =
  let cap = round_pow2 (max 1 capacity) in
  {
    buf = Array.make (cap * slots) 0;
    cap;
    head = 0;
    hist_residency = Hist.create ();
    hist_first_link = Hist.create ();
    hist_trace_length = Hist.create ();
    hist_cooldown = Hist.create ();
    open_at = Array.make 64 (-1);
    nodes_of = Array.make 64 0;
    linked = Bytes.make 64 '\000';
    spans_rev = [];
    installs = 0;
    finished = false;
  }

(* The hot emission path: four unchecked writes into the ring. [cap] is a
   power of two, so the modulo is a mask. *)
let push t ~step ~kind ~a ~b =
  let base = (t.head land (t.cap - 1)) * slots in
  Array.unsafe_set t.buf base step;
  Array.unsafe_set t.buf (base + 1) kind;
  Array.unsafe_set t.buf (base + 2) a;
  Array.unsafe_set t.buf (base + 3) b;
  t.head <- t.head + 1

(* Grow the span ledger to cover region [id].  Installs are rare, so the
   occasional doubling never shows up on the hot path. *)
let ensure_ledger t id =
  let n = Array.length t.open_at in
  if id >= n then begin
    let n' = round_pow2 (id + 1) in
    let open_at = Array.make n' (-1) in
    Array.blit t.open_at 0 open_at 0 n;
    t.open_at <- open_at;
    let nodes_of = Array.make n' 0 in
    Array.blit t.nodes_of 0 nodes_of 0 n;
    t.nodes_of <- nodes_of;
    let linked = Bytes.make n' '\000' in
    Bytes.blit t.linked 0 linked 0 n;
    t.linked <- linked
  end

let close_span t ~step ~id ~cause =
  if id >= 0 && id < Array.length t.open_at then begin
    let at = t.open_at.(id) in
    if at >= 0 then begin
      t.open_at.(id) <- -1;
      if cause <> End_of_run then Hist.observe t.hist_residency (step - at);
      t.spans_rev <-
        { id; installed_at = at; retired_at = step; cause; n_nodes = t.nodes_of.(id) }
        :: t.spans_rev
    end
  end

let install sink ~step ~id ~n_nodes =
  match sink with
  | None -> ()
  | Some t ->
    push t ~step ~kind:0 ~a:id ~b:n_nodes;
    ensure_ledger t id;
    (* A reused id (only possible if two caches share one sink) closes the
       stale span rather than corrupting the ledger. *)
    close_span t ~step ~id ~cause:End_of_run;
    t.open_at.(id) <- step;
    t.nodes_of.(id) <- n_nodes;
    Bytes.set t.linked id '\000';
    t.installs <- t.installs + 1

let evict sink ~step ~id ~flush =
  match sink with
  | None -> ()
  | Some t ->
    push t ~step ~kind:1 ~a:id ~b:(if flush then 1 else 0);
    close_span t ~step ~id ~cause:(if flush then Flushed else Evicted)

let invalidate sink ~step ~id =
  match sink with
  | None -> ()
  | Some t ->
    push t ~step ~kind:2 ~a:id ~b:0;
    close_span t ~step ~id ~cause:Invalidated

let link_patch sink ~step ~from_id ~target_id =
  match sink with
  | None -> ()
  | Some t ->
    push t ~step ~kind:3 ~a:from_id ~b:target_id;
    if
      from_id >= 0
      && from_id < Array.length t.open_at
      && t.open_at.(from_id) >= 0
      && Bytes.get t.linked from_id = '\000'
    then begin
      Bytes.set t.linked from_id '\001';
      Hist.observe t.hist_first_link (step - t.open_at.(from_id))
    end

let link_sever sink ~step ~from_id ~target_id =
  match sink with None -> () | Some t -> push t ~step ~kind:4 ~a:from_id ~b:target_id

let dispatch sink ~step ~id =
  match sink with None -> () | Some t -> push t ~step ~kind:5 ~a:id ~b:0

let bailout_enter sink ~step ~until =
  match sink with None -> () | Some t -> push t ~step ~kind:6 ~a:until ~b:0

let bailout_exit sink ~step =
  match sink with None -> () | Some t -> push t ~step ~kind:7 ~a:0 ~b:0

let fault sink ~step ~code =
  match sink with None -> () | Some t -> push t ~step ~kind:8 ~a:code ~b:0

let blacklist_add sink ~step ~entry ~cooldown =
  match sink with
  | None -> ()
  | Some t ->
    push t ~step ~kind:9 ~a:entry ~b:cooldown;
    Hist.observe t.hist_cooldown cooldown

let blacklist_expire sink ~step ~entry =
  match sink with None -> () | Some t -> push t ~step ~kind:10 ~a:entry ~b:0

let select sink ~step ~n_blocks ~n_insts =
  match sink with
  | None -> ()
  | Some t ->
    push t ~step ~kind:11 ~a:n_blocks ~b:n_insts;
    Hist.observe t.hist_trace_length n_blocks

let finish t ~step =
  if not t.finished then begin
    t.finished <- true;
    for id = 0 to Array.length t.open_at - 1 do
      close_span t ~step ~id ~cause:End_of_run
    done
  end

type event = { step : int; kind : kind; a : int; b : int }

let events t =
  let first = max 0 (t.head - t.cap) in
  let acc = ref [] in
  for i = t.head - 1 downto first do
    let base = (i land (t.cap - 1)) * slots in
    acc :=
      {
        step = t.buf.(base);
        kind = kind_of_code t.buf.(base + 1);
        a = t.buf.(base + 2);
        b = t.buf.(base + 3);
      }
      :: !acc
  done;
  !acc

let n_emitted t = t.head
let n_dropped t = max 0 (t.head - t.cap)
let capacity t = t.cap

let spans t =
  List.sort
    (fun a b ->
      match compare a.installed_at b.installed_at with 0 -> compare a.id b.id | c -> c)
    t.spans_rev

let n_installs t = t.installs

let span_open t ~id = id >= 0 && id < Array.length t.open_at && t.open_at.(id) >= 0

let iter_open_spans t f =
  for id = 0 to Array.length t.open_at - 1 do
    if t.open_at.(id) >= 0 then f ~id ~installed_at:t.open_at.(id)
  done

let n_open_spans t =
  let n = ref 0 in
  iter_open_spans t (fun ~id:_ ~installed_at:_ -> incr n);
  !n

(* Close any open span whose region id is not in [live].  Restore uses
   this when the ledger survived a snapshot but the cache section did
   not (its regions re-warmed away): the ghost spans close as
   [End_of_run] so spans = installs still holds. *)
let reconcile_spans t ~step ~live =
  for id = 0 to Array.length t.open_at - 1 do
    if t.open_at.(id) >= 0 && not (live id) then close_span t ~step ~id ~cause:End_of_run
  done

(* Checkpoint support.  The ring is serialized verbatim (written prefix
   only: after [head] events the touched physical slots are exactly
   [min head cap]), the span ledger by length so restore reproduces the
   exact array geometry, and completed spans in list order.  [load] fills
   an existing recorder so the caller controls capacity; a capacity
   mismatch is a hard error because [head] indexes a specific ring
   geometry. *)

let cause_code = function Evicted -> 0 | Flushed -> 1 | Invalidated -> 2 | End_of_run -> 3

let cause_of_code = function
  | 0 -> Evicted
  | 1 -> Flushed
  | 2 -> Invalidated
  | 3 -> End_of_run
  | c -> failwith (Printf.sprintf "Telemetry.load: bad cause code %d" c)

let save_hist (h : Hist.h) emit =
  Array.iter emit h.Hist.counts;
  emit h.Hist.count;
  emit h.Hist.sum;
  emit h.Hist.max_value

let load_hist (h : Hist.h) read =
  for b = 0 to Array.length h.Hist.counts - 1 do
    let c = read () in
    if c < 0 then failwith "Telemetry.load: negative histogram bucket";
    h.Hist.counts.(b) <- c
  done;
  h.Hist.count <- read ();
  h.Hist.sum <- read ();
  h.Hist.max_value <- read ()

let save t emit =
  emit t.cap;
  emit t.head;
  let live_slots = min t.head t.cap * slots in
  for i = 0 to live_slots - 1 do
    emit t.buf.(i)
  done;
  save_hist t.hist_residency emit;
  save_hist t.hist_first_link emit;
  save_hist t.hist_trace_length emit;
  save_hist t.hist_cooldown emit;
  let n = Array.length t.open_at in
  emit n;
  Array.iter emit t.open_at;
  Array.iter emit t.nodes_of;
  Bytes.iter (fun c -> emit (Char.code c)) t.linked;
  emit (List.length t.spans_rev);
  List.iter
    (fun s ->
      emit s.id;
      emit s.installed_at;
      emit s.retired_at;
      emit (cause_code s.cause);
      emit s.n_nodes)
    t.spans_rev;
  emit t.installs;
  emit (if t.finished then 1 else 0)

let load t read =
  let cap = read () in
  if cap <> t.cap then
    failwith
      (Printf.sprintf "Telemetry.load: capacity mismatch (snapshot %d, recorder %d)" cap t.cap);
  let head = read () in
  if head < 0 then failwith "Telemetry.load: negative head";
  let live_slots = min head cap * slots in
  Array.fill t.buf 0 (Array.length t.buf) 0;
  for i = 0 to live_slots - 1 do
    t.buf.(i) <- read ()
  done;
  t.head <- head;
  load_hist t.hist_residency read;
  load_hist t.hist_first_link read;
  load_hist t.hist_trace_length read;
  load_hist t.hist_cooldown read;
  let n = read () in
  if n < 1 then failwith "Telemetry.load: bad ledger size";
  let open_at = Array.init n (fun _ -> read ()) in
  let nodes_of = Array.init n (fun _ -> read ()) in
  let linked = Bytes.init n (fun _ -> Char.chr (read () land 0xFF)) in
  t.open_at <- open_at;
  t.nodes_of <- nodes_of;
  t.linked <- linked;
  let n_spans = read () in
  if n_spans < 0 then failwith "Telemetry.load: negative span count";
  let spans_rev = ref [] in
  for _ = 1 to n_spans do
    let id = read () in
    let installed_at = read () in
    let retired_at = read () in
    let cause = cause_of_code (read ()) in
    let n_nodes = read () in
    spans_rev := { id; installed_at; retired_at; cause; n_nodes } :: !spans_rev
  done;
  (* [spans_rev] was emitted in list order; re-consing reversed it, so one
     more [List.rev] restores the original order. *)
  t.spans_rev <- List.rev !spans_rev;
  t.installs <- read ();
  t.finished <- (match read () with 0 -> false | 1 -> true | _ -> failwith "Telemetry.load: bad finished flag")

let residency t = t.hist_residency
let time_to_first_link t = t.hist_first_link
let trace_length t = t.hist_trace_length
let blacklist_cooldown t = t.hist_cooldown
