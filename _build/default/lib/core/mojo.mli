(** Mojo-style trace selection (Chen et al., FDDO 2000; Section 5).

    Identical to NET except that trace-exit targets use a lower execution
    threshold than backward-branch targets, reducing the delay before a
    related trace is selected.  Provided as a related-work comparison
    policy. *)

include Regionsel_engine.Policy.S
