lib/core/net.mli: Regionsel_engine
