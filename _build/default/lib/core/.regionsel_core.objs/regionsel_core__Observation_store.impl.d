lib/core/observation_store.ml: Addr Compact_trace List Option Regionsel_engine Regionsel_isa
