(** Hash table over immediate int keys with an inline (non-C-call) hash,
    for the simulator's per-step probes.  Use only where iteration order
    is never observable — bucket order differs from [Addr.Table] and from
    the polymorphic [Hashtbl]. *)

include Hashtbl.S with type key = int

val sorted_pairs : 'a t -> (int * 'a) list
(** All bindings sorted by key — the canonical enumeration snapshot
    codecs must use, so serialized bytes do not depend on the table's
    insertion history. *)
