module Characterize = Regionsel_workload.Characterize
module Suite = Regionsel_workload.Suite
module Spec = Regionsel_workload.Spec
open Fixtures

let figure4_census () =
  let c = Characterize.of_image (figure4 ()) in
  check_int "one function" 1 c.Characterize.n_functions;
  check_int "nine blocks" 9 c.Characterize.n_blocks;
  check_int "three conditionals" 3 c.Characterize.n_conditionals;
  check_int "one unbiased" 1 c.Characterize.n_unbiased;
  check_int "one loop" 1 c.Characterize.n_loops;
  check_int "no calls" 0 c.Characterize.n_calls

let figure2_census () =
  let c = Characterize.of_image (figure2 ()) in
  check_int "two functions" 2 c.Characterize.n_functions;
  check_int "one call site" 1 c.Characterize.n_calls;
  check_int "the call is backward" 1 c.Characterize.n_backward_calls;
  check_int "one return" 1 c.Characterize.n_returns

let census_consistency_on_suite () =
  List.iter
    (fun (s : Spec.t) ->
      let c = Characterize.of_image (Spec.image s) in
      check_true (s.Spec.name ^ ": unbiased <= conditionals")
        (c.Characterize.n_unbiased <= c.Characterize.n_conditionals);
      check_true (s.Spec.name ^ ": loops <= conditionals")
        (c.Characterize.n_loops <= c.Characterize.n_conditionals);
      check_true (s.Spec.name ^ ": backward calls <= calls")
        (c.Characterize.n_backward_calls <= c.Characterize.n_calls);
      check_true (s.Spec.name ^ ": several functions") (c.Characterize.n_functions >= 5);
      check_true (s.Spec.name ^ ": block sizes sane")
        (c.Characterize.avg_block_size >= 1.0 && c.Characterize.avg_block_size <= 16.0);
      check_int (s.Spec.name ^ ": row width matches header")
        (List.length Characterize.header)
        (List.length (Characterize.row c)))
    Suite.all

let pp_smoke () =
  let c = Characterize.of_image (figure2 ()) in
  let rendered = Format.asprintf "%a" Characterize.pp c in
  check_true "mentions functions" (contains ~sub:"functions" rendered);
  check_true "mentions calls" (contains ~sub:"calls" rendered)

let suite =
  [
    case "figure4 census" figure4_census;
    case "figure2 census" figure2_census;
    case "census consistency on suite" census_consistency_on_suite;
    case "pp smoke" pp_smoke;
  ]
