(** Executed control-flow edge profile of a whole run.

    Records every dynamic transfer between blocks (interpreted or cached).
    Exit domination (Section 4.1) needs it to decide whether a region
    entrance has any executed predecessor other than its dominator's exit
    block. *)

open Regionsel_isa

type t

val create : unit -> t

val record : t -> src:Addr.t -> dst:Addr.t -> unit
(** Count one executed transfer.  Edges are stored under a packed int key
    ([src lsl 32 lor dst]) with preallocated counter refs, so recording an
    edge already seen allocates nothing. *)

val count : t -> src:Addr.t -> dst:Addr.t -> int

val preds : t -> Addr.t -> Addr.Set.t
(** Blocks from which an executed edge reaches the given block start. *)

val n_edges : t -> int
val fold : (src:Addr.t -> dst:Addr.t -> int -> 'a -> 'a) -> t -> 'a -> 'a
