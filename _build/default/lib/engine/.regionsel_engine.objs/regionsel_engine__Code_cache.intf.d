lib/engine/code_cache.mli: Addr Params Region Regionsel_isa
