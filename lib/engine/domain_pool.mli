(** Ordered parallel map over OCaml 5 domains.

    Simulation runs are embarrassingly parallel — every run allocates its
    own interpreter, profiles, and code cache — so the benchmark × policy
    matrix fans out across cores with no shared mutable state.  Results are
    returned in submission order, which keeps downstream consumers (tables,
    memoization caches, CSV export) byte-identical to a sequential run. *)

val default_n_domains : unit -> int
(** The [REGIONSEL_DOMAINS] environment variable if set, otherwise
    {!Domain.recommended_domain_count}; always at least 1 (zero or negative
    values clamp to sequential execution rather than erroring, so scripts
    can force single-domain runs with [REGIONSEL_DOMAINS=0]).

    @raise Invalid_argument if the variable is set but not an integer. *)

val map : ?n_domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~n_domains f tasks] applies [f] to every task, using up to
    [n_domains] domains (the calling domain participates as a worker), and
    returns the results in the order the tasks were given.

    With [n_domains <= 1] — or a single task — everything runs inline on
    the calling domain with no spawns, so single-core environments pay
    nothing.  If any [f] raises, the first exception (in completion order)
    is re-raised on the caller after all domains have joined, and no
    further tasks are started.

    [f] must not depend on unforced {!Stdlib.Lazy} values shared between
    tasks: force them on the calling domain first (see
    {!Regionsel_workload.Spec.image}). *)

val iter : ?n_domains:int -> ('a -> unit) -> 'a array -> unit
(** [iter ~n_domains f tasks] applies [f] to every array element once, with
    the same work-stealing, inline-when-sequential and first-exception
    semantics as {!map}.  Each element is claimed by exactly one domain, so
    [f] may freely mutate state owned by its own element (the multi-stream
    scheduler's batch advance); the array itself is only read.  All effects
    of every [f] call happen before [iter] returns (the join is a full
    barrier). *)
