type t = {
  name : string;
  description : string;
  image : Image.t Lazy.t;
  default_steps : int;
}

let make ~name ~description ~steps build =
  { name; description; image = lazy (build ()); default_steps = steps }

let image t = Lazy.force t.image
