test/test_builder.ml: Addr Alcotest Array Block Fixtures Program Regionsel_isa Regionsel_workload Terminator
