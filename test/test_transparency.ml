(* The defining property of a dynamic optimization system: it must not
   change what the program computes.  In simulator terms, for a fixed seed
   and step budget, the executed instruction stream is identical no matter
   which policy runs, which regions are selected, or how the cache is
   bounded — only the interpreted/cached split may differ. *)

module Simulator = Regionsel_engine.Simulator
module Stats = Regionsel_engine.Stats
module Params = Regionsel_engine.Params
module Policy = Regionsel_engine.Policy
module Policies = Regionsel_core.Policies
module Suite = Regionsel_workload.Suite
module Spec = Regionsel_workload.Spec
open Fixtures

(* A policy that never selects anything: pure interpretation. *)
module Null_policy : Policy.S = struct
  type t = unit

  let name = "null"
  let create _ = ()
  let handle () _ = Policy.No_action
  let save () _ = ()
  let load _ _ = ()
end

let null : (module Policy.S) = (module Null_policy)

let fingerprint ?params image =
  let result = run ?params ~seed:11L ~max_steps:50_000 null image in
  ( result.Simulator.stats.Stats.steps,
    Stats.total_insts result.Simulator.stats,
    result.Simulator.stats.Stats.taken_branches )

let fingerprint_of ?params policy image =
  let result = run ?params ~seed:11L ~max_steps:50_000 policy image in
  ( result.Simulator.stats.Stats.steps,
    Stats.total_insts result.Simulator.stats,
    result.Simulator.stats.Stats.taken_branches )

let null_policy_never_caches () =
  let result = run null (figure4 ()) in
  check_int "nothing cached" 0 result.Simulator.stats.Stats.cached_insts;
  check_int "nothing installed" 0 result.Simulator.stats.Stats.installs

let policies_are_transparent_on_scenarios () =
  List.iter
    (fun image ->
      let reference = fingerprint image in
      List.iter
        (fun (name, policy) ->
          check_true
            (Printf.sprintf "%s executes the same stream" name)
            (fingerprint_of policy image = reference))
        Policies.all)
    [ figure2 (); figure3 (); figure4 (); simple_loop () ]

let policies_are_transparent_on_suite () =
  List.iter
    (fun (s : Spec.t) ->
      let image = Spec.image s in
      let reference = fingerprint image in
      List.iter
        (fun (name, policy) ->
          check_true
            (Printf.sprintf "%s/%s executes the same stream" s.Spec.name name)
            (fingerprint_of policy image = reference))
        Policies.paper)
    Suite.all

let bounded_cache_is_transparent () =
  let image = figure4 () in
  let reference = fingerprint image in
  List.iter
    (fun eviction ->
      let params =
        { Params.default with Params.cache_capacity_bytes = Some 150; cache_eviction = eviction }
      in
      check_true "eviction does not perturb execution"
        (fingerprint_of ~params Policies.net image = reference))
    [ Params.Flush_all; Params.Evict_oldest ]

let transparency_across_seeds () =
  (* Different seeds produce different streams, but each seed's stream is
     policy-invariant. *)
  List.iter
    (fun seed ->
      let fp policy =
        let result = run ~seed ~max_steps:40_000 policy (figure4 ()) in
        Stats.total_insts result.Simulator.stats
      in
      let reference = fp null in
      List.iter
        (fun (name, policy) ->
          check_true (Printf.sprintf "seed-stable under %s" name) (fp policy = reference))
        Policies.paper)
    [ 1L; 2L; 3L ]

let suite =
  [
    case "null policy never caches" null_policy_never_caches;
    case "policies are transparent (scenarios)" policies_are_transparent_on_scenarios;
    case "policies are transparent (suite)" policies_are_transparent_on_suite;
    case "bounded cache is transparent" bounded_cache_is_transparent;
    case "transparency across seeds" transparency_across_seeds;
  ]
