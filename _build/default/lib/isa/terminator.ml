type t =
  | Fallthrough
  | Jump of Addr.t
  | Cond of Addr.t
  | Call of Addr.t
  | Indirect_jump
  | Indirect_call
  | Return
  | Halt

let equal a b =
  match a, b with
  | Fallthrough, Fallthrough
  | Indirect_jump, Indirect_jump
  | Indirect_call, Indirect_call
  | Return, Return
  | Halt, Halt -> true
  | Jump x, Jump y | Cond x, Cond y | Call x, Call y -> Addr.equal x y
  | ( Fallthrough | Jump _ | Cond _ | Call _ | Indirect_jump | Indirect_call | Return | Halt ), _
    -> false

let static_target = function
  | Jump a | Cond a | Call a -> Some a
  | Fallthrough | Indirect_jump | Indirect_call | Return | Halt -> None

let is_branch = function
  | Fallthrough | Halt -> false
  | Jump _ | Cond _ | Call _ | Indirect_jump | Indirect_call | Return -> true

let is_indirect = function
  | Indirect_jump | Indirect_call | Return -> true
  | Fallthrough | Jump _ | Cond _ | Call _ | Halt -> false

let can_fall_through = function
  | Fallthrough | Cond _ -> true
  | Jump _ | Call _ | Indirect_jump | Indirect_call | Return | Halt -> false

let pp ppf = function
  | Fallthrough -> Format.pp_print_string ppf "fallthrough"
  | Jump a -> Format.fprintf ppf "jmp %a" Addr.pp a
  | Cond a -> Format.fprintf ppf "bcc %a" Addr.pp a
  | Call a -> Format.fprintf ppf "call %a" Addr.pp a
  | Indirect_jump -> Format.pp_print_string ppf "ijmp"
  | Indirect_call -> Format.pp_print_string ppf "icall"
  | Return -> Format.pp_print_string ppf "ret"
  | Halt -> Format.pp_print_string ppf "halt"
