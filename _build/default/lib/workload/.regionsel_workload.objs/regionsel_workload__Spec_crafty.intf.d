lib/workload/spec_crafty.mli: Spec
