lib/workload/spec_gcc.mli: Spec
