lib/isa/terminator.ml: Addr Format
